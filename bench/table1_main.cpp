/// \file table1_main.cpp
/// Regenerates Table I: overall length-matching performance on the five
/// generated cases — Initial vs AiDT-style baseline vs Ours (DP + MSDTW).
/// Both flows run through the `pipeline::Router` facade (baseline selection
/// via `RouterOptions::engine`). Prints measured Max/Avg error (Eq. 19) and
/// runtime, with the paper's reported values alongside for shape comparison
/// (see EXPERIMENTS.md), and writes the measurements through the harness
/// writer:
///
///   bench_table1 [--json PATH]     (default BENCH_table1.json)

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_harness/report.hpp"
#include "pipeline/router.hpp"
#include "workload/metrics.hpp"
#include "workload/table1_cases.hpp"

namespace {

struct Row {
  int id;
  double target;
  double dgap;
  int group_size;
  const char* type;
  const char* spacing;
  lmr::workload::ErrorStats initial, aidt, ours;
  double t_aidt, t_ours;
};

Row run_case(int k) {
  Row row{};
  {
    const auto c = lmr::workload::table1_case(k);
    row.id = c.id;
    row.target = c.target;
    row.dgap = c.rules.gap;
    row.group_size = c.group_size;
    row.type = c.trace_type == "differential" ? "differential" : "single-ended";
    row.spacing = c.spacing == "dense" ? "dense" : "sparse";
    row.initial = lmr::workload::matching_errors(
        lmr::workload::group_member_lengths(c.layout), c.target);
  }
  {
    // The AiDT-style run: greedy fixed-geometry tuning per member; pairs the
    // "common way" (§V-A) — naive DTW median tuned as a wide trace, restored.
    auto c = lmr::workload::table1_case(k);
    lmr::pipeline::RouterOptions opts;
    opts.engine = lmr::pipeline::Engine::AidtStyle;
    opts.run_drc = false;  // Table I times the matching flow only
    const lmr::pipeline::Router router(c.rules, opts);
    row.t_aidt = router.route(c.layout).group.runtime_s;
    row.aidt = lmr::workload::matching_errors(
        lmr::workload::group_member_lengths(c.layout), c.target);
  }
  {
    auto c = lmr::workload::table1_case(k);
    lmr::pipeline::RouterOptions opts;
    // Fine grid: quantized pattern widths stay within one step of the gap
    // rule, matching the baseline's constant width.
    opts.extender.l_disc = 0.5;
    opts.extender.max_width_steps = 24;
    opts.run_drc = false;
    const lmr::pipeline::Router router(c.rules, opts);
    row.t_ours = router.route(c.layout).group.runtime_s;
    row.ours = lmr::workload::matching_errors(
        lmr::workload::group_member_lengths(c.layout), c.target);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_table1.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  std::printf("Table I: length-matching performance (AiDT-style baseline vs Ours)\n");
  std::printf(
      "%-4s %-8s %-5s %-4s %-13s %-7s | %-7s %-7s %-7s | %-7s %-7s %-7s | %-8s %-8s\n",
      "case", "ltarget", "dgap", "n", "type", "space", "MaxIni%", "MaxAiDT", "MaxOurs",
      "AvgIni%", "AvgAiDT", "AvgOurs", "t_AiDT", "t_Ours");
  // Paper-reported rows for shape comparison.
  const double paper[5][8] = {
      // MaxIni, MaxAllegro, MaxOurs, AvgIni, AvgAllegro, AvgOurs, tAllegro, tOurs
      {37.38, 33.52, 3.02, 19.02, 14.23, 1.30, 0.92, 6.87},
      {35.99, 28.06, 3.93, 19.41, 11.04, 1.39, 0.78, 3.98},
      {35.91, 20.91, 3.51, 20.06, 8.66, 1.37, 0.81, 5.27},
      {30.99, 22.25, 5.46, 17.22, 9.85, 1.83, 0.72, 2.86},
      {26.55, 10.21, 10.30, 15.18, 5.14, 3.32, 5.07, 3.22},
  };
  lmr::bench::Json cases = lmr::bench::Json::array();
  for (int k = 1; k <= 5; ++k) {
    const Row r = run_case(k);
    std::printf(
        "%-4d %-8.2f %-5.2f %-4d %-13s %-7s | %-7.2f %-7.2f %-7.2f | %-7.2f %-7.2f %-7.2f "
        "| %-8.2f %-8.2f\n",
        r.id, r.target, r.dgap, r.group_size, r.type, r.spacing, r.initial.max_error_pct,
        r.aidt.max_error_pct, r.ours.max_error_pct, r.initial.avg_error_pct,
        r.aidt.avg_error_pct, r.ours.avg_error_pct, r.t_aidt, r.t_ours);
    const double* p = paper[k - 1];
    std::printf(
        "     (paper: Max %5.2f / %5.2f / %5.2f   Avg %5.2f / %5.2f / %5.2f   t %4.2f / "
        "%4.2f)\n",
        p[0], p[1], p[2], p[3], p[4], p[5], p[6], p[7]);

    lmr::bench::Json jc = lmr::bench::Json::object();
    jc["case"] = static_cast<std::int64_t>(r.id);
    jc["target"] = r.target;
    jc["group_size"] = static_cast<std::int64_t>(r.group_size);
    jc["type"] = r.type;
    jc["spacing"] = r.spacing;
    jc["initial_max_error_pct"] = r.initial.max_error_pct;
    jc["initial_avg_error_pct"] = r.initial.avg_error_pct;
    jc["aidt_max_error_pct"] = r.aidt.max_error_pct;
    jc["aidt_avg_error_pct"] = r.aidt.avg_error_pct;
    jc["ours_max_error_pct"] = r.ours.max_error_pct;
    jc["ours_avg_error_pct"] = r.ours.avg_error_pct;
    jc["aidt_runtime_s"] = r.t_aidt;
    jc["ours_runtime_s"] = r.t_ours;
    cases.push_back(std::move(jc));
  }

  lmr::bench::Json doc = lmr::bench::Json::object();
  doc["schema"] = "lmroute-bench-table1/v1";
  doc["run"] = lmr::bench::run_info_json(lmr::bench::collect_run_info());
  doc["cases"] = std::move(cases);
  return lmr::bench::write_results_file(json_path, doc);
}
