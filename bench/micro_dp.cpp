/// \file micro_dp.cpp
/// Microbenchmarks for the §IV-D complexity claims: the DP transition is
/// O(n^2) in the number of discrete points (width loop capped makes it
/// O(n * W)), and URA height solving is near-linear in nearby polygons.

#include <benchmark/benchmark.h>

#include "core/height_solver.hpp"
#include "core/segment_dp.hpp"

namespace {

void BM_SegmentDpFlat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  lmr::core::DpParams p;
  p.n = n;
  p.step = 1.0;
  p.gap_steps = 2;
  p.protect_steps = 1;
  p.min_height = 1.0;
  p.needed_gain = 1e9;
  const lmr::core::HeightFn h = [](int, int, int, double req) { return req; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(lmr::core::run_segment_dp(p, h));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SegmentDpFlat)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_SegmentDpWidthCapped(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  lmr::core::DpParams p;
  p.n = n;
  p.step = 1.0;
  p.gap_steps = 2;
  p.protect_steps = 1;
  p.min_height = 1.0;
  p.needed_gain = 1e9;
  p.max_width_steps = 16;
  const lmr::core::HeightFn h = [](int, int, int, double req) { return req; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(lmr::core::run_segment_dp(p, h));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SegmentDpWidthCapped)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_HeightSolver(benchmark::State& state) {
  const int n_polys = static_cast<int>(state.range(0));
  std::vector<lmr::core::LocalPoly> polys;
  for (int i = 0; i < n_polys; ++i) {
    lmr::core::LocalPoly lp;
    const double x = 2.0 + (i * 37 % 100);
    const double y = 1.5 + (i * 13 % 7);
    lp.poly = lmr::geom::Polygon::rect({{x, y}, {x + 1.0, y + 1.0}});
    lp.kind = lmr::core::EnvKind::Obstacle;
    polys.push_back(std::move(lp));
  }
  const lmr::core::HeightSolver solver(std::move(polys), 0.5);
  for (auto _ : state) {
    for (double x0 = 2.0; x0 < 90.0; x0 += 11.0) {
      benchmark::DoNotOptimize(solver.max_height(x0, x0 + 6.0, 8.0));
    }
  }
  state.SetComplexityN(n_polys);
}
BENCHMARK(BM_HeightSolver)->RangeMultiplier(4)->Range(4, 256)->Complexity();

}  // namespace

BENCHMARK_MAIN();
