/// \file fig16_main.cpp
/// Regenerates Fig. 16 (and the Fig. 13 illustration): (a) a decoupled
/// differential pair with its MSDTW-merged median trace; (b) a meandered
/// median with its restored differential pair.

#include <cstdio>
#include <filesystem>

#include "core/trace_extender.hpp"
#include "dtw/pair_restore.hpp"
#include "viz/svg.hpp"
#include "workload/diffpair_cases.hpp"

int main() {
  std::filesystem::create_directories("out");
  auto c = lmr::workload::decoupled_pair_case();

  lmr::dtw::MergedPair merged = lmr::dtw::merge_pair(c.pair, c.sub_rules, c.rule_set);

  // (a) original pair (white) + merged median (green), matched pairs dashed.
  {
    lmr::viz::SvgWriter svg(c.pair.positive.path.bbox().inflated(3.0), 20.0);
    lmr::viz::Style sub;
    sub.stroke = "#e8e8e8";
    sub.stroke_width = 0.12;
    svg.polyline(c.pair.positive.path, sub);
    svg.polyline(c.pair.negative.path, sub);
    lmr::viz::Style med;
    med.stroke = "#52d273";
    med.stroke_width = 0.15;
    svg.polyline(merged.median.path, med);
    lmr::viz::Style match;
    match.stroke = "#e05555";
    match.stroke_width = 0.05;
    match.dash = "0.3,0.2";
    const auto& pp = c.pair.positive.path.points();
    const auto& nn = c.pair.negative.path.points();
    const std::size_t skip = c.pair.breakout_nodes;
    for (const auto& m : merged.matching.pairs) {
      svg.line(pp[m.ip + skip], nn[m.in + skip], match);
    }
    svg.save("out/fig16a.svg");
    std::printf("fig16a: pair (P %.2f, N %.2f) merged to median %.2f -> out/fig16a.svg\n",
                c.pair.positive.path.length(), c.pair.negative.path.length(),
                merged.median.path.length());
  }

  // (b) meandered median (white) + restored pair (green).
  {
    lmr::core::TraceExtender ext(merged.virtual_rules, c.area);
    const double target = merged.median.path.length() + 16.0;
    ext.extend(merged.median, target);
    auto restored =
        lmr::dtw::restore_pair(merged.median, c.pair.pitch, c.sub_rules.trace_width);
    lmr::dtw::compensate_skew(restored, c.sub_rules);

    lmr::viz::SvgWriter svg(merged.median.path.bbox().inflated(3.0), 20.0);
    lmr::viz::Style med;
    med.stroke = "#e8e8e8";
    med.stroke_width = 0.12;
    svg.polyline(merged.median.path, med);
    lmr::viz::Style sub;
    sub.stroke = "#52d273";
    sub.stroke_width = 0.1;
    svg.polyline(restored.positive.path, sub);
    svg.polyline(restored.negative.path, sub);
    svg.save("out/fig16b.svg");
    std::printf(
        "fig16b: median matched to %.2f, restored pair (P %.2f, N %.2f) -> out/fig16b.svg\n",
        merged.median.path.length(), restored.positive.path.length(),
        restored.negative.path.length());
  }
  return 0;
}
