/// \file micro_drc_overlap.cpp
/// `bench_micro_drc_overlap` — barrier sweep vs staged extend/DRC pipeline.
///
///   bench_micro_drc_overlap [--repeats N] [--threads N] [--smoke] [--out PATH]
///
/// Routes every case of the DRC-heavy parallelism families (`large_group`,
/// `multi_group`) twice per repeat — once under the legacy two-phase
/// schedule (every member extends, then the whole oracle sweep runs as tail
/// latency) and once under the staged pipeline (per-net checks overlap
/// extension; only the clearance query pass joins) — and reports min /
/// median wall times plus the oracle bound: the win cannot exceed the
/// barrier run's recorded `drc_runtime_s` share, which is exactly what the
/// overlapped schedule hides. Results go through the `lmr::bench` JSON
/// writer (default BENCH_drc_overlap.json, volatile-key conventions of
/// report.hpp), mirroring the tracked `"drc_overlap"` section that
/// `bench_suite --drc-overlap` attaches to BENCH_results.json.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/clock.hpp"
#include "bench_harness/report.hpp"
#include "pipeline/router.hpp"
#include "scenario/scenario_families.hpp"

namespace {

using lmr::core::seconds_since;

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n == 0 ? 0.0 : (n % 2 == 1 ? xs[n / 2] : (xs[n / 2 - 1] + xs[n / 2]) / 2.0);
}

struct Timing {
  double min_s = 0.0;
  double median_s = 0.0;
  double drc_runtime_s = 0.0;      ///< oracle work recorded by the last repeat
  double drc_barrier_s = 0.0;      ///< barrier share of that work
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--repeats N] [--threads N] [--smoke] [--out PATH]\n"
      "  --repeats N  timed repetitions per schedule (default 5)\n"
      "  --threads N  pool parallelism (0 = hardware)\n"
      "  --smoke      tiny per-family variants\n"
      "  --out PATH   results file (default BENCH_drc_overlap.json)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  int repeats = 5;
  std::size_t threads = 0;
  bool smoke = false;
  std::string out_path = "BENCH_drc_overlap.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repeats" && i + 1 < argc) {
      repeats = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  lmr::bench::Json doc = lmr::bench::Json::object();
  doc["schema"] = "lmroute-micro-drc-overlap/v1";
  doc["run"] = lmr::bench::run_info_json(lmr::bench::collect_run_info());
  doc["repeats"] = repeats;
  lmr::bench::Json jcases = lmr::bench::Json::array();

  std::printf("%-16s %-24s %-10s %-10s %-10s %-10s %-8s %-8s\n", "family", "scenario",
              "bar-min", "bar-med", "ovl-min", "ovl-med", "speedup", "drc%");
  for (const char* fam_name : {"large_group", "multi_group"}) {
    const lmr::scenario::Family fam = lmr::scenario::family(fam_name, smoke);
    for (const lmr::scenario::FamilyCase& fc : fam.cases) {
      const lmr::scenario::Scenario sc = lmr::scenario::materialize(fc);
      Timing timing[2];  // [0] barrier, [1] overlapped
      for (const int which : {0, 1}) {
        lmr::pipeline::RouterOptions opts;
        opts.extender.l_disc = 0.5;
        opts.extender.max_width_steps = 24;
        opts.threads = threads;
        opts.drc_schedule = which == 0 ? lmr::pipeline::DrcSchedule::Barrier
                                       : lmr::pipeline::DrcSchedule::Overlapped;
        if (sc.spec.extender_tolerance > 0.0) {
          opts.extender.tolerance = sc.spec.extender_tolerance;
        }
        if (sc.pair_rule_set.size() > 1) opts.pair_rule_set = sc.pair_rule_set;
        const lmr::pipeline::Router router(sc.rules, opts);
        std::vector<double> times;
        times.reserve(static_cast<std::size_t>(repeats));
        for (int r = 0; r < repeats; ++r) {
          lmr::layout::Layout board = sc.layout;  // fresh geometry per repeat
          const auto t0 = lmr::core::now();
          const std::vector<lmr::pipeline::RouteResult> results = router.route_all(board);
          times.push_back(seconds_since(t0));
          timing[which].drc_runtime_s = 0.0;
          timing[which].drc_barrier_s = 0.0;
          for (const lmr::pipeline::RouteResult& rr : results) {
            timing[which].drc_runtime_s += rr.drc_runtime_s;
            timing[which].drc_barrier_s += rr.drc_barrier_runtime_s;
          }
        }
        timing[which].min_s = *std::min_element(times.begin(), times.end());
        timing[which].median_s = median(times);
      }

      const double speedup =
          timing[1].min_s > 0.0 ? timing[0].min_s / timing[1].min_s : 0.0;
      const double drc_share =
          timing[0].min_s > 0.0 ? 100.0 * timing[0].drc_runtime_s / timing[0].min_s : 0.0;
      std::printf("%-16s %-24s %-10.4f %-10.4f %-10.4f %-10.4f %-8.2f %-8.1f\n",
                  fam.name.c_str(), sc.spec.name.c_str(), timing[0].min_s,
                  timing[0].median_s, timing[1].min_s, timing[1].median_s, speedup,
                  drc_share);

      lmr::bench::Json jc = lmr::bench::Json::object();
      jc["family"] = fam.name;
      jc["scenario"] = sc.spec.name;
      jc["seed"] = lmr::bench::Json{sc.seed};
      jc["barrier_min_s"] = timing[0].min_s;
      jc["barrier_median_s"] = timing[0].median_s;
      jc["barrier_drc_runtime_s"] = timing[0].drc_runtime_s;
      jc["overlapped_min_s"] = timing[1].min_s;
      jc["overlapped_median_s"] = timing[1].median_s;
      jc["overlapped_barrier_share_s"] = timing[1].drc_barrier_s;
      jc["speedup_min_s"] = speedup;
      jcases.push_back(std::move(jc));
    }
  }
  doc["cases"] = std::move(jcases);
  return lmr::bench::write_results_file(out_path, doc);
}
