/// \file suite_main.cpp
/// `bench_suite` — run the scenario-family benchmark suite and write the
/// tracked results file (see EXPERIMENTS.md "Benchmark suite").
///
///   bench_suite [--smoke] [--out PATH] [--family NAME]... [--threads N]
///               [--no-drc] [--scaling] [--drc-overlap] [--edit-storm] [--list]
///
/// Exit code 0 when every case is ok (matched where expected, DRC-clean).
/// `--scaling` additionally sweeps thread counts over the parallelism
/// workloads (`large_group`, `multi_group`, `mega_board`) and attaches the
/// speedup curve to the result document under `"scaling"` (volatile:
/// timing-only), then diffs the forced range-tree clearance backend against
/// the forced uniform grid on the dense families under `"backend"`;
/// `--drc-overlap` diffs the staged extend/DRC pipeline against the legacy
/// barrier schedule on the same families under `"drc_overlap"`;
/// `--edit-storm` replays the seeded edit scripts on live sessions under
/// `"edit_storm"` and *fails the run* unless every incremental end state is
/// bit-identical to a fresh route of the edited board; `--service` replays
/// the multi-board service_storm streams through a RoutingService at every
/// default scaling thread count under `"service"`, with the same hard
/// bit-identical-per-board gate (evictions and thaws included);
/// `--fault-storm` replays the seeded fault_storm catalogue (transient
/// faults, deadline timeouts, quarantine + resurrect) at the same thread
/// counts under `"fault_storm"` and fails unless every board converges to
/// the fault-free end state and each storm's fault gates fired
/// (`--seed N` re-seeds the rule synthesis for reproduction).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_harness/report.hpp"
#include "bench_harness/suite.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--smoke] [--out PATH] [--family NAME]... [--threads N] [--no-drc] "
      "[--scaling] [--drc-overlap] [--edit-storm] [--service] [--fault-storm] "
      "[--seed N] [--list]\n"
      "  --smoke        tiny per-family variants (CI-sized seeds)\n"
      "  --out PATH     results file (default BENCH_results.json)\n"
      "  --family NAME  run only this family (repeatable; default all)\n"
      "  --threads N    pool parallelism across cases/groups/members (0 = hardware)\n"
      "  --no-drc       skip the final oracle sweep\n"
      "  --scaling      also sweep thread counts on large_group/multi_group/\n"
      "                 mega_board (speedup curve) and diff the range-tree vs\n"
      "                 uniform-grid clearance backends on the dense families\n"
      "  --drc-overlap  also diff the overlapped extend/DRC pipeline against the\n"
      "                 barrier schedule on large_group/multi_group\n"
      "  --edit-storm   also replay seeded edit scripts on live sessions; fails\n"
      "                 unless each end state matches a fresh route bit for bit\n"
      "  --service      also replay multi-board service storms through a\n"
      "                 RoutingService at 1/2/4/hw threads; fails unless every\n"
      "                 board's end state matches a fresh route bit for bit\n"
      "  --fault-storm  also replay fault-injected service storms (transient,\n"
      "                 timeout, quarantine kinds) at 1/2/4/hw threads; fails\n"
      "                 unless every board converges to the fault-free end state\n"
      "                 and each storm's fault gates fired\n"
      "  --seed N       re-seed the fault-storm rule synthesis (reproduction)\n"
      "  --list         print family names and exit\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  lmr::bench::SuiteOptions opts;
  std::string out_path = "BENCH_results.json";
  bool scaling = false;
  bool drc_overlap = false;
  bool edit_storm = false;
  bool service = false;
  bool fault_storm = false;
  std::uint64_t fault_seed = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opts.smoke = true;
    } else if (arg == "--scaling") {
      scaling = true;
    } else if (arg == "--drc-overlap") {
      drc_overlap = true;
    } else if (arg == "--edit-storm") {
      edit_storm = true;
    } else if (arg == "--service") {
      service = true;
    } else if (arg == "--fault-storm") {
      fault_storm = true;
    } else if (arg == "--seed" && i + 1 < argc) {
      fault_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--no-drc") {
      opts.run_drc = false;
    } else if (arg == "--list") {
      for (const std::string& name : lmr::scenario::family_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--family" && i + 1 < argc) {
      opts.families.emplace_back(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      opts.threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  const lmr::bench::Suite suite(opts);
  lmr::bench::SuiteResult result;
  try {
    result = suite.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "suite failed: %s\n", e.what());
    return 2;
  }

  std::printf("%-16s %-24s %-5s %-8s %-8s %-8s %-6s %-5s %-8s\n", "family", "scenario",
              "seed", "MaxIni%", "Max%", "Avg%", "drc", "ok", "t[s]");
  for (const lmr::bench::CaseOutcome& c : result.cases) {
    double max_ini = 0.0, max_e = 0.0, avg_sum = 0.0;
    std::size_t members = 0, viol = 0;
    for (const lmr::bench::GroupOutcome& g : c.groups) {
      max_ini = std::max(max_ini, g.initial_max_error_pct);
      max_e = std::max(max_e, g.max_error_pct);
      avg_sum += g.avg_error_pct * static_cast<double>(g.members);
      members += g.members;
      viol += g.net_violations + g.cross_violations;
    }
    const double avg_e = members > 0 ? avg_sum / static_cast<double>(members) : 0.0;
    std::printf("%-16s %-24s %-5llu %-8.2f %-8.2f %-8.2f %-6zu %-5s %-8.2f\n",
                c.family.c_str(), c.scenario.c_str(),
                static_cast<unsigned long long>(c.seed), max_ini, max_e, avg_e, viol,
                c.ok() ? "yes" : "NO", c.runtime_s);
  }
  std::printf("total: %zu cases in %.2f s\n", result.cases.size(), result.runtime_s);

  lmr::bench::Json doc = lmr::bench::Suite::to_json(result, opts);

  if (scaling) {
    const std::vector<std::size_t> counts = lmr::bench::Suite::default_scaling_threads();
    std::vector<lmr::bench::ScalingCurve> curves;
    try {
      curves = lmr::bench::Suite::run_scaling(
          opts, {"large_group", "multi_group", "mega_board"}, counts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "scaling sweep failed: %s\n", e.what());
      return 2;
    }
    std::printf("\nscaling sweep (speedup vs 1 thread):\n");
    std::printf("%-16s %-8s %-10s %-8s\n", "family", "threads", "t[s]", "speedup");
    for (const lmr::bench::ScalingCurve& c : curves) {
      for (const lmr::bench::ScalingPoint& p : c.points) {
        std::printf("%-16s %-8zu %-10.3f %-8.2f\n", c.family.c_str(), p.threads,
                    p.runtime_s, p.speedup);
      }
    }
    doc["scaling"] = lmr::bench::Suite::scaling_json(curves);

    std::vector<lmr::bench::BackendComparison> backends;
    try {
      backends = lmr::bench::Suite::run_backend_compare(
          opts, {"mega_board", "large_group"});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "backend sweep failed: %s\n", e.what());
      return 2;
    }
    std::printf("\nclearance backend sweep (board-level sweep, tree vs grid):\n");
    std::printf("%-16s %-12s %-12s %-8s\n", "family", "tree[s]", "grid[s]", "speedup");
    for (const lmr::bench::BackendComparison& c : backends) {
      std::printf("%-16s %-12.3f %-12.3f %-8.2f\n", c.family.c_str(),
                  c.range_tree_sweep_s, c.grid_sweep_s, c.speedup);
    }
    doc["backend"] = lmr::bench::Suite::backend_json(backends);
  }

  if (drc_overlap) {
    std::vector<lmr::bench::OverlapComparison> comparisons;
    try {
      comparisons =
          lmr::bench::Suite::run_drc_overlap(opts, {"large_group", "multi_group"});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "drc-overlap sweep failed: %s\n", e.what());
      return 2;
    }
    std::printf("\ndrc-overlap sweep (barrier vs staged pipeline):\n");
    std::printf("%-16s %-12s %-12s %-8s\n", "family", "barrier[s]", "overlap[s]",
                "speedup");
    for (const lmr::bench::OverlapComparison& c : comparisons) {
      std::printf("%-16s %-12.3f %-12.3f %-8.2f\n", c.family.c_str(),
                  c.barrier_runtime_s, c.overlapped_runtime_s, c.speedup);
    }
    doc["drc_overlap"] = lmr::bench::Suite::drc_overlap_json(comparisons);
  }

  bool storms_ok = true;
  if (edit_storm) {
    std::vector<lmr::bench::EditStormOutcome> storms;
    try {
      storms = suite.run_edit_storm();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "edit-storm replay failed: %s\n", e.what());
      return 2;
    }
    std::printf("\nedit storms (incremental reroute vs fresh route of edited board):\n");
    std::printf("%-28s %-6s %-10s %-6s %-10s %-10s %-8s %-5s\n", "storm", "edits",
                "rerouted", "total", "reroute[s]", "full[s]", "speedup", "eq");
    for (const lmr::bench::EditStormOutcome& s : storms) {
      std::printf("%-28s %-6zu %-10zu %-6zu %-10.3f %-10.3f %-8.2f %-5s\n",
                  s.name.c_str(), s.edits, s.rerouted_total, s.groups_total,
                  s.reroute_total_s, s.full_route_s, s.speedup,
                  s.equivalent ? "yes" : "NO");
      if (!s.equivalent) {
        std::fprintf(stderr, "edit storm %s NOT equivalent to fresh route: %s\n",
                     s.name.c_str(), s.mismatch.c_str());
        storms_ok = false;
      }
    }
    doc["edit_storm"] = lmr::bench::Suite::edit_storm_json(storms);
  }

  if (service) {
    std::vector<lmr::bench::ServiceStormOutcome> storms;
    try {
      storms = suite.run_service(lmr::bench::Suite::default_scaling_threads());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "service replay failed: %s\n", e.what());
      return 2;
    }
    std::printf("\nservice storms (multi-board replay through RoutingService):\n");
    std::printf("%-24s %-8s %-8s %-10s %-10s %-8s %-8s %-7s %-6s %-5s\n", "storm",
                "threads", "events", "replay[s]", "edits/s", "batches", "coalsc",
                "maxq", "thaws", "eq");
    for (const lmr::bench::ServiceStormOutcome& s : storms) {
      for (const lmr::bench::ServiceThreadPoint& p : s.points) {
        std::printf("%-24s %-8zu %-8zu %-10.3f %-10.1f %-8llu %-8llu %-7llu %-6llu %-5s\n",
                    s.name.c_str(), p.threads, s.events, p.replay_s, p.edits_per_s,
                    static_cast<unsigned long long>(p.batches),
                    static_cast<unsigned long long>(p.coalesced_batches),
                    static_cast<unsigned long long>(p.max_queue_depth),
                    static_cast<unsigned long long>(p.thaws),
                    p.all_equivalent ? "yes" : "NO");
        for (const lmr::bench::ServiceBoardOutcome& b : p.boards) {
          if (b.equivalent) continue;
          std::fprintf(stderr,
                       "service storm %s @%zu threads: board %s NOT equivalent: %s\n",
                       s.name.c_str(), p.threads, b.board.c_str(), b.mismatch.c_str());
          storms_ok = false;
        }
      }
    }
    doc["service"] = lmr::bench::Suite::service_json(storms);
  }

  if (fault_storm) {
    std::vector<lmr::bench::FaultStormOutcome> storms;
    try {
      storms = suite.run_fault_storm(lmr::bench::Suite::default_scaling_threads(),
                                     fault_seed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fault-storm replay failed: %s\n", e.what());
      return 2;
    }
    std::printf("\nfault storms (fault-injected replay through RoutingService):\n");
    std::printf("%-28s %-8s %-8s %-8s %-8s %-6s %-6s %-6s %-5s %-5s\n", "storm",
                "threads", "retries", "tmouts", "faults", "quar", "resur", "drop",
                "gate", "eq");
    for (const lmr::bench::FaultStormOutcome& s : storms) {
      for (const lmr::bench::FaultThreadPoint& p : s.points) {
        std::printf("%-28s %-8zu %-8llu %-8llu %-8llu %-6llu %-6llu %-6llu %-5s %-5s\n",
                    s.name.c_str(), p.threads,
                    static_cast<unsigned long long>(p.retries),
                    static_cast<unsigned long long>(p.timeouts),
                    static_cast<unsigned long long>(p.injected_faults),
                    static_cast<unsigned long long>(p.quarantines),
                    static_cast<unsigned long long>(p.resurrections),
                    static_cast<unsigned long long>(p.dropped_edits),
                    p.gates_ok ? "yes" : "NO", p.all_equivalent ? "yes" : "NO");
        if (!p.gates_ok) {
          std::fprintf(stderr, "fault storm %s @%zu threads: fault gates missed\n",
                       s.name.c_str(), p.threads);
          storms_ok = false;
        }
        for (const lmr::bench::FaultBoardOutcome& b : p.boards) {
          if (b.equivalent && b.prefix_equivalent && b.recovered) continue;
          std::fprintf(stderr,
                       "fault storm %s @%zu threads: board %s %s%s%s: %s\n",
                       s.name.c_str(), p.threads, b.board.c_str(),
                       b.equivalent ? "" : "NOT equivalent ",
                       b.prefix_equivalent ? "" : "prefix mismatch ",
                       b.recovered ? "" : "NOT recovered", b.mismatch.c_str());
          storms_ok = false;
        }
      }
    }
    doc["fault_storm"] = lmr::bench::Suite::fault_storm_json(storms);
  }

  const int write_rc = lmr::bench::write_results_file(out_path, doc);
  if (write_rc != 0) return write_rc;
  return result.all_ok() && storms_ok ? 0 : 1;
}
