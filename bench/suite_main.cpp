/// \file suite_main.cpp
/// `bench_suite` — run the scenario-family benchmark suite and write the
/// tracked results file (see EXPERIMENTS.md "Benchmark suite").
///
///   bench_suite [--smoke] [--out PATH] [--family NAME]... [--threads N]
///               [--no-drc] [--list]
///
/// Exit code 0 when every case is ok (matched where expected, DRC-clean).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_harness/report.hpp"
#include "bench_harness/suite.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--smoke] [--out PATH] [--family NAME]... [--threads N] [--no-drc] "
      "[--list]\n"
      "  --smoke        tiny per-family variants (CI-sized seeds)\n"
      "  --out PATH     results file (default BENCH_results.json)\n"
      "  --family NAME  run only this family (repeatable; default all)\n"
      "  --threads N    route_batch workers (default hardware)\n"
      "  --no-drc       skip the final oracle sweep\n"
      "  --list         print family names and exit\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  lmr::bench::SuiteOptions opts;
  std::string out_path = "BENCH_results.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opts.smoke = true;
    } else if (arg == "--no-drc") {
      opts.run_drc = false;
    } else if (arg == "--list") {
      for (const std::string& name : lmr::scenario::family_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--family" && i + 1 < argc) {
      opts.families.emplace_back(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      opts.threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  const lmr::bench::Suite suite(opts);
  lmr::bench::SuiteResult result;
  try {
    result = suite.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "suite failed: %s\n", e.what());
    return 2;
  }

  std::printf("%-16s %-24s %-5s %-8s %-8s %-8s %-6s %-5s %-8s\n", "family", "scenario",
              "seed", "MaxIni%", "Max%", "Avg%", "drc", "ok", "t[s]");
  for (const lmr::bench::CaseOutcome& c : result.cases) {
    double max_ini = 0.0, max_e = 0.0, avg_sum = 0.0;
    std::size_t members = 0, viol = 0;
    for (const lmr::bench::GroupOutcome& g : c.groups) {
      max_ini = std::max(max_ini, g.initial_max_error_pct);
      max_e = std::max(max_e, g.max_error_pct);
      avg_sum += g.avg_error_pct * static_cast<double>(g.members);
      members += g.members;
      viol += g.net_violations + g.cross_violations;
    }
    const double avg_e = members > 0 ? avg_sum / static_cast<double>(members) : 0.0;
    std::printf("%-16s %-24s %-5llu %-8.2f %-8.2f %-8.2f %-6zu %-5s %-8.2f\n",
                c.family.c_str(), c.scenario.c_str(),
                static_cast<unsigned long long>(c.seed), max_ini, max_e, avg_e, viol,
                c.ok() ? "yes" : "NO", c.runtime_s);
  }
  std::printf("total: %zu cases in %.2f s\n", result.cases.size(), result.runtime_s);

  const int write_rc =
      lmr::bench::write_results_file(out_path, lmr::bench::Suite::to_json(result, opts));
  if (write_rc != 0) return write_rc;
  return result.all_ok() ? 0 : 1;
}
