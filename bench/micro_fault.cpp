/// \file micro_fault.cpp
/// `bench_micro_fault` — fault-plane overhead microbenchmarks.
///
///   bench_micro_fault [--repeats N] [--smoke] [--out PATH]
///
/// The fault plane is on every hot path (one site probe per member
/// extension, one cancellation poll per extender pattern placement), so its
/// *disarmed* cost is the number that matters. Two measurements:
///
///  * token/plan primitives: ns per `CancelToken::check()` for the empty
///    token (one null test — the disarmed steady state), an armed cancel
///    source, and a deadline child (parent-chain walk + clock read); plus
///    ns per `FaultPlan::at_site()` against a non-matching rule (the armed-
///    but-idle plan scan);
///  * route overhead: median full-board route of the smoke multi_group
///    scenario under (a) no fault plane at all — the baseline, (b) an armed
///    plan whose rules never match, (c) a far-future deadline (armed token
///    threaded through the extender's per-pop polls). The relative overhead
///    of (b) and (c) over (a) is reported; the budget is <= 1%.
///
/// Results go through the `lmr::bench` JSON writer (default
/// BENCH_micro_fault.json, volatile-key conventions of report.hpp); the
/// tracked-results counterpart is the `"fault_storm"` section `bench_suite
/// --fault-storm` attaches to BENCH_results.json.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/clock.hpp"
#include "bench_harness/report.hpp"
#include "fault/cancel.hpp"
#include "fault/fault_plan.hpp"
#include "pipeline/router.hpp"
#include "scenario/scenario_families.hpp"

namespace {

using lmr::core::seconds_since;

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n == 0 ? 0.0 : (n % 2 == 1 ? xs[n / 2] : (xs[n / 2 - 1] + xs[n / 2]) / 2.0);
}

/// Keep the loop body observable so the check isn't hoisted or elided.
template <typename T>
void do_not_optimize(const T& value) {
  asm volatile("" : : "r"(&value) : "memory");
}

template <typename Fn>
double ns_per_op(std::size_t iters, Fn&& fn) {
  const auto t0 = lmr::core::now();
  for (std::size_t i = 0; i < iters; ++i) fn();
  return seconds_since(t0) * 1e9 / static_cast<double>(iters);
}

lmr::pipeline::RouterOptions board_options(const lmr::scenario::Scenario& sc) {
  lmr::pipeline::RouterOptions opts;
  opts.extender.l_disc = 0.5;
  opts.extender.max_width_steps = 24;
  if (sc.spec.extender_tolerance > 0.0) opts.extender.tolerance = sc.spec.extender_tolerance;
  if (sc.pair_rule_set.size() > 1) opts.pair_rule_set = sc.pair_rule_set;
  return opts;
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--repeats N] [--smoke] [--out PATH]\n"
      "  --repeats N  timed route rounds per configuration (default 9)\n"
      "  --smoke      fewer rounds and shorter primitive loops\n"
      "  --out PATH   results file (default BENCH_micro_fault.json)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  int repeats = 9;
  bool smoke = false;
  std::string out_path = "BENCH_micro_fault.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repeats" && i + 1 < argc) {
      repeats = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (smoke) repeats = std::min(repeats, 5);
  const std::size_t iters = smoke ? 2'000'000 : 20'000'000;

  lmr::bench::Json doc = lmr::bench::Json::object();
  doc["schema"] = "lmroute-micro-fault/v1";
  doc["run"] = lmr::bench::run_info_json(lmr::bench::collect_run_info());
  doc["repeats"] = repeats;

  // --- primitives: ns per check/probe ---------------------------------
  {
    const lmr::fault::CancelToken empty;
    const lmr::fault::CancelToken source = lmr::fault::CancelToken::source();
    const lmr::fault::CancelToken deadline = source.with_deadline(3600.0);
    lmr::fault::FaultPlan idle_plan;
    idle_plan.add({"never:*", /*nth=*/1, /*count=*/1});

    const double empty_ns = ns_per_op(iters, [&] {
      empty.check();
      do_not_optimize(empty);
    });
    const double source_ns = ns_per_op(iters, [&] {
      source.check();
      do_not_optimize(source);
    });
    const double deadline_ns = ns_per_op(iters, [&] {
      deadline.check();
      do_not_optimize(deadline);
    });
    const double at_site_ns = ns_per_op(iters, [&] {
      idle_plan.at_site("extend:b0/g0/m0");
      do_not_optimize(idle_plan);
    });

    std::printf("%-24s %12s\n", "primitive", "ns/op");
    std::printf("%-24s %12.2f\n", "check/empty", empty_ns);
    std::printf("%-24s %12.2f\n", "check/cancel-source", source_ns);
    std::printf("%-24s %12.2f\n", "check/deadline-child", deadline_ns);
    std::printf("%-24s %12.2f\n", "at_site/no-match", at_site_ns);

    lmr::bench::Json jp = lmr::bench::Json::object();
    jp["iters"] = lmr::bench::Json{iters};
    jp["check_empty_ns"] = empty_ns;
    jp["check_cancel_source_ns"] = source_ns;
    jp["check_deadline_child_ns"] = deadline_ns;
    jp["at_site_no_match_ns"] = at_site_ns;
    doc["primitives"] = std::move(jp);
  }

  // --- route overhead: disarmed vs armed-idle plan vs far deadline ------
  {
    const lmr::scenario::Scenario sc = lmr::scenario::materialize(
        lmr::scenario::family("multi_group", true).cases.at(0));

    const auto route_median = [&](const lmr::pipeline::RouterOptions& opts) {
      const lmr::pipeline::Router router(sc.rules, opts);
      {
        lmr::layout::Layout warmup = sc.layout;  // untimed: pool + allocator
        (void)router.route_board(warmup);
      }
      std::vector<double> times;
      times.reserve(static_cast<std::size_t>(repeats));
      for (int r = 0; r < repeats; ++r) {
        lmr::layout::Layout board = sc.layout;
        const auto t0 = lmr::core::now();
        (void)router.route_board(board);
        times.push_back(seconds_since(t0));
      }
      return median(std::move(times));
    };

    const lmr::pipeline::RouterOptions base = board_options(sc);

    lmr::pipeline::RouterOptions armed = base;
    armed.fault_scope = "b0";
    armed.fault_plan = std::make_shared<lmr::fault::FaultPlan>();
    armed.fault_plan->add({"never:*", /*nth=*/1, /*count=*/1});

    lmr::pipeline::RouterOptions timed = base;
    timed.deadline_s = 3600.0;

    const double base_s = route_median(base);
    const double armed_s = route_median(armed);
    const double timed_s = route_median(timed);
    const auto overhead_pct = [base_s](double s) {
      return base_s > 0.0 ? (s - base_s) / base_s * 100.0 : 0.0;
    };

    std::printf("\n%-24s %12s %12s\n", "route", "median[s]", "overhead[%]");
    std::printf("%-24s %12.5f %12s\n", "disarmed", base_s, "-");
    std::printf("%-24s %12.5f %12.2f\n", "armed-idle-plan", armed_s,
                overhead_pct(armed_s));
    std::printf("%-24s %12.5f %12.2f\n", "far-deadline", timed_s,
                overhead_pct(timed_s));

    lmr::bench::Json jr = lmr::bench::Json::object();
    jr["scenario"] = sc.spec.name;
    jr["rounds"] = repeats;
    jr["disarmed_median_s"] = base_s;
    jr["armed_idle_plan_median_s"] = armed_s;
    jr["armed_idle_plan_overhead_pct"] = overhead_pct(armed_s);
    jr["far_deadline_median_s"] = timed_s;
    jr["far_deadline_overhead_pct"] = overhead_pct(timed_s);
    doc["route_overhead"] = std::move(jr);
  }

  return lmr::bench::write_results_file(out_path, doc);
}
