/// \file table2_main.cpp
/// Regenerates Table II: extension upper bound (Eq. 20) with vs without DP
/// on the dummy dense-via design while d_gap tightens from 2.5 to 5.0, and
/// writes the measurements through the harness writer:
///
///   bench_table2 [--json PATH]     (default BENCH_table2.json)

#include <cstdio>
#include <cstring>
#include <string>

#include "core/clock.hpp"
#include "baseline/fixed_track.hpp"
#include "bench_harness/report.hpp"
#include "core/trace_extender.hpp"
#include "workload/metrics.hpp"
#include "workload/table2_cases.hpp"

int main(int argc, char** argv) {
  std::string json_path = "BENCH_table2.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  std::printf("Table II: extension upper bound with and without DP\n");
  std::printf("%-4s %-5s %-7s %-14s | %-10s %-12s | %-10s %-12s\n", "case", "dgap",
              "wtrace", "lorig/dgap", "withDP(%)", "paper", "noDP(%)", "paper");
  const double paper_with[6] = {879.30, 718.79, 581.42, 481.14, 428.33, 327.41};
  const double paper_without[6] = {845.80, 742.16, 345.62, 229.79, 177.92, 80.20};

  lmr::bench::Json cases = lmr::bench::Json::array();
  for (int k = 1; k <= 6; ++k) {
    double with_dp = 0.0, without_dp = 0.0;
    double ratio = 0.0, dgap = 0.0, wtrace = 0.0;
    double t_with = 0.0, t_without = 0.0;
    {
      auto c = lmr::workload::table2_case(k);
      dgap = c.rules.gap;
      wtrace = c.rules.trace_width;
      ratio = c.l_original / c.rules.gap;
      lmr::core::TraceExtender ext(c.rules, c.area);
      lmr::core::ExtenderConfig cfg;
      cfg.max_width_steps = 24;
      const auto t0 = lmr::core::now();
      ext.maximize(c.trace, cfg);
      t_with = lmr::core::seconds_since(t0);
      with_dp = lmr::workload::extension_upper_bound_pct(c.l_original,
                                                         c.trace.path.length());
    }
    {
      auto c = lmr::workload::table2_case(k);
      lmr::baseline::FixedTrackMeanderer base(c.rules, c.area);
      lmr::baseline::FixedTrackConfig cfg;
      // Gridded safety tracks at the d_protect grid (the paper's "fixed
      // routing tracks"); pattern width stays at the constant default.
      cfg.track_pitch = c.rules.protect;
      const auto t0 = lmr::core::now();
      base.maximize(c.trace, cfg);
      t_without =
          lmr::core::seconds_since(t0);
      without_dp = lmr::workload::extension_upper_bound_pct(c.l_original,
                                                            c.trace.path.length());
    }
    std::printf("%-4d %-5.2f %-7.2f %-14.2f | %-10.2f %-12.2f | %-10.2f %-12.2f\n", k,
                dgap, wtrace, ratio, with_dp, paper_with[k - 1], without_dp,
                paper_without[k - 1]);

    lmr::bench::Json jc = lmr::bench::Json::object();
    jc["case"] = static_cast<std::int64_t>(k);
    jc["dgap"] = dgap;
    jc["trace_width"] = wtrace;
    jc["lorig_over_dgap"] = ratio;
    jc["with_dp_pct"] = with_dp;
    jc["without_dp_pct"] = without_dp;
    jc["with_dp_runtime_s"] = t_with;
    jc["without_dp_runtime_s"] = t_without;
    cases.push_back(std::move(jc));
  }

  lmr::bench::Json doc = lmr::bench::Json::object();
  doc["schema"] = "lmroute-bench-table2/v1";
  doc["run"] = lmr::bench::run_info_json(lmr::bench::collect_run_info());
  doc["cases"] = std::move(cases);
  return lmr::bench::write_results_file(json_path, doc);
}
