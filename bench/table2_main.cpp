/// \file table2_main.cpp
/// Regenerates Table II: extension upper bound (Eq. 20) with vs without DP
/// on the dummy dense-via design while d_gap tightens from 2.5 to 5.0.

#include <chrono>
#include <cstdio>

#include "baseline/fixed_track.hpp"
#include "core/trace_extender.hpp"
#include "workload/metrics.hpp"
#include "workload/table2_cases.hpp"

int main() {
  std::printf("Table II: extension upper bound with and without DP\n");
  std::printf("%-4s %-5s %-7s %-14s | %-10s %-12s | %-10s %-12s\n", "case", "dgap",
              "wtrace", "lorig/dgap", "withDP(%)", "paper", "noDP(%)", "paper");
  const double paper_with[6] = {879.30, 718.79, 581.42, 481.14, 428.33, 327.41};
  const double paper_without[6] = {845.80, 742.16, 345.62, 229.79, 177.92, 80.20};

  for (int k = 1; k <= 6; ++k) {
    double with_dp = 0.0, without_dp = 0.0;
    double ratio = 0.0, dgap = 0.0, wtrace = 0.0;
    {
      auto c = lmr::workload::table2_case(k);
      dgap = c.rules.gap;
      wtrace = c.rules.trace_width;
      ratio = c.l_original / c.rules.gap;
      lmr::core::TraceExtender ext(c.rules, c.area);
      lmr::core::ExtenderConfig cfg;
      cfg.max_width_steps = 24;
      ext.maximize(c.trace, cfg);
      with_dp = lmr::workload::extension_upper_bound_pct(c.l_original,
                                                         c.trace.path.length());
    }
    {
      auto c = lmr::workload::table2_case(k);
      lmr::baseline::FixedTrackMeanderer base(c.rules, c.area);
      lmr::baseline::FixedTrackConfig cfg;
      // Gridded safety tracks at the d_protect grid (the paper's "fixed
      // routing tracks"); pattern width stays at the constant default.
      cfg.track_pitch = c.rules.protect;
      base.maximize(c.trace, cfg);
      without_dp = lmr::workload::extension_upper_bound_pct(c.l_original,
                                                            c.trace.path.length());
    }
    std::printf("%-4d %-5.2f %-7.2f %-14.2f | %-10.2f %-12.2f | %-10.2f %-12.2f\n", k,
                dgap, wtrace, ratio, with_dp, paper_with[k - 1], without_dp,
                paper_without[k - 1]);
  }
  return 0;
}
