/// \file fig15_main.cpp
/// Regenerates Fig. 15: six panels showing extension performance with and
/// without DP on Table II cases 1, 5 and 6.

#include <cstdio>
#include <filesystem>

#include "baseline/fixed_track.hpp"
#include "core/trace_extender.hpp"
#include "viz/render.hpp"
#include "workload/table2_cases.hpp"

int main() {
  std::filesystem::create_directories("out");
  for (const int k : {1, 5, 6}) {
    {
      auto c = lmr::workload::table2_case(k);
      lmr::core::TraceExtender ext(c.rules, c.area);
      lmr::core::ExtenderConfig cfg;
      cfg.max_width_steps = 24;
      ext.maximize(c.trace, cfg);
      const std::string path = "out/fig15_case" + std::to_string(k) + "_with_dp.svg";
      lmr::viz::render_trace_panel(c.trace, c.area, path);
      std::printf("fig15 case %d with DP:    len %.1f -> %s\n", k, c.trace.path.length(),
                  path.c_str());
    }
    {
      auto c = lmr::workload::table2_case(k);
      lmr::baseline::FixedTrackMeanderer base(c.rules, c.area);
      base.maximize(c.trace);
      const std::string path = "out/fig15_case" + std::to_string(k) + "_without_dp.svg";
      lmr::viz::render_trace_panel(c.trace, c.area, path);
      std::printf("fig15 case %d without DP: len %.1f -> %s\n", k, c.trace.path.length(),
                  path.c_str());
    }
  }
  return 0;
}
