/// \file fig14_main.cpp
/// Regenerates Fig. 14: (a) display of a length-matching result on Table I
/// case 1; (b) the any-direction functionality on a 30-degree corridor.

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/trace_extender.hpp"
#include "pipeline/group_matcher.hpp"
#include "viz/render.hpp"
#include "workload/table1_cases.hpp"

int main() {
  std::filesystem::create_directories("out");

  // (a) Case 1 after matching.
  {
    auto c = lmr::workload::table1_case(1);
    lmr::pipeline::GroupMatcher gm(c.layout, c.rules);
    lmr::core::ExtenderConfig cfg;
    cfg.l_disc = c.rules.gap;
    cfg.max_width_steps = 24;
    gm.match_group(0, cfg);
    lmr::viz::render_layout(c.layout, "out/fig14a.svg");
    std::printf("fig14a: matched Table I case 1 -> out/fig14a.svg\n");
  }

  // (b) Any-direction: 30-degree corridor with an any-angle trace.
  {
    const double a30 = M_PI / 6.0;
    const lmr::geom::Vec2 dir{std::cos(a30), std::sin(a30)};
    const lmr::geom::Vec2 n{-dir.y, dir.x};
    const lmr::geom::Point p0{0, 0};
    const lmr::geom::Point p1 = p0 + dir * 60.0;

    lmr::layout::Layout l;
    lmr::layout::Trace t;
    t.name = "slant";
    t.width = 0.25;
    // Any-direction path: 30-degree run with a mid 17-degree kink.
    const lmr::geom::Point mid = p0 + dir * 28.0 + n * 3.0;
    t.path = lmr::geom::Polyline{{p0, mid, p1}};
    const auto id = l.add_trace(t);

    lmr::layout::RoutableArea area;
    area.outline = lmr::geom::Polygon{{p0 - dir * 2.0 - n * 8.0, p1 + dir * 2.0 - n * 8.0,
                                       p1 + dir * 2.0 + n * 8.0, p0 - dir * 2.0 + n * 8.0}};
    area.holes.push_back(lmr::geom::Polygon::regular(p0 + dir * 20.0 + n * 4.0, 1.0, 8));
    area.holes.push_back(lmr::geom::Polygon::regular(p0 + dir * 40.0 - n * 4.0, 1.0, 8));
    l.set_routable_area(id, area);
    for (const auto& h : area.holes) l.add_obstacle({h, "via"});

    lmr::drc::DesignRules rules;
    rules.gap = 1.0;
    rules.obs = 0.5;
    rules.protect = 0.5;
    rules.trace_width = 0.25;
    lmr::core::TraceExtender ext(rules, area);
    auto& trace = l.trace(id);
    const double target = trace.length() * 1.6;
    const auto stats = ext.extend(trace, target);
    lmr::viz::render_layout(l, "out/fig14b.svg");
    std::printf("fig14b: any-direction trace %.2f -> %.2f (target %.2f) -> out/fig14b.svg\n",
                stats.initial_length, stats.final_length, target);
  }
  return 0;
}
