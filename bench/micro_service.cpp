/// \file micro_service.cpp
/// `bench_micro_service` — service-tier scheduling microbenchmarks.
///
///   bench_micro_service [--repeats N] [--threads N] [--smoke] [--out PATH]
///
/// Two measurements on the RoutingService, isolated from board variety (one
/// small multi_group board, safe retarget edits only):
///
///  * coalescing: bursts of 1/2/4/8 edits submitted to a *serial* service
///    and drained — every burst becomes exactly one apply batch, so the
///    per-edit amortized wall time shows how one reroute + one clearance
///    re-sweep absorbs a whole burst (burst=1 is the uncoalesced baseline);
///  * dispatch latency: a round-robin stream over two boards on a shared
///    2-thread service with no intermediate drains — the queue-depth and
///    dispatch-wait counters expose how long edits sat behind an in-flight
///    route before their batch started.
///
/// Results go through the `lmr::bench` JSON writer (default
/// BENCH_micro_service.json, volatile-key conventions of report.hpp); the
/// tracked-results counterpart is the `"service"` section `bench_suite
/// --service` attaches to BENCH_results.json.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/clock.hpp"
#include "bench_harness/report.hpp"
#include "scenario/scenario_families.hpp"
#include "service/routing_service.hpp"

namespace {

using lmr::core::seconds_since;

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n == 0 ? 0.0 : (n % 2 == 1 ? xs[n / 2] : (xs[n / 2 - 1] + xs[n / 2]) / 2.0);
}

/// Retarget scripts that are always legal: the extender rejects targets
/// below a member's pristine length, so each group's floor is its longest
/// pristine member * 1.02 (the edit_storm clamp). Edit k cycles through the
/// groups with a slowly wobbling factor so consecutive retargets of one
/// group differ and each forces a real reroute of that group.
class RetargetScript {
 public:
  explicit RetargetScript(const lmr::layout::Layout& pristine) {
    for (const lmr::layout::MatchGroup& g : pristine.groups()) {
      double len = 0.0;
      for (const lmr::layout::GroupMember& m : g.members) {
        if (m.kind == lmr::layout::MemberKind::SingleEnded) {
          len = std::max(len, pristine.trace(m.id).length());
        } else {
          const lmr::layout::DiffPair& p = pristine.pair(m.id);
          len = std::max({len, p.positive.length(), p.negative.length()});
        }
      }
      floors_.push_back(std::max(g.target_length, len * 1.02));
    }
  }

  lmr::layout::BoardEdit next() {
    const std::size_t g = k_ % floors_.size();
    const double factor = 1.0 + 0.003 * static_cast<double>((k_ % 4) + 1);
    ++k_;
    lmr::layout::BoardEdit e;
    e.kind = lmr::layout::BoardEditKind::SetGroupTarget;
    e.group = g;
    e.target = floors_[g] * factor;
    return e;
  }

 private:
  std::vector<double> floors_;
  std::size_t k_ = 0;
};

lmr::pipeline::RouterOptions board_options(const lmr::scenario::Scenario& sc) {
  lmr::pipeline::RouterOptions opts;
  opts.extender.l_disc = 0.5;
  opts.extender.max_width_steps = 24;
  if (sc.spec.extender_tolerance > 0.0) opts.extender.tolerance = sc.spec.extender_tolerance;
  if (sc.pair_rule_set.size() > 1) opts.pair_rule_set = sc.pair_rule_set;
  return opts;
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--repeats N] [--threads N] [--smoke] [--out PATH]\n"
      "  --repeats N  timed rounds per burst size / stream length factor (default 6)\n"
      "  --threads N  latency-stream service parallelism (default 2)\n"
      "  --smoke      fewer rounds\n"
      "  --out PATH   results file (default BENCH_micro_service.json)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  int repeats = 6;
  std::size_t threads = 2;
  bool smoke = false;
  std::string out_path = "BENCH_micro_service.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repeats" && i + 1 < argc) {
      repeats = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (smoke) repeats = std::min(repeats, 3);

  const lmr::scenario::Scenario sc =
      lmr::scenario::materialize(lmr::scenario::family("multi_group", true).cases.at(0));

  lmr::bench::Json doc = lmr::bench::Json::object();
  doc["schema"] = "lmroute-micro-service/v1";
  doc["run"] = lmr::bench::run_info_json(lmr::bench::collect_run_info());
  doc["repeats"] = repeats;
  doc["scenario"] = sc.spec.name;

  // --- coalescing: serial service, one board, bursts of growing size ----
  std::printf("%-12s %-8s %-8s %-8s %-10s %-12s %-12s\n", "bench", "burst", "edits",
              "batches", "maxbatch", "edit-min[s]", "edit-med[s]");
  lmr::bench::Json jcoalesce = lmr::bench::Json::array();
  for (const std::size_t burst : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                  std::size_t{8}}) {
    lmr::service::ServiceOptions sopts;
    sopts.threads = 1;  // 0-worker pool: bursts queue fully, drain dispatches
    lmr::service::RoutingService svc(sopts);
    svc.add_board("b0", sc.rules, board_options(sc), sc.layout);
    svc.drain();

    RetargetScript script(sc.layout);
    std::vector<double> per_edit;
    for (int r = 0; r < repeats; ++r) {
      const auto t0 = lmr::core::now();
      for (std::size_t k = 0; k < burst; ++k) svc.submit("b0", script.next());
      svc.drain();
      per_edit.push_back(seconds_since(t0) / static_cast<double>(burst));
    }
    const lmr::service::BoardStats st = svc.stats("b0");
    const double mn = *std::min_element(per_edit.begin(), per_edit.end());
    const double md = median(per_edit);
    std::printf("%-12s %-8zu %-8llu %-8llu %-10llu %-12.5f %-12.5f\n", "coalesce", burst,
                static_cast<unsigned long long>(st.applied),
                static_cast<unsigned long long>(st.batches),
                static_cast<unsigned long long>(st.max_batch), mn, md);

    lmr::bench::Json jc = lmr::bench::Json::object();
    jc["burst"] = lmr::bench::Json{burst};
    jc["rounds"] = repeats;
    jc["edits"] = lmr::bench::Json{st.applied};
    jc["batches"] = lmr::bench::Json{st.batches};
    jc["coalesced_batches"] = lmr::bench::Json{st.coalesced_batches};
    jc["max_batch"] = lmr::bench::Json{st.max_batch};
    jc["per_edit_min_s"] = mn;
    jc["per_edit_median_s"] = md;
    jc["apply_total_s"] = st.apply_s;
    jcoalesce.push_back(std::move(jc));
  }
  doc["coalescing"] = std::move(jcoalesce);

  // --- dispatch latency: 2 boards round-robin on a shared pool ----------
  {
    lmr::service::ServiceOptions sopts;
    sopts.threads = threads;
    lmr::service::RoutingService svc(sopts);
    svc.add_board("b0", sc.rules, board_options(sc), sc.layout);
    svc.add_board("b1", sc.rules, board_options(sc), sc.layout);
    svc.drain();

    RetargetScript s0(sc.layout);
    RetargetScript s1(sc.layout);
    const std::size_t edits_per_board = static_cast<std::size_t>(repeats) * 4;
    const auto t0 = lmr::core::now();
    for (std::size_t k = 0; k < edits_per_board; ++k) {
      svc.submit("b0", s0.next());
      svc.submit("b1", s1.next());
    }
    const double submit_all_s = seconds_since(t0);  // enqueue cost only
    svc.drain();
    const double stream_s = seconds_since(t0);

    lmr::bench::Json jlat = lmr::bench::Json::object();
    jlat["service_threads"] = lmr::bench::Json{svc.threads()};
    jlat["boards"] = 2;
    jlat["edits"] = lmr::bench::Json{2 * edits_per_board};
    jlat["submit_all_s"] = submit_all_s;
    jlat["stream_s"] = stream_s;
    jlat["edits_per_s"] =
        stream_s > 0.0 ? static_cast<double>(2 * edits_per_board) / stream_s : 0.0;
    lmr::bench::Json jboards = lmr::bench::Json::array();
    for (const char* id : {"b0", "b1"}) {
      const lmr::service::BoardStats st = svc.stats(id);
      std::printf("%-12s %-8s edits=%-5llu batches=%-4llu coalesced=%-4llu "
                  "wait-mean[s]=%-10.5f wait-max[s]=%-10.5f\n",
                  "latency", id, static_cast<unsigned long long>(st.applied),
                  static_cast<unsigned long long>(st.batches),
                  static_cast<unsigned long long>(st.coalesced_batches),
                  st.applied > 0 ? st.dispatch_wait_s / static_cast<double>(st.applied)
                                 : 0.0,
                  st.max_dispatch_wait_s);
      lmr::bench::Json jb = lmr::bench::Json::object();
      jb["board"] = std::string(id);
      jb["edits"] = lmr::bench::Json{st.applied};
      jb["batches"] = lmr::bench::Json{st.batches};
      jb["coalesced_batches"] = lmr::bench::Json{st.coalesced_batches};
      jb["max_batch"] = lmr::bench::Json{st.max_batch};
      jb["max_queue_depth"] = lmr::bench::Json{st.max_queue_depth};
      jb["queued_while_frozen"] = lmr::bench::Json{st.queued_while_frozen};
      jb["dispatch_wait_total_s"] = st.dispatch_wait_s;
      jb["dispatch_wait_max_s"] = st.max_dispatch_wait_s;
      jb["apply_total_s"] = st.apply_s;
      jboards.push_back(std::move(jb));
    }
    jlat["boards_detail"] = std::move(jboards);
    doc["latency"] = std::move(jlat);
  }

  return lmr::bench::write_results_file(out_path, doc);
}
