/// \file micro_dtw.cpp
/// Microbenchmarks for DTW (O(I*J), Eq. 17) and the MSDTW multi-scale
/// recursion on synthetic sub-trace node sequences.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "dtw/msdtw.hpp"

namespace {

std::vector<lmr::geom::Point> sub_trace(std::size_t n, double y, double jitter_phase) {
  std::vector<lmr::geom::Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) * 2.0;
    pts.push_back({x, y + 0.1 * std::sin(0.7 * x + jitter_phase)});
  }
  return pts;
}

void BM_Dtw(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto p = sub_trace(n, +0.4, 0.0);
  const auto q = sub_trace(n, -0.4, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lmr::dtw::dtw_match(p, q));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Dtw)->RangeMultiplier(2)->Range(16, 512)->Complexity(benchmark::oNSquared);

void BM_MsdtwTwoScales(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto p = sub_trace(n, +0.4, 0.0);
  const auto q = sub_trace(n, -0.4, 0.3);
  const std::vector<double> rules{0.8, 2.4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(lmr::dtw::msdtw_match(p, q, rules));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MsdtwTwoScales)->RangeMultiplier(2)->Range(16, 512)->Complexity();

}  // namespace

BENCHMARK_MAIN();
