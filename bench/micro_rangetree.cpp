/// \file micro_rangetree.cpp
/// Microbenchmark for the range tree of §IV-D: O(N log N) build and
/// O(log^2 N + k) window queries, the accelerator behind Alg. 2's P_check.

#include <benchmark/benchmark.h>

#include <random>

#include "index/range_tree.hpp"
#include "layout/clearance_index.hpp"

namespace {

std::vector<lmr::index::RangeTree2D::Entry> random_entries(std::size_t n) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> u(0.0, 1000.0);
  std::vector<lmr::index::RangeTree2D::Entry> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    entries.push_back({{u(rng), u(rng)}, i});
  }
  return entries;
}

void BM_RangeTreeBuild(benchmark::State& state) {
  const auto entries = random_entries(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    lmr::index::RangeTree2D tree{entries};
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RangeTreeBuild)->RangeMultiplier(4)->Range(256, 65536)->Complexity();

void BM_RangeTreeQuerySmallWindow(benchmark::State& state) {
  const auto entries = random_entries(static_cast<std::size_t>(state.range(0)));
  const lmr::index::RangeTree2D tree{entries};
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(0.0, 980.0);
  for (auto _ : state) {
    const double x = u(rng), y = u(rng);
    std::size_t count = 0;
    tree.visit({{x, y}, {x + 20.0, y + 20.0}}, [&](const auto&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RangeTreeQuerySmallWindow)
    ->RangeMultiplier(4)
    ->Range(256, 65536)
    ->Complexity();

/// ClearanceIndex sweep cache: a board of parallel traces, swept repeatedly.
/// Three regimes — cold (every sweep re-indexes everything, the pre-cache
/// behaviour), warm (nothing changed; cached violations returned verbatim),
/// and one-dirty (a single trace re-inserted per sweep; only its overlay
/// tree is rebuilt).
struct SweepFixture {
  lmr::drc::DesignRules rules;
  std::vector<lmr::layout::Trace> traces;

  explicit SweepFixture(std::size_t n) {
    rules.gap = 1.0;
    traces.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      lmr::layout::Trace& t = traces[i];
      t.id = static_cast<lmr::layout::TraceId>(i + 1);
      t.width = 0.2;
      const double y = static_cast<double>(i) * 2.0;
      t.path = lmr::geom::Polyline{{{0.0, y}, {400.0, y}}};
    }
  }

  [[nodiscard]] lmr::layout::ClearanceIndex make_index() const {
    lmr::layout::ClearanceIndex index(rules);
    for (std::size_t i = 0; i < traces.size(); ++i) {
      index.add_slot(traces[i].width, static_cast<std::uint32_t>(i));
    }
    for (std::size_t i = 0; i < traces.size(); ++i) {
      index.insert(static_cast<std::uint32_t>(i), traces[i]);
    }
    return index;
  }
};

void BM_ClearanceSweepCold(benchmark::State& state) {
  const SweepFixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    // Re-inserting every slot dirties them all, forcing a full tree rebuild
    // — equivalent to the pre-cache sweep() cost.
    auto index = fx.make_index();
    benchmark::DoNotOptimize(index.sweep().size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ClearanceSweepCold)->RangeMultiplier(4)->Range(16, 256)->Complexity();

void BM_ClearanceSweepWarm(benchmark::State& state) {
  const SweepFixture fx(static_cast<std::size_t>(state.range(0)));
  auto index = fx.make_index();
  benchmark::DoNotOptimize(index.sweep().size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.sweep().size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ClearanceSweepWarm)->RangeMultiplier(4)->Range(16, 256)->Complexity();

void BM_ClearanceSweepOneDirty(benchmark::State& state) {
  const SweepFixture fx(static_cast<std::size_t>(state.range(0)));
  auto index = fx.make_index();
  benchmark::DoNotOptimize(index.sweep().size());
  for (auto _ : state) {
    index.insert(0, fx.traces[0]);
    benchmark::DoNotOptimize(index.sweep().size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ClearanceSweepOneDirty)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
