/// \file micro_rangetree.cpp
/// Microbenchmark for the range tree of §IV-D: O(N log N) build and
/// O(log^2 N + k) window queries, the accelerator behind Alg. 2's P_check.

#include <benchmark/benchmark.h>

#include <random>

#include "index/range_tree.hpp"

namespace {

std::vector<lmr::index::RangeTree2D::Entry> random_entries(std::size_t n) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> u(0.0, 1000.0);
  std::vector<lmr::index::RangeTree2D::Entry> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    entries.push_back({{u(rng), u(rng)}, i});
  }
  return entries;
}

void BM_RangeTreeBuild(benchmark::State& state) {
  const auto entries = random_entries(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    lmr::index::RangeTree2D tree{entries};
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RangeTreeBuild)->RangeMultiplier(4)->Range(256, 65536)->Complexity();

void BM_RangeTreeQuerySmallWindow(benchmark::State& state) {
  const auto entries = random_entries(static_cast<std::size_t>(state.range(0)));
  const lmr::index::RangeTree2D tree{entries};
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(0.0, 980.0);
  for (auto _ : state) {
    const double x = u(rng), y = u(rng);
    std::size_t count = 0;
    tree.visit({{x, y}, {x + 20.0, y + 20.0}}, [&](const auto&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RangeTreeQuerySmallWindow)
    ->RangeMultiplier(4)
    ->Range(256, 65536)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
