/// \file micro_rangetree.cpp
/// Microbenchmarks for the two clearance broadphases: the range tree of
/// §IV-D (O(N log N) build, O(log^2 N + k) window queries — Alg. 2's
/// P_check accelerator) and the uniform segment grid (O(1) insert/remove,
/// O(cells + k) window visits) that replaces it on dense boards. The
/// backend-captured ClearanceSweep trio is the head-to-head: the same board
/// swept cold / warm / one-dirty under each forced backend.

#include <benchmark/benchmark.h>

#include <random>

#include "index/range_tree.hpp"
#include "index/seg_grid.hpp"
#include "layout/clearance_index.hpp"

namespace {

std::vector<lmr::index::RangeTree2D::Entry> random_entries(std::size_t n) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> u(0.0, 1000.0);
  std::vector<lmr::index::RangeTree2D::Entry> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    entries.push_back({{u(rng), u(rng)}, i});
  }
  return entries;
}

/// Short random segments in the same 1000x1000 arena the point entries use
/// (10-30 long: the scale of one meander leg against a ~20 cell).
std::vector<lmr::geom::Segment> random_segments(std::size_t n) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> u(0.0, 970.0);
  std::uniform_real_distribution<double> d(10.0, 30.0);
  std::vector<lmr::geom::Segment> segs;
  segs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const lmr::geom::Point a{u(rng), u(rng)};
    segs.push_back({a, {a.x + d(rng), a.y + d(rng)}});
  }
  return segs;
}

void BM_RangeTreeBuild(benchmark::State& state) {
  const auto entries = random_entries(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    lmr::index::RangeTree2D tree{entries};
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RangeTreeBuild)->RangeMultiplier(4)->Range(256, 65536)->Complexity();

void BM_RangeTreeQuerySmallWindow(benchmark::State& state) {
  const auto entries = random_entries(static_cast<std::size_t>(state.range(0)));
  const lmr::index::RangeTree2D tree{entries};
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(0.0, 980.0);
  for (auto _ : state) {
    const double x = u(rng), y = u(rng);
    std::size_t count = 0;
    tree.visit({{x, y}, {x + 20.0, y + 20.0}}, [&](const auto&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RangeTreeQuerySmallWindow)
    ->RangeMultiplier(4)
    ->Range(256, 65536)
    ->Complexity();

void BM_SegGridBuild(benchmark::State& state) {
  const auto segs = random_segments(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    lmr::index::SegGrid grid(20.0);
    for (std::size_t i = 0; i < segs.size(); ++i) {
      grid.insert(segs[i], static_cast<std::uint64_t>(i));
    }
    benchmark::DoNotOptimize(grid.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SegGridBuild)->RangeMultiplier(4)->Range(256, 65536)->Complexity();

void BM_SegGridQuerySmallWindow(benchmark::State& state) {
  const auto segs = random_segments(static_cast<std::size_t>(state.range(0)));
  lmr::index::SegGrid grid(20.0);
  for (std::size_t i = 0; i < segs.size(); ++i) {
    grid.insert(segs[i], static_cast<std::uint64_t>(i));
  }
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(0.0, 980.0);
  for (auto _ : state) {
    const double x = u(rng), y = u(rng);
    std::size_t count = 0;
    grid.visit({{x, y}, {x + 20.0, y + 20.0}}, [&](const auto&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SegGridQuerySmallWindow)
    ->RangeMultiplier(4)
    ->Range(256, 65536)
    ->Complexity();

/// ClearanceIndex sweep cache: a board of parallel traces, swept repeatedly
/// under a forced broadphase backend. Three regimes — cold (every sweep
/// re-indexes everything, the pre-cache behaviour), warm (nothing changed;
/// cached violations returned verbatim), and one-dirty (a single trace
/// re-inserted per sweep; the tree rebuilds one overlay, the grid re-registers
/// one slot's segments). The 16/256/4096 sizes bracket the Auto flip point
/// (ClearanceIndex::kGridAutoSlots = 64).
struct SweepFixture {
  lmr::drc::DesignRules rules;
  std::vector<lmr::layout::Trace> traces;
  lmr::layout::ClearanceBackend backend;

  SweepFixture(std::size_t n, lmr::layout::ClearanceBackend b) : backend(b) {
    rules.gap = 1.0;
    traces.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      lmr::layout::Trace& t = traces[i];
      t.id = static_cast<lmr::layout::TraceId>(i + 1);
      t.width = 0.2;
      const double y = static_cast<double>(i) * 2.0;
      t.path = lmr::geom::Polyline{{{0.0, y}, {400.0, y}}};
    }
  }

  [[nodiscard]] lmr::layout::ClearanceIndex make_index() const {
    lmr::layout::ClearanceIndex index(rules, {}, backend);
    for (std::size_t i = 0; i < traces.size(); ++i) {
      index.add_slot(traces[i].width, static_cast<std::uint32_t>(i));
    }
    for (std::size_t i = 0; i < traces.size(); ++i) {
      index.insert(static_cast<std::uint32_t>(i), traces[i]);
    }
    return index;
  }
};

void BM_ClearanceSweepCold(benchmark::State& state,
                           lmr::layout::ClearanceBackend backend) {
  const SweepFixture fx(static_cast<std::size_t>(state.range(0)), backend);
  for (auto _ : state) {
    // Re-inserting every slot dirties them all, forcing a full broadphase
    // rebuild — equivalent to the pre-cache sweep() cost.
    auto index = fx.make_index();
    benchmark::DoNotOptimize(index.sweep().size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK_CAPTURE(BM_ClearanceSweepCold, tree, lmr::layout::ClearanceBackend::RangeTree)
    ->RangeMultiplier(16)
    ->Range(16, 4096)
    ->Complexity();
BENCHMARK_CAPTURE(BM_ClearanceSweepCold, grid, lmr::layout::ClearanceBackend::Grid)
    ->RangeMultiplier(16)
    ->Range(16, 4096)
    ->Complexity();

void BM_ClearanceSweepWarm(benchmark::State& state,
                           lmr::layout::ClearanceBackend backend) {
  const SweepFixture fx(static_cast<std::size_t>(state.range(0)), backend);
  auto index = fx.make_index();
  benchmark::DoNotOptimize(index.sweep().size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.sweep().size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK_CAPTURE(BM_ClearanceSweepWarm, tree, lmr::layout::ClearanceBackend::RangeTree)
    ->RangeMultiplier(16)
    ->Range(16, 4096)
    ->Complexity();
BENCHMARK_CAPTURE(BM_ClearanceSweepWarm, grid, lmr::layout::ClearanceBackend::Grid)
    ->RangeMultiplier(16)
    ->Range(16, 4096)
    ->Complexity();

void BM_ClearanceSweepOneDirty(benchmark::State& state,
                               lmr::layout::ClearanceBackend backend) {
  const SweepFixture fx(static_cast<std::size_t>(state.range(0)), backend);
  auto index = fx.make_index();
  benchmark::DoNotOptimize(index.sweep().size());
  for (auto _ : state) {
    index.insert(0, fx.traces[0]);
    benchmark::DoNotOptimize(index.sweep().size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK_CAPTURE(BM_ClearanceSweepOneDirty, tree,
                  lmr::layout::ClearanceBackend::RangeTree)
    ->RangeMultiplier(16)
    ->Range(16, 4096)
    ->Complexity();
BENCHMARK_CAPTURE(BM_ClearanceSweepOneDirty, grid, lmr::layout::ClearanceBackend::Grid)
    ->RangeMultiplier(16)
    ->Range(16, 4096)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
