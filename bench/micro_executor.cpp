/// \file micro_executor.cpp
/// Executor microbenchmarks: what the persistent pool buys over per-call
/// `std::async` spawning, and what a repeated `route_batch` costs end to
/// end.
///
///  * PoolSubmitDrain vs AsyncSpawnDrain — pure dispatch overhead of one
///    claimer-style fan-out (the seed router's pattern) with trivial tasks;
///    the pool amortizes thread creation across calls, async pays it every
///    time.
///  * ParallelForDynamic — the helper the router actually calls, per
///    fan-out cost at several widths.
///  * RouteBatchRepeated — 1x route_batch on the multi_group/3x6 board per
///    iteration through one persistent Router (pool created once); the
///    repeated-call regression measure of the executor PR.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <vector>

#include "exec/task_pool.hpp"
#include "pipeline/router.hpp"
#include "scenario/scenario_families.hpp"

namespace {

/// Seed-style fan-out: spawn `threads` async claimers per call.
void BM_AsyncSpawnDrain(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 16;
  for (auto _ : state) {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> sum{0};
    std::vector<std::future<void>> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.push_back(std::async(std::launch::async, [&] {
        for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
          sum.fetch_add(i, std::memory_order_relaxed);
        }
      }));
    }
    for (auto& f : workers) f.get();
    benchmark::DoNotOptimize(sum.load());
  }
}
BENCHMARK(BM_AsyncSpawnDrain)->Arg(2)->Arg(4)->Arg(8);

/// Pool fan-out: same claimer count, workers persist across iterations.
void BM_PoolSubmitDrain(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 16;
  lmr::exec::TaskPool pool(threads - 1);
  for (auto _ : state) {
    std::atomic<std::size_t> sum{0};
    lmr::exec::parallel_for_dynamic(pool, n, threads, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(sum.load());
  }
}
BENCHMARK(BM_PoolSubmitDrain)->Arg(2)->Arg(4)->Arg(8);

/// Fan-out width sweep on the shared claimer helper.
void BM_ParallelForDynamic(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  lmr::exec::TaskPool pool(lmr::exec::resolve_threads(0) - 1);
  std::vector<std::size_t> out(n, 0);
  for (auto _ : state) {
    lmr::exec::parallel_for_dynamic(pool, n, lmr::exec::resolve_threads(0),
                                    [&](std::size_t i) { out[i] = i * i; });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForDynamic)->Arg(8)->Arg(64)->Arg(512);

/// Repeated end-to-end route_batch through one persistent Router: the
/// multi_group/3x6 board, first group, fresh layout copy per iteration.
void BM_RouteBatchRepeated(benchmark::State& state) {
  const auto fam = lmr::scenario::family("multi_group", false);
  const lmr::scenario::Scenario sc = lmr::scenario::materialize(fam.cases.at(0));
  lmr::pipeline::RouterOptions opts;
  opts.extender.l_disc = 0.5;
  opts.extender.max_width_steps = 24;
  opts.threads = static_cast<std::size_t>(state.range(0));
  const lmr::pipeline::Router router(sc.rules, opts);
  for (auto _ : state) {
    lmr::layout::Layout layout = sc.layout;
    const lmr::pipeline::RouteResult rr = router.route_batch(layout, 0);
    benchmark::DoNotOptimize(rr.group.max_error_pct);
  }
}
BENCHMARK(BM_RouteBatchRepeated)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
