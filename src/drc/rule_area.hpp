#pragma once
/// \file rule_area.hpp
/// Design Rule Areas (DRAs): regions of the board where rule values differ.
/// A trace "usually passes different DRAs, demanding the length matching
/// approaches to consider multiple DRC" (§I-B). MSDTW's multi-scale recursion
/// consumes the set of distance rules a differential pair traverses.

#include <optional>
#include <vector>

#include "drc/rules.hpp"
#include "geom/polygon.hpp"

namespace lmr::drc {

/// A polygonal region with its own rule values.
struct RuleArea {
  geom::Polygon region;
  DesignRules rules;
};

/// Base rules plus zero or more overriding areas. Lookup returns the rules of
/// the *last* area containing the query point, falling back to the base —
/// later areas shadow earlier ones, mirroring CAD tool stacking order.
class RuleSet {
 public:
  explicit RuleSet(DesignRules base) : base_(base) { base_.validate(); }

  void add_area(RuleArea area) {
    area.rules.validate();
    areas_.push_back(std::move(area));
  }

  [[nodiscard]] const DesignRules& base() const { return base_; }
  [[nodiscard]] const std::vector<RuleArea>& areas() const { return areas_; }

  /// Rules in force at point `p`.
  [[nodiscard]] const DesignRules& rules_at(const geom::Point& p) const;

  /// The *tightest* rules any part of segment [a, b] passes through:
  /// per-field maximum over the areas the segment touches. Extension of a
  /// segment spanning several DRAs must satisfy all of them (§IV-B handles
  /// multiple DRAs by separating routable areas; this is the conservative
  /// single-area reduction used when areas overlap a segment).
  [[nodiscard]] DesignRules tightest_on_segment(const geom::Segment& s) const;

  /// All pair distance rules seen along the two sub-traces of a differential
  /// pair, ascending and deduplicated — the rule set R of MSDTW (Alg. 3).
  [[nodiscard]] std::vector<double> ascending_pair_pitches(
      const std::vector<double>& observed_pitches) const;

 private:
  DesignRules base_;
  std::vector<RuleArea> areas_;
};

}  // namespace lmr::drc
