#include "drc/rule_area.hpp"

#include <algorithm>

#include "geom/distance.hpp"

namespace lmr::drc {

const DesignRules& RuleSet::rules_at(const geom::Point& p) const {
  const DesignRules* found = &base_;
  for (const RuleArea& a : areas_) {
    if (a.region.contains(p)) found = &a.rules;
  }
  return *found;
}

DesignRules RuleSet::tightest_on_segment(const geom::Segment& s) const {
  DesignRules out = base_;
  for (const RuleArea& a : areas_) {
    const bool touches = a.region.contains(s.a) || a.region.contains(s.b) ||
                         geom::dist_segment_polygon(s, a.region) == 0.0;
    if (!touches) continue;
    out.gap = std::max(out.gap, a.rules.gap);
    out.obs = std::max(out.obs, a.rules.obs);
    out.protect = std::max(out.protect, a.rules.protect);
    out.miter = std::max(out.miter, a.rules.miter);
    out.trace_width = std::max(out.trace_width, a.rules.trace_width);
  }
  return out;
}

std::vector<double> RuleSet::ascending_pair_pitches(
    const std::vector<double>& observed_pitches) const {
  std::vector<double> r = observed_pitches;
  std::sort(r.begin(), r.end());
  r.erase(std::unique(r.begin(), r.end(),
                      [](double a, double b) { return std::abs(a - b) < 1e-9; }),
          r.end());
  return r;
}

}  // namespace lmr::drc
