#include "drc/rules.hpp"

#include <cmath>

namespace lmr::drc {

void DesignRules::validate() const {
  if (gap <= 0.0) throw std::invalid_argument("DesignRules: d_gap must be positive");
  if (obs < 0.0) throw std::invalid_argument("DesignRules: d_obs must be non-negative");
  if (protect <= 0.0) throw std::invalid_argument("DesignRules: d_protect must be positive");
  if (miter < 0.0) throw std::invalid_argument("DesignRules: d_miter must be non-negative");
  if (trace_width < 0.0) throw std::invalid_argument("DesignRules: width must be non-negative");
  if (protect > 10.0 * gap) {
    // A protect rule far above the gap rule starves the DP of transitions and
    // is almost certainly a configuration mistake.
    throw std::invalid_argument("DesignRules: d_protect unreasonably larger than d_gap");
  }
}

QuantizedRules quantize(const DesignRules& rules, double l_disc) {
  if (l_disc <= 0.0) throw std::invalid_argument("quantize: l_disc must be positive");
  QuantizedRules q;
  q.step = l_disc;
  q.rules = rules;
  q.gap_steps = static_cast<int>(std::ceil(rules.effective_gap() / l_disc - 1e-9));
  q.protect_steps = static_cast<int>(std::ceil(rules.protect / l_disc - 1e-9));
  if (q.gap_steps < 1) q.gap_steps = 1;
  if (q.protect_steps < 1) q.protect_steps = 1;
  // Tighten (never loosen) the continuous rules onto the grid.
  q.rules.gap = q.gap_steps * l_disc - rules.trace_width;
  if (q.rules.gap < rules.gap) q.rules.gap = rules.gap;
  q.rules.protect = q.protect_steps * l_disc;
  if (q.rules.protect < rules.protect) q.rules.protect = rules.protect;
  return q;
}

DesignRules virtual_pair_rules(const DesignRules& sub_rules, double pair_pitch) {
  DesignRules v = sub_rules;
  // The median centerline stands for the full pair band: each sub-trace sits
  // pair_pitch/2 away from the median, so every clearance measured from the
  // median must grow by pair_pitch/2 (plus the sub-trace width already
  // accounted via trace_width below).
  v.trace_width = sub_rules.trace_width + pair_pitch;
  v.gap = sub_rules.gap;  // edge-to-edge gap unchanged; width carries the band
  v.obs = sub_rules.obs;
  // Tiny intra-pair compensation patterns are shorter than d_protect of the
  // merged trace; keep protect from the sub rules.
  v.protect = sub_rules.protect;
  v.miter = sub_rules.miter;
  return v;
}

RestoreMargin restore_margin(const DesignRules& sub_rules, double base_pitch,
                             double local_pitch) {
  sub_rules.validate();
  if (base_pitch <= 0.0 || local_pitch <= 0.0) {
    throw std::invalid_argument("restore_margin: pitches must be positive");
  }
  RestoreMargin m;
  const double extra = local_pitch - base_pitch;
  if (extra <= 0.0) return m;  // narrower-than-base restores only relax rules
  m.clearance = extra / 2.0;
  m.spacing = extra;
  return m;
}

}  // namespace lmr::drc
