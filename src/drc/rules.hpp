#pragma once
/// \file rules.hpp
/// Design rules of the paper's problem formulation (§II, Fig. 1):
///   d_gap     — trace-to-trace spacing (self-inductance / crosstalk),
///   d_obs     — trace-to-obstacle clearance,
///   d_protect — minimum segment length (no extremely short stubs),
///   d_miter   — miter cut applied to right/acute corners.
/// We additionally carry the trace width, which industrial DRC folds into
/// edge-to-edge spacing; all clearance rules in lmroute are expressed between
/// trace *centerlines*, so the effective gap is d_gap + w_trace.

#include <stdexcept>

namespace lmr::drc {

/// Value-type bundle of the four paper rules plus the trace width.
struct DesignRules {
  double gap = 1.0;      ///< d_gap
  double obs = 1.0;      ///< d_obs
  double protect = 0.5;  ///< d_protect
  double miter = 0.0;    ///< d_miter (0 = right-angle corners permitted)
  double trace_width = 0.0;

  /// Centerline-to-centerline spacing implied by the edge-to-edge d_gap.
  [[nodiscard]] double effective_gap() const { return gap + trace_width; }

  /// Centerline clearance a trace must keep from an obstacle boundary.
  [[nodiscard]] double effective_obs() const { return obs + trace_width / 2.0; }

  /// Half-width of an UnReachable Area strip (paper §IV-B: "half of d_gap
  /// away from the segment").
  [[nodiscard]] double ura_halfwidth() const { return effective_gap() / 2.0; }

  /// Extra inflation applied to obstacle polygons when they are converted
  /// into environment polygons, so URA-vs-polygon clearance implies
  /// trace-vs-obstacle clearance of d_obs (DESIGN.md §5).
  [[nodiscard]] double obstacle_inflation() const {
    const double needed = effective_obs() - ura_halfwidth();
    return needed > 0.0 ? needed : 0.0;
  }

  /// Throws std::invalid_argument when a rule combination is unusable.
  void validate() const;
};

/// Rules rounded so that d_gap and d_protect are integer multiples of the
/// discretization step (the paper: "we may slightly increase d_gap and
/// d_protect or adjust l_disc to make the former divisible by the latter").
struct QuantizedRules {
  DesignRules rules;   ///< possibly increased gap/protect
  double step = 0.0;   ///< l_disc actually used
  int gap_steps = 0;       ///< effective_gap / step
  int protect_steps = 0;   ///< protect / step
};

/// Quantize `rules` onto step `l_disc` by rounding gap/protect *up* to the
/// next multiple (never loosening a rule).
[[nodiscard]] QuantizedRules quantize(const DesignRules& rules, double l_disc);

/// Virtual rules attached to the median trace of a differential pair with
/// centerline pitch `pair_pitch` (§V-A: "we also attach a virtual DRC to its
/// merged median trace ... converted from its distance rule and the original
/// DRC of its sub-traces"). The median trace stands for a band of width
/// pair_pitch + w; every clearance grows by half that band so the restored
/// sub-traces meet the original rules.
[[nodiscard]] DesignRules virtual_pair_rules(const DesignRules& sub_rules, double pair_pitch);

/// Restore-feasibility margin for extending a merged-pair median (§V).
///
/// `virtual_pair_rules` sizes every clearance for a restore at the *base*
/// pitch, and exactly tightly: a restored sub-trace sits flush against each
/// rule wherever the median extension used its full budget. Where the pair
/// crosses a wider Design Rule Area the piecewise restore offsets by the
/// *local* rule r instead, so every pattern the extension places there must
/// keep extra room or the restored sub-traces graze gap / obstacle /
/// containment rules in dense via fields. The margin is that extra room:
///  * `clearance` — one-side growth of the pattern URA halfwidth. It widens
///    obstacle / wall / self-URA clearance by (r - base)/2 per side, which is
///    exactly how much further the restored sub-traces reach.
///  * `spacing`  — growth of the same-side foot spacing and minimum pattern
///    (hat) width. Same-side runs of the inner sub-trace close in by the full
///    local pitch, so the DP's effective gap must grow by (r - base).
struct RestoreMargin {
  double clearance = 0.0;  ///< extra one-side URA clearance
  double spacing = 0.0;    ///< extra same-side foot spacing / pattern width
};

/// Derive the margin for a region restored at `local_pitch` when the virtual
/// rules were built for `base_pitch`. `sub_rules` is validated (the margin
/// protects *its* gap/obstacle rules); pitches must be positive. A region at
/// the base pitch yields the zero margin — the virtual rules already cover
/// it.
[[nodiscard]] RestoreMargin restore_margin(const DesignRules& sub_rules, double base_pitch,
                                           double local_pitch);

}  // namespace lmr::drc
