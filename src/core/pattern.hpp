#pragma once
/// \file pattern.hpp
/// Convex meander patterns: geometry and length-gain accounting.
///
/// A pattern is the U-shaped detour inserted perpendicular to a segment
/// (§IV): two legs of height h at feet x0 < x1 plus a hat of width x1-x0.
/// It replaces the base run [x0, x1], so a right-angle pattern gains exactly
/// 2h of trace length. With 45-degree mitering (d_miter = c), each of the
/// four corners trades 2c of arms for a sqrt(2)c diagonal, so the gain is
/// 2h + 4c(sqrt(2)-2).

#include <vector>

#include "geom/polyline.hpp"
#include "geom/vec2.hpp"

namespace lmr::core {

/// Corner style for generated patterns. The paper develops the method on
/// right-angle corners; Mitered applies the d_miter chamfer (Fig. 1).
enum class PatternStyle { RightAngle, Mitered };

/// One inserted pattern in segment-local discrete coordinates.
struct Pattern {
  int foot_lo = 0;    ///< discrete index of the left foot
  int foot_hi = 0;    ///< discrete index of the right foot (> foot_lo)
  double height = 0;  ///< leg height h (> 0)
  int dir = 1;        ///< +1 / -1: which side of the segment (paper's dir)

  [[nodiscard]] int width_steps() const { return foot_hi - foot_lo; }
};

/// Length gained by inserting a pattern of height h (style-dependent).
[[nodiscard]] double pattern_gain(double h, PatternStyle style, double miter);

/// Height needed for a given gain (inverse of pattern_gain).
[[nodiscard]] double height_for_gain(double gain, PatternStyle style, double miter);

/// Local-frame vertex run realizing `patterns` along a base segment of
/// length `len` discretized with `step`. The run starts at (0,0) and ends at
/// (len,0); base points are emitted only where needed, and connected
/// patterns (shared foot, opposite dirs) merge their legs into a single
/// straight crossing. The caller maps the run through the segment frame and
/// splices it into the trace.
[[nodiscard]] std::vector<geom::Point> realize_patterns(const std::vector<Pattern>& patterns,
                                                        double len, double step);

}  // namespace lmr::core
