#include "core/ura.hpp"

#include <limits>

namespace lmr::core {

geom::Polygon ura_of_segment(const geom::Segment& s, double half) {
  const geom::Vec2 u = s.unit();
  const geom::Vec2 n = u.perp();
  const geom::Point a = s.a - u * half;
  const geom::Point b = s.b + u * half;
  return geom::Polygon{{a - n * half, b - n * half, b + n * half, a + n * half}};
}

std::vector<geom::Polygon> self_uras(const geom::Polyline& path, std::size_t skip, double half,
                                     double joint_trim, const SegmentHalfFn& half_of) {
  std::vector<geom::Polygon> out;
  const std::size_t n = path.segment_count();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == skip) continue;
    geom::Segment s = path.segment(i);
    if (s.degenerate()) continue;
    // A segment's URA reserves the room *its own* region needs (pair
    // medians: legs in a wider DRA carry a wider restore margin than the
    // segment currently under extension).
    const double h = half_of ? half_of(s) : half;
    if (skip != std::numeric_limits<std::size_t>::max()) {
      // Trim the end that touches the skipped segment so joint geometry
      // (connect-to-node transitions, Fig. 3d) is not self-rejected. The
      // trim never eats past `joint_trim`, and always leaves the far end of
      // a short adjacent segment protected so later patterns cannot hug it.
      const double trim = std::min(joint_trim, std::max(0.0, s.length() - h));
      if (i + 1 == skip) {
        s.b = s.b - s.unit() * trim;
      } else if (i == skip + 1) {
        s.a = s.a + s.unit() * trim;
      }
      if (s.degenerate()) continue;
    }
    out.push_back(ura_of_segment(s, h));
  }
  return out;
}

}  // namespace lmr::core
