#include "core/pattern.hpp"

#include <cmath>

#include "core/contract.hpp"
#include "geom/chamfer.hpp"

namespace lmr::core {

double pattern_gain(double h, PatternStyle style, double miter) {
  if (style == PatternStyle::RightAngle || miter <= 0.0) return 2.0 * h;
  // Four mitered corners; chamfer size may be clipped by the leg height
  // (cut <= h/2 per corner pair on one leg).
  const double c = std::min(miter, h / 2.0);
  return 2.0 * h + 4.0 * geom::right_angle_chamfer_delta(c);
}

double height_for_gain(double gain, PatternStyle style, double miter) {
  if (style == PatternStyle::RightAngle || miter <= 0.0) return gain / 2.0;
  // Invert gain = 2h + 4c(sqrt(2)-2) assuming the chamfer is not clipped;
  // callers requesting heights near the clip limit fall back to iteration-
  // free right-angle sizing, which over-requests slightly and is then
  // shrunk/validated by the solver.
  const double full = (gain - 4.0 * geom::right_angle_chamfer_delta(miter)) / 2.0;
  if (full >= 2.0 * miter) return full;
  return gain / 2.0;
}

std::vector<geom::Point> realize_patterns(const std::vector<Pattern>& patterns, double len,
                                          double step) {
  std::vector<geom::Point> out;
  out.reserve(patterns.size() * 4 + 2);
  const auto push = [&out](double x, double y) {
    const geom::Point p{x, y};
    if (out.empty() || !geom::almost_equal(out.back(), p)) out.push_back(p);
  };
  push(0.0, 0.0);
  for (const Pattern& p : patterns) {
    LMR_REQUIRE(p.foot_lo < p.foot_hi, "a pattern foot must span at least one step");
    LMR_REQUIRE(p.height > 0.0, "a realized pattern always has positive height");
    const double x0 = p.foot_lo * step;
    const double x1 = p.foot_hi * step;
    const double y = p.dir * p.height;
    push(x0, 0.0);
    push(x0, y);
    push(x1, y);
    push(x1, 0.0);
  }
  push(len, 0.0);
  return out;
}

}  // namespace lmr::core
