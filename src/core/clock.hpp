#pragma once
/// \file clock.hpp
/// The single whitelisted timing shim.
///
/// Every clock read in the tree goes through this file — `tools/lmr_lint.py`
/// bans the std::chrono clock names (and the C wall-clock APIs) everywhere
/// else, which is what makes "the deterministic paths never read a clock"
/// a machine-checked property instead of a review convention: any new
/// timing site has to either route through here or show up as a lint
/// failure.
///
/// Monotonic time (`now()` / `seconds_since`) feeds the volatile `*_s`
/// timing fields of the bench JSON and the CancelToken deadline checks;
/// neither influences tracked result bytes. The one wall-clock read in the
/// project (`utc_timestamp`, bench run metadata) also lives here, inside
/// the stripped-away "run" section.

#include <chrono>
#include <ctime>
#include <string>

namespace lmr::core {

/// The project's monotonic clock.
// lmr-lint: allow(clock) — this file IS the shim.
using Clock = std::chrono::steady_clock;

/// Monotonic now(): the only sanctioned way to start a timing measurement.
[[nodiscard]] inline Clock::time_point now() { return Clock::now(); }

/// Seconds from `t0` to now, as the double the bench JSON records.
[[nodiscard]] inline double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(now() - t0).count();
}

/// Seconds between two monotonic time points (`b - a`).
[[nodiscard]] inline double seconds_between(Clock::time_point a,
                                            Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// A fractional-seconds budget as a Clock duration (deadline arithmetic).
[[nodiscard]] inline Clock::duration duration_from_seconds(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

/// The project's sole wall-clock read: an ISO-8601 UTC stamp for the bench
/// run metadata (the volatile "run" section, stripped before comparison).
[[nodiscard]] inline std::string utc_timestamp() {
  // lmr-lint: allow(clock) — the shim's one wall-clock read.
  const std::time_t t = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace lmr::core
