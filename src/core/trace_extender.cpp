#include "core/trace_extender.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/height_solver.hpp"
#include "core/segment_dp.hpp"
#include "core/ura.hpp"
#include "geom/chamfer.hpp"
#include "geom/frame.hpp"
#include "geom/offset.hpp"

namespace lmr::core {

namespace {

constexpr double kLocateTol = 1e-7;
constexpr std::size_t kNotFound = std::numeric_limits<std::size_t>::max();

}  // namespace

TraceExtender::TraceExtender(drc::DesignRules rules, const layout::RoutableArea& area,
                             std::vector<geom::Polygon> extra_obstacles)
    : rules_(rules) {
  rules_.validate();
  if (!area.outline.empty()) {
    geom::Polygon outline = area.outline;
    outline.make_ccw();
    env_.add_static(std::move(outline), EnvKind::AreaOutline);
  }
  const double inflate = rules_.obstacle_inflation();
  for (const geom::Polygon& h : area.holes) {
    env_.add_static(geom::inflate_polygon(h, inflate), EnvKind::Obstacle);
  }
  for (geom::Polygon& p : extra_obstacles) {
    env_.add_static(geom::inflate_polygon(std::move(p), inflate), EnvKind::Obstacle);
  }
  env_.build_index();
  const geom::Box bb = area.outline.empty() ? geom::Box{{0, 0}, {1, 1}} : area.bbox();
  area_reach_ = std::hypot(bb.width(), bb.height());
}

ExtendStats TraceExtender::extend(layout::Trace& trace, double target,
                                  const ExtenderConfig& cfg) {
  return run(trace, target, /*bounded=*/true, cfg);
}

ExtendStats TraceExtender::maximize(layout::Trace& trace, const ExtenderConfig& cfg) {
  return run(trace, std::numeric_limits<double>::infinity(), /*bounded=*/false, cfg);
}

std::size_t TraceExtender::locate(const geom::Polyline& path, const QueuedSegment& q) {
  for (std::size_t k = 0; k + 1 < path.size(); ++k) {
    if (geom::almost_equal(path[k], q.a, kLocateTol) &&
        geom::almost_equal(path[k + 1], q.b, kLocateTol)) {
      return k;
    }
  }
  return kNotFound;
}

ExtendStats TraceExtender::run(layout::Trace& trace, double target, bool bounded,
                               const ExtenderConfig& cfg) {
  ExtendStats stats;
  stats.initial_length = trace.path.length();
  stats.target = target;
  if (bounded && target < stats.initial_length - cfg.tolerance) {
    throw std::invalid_argument("TraceExtender: target below current trace length");
  }

  const double step_base = cfg.l_disc > 0.0 ? cfg.l_disc : rules_.protect;
  const double half = rules_.ura_halfwidth();
  const double eff_gap = rules_.effective_gap();
  const double min_extend =
      cfg.min_extend_length > 0.0 ? cfg.min_extend_length : std::max(eff_gap, rules_.protect);

  std::deque<QueuedSegment> queue;
  for (std::size_t k = 0; k + 1 < trace.path.size(); ++k) {
    queue.push_back({trace.path[k], trace.path[k + 1]});
  }

  double current = stats.initial_length;
  int passes = 0;
  while (!queue.empty() && passes < cfg.max_passes) {
    // Cancellation poll, once per pattern placement: a pop is one DP run
    // plus splice, so an expired deadline aborts within a single pattern's
    // worth of work (the throw unwinds to Router::run's rollback).
    cfg.cancel.check();
    const double remaining = target - current;
    if (bounded && remaining <= cfg.tolerance) break;
    ++passes;

    const QueuedSegment q = queue.front();
    queue.pop_front();
    const std::size_t k = locate(trace.path, q);
    if (k == kNotFound) continue;
    const geom::Segment seg{q.a, q.b};
    const double len = seg.length();
    if (len < min_extend) continue;

    // Restore-feasibility margin for this segment (merged-pair medians): the
    // local restore pitch widens every clearance the DP and the height
    // solver enforce, so a pattern whose ±pitch/2 restore offsets would
    // graze the sub-trace rules is never placed at all.
    const drc::RestoreMargin margin =
        cfg.restore_margin ? cfg.restore_margin(seg) : drc::RestoreMargin{};
    const double half_loc = half + margin.clearance;
    const double eff_gap_loc = eff_gap + margin.spacing;

    // Per-segment discretization: n points, exact step dividing the length.
    int n = static_cast<int>(std::floor(len / step_base)) + 1;
    if (n < 2) continue;
    const double step = len / (n - 1);
    DpParams params;
    params.n = n;
    params.step = step;
    params.gap_steps = static_cast<int>(std::ceil(eff_gap_loc / step - 1e-9));
    params.protect_steps = static_cast<int>(std::ceil(rules_.protect / step - 1e-9));
    params.min_height = rules_.protect;
    params.needed_gain = bounded ? remaining : 4.0 * area_reach_ * (len / step_base);
    params.max_width_steps = cfg.max_width_steps;
    params.style = cfg.style;
    params.miter = rules_.miter;
    if (std::max(params.gap_steps, params.protect_steps) >= n) continue;

    // Environment overlay: URAs of every other segment of this trace, with
    // the joints trimmed (same-net adjacency exemption). Under a restore
    // margin each neighbouring leg reserves the room *its own* DRA restore
    // will consume — a wide-DRA leg next to a narrow-DRA segment must keep
    // its wider clearance even though the current segment's margin is zero.
    if (cfg.restore_margin) {
      env_.set_dynamic(self_uras(trace.path, k, half_loc, eff_gap_loc,
                                 [&](const geom::Segment& other) {
                                   return half + cfg.restore_margin(other).clearance;
                                 }));
    } else {
      env_.set_dynamic(self_uras(trace.path, k, half, eff_gap));
    }

    const double max_reach =
        std::min(area_reach_, height_for_gain(params.needed_gain, cfg.style, rules_.miter) +
                                  rules_.protect);
    const HeightSolver up = HeightSolver::for_segment(env_, seg, +1, max_reach, half_loc);
    const HeightSolver down = HeightSolver::for_segment(env_, seg, -1, max_reach, half_loc);

    const HeightFn hfun = [&](int j, int i, int dir, double h_request) {
      const HeightSolver& solver = dir > 0 ? up : down;
      double h = solver.max_height(j * step, i * step, std::min(h_request, max_reach));
      if (cfg.exhaustive_checks && h > 0.0) {
        if (!solver.valid_exhaustive(j * step, i * step, h)) {
          ++stats.oracle_mismatches;
          h = 0.0;
        }
      }
      return h;
    };

    ++stats.dp_runs;
    DpResult dp = run_segment_dp(params, hfun);
    if (dp.gain <= 0.0 || dp.patterns.empty()) continue;

    // Realize the chain; with mitering the realized gain can deviate from
    // the DP's estimate (chamfer cuts clamp on short arms), so trimming
    // iterates on the *realized* length: reduce heights largest-first with
    // solver re-validation (validity is not monotone), dropping trailing
    // patterns when every height is already minimal.
    const auto realize_piece = [&](const std::vector<Pattern>& ps) {
      geom::Polyline pc{realize_patterns(ps, len, step)};
      if (cfg.style == PatternStyle::Mitered && rules_.miter > 0.0) {
        pc = geom::chamfer_corners(pc, rules_.miter);
      }
      return pc;
    };
    geom::Polyline piece = realize_piece(dp.patterns);
    if (bounded) {
      int guard = 0;
      while (piece.length() - len > remaining + cfg.tolerance && ++guard < 200 &&
             !dp.patterns.empty()) {
        const double excess = (piece.length() - len) - remaining;
        // Largest pattern with headroom above the minimum height.
        std::size_t best = dp.patterns.size();
        for (std::size_t idx = 0; idx < dp.patterns.size(); ++idx) {
          const Pattern& pt = dp.patterns[idx];
          if (pt.height <= rules_.protect + cfg.tolerance) continue;
          if (best == dp.patterns.size() || pt.height > dp.patterns[best].height) best = idx;
        }
        bool reduced = false;
        if (best < dp.patterns.size()) {
          Pattern& pt = dp.patterns[best];
          const double h_new =
              std::max(rules_.protect, pt.height - excess / 2.0);
          if (h_new < pt.height - cfg.tolerance / 4.0) {
            const HeightSolver& solver = pt.dir > 0 ? up : down;
            const double h_check =
                solver.max_height(pt.foot_lo * step, pt.foot_hi * step, h_new);
            if (h_check + cfg.tolerance >= h_new) {
              pt.height = h_new;
              reduced = true;
            } else {
              // Shrinking this one would violate DRC (obstacle previously
              // enclosed); drop it instead.
              dp.patterns.erase(dp.patterns.begin() + static_cast<std::ptrdiff_t>(best));
              reduced = true;
            }
          }
        }
        if (!reduced) dp.patterns.pop_back();  // all at min height: drop one
        piece = realize_piece(dp.patterns);
      }
      if (dp.patterns.empty()) continue;
    }
    const geom::Frame frame = geom::Frame::along(seg);
    std::vector<geom::Point> global_pts;
    global_pts.reserve(piece.size());
    for (const geom::Point& p : piece.points()) global_pts.push_back(frame.to_global(p));
    // Snap endpoints exactly onto the original nodes.
    global_pts.front() = q.a;
    global_pts.back() = q.b;
    trace.path.splice(k, k + 1, global_pts);

    stats.patterns_inserted += static_cast<int>(dp.patterns.size());
    ++stats.segments_processed;
    current = trace.path.length();

    // Enqueue the freshly created sub-segments for further meandering
    // ("a segment after the extension is replaced by several new component
    // segments for further extension if needed").
    if (cfg.extend_new_segments) {
      for (std::size_t s2 = 0; s2 + 1 < global_pts.size(); ++s2) {
        const geom::Segment ns{global_pts[s2], global_pts[s2 + 1]};
        if (ns.length() >= min_extend) queue.push_back({ns.a, ns.b});
      }
    }
  }

  stats.final_length = trace.path.length();
  stats.reached = !bounded || std::abs(stats.final_length - target) <= cfg.tolerance * 10.0;
  return stats;
}

}  // namespace lmr::core
