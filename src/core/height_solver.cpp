#include "core/height_solver.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "geom/distance.hpp"
#include "geom/intersect.hpp"

namespace lmr::core {

namespace {

constexpr double kStrict = 1e-9;

/// Strictly-inside test against the outer border (touching the border is
/// exactly the rule distance, hence legal).
bool strictly_inside(const geom::Box& outer, const geom::Point& p) {
  return p.x > outer.lo.x + kStrict && p.x < outer.hi.x - kStrict && p.y > kStrict &&
         p.y < outer.hi.y - kStrict;
}

/// Node inside the *closed* inner border (clearance exactly met is legal).
bool inside_inner(const geom::Box& inner, const geom::Point& p) {
  return p.x >= inner.lo.x - kStrict && p.x <= inner.hi.x + kStrict && p.y >= -kStrict &&
         p.y <= inner.hi.y + kStrict;
}

}  // namespace

HeightSolver::HeightSolver(std::vector<LocalPoly> polys, double half)
    : polys_(std::move(polys)), half_(half) {
  std::vector<index::RangeTree2D::Entry> entries;
  for (std::size_t i = 0; i < polys_.size(); ++i) {
    LocalPoly& lp = polys_[i];
    lp.bbox = lp.poly.bbox();
    lp.min_y = std::numeric_limits<double>::infinity();
    for (const geom::Point& p : lp.poly.points()) {
      lp.min_y = std::min(lp.min_y, p.y);
      entries.push_back({p, static_cast<std::uint32_t>(i)});
    }
  }
  node_tree_ = index::RangeTree2D{std::move(entries)};
}

HeightSolver HeightSolver::for_segment(const Environment& env, const geom::Segment& s, int dir,
                                       double max_reach, double half) {
  const geom::Frame frame = geom::Frame::along(s, dir < 0);
  const double len = s.length();
  // Reachable local region of any candidate URA on this side.
  geom::Box local_reach{{-half - geom::kEps, -half - geom::kEps},
                        {len + half + geom::kEps, max_reach + half + geom::kEps}};
  // Its global bbox for collection.
  geom::Box global;
  global.expand(frame.to_global(local_reach.lo));
  global.expand(frame.to_global({local_reach.hi.x, local_reach.lo.y}));
  global.expand(frame.to_global({local_reach.lo.x, local_reach.hi.y}));
  global.expand(frame.to_global(local_reach.hi));

  std::vector<LocalPoly> locals;
  for (const EnvPolygon* e : env.collect(global)) {
    std::vector<geom::Point> pts;
    pts.reserve(e->poly.size());
    for (const geom::Point& p : e->poly.points()) pts.push_back(frame.to_local(p));
    LocalPoly lp;
    lp.poly = geom::Polygon{std::move(pts)};
    lp.kind = e->kind;
    // Keep only polygons whose local bbox can interact with this side.
    if (!lp.poly.bbox().intersects(local_reach)) continue;
    locals.push_back(std::move(lp));
  }
  return HeightSolver{std::move(locals), half};
}

double HeightSolver::shrink_by_sides(const UraBorders& b,
                                     const std::vector<std::size_t>& cand) const {
  double hob = b.hob;
  const geom::Box outer = b.outer();
  const geom::Segment left{{outer.lo.x, 0.0}, {outer.lo.x, b.hob}};
  const geom::Segment right{{outer.hi.x, 0.0}, {outer.hi.x, b.hob}};
  for (std::size_t idx : cand) {
    const LocalPoly& lp = polys_[idx];
    for (std::size_t e = 0; e < lp.poly.size(); ++e) {
      const geom::Segment edge = lp.poly.edge(e);
      if (auto p = geom::segment_intersection(edge, left)) hob = std::min(hob, p->y);
      if (auto p = geom::segment_intersection(edge, right)) hob = std::min(hob, p->y);
    }
  }
  return hob;
}

double HeightSolver::shrink_by_nodes(UraBorders b, const std::vector<std::size_t>& cand) const {
  // Interleave hat shrinking (Alg. 2 / Eq. 12) and inner-border shrinking
  // (Eq. 13) until neither applies. Each shrink lands hob on a node
  // ordinate strictly below the previous hob, so the loop terminates.
  std::vector<std::size_t> inside_count(polys_.size(), 0);
  std::vector<double> inside_min_y(polys_.size(), 0.0);
  while (b.hob > kStrict) {
    // --- classify nodes against the current outer border ---
    for (std::size_t idx : cand) {
      inside_count[idx] = 0;
      inside_min_y[idx] = std::numeric_limits<double>::infinity();
    }
    const geom::Box outer = b.outer();
    node_tree_.visit(outer, [&](const index::RangeTree2D::Entry& e) {
      if (strictly_inside(outer, e.p)) {
        inside_count[e.payload] += 1;
        inside_min_y[e.payload] = std::min(inside_min_y[e.payload], e.p.y);
      }
      return true;
    });

    double new_hob = b.hob;
    // Hat rule (Eq. 12): partially-inside polygons cap hob at their lowest
    // inside node.
    for (std::size_t idx : cand) {
      const LocalPoly& lp = polys_[idx];
      const std::size_t cnt = inside_count[idx];
      if (cnt == 0 || cnt == lp.poly.size()) continue;
      new_hob = std::min(new_hob, inside_min_y[idx]);
    }
    if (new_hob < b.hob - kStrict) {
      b.hob = new_hob;
      continue;  // re-classify under the smaller border before the inner rule
    }

    // Inner-border rule (Eq. 13): fully-inside polygons must be enclosable
    // and entirely within the inner border; otherwise push the hat below the
    // whole polygon.
    const geom::Box inner = b.inner();
    const bool inner_usable = !b.inner_empty();
    for (std::size_t idx : cand) {
      const LocalPoly& lp = polys_[idx];
      if (inside_count[idx] != lp.poly.size() || lp.poly.empty()) continue;
      bool ok = inner_usable && lp.kind == EnvKind::Obstacle;
      if (ok) {
        for (const geom::Point& p : lp.poly.points()) {
          if (!inside_inner(inner, p)) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) new_hob = std::min(new_hob, lp.min_y);
    }
    if (new_hob >= b.hob - kStrict) break;  // joint fixpoint
    b.hob = new_hob;
  }
  return std::max(b.hob, 0.0);
}

double HeightSolver::max_height(double x0, double x1, double h_request) const {
  if (h_request <= 0.0 || x1 - x0 <= kStrict) return 0.0;
  UraBorders b{x0, x1, half_, h_request + half_};

  // Candidate polygons: bbox overlap with the initial outer border.
  const geom::Box outer = b.outer();
  std::vector<std::size_t> cand;
  for (std::size_t i = 0; i < polys_.size(); ++i) {
    if (polys_[i].bbox.intersects(outer, kStrict)) cand.push_back(i);
  }
  if (cand.empty()) return b.pattern_height();

  // Solid polygons that straddle the base line inside the border are
  // invisible to the node-based shrinking below: their sub-base nodes fail
  // `strictly_inside` and a side edge that coincides with the border crosses
  // it only collinearly, so neither Eq. 12 nor the side rule fires. The one
  // producer of such polygons is the untrimmed URA of an adjacent segment
  // shorter than `half` (self_uras keeps its far end protected, so the URA
  // reaches across the joint). Any pattern on this span would rise straight
  // through it — the exhaustive oracle rejects every such height, so the
  // fast path must too.
  for (std::size_t idx : cand) {
    const LocalPoly& lp = polys_[idx];
    if (lp.kind == EnvKind::AreaOutline) continue;
    if (lp.bbox.lo.y < -kStrict && lp.bbox.hi.y > kStrict &&
        lp.bbox.lo.x < outer.hi.x - kStrict && lp.bbox.hi.x > outer.lo.x + kStrict) {
      return 0.0;
    }
  }

  b.hob = shrink_by_sides(b, cand);
  if (b.hob <= half_) return 0.0;
  b.hob = shrink_by_nodes(b, cand);
  return b.pattern_height();
}

bool HeightSolver::valid_exhaustive(double x0, double x1, double h, double tol) const {
  if (h <= 0.0 || x1 - x0 <= 0.0) return false;
  const UraBorders b{x0, x1, half_, h + half_};
  const geom::Box inner = b.inner();
  const bool inner_usable = !b.inner_empty();

  // The paper's URA model is a *polygonal* clearance region: the union of
  // the three pattern segments' URA rectangles, clipped below the base line
  // (the area below AD belongs to the original segment's URA). The boxes
  // are shrunk by `tol` so a polygon touching the border — clearance met
  // exactly — stays legal.
  const std::array<geom::Box, 3> boxes{
      geom::Box{{x0 - half_ + tol, tol}, {x0 + half_ - tol, h + half_ - tol}},      // left leg
      geom::Box{{x0 - half_ + tol, h - half_ + tol}, {x1 + half_ - tol, h + half_ - tol}},  // hat
      geom::Box{{x1 - half_ + tol, tol}, {x1 + half_ - tol, h + half_ - tol}}};     // right leg

  for (const LocalPoly& lp : polys_) {
    if (lp.poly.empty()) continue;
    // Enclosed obstacle: legal when every node sits within the closed inner
    // border (the pattern routes around it).
    if (lp.kind == EnvKind::Obstacle && inner_usable) {
      bool enclosed = true;
      for (const geom::Point& p : lp.poly.points()) {
        if (!inside_inner(inner, p)) {
          enclosed = false;
          break;
        }
      }
      if (enclosed) continue;
    }
    if (lp.kind == EnvKind::AreaOutline) {
      // The pattern lives inside the outline; only boundary crossings and
      // escapes are violations.
      for (const geom::Box& box : boxes) {
        const geom::Polygon rect = geom::Polygon::rect(box);
        for (std::size_t e = 0; e < lp.poly.size(); ++e) {
          for (std::size_t be = 0; be < rect.size(); ++be) {
            if (geom::segments_intersect(lp.poly.edge(e), rect.edge(be))) return false;
          }
        }
      }
      if (!lp.poly.contains({(x0 + x1) / 2.0, h})) return false;  // escaped entirely
      continue;
    }
    // Solid polygon (obstacle / self-URA): any overlap with a URA box is a
    // violation — edge crossings, polygon nodes inside a box, or a box
    // swallowed by the polygon.
    for (const geom::Box& box : boxes) {
      if (!box.intersects(lp.bbox, half_)) continue;
      if (geom::polygons_overlap(geom::Polygon::rect(box), lp.poly)) return false;
    }
  }
  return true;
}

}  // namespace lmr::core
