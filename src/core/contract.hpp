#pragma once
/// \file contract.hpp
/// Machine-checked contracts for the routing stack.
///
/// Three macros, all compiled to *nothing* unless the build defines
/// `LMR_CHECKED` (CMake: `-DLMR_CHECKED=ON`):
///
///   LMR_ASSERT(cond [, msg])   — internal invariant: state this code alone
///                                is responsible for keeping true.
///   LMR_REQUIRE(cond [, msg])  — precondition on the caller: argument or
///                                call-ordering contract of a function.
///   LMR_UNREACHABLE([msg])     — control flow that must be dead. In checked
///                                builds it throws; in release builds it is
///                                `__builtin_unreachable()` (so it still
///                                silences -Wreturn-type on exhaustive
///                                switches without emitting code).
///
/// In checked builds a failed contract throws `ContractViolation`, which
/// derives from std::logic_error on purpose: the serving tier already
/// classifies logic_error as *non-retryable* (a broken invariant is a bug,
/// not a transient fault — retrying would replay it), and test code can
/// EXPECT_THROW on the precise type.
///
/// In default (unchecked) builds the condition expression is type-checked
/// but never evaluated (it sits under an unevaluated `sizeof`), so contract
/// checks can live on the hottest paths at zero cost, may call non-const
/// helpers, and the default `lmr` library contains no ContractViolation
/// symbol at all — the Release-no-op property tests/core/contract_release_
/// test.cpp and the CI symbol probe both pin down.
///
/// Unlike <cassert>, the checked form is active in *any* build type once
/// LMR_CHECKED is on (the checked CI job runs RelWithDebInfo), and a failure
/// unwinds instead of aborting — the storms exercise the same rollback paths
/// a real invariant break would have to survive.

#include <stdexcept>
#include <string>

namespace lmr::core {

/// Thrown by a failed LMR_ASSERT / LMR_REQUIRE / LMR_UNREACHABLE in checked
/// builds. Carries the structured context alongside the formatted what().
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expression, const char* file,
                    int line, const std::string& message)
      : std::logic_error(format(kind, expression, file, line, message)),
        kind_(kind),
        expression_(expression),
        file_(file),
        line_(line) {}

  /// "LMR_ASSERT", "LMR_REQUIRE" or "LMR_UNREACHABLE".
  [[nodiscard]] const char* kind() const noexcept { return kind_; }
  /// The stringized condition (or "unreachable").
  [[nodiscard]] const char* expression() const noexcept { return expression_; }
  [[nodiscard]] const char* file() const noexcept { return file_; }
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  static std::string format(const char* kind, const char* expression,
                            const char* file, int line,
                            const std::string& message) {
    std::string out(kind);
    out += " failed: ";
    out += expression;
    if (!message.empty()) {
      out += " — ";
      out += message;
    }
    out += " [";
    out += file;
    out += ":";
    out += std::to_string(line);
    out += "]";
    return out;
  }

  const char* kind_;
  const char* expression_;
  const char* file_;
  int line_;
};

#if defined(LMR_CHECKED)

/// 1 when contract checks are compiled in (the checked CI job); 0 in the
/// default build. Tests use this to pick the semantics they assert on.
#define LMR_CONTRACT_CHECKS_ENABLED 1

[[noreturn]] inline void contract_fail(const char* kind, const char* expression,
                                       const char* file, int line,
                                       const std::string& message = {}) {
  throw ContractViolation(kind, expression, file, line, message);
}

#define LMR_CONTRACT_CHECK_(kind, cond, ...)                            \
  ((cond) ? (void)0                                                    \
          : ::lmr::core::contract_fail(kind, #cond, __FILE__, __LINE__ \
                                           __VA_OPT__(, ) __VA_ARGS__))

#define LMR_ASSERT(...) LMR_CONTRACT_CHECK_("LMR_ASSERT", __VA_ARGS__)
#define LMR_REQUIRE(...) LMR_CONTRACT_CHECK_("LMR_REQUIRE", __VA_ARGS__)
#define LMR_UNREACHABLE(...)                                              \
  ::lmr::core::contract_fail("LMR_UNREACHABLE", "unreachable", __FILE__, \
                             __LINE__ __VA_OPT__(, ) __VA_ARGS__)

#else  // !LMR_CHECKED

#define LMR_CONTRACT_CHECKS_ENABLED 0

/// Unevaluated in release: `sizeof` type-checks the condition (so a checked
/// and an unchecked build always compile the same set of expressions, and
/// variables used only in contracts don't trip -Wunused under -Werror) but
/// generates no code and evaluates no side effects.
#define LMR_CONTRACT_DISCARD_(cond, ...) ((void)sizeof(!(cond)))

#define LMR_ASSERT(...) LMR_CONTRACT_DISCARD_(__VA_ARGS__)
#define LMR_REQUIRE(...) LMR_CONTRACT_DISCARD_(__VA_ARGS__)
#define LMR_UNREACHABLE(...) __builtin_unreachable()

#endif  // LMR_CHECKED

}  // namespace lmr::core
