#pragma once
/// \file environment.hpp
/// The extension environment: every polygon a candidate pattern's URA must be
/// checked against — the routable-area outline, obstacle holes (inflated for
/// d_obs), and the URAs of the other segments of the trace under extension.
///
/// Static polygons (area + obstacles) are indexed once: their node points go
/// into the 2-D range tree the paper prescribes for Alg. 2 (§IV-D), and their
/// bounding boxes into a flat list for edge-level prefiltering. Dynamic
/// polygons (the trace's self-URAs, which change after every insertion) are
/// swapped per segment and scanned linearly — there are at most a few dozen.

#include <cstdint>
#include <vector>

#include "geom/box.hpp"
#include "geom/polygon.hpp"
#include "index/range_tree.hpp"

namespace lmr::core {

/// Role of an environment polygon; the height solver treats walls (area
/// outlines) as never-enclosable, while obstacles fully inside a pattern's
/// inner border are legal (the pattern routes around them).
enum class EnvKind : std::uint8_t {
  Obstacle,     ///< solid polygon the trace must clear (enclosable)
  AreaOutline,  ///< routable-area boundary (the trace lives inside it)
  SelfUra,      ///< URA of another segment of the same trace (not enclosable)
};

/// One polygon with its role and cached bbox.
struct EnvPolygon {
  geom::Polygon poly;
  EnvKind kind = EnvKind::Obstacle;
  geom::Box bbox;
};

/// Immutable-after-build static environment plus swappable dynamic overlay.
class Environment {
 public:
  Environment() = default;

  /// Add a static polygon (before build_index()).
  void add_static(geom::Polygon poly, EnvKind kind);

  /// Build the node range tree over all static polygons.
  void build_index();

  /// Replace the dynamic overlay (self-URAs of the current trace).
  void set_dynamic(std::vector<geom::Polygon> uras);

  /// Collect every environment polygon whose bbox intersects `query`
  /// (static + dynamic). Pointers remain valid until the next mutation.
  [[nodiscard]] std::vector<const EnvPolygon*> collect(const geom::Box& query) const;

  [[nodiscard]] const std::vector<EnvPolygon>& statics() const { return statics_; }
  [[nodiscard]] const std::vector<EnvPolygon>& dynamics() const { return dynamics_; }
  [[nodiscard]] const index::RangeTree2D& node_tree() const { return tree_; }

  [[nodiscard]] std::size_t total_nodes() const { return total_nodes_; }

 private:
  std::vector<EnvPolygon> statics_;
  std::vector<EnvPolygon> dynamics_;
  index::RangeTree2D tree_;  ///< nodes of static polygons, payload = index
  std::size_t total_nodes_ = 0;
};

}  // namespace lmr::core
