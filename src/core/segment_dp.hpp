#pragma once
/// \file segment_dp.hpp
/// DP over pattern placements on one discretized segment (§IV).
///
/// State dp[i][dir] = best total gain using the first i+1 discrete points
/// with the last inserted pattern on side `dir`. Transitions (Fig. 3):
///   (a) same direction with feet >= d_gap apart     -> pred dp[j-g][dir]
///   (b) opposite direction with feet >= d_protect   -> pred dp[j-p][-dir]
///   (c) connect to the previous pattern (shared foot)-> pred dp[j][-dir],
///       valid only when that state was reached *through* a pattern (Fig. 4)
///   (d) connect to a node point of the segment      -> j == 0 (left node);
///       the right node case is Alg. 1 line 7 (i == n-1).
/// Feet must also respect d_protect against the segment nodes.
///
/// Tie-breaking keeps states that enable future connections (Figs. 4-5):
/// among equal gains, a state reached through a freshly inserted pattern is
/// preferred, and among equal-gain predecessors a connected transition wins.
///
/// Restoration (§IV-C) backtracks the transit records <i', dir', w'> plus
/// the stored height.

#include <functional>
#include <vector>

#include "core/pattern.hpp"

namespace lmr::core {

/// DP inputs.
struct DpParams {
  int n = 0;                 ///< number of discrete points (u_0 .. u_{n-1})
  double step = 0.0;         ///< l_disc
  int gap_steps = 1;         ///< effective_gap / step (ceil)
  int protect_steps = 1;     ///< d_protect / step (ceil)
  double min_height = 0.0;   ///< minimum leg height (= d_protect)
  double needed_gain = 0.0;  ///< remaining extension requirement (caps pattern heights)
  int max_width_steps = 0;   ///< 0 = unbounded width loop
  PatternStyle style = PatternStyle::RightAngle;
  double miter = 0.0;
};

/// Height callback: maximum valid height for a pattern with feet at discrete
/// points j < i on side dir (+1/-1), shrunk from `h_request`.
using HeightFn = std::function<double(int j, int i, int dir, double h_request)>;

/// DP output.
struct DpResult {
  double gain = 0.0;              ///< dp[n-1][best dir]
  std::vector<Pattern> patterns;  ///< restored best chain, left to right
};

/// Run the DP; `params.n >= 2` required.
[[nodiscard]] DpResult run_segment_dp(const DpParams& params, const HeightFn& height);

}  // namespace lmr::core
