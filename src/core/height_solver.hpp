#pragma once
/// \file height_solver.hpp
/// Maximum valid pattern height by URA shrinking (§IV-B).
///
/// One solver is built per (segment, direction) pass: the environment
/// polygons near the segment are transformed into the segment-local frame
/// (base on y = 0, pattern side +y) once, and `max_height` is then queried
/// for every candidate foot pair of the DP.
///
/// The shrinking pipeline follows the paper:
///  1. create the URA with hob = requested height + half (Eq. 10 inverse);
///  2. shrink by the "sides" AB / CD: every polygon-edge intersection with a
///     side caps hob at the intersection's y (Eq. 11) — single pass, since
///     shrinking only shortens the sides;
///  3. shrink by the "hat" via node-position checking (Alg. 2): polygons with
///     node points both inside and outside the outer border cap hob at their
///     lowest inside node (Eq. 12); iterated to a fixpoint because each
///     shrink can expose new partially-inside polygons. The inside-node query
///     is served by a range tree over the local node set, exactly the
///     accelerator of §IV-D;
///  4. shrink by the inner border: polygons entirely inside the outer border
///     must lie entirely inside the inner border (then the pattern legally
///     routes around them) or the hat is pushed below the whole polygon
///     (Eq. 13). Walls (routable-area outlines) and self-URAs are never
///     enclosable. Interleaved with step 3 to a joint fixpoint.
///
/// Heights are *not* monotone in validity when obstacles can be enclosed
/// (the paper's argument against binary search), which is why shrinking
/// always restarts from the requested height and why `max_height` must be
/// re-run instead of scaled when a different request is made.

#include <vector>

#include "core/environment.hpp"
#include "core/ura.hpp"
#include "geom/frame.hpp"
#include "geom/polygon.hpp"
#include "index/range_tree.hpp"

namespace lmr::core {

/// Environment polygon transformed into the solver's local frame.
struct LocalPoly {
  geom::Polygon poly;
  EnvKind kind = EnvKind::Obstacle;
  geom::Box bbox;
  double min_y = 0.0;  ///< lowest node ordinate (Eq. 13 shrink target)
};

class HeightSolver {
 public:
  /// `half` is the URA half-width (effective_gap / 2).
  HeightSolver(std::vector<LocalPoly> polys, double half);

  /// Build from global-frame environment: collect polygons near the
  /// reachable region of segment `s` (up to height `max_reach`), transform
  /// through the frame for side `dir`.
  static HeightSolver for_segment(const Environment& env, const geom::Segment& s, int dir,
                                  double max_reach, double half);

  /// Maximum valid height h <= h_request for a pattern with feet at local
  /// x0 < x1. Returns 0 when no positive height is valid.
  [[nodiscard]] double max_height(double x0, double x1, double h_request) const;

  /// Brute-force oracle: is a pattern of height `h` at (x0, x1) valid under
  /// the paper's polygonal URA model? Checks every polygon against the URA
  /// boxes of the three pattern segments with no clean-base assumptions;
  /// used by property tests and the `exhaustive_checks` extender config.
  /// `tol` shrinks the URA boxes so exact-clearance touching stays legal.
  [[nodiscard]] bool valid_exhaustive(double x0, double x1, double h,
                                      double tol = 1e-7) const;

  [[nodiscard]] double half() const { return half_; }
  [[nodiscard]] const std::vector<LocalPoly>& polys() const { return polys_; }

 private:
  /// Step 2: lowest side-edge intersection.
  [[nodiscard]] double shrink_by_sides(const UraBorders& b,
                                       const std::vector<std::size_t>& cand) const;
  /// Steps 3+4 interleaved to fixpoint; returns final hob.
  [[nodiscard]] double shrink_by_nodes(UraBorders b, const std::vector<std::size_t>& cand) const;

  std::vector<LocalPoly> polys_;
  double half_;
  index::RangeTree2D node_tree_;  ///< all local nodes, payload = poly index
};

}  // namespace lmr::core
