#pragma once
/// \file ura.hpp
/// UnReachable Areas (§IV-B, Fig. 6).
///
/// The URA of a segment is the rectangle whose border is half the effective
/// gap away from the segment (including beyond the endpoints); the URA of a
/// candidate pattern is the union of its three segments' URAs, summarized by
/// an *outer border* ABCD and an *inner border* EFGH in the segment-local
/// frame. DRC is reduced to intersection/containment tests between these
/// borders and environment polygons.

#include <functional>
#include <vector>

#include "geom/box.hpp"
#include "geom/polygon.hpp"
#include "geom/polyline.hpp"
#include "geom/segment.hpp"

namespace lmr::core {

/// Candidate-pattern URA borders in the local frame: the base segment lies on
/// y = 0 with feet at x0 < x1 and the pattern side mapped to +y.
struct UraBorders {
  double x0 = 0.0;    ///< left foot
  double x1 = 0.0;    ///< right foot
  double half = 0.0;  ///< URA half-width (effective_gap / 2)
  double hob = 0.0;   ///< outer border height (y of B and C, Fig. 6)

  /// Outer border ABCD: [x0-half, x1+half] x [0, hob].
  [[nodiscard]] geom::Box outer() const {
    return {{x0 - half, 0.0}, {x1 + half, hob}};
  }
  /// Inner border EFGH: [x0+half, x1-half] x [0, hob - 2*half]; empty when
  /// the pattern is too narrow or too low to enclose anything.
  [[nodiscard]] geom::Box inner() const {
    const geom::Box b{{x0 + half, 0.0}, {x1 - half, hob - 2.0 * half}};
    return b;
  }
  [[nodiscard]] bool inner_empty() const {
    const geom::Box b = inner();
    return b.lo.x >= b.hi.x || b.lo.y >= b.hi.y;
  }

  /// Pattern height implied by the current outer border (Eq. 10):
  /// h = max(0, hob - half).
  [[nodiscard]] double pattern_height() const { return hob > half ? hob - half : 0.0; }
};

/// Rectangle (as a rotated polygon in global coordinates) half of the gap
/// away from segment `s` on all four sides — the URA of a routed segment.
[[nodiscard]] geom::Polygon ura_of_segment(const geom::Segment& s, double half);

/// Per-segment URA halfwidth override (pair medians: a leg reserves the
/// restore room of *its own* Design Rule Area, not the extended segment's).
using SegmentHalfFn = std::function<double(const geom::Segment&)>;

/// URAs of every segment of a polyline except index `skip` (pass SIZE_MAX to
/// keep all). Segments adjacent to `skip` are shortened by `joint_trim` at
/// the shared node so that legal joint geometry (connect-to-node patterns)
/// is not rejected — adjacent same-net segments are exempt from the gap rule
/// (DESIGN.md §5). `half_of`, when set, supplies each segment's halfwidth
/// instead of the uniform `half`.
[[nodiscard]] std::vector<geom::Polygon> self_uras(const geom::Polyline& path, std::size_t skip,
                                                   double half, double joint_trim,
                                                   const SegmentHalfFn& half_of = {});

}  // namespace lmr::core
