#include "core/environment.hpp"

namespace lmr::core {

void Environment::add_static(geom::Polygon poly, EnvKind kind) {
  EnvPolygon e;
  e.bbox = poly.bbox();
  e.kind = kind;
  e.poly = std::move(poly);
  statics_.push_back(std::move(e));
}

void Environment::build_index() {
  std::vector<index::RangeTree2D::Entry> entries;
  total_nodes_ = 0;
  for (std::size_t i = 0; i < statics_.size(); ++i) {
    for (const geom::Point& p : statics_[i].poly.points()) {
      entries.push_back({p, static_cast<std::uint32_t>(i)});
      ++total_nodes_;
    }
  }
  tree_ = index::RangeTree2D{std::move(entries)};
}

void Environment::set_dynamic(std::vector<geom::Polygon> uras) {
  dynamics_.clear();
  dynamics_.reserve(uras.size());
  for (auto& p : uras) {
    EnvPolygon e;
    e.bbox = p.bbox();
    e.kind = EnvKind::SelfUra;
    e.poly = std::move(p);
    dynamics_.push_back(std::move(e));
  }
}

std::vector<const EnvPolygon*> Environment::collect(const geom::Box& query) const {
  std::vector<const EnvPolygon*> out;
  for (const EnvPolygon& e : statics_) {
    if (e.bbox.intersects(query)) out.push_back(&e);
  }
  for (const EnvPolygon& e : dynamics_) {
    if (e.bbox.intersects(query)) out.push_back(&e);
  }
  return out;
}

}  // namespace lmr::core
