#pragma once
/// \file trace_extender.hpp
/// Queue-driven trace extension (Alg. 1).
///
/// Pops unexpanded segments, discretizes them, runs the segment DP with URA
/// height solving, restores the best pattern chain, splices it into the
/// trace and enqueues the freshly created sub-segments for further
/// meandering. Iterates until the trace reaches its target length within
/// tolerance or no segment can contribute.
///
/// Differences from a verbatim Alg. 1 transcription, all documented in
/// DESIGN.md §5:
///  * gains are exact trace-length gains (2h per right-angle pattern);
///  * when a restored chain would overshoot the target, pattern heights are
///    trimmed (largest first) with each trimmed height re-validated through
///    the solver, because height validity is not monotone near enclosed
///    obstacles;
///  * `maximize()` mode (used by the Table II ablation) runs the same loop
///    with an unbounded requirement.

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "core/environment.hpp"
#include "core/pattern.hpp"
#include "drc/rules.hpp"
#include "fault/cancel.hpp"
#include "layout/routable_area.hpp"
#include "layout/trace.hpp"

namespace lmr::core {

/// Per-segment restore-feasibility probe (pair flows, §V): given a segment of
/// the trace under extension, return the extra clearance/spacing the DP must
/// keep there so the restored sub-traces stay legal after their ±pitch/2
/// offsets at the local Design-Rule-Area pitch (see drc::restore_margin).
using RestoreMarginFn = std::function<drc::RestoreMargin(const geom::Segment&)>;

/// Tuning knobs of the extender.
struct ExtenderConfig {
  double l_disc = 0.0;       ///< discretization step; 0 = use d_protect
  double tolerance = 1e-6;   ///< |l_trace - l_target| acceptance band
  int max_passes = 20000;    ///< safety bound on queue pops
  int max_width_steps = 0;   ///< DP width-loop cap; 0 = unbounded
  PatternStyle style = PatternStyle::RightAngle;
  bool exhaustive_checks = false;  ///< oracle-validate every accepted height
  double min_extend_length = 0.0;  ///< shortest segment worth queueing; 0 = auto
  bool extend_new_segments = true; ///< meander on freshly created segments too
  /// Restore-feasibility constraint for merged-pair medians: pattern
  /// placements that the ±pitch/2 restore offsets would push into gap /
  /// obstacle / containment rules are rejected up front by widening the
  /// URA halfwidth and the DP gap per segment. Empty = single-ended trace,
  /// no margin.
  RestoreMarginFn restore_margin;
  /// Cooperative cancellation, polled once per queue pop (i.e. at pattern-
  /// placement granularity: each pop is one DP run + splice). An expired
  /// token aborts the extension with fault::RouteTimeout/RouteCancelled;
  /// the default empty token costs one null test per pop.
  fault::CancelToken cancel;
};

/// Outcome report of one extension run.
struct ExtendStats {
  double initial_length = 0.0;
  double final_length = 0.0;
  double target = 0.0;
  int patterns_inserted = 0;
  int segments_processed = 0;
  int dp_runs = 0;
  bool reached = false;
  /// Mismatches where the fast shrinking accepted a height the exhaustive
  /// oracle rejects (only populated with exhaustive_checks; must stay 0).
  int oracle_mismatches = 0;
};

/// Extends one trace inside its routable area.
class TraceExtender {
 public:
  /// `extra_obstacles` lets callers add environment polygons that are not
  /// part of the routable area (e.g. URAs of already-routed foreign traces).
  TraceExtender(drc::DesignRules rules, const layout::RoutableArea& area,
                std::vector<geom::Polygon> extra_obstacles = {});

  /// Meander `trace` toward `target` length (Alg. 1). Throws
  /// std::invalid_argument when target < current length - tolerance.
  ExtendStats extend(layout::Trace& trace, double target, const ExtenderConfig& cfg = {});

  /// Insert as much length as the area allows (Table II's "extension upper
  /// bound" protocol): same loop with an unbounded requirement.
  ExtendStats maximize(layout::Trace& trace, const ExtenderConfig& cfg = {});

  [[nodiscard]] const Environment& environment() const { return env_; }

 private:
  struct QueuedSegment {
    geom::Point a;
    geom::Point b;
  };

  ExtendStats run(layout::Trace& trace, double target, bool bounded,
                  const ExtenderConfig& cfg);

  /// Find the vertex index k with path[k]==a, path[k+1]==b; SIZE_MAX if the
  /// segment no longer exists in the (possibly re-spliced) path.
  static std::size_t locate(const geom::Polyline& path, const QueuedSegment& q);

  drc::DesignRules rules_;
  Environment env_;
  double area_reach_ = 0.0;  ///< diagonal of the area bbox (height cap)
};

}  // namespace lmr::core
