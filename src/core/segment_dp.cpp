#include "core/segment_dp.hpp"

#include <algorithm>
#include <array>

namespace lmr::core {

namespace {

constexpr double kTieEps = 1e-12;

/// Transit record (Eq. 14): predecessor state plus the inserted pattern.
struct Transit {
  int pi = -1;        ///< predecessor point index (-1 = initial state)
  int pdir = 0;       ///< predecessor dir (index 0/1)
  int w = 0;          ///< inserted pattern width in steps (0 = copy)
  double h = 0.0;     ///< inserted pattern height
  bool connected = false;  ///< transition (c): shared-foot connection
};

struct State {
  double gain = 0.0;
  bool through_pattern = false;  ///< reached via a fresh insertion (Fig. 4)
  Transit tr;
};

int dir_of(int d) { return d == 0 ? 1 : -1; }

}  // namespace

DpResult run_segment_dp(const DpParams& params, const HeightFn& height) {
  DpResult result;
  const int n = params.n;
  if (n < 2) return result;
  const int g = std::max(1, params.gap_steps);
  const int p = std::max(1, params.protect_steps);

  // dp[i][d]; d = 0 is dir +1, d = 1 is dir -1.
  std::vector<std::array<State, 2>> dp(static_cast<std::size_t>(n));
  for (int d = 0; d < 2; ++d) {
    dp[0][d].gain = 0.0;  // Eq. 5
    dp[0][d].tr = Transit{};
  }

  const auto right_node_ok = [&](int i) {
    // Alg. 1 line 7: the right foot must be the node or >= d_protect from it.
    return i == n - 1 || (n - 1 - i) >= p;
  };
  const auto left_node_ok = [&](int j) { return j == 0 || j >= p; };

  for (int i = 1; i < n; ++i) {
    for (int d = 0; d < 2; ++d) {
      // Eq. 6: carry the previous best along the segment.
      State s = dp[i - 1][d];
      s.through_pattern = false;
      s.tr = Transit{i - 1, d, 0, 0.0, false};
      // Preserve initial-state semantics: no transit chain from point 0.
      if (i - 1 == 0) s.tr.pi = -1;
      dp[i][d] = s;
    }
    if (!right_node_ok(i)) continue;

    // Pattern legs are same-side parallel runs, so the hat width must meet
    // the gap rule; the hat is itself a segment, so it must also meet
    // d_protect. Hence the minimum width below.
    const int min_w = std::max(g, p);
    const int max_w = params.max_width_steps > 0 ? std::min(params.max_width_steps, i) : i;
    for (int d = 0; d < 2; ++d) {
      const int od = 1 - d;
      for (int w = min_w; w <= max_w; ++w) {
        const int j = i - w;
        if (!left_node_ok(j)) continue;

        // --- choose the best valid predecessor (Eq. 8) ---
        double best_pred = -1.0;
        int best_pi = -1, best_pdir = d;
        bool best_connected = false;
        const auto consider = [&](double gain, int pi, int pdir, bool connected) {
          if (gain > best_pred + kTieEps ||
              (gain > best_pred - kTieEps && connected && !best_connected)) {
            best_pred = gain;
            best_pi = pi;
            best_pdir = pdir;
            best_connected = connected;
          }
        };
        if (j - g >= 0) consider(dp[j - g][d].gain, j - g, d, false);   // (a) p_gap
        if (j - p >= 0) consider(dp[j - p][od].gain, j - p, od, false); // (b) p_protect
        if (dp[j][od].through_pattern) consider(dp[j][od].gain, j, od, true);  // (c) p_local
        if (j == 0) consider(0.0, -1, d, false);  // (d) connect to left node
        if (best_pred < 0.0) continue;

        // --- height request: remaining requirement after the predecessor ---
        double h_request =
            height_for_gain(std::max(0.0, params.needed_gain - best_pred),
                            params.style, params.miter);
        if (h_request < params.min_height) {
          if (params.needed_gain - best_pred <= 0.0) continue;  // nothing needed
          h_request = params.min_height;  // small remainder: allow the minimum
        }
        const double h = height(j, i, dir_of(d), h_request);
        if (h < params.min_height) continue;
        const double gain = pattern_gain(h, params.style, params.miter);
        if (gain <= 0.0) continue;

        const double total = best_pred + gain;
        State& cur = dp[i][d];
        const bool better = total > cur.gain + kTieEps;
        const bool tie_preferred =
            total > cur.gain - kTieEps && !cur.through_pattern;  // Fig. 4 priority
        if (better || tie_preferred) {
          cur.gain = total;
          cur.through_pattern = true;
          cur.tr = Transit{best_pi, best_pdir, w, h, best_connected};
        }
      }
    }
  }

  // Pick the best final state (line 14 of Alg. 1).
  const int best_d = dp[n - 1][0].gain >= dp[n - 1][1].gain ? 0 : 1;
  result.gain = dp[n - 1][best_d].gain;
  if (result.gain <= 0.0) return result;

  // Restoration (§IV-C): walk the transit chain backwards.
  int i = n - 1, d = best_d;
  while (i > 0) {
    const Transit& tr = dp[i][d].tr;
    if (tr.w > 0) {
      result.patterns.push_back(Pattern{i - tr.w, i, tr.h, dir_of(d)});
      if (tr.pi < 0) break;
      i = tr.pi;
      d = tr.pdir;
    } else {
      if (tr.pi < 0) break;
      i = tr.pi;
      d = tr.pdir;
    }
  }
  std::reverse(result.patterns.begin(), result.patterns.end());
  return result;
}

}  // namespace lmr::core
