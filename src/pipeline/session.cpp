#include "pipeline/session.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

#include "core/clock.hpp"

namespace lmr::pipeline {

namespace {

bool same_violation(const layout::Violation& a, const layout::Violation& b) {
  return a.kind == b.kind && a.trace == b.trace && a.other_trace == b.other_trace &&
         a.index_a == b.index_a && a.index_b == b.index_b && a.measured == b.measured &&
         a.required == b.required && a.note == b.note;
}

bool same_violations(const std::vector<layout::Violation>& a,
                     const std::vector<layout::Violation>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!same_violation(a[i], b[i])) return false;
  }
  return true;
}

void explain(std::string* why, const std::string& msg) {
  if (why != nullptr) *why = msg;
}

}  // namespace

Session::Session(drc::DesignRules rules, RouterOptions options, layout::Layout board)
    : router_(rules, std::move(options)),
      layout_(std::move(board)),
      board_index_(router_.rules(), router_.options().drc,
                   router_.options().clearance_backend) {}

Session::Session(drc::DesignRules rules, RouterOptions options, layout::Layout board,
                 BoardRoute prior)
    : Session(std::move(rules), std::move(options), std::move(board)) {
  if (prior.version != layout_.version()) {
    throw std::invalid_argument(
        "Session: snapshot route version " + std::to_string(prior.version) +
        " does not match layout version " + std::to_string(layout_.version()));
  }
  route_ = std::move(prior);
  routed_ = true;
  std::vector<std::size_t> all;
  for (std::size_t g = 0; g < layout_.groups().size(); ++g) all.push_back(g);
  reindex_groups(all);
}

const BoardRoute& Session::route(ApplyMode mode) {
  route_ = mode == ApplyMode::Degraded ? degraded_router().route_board(layout_)
                                       : router_.route_board(layout_);
  routed_ = true;
  std::vector<std::size_t> all;
  for (std::size_t g = 0; g < layout_.groups().size(); ++g) all.push_back(g);
  reindex_groups(all);
  return route_;
}

ApplyOutcome Session::apply(const layout::BoardEdit& edit) {
  return apply(std::span<const layout::BoardEdit>{&edit, 1});
}

ApplyOutcome Session::apply(std::span<const layout::BoardEdit> edits, ApplyMode mode) {
  if (!routed_) {
    throw std::logic_error("Session::apply: route() the board first");
  }
  last_partial_.reset();
  fault::FaultPlan* const plan = router_.options().fault_plan.get();
  ApplyOutcome outcome;
  outcome.version_before = layout_.version();
  outcome.edit_offsets.push_back(0);
  std::exception_ptr failed;
  for (const layout::BoardEdit& e : edits) {
    std::vector<layout::LayoutDelta> deltas;
    try {
      if (plan != nullptr) {
        plan->at_site(fault::apply_site(router_.options().fault_scope));
      }
      deltas = layout::apply_edit(layout_, e);
    } catch (...) {
      // A mid-batch lowering failure (bad index after an earlier queued
      // edit, or an injected session:apply fault) leaves the layout exactly
      // at the state after the last good edit — apply_edit validates before
      // mutating and the fault site fires before it runs. Reroute over the
      // applied prefix below so route_ catches up, then rethrow.
      failed = std::current_exception();
      break;
    }
    outcome.deltas.insert(outcome.deltas.end(),
                          std::make_move_iterator(deltas.begin()),
                          std::make_move_iterator(deltas.end()));
    outcome.edit_offsets.push_back(outcome.deltas.size());
  }
  outcome.version_after = layout_.version();
  try {
    finish_reroute(outcome, mode);
  } catch (...) {
    // Reroute-phase failure: the prefix's deltas are journaled but the
    // Router's rollback restored the prior geometry — route_ is stale until
    // resync() (or the next apply, whose reroute covers the full suffix).
    last_partial_ = outcome;
    throw;
  }
  if (failed) {
    last_partial_ = outcome;
    std::rethrow_exception(failed);
  }
  return outcome;
}

ApplyOutcome Session::resync(ApplyMode mode) {
  if (!routed_) {
    throw std::logic_error("Session::resync: route() the board first");
  }
  ApplyOutcome outcome;
  outcome.version_before = route_.version;
  const std::span<const layout::LayoutDelta> pending =
      layout_.deltas_since(route_.version);
  outcome.deltas.assign(pending.begin(), pending.end());
  outcome.edit_offsets.push_back(0);
  outcome.edit_offsets.push_back(outcome.deltas.size());
  outcome.version_after = layout_.version();
  finish_reroute(outcome, mode);
  last_partial_.reset();
  return outcome;
}

void Session::finish_reroute(ApplyOutcome& outcome, ApplyMode mode) {
  const auto t0 = core::now();
  // The journal-suffix overload reroutes over *every* delta the route has
  // not seen, not just this batch's: after a prior reroute-phase failure
  // the suffix also carries the stranded deltas, so the commit self-heals.
  route_ = mode == ApplyMode::Degraded ? degraded_router().reroute(layout_, route_)
                                       : router_.reroute(layout_, route_);
  outcome.reroute_s = core::seconds_since(t0);
  outcome.rerouted_groups = route_.rerouted_groups;
  outcome.groups_total = layout_.groups().size();
  reindex_groups(outcome.rerouted_groups);
}

Router Session::degraded_router() const {
  RouterOptions opts = router_.options();
  opts.drc_schedule = DrcSchedule::Barrier;
  opts.threads = 1;
  opts.pool = nullptr;
  return Router(router_.rules(), std::move(opts));
}

std::pair<layout::Layout, BoardRoute> Session::release() {
  if (!routed_) {
    throw std::logic_error("Session::release: route() the board first");
  }
  {
    // Prove quiescence: if a route is still in flight (a freeze is alive),
    // evicting now would rip the layout out from under it.
    auto freeze = layout_.try_freeze();
    if (!freeze) {
      throw std::logic_error("Session::release: a route is in flight");
    }
  }
  return {std::move(layout_), std::move(route_)};
}

void Session::reindex_groups(std::span<const std::size_t> groups) {
  for (const std::size_t g : groups) {
    for (const layout::GroupMember& m : layout_.groups().at(g).members) {
      auto it = member_slots_.find(m.id);
      if (it == member_slots_.end()) {
        MemberSlots slots;
        slots.count = m.kind == layout::MemberKind::SingleEnded ? 1 : 2;
        if (m.kind == layout::MemberKind::SingleEnded) {
          slots.slot0 = board_index_.add_slot(layout_.trace(m.id).width, next_net_);
        } else {
          const layout::DiffPair& pair = layout_.pair(m.id);
          slots.slot0 = board_index_.add_slot(pair.positive.width, next_net_);
          board_index_.add_slot(pair.negative.width, next_net_);
        }
        ++next_net_;
        it = member_slots_.emplace(m.id, slots).first;
      }
      if (m.kind == layout::MemberKind::SingleEnded) {
        board_index_.insert(it->second.slot0, layout_.trace(m.id));
      } else {
        const layout::DiffPair& pair = layout_.pair(m.id);
        board_index_.insert(it->second.slot0, pair.positive);
        board_index_.insert(it->second.slot0 + 1, pair.negative);
      }
    }
  }
  // A member edited out of every group stops being length-matched state:
  // take its slots out of the sweep (they revive on re-membership).
  for (const auto& [id, slots] : member_slots_) {
    if (layout_.group_of(id) != layout::kNoIndex) continue;
    for (std::uint32_t s = 0; s < slots.count; ++s) {
      if (board_index_.slot_inserted(slots.slot0 + s)) {
        board_index_.remove(slots.slot0 + s);
      }
    }
  }
}

std::vector<layout::Violation> Session::board_clearance() {
  return board_index_.sweep();
}

bool routes_equivalent(const layout::Layout& a, const BoardRoute& ra,
                       const layout::Layout& b, const BoardRoute& rb,
                       std::string* why) {
  if (ra.results.size() != rb.results.size()) {
    explain(why, "group count differs");
    return false;
  }
  for (std::size_t g = 0; g < ra.results.size(); ++g) {
    const RouteResult& ga = ra.results[g];
    const RouteResult& gb = rb.results[g];
    const std::string tag = "group " + std::to_string(g);
    if (ga.group.members.size() != gb.group.members.size()) {
      explain(why, tag + ": member count differs");
      return false;
    }
    for (std::size_t m = 0; m < ga.group.members.size(); ++m) {
      const MemberReport& ma = ga.group.members[m];
      const MemberReport& mb = gb.group.members[m];
      if (ma.id != mb.id || ma.kind != mb.kind) {
        explain(why, tag + ": membership differs at slot " + std::to_string(m));
        return false;
      }
      if (ma.kind == layout::MemberKind::SingleEnded) {
        if (a.trace(ma.id).path.points() != b.trace(mb.id).path.points()) {
          explain(why, tag + ": trace " + std::to_string(ma.id) + " geometry differs");
          return false;
        }
      } else {
        const layout::DiffPair& pa = a.pair(ma.id);
        const layout::DiffPair& pb = b.pair(mb.id);
        if (pa.positive.path.points() != pb.positive.path.points() ||
            pa.negative.path.points() != pb.negative.path.points()) {
          explain(why, tag + ": pair " + std::to_string(ma.id) + " geometry differs");
          return false;
        }
      }
    }
    if (ga.nets.size() != gb.nets.size()) {
      explain(why, tag + ": net-result count differs");
      return false;
    }
    for (std::size_t n = 0; n < ga.nets.size(); ++n) {
      if (!same_violations(ga.nets[n].violations, gb.nets[n].violations)) {
        explain(why, tag + ": per-net violations differ at net " + std::to_string(n));
        return false;
      }
    }
    if (!same_violations(ga.cross_violations, gb.cross_violations)) {
      explain(why, tag + ": cross-member violations differ");
      return false;
    }
  }
  return true;
}

}  // namespace lmr::pipeline
