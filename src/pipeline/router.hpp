#pragma once
/// \file router.hpp
/// One-call facade over the paper's full length-matching flow (Fig. 2).
///
/// `Router` wires together everything callers previously had to hand-wire
/// (as `bench/table1_main.cpp` once did): per-trace URA extraction and
/// segment DP extension (core/trace_extender), MSDTW median merging and
/// pair restoration for differential members (dtw/*), group-level Eq. 19
/// error accounting, and the final DRC oracle sweep (layout/drc_checker).
///
/// One `route()` call length-matches a group of a layout and returns
/// per-net diagnostics; `route_batch()` runs the same flow with independent
/// nets extended on the persistent work-stealing executor (exec/task_pool);
/// `route_all()` batches every group of a layout into one task fan-out so
/// small groups never serialize behind each other.
///
/// Within one group the flow is a staged task graph, not two serial phases:
/// each member is an extend → write-back → per-net DRC chain
/// (exec::TaskGroup::run_chain), so one member's rule/obstacle/containment
/// checks run while other members are still extending, and each member's
/// sampled segments land in an incremental layout::ClearanceIndex as its
/// geometry is written back. Only the cross-member clearance query pass
/// remains as a barrier after the join (see DrcSchedule). All paths produce
/// identical results by construction: every net is extended on a private
/// copy of its geometry (nets of one group own disjoint routable areas, so
/// they are independent), and every report, violation list and index slot
/// is written at its member-order index, so the outcome — including
/// violation order — is independent of scheduling.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/trace_extender.hpp"
#include "drc/rules.hpp"
#include "exec/task_pool.hpp"
#include "fault/cancel.hpp"
#include "fault/fault_plan.hpp"
#include "geom/box.hpp"
#include "layout/clearance_index.hpp"
#include "layout/drc_checker.hpp"
#include "layout/layout.hpp"

namespace lmr::pipeline {

/// Extension engine selection.
enum class Engine {
  DpMsdtw,    ///< the paper's flow: segment DP + MSDTW medians (default)
  AidtStyle,  ///< greedy fixed-geometry baseline (the Table I comparator)
};

/// Scheduling of the DRC oracle relative to member extension.
enum class DrcSchedule {
  /// Staged pipeline (default): every member runs an
  /// extend → write-back → per-net DRC chain on the executor, so member B
  /// extends while member A's rule/obstacle/containment checks run and its
  /// segments land in the incremental clearance index. Only the cross-member
  /// clearance query pass remains as a barrier after the join.
  Overlapped,
  /// Legacy two-phase comparator: every member finishes extending before the
  /// first oracle check runs; the whole DRC sweep is tail latency. Kept so
  /// tests and `bench_micro_drc_overlap` can diff the two paths — they must
  /// produce identical violation sets in identical order.
  Barrier,
};

/// Per-member outcome.
struct MemberReport {
  layout::TraceId id = 0;
  layout::MemberKind kind = layout::MemberKind::SingleEnded;
  std::string name;
  double initial_length = 0.0;
  double final_length = 0.0;
  double target = 0.0;
  double runtime_s = 0.0;
  bool reached = false;
  int patterns = 0;

  [[nodiscard]] double error_fraction() const {
    return target > 0.0 ? (target - final_length) / target : 0.0;
  }
};

/// Per-group outcome with the paper's error metrics (Eq. 19).
struct GroupReport {
  std::string group_name;
  double target = 0.0;
  double max_error_pct = 0.0;
  double avg_error_pct = 0.0;
  double initial_max_error_pct = 0.0;
  double initial_avg_error_pct = 0.0;
  double runtime_s = 0.0;
  std::vector<MemberReport> members;
};

/// Facade knobs.
struct RouterOptions {
  core::ExtenderConfig extender;   ///< DP iteration caps, tolerance, grid
  Engine engine = Engine::DpMsdtw; ///< baseline selection
  bool run_drc = true;             ///< final oracle sweep after matching
  layout::DrcCheckOptions drc;     ///< oracle tolerances
  /// Overlap per-net DRC with extension (default) or run the legacy
  /// end-of-run sweep. Result-identical by construction; only timings move.
  DrcSchedule drc_schedule = DrcSchedule::Overlapped;
  /// Parallelism cap for route_batch / route_all (claimer count per
  /// fan-out); 0 = hardware concurrency (exec::resolve_threads).
  std::size_t threads = 0;
  /// Executor running the fan-out. Non-owning; nullptr lets the Router
  /// pick: the lazy shared singleton when `threads == 0`, otherwise a
  /// private pool of `threads - 1` workers created on first parallel call
  /// and reused for the Router's lifetime. Callers that batch many Routers
  /// (bench::Suite) pass one pool here so every layer shares its workers.
  exec::TaskPool* pool = nullptr;
  /// Ascending MSDTW distance-rule set for differential members (Alg. 3's
  /// R) when a pair crosses several Design Rule Areas; empty means the
  /// single-DRA default {pair.pitch}.
  std::vector<double> pair_rule_set;
  /// Cooperative cancellation: polled at every stage boundary and inside
  /// the DP extender at pattern-placement granularity. `cancel.cancel()`
  /// aborts in-flight routes with fault::RouteCancelled; the rollback path
  /// guarantees the layout is untouched. Empty (the default) costs one null
  /// test per poll.
  fault::CancelToken cancel;
  /// Per-group route budget in seconds; 0 = none. Each `run` (one group's
  /// route, whether via route()/route_all()/reroute()) derives a deadline
  /// token at entry; expiry surfaces as fault::RouteTimeout with the same
  /// layout-untouched guarantee. Composes with `cancel`.
  double deadline_s = 0.0;
  /// Fault-injection plane (tests, fault_storm bench); nullptr = disarmed —
  /// one null test per site. See fault/fault_plan.hpp for the site keys.
  std::shared_ptr<fault::FaultPlan> fault_plan;
  /// Prefix baked into this Router's fault site keys; the serving tier sets
  /// the board id so plans can target one board out of many.
  std::string fault_scope;
  /// Broadphase behind every clearance sweep this Router runs (per-group
  /// indices and, through Session, the board-wide index). `Auto` picks the
  /// segment grid once an index holds ClearanceIndex::kGridAutoSlots slots.
  /// Both backends are bit-identical in output; this only moves time.
  layout::ClearanceBackend clearance_backend = layout::ClearanceBackend::Auto;
  /// Spatial tile sharding for route_all / reroute: 0 = auto (tile count
  /// derived from group count, split along the board's long axis), 1 = off,
  /// >= 2 = force that many tiles. Tiles route as independent task fan-outs
  /// with tile-local obstacle subsets; groups whose reach straddles a tile
  /// boundary run in a final cross-tile pass against the full board. Output
  /// is bit-identical for every tile count (see layout::ObstacleSelector).
  std::size_t tiles = 0;
};

/// Per-net diagnostics: the matching report plus this net's oracle verdict.
struct NetResult {
  MemberReport member;
  /// Violations involving only this net (self rules, obstacle clearance,
  /// area containment; both sub-traces for a differential member).
  std::vector<layout::Violation> violations;

  [[nodiscard]] bool drc_clean() const { return violations.empty(); }
};

/// Whole-run outcome of `route()` / `route_batch()`.
struct RouteResult {
  GroupReport group;            ///< Eq. 19 error metrics + member reports
  std::vector<NetResult> nets;  ///< one entry per group member
  /// Clearance violations between traces of *different* members.
  std::vector<layout::Violation> cross_violations;
  double runtime_s = 0.0;
  /// Aggregate extension work time (sum of per-member extension runtimes;
  /// exceeds wall time when members run concurrently).
  double extend_runtime_s = 0.0;
  /// Aggregate per-net oracle work time (rules / obstacles / containment +
  /// clearance-index inserts). Under `DrcSchedule::Overlapped` this runs
  /// concurrently with other members' extension instead of after the join.
  double drc_overlap_runtime_s = 0.0;
  /// Wall time of the final cross-member clearance query pass — the only
  /// part of the oracle that is still a barrier.
  double drc_barrier_runtime_s = 0.0;
  /// Total oracle work: drc_overlap_runtime_s + drc_barrier_runtime_s. No
  /// longer pure tail latency when the overlapped schedule hides the per-net
  /// share behind extension.
  double drc_runtime_s = 0.0;
  /// Everything this group's route read or produced, geometrically: the
  /// union of member routable-area bboxes and pre-/post-route path bboxes.
  /// `Router::reroute` proves a board edit cannot have changed this group
  /// by showing the edit's dirty box, inflated by the clearance radius,
  /// misses this box.
  geom::Box domain_bbox;

  [[nodiscard]] bool matched() const;
  [[nodiscard]] bool drc_clean() const;
  [[nodiscard]] std::size_t violation_count() const;
  [[nodiscard]] bool ok() const { return matched() && drc_clean(); }
};

/// Pristine (pre-route) geometry of one group member. Re-routing a group is
/// only equivalent to routing it fresh if it starts from the same input
/// polylines, so `route_board` snapshots every member's path before the
/// first extension and `reroute` restores the snapshot for every member of
/// an affected group before re-running it.
struct MemberSeed {
  layout::MemberKind kind = layout::MemberKind::SingleEnded;
  geom::Polyline primary;    ///< the trace, or traceP of a pair
  geom::Polyline secondary;  ///< traceN of a pair; empty for single-ended
};

/// A whole-board routing outcome pinned to the layout version it reflects.
/// `route_board` produces one; `reroute` consumes a prior one plus the
/// journal suffix and splices fresh results over the affected groups only.
struct BoardRoute {
  /// layout.version() the results correspond to. `reroute` rejects delta
  /// lists that do not connect this version to the layout's current one.
  std::uint64_t version = 0;
  /// One result per group, in group order — bit-identical (geometry and
  /// violations) to a fresh `route_all` of the same board.
  std::vector<RouteResult> results;
  /// Pristine pre-route geometry per member id (see MemberSeed).
  std::map<layout::TraceId, MemberSeed> seeds;
  /// Diagnostics: group indices the producing call actually re-routed
  /// (`route_board` lists every group). Not part of the equivalence
  /// contract.
  std::vector<std::size_t> rerouted_groups;
};

/// The end-to-end facade. Construct once with the design rules, then route
/// as many layouts as needed (the Router itself is immutable and
/// thread-compatible: concurrent `route()` calls on distinct layouts are
/// safe).
class Router {
 public:
  /// Throws std::invalid_argument on inconsistent rules.
  explicit Router(drc::DesignRules rules, RouterOptions options = {});

  /// Match group `group_index` of `layout` sequentially. Throws
  /// std::out_of_range on a bad index and std::invalid_argument when a
  /// member lacks a routable area.
  RouteResult route(layout::Layout& layout, std::size_t group_index = 0) const;

  /// Same flow with independent nets extended across up to
  /// `options.threads` claimers on the persistent executor (no per-call
  /// thread spawning). Bit-identical trace geometry to `route()`; only the
  /// timing fields differ.
  RouteResult route_batch(layout::Layout& layout, std::size_t group_index = 0) const;

  /// Route *every* group of `layout` as one task batch: groups and their
  /// members share the same executor, so a board of many small groups
  /// saturates the pool instead of serializing group by group. Returns one
  /// RouteResult per group, in group order, bit-identical to calling
  /// `route()` per group. Requires what every generated board satisfies:
  /// no trace belongs to two groups (members are written back
  /// concurrently).
  std::vector<RouteResult> route_all(layout::Layout& layout) const;

  /// `route_all` plus the session bookkeeping: snapshot every member's
  /// pristine geometry first, stamp the layout version, return the package
  /// `reroute` incrementally updates.
  BoardRoute route_board(layout::Layout& layout) const;

  /// Incremental re-route: prove which groups the recorded edits can touch
  /// (group-structure deltas name their group; geometric deltas miss a
  /// group when their dirty bbox inflated by the worst-case clearance
  /// radius misses its cached domain bbox), restore those groups' members
  /// to their pristine seeds, re-run only them on the same executor, and
  /// splice the fresh results over `prior`'s. The result is bit-identical —
  /// trace geometry and violation sets — to a fresh `route_all` of the
  /// edited board. `deltas` must be exactly the journal suffix connecting
  /// `prior.version` to `layout.version()`: stale, reordered or truncated
  /// edit lists throw std::invalid_argument.
  BoardRoute reroute(layout::Layout& layout, const BoardRoute& prior,
                     std::span<const layout::LayoutDelta> deltas) const;
  /// Convenience: reroute over the layout's own journal suffix since
  /// `prior.version` (always correctly ordered).
  BoardRoute reroute(layout::Layout& layout, const BoardRoute& prior) const;

  /// The delta → dirty-group proof by itself (exposed for tests and
  /// diagnostics): indices of groups the edits could have affected, in
  /// group order. Groups the board has grown past `prior.results` are
  /// always included.
  [[nodiscard]] std::vector<std::size_t> affected_groups(
      const layout::Layout& layout, const BoardRoute& prior,
      std::span<const layout::LayoutDelta> deltas) const;

  [[nodiscard]] const drc::DesignRules& rules() const { return rules_; }
  [[nodiscard]] const RouterOptions& options() const { return options_; }

  /// The spatial partition route_all/reroute would shard this board's
  /// groups into, exposed for tests and diagnostics. A trivial plan
  /// (tiles_x * tiles_y == 1) means tiling is off for this board — too few
  /// groups, `RouterOptions::tiles == 1`, or a degenerate extent.
  struct TilePlan {
    struct Tile {
      geom::Box box;       ///< partition cell
      geom::Box coverage;  ///< box inflated by the interaction radius
      /// Groups whose reach (member areas + current paths) lies wholly in
      /// this tile; they route against the tile-local obstacle subset.
      std::vector<std::size_t> groups;
      /// Size of that subset (obstacles whose bbox intersects coverage).
      std::size_t obstacles = 0;
    };
    std::size_t tiles_x = 1;
    std::size_t tiles_y = 1;
    std::vector<Tile> tiles;  ///< row-major, tiles_x * tiles_y (empty if trivial)
    /// Groups spanning more than one tile: routed in the final cross-tile
    /// pass against the full board obstacle list.
    std::vector<std::size_t> straddlers;
  };
  [[nodiscard]] TilePlan tile_plan(const layout::Layout& layout) const;

  /// The executor this Router fans out on (see RouterOptions::pool).
  /// Instantiates the shared/private pool on first use.
  [[nodiscard]] exec::TaskPool& pool() const;

 private:
  RouteResult run(layout::Layout& layout, std::size_t group_index,
                  std::size_t threads,
                  const layout::ObstacleSelector* obstacles = nullptr) const;
  /// Shared tiled driver behind route_all/reroute: shard `todo` into tiles,
  /// route tile-local fan-outs, then the cross-tile straddler pass. Writes
  /// results[g] for every g in todo (index-addressed — scheduling cannot
  /// change output).
  void route_groups(layout::Layout& layout, const std::vector<std::size_t>& todo,
                    std::vector<RouteResult>& results, std::size_t threads) const;
  [[nodiscard]] TilePlan plan_tiles(const layout::Layout& layout,
                                    const std::vector<std::size_t>& todo) const;
  /// Worst-case distance at which anything on the board can still influence
  /// a route (see affected_groups; also sizes tile coverage).
  [[nodiscard]] double interaction_radius(const layout::Layout& layout) const;

  drc::DesignRules rules_;
  RouterOptions options_;
  /// Owns-or-borrows the executor per the exec 0/1/N convention, lazily
  /// (route()-only Routers never spawn a thread) and reused across calls.
  mutable exec::PoolHandle pool_handle_;
};

}  // namespace lmr::pipeline
