#include "pipeline/router.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "baseline/aidt_style.hpp"
#include "dtw/dtw.hpp"
#include "dtw/median_trace.hpp"
#include "dtw/pair_restore.hpp"
#include "layout/clearance_sweep.hpp"

namespace lmr::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One net's inputs, copied out of the layout so that workers never touch
/// shared state: extension runs entirely on this private copy.
struct MemberWork {
  layout::GroupMember member;
  double target = 0.0;
  const layout::RoutableArea* area = nullptr;
  layout::Trace trace;    ///< single-ended members
  layout::DiffPair pair;  ///< differential members
};

void route_single_ended(const drc::DesignRules& rules, const RouterOptions& opts,
                        MemberWork& w, MemberReport& mr) {
  mr.name = w.trace.name;
  mr.initial_length = w.trace.length();
  if (opts.engine == Engine::AidtStyle) {
    baseline::AidtStyleTuner tuner(rules, *w.area);
    const baseline::AidtStats stats = tuner.tune(w.trace, w.target);
    mr.final_length = stats.final_length;
    mr.reached = stats.reached;
  } else {
    core::TraceExtender ext(rules, *w.area);
    const core::ExtendStats stats = ext.extend(w.trace, w.target, opts.extender);
    mr.final_length = stats.final_length;
    mr.reached = stats.reached;
    mr.patterns = stats.patterns_inserted;
  }
}

void route_pair(const drc::DesignRules& rules, const RouterOptions& opts,
                MemberWork& w, MemberReport& mr) {
  layout::DiffPair& pair = w.pair;
  mr.name = pair.name;
  mr.initial_length =
      std::max(pair.positive.path.length(), pair.negative.path.length());

  if (opts.engine == Engine::AidtStyle) {
    // The "common way" of §V-A: naive DTW median (no filtering) tuned as one
    // wide trace under the virtual rules, restored without skew
    // compensation.
    const auto& pp = pair.positive.path.points();
    const auto& nn = pair.negative.path.points();
    const dtw::DtwResult match = dtw::dtw_match(pp, nn);
    dtw::MedianTrace mt = dtw::build_median_trace(pp, nn, match.pairs);
    layout::Trace median;
    median.path = std::move(mt.median);
    median.width = 2.0 * pair.positive.width + pair.pitch;
    const drc::DesignRules vr = drc::virtual_pair_rules(rules, pair.pitch);
    baseline::AidtStyleTuner tuner(vr, *w.area);
    const baseline::AidtStats stats = tuner.tune(median, w.target);
    layout::DiffPair restored =
        dtw::restore_pair(median, pair.pitch, pair.positive.width);
    pair.positive.path = std::move(restored.positive.path);
    pair.negative.path = std::move(restored.negative.path);
    mr.reached = stats.reached;
  } else {
    // Merge -> extend median under virtual rules -> restore -> compensate.
    drc::DesignRules sub_rules = rules;
    sub_rules.trace_width = pair.positive.width;
    dtw::MergedPair merged = dtw::merge_pair(
        pair, sub_rules,
        opts.pair_rule_set.empty() ? std::vector<double>{pair.pitch} : opts.pair_rule_set);
    // The median is shorter than the sub-traces by half the pair spread at
    // corners; target the median so the *sub-traces* reach the group target
    // (sub length ≈ median length + skipped detours).
    const double median_target =
        w.target - std::max(merged.skipped_p_length, merged.skipped_n_length);
    core::TraceExtender ext(merged.virtual_rules, *w.area);
    const core::ExtendStats stats = ext.extend(
        merged.median, std::max(median_target, merged.median.length()), opts.extender);
    layout::DiffPair restored =
        dtw::restore_pair(merged.median, pair.pitch, pair.positive.width);
    // Restoration keeps the median's base nodes where meander legs cross the
    // pair axis; after the +/- pitch/2 offset those collinear splits can
    // leave sub-d_protect half-segments that the oracle would flag as stubs.
    // They carry no geometry, so drop them — before skew compensation, whose
    // host-segment search needs the un-fragmented straight runs.
    restored.positive.path.simplify(1e-9);
    restored.negative.path.simplify(1e-9);
    dtw::compensate_skew(restored, sub_rules);
    pair.positive.path = std::move(restored.positive.path);
    pair.negative.path = std::move(restored.negative.path);
    mr.reached = stats.reached;
    mr.patterns = stats.patterns_inserted;
  }
  mr.final_length =
      std::min(pair.positive.path.length(), pair.negative.path.length());
}

MemberReport route_member(const drc::DesignRules& rules, const RouterOptions& opts,
                          MemberWork& w) {
  MemberReport mr;
  mr.id = w.member.id;
  mr.kind = w.member.kind;
  mr.target = w.target;
  const auto t0 = Clock::now();
  if (w.member.kind == layout::MemberKind::SingleEnded) {
    route_single_ended(rules, opts, w, mr);
  } else {
    route_pair(rules, opts, w, mr);
  }
  mr.runtime_s = seconds_since(t0);
  return mr;
}

void append(std::vector<layout::Violation>& out, std::vector<layout::Violation> v) {
  out.insert(out.end(), std::make_move_iterator(v.begin()),
             std::make_move_iterator(v.end()));
}

}  // namespace

bool RouteResult::matched() const {
  return std::all_of(group.members.begin(), group.members.end(),
                     [](const MemberReport& m) { return m.reached; });
}

bool RouteResult::drc_clean() const { return violation_count() == 0; }

std::size_t RouteResult::violation_count() const {
  std::size_t n = cross_violations.size();
  for (const NetResult& net : nets) n += net.violations.size();
  return n;
}

Router::Router(drc::DesignRules rules, RouterOptions options)
    : rules_(rules), options_(std::move(options)), pool_handle_(options_.threads) {
  rules_.validate();
}

RouteResult Router::route(layout::Layout& layout, std::size_t group_index) const {
  return run(layout, group_index, 1);
}

RouteResult Router::route_batch(layout::Layout& layout, std::size_t group_index) const {
  return run(layout, group_index, exec::resolve_threads(options_.threads));
}

std::vector<RouteResult> Router::route_all(layout::Layout& layout) const {
  const std::size_t n_groups = layout.groups().size();
  const std::size_t threads = exec::resolve_threads(options_.threads);
  std::vector<RouteResult> results(n_groups);
  if (threads <= 1 || n_groups <= 1) {
    for (std::size_t g = 0; g < n_groups; ++g) results[g] = run(layout, g, threads);
    return results;
  }
  // One task per group; the nested member fan-out inside run() lands on the
  // same pool (workers push to their own deques, idle workers steal), so a
  // board of many small groups fills every worker instead of running its
  // groups back to back.
  exec::parallel_for_dynamic(pool(), n_groups, threads, [&](std::size_t g) {
    results[g] = run(layout, g, threads);
  });
  return results;
}

exec::TaskPool& Router::pool() const {
  if (options_.pool != nullptr) return *options_.pool;
  exec::TaskPool* pool = pool_handle_.acquire();
  // acquire() is null only for the serial configuration (threads == 1),
  // which never reaches the fan-out paths; for a direct accessor call the
  // shared singleton is the only sensible executor to hand out.
  return pool != nullptr ? *pool : exec::TaskPool::shared();
}

RouteResult Router::run(layout::Layout& layout, std::size_t group_index,
                        std::size_t threads) const {
  if (group_index >= layout.groups().size()) {
    throw std::out_of_range("Router: bad group index");
  }
  const layout::MatchGroup& group = layout.groups()[group_index];
  const auto t_run = Clock::now();

  // Stage inputs: validate and snapshot every member before any extension
  // starts, so a bad member (or a mid-run extension failure) aborts with
  // the layout untouched. The geometry copy here is exactly that
  // abort-safety snapshot — the write-back below moves it back instead of
  // copying a second time.
  std::vector<MemberWork> work;
  work.reserve(group.members.size());
  for (std::size_t m = 0; m < group.members.size(); ++m) {
    MemberWork w;
    w.member = group.members[m];
    w.target = group.target_for(m);
    w.area = layout.routable_area(w.member.id);
    if (w.area == nullptr) {
      throw std::invalid_argument("Router: member has no routable area");
    }
    if (w.member.kind == layout::MemberKind::SingleEnded) {
      w.trace = layout.trace(w.member.id);
    } else {
      w.pair = layout.pair(w.member.id);
    }
    work.push_back(std::move(w));
  }

  // Extend. Claimers on the persistent pool grab the next unrouted net;
  // each result lands at its member index, so the outcome is independent of
  // scheduling order. A thrown extension rethrows here (first one wins)
  // after the fan-out drains — before any write-back.
  std::vector<MemberReport> reports(work.size());
  const std::size_t n_claimers = std::min(std::max<std::size_t>(threads, 1), work.size());
  if (n_claimers <= 1) {
    for (std::size_t i = 0; i < work.size(); ++i) {
      reports[i] = route_member(rules_, options_, work[i]);
    }
  } else {
    exec::parallel_for_dynamic(pool(), work.size(), n_claimers, [&](std::size_t i) {
      reports[i] = route_member(rules_, options_, work[i]);
    });
  }

  // Write results back in member order, moving the extended geometry out of
  // the staging snapshots (nothing below reads the staged paths again).
  for (MemberWork& w : work) {
    if (w.member.kind == layout::MemberKind::SingleEnded) {
      layout.trace(w.member.id).path = std::move(w.trace.path);
    } else {
      layout::DiffPair& pair = layout.pair(w.member.id);
      pair.positive.path = std::move(w.pair.positive.path);
      pair.negative.path = std::move(w.pair.negative.path);
    }
  }

  RouteResult result;
  result.group.group_name = group.name;
  result.group.target = group.target_length;
  result.group.members = std::move(reports);
  result.group.runtime_s = seconds_since(t_run);

  // Eq. 19 over final and initial lengths, on error magnitudes (overshoot
  // counts like undershoot — same convention as workload::matching_errors;
  // not shared code because members may carry individual targets here).
  const auto errors = [&](bool initial) {
    double max_e = 0.0, sum_e = 0.0;
    for (const MemberReport& mr : result.group.members) {
      const double len = initial ? mr.initial_length : mr.final_length;
      const double e = mr.target > 0.0 ? std::abs(mr.target - len) / mr.target : 0.0;
      max_e = std::max(max_e, e);
      sum_e += e;
    }
    const auto n = static_cast<double>(result.group.members.size());
    return std::pair{100.0 * max_e,
                     result.group.members.empty() ? 0.0 : 100.0 * sum_e / n};
  };
  std::tie(result.group.initial_max_error_pct, result.group.initial_avg_error_pct) =
      errors(true);
  std::tie(result.group.max_error_pct, result.group.avg_error_pct) = errors(false);

  // Final oracle sweep: per-net rules, then clearance across members.
  if (options_.run_drc) {
    const auto t_drc = Clock::now();
    const layout::DrcChecker checker(options_.drc);
    // All traces of one member, with the width-adjusted rules they obey.
    struct NetTrace {
      const layout::Trace* trace;
      drc::DesignRules rules;
    };
    const auto net_traces = [&](const MemberWork& w) {
      std::vector<NetTrace> out;
      if (w.member.kind == layout::MemberKind::SingleEnded) {
        out.push_back({&layout.trace(w.member.id), rules_});
      } else {
        const layout::DiffPair& pair = layout.pair(w.member.id);
        drc::DesignRules sub_rules = rules_;
        sub_rules.trace_width = pair.positive.width;
        out.push_back({&pair.positive, sub_rules});
        out.push_back({&pair.negative, sub_rules});
      }
      return out;
    };
    std::vector<std::vector<NetTrace>> traces_by_member;
    traces_by_member.reserve(work.size());
    for (const MemberWork& w : work) traces_by_member.push_back(net_traces(w));
    for (std::size_t i = 0; i < work.size(); ++i) {
      NetResult net;
      net.member = result.group.members[i];
      for (const NetTrace& nt : traces_by_member[i]) {
        append(net.violations, checker.check_trace(*nt.trace, nt.rules));
        append(net.violations,
               checker.check_obstacles(*nt.trace, nt.rules, layout.obstacles()));
        append(net.violations, checker.check_containment(*nt.trace, *work[i].area));
      }
      result.nets.push_back(std::move(net));
    }
    // Cross-member clearance through the range-tree sweep: one indexed pass
    // over all S segments instead of the all-pairs O(m² s²) loop.
    std::vector<layout::SweepTrace> sweep;
    for (std::size_t i = 0; i < traces_by_member.size(); ++i) {
      for (const NetTrace& nt : traces_by_member[i]) {
        sweep.push_back({nt.trace, static_cast<std::uint32_t>(i)});
      }
    }
    append(result.cross_violations,
           layout::cross_clearance_sweep(sweep, rules_, options_.drc));
    result.drc_runtime_s = seconds_since(t_drc);
  } else {
    for (const MemberReport& mr : result.group.members) {
      result.nets.push_back({mr, {}});
    }
  }

  result.runtime_s = seconds_since(t_run);
  return result;
}

}  // namespace lmr::pipeline
