#include "pipeline/router.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <stdexcept>
#include <utility>

#include "baseline/aidt_style.hpp"
#include "core/clock.hpp"
#include "dtw/dtw.hpp"
#include "dtw/median_trace.hpp"
#include "dtw/pair_restore.hpp"
#include "layout/clearance_index.hpp"

namespace lmr::pipeline {

namespace {

using core::seconds_since;

/// One net's inputs, copied out of the layout so that workers never touch
/// shared state: extension runs entirely on this private copy.
struct MemberWork {
  layout::GroupMember member;
  double target = 0.0;
  const layout::RoutableArea* area = nullptr;
  /// Obstacle view (read-only during routing) for restore validation and
  /// the per-net oracle: tile-local subset with full-board fallback.
  const layout::ObstacleSelector* obstacles = nullptr;
  layout::Trace trace;    ///< single-ended members
  layout::DiffPair pair;  ///< differential members
  /// Rollback snapshots, filled by write-back *moving* the layout's
  /// original paths out as the extended ones move in (no copy on the
  /// success path). The pipeline writes members back as each one finishes,
  /// so a chain that throws later must be able to restore the layout.
  geom::Polyline orig_primary;
  geom::Polyline orig_secondary;  ///< negative sub-trace of a pair
  bool written = false;           ///< write-back ran; rollback must undo it
  /// Width-adjusted rules this member's traces are checked against.
  drc::DesignRules net_rules;
  /// First clearance-index slot (a pair owns slot0 and slot0 + 1).
  std::uint32_t slot0 = 0;
};

void route_single_ended(const drc::DesignRules& rules, const RouterOptions& opts,
                        MemberWork& w, MemberReport& mr) {
  mr.name = w.trace.name;
  mr.initial_length = w.trace.length();
  if (opts.engine == Engine::AidtStyle) {
    baseline::AidtStyleTuner tuner(rules, *w.area);
    const baseline::AidtStats stats = tuner.tune(w.trace, w.target);
    mr.final_length = stats.final_length;
    mr.reached = stats.reached;
  } else {
    core::TraceExtender ext(rules, *w.area);
    const core::ExtendStats stats = ext.extend(w.trace, w.target, opts.extender);
    mr.final_length = stats.final_length;
    mr.reached = stats.reached;
    mr.patterns = stats.patterns_inserted;
  }
}

void route_pair(const drc::DesignRules& rules, const RouterOptions& opts,
                MemberWork& w, MemberReport& mr) {
  layout::DiffPair& pair = w.pair;
  mr.name = pair.name;
  mr.initial_length =
      std::max(pair.positive.path.length(), pair.negative.path.length());

  if (opts.engine == Engine::AidtStyle) {
    // The "common way" of §V-A: naive DTW median (no filtering) tuned as one
    // wide trace under the virtual rules, restored without skew
    // compensation.
    const auto& pp = pair.positive.path.points();
    const auto& nn = pair.negative.path.points();
    const dtw::DtwResult match = dtw::dtw_match(pp, nn);
    dtw::MedianTrace mt = dtw::build_median_trace(pp, nn, match.pairs);
    layout::Trace median;
    median.path = std::move(mt.median);
    median.width = 2.0 * pair.positive.width + pair.pitch;
    const drc::DesignRules vr = drc::virtual_pair_rules(rules, pair.pitch);
    baseline::AidtStyleTuner tuner(vr, *w.area);
    const baseline::AidtStats stats = tuner.tune(median, w.target);
    layout::DiffPair restored =
        dtw::restore_pair(median, pair.pitch, pair.positive.width);
    pair.positive.path = std::move(restored.positive.path);
    pair.negative.path = std::move(restored.negative.path);
    mr.reached = stats.reached;
  } else {
    // Merge -> extend median under virtual rules with the restore-margin
    // constraint -> piecewise restore at per-node DRA pitches -> compensate.
    drc::DesignRules sub_rules = rules;
    sub_rules.trace_width = pair.positive.width;
    dtw::MergedPair merged = dtw::merge_pair(
        pair, sub_rules,
        opts.pair_rule_set.empty() ? std::vector<double>{pair.pitch} : opts.pair_rule_set);
    // Snapshot the pre-extension median: it is the DRA attribution reference
    // for both the extender's margin probe and the post-extension transfer.
    const geom::Polyline reference = merged.median.path;
    const std::vector<double> reference_pitch = merged.node_pitch;
    // The median is shorter than the sub-traces by half the pair spread at
    // corners; target the median so the *sub-traces* reach the group target
    // (sub length ≈ median length + skipped detours).
    const double median_target =
        w.target - std::max(merged.skipped_p_length, merged.skipped_n_length);
    core::TraceExtender ext(merged.virtual_rules, *w.area);
    core::ExtenderConfig ecfg = opts.extender;
    // Rule-aware extension: the virtual rules cover a restore at the base
    // pitch exactly; wherever a wider DRA rule applies, patterns must keep
    // the extra clearance the ±rule/2 restore offsets will consume. A
    // single-DRA pair probes to the zero margin everywhere, so skip the
    // per-segment probes (an O(|median|) scan each) entirely.
    const double widest =
        reference_pitch.empty()
            ? merged.base_pitch
            : *std::max_element(reference_pitch.begin(), reference_pitch.end());
    if (widest > merged.base_pitch) {
      // The extender probes the same segments over and over (once per other
      // segment of the trace on every queue pop) and the reference median
      // is immutable for the whole extension — memoize by endpoints so each
      // distinct segment pays the O(|reference|) attribution scan once.
      using MarginKey = std::array<double, 4>;
      const auto cache = std::make_shared<std::map<MarginKey, drc::RestoreMargin>>();
      ecfg.restore_margin = [&, cache](const geom::Segment& s) {
        const MarginKey key{s.a.x, s.a.y, s.b.x, s.b.y};
        const auto it = cache->find(key);
        if (it != cache->end()) return it->second;
        const drc::RestoreMargin m = drc::restore_margin(
            sub_rules, merged.base_pitch,
            dtw::local_restore_pitch(reference, reference_pitch, s));
        return cache->emplace(key, m).first->second;
      };
    }
    const core::ExtendStats stats = ext.extend(
        merged.median, std::max(median_target, merged.median.length()), ecfg);
    const std::vector<double> node_pitch =
        dtw::transfer_node_pitch(reference, reference_pitch, merged.median.path);
    dtw::RestoreSpec rspec;
    rspec.pitch = pair.pitch;
    rspec.sub_width = pair.positive.width;
    rspec.node_pitch = node_pitch;
    rspec.breakout_p = merged.breakout_p;
    rspec.breakout_n = merged.breakout_n;
    layout::DiffPair restored = dtw::restore_pair(merged.median, rspec);
    // Restoration keeps the median's base nodes where meander legs cross the
    // pair axis; after the +/- pitch/2 offset those collinear splits can
    // leave sub-d_protect half-segments that the oracle would flag as stubs.
    // They carry no geometry, so drop them — before skew compensation, whose
    // host-segment search needs the un-fragmented straight runs.
    restored.positive.path.simplify(1e-9);
    restored.negative.path.simplify(1e-9);
    dtw::compensate_skew(restored, sub_rules, w.area, w.obstacles);
    pair.positive.path = std::move(restored.positive.path);
    pair.negative.path = std::move(restored.negative.path);
    mr.reached = stats.reached;
    mr.patterns = stats.patterns_inserted;
  }
  mr.final_length =
      std::min(pair.positive.path.length(), pair.negative.path.length());
}

MemberReport route_member(const drc::DesignRules& rules, const RouterOptions& opts,
                          MemberWork& w) {
  MemberReport mr;
  mr.id = w.member.id;
  mr.kind = w.member.kind;
  mr.target = w.target;
  const auto t0 = core::now();
  if (w.member.kind == layout::MemberKind::SingleEnded) {
    route_single_ended(rules, opts, w, mr);
  } else {
    route_pair(rules, opts, w, mr);
  }
  mr.runtime_s = seconds_since(t0);
  return mr;
}

void append(std::vector<layout::Violation>& out, std::vector<layout::Violation> v) {
  out.insert(out.end(), std::make_move_iterator(v.begin()),
             std::make_move_iterator(v.end()));
}

/// Rollback bookkeeping for the board-level strong guarantee. run() only
/// restores its OWN group on failure; in the multi-group drivers below,
/// sibling groups that finished before the failing one keep their freshly
/// extended geometry (every claimer drains before an exception propagates).
/// A retrying caller would then re-extend already-extended traces and land
/// on different geometry than a fresh route of the same board — so the
/// drivers snapshot every member they may touch and restore them all on
/// the way out.
struct SavedPath {
  layout::TraceId id = 0;
  layout::MemberKind kind = layout::MemberKind::SingleEnded;
  geom::Polyline primary;
  geom::Polyline secondary;
};

void save_path(const layout::Layout& layout, layout::TraceId id,
               layout::MemberKind kind, std::set<layout::TraceId>& seen,
               std::vector<SavedPath>& out) {
  if (!seen.insert(id).second) return;
  SavedPath s;
  s.id = id;
  s.kind = kind;
  if (kind == layout::MemberKind::SingleEnded) {
    s.primary = layout.trace(id).path;
  } else {
    const layout::DiffPair& pair = layout.pair(id);
    s.primary = pair.positive.path;
    s.secondary = pair.negative.path;
  }
  out.push_back(std::move(s));
}

void restore_paths(layout::Layout& layout, std::vector<SavedPath>& saved) {
  for (SavedPath& s : saved) {
    if (s.kind == layout::MemberKind::SingleEnded) {
      layout.trace(s.id).path = std::move(s.primary);
    } else {
      layout::DiffPair& pair = layout.pair(s.id);
      pair.positive.path = std::move(s.primary);
      pair.negative.path = std::move(s.secondary);
    }
  }
}

/// Everything one group's route reads or writes, geometrically: member
/// routable-area bboxes plus the members' current (pre-route) paths. The
/// planner assigns a group to a tile only when this box fits wholly inside
/// it; routed geometry normally stays inside the member areas, and when it
/// escapes anyway the ObstacleSelector guard falls back to the full board,
/// so tile assignment is a performance decision, never a correctness one.
geom::Box group_reach(const layout::Layout& layout, const layout::MatchGroup& group) {
  geom::Box reach;
  for (const layout::GroupMember& m : group.members) {
    if (const layout::RoutableArea* area = layout.routable_area(m.id)) {
      reach.expand(area->bbox());
    }
    if (m.kind == layout::MemberKind::SingleEnded) {
      reach.expand(layout.trace(m.id).path.bbox());
    } else {
      const layout::DiffPair& pair = layout.pair(m.id);
      reach.expand(pair.positive.path.bbox());
      reach.expand(pair.negative.path.bbox());
    }
  }
  return reach;
}

}  // namespace

bool RouteResult::matched() const {
  return std::all_of(group.members.begin(), group.members.end(),
                     [](const MemberReport& m) { return m.reached; });
}

bool RouteResult::drc_clean() const { return violation_count() == 0; }

std::size_t RouteResult::violation_count() const {
  std::size_t n = cross_violations.size();
  for (const NetResult& net : nets) n += net.violations.size();
  return n;
}

Router::Router(drc::DesignRules rules, RouterOptions options)
    : rules_(rules), options_(std::move(options)), pool_handle_(options_.threads) {
  rules_.validate();
}

RouteResult Router::route(layout::Layout& layout, std::size_t group_index) const {
  return run(layout, group_index, 1);
}

RouteResult Router::route_batch(layout::Layout& layout, std::size_t group_index) const {
  return run(layout, group_index, exec::resolve_threads(options_.threads));
}

std::vector<RouteResult> Router::route_all(layout::Layout& layout) const {
  const std::size_t n_groups = layout.groups().size();
  const std::size_t threads = exec::resolve_threads(options_.threads);
  std::vector<RouteResult> results(n_groups);
  // Board-level rollback snapshot. Unconditional — not gated on an armed
  // fault plan / cancel / deadline — because extension can throw with
  // nothing armed (no routable area, a meander target below the current
  // length, pair-restore misalignment): run() restores only the group that
  // threw, and the strong guarantee callers rely on (Session retry and the
  // service's drop-bad-edit recovery) covers earlier groups' write-backs
  // too. Seed paths are short pre-extension geometry, so the copy is tiny
  // next to routing itself; bench_micro_fault tracks the disarmed overhead.
  std::set<layout::TraceId> seen;
  std::vector<SavedPath> saved;
  std::size_t n_members = 0;
  for (std::size_t g = 0; g < n_groups; ++g) n_members += layout.groups()[g].members.size();
  saved.reserve(n_members);
  for (std::size_t g = 0; g < n_groups; ++g) {
    for (const layout::GroupMember& m : layout.groups()[g].members) {
      save_path(layout, m.id, m.kind, seen, saved);
    }
  }
  try {
    std::vector<std::size_t> todo(n_groups);
    for (std::size_t g = 0; g < n_groups; ++g) todo[g] = g;
    route_groups(layout, todo, results, threads);
  } catch (...) {
    restore_paths(layout, saved);
    throw;
  }
  return results;
}

Router::TilePlan Router::plan_tiles(const layout::Layout& layout,
                                    const std::vector<std::size_t>& todo) const {
  TilePlan plan;
  const std::size_t n = todo.size();
  if (options_.tiles == 1 || n < 2) return plan;  // tiling off / trivial
  const std::size_t target =
      options_.tiles != 0 ? options_.tiles
                          : std::clamp<std::size_t>(n / 4, std::size_t{1}, std::size_t{64});
  if (target < 2) return plan;

  std::vector<geom::Box> reach(n);
  geom::Box board;
  for (std::size_t k = 0; k < n; ++k) {
    reach[k] = group_reach(layout, layout.groups()[todo[k]]);
    board.expand(reach[k]);
  }
  if (board.empty()) return plan;

  // Split along the long axis first so tiles stay roughly square — square
  // tiles minimize boundary length, i.e. the number of straddling groups.
  std::size_t tx = 1;
  std::size_t ty = 1;
  while (tx * ty < target) {
    if (board.width() / static_cast<double>(tx) >=
        board.height() / static_cast<double>(ty)) {
      ++tx;
    } else {
      ++ty;
    }
  }
  plan.tiles_x = tx;
  plan.tiles_y = ty;
  const double radius = interaction_radius(layout);
  const double step_x = board.width() / static_cast<double>(tx);
  const double step_y = board.height() / static_cast<double>(ty);
  plan.tiles.resize(tx * ty);
  for (std::size_t j = 0; j < ty; ++j) {
    for (std::size_t i = 0; i < tx; ++i) {
      TilePlan::Tile& tile = plan.tiles[j * tx + i];
      tile.box = geom::Box{{board.lo.x + step_x * static_cast<double>(i),
                            board.lo.y + step_y * static_cast<double>(j)},
                           {board.lo.x + step_x * static_cast<double>(i + 1),
                            board.lo.y + step_y * static_cast<double>(j + 1)}};
      tile.coverage = tile.box.inflated(radius);
    }
  }

  const auto cell_of = [](double v, double lo, double step, std::size_t count) {
    if (step <= 0.0) return std::size_t{0};
    const double f = std::floor((v - lo) / step);
    if (f <= 0.0) return std::size_t{0};
    return std::min(static_cast<std::size_t>(f), count - 1);
  };
  for (std::size_t k = 0; k < n; ++k) {
    if (reach[k].empty()) {  // nothing known about it: route with full view
      plan.straddlers.push_back(todo[k]);
      continue;
    }
    const std::size_t cx0 = cell_of(reach[k].lo.x, board.lo.x, step_x, tx);
    const std::size_t cx1 = cell_of(reach[k].hi.x, board.lo.x, step_x, tx);
    const std::size_t cy0 = cell_of(reach[k].lo.y, board.lo.y, step_y, ty);
    const std::size_t cy1 = cell_of(reach[k].hi.y, board.lo.y, step_y, ty);
    if (cx0 == cx1 && cy0 == cy1) {
      plan.tiles[cy0 * tx + cx0].groups.push_back(todo[k]);
    } else {
      plan.straddlers.push_back(todo[k]);
    }
  }

  for (TilePlan::Tile& tile : plan.tiles) {
    if (tile.groups.empty()) continue;
    for (const layout::Obstacle& o : layout.obstacles()) {
      if (o.shape.bbox().intersects(tile.coverage)) ++tile.obstacles;
    }
  }
  return plan;
}

Router::TilePlan Router::tile_plan(const layout::Layout& layout) const {
  std::vector<std::size_t> todo(layout.groups().size());
  for (std::size_t g = 0; g < todo.size(); ++g) todo[g] = g;
  return plan_tiles(layout, todo);
}

void Router::route_groups(layout::Layout& layout, const std::vector<std::size_t>& todo,
                          std::vector<RouteResult>& results, std::size_t threads) const {
  const std::vector<layout::Obstacle>& obs = layout.obstacles();
  std::vector<layout::ObstacleRef> full;
  full.reserve(obs.size());
  for (std::size_t oi = 0; oi < obs.size(); ++oi) {
    full.push_back({&obs[oi], static_cast<std::uint32_t>(oi)});
  }
  const std::span<const layout::ObstacleRef> full_span(full);
  const layout::ObstacleSelector full_sel{full_span, full_span, geom::Box{}};

  const TilePlan plan = plan_tiles(layout, todo);
  if (plan.tiles_x * plan.tiles_y <= 1) {
    // Untiled: the pre-sharding driver, with the whole-board view.
    if (threads <= 1 || todo.size() <= 1) {
      for (const std::size_t g : todo) results[g] = run(layout, g, threads, &full_sel);
    } else {
      // One task per group; the nested member fan-out inside run() lands on
      // the same pool (workers push to their own deques, idle workers
      // steal), so a board of many small groups fills every worker instead
      // of running its groups back to back.
      exec::parallel_for_dynamic(pool(), todo.size(), threads, [&](std::size_t k) {
        results[todo[k]] = run(layout, todo[k], threads, &full_sel);
      });
    }
    return;
  }

  // Tile-local obstacle subsets, in ascending original index so filtered
  // obstacle violations carry identical indices/order to the full list.
  struct Shard {
    const TilePlan::Tile* tile = nullptr;
    std::vector<layout::ObstacleRef> refs;
    layout::ObstacleSelector sel;
  };
  std::vector<Shard> shards;
  for (const TilePlan::Tile& tile : plan.tiles) {
    if (tile.groups.empty()) continue;
    Shard sh;
    sh.tile = &tile;
    sh.refs.reserve(tile.obstacles);
    for (const layout::ObstacleRef& ref : full) {
      if (ref.obstacle->shape.bbox().intersects(tile.coverage)) sh.refs.push_back(ref);
    }
    shards.push_back(std::move(sh));
  }
  // Selectors wired after the shard vector is final (spans into refs).
  for (Shard& sh : shards) sh.sel = {sh.refs, full_span, sh.tile->coverage};

  // Phase A: tiles are independent fan-outs; groups within one tile nest
  // on the same pool (workers steal across tiles, so an uneven partition
  // still fills every worker). Results are index-addressed, so this
  // schedule cannot change output vs the serial loop.
  if (threads <= 1) {
    for (const Shard& sh : shards) {
      for (const std::size_t g : sh.tile->groups) results[g] = run(layout, g, 1, &sh.sel);
    }
  } else {
    exec::parallel_for_dynamic(pool(), shards.size(), threads, [&](std::size_t si) {
      const Shard& sh = shards[si];
      const std::vector<std::size_t>& groups = sh.tile->groups;
      if (groups.size() <= 1) {
        for (const std::size_t g : groups) results[g] = run(layout, g, threads, &sh.sel);
        return;
      }
      exec::parallel_for_dynamic(pool(), groups.size(), threads, [&](std::size_t k) {
        results[groups[k]] = run(layout, groups[k], threads, &sh.sel);
      });
    });
  }

  // Phase B: the cross-tile stitch — groups whose reach spans tiles see the
  // whole board, exactly like the untiled driver.
  if (threads <= 1 || plan.straddlers.size() <= 1) {
    for (const std::size_t g : plan.straddlers) {
      results[g] = run(layout, g, threads, &full_sel);
    }
  } else {
    exec::parallel_for_dynamic(pool(), plan.straddlers.size(), threads,
                               [&](std::size_t k) {
                                 results[plan.straddlers[k]] =
                                     run(layout, plan.straddlers[k], threads, &full_sel);
                               });
  }
}

exec::TaskPool& Router::pool() const {
  if (options_.pool != nullptr) return *options_.pool;
  exec::TaskPool* pool = pool_handle_.acquire();
  // acquire() is null only for the serial configuration (threads == 1),
  // which never reaches the fan-out paths; for a direct accessor call the
  // shared singleton is the only sensible executor to hand out.
  return pool != nullptr ? *pool : exec::TaskPool::shared();
}

RouteResult Router::run(layout::Layout& layout, std::size_t group_index,
                        std::size_t threads,
                        const layout::ObstacleSelector* obstacles) const {
  if (group_index >= layout.groups().size()) {
    throw std::out_of_range("Router: bad group index");
  }
  // Board edits are rejected while any route is in flight: the stages below
  // read obstacles, areas and group structure from the live layout, so an
  // interleaved mutation would race. Trace-geometry write-backs are not
  // gated — they are the route's own output channel.
  const layout::Layout::RoutingFreeze freeze = layout.freeze_for_routing();
  // Callers without a tile plan (route / route_batch) see the whole board.
  std::vector<layout::ObstacleRef> own_refs;
  layout::ObstacleSelector own_sel;
  if (obstacles == nullptr) {
    const std::vector<layout::Obstacle>& obs = layout.obstacles();
    own_refs.reserve(obs.size());
    for (std::size_t oi = 0; oi < obs.size(); ++oi) {
      own_refs.push_back({&obs[oi], static_cast<std::uint32_t>(oi)});
    }
    own_sel = {own_refs, own_refs, geom::Box{}};
    obstacles = &own_sel;
  }
  const layout::MatchGroup& group = layout.groups()[group_index];
  const auto t_run = core::now();
  const bool drc = options_.run_drc;

  // Fault plane + cancellation. The deadline budget is per run() call (one
  // group's route); the derived token still honours an external cancel.
  // Both are disarmed by default, in which case the only cost below is a
  // null test per site/poll — the token is threaded into the extender
  // config via a patched options copy made once per run, never per member.
  fault::FaultPlan* const plan = options_.fault_plan.get();
  fault::CancelToken token = options_.cancel;
  if (options_.deadline_s > 0.0) token = token.with_deadline(options_.deadline_s);
  const RouterOptions* opts = &options_;
  std::optional<RouterOptions> patched;
  if (token.armed()) {
    patched = options_;
    patched->extender.cancel = token;
    opts = &*patched;
  }

  // Stage 0 (serial): validate and snapshot every member before any stage
  // runs, declare every clearance-index slot (member order fixes the
  // deterministic violation order), and keep a rollback copy of each
  // original path — the pipeline writes geometry back as members finish, so
  // a later failure must be able to undo earlier write-backs.
  std::vector<MemberWork> work;
  work.reserve(group.members.size());
  layout::ClearanceIndex index(rules_, options_.drc, options_.clearance_backend);
  for (std::size_t m = 0; m < group.members.size(); ++m) {
    MemberWork w;
    w.member = group.members[m];
    w.target = group.target_for(m);
    w.area = layout.routable_area(w.member.id);
    if (w.area == nullptr) {
      throw std::invalid_argument("Router: member has no routable area");
    }
    w.obstacles = obstacles;
    w.net_rules = rules_;
    if (w.member.kind == layout::MemberKind::SingleEnded) {
      w.trace = layout.trace(w.member.id);
      w.slot0 = index.add_slot(w.trace.width, static_cast<std::uint32_t>(m));
    } else {
      w.pair = layout.pair(w.member.id);
      w.net_rules.trace_width = w.pair.positive.width;
      w.slot0 = index.add_slot(w.pair.positive.width, static_cast<std::uint32_t>(m));
      index.add_slot(w.pair.negative.width, static_cast<std::uint32_t>(m));
    }
    work.push_back(std::move(w));
  }
  const std::size_t n = work.size();

  // Per-member result slots, all index-addressed so the outcome — including
  // violation order — is independent of how chains interleave.
  const layout::DrcChecker checker(options_.drc);
  std::vector<MemberReport> reports(n);
  std::vector<std::vector<layout::Violation>> net_violations(n);
  std::vector<double> drc_stage_s(n, 0.0);
  std::vector<double> extend_done_s(n, 0.0);

  // The three stages of one member's chain. Extension runs on the private
  // snapshot; write-back moves the finished geometry into the layout
  // (members own distinct map entries, so concurrent write-backs are
  // race-free); per-net DRC then reads that member's own layout geometry
  // and lands its sampled segments in the incremental clearance index.
  const auto extend_stage = [&](std::size_t i) {
    token.check();
    if (plan != nullptr) {
      plan->at_site(fault::extend_site(options_.fault_scope, group_index, i));
    }
    reports[i] = route_member(rules_, *opts, work[i]);
    extend_done_s[i] = seconds_since(t_run);
  };
  const auto writeback_stage = [&](std::size_t i) {
    MemberWork& w = work[i];
    // Move the layout's original path out (the rollback snapshot — free on
    // the success path) as the extended one moves in.
    if (w.member.kind == layout::MemberKind::SingleEnded) {
      geom::Polyline& live = layout.trace(w.member.id).path;
      w.orig_primary = std::move(live);
      live = std::move(w.trace.path);
    } else {
      layout::DiffPair& pair = layout.pair(w.member.id);
      w.orig_primary = std::move(pair.positive.path);
      w.orig_secondary = std::move(pair.negative.path);
      pair.positive.path = std::move(w.pair.positive.path);
      pair.negative.path = std::move(w.pair.negative.path);
    }
    w.written = true;
  };
  const auto drc_stage = [&](std::size_t i) {
    if (!drc) return;
    token.check();
    const auto t0 = core::now();
    const MemberWork& w = work[i];
    std::vector<layout::Violation>& out = net_violations[i];
    const auto check_one = [&](const layout::Trace& t, std::uint32_t slot) {
      append(out, checker.check_trace(t, w.net_rules));
      // Everything obstacle clearance can reach from this path; outside the
      // tile's coverage the selector falls back to the full board list, so
      // the verdict bytes never depend on tiling.
      const geom::Box need = t.path.bbox().inflated(
          w.net_rules.effective_obs() + options_.drc.tolerance + 1e-9);
      append(out, checker.check_obstacles(t, w.net_rules, w.obstacles->select(need)));
      append(out, checker.check_containment(t, *w.area));
      index.insert(slot, t);
    };
    if (w.member.kind == layout::MemberKind::SingleEnded) {
      check_one(layout.trace(w.member.id), w.slot0);
    } else {
      const layout::DiffPair& pair = layout.pair(w.member.id);
      check_one(pair.positive, w.slot0);
      check_one(pair.negative, w.slot0 + 1);
    }
    drc_stage_s[i] = seconds_since(t0);
  };

  const std::size_t width =
      std::min(std::max<std::size_t>(threads, 1), std::max<std::size_t>(n, 1));
  const bool overlapped = options_.drc_schedule == DrcSchedule::Overlapped;
  try {
    if (width <= 1 || n <= 1) {
      // Serial: chains inline in member order (or phase-by-phase for the
      // barrier comparator). Stages of different members are independent,
      // so both orders produce identical results; only timings move.
      if (overlapped) {
        for (std::size_t i = 0; i < n; ++i) {
          extend_stage(i);
          writeback_stage(i);
          drc_stage(i);
        }
      } else {
        for (std::size_t i = 0; i < n; ++i) extend_stage(i);
        for (std::size_t i = 0; i < n; ++i) writeback_stage(i);
        for (std::size_t i = 0; i < n; ++i) drc_stage(i);
      }
    } else if (!overlapped) {
      // Legacy two-phase flow: every member extends before the first oracle
      // check runs; the whole DRC cost is tail latency after the join.
      exec::parallel_for_dynamic(pool(), n, width, extend_stage);
      for (std::size_t i = 0; i < n; ++i) writeback_stage(i);
      for (std::size_t i = 0; i < n; ++i) drc_stage(i);
    } else {
      // The staged graph: at most `width` member chains in flight, so the
      // claimer cap of the two-phase fan-out carries over. Each chain's
      // last stage claims and launches the next unrouted member; a chain
      // that throws is short-circuited by run_chain, so the failed member
      // never queues its DRC stage.
      exec::TaskGroup task_group(pool());
      std::atomic<std::size_t> next{width};
      std::function<void(std::size_t)> launch = [&](std::size_t i) {
        task_group.run_chain({[&, i] { extend_stage(i); },
                              [&, i] { writeback_stage(i); },
                              [&, i] {
                                drc_stage(i);
                                const std::size_t j =
                                    next.fetch_add(1, std::memory_order_relaxed);
                                if (j < n) launch(j);
                              }});
      };
      for (std::size_t c = 0; c < width; ++c) launch(c);
      task_group.wait();
    }
    // Sweep-site fault + final deadline check live INSIDE the try: the
    // cross-member sweep below runs after the rollback block, so a fault
    // meant to model "group failed during final DRC" must still unwind
    // through the geometry restore to keep the strong guarantee.
    token.check();
    if (plan != nullptr) {
      plan->at_site(fault::sweep_site(options_.fault_scope, group_index));
    }
  } catch (...) {
    // A failed chain aborts the whole group, but sibling chains may already
    // have written back (and the group drains fully before the rethrow, so
    // nothing is still running). Restore the original geometry of every
    // written-back member: the caller keeps the strong guarantee the
    // two-phase code had — a throw leaves the layout untouched.
    for (MemberWork& w : work) {
      if (!w.written) continue;
      if (w.member.kind == layout::MemberKind::SingleEnded) {
        layout.trace(w.member.id).path = std::move(w.orig_primary);
      } else {
        layout::DiffPair& pair = layout.pair(w.member.id);
        pair.positive.path = std::move(w.orig_primary);
        pair.negative.path = std::move(w.orig_secondary);
      }
    }
    throw;
  }

  RouteResult result;
  result.group.group_name = group.name;
  result.group.target = group.target_length;
  result.group.members = std::move(reports);
  // Everything this route read or produced, geometrically: member areas
  // plus pre-route (now in the rollback snapshots) and post-route paths.
  // reroute()'s delta → dirty-group proof tests edits against this box.
  for (const MemberWork& w : work) {
    result.domain_bbox.expand(w.area->bbox());
    result.domain_bbox.expand(w.orig_primary.bbox());
    result.domain_bbox.expand(w.orig_secondary.bbox());
    if (w.member.kind == layout::MemberKind::SingleEnded) {
      result.domain_bbox.expand(layout.trace(w.member.id).path.bbox());
    } else {
      const layout::DiffPair& pair = layout.pair(w.member.id);
      result.domain_bbox.expand(pair.positive.path.bbox());
      result.domain_bbox.expand(pair.negative.path.bbox());
    }
  }
  // Matching-phase wall time — when the last member finished extending (the
  // pre-pipeline meaning of this field; overlapped per-net checks are
  // reported separately below).
  for (std::size_t i = 0; i < n; ++i) {
    result.group.runtime_s = std::max(result.group.runtime_s, extend_done_s[i]);
    result.extend_runtime_s += result.group.members[i].runtime_s;
  }

  // Eq. 19 over final and initial lengths, on error magnitudes (overshoot
  // counts like undershoot — same convention as workload::matching_errors;
  // not shared code because members may carry individual targets here).
  const auto errors = [&](bool initial) {
    double max_e = 0.0, sum_e = 0.0;
    for (const MemberReport& mr : result.group.members) {
      const double len = initial ? mr.initial_length : mr.final_length;
      const double e = mr.target > 0.0 ? std::abs(mr.target - len) / mr.target : 0.0;
      max_e = std::max(max_e, e);
      sum_e += e;
    }
    const auto n = static_cast<double>(result.group.members.size());
    return std::pair{100.0 * max_e,
                     result.group.members.empty() ? 0.0 : 100.0 * sum_e / n};
  };
  std::tie(result.group.initial_max_error_pct, result.group.initial_avg_error_pct) =
      errors(true);
  std::tie(result.group.max_error_pct, result.group.avg_error_pct) = errors(false);

  // Collect the per-net verdicts the chains produced, then run the only
  // remaining barrier: the cross-member clearance query pass over the
  // incrementally-built index.
  if (drc) {
    for (std::size_t i = 0; i < n; ++i) {
      result.nets.push_back({result.group.members[i], std::move(net_violations[i])});
      result.drc_overlap_runtime_s += drc_stage_s[i];
    }
    const auto t_barrier = core::now();
    result.cross_violations = index.sweep();
    result.drc_barrier_runtime_s = seconds_since(t_barrier);
    result.drc_runtime_s = result.drc_overlap_runtime_s + result.drc_barrier_runtime_s;
  } else {
    for (const MemberReport& mr : result.group.members) {
      result.nets.push_back({mr, {}});
    }
  }

  result.runtime_s = seconds_since(t_run);
  return result;
}

BoardRoute Router::route_board(layout::Layout& layout) const {
  BoardRoute board;
  for (std::size_t g = 0; g < layout.groups().size(); ++g) {
    board.rerouted_groups.push_back(g);
    for (const layout::GroupMember& m : layout.groups()[g].members) {
      MemberSeed seed;
      seed.kind = m.kind;
      if (m.kind == layout::MemberKind::SingleEnded) {
        seed.primary = layout.trace(m.id).path;
      } else {
        const layout::DiffPair& pair = layout.pair(m.id);
        seed.primary = pair.positive.path;
        seed.secondary = pair.negative.path;
      }
      board.seeds.emplace(m.id, std::move(seed));
    }
  }
  board.results = route_all(layout);
  board.version = layout.version();
  return board;
}

double Router::interaction_radius(const layout::Layout& layout) const {
  // Worst-case interaction radius: anything farther than this from
  // everything a group's route read or produced cannot change its
  // extension (obstacles enter routing only through area holes and
  // proximity checks), its per-net oracle verdicts (gap / obstacle
  // clearances top out at effective_gap / effective_obs for the widest
  // trace) or its cross-member sweep. Used both by the reroute delta proof
  // and to size tile coverage.
  double w_max = rules_.trace_width;
  for (const auto& [id, t] : layout.traces()) {
    (void)id;
    w_max = std::max(w_max, t.width);
  }
  for (const auto& [id, p] : layout.pairs()) {
    (void)id;
    w_max = std::max({w_max, p.positive.width, p.negative.width});
  }
  return rules_.effective_gap() + rules_.effective_obs() + w_max +
         options_.drc.tolerance;
}

std::vector<std::size_t> Router::affected_groups(
    const layout::Layout& layout, const BoardRoute& prior,
    std::span<const layout::LayoutDelta> deltas) const {
  const std::size_t n_groups = layout.groups().size();
  std::vector<bool> hit(n_groups, false);
  // Groups the prior route has no result for (created by these edits) have
  // nothing to splice from — always route them.
  for (std::size_t g = prior.results.size(); g < n_groups; ++g) hit[g] = true;

  const double radius = interaction_radius(layout);
  const auto hit_near = [&](const geom::Box& dirty) {
    if (dirty.empty()) return;
    const geom::Box probe = dirty.inflated(radius);
    const std::size_t known = std::min(n_groups, prior.results.size());
    for (std::size_t g = 0; g < known; ++g) {
      if (probe.intersects(prior.results[g].domain_bbox)) hit[g] = true;
    }
  };

  for (const layout::LayoutDelta& d : deltas) {
    switch (d.kind) {
      case layout::DeltaKind::AddTrace:
      case layout::DeltaKind::AddPair:
        break;  // ungrouped geometry participates in no group's route
      case layout::DeltaKind::SetBoard:
        std::fill(hit.begin(), hit.end(), true);
        break;
      case layout::DeltaKind::AddGroup:
      case layout::DeltaKind::AddGroupMember:
      case layout::DeltaKind::RemoveGroupMember:
      case layout::DeltaKind::SetGroupTarget:
      case layout::DeltaKind::SetMemberTarget:
        if (d.group < n_groups) hit[d.group] = true;
        break;
      case layout::DeltaKind::SetRoutableArea: {
        // The area is an input only to its owning member's route, but be
        // doubly conservative: also test the touched geometry against every
        // cached domain.
        const std::size_t g = layout.group_of(d.trace);
        if (g != layout::kNoIndex && g < n_groups) hit[g] = true;
        hit_near(d.dirty);
        break;
      }
      case layout::DeltaKind::AddObstacle:
      case layout::DeltaKind::MoveObstacle:
      case layout::DeltaKind::RemoveObstacle:
        hit_near(d.dirty);
        break;
    }
  }

  std::vector<std::size_t> out;
  for (std::size_t g = 0; g < n_groups; ++g) {
    if (hit[g]) out.push_back(g);
  }
  return out;
}

BoardRoute Router::reroute(layout::Layout& layout, const BoardRoute& prior,
                           std::span<const layout::LayoutDelta> deltas) const {
  if (prior.version + deltas.size() != layout.version()) {
    throw std::invalid_argument(
        "Router::reroute: deltas do not connect the prior route's version to "
        "the layout's (stale prior or truncated edit list)");
  }
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    if (deltas[i].version != prior.version + i + 1) {
      throw std::invalid_argument("Router::reroute: deltas out of order");
    }
  }

  const std::size_t n_groups = layout.groups().size();
  BoardRoute next;
  next.version = layout.version();
  next.seeds = prior.seeds;
  next.results = prior.results;
  next.results.resize(n_groups);  // groups are only ever appended
  next.rerouted_groups = affected_groups(layout, prior, deltas);

  // Every member an affected group holds now — or held when `prior` routed
  // it (a member edited out must fall back to its pristine geometry, same
  // as a fresh route of the edited board would leave it) — restarts from
  // its pristine seed. Members the prior route never saw are snapshotted
  // here: un-routed geometry *is* pristine.
  const auto restore = [&](layout::TraceId id, layout::MemberKind kind) {
    auto it = next.seeds.find(id);
    if (it == next.seeds.end()) {
      MemberSeed seed;
      seed.kind = kind;
      if (kind == layout::MemberKind::SingleEnded) {
        seed.primary = layout.trace(id).path;
      } else {
        const layout::DiffPair& pair = layout.pair(id);
        seed.primary = pair.positive.path;
        seed.secondary = pair.negative.path;
      }
      next.seeds.emplace(id, std::move(seed));
      return;
    }
    if (it->second.kind == layout::MemberKind::SingleEnded) {
      layout.trace(id).path = it->second.primary;
    } else {
      layout::DiffPair& pair = layout.pair(id);
      pair.positive.path = it->second.primary;
      pair.negative.path = it->second.secondary;
    }
  };
  // Snapshot every member the seed-restore below or the group re-runs may
  // touch (the seed restore is itself a layout mutation): on failure the
  // caller gets its pre-call geometry back, not a half-restored mix.
  // Unconditional even with no fault source armed — a bad edit can make a
  // rerouted member throw from extension itself (see route_all) and the
  // seed restore has already mutated the layout by then. Cost is bounded
  // by the affected groups, i.e. the geometry being rerouted anyway.
  std::set<layout::TraceId> seen;
  std::vector<SavedPath> saved;
  std::size_t n_save = 0;
  for (const std::size_t g : next.rerouted_groups) {
    if (g < prior.results.size()) n_save += prior.results[g].group.members.size();
    n_save += layout.groups()[g].members.size();
  }
  saved.reserve(n_save);
  for (const std::size_t g : next.rerouted_groups) {
    if (g < prior.results.size()) {
      for (const MemberReport& m : prior.results[g].group.members) {
        save_path(layout, m.id, m.kind, seen, saved);
      }
    }
    for (const layout::GroupMember& m : layout.groups()[g].members) {
      save_path(layout, m.id, m.kind, seen, saved);
    }
  }

  try {
    for (const std::size_t g : next.rerouted_groups) {
      if (g < prior.results.size()) {
        for (const MemberReport& m : prior.results[g].group.members) {
          restore(m.id, m.kind);
        }
      }
      for (const layout::GroupMember& m : layout.groups()[g].members) {
        restore(m.id, m.kind);
      }
    }

    // Re-run only the affected groups, with route_all's executor and tiling
    // discipline; untouched groups keep their spliced prior results
    // verbatim.
    route_groups(layout, next.rerouted_groups, next.results,
                 exec::resolve_threads(options_.threads));
  } catch (...) {
    restore_paths(layout, saved);
    throw;
  }
  return next;
}

BoardRoute Router::reroute(layout::Layout& layout, const BoardRoute& prior) const {
  return reroute(layout, prior, layout.deltas_since(prior.version));
}

}  // namespace lmr::pipeline
