#pragma once
/// \file group_matcher.hpp
/// Whole-group length matching — the outer loop of Fig. 2.
///
/// For each member of a matching group:
///  * single-ended traces run straight through the DP extension engine in
///    their routable area;
///  * differential pairs are first merged into a median trace by MSDTW with
///    the virtual-DRC conversion, the median is extended, and the pair is
///    restored (offset ± pitch/2) with tiny-pattern skew compensation.
/// Results are written back into the layout and reported with the Eq. 19
/// error metrics per member.
///
/// This class is a thin compatibility shim over `pipeline::Router`, which
/// owns the flow (plus DRC sweep, baseline selection and threading) — new
/// code should use the Router facade directly. `MemberReport` / `GroupReport`
/// live in router.hpp and are re-exported here.

#include <cstddef>

#include "core/trace_extender.hpp"
#include "drc/rules.hpp"
#include "layout/layout.hpp"
#include "pipeline/router.hpp"

namespace lmr::pipeline {

/// Drives matching of the groups in a layout.
class GroupMatcher {
 public:
  /// The layout must carry a routable area for every group member (the
  /// region-assignment output, or generator-provided corridors).
  GroupMatcher(layout::Layout& layout, drc::DesignRules rules)
      : layout_(layout), rules_(rules) {
    rules_.validate();
  }

  /// Match group `group_index` of the layout. Throws std::out_of_range on a
  /// bad index and std::invalid_argument when a member lacks an area.
  GroupReport match_group(std::size_t group_index, const core::ExtenderConfig& cfg = {});

 private:
  layout::Layout& layout_;
  drc::DesignRules rules_;
};

}  // namespace lmr::pipeline
