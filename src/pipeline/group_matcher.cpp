#include "pipeline/group_matcher.hpp"

namespace lmr::pipeline {

GroupReport GroupMatcher::match_group(std::size_t group_index,
                                      const core::ExtenderConfig& cfg) {
  RouterOptions options;
  options.extender = cfg;
  options.run_drc = false;  // callers of the shim run their own oracle
  Router router(rules_, options);
  return router.route(layout_, group_index).group;
}

}  // namespace lmr::pipeline
