#include "pipeline/group_matcher.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "dtw/pair_restore.hpp"

namespace lmr::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

GroupReport GroupMatcher::match_group(std::size_t group_index,
                                      const core::ExtenderConfig& cfg) {
  if (group_index >= layout_.groups().size()) {
    throw std::out_of_range("GroupMatcher: bad group index");
  }
  const layout::MatchGroup& group = layout_.groups()[group_index];
  GroupReport report;
  report.group_name = group.name;
  report.target = group.target_length;

  const auto t_group = Clock::now();
  for (std::size_t m = 0; m < group.members.size(); ++m) {
    const layout::GroupMember& member = group.members[m];
    const double target = group.target_for(m);
    MemberReport mr;
    mr.id = member.id;
    mr.kind = member.kind;
    mr.target = target;
    const auto t0 = Clock::now();

    const layout::RoutableArea* area = layout_.routable_area(member.id);
    if (area == nullptr) {
      throw std::invalid_argument("GroupMatcher: member has no routable area");
    }

    if (member.kind == layout::MemberKind::SingleEnded) {
      layout::Trace& trace = layout_.trace(member.id);
      mr.name = trace.name;
      mr.initial_length = trace.length();
      core::TraceExtender ext(rules_, *area);
      const core::ExtendStats stats = ext.extend(trace, target, cfg);
      mr.final_length = stats.final_length;
      mr.reached = stats.reached;
      mr.patterns = stats.patterns_inserted;
    } else {
      layout::DiffPair& pair = layout_.pair(member.id);
      mr.name = pair.name;
      mr.initial_length =
          std::max(pair.positive.path.length(), pair.negative.path.length());

      // Merge -> extend median under virtual rules -> restore -> compensate.
      drc::DesignRules sub_rules = rules_;
      sub_rules.trace_width = pair.positive.width;
      dtw::MergedPair merged = dtw::merge_pair(pair, sub_rules, {pair.pitch});
      // The median is shorter than the sub-traces by half the pair spread at
      // corners; target the median so the *sub-traces* reach the group
      // target (sub length ≈ median length + skipped detours).
      const double median_target =
          target - std::max(merged.skipped_p_length, merged.skipped_n_length);
      core::TraceExtender ext(merged.virtual_rules, *area);
      const core::ExtendStats stats =
          ext.extend(merged.median, std::max(median_target, merged.median.length()), cfg);
      layout::DiffPair restored =
          dtw::restore_pair(merged.median, pair.pitch, pair.positive.width);
      dtw::compensate_skew(restored, sub_rules);
      restored.breakout_nodes = pair.breakout_nodes;
      pair.positive.path = restored.positive.path;
      pair.negative.path = restored.negative.path;

      mr.final_length =
          std::min(pair.positive.path.length(), pair.negative.path.length());
      mr.reached = stats.reached;
      mr.patterns = stats.patterns_inserted;
    }
    mr.runtime_s = seconds_since(t0);
    report.members.push_back(mr);
  }
  report.runtime_s = seconds_since(t_group);

  // Eq. 19 over final and initial lengths.
  const auto errors = [&](bool initial) {
    double max_e = 0.0, sum_e = 0.0;
    for (const MemberReport& mr : report.members) {
      const double len = initial ? mr.initial_length : mr.final_length;
      const double e = mr.target > 0.0 ? (mr.target - len) / mr.target : 0.0;
      max_e = std::max(max_e, e);
      sum_e += e;
    }
    return std::pair{100.0 * max_e,
                     report.members.empty()
                         ? 0.0
                         : 100.0 * sum_e / static_cast<double>(report.members.size())};
  };
  std::tie(report.initial_max_error_pct, report.initial_avg_error_pct) = errors(true);
  std::tie(report.max_error_pct, report.avg_error_pct) = errors(false);
  return report;
}

}  // namespace lmr::pipeline
