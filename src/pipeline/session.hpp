#pragma once
/// \file session.hpp
/// A long-lived routing session over one board: the seam a service layer
/// calls instead of the one-shot Router facade.
///
/// The session owns the layout, the last whole-board route (results +
/// pristine seeds) and a board-wide incremental clearance index. `route()`
/// matches the board once; every subsequent `apply(edit)` lowers the edit
/// through layout::apply_edit, asks Router::reroute to re-run only the
/// groups the recorded deltas can touch, splices the fresh results over the
/// kept ones, and re-indexes only the re-routed members' geometry in the
/// clearance index. The state after any edit sequence is bit-identical —
/// trace geometry and violation sets — to generating the edited board from
/// scratch and routing it fresh, which is exactly how the edit_storm bench
/// and tests oracle-check it.

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "layout/board_edit.hpp"
#include "layout/clearance_index.hpp"
#include "layout/layout.hpp"
#include "pipeline/router.hpp"

namespace lmr::pipeline {

/// How a (re-)route dispatched by the session runs. `Degraded` is the
/// serving tier's last retry rung before quarantine: a temporary Router
/// pinned to DrcSchedule::Barrier on one thread with no external pool — the
/// most conservative schedule available. Results are schedule- and
/// thread-invariant by construction, so a degraded reroute converges to the
/// same geometry/violations as a normal one; only latency differs.
enum class ApplyMode : std::uint8_t {
  Normal,    ///< the session's own Router (configured schedule/threads)
  Degraded,  ///< Barrier schedule, single thread, no shared pool
};

/// What one `apply()` did, for latency accounting and the
/// strictly-fewer-groups proof in the bench/tests.
struct ApplyOutcome {
  /// Primitive deltas the edit batch lowered to (journal order). Each delta
  /// carries its journal version, so `deltas` plus the fields below let a
  /// caller correlate every queued edit with the versions it produced
  /// without re-reading `Layout::deltas_since`.
  std::vector<layout::LayoutDelta> deltas;
  /// Per-edit attribution into `deltas`: edit k lowered to
  /// `deltas[edit_offsets[k] .. edit_offsets[k+1])`. Size is the number of
  /// edits applied plus one (the final entry is `deltas.size()`).
  std::vector<std::size_t> edit_offsets;
  /// Journal versions bracketing the batch: the deltas carry versions
  /// `(version_before, version_after]` and
  /// `version_after - version_before == deltas.size()`.
  std::uint64_t version_before = 0;
  std::uint64_t version_after = 0;
  /// Group indices Router::reroute actually re-ran.
  std::vector<std::size_t> rerouted_groups;
  /// Total groups on the board, for the re-routed-fraction readout.
  std::size_t groups_total = 0;
  /// Wall time of the reroute call (edit application excluded).
  double reroute_s = 0.0;
};

/// One board under interactive edits. Single-threaded facade: calls fan out
/// internally on the Router's executor but the session itself must not be
/// shared across threads without external synchronization.
class Session {
 public:
  /// Takes the board by value: the session owns its layout for life (trace
  /// references handed to the clearance index must stay stable).
  Session(drc::DesignRules rules, RouterOptions options, layout::Layout board);

  /// Thaw constructor: resume a session from a snapshot previously taken by
  /// `release()`. `prior` must be the route of exactly this `board` state
  /// (`prior.version == board.version()`, throws std::invalid_argument
  /// otherwise). The rebuilt session behaves identically to the one that
  /// was released: `route()` has effectively been called, so `apply` works
  /// immediately and `board_clearance` re-derives the incremental index
  /// from the routed geometry.
  Session(drc::DesignRules rules, RouterOptions options, layout::Layout board,
          BoardRoute prior);

  /// Initial full route of every group. Must be called once, before the
  /// first `apply`. Returns the whole-board route (also via `route_state`).
  const BoardRoute& route(ApplyMode mode = ApplyMode::Normal);

  /// Apply one user-level edit and incrementally re-route. Requires
  /// `route()` first (throws std::logic_error otherwise).
  ApplyOutcome apply(const layout::BoardEdit& edit);
  /// Apply a whole edit batch, then re-route once over the combined deltas
  /// — cheaper than per-edit apply when edits cluster on the same groups.
  ///
  /// Prefix contract under mid-batch failure. Edits lower strictly in
  /// order; the first edit that fails stops the batch, so the layout ends
  /// at the state after the applied prefix [0, k) — layout::apply_edit
  /// validates before mutating, so edit k itself leaves no partial deltas.
  /// Two failure phases are distinguishable through
  /// `last_partial_outcome()` (always populated on throw):
  ///  * lowering failure (bad edit, injected session:apply fault): the
  ///    session still reroutes over the prefix's deltas before rethrowing
  ///    the original exception — layout and route stay in sync
  ///    (`in_sync() == true`), and the recorded outcome has
  ///    `edit_offsets.size() == k + 1`, `deltas` exactly the prefix's
  ///    journal entries, and `version_after - version_before ==
  ///    deltas.size()`.
  ///  * reroute failure (injected extend/sweep fault, deadline timeout):
  ///    the prefix's deltas are in the journal but Router::reroute's
  ///    rollback restored the prior geometry, so `route_` is stale
  ///    (`in_sync() == false`). The session is NOT wedged: `resync()`
  ///    heals it by re-running reroute over `deltas_since(route version)`,
  ///    and a subsequent `apply` also self-heals the same way (reroute
  ///    always covers the full journal suffix).
  /// In both phases the recorded outcome's version bracket matches the
  /// applied prefix, which is what the serving tier uses to decide how
  /// many queued edits were consumed.
  ApplyOutcome apply(std::span<const layout::BoardEdit> edits,
                     ApplyMode mode = ApplyMode::Normal);

  /// Re-run the incremental reroute over every journal delta the current
  /// route has not seen (`layout.version() > route version` after a
  /// reroute-phase failure). No-op reroute when already in sync (affected
  /// set is empty). Returns the catch-up outcome; `edit_offsets` carries a
  /// single synthetic bracket since per-edit attribution lives in the
  /// `last_partial_outcome()` of the failed apply. Clears the partial
  /// record on success.
  ApplyOutcome resync(ApplyMode mode = ApplyMode::Normal);

  /// True when the last route/reroute committed every journal delta — the
  /// invariant every successful route()/apply()/resync() re-establishes.
  /// False only between a reroute-phase failure and the next resync.
  [[nodiscard]] bool in_sync() const {
    return routed_ && route_.version == layout_.version();
  }

  /// Outcome bracket of the most recent `apply` that threw (see the prefix
  /// contract above); reset by the next successful apply/resync. Empty if
  /// no apply has failed.
  [[nodiscard]] const std::optional<ApplyOutcome>& last_partial_outcome() const {
    return last_partial_;
  }

  /// Dismantle the session into its compact snapshot — the layout (with
  /// journal) and the last whole-board route — for idle-session eviction.
  /// Only valid when the session is routed and quiescent: proves no route
  /// is in flight by acquiring `layout().try_freeze()`, and throws
  /// std::logic_error otherwise. The session must not be used afterwards;
  /// thaw by constructing a new Session from the returned pair.
  [[nodiscard]] std::pair<layout::Layout, BoardRoute> release();

  /// Cross-member clearance violations over the whole board, from the
  /// session's incremental index: after an edit, only re-routed members
  /// were re-indexed, and back-to-back calls with no edit are served from
  /// the index's violation cache. Slots are keyed in first-seen member
  /// order (group order at `route()`, then order of appearance), so the
  /// violation order is stable for the session's lifetime.
  std::vector<layout::Violation> board_clearance();

  [[nodiscard]] const layout::Layout& layout() const { return layout_; }
  [[nodiscard]] const BoardRoute& route_state() const { return route_; }
  [[nodiscard]] const Router& router() const { return router_; }
  [[nodiscard]] std::uint64_t version() const { return layout_.version(); }

 private:
  /// (Re-)index `group`'s members in the board-wide clearance index, then
  /// drop members that no longer belong to any group.
  void reindex_groups(std::span<const std::size_t> groups);

  /// Reroute over the full journal suffix (`deltas_since(route version)`),
  /// fill the outcome's reroute fields, and re-index. Factored out so apply
  /// and resync share the commit path; throws propagate with route_ stale.
  void finish_reroute(ApplyOutcome& outcome, ApplyMode mode);

  /// The Degraded rung's executor: same rules and options but pinned to
  /// DrcSchedule::Barrier, one thread, no shared pool.
  [[nodiscard]] Router degraded_router() const;

  Router router_;
  layout::Layout layout_;
  BoardRoute route_;
  bool routed_ = false;
  std::optional<ApplyOutcome> last_partial_;

  /// Board-wide cross-member clearance state, maintained incrementally.
  layout::ClearanceIndex board_index_;
  struct MemberSlots {
    std::uint32_t slot0 = 0;
    std::uint32_t count = 0;  ///< 1 for single-ended, 2 for a pair
  };
  std::map<layout::TraceId, MemberSlots> member_slots_;
  std::uint32_t next_net_ = 0;  ///< one clearance net per member
};

/// Exact routed-board equivalence: same groups with the same members, every
/// member's final trace geometry bit-identical between the two layouts, and
/// identical per-group violation sets (per-net and cross-member, compared
/// field by field in order). This is the oracle behind the edit_storm bench
/// and tests: a session's incremental state after an edit script must be
/// `routes_equivalent` to a fresh route of the same edited board. On
/// mismatch returns false and, when `why` is non-null, stores a one-line
/// description of the first difference found.
[[nodiscard]] bool routes_equivalent(const layout::Layout& a, const BoardRoute& ra,
                                     const layout::Layout& b, const BoardRoute& rb,
                                     std::string* why = nullptr);

}  // namespace lmr::pipeline
