#include "geom/distance.hpp"

#include <algorithm>
#include <limits>

#include "geom/intersect.hpp"

namespace lmr::geom {

double dist_point_segment(const Point& p, const Segment& s) {
  return dist(p, closest_point(s, p));
}

double dist_segment_segment(const Segment& s1, const Segment& s2) {
  if (segments_intersect(s1, s2)) return 0.0;
  double d = dist_point_segment(s1.a, s2);
  d = std::min(d, dist_point_segment(s1.b, s2));
  d = std::min(d, dist_point_segment(s2.a, s1));
  d = std::min(d, dist_point_segment(s2.b, s1));
  return d;
}

double dist_segment_polygon(const Segment& s, const Polygon& poly) {
  if (poly.empty()) return std::numeric_limits<double>::infinity();
  if (poly.contains(s.a) || poly.contains(s.b)) return 0.0;
  double d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < poly.size(); ++i) {
    d = std::min(d, dist_segment_segment(s, poly.edge(i)));
    if (d == 0.0) return 0.0;
  }
  return d;
}

double dist_polyline_polyline(const Polyline& a, const Polyline& b) {
  double d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < a.segment_count(); ++i) {
    for (std::size_t j = 0; j < b.segment_count(); ++j) {
      d = std::min(d, dist_segment_segment(a.segment(i), b.segment(j)));
      if (d == 0.0) return 0.0;
    }
  }
  return d;
}

double dist_polyline_polygon(const Polyline& pl, const Polygon& poly) {
  double d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pl.segment_count(); ++i) {
    d = std::min(d, dist_segment_polygon(pl.segment(i), poly));
    if (d == 0.0) return 0.0;
  }
  return d;
}

}  // namespace lmr::geom
