#include "geom/offset.hpp"

#include <cmath>

#include "core/contract.hpp"
#include "geom/intersect.hpp"

namespace lmr::geom {

Polygon offset_convex(const Polygon& poly, double margin) {
  const std::size_t n = poly.size();
  LMR_REQUIRE(std::isfinite(margin), "offset margin must be a real length");
  if (n < 3 || margin <= 0.0) return poly;
  LMR_REQUIRE(poly.is_ccw(), "offset_convex expects a CCW loop");
  // Shift each edge outward (right-hand normal of a CCW loop points outward
  // ... actually outward of CCW is the *clockwise* perpendicular).
  std::vector<Segment> shifted;
  shifted.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Segment e = poly.edge(i);
    const Vec2 out_normal = -e.unit().perp();  // CW perpendicular = outward for CCW
    shifted.push_back({e.a + out_normal * margin, e.b + out_normal * margin});
  }
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Segment& prev = shifted[(i + n - 1) % n];
    const Segment& cur = shifted[i];
    // Intersect the infinite supporting lines of consecutive shifted edges.
    const Vec2 r = prev.direction();
    const Vec2 s = cur.direction();
    const double denom = cross(r, s);
    if (std::abs(denom) <= kEps) {
      // Collinear edges: the shared shifted vertex is exact.
      pts.push_back(cur.a);
      continue;
    }
    const double t = cross(cur.a - prev.a, s) / denom;
    pts.push_back(prev.a + r * t);
  }
  return Polygon{std::move(pts)};
}

Polygon inflate_polygon(const Polygon& poly, double margin) {
  LMR_REQUIRE(std::isfinite(margin), "inflate margin must be a real length");
  if (margin <= 0.0 || poly.size() < 3) return poly;
  Polygon p = poly;
  p.make_ccw();
  if (p.is_convex()) return offset_convex(p, margin);
  return Polygon::rect(p.bbox().inflated(margin));
}

Polyline offset_polyline(const Polyline& pl, double d) {
  // A NaN offset would poison every miter-join division below and surface
  // only much later as a DRC violation on a garbage trace.
  LMR_REQUIRE(std::isfinite(d), "offset distance must be a real length");
  if (pl.size() < 2 || d == 0.0) return pl;
  const std::size_t n = pl.segment_count();
  std::vector<Segment> shifted;
  shifted.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Segment s = pl.segment(i);
    if (s.degenerate()) continue;
    const Vec2 normal = s.unit().perp();  // left normal
    shifted.push_back({s.a + normal * d, s.b + normal * d});
  }
  if (shifted.empty()) return pl;
  std::vector<Point> out;
  out.reserve(shifted.size() + 1);
  out.push_back(shifted.front().a);
  for (std::size_t i = 0; i + 1 < shifted.size(); ++i) {
    const Segment& a = shifted[i];
    const Segment& b = shifted[i + 1];
    const Vec2 r = a.direction();
    const Vec2 s = b.direction();
    const double denom = cross(r, s);
    if (std::abs(denom) <= kEps) {
      out.push_back((a.b + b.a) * 0.5);  // parallel join
      continue;
    }
    const double t = cross(b.a - a.a, s) / denom;
    out.push_back(a.a + r * t);  // miter join
  }
  out.push_back(shifted.back().b);
  return Polyline{std::move(out)};
}

}  // namespace lmr::geom
