#pragma once
/// \file chamfer.hpp
/// Corner mitering (the paper's d_miter rule: "any rotation of a right angle
/// or an acute angle will be mitered by obtuse angles").

#include "geom/polyline.hpp"

namespace lmr::geom {

/// Replace every interior corner of `pl` whose turn angle is >= 90 degrees
/// (right or acute rotation) by a chamfer cutting `miter` of arc length off
/// each arm. Corners whose arms are shorter than `2*miter` are chamfered with
/// the largest feasible cut (half the shorter arm). Obtuse corners are kept.
[[nodiscard]] Polyline chamfer_corners(const Polyline& pl, double miter);

/// Length change produced by chamfering one right-angle corner with cut `c`:
/// two arms lose `c` each, the diagonal adds `c*sqrt(2)`; the result is
/// negative (the path shortens). Used by the mitered pattern-gain formula.
[[nodiscard]] double right_angle_chamfer_delta(double c);

}  // namespace lmr::geom
