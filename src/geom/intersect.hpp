#pragma once
/// \file intersect.hpp
/// Segment/segment and segment/polygon intersection predicates.

#include <optional>
#include <vector>

#include "geom/polygon.hpp"
#include "geom/segment.hpp"

namespace lmr::geom {

/// True when the closed segments share at least one point (touching counts).
[[nodiscard]] bool segments_intersect(const Segment& s1, const Segment& s2);

/// Intersection point of two segments when they cross at a single point.
/// Returns nullopt for disjoint segments and for (near-)parallel overlap —
/// overlap handling in lmroute goes through distance predicates instead.
[[nodiscard]] std::optional<Point> segment_intersection(const Segment& s1, const Segment& s2);

/// All proper + touching intersection points between `s` and the edges of
/// `poly` (duplicates within kEps removed, unordered).
[[nodiscard]] std::vector<Point> segment_polygon_intersections(const Segment& s,
                                                               const Polygon& poly);

/// True when any edge of the two polygons cross, or one contains the other.
[[nodiscard]] bool polygons_overlap(const Polygon& a, const Polygon& b);

}  // namespace lmr::geom
