#pragma once
/// \file box.hpp
/// Axis-aligned bounding box.

#include <algorithm>
#include <limits>

#include "geom/vec2.hpp"

namespace lmr::geom {

/// Axis-aligned box [lo.x, hi.x] x [lo.y, hi.y]. A default-constructed box is
/// empty (lo > hi) and absorbs any point via expand().
struct Box {
  Point lo{std::numeric_limits<double>::infinity(), std::numeric_limits<double>::infinity()};
  Point hi{-std::numeric_limits<double>::infinity(), -std::numeric_limits<double>::infinity()};

  constexpr Box() = default;
  constexpr Box(Point l, Point h) : lo(l), hi(h) {}

  [[nodiscard]] bool empty() const { return lo.x > hi.x || lo.y > hi.y; }
  [[nodiscard]] double width() const { return hi.x - lo.x; }
  [[nodiscard]] double height() const { return hi.y - lo.y; }
  [[nodiscard]] Point center() const { return (lo + hi) * 0.5; }
  [[nodiscard]] double area() const { return empty() ? 0.0 : width() * height(); }

  void expand(const Point& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  void expand(const Box& b) {
    if (b.empty()) return;
    expand(b.lo);
    expand(b.hi);
  }

  /// Grow the box outward by `m` on every side.
  [[nodiscard]] Box inflated(double m) const { return {{lo.x - m, lo.y - m}, {hi.x + m, hi.y + m}}; }

  [[nodiscard]] bool contains(const Point& p, double tol = 0.0) const {
    return p.x >= lo.x - tol && p.x <= hi.x + tol && p.y >= lo.y - tol && p.y <= hi.y + tol;
  }
  [[nodiscard]] bool intersects(const Box& o, double tol = 0.0) const {
    if (empty() || o.empty()) return false;
    return lo.x <= o.hi.x + tol && o.lo.x <= hi.x + tol && lo.y <= o.hi.y + tol &&
           o.lo.y <= hi.y + tol;
  }
};

}  // namespace lmr::geom
