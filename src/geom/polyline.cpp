#include "geom/polyline.hpp"

#include <algorithm>

#include "core/contract.hpp"
#include "geom/intersect.hpp"

namespace lmr::geom {

double Polyline::length() const {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < pts_.size(); ++i) total += dist(pts_[i], pts_[i + 1]);
  return total;
}

Box Polyline::bbox() const {
  Box box;
  for (const Point& p : pts_) box.expand(p);
  return box;
}

Point Polyline::point_at_arclength(double s) const {
  if (pts_.empty()) return {};
  if (s <= 0.0) return pts_.front();
  for (std::size_t i = 0; i + 1 < pts_.size(); ++i) {
    const double seg_len = dist(pts_[i], pts_[i + 1]);
    if (s <= seg_len) {
      if (seg_len <= kEps) return pts_[i];
      return pts_[i] + (pts_[i + 1] - pts_[i]) * (s / seg_len);
    }
    s -= seg_len;
  }
  return pts_.back();
}

void Polyline::simplify(double tol) {
  if (pts_.size() < 2) return;
  std::vector<Point> out;
  out.reserve(pts_.size());
  out.push_back(pts_.front());
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    if (!almost_equal(out.back(), pts_[i], tol)) out.push_back(pts_[i]);
  }
  if (out.size() < 3) {
    pts_ = std::move(out);
    return;
  }
  std::vector<Point> final_pts;
  final_pts.reserve(out.size());
  final_pts.push_back(out.front());
  for (std::size_t i = 1; i + 1 < out.size(); ++i) {
    const Segment s{final_pts.back(), out[i + 1]};
    // Keep the vertex unless it lies on the straight line between its kept
    // neighbour and the next vertex.
    const double d = dist(closest_point(s, out[i]), out[i]);
    const bool collinear = d <= tol && dot(out[i] - final_pts.back(), out[i + 1] - out[i]) >= 0.0;
    if (!collinear) final_pts.push_back(out[i]);
  }
  final_pts.push_back(out.back());
  pts_ = std::move(final_pts);
}

void Polyline::splice(std::size_t i, std::size_t j, std::span<const Point> repl) {
  LMR_REQUIRE(i < j && j < pts_.size(), "splice window [i, j] must be in range");
  LMR_REQUIRE(!repl.empty(), "splice replacement must keep the chain connected");
  std::vector<Point> out;
  out.reserve(pts_.size() - (j - i + 1) + repl.size());
  out.insert(out.end(), pts_.begin(), pts_.begin() + static_cast<std::ptrdiff_t>(i));
  out.insert(out.end(), repl.begin(), repl.end());
  out.insert(out.end(), pts_.begin() + static_cast<std::ptrdiff_t>(j) + 1, pts_.end());
  pts_ = std::move(out);
}

bool Polyline::self_intersects() const {
  const std::size_t n = segment_count();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j < n; ++j) {
      // Skip the wrap-adjacency that only applies to closed chains.
      if (segments_intersect(segment(i), segment(j))) return true;
    }
  }
  return false;
}

Polyline Polyline::reversed() const {
  std::vector<Point> pts(pts_.rbegin(), pts_.rend());
  return Polyline{std::move(pts)};
}

}  // namespace lmr::geom
