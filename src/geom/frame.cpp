#include "geom/frame.hpp"

namespace lmr::geom {

Frame Frame::along(const Segment& s, bool flip) {
  Frame f;
  f.origin_ = s.a;
  f.ux_ = s.unit();
  f.uy_ = flip ? -f.ux_.perp() : f.ux_.perp();
  return f;
}

}  // namespace lmr::geom
