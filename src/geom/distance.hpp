#pragma once
/// \file distance.hpp
/// Distance predicates between points, segments, polylines and polygons.
/// These back the DRC checker (layout module) and the URA shrinking rules
/// d(seg, p) / d(seg, P) of the paper (§IV-B).

#include "geom/polygon.hpp"
#include "geom/polyline.hpp"
#include "geom/segment.hpp"

namespace lmr::geom {

/// Distance from `p` to the closed segment `s` — the paper's d(seg, p) when
/// the extension frame puts `seg` on the x axis.
[[nodiscard]] double dist_point_segment(const Point& p, const Segment& s);

/// Minimum distance between two closed segments (0 when they intersect).
[[nodiscard]] double dist_segment_segment(const Segment& s1, const Segment& s2);

/// Minimum distance between a segment and a polygon boundary (0 on
/// intersection; interior containment also reports 0).
[[nodiscard]] double dist_segment_polygon(const Segment& s, const Polygon& poly);

/// Minimum distance between two polylines (0 when they touch/cross).
[[nodiscard]] double dist_polyline_polyline(const Polyline& a, const Polyline& b);

/// Minimum distance from a polyline to a polygon boundary (0 when touching;
/// a polyline inside the polygon reports 0 as well).
[[nodiscard]] double dist_polyline_polygon(const Polyline& pl, const Polygon& poly);

}  // namespace lmr::geom
