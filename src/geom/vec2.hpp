#pragma once
/// \file vec2.hpp
/// 2-D vector / point type used throughout lmroute.
///
/// Coordinates are double precision in abstract layout units (the paper's
/// benchmarks use mils/mm interchangeably; nothing in the library assumes a
/// particular unit). `Point` is an alias of `Vec2`: positions and
/// displacements share one concrete value type, per the paper's purely
/// geometric treatment of traces.

#include <cmath>
#include <iosfwd>

namespace lmr::geom {

/// Geometric tolerance used by predicates. Layout coordinates in the
/// benchmarks are O(1e2) units, so 1e-9 comfortably separates "equal within
/// floating noise" from "distinct features" (minimum DRC distances are
/// O(1e-1) or larger).
inline constexpr double kEps = 1e-9;

/// A 2-D vector (and point) with value semantics.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double xx, double yy) : x(xx), y(yy) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }

  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  constexpr bool operator==(const Vec2& o) const = default;

  /// Squared Euclidean norm.
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
  /// Euclidean norm.
  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  /// Unit vector in the same direction. Undefined for the zero vector.
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    return {x / n, y / n};
  }
  /// Counter-clockwise perpendicular (rotate by +90 degrees).
  [[nodiscard]] constexpr Vec2 perp() const { return {-y, x}; }
};

using Point = Vec2;

constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

/// Dot product.
constexpr double dot(const Vec2& a, const Vec2& b) { return a.x * b.x + a.y * b.y; }

/// 2-D cross product (z component of the 3-D cross of the embeddings).
/// Positive when `b` is counter-clockwise from `a`.
constexpr double cross(const Vec2& a, const Vec2& b) { return a.x * b.y - a.y * b.x; }

/// Euclidean distance between two points — the paper's d(a, b).
inline double dist(const Point& a, const Point& b) { return (a - b).norm(); }

/// Squared distance; use when only comparisons are needed.
constexpr double dist2(const Point& a, const Point& b) { return (a - b).norm2(); }

/// Approximate point equality under `tol`.
inline bool almost_equal(const Point& a, const Point& b, double tol = kEps) {
  return std::abs(a.x - b.x) <= tol && std::abs(a.y - b.y) <= tol;
}

/// Approximate scalar equality under `tol`.
inline bool almost_equal(double a, double b, double tol = kEps) { return std::abs(a - b) <= tol; }

/// Orientation of the ordered triple (a, b, c).
enum class Orientation { Clockwise, Collinear, CounterClockwise };

/// Robust-enough orientation predicate with an epsilon band around
/// collinearity. Inputs in the library are O(1e2), so the fixed kEps band is
/// far below any feature size.
inline Orientation orient(const Point& a, const Point& b, const Point& c) {
  const double v = cross(b - a, c - a);
  if (v > kEps) return Orientation::CounterClockwise;
  if (v < -kEps) return Orientation::Clockwise;
  return Orientation::Collinear;
}

std::ostream& operator<<(std::ostream& os, const Vec2& v);

}  // namespace lmr::geom
