#pragma once
/// \file polygon.hpp
/// Simple polygon — obstacles, routable-area outlines and URA borders.

#include <cstddef>
#include <vector>

#include "geom/box.hpp"
#include "geom/segment.hpp"
#include "geom/vec2.hpp"

namespace lmr::geom {

/// A simple (non self-intersecting) polygon stored as a vertex loop without
/// the closing duplicate. Orientation may be either; `signed_area()` exposes
/// it and `make_ccw()` normalizes. Obstacles in the paper ("solid polygons")
/// and the borders used by URA shrinking are instances of this type.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> pts) : pts_(std::move(pts)) {}

  /// Axis-aligned rectangle factory.
  static Polygon rect(const Box& b);
  static Polygon rect(Point lo, Point hi) { return rect(Box{lo, hi}); }
  /// Regular n-gon factory (vias are octagons in the benchmarks).
  static Polygon regular(Point center, double circumradius, int sides, double phase = 0.0);

  [[nodiscard]] std::size_t size() const { return pts_.size(); }
  [[nodiscard]] bool empty() const { return pts_.empty(); }
  [[nodiscard]] const Point& operator[](std::size_t i) const { return pts_[i]; }
  [[nodiscard]] const std::vector<Point>& points() const { return pts_; }
  [[nodiscard]] std::vector<Point>& points() { return pts_; }

  /// Edge i runs from vertex i to vertex (i+1) mod n.
  [[nodiscard]] Segment edge(std::size_t i) const {
    return {pts_[i], pts_[(i + 1) % pts_.size()]};
  }

  /// Signed area (positive for counter-clockwise loops).
  [[nodiscard]] double signed_area() const;
  [[nodiscard]] double area() const { return std::abs(signed_area()); }
  [[nodiscard]] bool is_ccw() const { return signed_area() > 0.0; }
  void make_ccw();

  [[nodiscard]] Box bbox() const;
  [[nodiscard]] Point centroid() const;

  /// Point-in-polygon by ray casting (the paper adopts ray casting for the
  /// inner-border test, §IV-D). Boundary points count as inside when
  /// `boundary_inside` is true.
  [[nodiscard]] bool contains(const Point& p, bool boundary_inside = true) const;

  /// True when the polygon is convex (after orientation normalization).
  [[nodiscard]] bool is_convex() const;

  /// Translate every vertex.
  [[nodiscard]] Polygon translated(const Vec2& d) const;

 private:
  std::vector<Point> pts_;
};

}  // namespace lmr::geom
