#include "geom/intersect.hpp"

#include <algorithm>
#include <cmath>

namespace lmr::geom {

namespace {

bool on_segment_collinear(const Segment& s, const Point& p) {
  return p.x >= std::min(s.a.x, s.b.x) - kEps && p.x <= std::max(s.a.x, s.b.x) + kEps &&
         p.y >= std::min(s.a.y, s.b.y) - kEps && p.y <= std::max(s.a.y, s.b.y) + kEps;
}

}  // namespace

bool segments_intersect(const Segment& s1, const Segment& s2) {
  const Orientation o1 = orient(s1.a, s1.b, s2.a);
  const Orientation o2 = orient(s1.a, s1.b, s2.b);
  const Orientation o3 = orient(s2.a, s2.b, s1.a);
  const Orientation o4 = orient(s2.a, s2.b, s1.b);

  if (o1 != o2 && o3 != o4 && o1 != Orientation::Collinear && o2 != Orientation::Collinear &&
      o3 != Orientation::Collinear && o4 != Orientation::Collinear) {
    return true;
  }
  if (o1 == Orientation::Collinear && on_segment_collinear(s1, s2.a)) return true;
  if (o2 == Orientation::Collinear && on_segment_collinear(s1, s2.b)) return true;
  if (o3 == Orientation::Collinear && on_segment_collinear(s2, s1.a)) return true;
  if (o4 == Orientation::Collinear && on_segment_collinear(s2, s1.b)) return true;
  // Mixed case: one endpoint collinear test failed only because the point is
  // off the segment; the general crossing still requires strict opposite
  // orientations on both sides, which the first test covered.
  if (o1 != o2 && o3 != o4) {
    // At least one collinear orientation: touching configurations handled
    // above; remaining cases are crossings through an endpoint.
    return (o1 == Orientation::Collinear && on_segment_collinear(s1, s2.a)) ||
           (o2 == Orientation::Collinear && on_segment_collinear(s1, s2.b)) ||
           (o3 == Orientation::Collinear && on_segment_collinear(s2, s1.a)) ||
           (o4 == Orientation::Collinear && on_segment_collinear(s2, s1.b));
  }
  return false;
}

std::optional<Point> segment_intersection(const Segment& s1, const Segment& s2) {
  const Vec2 r = s1.direction();
  const Vec2 s = s2.direction();
  const double denom = cross(r, s);
  if (std::abs(denom) <= kEps) return std::nullopt;
  const Vec2 qp = s2.a - s1.a;
  const double t = cross(qp, s) / denom;
  const double u = cross(qp, r) / denom;
  // Tolerance expressed in parameter space relative to each segment length so
  // endpoint touches register reliably.
  const double t_tol = kEps / std::max(r.norm(), kEps);
  const double u_tol = kEps / std::max(s.norm(), kEps);
  if (t < -t_tol || t > 1.0 + t_tol || u < -u_tol || u > 1.0 + u_tol) return std::nullopt;
  return s1.at(std::clamp(t, 0.0, 1.0));
}

std::vector<Point> segment_polygon_intersections(const Segment& s, const Polygon& poly) {
  std::vector<Point> out;
  for (std::size_t i = 0; i < poly.size(); ++i) {
    if (auto p = segment_intersection(s, poly.edge(i))) {
      const bool dup = std::any_of(out.begin(), out.end(), [&](const Point& q) {
        return almost_equal(q, *p, 1e-7);
      });
      if (!dup) out.push_back(*p);
    }
  }
  return out;
}

bool polygons_overlap(const Polygon& a, const Polygon& b) {
  if (!a.bbox().intersects(b.bbox(), kEps)) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (segments_intersect(a.edge(i), b.edge(j))) return true;
    }
  }
  if (!a.empty() && b.contains(a[0])) return true;
  if (!b.empty() && a.contains(b[0])) return true;
  return false;
}

}  // namespace lmr::geom
