#include "geom/polygon.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace lmr::geom {

Polygon Polygon::rect(const Box& b) {
  return Polygon{{{b.lo.x, b.lo.y}, {b.hi.x, b.lo.y}, {b.hi.x, b.hi.y}, {b.lo.x, b.hi.y}}};
}

Polygon Polygon::regular(Point center, double circumradius, int sides, double phase) {
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(sides));
  for (int i = 0; i < sides; ++i) {
    const double a = phase + 2.0 * std::numbers::pi * i / sides;
    pts.push_back(center + Vec2{std::cos(a), std::sin(a)} * circumradius);
  }
  return Polygon{std::move(pts)};
}

double Polygon::signed_area() const {
  double a = 0.0;
  const std::size_t n = pts_.size();
  for (std::size_t i = 0; i < n; ++i) a += cross(pts_[i], pts_[(i + 1) % n]);
  return 0.5 * a;
}

void Polygon::make_ccw() {
  if (!pts_.empty() && !is_ccw()) std::reverse(pts_.begin(), pts_.end());
}

Box Polygon::bbox() const {
  Box box;
  for (const Point& p : pts_) box.expand(p);
  return box;
}

Point Polygon::centroid() const {
  Point c;
  for (const Point& p : pts_) c += p;
  return pts_.empty() ? c : c / static_cast<double>(pts_.size());
}

bool Polygon::contains(const Point& p, bool boundary_inside) const {
  const std::size_t n = pts_.size();
  if (n < 3) return false;
  // Boundary check first so that the crossing parity below never has to
  // disambiguate on-edge points.
  for (std::size_t i = 0; i < n; ++i) {
    const Segment e = edge(i);
    if (dist(closest_point(e, p), p) <= kEps) return boundary_inside;
  }
  // Ray casting toward +x with the standard half-open vertex rule.
  bool inside = false;
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = pts_[i];
    const Point& b = pts_[(i + 1) % n];
    const bool crosses = (a.y > p.y) != (b.y > p.y);
    if (!crosses) continue;
    const double x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
    if (x_at > p.x) inside = !inside;
  }
  return inside;
}

bool Polygon::is_convex() const {
  const std::size_t n = pts_.size();
  if (n < 4) return n == 3;
  int sign = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double c =
        cross(pts_[(i + 1) % n] - pts_[i], pts_[(i + 2) % n] - pts_[(i + 1) % n]);
    if (std::abs(c) <= kEps) continue;
    const int s = c > 0 ? 1 : -1;
    if (sign == 0) {
      sign = s;
    } else if (s != sign) {
      return false;
    }
  }
  return true;
}

Polygon Polygon::translated(const Vec2& d) const {
  std::vector<Point> pts = pts_;
  for (Point& p : pts) p += d;
  return Polygon{std::move(pts)};
}

}  // namespace lmr::geom
