#pragma once
/// \file frame.hpp
/// Local coordinate frames — the mechanism behind any-direction routing.
///
/// The paper's DP extension works on one segment at a time; the segment may
/// run at any angle. We map the segment onto the local +x axis with the
/// meander side mapped to +y, run the whole URA-shrinking / DP machinery in
/// that frame, and map the resulting pattern vertices back. This is the only
/// place where "any-direction" costs anything: one rotation per point.

#include "geom/segment.hpp"
#include "geom/vec2.hpp"

namespace lmr::geom {

/// Rigid (optionally reflected) planar frame: local (u, v) maps to
/// `origin + u*ux + v*uy`. `ux` and `uy` are orthonormal; when the frame is
/// built with `flip = true`, uy is the *clockwise* perpendicular of ux, which
/// mirrors the plane so that "pattern side" is always local +y.
class Frame {
 public:
  Frame() : origin_{0, 0}, ux_{1, 0}, uy_{0, 1} {}

  /// Frame whose +x axis runs along `s` (origin at s.a). With `flip` the +y
  /// axis points to the right of the segment direction instead of the left,
  /// i.e. dir = -1 of the paper's DP.
  static Frame along(const Segment& s, bool flip = false);

  [[nodiscard]] Point to_local(const Point& p) const {
    const Vec2 d = p - origin_;
    return {dot(d, ux_), dot(d, uy_)};
  }
  [[nodiscard]] Point to_global(const Point& p) const {
    return origin_ + ux_ * p.x + uy_ * p.y;
  }
  [[nodiscard]] Segment to_local(const Segment& s) const {
    return {to_local(s.a), to_local(s.b)};
  }
  [[nodiscard]] Segment to_global(const Segment& s) const {
    return {to_global(s.a), to_global(s.b)};
  }

  [[nodiscard]] const Point& origin() const { return origin_; }
  [[nodiscard]] const Vec2& axis_x() const { return ux_; }
  [[nodiscard]] const Vec2& axis_y() const { return uy_; }
  /// True when the frame mirrors orientation (dir = -1 side).
  [[nodiscard]] bool flipped() const { return cross(ux_, uy_) < 0.0; }

 private:
  Point origin_;
  Vec2 ux_;
  Vec2 uy_;
};

}  // namespace lmr::geom
