#pragma once
/// \file offset.hpp
/// Convex polygon outward offset (obstacle inflation).
///
/// The paper folds the obstacle clearance d_obs into the routable-area
/// representation ("obstacle: a polygon that the trace cannot pass, converted
/// into a part of the routable area"). We realize the conversion by inflating
/// each obstacle polygon by `d_obs + w_trace/2 - d_gap/2` before adding it to
/// the extension environment, so a URA (inflated by d_gap/2) that clears the
/// inflated obstacle guarantees the trace itself clears the original obstacle
/// by d_obs.

#include "geom/polygon.hpp"
#include "geom/polyline.hpp"

namespace lmr::geom {

/// Offset a convex polygon outward by `margin` with mitered joins (each edge
/// shifted along its outward normal, adjacent shifted edges re-intersected).
/// Precondition: `poly` is convex and CCW; margin >= 0. For non-convex input
/// use `inflate_polygon`, which falls back conservatively.
[[nodiscard]] Polygon offset_convex(const Polygon& poly, double margin);

/// General inflation: exact mitered offset for convex polygons, and the
/// inflated bounding box for non-convex polygons (conservative — never
/// under-approximates clearance).
[[nodiscard]] Polygon inflate_polygon(const Polygon& poly, double margin);

/// Parallel offset of an open polyline: each segment is shifted by `d` along
/// its left normal (d < 0 shifts right) and consecutive shifted segments are
/// re-joined by intersecting their supporting lines (miter joins; parallel
/// joins keep the shared shifted vertex). This is how a differential pair is
/// restored from its median trace: sub-traces at +/- pitch/2.
[[nodiscard]] Polyline offset_polyline(const Polyline& pl, double d);

}  // namespace lmr::geom
