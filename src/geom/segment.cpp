#include "geom/segment.hpp"

#include <algorithm>

namespace lmr::geom {

double project_param(const Segment& s, const Point& p) {
  const Vec2 d = s.direction();
  const double n2 = d.norm2();
  if (n2 <= kEps * kEps) return 0.0;
  return dot(p - s.a, d) / n2;
}

Point closest_point(const Segment& s, const Point& p) {
  const double t = std::clamp(project_param(s, p), 0.0, 1.0);
  return s.at(t);
}

}  // namespace lmr::geom
