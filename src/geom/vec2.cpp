#include "geom/vec2.hpp"

#include <ostream>

namespace lmr::geom {

std::ostream& operator<<(std::ostream& os, const Vec2& v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace lmr::geom
