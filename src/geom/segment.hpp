#pragma once
/// \file segment.hpp
/// Line segment with helpers used by the extension engine.

#include "geom/box.hpp"
#include "geom/vec2.hpp"

namespace lmr::geom {

/// Directed line segment from `a` to `b`.
struct Segment {
  Point a;
  Point b;

  constexpr Segment() = default;
  constexpr Segment(Point aa, Point bb) : a(aa), b(bb) {}

  [[nodiscard]] double length() const { return dist(a, b); }
  [[nodiscard]] Vec2 direction() const { return b - a; }
  /// Unit direction; undefined for degenerate segments.
  [[nodiscard]] Vec2 unit() const { return direction().normalized(); }
  /// Point at parameter t in [0,1].
  [[nodiscard]] Point at(double t) const { return a + (b - a) * t; }
  [[nodiscard]] Point midpoint() const { return at(0.5); }
  [[nodiscard]] Segment reversed() const { return {b, a}; }
  [[nodiscard]] bool degenerate(double tol = kEps) const { return dist2(a, b) <= tol * tol; }

  [[nodiscard]] Box bbox() const {
    Box box;
    box.expand(a);
    box.expand(b);
    return box;
  }
};

/// Project point `p` onto the line through `s`, returning the parameter t
/// (unclamped; t=0 at s.a, t=1 at s.b).
double project_param(const Segment& s, const Point& p);

/// Closest point on the segment (clamped projection).
Point closest_point(const Segment& s, const Point& p);

}  // namespace lmr::geom
