#pragma once
/// \file polyline.hpp
/// Open polygonal chain — the geometric body of a PCB trace.

#include <cstddef>
#include <span>
#include <vector>

#include "geom/box.hpp"
#include "geom/segment.hpp"
#include "geom/vec2.hpp"

namespace lmr::geom {

/// An open chain of vertices. Consecutive duplicate vertices are permitted
/// on input but can be removed with `simplify()`; most algorithms in lmroute
/// expect simplified chains (no zero-length segments, no collinear interior
/// vertices unless deliberately kept as DTW "node clusters").
class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<Point> pts) : pts_(std::move(pts)) {}

  [[nodiscard]] std::size_t size() const { return pts_.size(); }
  [[nodiscard]] bool empty() const { return pts_.empty(); }
  [[nodiscard]] std::size_t segment_count() const {
    return pts_.size() < 2 ? 0 : pts_.size() - 1;
  }

  [[nodiscard]] const Point& operator[](std::size_t i) const { return pts_[i]; }
  [[nodiscard]] Point& operator[](std::size_t i) { return pts_[i]; }
  [[nodiscard]] const Point& front() const { return pts_.front(); }
  [[nodiscard]] const Point& back() const { return pts_.back(); }
  [[nodiscard]] const std::vector<Point>& points() const { return pts_; }
  [[nodiscard]] std::vector<Point>& points() { return pts_; }

  [[nodiscard]] Segment segment(std::size_t i) const { return {pts_[i], pts_[i + 1]}; }

  void push_back(const Point& p) { pts_.push_back(p); }
  void clear() { pts_.clear(); }

  /// Total Euclidean length — the trace length l_trace of the paper.
  [[nodiscard]] double length() const;

  /// Axis-aligned bounding box of all vertices.
  [[nodiscard]] Box bbox() const;

  /// Point at arc-length `s` from the start (clamped to [0, length()]).
  [[nodiscard]] Point point_at_arclength(double s) const;

  /// Remove consecutive duplicates (within tol) and interior vertices that
  /// are collinear with their neighbours (within tol of the straight line).
  void simplify(double tol = kEps);

  /// Replace the vertex run [i, j] (inclusive indices, i < j) with `repl`.
  /// `repl` must start at pts_[i] and end at pts_[j] (within tolerance) so
  /// that connectivity is preserved; violations are an error in the caller.
  void splice(std::size_t i, std::size_t j, std::span<const Point> repl);

  /// True if any two non-adjacent segments of the chain intersect.
  [[nodiscard]] bool self_intersects() const;

  [[nodiscard]] Polyline reversed() const;

 private:
  std::vector<Point> pts_;
};

}  // namespace lmr::geom
