#include "geom/chamfer.hpp"

#include <algorithm>
#include <cmath>

namespace lmr::geom {

Polyline chamfer_corners(const Polyline& pl, double miter) {
  if (pl.size() < 3 || miter <= 0.0) return pl;
  std::vector<Point> out;
  out.reserve(pl.size() * 2);
  out.push_back(pl.front());
  for (std::size_t i = 1; i + 1 < pl.size(); ++i) {
    const Point& prev = out.back();
    const Point& cur = pl[i];
    const Point& next = pl[i + 1];
    const Vec2 in_dir = cur - prev;
    const Vec2 out_dir = next - cur;
    const double in_len = in_dir.norm();
    const double out_len = out_dir.norm();
    if (in_len <= kEps || out_len <= kEps) {
      out.push_back(cur);
      continue;
    }
    // Turn angle >= 90deg <=> the forward directions have non-positive dot.
    const bool sharp = dot(in_dir, out_dir) <= kEps;
    if (!sharp) {
      out.push_back(cur);
      continue;
    }
    const double cut = std::min({miter, in_len / 2.0, out_len / 2.0});
    if (cut <= kEps) {
      out.push_back(cur);
      continue;
    }
    out.push_back(cur - in_dir * (cut / in_len));
    out.push_back(cur + out_dir * (cut / out_len));
  }
  out.push_back(pl.back());
  Polyline result{std::move(out)};
  result.simplify();
  return result;
}

double right_angle_chamfer_delta(double c) { return c * (std::sqrt(2.0) - 2.0); }

}  // namespace lmr::geom
