#include "scenario/scenario_families.hpp"

#include <stdexcept>
#include <utility>

#include "workload/table1_cases.hpp"

namespace lmr::scenario {

namespace {

ScenarioSpec base_spec(std::string name) {
  ScenarioSpec s;
  s.name = std::move(name);
  return s;
}

Family multi_group(bool smoke) {
  Family f;
  f.name = "multi_group";
  f.description = "several matching groups stacked on one board";
  if (smoke) {
    ScenarioSpec s = base_spec("multi_group/2x3");
    s.groups = 2;
    s.members_per_group = 3;
    s.corridor_length = 60.0;
    s.vias_per_band = 6;
    f.cases.push_back({s, 7101});
  } else {
    ScenarioSpec a = base_spec("multi_group/3x6");
    a.groups = 3;
    a.members_per_group = 6;
    a.vias_per_band = 14;
    f.cases.push_back({a, 7101});
    ScenarioSpec b = base_spec("multi_group/2x10");
    b.groups = 2;
    b.members_per_group = 10;
    b.vias_per_band = 18;
    f.cases.push_back({b, 7102});
  }
  return f;
}

Family large_group(bool smoke) {
  Family f;
  f.name = "large_group";
  f.description = "one very wide rotated matching group (DRC-sweep scaling workload)";
  // Rotated on purpose: with axis-aligned bands a bbox pre-reject trivializes
  // the cross-member check; the 30-degree board makes every trace-pair bbox
  // overlap, which is the regime where the indexed sweep beats the all-pairs
  // loop by ~m.
  ScenarioSpec s = base_spec(smoke ? "large_group/12" : "large_group/40");
  s.members_per_group = smoke ? 12 : 40;
  s.vias_per_band = smoke ? 4 : 8;
  s.target_fraction = 1.35;
  s.corridor_angle_deg = 30.0;
  s.extender_tolerance = 0.05;
  if (smoke) s.corridor_length = 60.0;
  f.cases.push_back({s, 7701});
  return f;
}

Family mixed_se_diff(bool smoke) {
  Family f;
  f.name = "mixed_se_diff";
  f.description = "groups mixing single-ended and differential members";
  ScenarioSpec s = base_spec(smoke ? "mixed_se_diff/4" : "mixed_se_diff/8");
  s.diff_fraction = smoke ? 0.5 : 0.375;
  s.members_per_group = smoke ? 4 : 8;
  s.band_height = 6.0;
  s.vias_per_band = smoke ? 5 : 10;
  if (smoke) s.corridor_length = 60.0;
  f.cases.push_back({s, 7201});
  if (!smoke) f.cases.push_back({s, 7202});
  return f;
}

Family pair_corridors(bool smoke) {
  Family f;
  f.name = "pair_corridors";
  f.description = "multi-DRA differential corridors (MSDTW multi-scale rounds)";
  ScenarioSpec s = base_spec(smoke ? "pair_corridors/2x2dra" : "pair_corridors/4x3dra");
  s.diff_fraction = 1.0;
  s.members_per_group = smoke ? 2 : 4;
  s.dra_sections = smoke ? 2 : 3;
  s.dra_width_factor = 2.5;
  s.band_height = 6.0;
  s.vias_per_band = smoke ? 3 : 6;
  s.target_fraction = 1.3;
  if (smoke) s.corridor_length = 60.0;
  f.cases.push_back({s, 7301});
  if (!smoke) f.cases.push_back({s, 7302});
  return f;
}

Family obstacle_sweep(bool smoke) {
  Family f;
  f.name = "obstacle_sweep";
  f.description = "via-density sweep over randomized corridors";
  const std::vector<int> densities = smoke ? std::vector<int>{4, 10}
                                           : std::vector<int>{6, 14, 22, 30};
  std::uint64_t seed = 7401;
  for (const int vias : densities) {
    ScenarioSpec s = base_spec("obstacle_sweep/v" + std::to_string(vias));
    s.members_per_group = smoke ? 3 : 6;
    s.vias_per_band = vias;
    s.target_fraction = 1.4;
    if (smoke) s.corridor_length = 60.0;
    f.cases.push_back({s, seed++});
  }
  return f;
}

Family any_direction(bool smoke) {
  Family f;
  f.name = "any_direction";
  f.description = "rotated corridors (no axis-aligned assumption)";
  ScenarioSpec s = base_spec("any_direction/30deg");
  s.corridor_angle_deg = 30.0;
  s.extender_tolerance = 0.05;
  s.members_per_group = smoke ? 2 : 4;
  s.vias_per_band = smoke ? 4 : 8;
  if (smoke) s.corridor_length = 60.0;
  f.cases.push_back({s, 7501});
  return f;
}

Family saturated(bool smoke) {
  (void)smoke;  // already tiny: one member, short corridor
  Family f;
  f.name = "saturated";
  f.description = "far-unreachable targets: matching impossible, DRC must hold";
  f.max_error_gate_pct = 0.0;  // capacity probe: no matching gate
  f.cases.push_back({saturated_corridor_spec(), 7601});
  return f;
}

Family table1(bool smoke) {
  Family f;
  f.name = "table1";
  f.description = "the paper's Table I workload through the suite writer";
  // The paper's Table I "Ours" column tops out at 10.3 % Max error; the
  // regenerated differential case lands somewhat above it.
  f.max_error_gate_pct = 15.0;
  const std::vector<int> ks = smoke ? std::vector<int>{4} : std::vector<int>{1, 2, 3, 4, 5};
  for (const int k : ks) {
    FamilyCase fc;
    fc.spec = base_spec("table1/case" + std::to_string(k));
    fc.seed = static_cast<std::uint64_t>(k);
    fc.table1_case = k;
    // Every case is gated, including the dense differential case 5: the
    // rule-aware restore (restore-feasible pre-tuned pairs, board-validated
    // skew compensation, per-node-pitch restore) closed the former DRC debt.
    fc.expect_drc_clean = true;
    f.cases.push_back(fc);
  }
  return f;
}

Family mega_board(bool smoke) {
  Family f;
  f.name = "mega_board";
  f.description =
      "backplane-scale board: 1k+ nets across many groups in a dense via "
      "field (tile-sharding + grid-broadphase workload)";
  // 16 groups x 64 members = 1024 nets (full). 64 members puts each
  // per-group clearance index exactly at ClearanceIndex::kGridAutoSlots, so
  // the mega rows exercise the grid backend end to end; 16 groups gives the
  // auto tile planner a 4-tile split. A modest target fraction keeps the
  // per-member extension cheap — this family scales breadth, not meander
  // depth. The band is taller than the default 5.0: with a low target
  // fraction most members start straight, and in a 5-tall band the straight
  // path's via keep-out (~1.9 each side) covers the whole placement window —
  // 7.0 leaves free strips above and below so the via field actually gets
  // dense.
  ScenarioSpec s = base_spec(smoke ? "mega_board/256" : "mega_board/1k");
  s.groups = smoke ? 8 : 16;
  s.members_per_group = smoke ? 32 : 64;
  s.vias_per_band = smoke ? 6 : 12;
  s.band_height = 7.0;
  s.corridor_length = smoke ? 48.0 : 80.0;
  s.target_fraction = 1.1;
  f.cases.push_back({s, 7901});
  return f;
}

}  // namespace

Scenario materialize(const FamilyCase& fc) {
  if (fc.table1_case > 0) {
    workload::Table1Case c = workload::table1_case(fc.table1_case);
    Scenario sc;
    sc.spec = fc.spec;
    sc.spec.rules = c.rules;
    sc.spec.members_per_group = c.group_size;
    sc.spec.target_fraction = 0.0;  // target comes from the case itself
    sc.seed = fc.seed;
    sc.rules = c.rules;
    sc.layout = std::move(c.layout);
    return sc;
  }
  return ScenarioGenerator(fc.spec).generate(fc.seed);
}

ScenarioSpec saturated_corridor_spec() {
  ScenarioSpec s = base_spec("saturated/narrow");
  s.members_per_group = 1;
  s.corridor_length = 40.0;
  s.band_height = 16.0;
  s.vias_per_band = 2;
  s.via_radius = 1.0;
  // Target 25x the corridor run — far beyond any meander capacity; the
  // member starts straight (no pre-tuned bumps).
  s.target_fraction = 25.0;
  s.initial_frac_lo = 0.0;
  s.initial_frac_hi = 0.0;
  return s;
}

std::vector<Family> standard_families(bool smoke) {
  return {multi_group(smoke),    large_group(smoke),    mixed_se_diff(smoke),
          pair_corridors(smoke), obstacle_sweep(smoke), any_direction(smoke),
          saturated(smoke),      table1(smoke),         mega_board(smoke)};
}

std::vector<std::string> family_names() {
  std::vector<std::string> names;
  for (const Family& f : standard_families(true)) names.push_back(f.name);
  return names;
}

Family family(const std::string& name, bool smoke) {
  for (Family& f : standard_families(smoke)) {
    if (f.name == name) return std::move(f);
  }
  throw std::out_of_range("scenario::family: unknown family " + name);
}

}  // namespace lmr::scenario
