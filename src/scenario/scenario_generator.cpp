#include "scenario/scenario_generator.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <string>

#include "geom/distance.hpp"
#include "index/seg_grid.hpp"
#include "workload/synth.hpp"

namespace lmr::scenario {

namespace {

using geom::Point;
using geom::Polygon;
using geom::Polyline;

/// Height of DRA section `s` (0-based) as a multiple of the base height:
/// linear ramp from 1.0 to `factor` across `sections`.
double section_scale(const ScenarioSpec& spec, int s) {
  if (spec.dra_sections <= 1) return 1.0;
  const double t = static_cast<double>(s) / (spec.dra_sections - 1);
  return 1.0 + (spec.dra_width_factor - 1.0) * t;
}

/// Bresenham-style spreading of `diff_count` differential members over
/// `members` slots (deterministic, spec-only).
bool is_differential(int m, int members, int diff_count) {
  return ((m + 1) * diff_count) / members > (m * diff_count) / members;
}

/// Drop via octagons into the band, rejecting positions that would violate
/// obstacle clearance against `path` (plus placement slack, so the extender
/// has room to thread between via and trace) or crowd another via. A
/// different policy from Table I's `add_band_vias` on purpose: scenarios
/// scatter over the whole band relative to the real path, Table I
/// fragments the strip above the trace.
void sprinkle_vias(layout::Layout& l, layout::RoutableArea& area, std::mt19937_64& rng,
                   const ScenarioSpec& spec, const Polyline& path, double x0, double x1,
                   double y_lo, double y_hi, double keep_clear_extra = 0.0) {
  const double r = spec.via_radius;
  const double clear = spec.rules.effective_obs() + r +
                       0.55 * spec.rules.effective_gap() + keep_clear_extra;
  if (y_hi - r <= y_lo + r || x1 - 2.0 <= x0 + 2.0) return;
  // Seg-grid broadphase over the member's path and the vias placed so far,
  // replacing the quadratic every-candidate-vs-everything scan (the old
  // bottleneck of mega-board generation). The grid only filters candidates;
  // the exact predicates below are byte-for-byte the old ones and the RNG
  // stream is consumed identically, so generated boards are unchanged.
  const double probe = std::max(3.0 * r, clear);
  index::SegGrid grid(probe);
  std::vector<Point> centers;  // hole centroids, indexed by grid payload
  constexpr std::uint64_t kHoleBit = std::uint64_t{1} << 32;
  const auto add_center = [&](const Point& c) {
    grid.insert({c, c}, kHoleBit | centers.size());
    centers.push_back(c);
  };
  for (const auto& h : area.holes) add_center(h.centroid());
  for (std::size_t s = 0; s < path.segment_count(); ++s) {
    grid.insert(path.segment(s), s);
  }
  int placed = 0, attempts = 0;
  while (placed < spec.vias_per_band && attempts < spec.vias_per_band * 40) {
    ++attempts;
    const Point c{workload::uniform_real(rng, x0 + 2.0, x1 - 2.0),
                  workload::uniform_real(rng, y_lo + r, y_hi - r)};
    bool clash = false;
    grid.visit(geom::Box{c, c}.inflated(probe), [&](const index::SegGrid::Entry& e) {
      if ((e.payload & kHoleBit) != 0) {
        if (geom::dist(centers[e.payload & 0xffffffffu], c) < 3.0 * r) clash = true;
      } else if (geom::dist_point_segment(c, e.seg) < clear) {
        clash = true;
      }
      return !clash;
    });
    if (clash) continue;
    const Polygon via = Polygon::regular(c, r, 8, M_PI / 8.0);
    area.holes.push_back(via);
    l.add_obstacle({via, "via"});
    add_center(via.centroid());
    ++placed;
  }
}

/// Staircase corridor outline: bottom edge straight, top edge stepping up at
/// every DRA boundary (single-section specs degenerate to a rectangle).
Polygon corridor_outline(const ScenarioSpec& spec, double x_lo, double x_hi, double y_bot) {
  const int sections = std::max(1, spec.dra_sections);
  std::vector<Point> pts{{x_lo, y_bot}, {x_hi, y_bot}};
  const double span = x_hi - x_lo;
  for (int s = sections - 1; s >= 0; --s) {
    const double h = spec.band_height * section_scale(spec, s) - 0.4;
    const double x_sec_lo = x_lo + span * s / sections;
    if (s == sections - 1) pts.push_back({x_hi, y_bot + h});
    pts.push_back({x_sec_lo, y_bot + h});
    if (s > 0) {
      const double h_prev = spec.band_height * section_scale(spec, s - 1) - 0.4;
      pts.push_back({x_sec_lo, y_bot + h_prev});
    }
  }
  return Polygon{std::move(pts)};
}

/// Sub-trace path of a differential member: horizontal runs offset from the
/// median by the per-section half pitch, joined by short diagonal tapers at
/// DRA boundaries.
Polyline pair_sub_path(const ScenarioSpec& spec, double x0, double x1, double y,
                       double side) {
  const int sections = std::max(1, spec.dra_sections);
  const double span = x1 - x0;
  const double taper = 2.0;
  std::vector<Point> pts;
  for (int s = 0; s < sections; ++s) {
    const double off = side * spec.pair_pitch * section_scale(spec, s) / 2.0;
    const double sec_lo = x0 + span * s / sections;
    const double sec_hi = x0 + span * (s + 1) / sections;
    pts.push_back({s == 0 ? sec_lo : sec_lo + taper, y + off});
    pts.push_back({sec_hi, y + off});
  }
  Polyline pl{std::move(pts)};
  pl.simplify(1e-12);
  return pl;
}

/// Insert one tiny compensation bump (the MSDTW "tiny pattern" noise of
/// Fig. 11) on the first straight run of `path`.
void add_tiny_pattern(Polyline& path, double protect, double x_at) {
  auto& pts = path.points();
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    if (pts[i].y != pts[i + 1].y || pts[i].x > x_at || pts[i + 1].x < x_at + 2.0 * protect)
      continue;
    const double y = pts[i].y;
    const std::vector<Point> bump{{x_at, y},
                                  {x_at, y - protect},
                                  {x_at + 2.0 * protect, y - protect},
                                  {x_at + 2.0 * protect, y}};
    pts.insert(pts.begin() + static_cast<std::ptrdiff_t>(i) + 1, bump.begin(), bump.end());
    return;
  }
}

void rotate_points(std::vector<Point>& pts, double cos_a, double sin_a) {
  for (Point& p : pts) {
    p = {p.x * cos_a - p.y * sin_a, p.x * sin_a + p.y * cos_a};
  }
}

}  // namespace

ScenarioGenerator::ScenarioGenerator(ScenarioSpec spec) : spec_(std::move(spec)) {
  if (spec_.groups < 1 || spec_.members_per_group < 1) {
    throw std::invalid_argument("ScenarioGenerator: need at least one group member");
  }
  if (spec_.corridor_length <= 0.0 || spec_.band_height <= 1.0) {
    throw std::invalid_argument("ScenarioGenerator: degenerate corridor dimensions");
  }
  spec_.rules.validate();
}

Scenario ScenarioGenerator::generate(std::uint64_t seed) const {
  const ScenarioSpec& spec = spec_;
  Scenario sc;
  sc.spec = spec;
  sc.seed = seed;
  sc.rules = spec.rules;

  std::mt19937_64 rng(seed);
  const double x0 = 0.0, x1 = spec.corridor_length;
  const double straight = x1 - x0;
  const double target = spec.target_fraction * spec.corridor_length;
  const int members = spec.members_per_group;
  const int diff_count =
      std::clamp(static_cast<int>(std::lround(spec.diff_fraction * members)), 0, members);
  const double member_band =
      spec.band_height * (spec.dra_sections > 1 ? spec.dra_width_factor : 1.0);

  for (int s = 0; s < std::max(1, spec.dra_sections); ++s) {
    sc.pair_rule_set.push_back(spec.pair_pitch * section_scale(spec, s));
  }

  double y_base = 0.0;
  for (int g = 0; g < spec.groups; ++g) {
    layout::MatchGroup group;
    group.name = spec.name + "/g" + std::to_string(g);
    group.target_length = target;

    for (int m = 0; m < members; ++m) {
      const double band_lo = y_base;
      const bool diff = is_differential(m, members, diff_count);
      layout::RoutableArea area;
      area.outline = corridor_outline(spec, x0 - 1.0, x1 + 1.0, band_lo + 0.2);

      if (!diff) {
        // Staggered pre-tuned member: random initial length in the spec's
        // band, bump capacity clamped so bumps never overlap.
        const double frac =
            workload::uniform_real(rng, spec.initial_frac_lo, spec.initial_frac_hi);
        const double bump_h = spec.band_height * 0.26;
        const double bump_w = 2.5;
        const int k_max =
            std::max(1, static_cast<int>(std::floor(straight / (1.6 * bump_w))) - 1);
        double extra =
            std::min(std::max(0.0, frac * target - straight), 2.0 * bump_h * k_max);
        // A single bump realizes extra/2 per leg; below 2*d_protect the legs
        // would be illegal stubs, so start straight instead.
        if (extra < 2.0 * spec.rules.protect) extra = 0.0;
        const double y = band_lo + spec.band_height * 0.48;
        layout::Trace t;
        t.name = group.name + "_m" + std::to_string(m);
        t.width = spec.rules.trace_width;
        t.path = workload::pretuned_path(x0, x1, y, extra, bump_h, bump_w);
        sprinkle_vias(sc.layout, area, rng, spec, t.path, x0, x1, band_lo + 0.4,
                      band_lo + member_band - 0.4);
        const layout::TraceId tid = sc.layout.add_trace(t);
        group.members.push_back({layout::MemberKind::SingleEnded, tid});
        sc.layout.set_routable_area(tid, std::move(area));
      } else {
        // Differential member: straight decoupled pair whose pitch widens
        // per DRA section, with one tiny pattern on traceN that MSDTW must
        // filter out.
        const double y = band_lo + 0.2 + spec.band_height * 0.5;
        layout::DiffPair pair;
        pair.name = group.name + "_d" + std::to_string(m);
        pair.pitch = spec.pair_pitch;
        pair.positive.width = spec.rules.trace_width;
        pair.negative.width = spec.rules.trace_width;
        pair.positive.path = pair_sub_path(spec, x0, x1, y, +1.0);
        pair.negative.path = pair_sub_path(spec, x0, x1, y, -1.0);
        add_tiny_pattern(pair.negative.path, spec.rules.protect,
                         x0 + 0.25 * straight);
        // The restored pair can swing anywhere inside the band the median's
        // virtual width covers — in wide DRA sections that band is the last
        // section's full pitch, so vias keep that much extra clearance.
        const double band_reach =
            spec.pair_pitch * section_scale(spec, std::max(1, spec.dra_sections) - 1);
        sprinkle_vias(sc.layout, area, rng, spec, pair.positive.path, x0, x1,
                      band_lo + 0.4, band_lo + member_band - 0.4, band_reach);
        const layout::TraceId pid = sc.layout.add_pair(pair);
        group.members.push_back({layout::MemberKind::Differential, pid});
        sc.layout.set_routable_area(pid, std::move(area));
      }
      y_base += member_band;
    }
    sc.layout.add_group(std::move(group));
  }
  sc.layout.set_board(Polygon::rect({{x0 - 5.0, -5.0}, {x1 + 5.0, y_base + 5.0}}));

  // Any-direction: rotate the whole board about the origin.
  if (spec.corridor_angle_deg != 0.0) {
    const double a = spec.corridor_angle_deg * M_PI / 180.0;
    const double c = std::cos(a), s = std::sin(a);
    geom::Polygon board = sc.layout.board();
    rotate_points(board.points(), c, s);
    sc.layout.set_board(std::move(board));
    for (const auto& [id, t] : sc.layout.traces()) {
      (void)t;
      rotate_points(sc.layout.trace(id).path.points(), c, s);
    }
    for (auto& [id, p] : sc.layout.pairs()) {
      (void)p;
      rotate_points(sc.layout.pair(id).positive.path.points(), c, s);
      rotate_points(sc.layout.pair(id).negative.path.points(), c, s);
    }
    // Obstacles, then every area outline/hole (areas are stored per trace).
    for (std::size_t oi = 0; oi < sc.layout.obstacle_count(); ++oi) {
      geom::Polygon shape = sc.layout.obstacle(oi).shape;
      rotate_points(shape.points(), c, s);
      sc.layout.set_obstacle_shape(oi, std::move(shape));
    }
    const auto rotate_area = [&](layout::TraceId id) {
      if (const layout::RoutableArea* area = sc.layout.routable_area(id)) {
        layout::RoutableArea rotated = *area;
        rotate_points(rotated.outline.points(), c, s);
        for (Polygon& h : rotated.holes) rotate_points(h.points(), c, s);
        sc.layout.set_routable_area(id, std::move(rotated));
      }
    };
    for (const auto& [id, t] : sc.layout.traces()) {
      (void)t;
      rotate_area(id);
    }
    for (const auto& [id, p] : sc.layout.pairs()) {
      (void)p;
      rotate_area(id);
    }
  }
  return sc;
}

}  // namespace lmr::scenario
