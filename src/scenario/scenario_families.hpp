#pragma once
/// \file scenario_families.hpp
/// Named scenario families — the benchmark suite's workload catalogue.
///
/// A family is a list of `(spec, seed)` cases exercising one stress axis:
///
///  * `multi_group`    — several matching groups on one board, batched
///                       through the facade group by group;
///  * `mixed_se_diff`  — groups mixing single-ended and differential
///                       members (the pair path and the DP path in one run);
///  * `pair_corridors` — multi-DRA differential corridors whose pitch steps
///                       up per section, forcing MSDTW multi-scale rounds;
///  * `obstacle_sweep` — via-density sweep over randomized corridors (the
///                       axis that defeats fixed-geometry tuners);
///  * `any_direction`  — rotated corridors (no axis-aligned assumption);
///  * `saturated`      — targets far beyond corridor capacity: must stay
///                       DRC-clean even though matching is impossible;
///  * `table1`         — the fixed Table I workload cases, re-exported so
///                       the paper benchmark reports through the same
///                       harness.
///
/// Every family has a smoke variant (tiny member counts / fewer cases) for
/// CI and unit tests.

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/scenario_generator.hpp"

namespace lmr::scenario {

/// One concrete benchmark case of a family.
struct FamilyCase {
  ScenarioSpec spec;
  std::uint64_t seed = 0;
  /// > 0: materialize from `workload::table1_case(k)` instead of the
  /// generator (the fixed paper workload re-exported as a family).
  int table1_case = 0;
  /// False only for cases with documented pre-existing DRC debt (Table I
  /// case 5's dense differential restore path, see ROADMAP); per-case so
  /// one indebted case never exempts its siblings from the gate.
  bool expect_drc_clean = true;
};

/// A named list of cases with its pass criteria.
///
/// Exact matching is not a meaningful gate: the paper's own Table I ends at
/// few-percent Max error, and any scenario can leave a residual below the
/// minimum pattern gain (2 * d_protect) that no legal pattern can close. The
/// gate is therefore a Max-error ceiling plus the DRC verdict.
struct Family {
  std::string name;
  std::string description;
  std::vector<FamilyCase> cases;
  /// Pass ceiling for every group's Eq. 19 Max error; <= 0 disables the
  /// gate (saturated corridors measure capacity, not matching).
  double max_error_gate_pct = 5.0;
};

/// All standard families, in report order. `smoke` shrinks every family to
/// CI size (seconds, not minutes).
[[nodiscard]] std::vector<Family> standard_families(bool smoke);

/// Names of the standard families, in report order.
[[nodiscard]] std::vector<std::string> family_names();

/// Look up one standard family by name. Throws std::out_of_range for
/// unknown names.
[[nodiscard]] Family family(const std::string& name, bool smoke);

/// Build the concrete board of one family case (generator or wrapped
/// workload case).
[[nodiscard]] Scenario materialize(const FamilyCase& fc);

/// The saturated-corridor spec reproducing the extender saturation corner
/// (far-unreachable target in a narrow corridor); exported separately so
/// regression tests use exactly the benchmarked scenario.
[[nodiscard]] ScenarioSpec saturated_corridor_spec();

}  // namespace lmr::scenario
