#include "scenario/fault_storm.hpp"

#include <cstddef>
#include <initializer_list>
#include <random>
#include <string>
#include <utility>

namespace lmr::scenario {

namespace {

/// Seeded pick in [0, n). mt19937_64's output sequence is specified by the
/// standard, so modulo reduction is portable (distribution objects are not).
std::size_t pick(std::mt19937_64& rng, std::size_t n) {
  return static_cast<std::size_t>(rng() % n);
}

/// A board slot distinct from every element of `taken`.
std::size_t pick_other(std::mt19937_64& rng, std::size_t n,
                       std::initializer_list<std::size_t> taken) {
  for (;;) {
    const std::size_t b = pick(rng, n);
    bool clash = false;
    for (const std::size_t t : taken) clash = clash || b == t;
    if (!clash) return b;
  }
}

ServiceStormCase fault_service_case(bool smoke, std::uint64_t salt) {
  // Same slot recipe as the service storms but smaller: the fault plane,
  // not throughput, is under test here. No mid-stream eviction — the
  // quarantine machinery owns session teardown in these storms, and
  // eviction-under-fault has its own dedicated tests.
  ServiceStormCase c;
  const std::size_t boards = smoke ? 4 : 6;
  const int edits = smoke ? 4 : 6;
  for (std::size_t b = 0; b < boards; ++b) {
    const bool mixed = b % 2 == 1;
    EditStormCase bc;
    bc.base = family(mixed ? "mixed_se_diff" : "multi_group", /*smoke=*/true)
                  .cases.at(0);
    bc.base.seed += 101 * b;
    bc.name = "b" + std::to_string(b) + "/" + (mixed ? "mixed_se_diff" : "multi_group");
    bc.edits = edits;
    bc.edit_seed = (smoke ? 9700 : 9800) + salt * 1000 + 17 * b;
    c.boards.push_back(std::move(bc));
  }
  c.stream_seed = (smoke ? 7501 : 7601) + salt;
  c.sync_every = smoke ? 10 : 12;
  return c;
}

std::string size_tag(bool smoke) { return smoke ? "-4x4" : "-6x6"; }

}  // namespace

std::vector<FaultStormCase> fault_storm_cases(bool smoke,
                                              std::uint64_t seed_override) {
  std::vector<FaultStormCase> cases;

  {
    FaultStormCase c;
    c.name = "fault_storm/transient" + size_tag(smoke);
    c.service = fault_service_case(smoke, /*salt=*/0);
    c.service.name = c.name;
    c.fault_seed = 4242;
    c.kind = FaultStormKind::Transient;
    cases.push_back(std::move(c));
  }
  {
    FaultStormCase c;
    c.name = "fault_storm/timeout" + size_tag(smoke);
    c.service = fault_service_case(smoke, /*salt=*/1);
    c.service.name = c.name;
    c.fault_seed = 4343;
    c.kind = FaultStormKind::Timeout;
    // The Delay must comfortably overshoot the budget, and the budget must
    // comfortably cover a clean smoke-board route (milliseconds), so the
    // ONLY attempt that times out is the one the Delay stalls.
    c.deadline_s = 0.35;
    c.delay_s = 0.9;
    cases.push_back(std::move(c));
  }
  {
    FaultStormCase c;
    c.name = "fault_storm/quarantine" + size_tag(smoke);
    c.service = fault_service_case(smoke, /*salt=*/2);
    c.service.name = c.name;
    c.fault_seed = 4444;
    c.kind = FaultStormKind::Quarantine;
    cases.push_back(std::move(c));
  }

  if (seed_override != 0) {
    for (FaultStormCase& c : cases) c.fault_seed = seed_override;
  }
  return cases;
}

FaultStorm materialize_fault_storm(const FaultStormCase& c) {
  FaultStorm s;
  s.spec = c;
  s.storm = materialize_service_storm(c.service);

  const std::size_t boards = s.storm.boards.size();
  const auto name_of = [&s](std::size_t b) -> const std::string& {
    return s.storm.boards[b].spec.name;
  };
  const auto edits_of = [&s](std::size_t b) {
    return s.storm.boards[b].edits.size();
  };

  std::mt19937_64 rng(c.fault_seed);
  switch (c.kind) {
    case FaultStormKind::Transient: {
      // Two one-shot edit-lowering failures on distinct boards plus one
      // one-shot initial-route failure on a third: every window is count=1,
      // so the first retry rung absorbs each and nothing may quarantine.
      const std::size_t a = pick(rng, boards);
      const std::size_t b = pick_other(rng, boards, {a});
      const std::size_t r = pick_other(rng, boards, {a, b});
      s.rules.push_back({fault::apply_site(name_of(a)),
                         /*nth=*/1 + static_cast<std::uint64_t>(pick(rng, edits_of(a))),
                         /*count=*/1});
      s.rules.push_back({fault::apply_site(name_of(b)),
                         /*nth=*/1 + static_cast<std::uint64_t>(pick(rng, edits_of(b))),
                         /*count=*/1});
      s.rules.push_back({fault::extend_site(name_of(r), 0, 0), /*nth=*/1,
                         /*count=*/1});
      break;
    }
    case FaultStormKind::Timeout: {
      // Stall one board's very first route past its deadline. Occurrence 1
      // of extend:<board>/g0/m0 is always the initial route, so the stall —
      // and therefore the RouteTimeout — lands on attempt 1 at every thread
      // count; the retry runs with the Delay window already spent.
      s.timeout_board = pick(rng, boards);
      s.rules.push_back({fault::extend_site(name_of(s.timeout_board), 0, 0),
                         /*nth=*/1, /*count=*/1, fault::FaultAction::Delay,
                         c.delay_s});
      break;
    }
    case FaultStormKind::Quarantine: {
      // Board Q: its second edit-lowering attempt fails max_attempts times
      // in a row — enough to walk the whole ladder (retry, degraded retry,
      // quarantine) with exactly one edit committed to last-good. Board R:
      // its initial route fails max_attempts times, so it quarantines
      // without ever being routed. Both windows are exhausted by the time
      // the storm runner resurrects, so the replayed suffix converges.
      const std::size_t q = pick(rng, boards);
      const std::size_t r = pick_other(rng, boards, {q});
      s.quarantine_boards = {q, r};
      s.rules.push_back({fault::apply_site(name_of(q)), /*nth=*/2,
                         /*count=*/c.max_attempts});
      s.rules.push_back({fault::extend_site(name_of(r), 0, 0), /*nth=*/1,
                         /*count=*/c.max_attempts});
      break;
    }
  }
  return s;
}

}  // namespace lmr::scenario
