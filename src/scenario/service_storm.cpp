#include "scenario/service_storm.hpp"

#include <algorithm>
#include <random>
#include <utility>

#include "workload/synth.hpp"

namespace lmr::scenario {

namespace {

/// One board's edit-storm case for slot `b` of a service storm: the two
/// storm bases alternate (so the stream mixes single-ended-only and mixed
/// SE/diff boards) and the generator/edit seeds vary per slot — N genuinely
/// different boards, not N copies. Base boards are always smoke-sized: the
/// service tier is stressed by board *count*, not board size.
EditStormCase board_case(std::size_t b, int edits, std::uint64_t seed0) {
  const bool mixed = b % 2 == 1;
  EditStormCase c;
  c.base = family(mixed ? "mixed_se_diff" : "multi_group", /*smoke=*/true).cases.at(0);
  c.base.seed += 101 * b;
  c.name = "b" + std::to_string(b) + "/" + (mixed ? "mixed_se_diff" : "multi_group");
  c.edits = edits;
  c.edit_seed = seed0 + 17 * b;
  return c;
}

bool event_before(const ServiceStormEvent& a, const ServiceStormEvent& b) {
  if (a.at_s != b.at_s) return a.at_s < b.at_s;
  return a.board < b.board;
}

}  // namespace

std::vector<ServiceStormCase> service_storm_cases(bool smoke) {
  std::vector<ServiceStormCase> cases;
  ServiceStormCase c;
  const std::size_t boards = smoke ? 8 : 10;
  const int edits = smoke ? 4 : 8;
  c.name = smoke ? "service_storm/smoke-8x4" : "service_storm/full-10x8";
  for (std::size_t b = 0; b < boards; ++b) {
    c.boards.push_back(board_case(b, edits, smoke ? 9500 : 9600));
  }
  c.stream_seed = smoke ? 7301 : 7401;
  // Drain roughly every 2.5 × boards events; evict every idle session at
  // the stream midpoint so the second half replays through thawed boards.
  c.sync_every = smoke ? 20 : 25;
  c.evict_at = boards * static_cast<std::size_t>(edits) / 2;
  cases.push_back(std::move(c));
  return cases;
}

ServiceStorm materialize_service_storm(const ServiceStormCase& c) {
  ServiceStorm storm;
  storm.spec = c;
  for (const EditStormCase& bc : c.boards) {
    storm.boards.push_back(materialize_storm(bc));
  }

  // Per-board monotone timestamps with a bursty gap mix: ~35% of gaps are
  // near-zero (a same-board burst the service should coalesce), the rest
  // are long pauses that let other boards' events interleave.
  std::mt19937_64 rng(c.stream_seed);
  for (std::size_t b = 0; b < storm.boards.size(); ++b) {
    double t = workload::uniform_real(rng, 0.0, 0.5);  // staggered start
    for (const layout::BoardEdit& edit : storm.boards[b].edits) {
      const bool burst = workload::uniform_real(rng, 0.0, 1.0) < 0.35;
      t += burst ? workload::uniform_real(rng, 0.001, 0.01)
                 : workload::uniform_real(rng, 0.2, 1.0);
      ServiceStormEvent e;
      e.board = b;
      e.edit = edit;
      e.at_s = t;
      storm.stream.push_back(std::move(e));
    }
  }
  std::stable_sort(storm.stream.begin(), storm.stream.end(), event_before);

  if (c.sync_every > 0) {
    for (std::size_t i = c.sync_every - 1; i < storm.stream.size(); i += c.sync_every) {
      storm.stream[i].sync_after = true;
    }
  }
  if (c.evict_at > 0 && c.evict_at <= storm.stream.size()) {
    storm.stream[c.evict_at - 1].evict_after = true;
  }
  return storm;
}

}  // namespace lmr::scenario
