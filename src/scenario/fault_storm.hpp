#pragma once
/// \file fault_storm.hpp
/// Fault-injected service storms — the robustness workload.
///
/// A fault storm is a service storm plus a seeded, synthesized `FaultPlan`
/// rule set targeting it. The synthesis only arms sites whose visit order
/// is serialized per rule regardless of service thread count, so every
/// fire lands on the same logical operation in every replay:
///
///  * `session:apply:<board>` sites — one board's edit-lowering attempts
///    are FIFO (the pump serializes the board), so occurrence k is the
///    k-th lowering attempt no matter how edits coalesce into batches;
///  * first-occurrence `extend:<board>/g0/m0` sites — occurrence 1 is
///    always the board's initial route (reroutes only exist after it).
///
/// Three storm kinds, graded by blast radius:
///  * `Transient` — point failures (one-shot windows) that the retry
///    ladder must absorb: end state identical to a fault-free replay,
///    zero quarantines.
///  * `Timeout` — a Delay rule stalls one board's initial route past its
///    `deadline_s` budget, forcing a deterministic RouteTimeout on the
///    first attempt; the retry runs with the delay window spent.
///  * `Quarantine` — windows sized to `max_attempts` exhaust the ladder
///    on two boards (one mid-edit, one during its initial route); both
///    must serve their last-good state, then recover via resurrect() +
///    replay of the lost suffix.
///
/// Occurrence counters live in the plan, so every replay (each thread
/// count) builds a FRESH FaultPlan from `FaultStorm::rules`.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "scenario/service_storm.hpp"

namespace lmr::scenario {

enum class FaultStormKind : std::uint8_t {
  Transient,   ///< retries absorb everything; no board may quarantine
  Timeout,     ///< a deadline must fire at least once and be recovered
  Quarantine,  ///< two boards must quarantine, then resurrect + replay
};

struct FaultStormCase {
  std::string name;
  ServiceStormCase service;  ///< the underlying boards + event stream
  std::uint64_t fault_seed = 0;
  FaultStormKind kind = FaultStormKind::Transient;
  /// Per-group route budget installed on the timeout board (Timeout kind).
  double deadline_s = 0.0;
  /// How long the Delay rule stalls the timeout board's first route.
  double delay_s = 0.0;
  /// Service retry-ladder depth the storm is tuned for (rule windows that
  /// must exhaust the ladder use exactly this many occurrences).
  std::uint32_t max_attempts = 3;
};

/// A materialized fault storm: the service storm plus the synthesized rule
/// set and the synthesis' targeting decisions (which the gates check).
struct FaultStorm {
  FaultStormCase spec;
  ServiceStorm storm;
  /// Build a fresh fault::FaultPlan from these per replay — counters are
  /// stateful, so sharing one plan across replays would shift every window.
  std::vector<fault::FaultRule> rules;
  /// Board index the deadline applies to (Timeout kind), else npos.
  std::size_t timeout_board = std::numeric_limits<std::size_t>::max();
  /// Board indices the synthesis aims to quarantine (Quarantine kind).
  std::vector<std::size_t> quarantine_boards;
};

/// The standard fault-storm catalogue: one case per kind. Smoke: 4 boards
/// × 4 edits each; full: 6 boards × 6 edits. `seed_override` (non-zero)
/// replaces each case's fault_seed — the reproduction knob behind
/// `bench_suite --fault-storm --seed N`.
[[nodiscard]] std::vector<FaultStormCase> fault_storm_cases(
    bool smoke, std::uint64_t seed_override = 0);

/// Materialize the boards/stream and synthesize the seeded rule set.
/// Deterministic: identical (case, seeds) produce identical storms.
[[nodiscard]] FaultStorm materialize_fault_storm(const FaultStormCase& c);

}  // namespace lmr::scenario
