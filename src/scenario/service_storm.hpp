#pragma once
/// \file service_storm.hpp
/// Multi-board edit streams — the RoutingService workload.
///
/// A service storm is N seeded boards, each with its own `edit_storm`
/// script, presented as ONE global timestamped event stream: every event
/// says "at time t, board b receives edit k". Per-board timestamps are
/// monotone with a bursty gap distribution (a run of near-zero gaps
/// followed by a pause), so the merged stream interleaves boards while
/// keeping genuine same-board bursts adjacent — exactly the traffic shape
/// that exercises the service's queueing and coalescing.
///
/// The stream also carries replay markers: `sync_after` events make the
/// replayer drain the service (all boards idle) before continuing, and
/// `evict_after` events make it drain and evict every idle session
/// mid-stream, so thaw-on-next-edit is exercised with the oracle still
/// required to pass. Replays ignore the absolute times (full-speed replay);
/// the timestamps exist to define the interleaving and burstiness
/// deterministically.

#include <cstdint>
#include <string>
#include <vector>

#include "layout/board_edit.hpp"
#include "scenario/edit_storm.hpp"

namespace lmr::scenario {

/// One service-storm case: which boards (each an edit-storm case of its
/// own) and how their scripts interleave.
struct ServiceStormCase {
  std::string name;
  std::vector<EditStormCase> boards;  ///< one edit script per board
  std::uint64_t stream_seed = 0;      ///< drives the timestamp interleave
  /// Drain the service after every `sync_every` events (0 = never): the
  /// oracle needs the final drain anyway; intermediate syncs bound queue
  /// growth and create fresh idle windows.
  std::size_t sync_every = 0;
  /// After event index `evict_at - 1`, drain and evict every idle session
  /// (0 = never). Later events for evicted boards thaw them.
  std::size_t evict_at = 0;
};

/// One event of the merged stream.
struct ServiceStormEvent {
  std::size_t board = 0;  ///< index into ServiceStorm::boards
  layout::BoardEdit edit;
  double at_s = 0.0;       ///< stream time (defines order + burstiness)
  bool sync_after = false;
  bool evict_after = false;
};

/// A materialized service storm: per-board storms (pristine board + edit
/// script each) plus the merged global stream over them.
struct ServiceStorm {
  ServiceStormCase spec;
  std::vector<EditStorm> boards;
  std::vector<ServiceStormEvent> stream;  ///< sorted by at_s
};

/// The standard service-storm catalogue. Smoke: 8 boards × 4 edits; full:
/// 10 boards × 8 edits (both on smoke-sized base boards — the service tier
/// is about many boards, not big ones). Both include mid-stream eviction
/// and periodic syncs.
[[nodiscard]] std::vector<ServiceStormCase> service_storm_cases(bool smoke);

/// Build every board and the merged stream for one case. Deterministic:
/// identical (case, seeds) always produce the identical stream.
[[nodiscard]] ServiceStorm materialize_service_storm(const ServiceStormCase& c);

}  // namespace lmr::scenario
