#pragma once
/// \file scenario_spec.hpp
/// Parameter bundle for the seeded board synthesizer.
///
/// A `(ScenarioSpec, seed)` pair fully determines a generated board: the
/// spec carries every structural knob, the seed drives the (portable,
/// implementation-independent) random stream for obstacle placement and
/// initial-length staggering. The same pair always reproduces the same
/// `layout::Layout` byte for byte — the contract the determinism tests and
/// the tracked benchmark results depend on.

#include <string>

#include "drc/rules.hpp"

namespace lmr::scenario {

/// Structural knobs of one synthetic board. Defaults describe a moderate
/// single-group single-ended corridor board in the Table I style.
struct ScenarioSpec {
  std::string name;           ///< scenario id used in reports

  drc::DesignRules rules{1.2, 0.6, 0.6, 0.0, 0.25};

  // --- corridor geometry ---
  double corridor_length = 130.0;  ///< straight run of every member
  double band_height = 5.0;        ///< per-member corridor height
  double corridor_angle_deg = 0.0; ///< rotate the whole board (any-direction)

  // --- group structure ---
  int groups = 1;                  ///< number of matching groups (stacked)
  int members_per_group = 8;       ///< members per group
  double diff_fraction = 0.0;      ///< fraction of members that are diff pairs
  double pair_pitch = 0.8;         ///< sub-trace centerline pitch (section 1)

  // --- multi-DRA pair corridors ---
  /// Number of Design Rule Areas a pair crosses. With > 1, the corridor and
  /// the pair pitch widen stepwise along the run, so MSDTW must match in
  /// several ascending-rule rounds.
  int dra_sections = 1;
  double dra_width_factor = 2.0;   ///< pitch/corridor widening of the last DRA

  // --- obstacles ---
  int vias_per_band = 12;          ///< target via count per member corridor
  double via_radius = 0.35;        ///< via octagon circumradius

  // --- matching targets ---
  /// Group target = target_fraction * corridor_length. Fractions well above
  /// the corridor's meander capacity produce saturated scenarios that must
  /// stay DRC-clean even though they cannot match.
  double target_fraction = 1.5;
  double initial_frac_lo = 0.63;   ///< initial lengths: low end, rel. target
  double initial_frac_hi = 0.97;   ///< high end (paper's initial band)

  /// Override of the extender's |l_trace - l_target| acceptance band; 0 =
  /// harness default. Rotated corridors need a loose band: their irrational
  /// segment lengths leave a sub-pattern-gain residual that axis-aligned
  /// grids never see.
  double extender_tolerance = 0.0;
};

}  // namespace lmr::scenario
