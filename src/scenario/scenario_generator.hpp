#pragma once
/// \file scenario_generator.hpp
/// Seeded, deterministic board synthesizer.
///
/// Turns a `ScenarioSpec` + seed into a complete `layout::Layout` far beyond
/// the hand-coded workload tables: multi-group boards, mixed single-ended +
/// differential groups, multi-DRA pair corridors (stepwise pitch/corridor
/// widening that forces MSDTW's multi-scale rounds), randomized
/// obstacle-density corridors, any-direction rotation and saturated
/// corridors. All randomness flows through the portable generators in
/// `workload/synth.hpp`, so a `(spec, seed)` pair reproduces the identical
/// layout on every platform.

#include <cstdint>
#include <vector>

#include "layout/layout.hpp"
#include "scenario/scenario_spec.hpp"

namespace lmr::scenario {

/// One generated board, ready for `pipeline::Router`.
struct Scenario {
  ScenarioSpec spec;
  std::uint64_t seed = 0;
  drc::DesignRules rules;          ///< copy of spec.rules (router input)
  layout::Layout layout;           ///< groups + traces/pairs + areas + obstacles
  /// Ascending MSDTW distance-rule set for differential members: one rule
  /// per DRA section ({pitch} for single-DRA boards).
  std::vector<double> pair_rule_set;
};

/// Stateless synthesizer; `generate` may be called concurrently.
class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(ScenarioSpec spec);

  /// Build the board for `seed`. Deterministic: byte-identical geometry for
  /// equal (spec, seed). Throws std::invalid_argument on a degenerate spec
  /// (no members, non-positive corridor).
  [[nodiscard]] Scenario generate(std::uint64_t seed) const;

  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }

 private:
  ScenarioSpec spec_;
};

}  // namespace lmr::scenario
