#pragma once
/// \file edit_storm.hpp
/// Seeded edit scripts over routed boards — the incremental-reroute
/// workload.
///
/// An edit storm is a base scenario plus a deterministic sequence of N
/// user-level edits (via drops, obstacle nudges/removals, group retargets)
/// generated against the pristine board with the same placement-legality
/// rules the board generator itself uses, so the edited board stays in the
/// routable regime. The script is plain data: the bench harness and the
/// oracle tests replay the identical edits on a live `pipeline::Session`
/// and on a fresh pristine copy, and require bit-identical outcomes.
///
/// Generation walks a scratch copy of the layout forward through its own
/// edits (`layout::apply_edit`), so obstacle indices in later edits are
/// valid against the board state they will meet and placement checks see
/// every obstacle dropped so far.

#include <cstdint>
#include <string>
#include <vector>

#include "layout/board_edit.hpp"
#include "scenario/scenario_families.hpp"

namespace lmr::scenario {

/// One storm case: which board, how many edits, which edit stream.
struct EditStormCase {
  std::string name;
  FamilyCase base;             ///< the board to route, then edit
  int edits = 6;               ///< script length
  std::uint64_t edit_seed = 0; ///< drives the (portable) edit stream
};

/// A materialized storm: the pristine board plus the concrete edit script.
struct EditStorm {
  EditStormCase spec;
  Scenario scenario;                     ///< pristine (un-routed) board
  std::vector<layout::BoardEdit> edits;  ///< apply in order
};

/// The standard storm catalogue (smoke shrinks boards and scripts to CI
/// size). Every storm rides on a multi-group or mixed base so incremental
/// re-routes genuinely skip groups.
[[nodiscard]] std::vector<EditStormCase> edit_storm_cases(bool smoke);

/// Build the board and the edit script for one case. Deterministic:
/// identical (case, seeds) always produce the identical script.
[[nodiscard]] EditStorm materialize_storm(const EditStormCase& c);

}  // namespace lmr::scenario
