#include "scenario/edit_storm.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "geom/distance.hpp"
#include "workload/synth.hpp"

namespace lmr::scenario {

namespace {

using geom::Point;
using geom::Polygon;

/// Storm-local view of one grouped member's pristine geometry.
struct MemberView {
  layout::TraceId id = 0;
  layout::MemberKind kind = layout::MemberKind::SingleEnded;
  const layout::RoutableArea* area = nullptr;
};

double dist_to_path(const Point& c, const geom::Polyline& path) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < path.segment_count(); ++s) {
    best = std::min(best, geom::dist_point_segment(c, path.segment(s)));
  }
  return best;
}

/// Placement legality of a via-like obstacle centered at `c` — the board
/// generator's own rule (sprinkle_vias): keep effective_obs + r +
/// 0.55 * effective_gap clear of every pristine member path (pairs add the
/// widest restore band), and 3 r of centroid distance from every existing
/// hole, so the re-extended members can thread past the new obstacle
/// exactly like they thread past generated vias.
bool via_fits(const layout::Layout& scratch, const ScenarioSpec& spec, const Point& c,
              double r) {
  const double base_clear =
      spec.rules.effective_obs() + r + 0.55 * spec.rules.effective_gap();
  const double pair_reach =
      spec.pair_pitch * (spec.dra_sections > 1 ? spec.dra_width_factor : 1.0);
  for (const auto& [id, t] : scratch.traces()) {
    (void)id;
    if (dist_to_path(c, t.path) < base_clear) return false;
  }
  for (const auto& [id, p] : scratch.pairs()) {
    (void)id;
    if (dist_to_path(c, p.positive.path) < base_clear + pair_reach) return false;
    if (dist_to_path(c, p.negative.path) < base_clear + pair_reach) return false;
  }
  for (const auto& [id, area] : scratch.routable_areas()) {
    (void)id;
    for (const Polygon& h : area.holes) {
      if (geom::dist(h.centroid(), c) < 3.0 * r) return false;
    }
  }
  return true;
}

/// Smallest legal group target: the single-ended extender rejects targets
/// below a member's current length, so retargets clamp above every pristine
/// member length (pairs included for symmetry).
double min_group_target(const layout::Layout& scratch, const layout::MatchGroup& g) {
  double len = 0.0;
  for (const layout::GroupMember& m : g.members) {
    if (m.kind == layout::MemberKind::SingleEnded) {
      len = std::max(len, scratch.trace(m.id).length());
    } else {
      const layout::DiffPair& p = scratch.pair(m.id);
      len = std::max({len, p.positive.length(), p.negative.length()});
    }
  }
  return len * 1.02;
}

layout::BoardEdit retarget_edit(const layout::Layout& scratch, std::mt19937_64& rng) {
  const auto g = static_cast<std::size_t>(workload::uniform_real(
      rng, 0.0, static_cast<double>(scratch.groups().size()) - 1e-9));
  const layout::MatchGroup& group = scratch.groups()[g];
  const double factor = workload::uniform_real(rng, 0.98, 1.08);
  layout::BoardEdit e;
  e.kind = layout::BoardEditKind::SetGroupTarget;
  e.group = g;
  e.target = std::max(group.target_length * factor, min_group_target(scratch, group));
  return e;
}

}  // namespace

std::vector<EditStormCase> edit_storm_cases(bool smoke) {
  std::vector<EditStormCase> cases;
  {
    // Several stacked groups: the bread-and-butter incrementality case —
    // most edits land in one band and must re-route only that group.
    EditStormCase c;
    c.base = family("multi_group", smoke).cases.at(0);
    c.name = smoke ? "edit_storm/multi_group-2x3/e6" : "edit_storm/multi_group-3x6/e12";
    c.edits = smoke ? 6 : 12;
    c.edit_seed = smoke ? 9101 : 9201;
    cases.push_back(std::move(c));
  }
  {
    // Mixed single-ended + differential members: storms must drive the pair
    // restore path through reroute too.
    EditStormCase c;
    c.base = family("mixed_se_diff", smoke).cases.at(0);
    c.name = smoke ? "edit_storm/mixed_se_diff-4/e5" : "edit_storm/mixed_se_diff-8/e8";
    c.edits = smoke ? 5 : 8;
    c.edit_seed = smoke ? 9102 : 9202;
    cases.push_back(std::move(c));
  }
  return cases;
}

EditStorm materialize_storm(const EditStormCase& c) {
  EditStorm storm;
  storm.spec = c;
  storm.scenario = materialize(c.base);
  const ScenarioSpec& spec = storm.scenario.spec;

  // The scratch board rolls forward through the script: obstacle indices in
  // later edits are valid against the state they will meet, and placement
  // sees every earlier edit. Trace geometry stays pristine throughout (the
  // scratch is never routed), which is exactly the geometry reroute
  // restores before re-extending.
  layout::Layout scratch = storm.scenario.layout;
  std::mt19937_64 rng(c.edit_seed);

  std::vector<MemberView> members;
  for (const layout::MatchGroup& g : scratch.groups()) {
    for (const layout::GroupMember& m : g.members) {
      members.push_back({m.id, m.kind, scratch.routable_area(m.id)});
    }
  }

  for (int k = 0; k < c.edits; ++k) {
    const double kind_draw = workload::uniform_real(rng, 0.0, 1.0);
    layout::BoardEdit edit;
    bool placed = false;

    if (kind_draw < 0.40) {
      // Drop a via-like octagon into a random member's band.
      const double r = spec.via_radius;
      for (int attempt = 0; attempt < 40 && !placed; ++attempt) {
        const auto mi = static_cast<std::size_t>(workload::uniform_real(
            rng, 0.0, static_cast<double>(members.size()) - 1e-9));
        const geom::Box bb = members[mi].area->outline.bbox();
        const Point cpt{workload::uniform_real(rng, bb.lo.x + 2.0, bb.hi.x - 2.0),
                        workload::uniform_real(rng, bb.lo.y + r + 0.2, bb.hi.y - r - 0.2)};
        if (!members[mi].area->outline.contains(cpt)) continue;
        if (!via_fits(scratch, spec, cpt, r)) continue;
        edit.kind = layout::BoardEditKind::AddObstacle;
        edit.shape = Polygon::regular(cpt, r, 8, M_PI / 8.0);
        edit.name = "storm_via";
        placed = true;
      }
    } else if (kind_draw < 0.65 && scratch.obstacle_count() > 0) {
      // Nudge an existing obstacle, keeping the generator's clearance rule
      // for the destination.
      for (int attempt = 0; attempt < 40 && !placed; ++attempt) {
        const auto oi = static_cast<std::size_t>(workload::uniform_real(
            rng, 0.0, static_cast<double>(scratch.obstacle_count()) - 1e-9));
        const geom::Vec2 d{workload::uniform_real(rng, -2.0, 2.0),
                           workload::uniform_real(rng, -2.0, 2.0)};
        const Polygon& shape = scratch.obstacle(oi).shape;
        const Point dest = shape.centroid() + d;
        const double r = 0.5 * std::max(shape.bbox().width(), shape.bbox().height());
        // Stay inside whichever area holds the obstacle now (hole and
        // obstacle move together; a hole straying out of its outline would
        // stop constraining the member it was punched for).
        bool inside_ok = true;
        for (const auto& [id, area] : scratch.routable_areas()) {
          (void)id;
          if (area.outline.contains(shape.centroid()) && !area.outline.contains(dest)) {
            inside_ok = false;
            break;
          }
        }
        if (!inside_ok || !via_fits(scratch, spec, dest, r)) continue;
        edit.kind = layout::BoardEditKind::MoveObstacle;
        edit.obstacle = oi;
        edit.move = d;
        placed = true;
      }
    } else if (kind_draw < 0.82 && scratch.obstacle_count() > 0) {
      // Remove an obstacle — always legal, frees routing room.
      const auto oi = static_cast<std::size_t>(workload::uniform_real(
          rng, 0.0, static_cast<double>(scratch.obstacle_count()) - 1e-9));
      edit.kind = layout::BoardEditKind::RemoveObstacle;
      edit.obstacle = oi;
      placed = true;
    }
    if (!placed) edit = retarget_edit(scratch, rng);

    layout::apply_edit(scratch, edit);
    storm.edits.push_back(std::move(edit));
  }
  return storm;
}

}  // namespace lmr::scenario
