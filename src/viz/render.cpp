#include "viz/render.hpp"

namespace lmr::viz {

namespace {

const char* kTraceColors[] = {"#e8b339", "#4fc1e9", "#8ce06d", "#ef7fb2",
                              "#f2684b", "#b09af5", "#6fe0c8", "#e0d26f"};

Style trace_style(std::size_t idx, double width) {
  Style st;
  st.stroke = kTraceColors[idx % (sizeof(kTraceColors) / sizeof(kTraceColors[0]))];
  st.stroke_width = width > 0.0 ? width : 0.25;
  return st;
}

Style obstacle_style() {
  Style st;
  st.stroke = "#5a6472";
  st.stroke_width = 0.05;
  st.fill = "#39414d";
  return st;
}

Style area_style() {
  Style st;
  st.stroke = "#46637f";
  st.stroke_width = 0.08;
  st.dash = "0.8,0.5";
  return st;
}

Style board_style() {
  Style st;
  st.stroke = "#2d3640";
  st.stroke_width = 0.2;
  return st;
}

geom::Box viewport_of(const layout::Layout& layout, double margin) {
  geom::Box vp;
  if (!layout.board().empty()) vp.expand(layout.board().bbox());
  for (const auto& [id, t] : layout.traces()) vp.expand(t.path.bbox());
  for (const auto& [id, p] : layout.pairs()) {
    vp.expand(p.positive.path.bbox());
    vp.expand(p.negative.path.bbox());
  }
  for (const auto& o : layout.obstacles()) vp.expand(o.shape.bbox());
  if (vp.empty()) vp = {{0, 0}, {1, 1}};
  return vp.inflated(margin);
}

}  // namespace

bool render_layout(const layout::Layout& layout, const std::string& path,
                   const RenderOptions& opts) {
  SvgWriter svg(viewport_of(layout, opts.margin), opts.pixels_per_unit);
  if (opts.draw_board && !layout.board().empty()) {
    svg.polygon(layout.board(), board_style());
  }
  if (opts.draw_areas) {
    for (const auto& [id, t] : layout.traces()) {
      if (const layout::RoutableArea* area = layout.routable_area(id)) {
        svg.polygon(area->outline, area_style());
      }
    }
  }
  if (opts.draw_obstacles) {
    for (const auto& o : layout.obstacles()) svg.polygon(o.shape, obstacle_style());
  }
  std::size_t idx = 0;
  for (const auto& [id, t] : layout.traces()) {
    svg.polyline(t.path, trace_style(idx++, t.width));
  }
  for (const auto& [id, p] : layout.pairs()) {
    svg.polyline(p.positive.path, trace_style(idx, p.positive.width));
    svg.polyline(p.negative.path, trace_style(idx, p.negative.width));
    ++idx;
  }
  return svg.save(path);
}

bool render_trace_panel(const layout::Trace& trace, const layout::RoutableArea& area,
                        const std::string& path, const RenderOptions& opts) {
  geom::Box vp = area.outline.empty() ? trace.path.bbox() : area.bbox();
  SvgWriter svg(vp.inflated(opts.margin), opts.pixels_per_unit);
  if (!area.outline.empty()) svg.polygon(area.outline, area_style());
  for (const auto& hole : area.holes) svg.polygon(hole, obstacle_style());
  svg.polyline(trace.path, trace_style(0, trace.width));
  return svg.save(path);
}

}  // namespace lmr::viz
