#include "viz/svg.hpp"

#include <fstream>
#include <sstream>

namespace lmr::viz {

namespace {

std::string style_attrs(const Style& st) {
  std::ostringstream os;
  os << "stroke=\"" << st.stroke << "\" stroke-width=\"" << st.stroke_width
     << "\" fill=\"" << st.fill << "\"";
  if (st.opacity < 1.0) os << " opacity=\"" << st.opacity << "\"";
  if (!st.dash.empty()) os << " stroke-dasharray=\"" << st.dash << "\"";
  return os.str();
}

}  // namespace

SvgWriter::SvgWriter(geom::Box viewport, double pixels_per_unit)
    : viewport_(viewport), scale_(pixels_per_unit) {}

geom::Point SvgWriter::map(const geom::Point& p) const {
  return {(p.x - viewport_.lo.x) * scale_, (viewport_.hi.y - p.y) * scale_};
}

void SvgWriter::polyline(const geom::Polyline& pl, const Style& style) {
  if (pl.size() < 2) return;
  std::ostringstream os;
  os << "<polyline points=\"";
  for (const geom::Point& p : pl.points()) {
    const geom::Point m = map(p);
    os << m.x << ',' << m.y << ' ';
  }
  os << "\" " << style_attrs(style) << "/>";
  body_.push_back(os.str());
}

void SvgWriter::polygon(const geom::Polygon& poly, const Style& style) {
  if (poly.size() < 3) return;
  std::ostringstream os;
  os << "<polygon points=\"";
  for (const geom::Point& p : poly.points()) {
    const geom::Point m = map(p);
    os << m.x << ',' << m.y << ' ';
  }
  os << "\" " << style_attrs(style) << "/>";
  body_.push_back(os.str());
}

void SvgWriter::circle(const geom::Point& center, double r, const Style& style) {
  const geom::Point m = map(center);
  std::ostringstream os;
  os << "<circle cx=\"" << m.x << "\" cy=\"" << m.y << "\" r=\"" << r * scale_ << "\" "
     << style_attrs(style) << "/>";
  body_.push_back(os.str());
}

void SvgWriter::line(const geom::Point& a, const geom::Point& b, const Style& style) {
  const geom::Point ma = map(a), mb = map(b);
  std::ostringstream os;
  os << "<line x1=\"" << ma.x << "\" y1=\"" << ma.y << "\" x2=\"" << mb.x << "\" y2=\""
     << mb.y << "\" " << style_attrs(style) << "/>";
  body_.push_back(os.str());
}

void SvgWriter::text(const geom::Point& at, const std::string& s, double size,
                     const std::string& color) {
  const geom::Point m = map(at);
  std::ostringstream os;
  os << "<text x=\"" << m.x << "\" y=\"" << m.y << "\" font-size=\"" << size * scale_
     << "\" fill=\"" << color << "\" font-family=\"sans-serif\">" << s << "</text>";
  body_.push_back(os.str());
}

bool SvgWriter::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  const double w = viewport_.width() * scale_;
  const double h = viewport_.height() * scale_;
  f << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
    << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w << "\" height=\"" << h
    << "\" viewBox=\"0 0 " << w << ' ' << h << "\">\n"
    << "<rect width=\"" << w << "\" height=\"" << h << "\" fill=\"#10141a\"/>\n";
  for (const std::string& cmd : body_) f << cmd << '\n';
  f << "</svg>\n";
  return f.good();
}

}  // namespace lmr::viz
