#pragma once
/// \file svg.hpp
/// Minimal dependency-free SVG writer used to regenerate the paper's display
/// figures (Figs. 14-16). Y axis is flipped so that +y in layout coordinates
/// points up in the rendered image.

#include <string>
#include <vector>

#include "geom/box.hpp"
#include "geom/polygon.hpp"
#include "geom/polyline.hpp"

namespace lmr::viz {

/// Stroke/fill style of one drawing call.
struct Style {
  std::string stroke = "#000000";
  double stroke_width = 0.15;
  std::string fill = "none";
  double opacity = 1.0;
  std::string dash;  ///< e.g. "0.6,0.3"; empty = solid
};

/// Accumulates drawing commands and writes one SVG file.
class SvgWriter {
 public:
  /// `viewport` is the layout-coordinate region shown; `pixels_per_unit`
  /// scales the output.
  explicit SvgWriter(geom::Box viewport, double pixels_per_unit = 10.0);

  void polyline(const geom::Polyline& pl, const Style& style);
  void polygon(const geom::Polygon& poly, const Style& style);
  void circle(const geom::Point& center, double r, const Style& style);
  void line(const geom::Point& a, const geom::Point& b, const Style& style);
  void text(const geom::Point& at, const std::string& s, double size,
            const std::string& color = "#333333");

  /// Write the file; returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  [[nodiscard]] geom::Point map(const geom::Point& p) const;

  geom::Box viewport_;
  double scale_;
  std::vector<std::string> body_;
};

}  // namespace lmr::viz
