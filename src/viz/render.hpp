#pragma once
/// \file render.hpp
/// Canned rendering of layouts in the visual style of the paper's figures:
/// dark board, copper traces, grey obstacles, dashed routable-area borders.

#include <string>

#include "layout/layout.hpp"
#include "viz/svg.hpp"

namespace lmr::viz {

/// Rendering options.
struct RenderOptions {
  double pixels_per_unit = 8.0;
  bool draw_areas = true;
  bool draw_obstacles = true;
  bool draw_board = true;
  double margin = 2.0;  ///< viewport padding in layout units
};

/// Render every trace/pair/obstacle/area of `layout` into `path`.
/// Returns false on I/O failure.
bool render_layout(const layout::Layout& layout, const std::string& path,
                   const RenderOptions& opts = {});

/// Render a single trace with its area and obstacle set — the per-case
/// panels of Fig. 15.
bool render_trace_panel(const layout::Trace& trace, const layout::RoutableArea& area,
                        const std::string& path, const RenderOptions& opts = {});

}  // namespace lmr::viz
