#include "workload/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace lmr::workload {

ErrorStats matching_errors(std::span<const double> lengths, double target) {
  ErrorStats out;
  if (lengths.empty() || target <= 0.0) return out;
  double max_e = 0.0, sum_e = 0.0;
  for (const double l : lengths) {
    // Error magnitude: an overshooting member is as mismatched as an
    // undershooting one, and signed errors would let overshoot cancel
    // undershoot in the average (or hide entirely from the max).
    const double e = std::abs(target - l) / target;
    max_e = std::max(max_e, e);
    sum_e += e;
  }
  out.max_error_pct = 100.0 * max_e;
  out.avg_error_pct = 100.0 * sum_e / static_cast<double>(lengths.size());
  return out;
}

double extension_upper_bound_pct(double original, double extended) {
  if (original <= 0.0) return 0.0;
  return 100.0 * (extended - original) / original;
}

std::vector<double> group_member_lengths(const layout::Layout& l,
                                         std::size_t group_index) {
  std::vector<double> out;
  for (const auto& m : l.groups().at(group_index).members) {
    if (m.kind == layout::MemberKind::SingleEnded) {
      out.push_back(l.trace(m.id).length());
    } else {
      const auto& p = l.pair(m.id);
      out.push_back(std::min(p.positive.path.length(), p.negative.path.length()));
    }
  }
  return out;
}

}  // namespace lmr::workload
