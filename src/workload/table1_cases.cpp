#include "workload/table1_cases.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

#include "geom/offset.hpp"
#include "workload/synth.hpp"

namespace lmr::workload {

namespace {

using geom::Point;
using geom::Polygon;
using geom::Polyline;

/// Sprinkle via octagons into the band above the trace (the bumps occupy
/// the band below), keeping `keep_clear` away from the centerline. This is
/// deliberately a different placement policy from the scenario generator's
/// `sprinkle_vias` (which scatters across the whole band, rejecting against
/// the actual path): Table I wants the free space above the trace
/// fragmented, the "dense" profile that defeats fixed-geometry tuners.
/// Randomness flows through workload::uniform_real so the cases are
/// identical on every platform.
void add_band_vias(layout::Layout& l, layout::RoutableArea& area, std::mt19937_64& rng,
                   int count, double x0, double x1, double y_trace, double y_hi,
                   double keep_clear, double radius) {
  if (y_trace + keep_clear + radius >= y_hi - radius) return;
  int placed = 0, attempts = 0;
  while (placed < count && attempts < count * 30) {
    ++attempts;
    const Point c{uniform_real(rng, x0 + 2.0, x1 - 2.0),
                  uniform_real(rng, y_trace + keep_clear + radius, y_hi - radius)};
    bool clash = false;
    for (const auto& h : area.holes) {
      if (geom::dist(h.centroid(), c) < 3.0 * radius) clash = true;
    }
    if (clash) continue;
    const Polygon via = Polygon::regular(c, radius, 8, M_PI / 8.0);
    area.holes.push_back(via);
    l.add_obstacle({via, "via"});
    ++placed;
  }
}

Table1Case single_ended_case(int id, double target, double band_height, int vias_per_band,
                             std::uint64_t seed) {
  Table1Case c;
  c.id = id;
  c.trace_type = "single-ended";
  c.spacing = "dense";
  c.target = target;
  c.group_size = 8;
  c.rules.gap = 1.2;
  c.rules.obs = 0.6;
  c.rules.protect = 0.6;
  c.rules.trace_width = 0.25;

  std::mt19937_64 rng(seed);
  const double x0 = 0.0, x1 = 130.0;
  const int n = c.group_size;
  c.layout.set_board(Polygon::rect({{-5, -5}, {x1 + 5, n * band_height + 5}}));

  layout::MatchGroup group;
  group.name = "grp" + std::to_string(id);
  group.target_length = target;

  // Pre-tuned bumps live in the lower quarter of the band; vias go above,
  // fragmenting the only space left for matching — the "dense" profile that
  // defeats fixed-geometry tuners.
  const double bump_h = band_height * 0.26;
  for (int i = 0; i < n; ++i) {
    // Initial lengths from ~63 % to ~97 % of target (paper's initial band).
    const double frac = 0.63 + (0.97 - 0.63) * i / (n - 1);
    const double extra = std::max(0.0, frac * target - (x1 - x0));
    const double band_lo = i * band_height;
    const double y = band_lo + band_height * 0.48;
    layout::Trace t;
    t.name = "sig" + std::to_string(i);
    t.width = c.rules.trace_width;
    t.path = pretuned_path(x0, x1, y, extra, bump_h, 2.5);
    const layout::TraceId tid = c.layout.add_trace(t);
    group.members.push_back({layout::MemberKind::SingleEnded, tid});

    layout::RoutableArea area;
    area.outline =
        Polygon::rect({{x0 - 1.0, band_lo + 0.2}, {x1 + 1.0, band_lo + band_height - 0.2}});
    add_band_vias(c.layout, area, rng, vias_per_band, x0, x1, y,
                  band_lo + band_height - 0.2, 1.05, 0.3);
    c.layout.set_routable_area(tid, std::move(area));
  }
  c.layout.add_group(std::move(group));
  return c;
}

Table1Case differential_case(int id, double target, std::uint64_t seed) {
  Table1Case c;
  c.id = id;
  c.trace_type = "differential";
  c.spacing = "sparse";
  c.target = target;
  c.group_size = 4;
  c.rules.gap = 1.2;
  c.rules.obs = 0.6;
  c.rules.protect = 0.6;
  c.rules.trace_width = 0.25;

  std::mt19937_64 rng(seed);
  const double x0 = 0.0, x1 = 130.0;
  const double band_height = 7.0;
  const double pitch = 0.8;
  const int n = c.group_size;
  c.layout.set_board(Polygon::rect({{-5, -5}, {x1 + 5, n * band_height + 5}}));

  layout::MatchGroup group;
  group.name = "grp" + std::to_string(id);
  group.target_length = target;

  for (int i = 0; i < n; ++i) {
    const double frac = 0.70 + (0.96 - 0.70) * i / (n - 1);
    const double extra = std::max(0.0, frac * target - (x1 - x0));
    const double band_lo = i * band_height;
    const double y = band_lo + band_height * 0.5;
    // The offset sub-traces see bump legs `pitch` closer than the median
    // does, so the pre-tuned bumps must keep effective_gap + pitch of free
    // run between them or the pair is born violating its own gap rule (the
    // former case-5 DRC debt: 1.109 < 1.45 between inner-sub legs).
    const double median_edge_gap = c.rules.effective_gap() + pitch;
    const Polyline median =
        pretuned_path(x0, x1, y, extra, band_height * 0.28, 4.0, median_edge_gap);
    // The edge-gap cap trades bump count for height, which h_max no longer
    // bounds — fail loudly if a taller bump (plus the pitch/2 restore
    // offset) would leave the member's band instead of synthesizing a board
    // with overlapping pairs.
    double min_y = y;
    for (const geom::Point& q : median.points()) min_y = std::min(min_y, q.y);
    if (min_y - pitch / 2.0 < band_lo + 0.2) {
      throw std::logic_error("table1 differential case: pre-tuned bumps outgrow the band");
    }
    layout::DiffPair pair;
    pair.name = "diff" + std::to_string(i);
    pair.pitch = pitch;
    pair.positive.width = c.rules.trace_width;
    pair.negative.width = c.rules.trace_width;
    pair.positive.path = geom::offset_polyline(median, +pitch / 2.0);
    pair.negative.path = geom::offset_polyline(median, -pitch / 2.0);
    const layout::TraceId pid = c.layout.add_pair(pair);
    group.members.push_back({layout::MemberKind::Differential, pid});

    layout::RoutableArea area;
    area.outline =
        Polygon::rect({{x0 - 1.0, band_lo + 0.2}, {x1 + 1.0, band_lo + band_height - 0.2}});
    add_band_vias(c.layout, area, rng, 8, x0, x1, y, band_lo + band_height - 0.2, 2.0,
                  0.45);
    c.layout.set_routable_area(pid, std::move(area));
  }
  c.layout.add_group(std::move(group));
  return c;
}

}  // namespace

Table1Case table1_case(int k) {
  switch (k) {
    // Paper targets verbatim; band height and via density tighten from
    // case 4 to case 1 ("dense" spacing).
    case 1: return single_ended_case(1, 205.88, 4.8, 26, 1001);
    case 2: return single_ended_case(2, 199.02, 5.0, 22, 1002);
    case 3: return single_ended_case(3, 187.25, 5.0, 22, 1003);
    case 4: return single_ended_case(4, 186.27, 5.2, 18, 1004);
    case 5: return differential_case(5, 217.32, 1005);
    default: throw std::out_of_range("table1_case: k must be 1..5");
  }
}

}  // namespace lmr::workload
