#pragma once
/// \file table1_cases.hpp
/// Generator for the five Table I cases.
///
/// The paper's Table I benchmark derives from an Allegro sample design we do
/// not have; the generator reproduces its *statistical profile* (see
/// DESIGN.md §3): cases 1-4 are groups of 8 single-ended traces in dense
/// corridors with via clusters, staggered so the initial max error is in the
/// paper's 26-37 % band; case 5 is a group of 4 differential pairs in sparse
/// corridors. Targets are the paper's l_target values verbatim; board
/// geometry is sized so those targets are meaningful.

#include <string>

#include "drc/rules.hpp"
#include "layout/layout.hpp"

namespace lmr::workload {

/// One generated Table I case.
struct Table1Case {
  int id = 0;
  std::string trace_type;  ///< "single-ended" / "differential"
  std::string spacing;     ///< "dense" / "sparse"
  double target = 0.0;     ///< l_target (group target length)
  int group_size = 0;
  drc::DesignRules rules;
  layout::Layout layout;   ///< traces/pairs + obstacles + areas + one group
};

/// Build case k (1..5). Deterministic (internal fixed seeds). Throws
/// std::out_of_range for other k.
[[nodiscard]] Table1Case table1_case(int k);

}  // namespace lmr::workload
