#include "workload/synth.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace lmr::workload {

geom::Polyline pretuned_path(double x0, double x1, double y, double extra, double h_max,
                             double bump_width, double min_edge_gap) {
  using geom::Point;
  if (extra <= 1e-9) return geom::Polyline{{{x0, y}, {x1, y}}};
  int k = static_cast<int>(std::ceil(extra / (2.0 * h_max)));
  k = std::max(k, 1);
  if (min_edge_gap > 0.0) {
    // Keep min_edge_gap of free run between adjacent bumps: the bump period
    // span/(k+1) must cover the bump plus the gap. Fewer, taller bumps.
    const double period = bump_width + min_edge_gap;
    const int k_cap =
        std::max(1, static_cast<int>(std::floor((x1 - x0) / period)) - 1);
    k = std::min(k, k_cap);
  }
  const double h = extra / (2.0 * k);
  const double span = x1 - x0;
  const double pitch = span / (k + 1);
  std::vector<Point> pts{{x0, y}};
  for (int i = 1; i <= k; ++i) {
    const double xc = x0 + i * pitch;
    pts.push_back({xc - bump_width / 2.0, y});
    pts.push_back({xc - bump_width / 2.0, y - h});
    pts.push_back({xc + bump_width / 2.0, y - h});
    pts.push_back({xc + bump_width / 2.0, y});
  }
  pts.push_back({x1, y});
  geom::Polyline pl{std::move(pts)};
  pl.simplify(1e-12);
  return pl;
}

double uniform_real(std::mt19937_64& rng, double lo, double hi) {
  // 53 high bits -> [0, 1) with full double precision.
  const double u = static_cast<double>(rng() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

}  // namespace lmr::workload
