#include "workload/table2_cases.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

namespace lmr::workload {

namespace {

using geom::Point;
using geom::Polygon;
using geom::Polyline;

}  // namespace

Table2Case table2_case(int k) {
  if (k < 1 || k > 6) throw std::out_of_range("table2_case: k must be 1..6");
  Table2Case c;
  c.id = k;
  c.rules.gap = 2.5 + 0.5 * (k - 1);  // the paper's sweep
  c.rules.obs = 1.0;
  c.rules.protect = 1.0;
  c.rules.trace_width = 1.0;
  c.rules.miter = 0.0;

  // Fixed dummy design: one trace crossing a 66-unit corridor through a
  // field of via *columns*. Between columns run vertical lanes ~8.8 wide:
  // wide enough for a full meander at loose d_gap (the fixed-track baseline
  // matches the DP there, like the paper's cases 1-2), but too narrow once
  // the URA width 2*(d_gap + w) exceeds the lane (cases 3+), where only the
  // DP's foot/width adaptation and obstacle wrapping keep finding space.
  // Identical geometry for all six cases; only the DRC tightens.
  const double len = 66.0;
  const double half_h = 34.0;
  c.l_original = len;
  c.trace.id = 1;
  c.trace.name = "dut";
  c.trace.width = c.rules.trace_width;
  c.trace.path = Polyline{{{0.0, 0.0}, {len, 0.0}}};

  c.area.outline = Polygon::rect({{-2.0, -half_h}, {len + 2.0, half_h}});

  std::mt19937_64 rng(4242);
  std::uniform_real_distribution<double> jitter(-0.3, 0.3);
  const double via_r = 1.1;
  for (double x = 8.0; x < len; x += 11.0) {          // columns: lanes between
    for (double row = 5.0; row <= 23.0; row += 4.5) {  // near-wall stacks
      for (const double side : {+1.0, -1.0}) {
        const Point center{x + jitter(rng), side * row + jitter(rng)};
        c.area.holes.push_back(Polygon::regular(center, via_r, 8, M_PI / 8.0));
      }
    }
  }
  return c;
}

}  // namespace lmr::workload
