#pragma once
/// \file metrics.hpp
/// The evaluation metrics of §VI (Eqs. 19 and 20).

#include <cstddef>
#include <span>
#include <vector>

#include "layout/layout.hpp"

namespace lmr::workload {

/// Matching errors of a group (Eq. 19), in percent.
struct ErrorStats {
  double max_error_pct = 0.0;
  double avg_error_pct = 0.0;
};

/// Compute Eq. 19 over final trace lengths against a common target. Errors
/// are magnitudes: overshoot counts like undershoot (signed errors would
/// cancel in the average and overshoot would hide from the max).
[[nodiscard]] ErrorStats matching_errors(std::span<const double> lengths, double target);

/// Extension upper bound (Eq. 20), in percent.
[[nodiscard]] double extension_upper_bound_pct(double original, double extended);

/// Lengths of all members of group `group_index` in member order (for pairs:
/// the min sub-trace length, the paper's conservative reading). Feed into
/// `matching_errors` to evaluate a layout before/after matching.
[[nodiscard]] std::vector<double> group_member_lengths(const layout::Layout& l,
                                                       std::size_t group_index = 0);

}  // namespace lmr::workload
