#pragma once
/// \file metrics.hpp
/// The evaluation metrics of §VI (Eqs. 19 and 20).

#include <span>

namespace lmr::workload {

/// Matching errors of a group (Eq. 19), in percent.
struct ErrorStats {
  double max_error_pct = 0.0;
  double avg_error_pct = 0.0;
};

/// Compute Eq. 19 over final trace lengths against a common target.
[[nodiscard]] ErrorStats matching_errors(std::span<const double> lengths, double target);

/// Extension upper bound (Eq. 20), in percent.
[[nodiscard]] double extension_upper_bound_pct(double original, double extended);

}  // namespace lmr::workload
