#pragma once
/// \file table2_cases.hpp
/// Generator for the six Table II ablation cases: a "dummy design with
/// narrow space between dense vias" (§VI-B). One trace crosses a via field;
/// d_gap is swept 2.5 -> 5.0 with fixed trace width and original length,
/// and the extension upper bound (Eq. 20) is measured with the DP engine
/// versus the fixed-track baseline.

#include "drc/rules.hpp"
#include "layout/routable_area.hpp"
#include "layout/trace.hpp"

namespace lmr::workload {

/// One generated Table II case.
struct Table2Case {
  int id = 0;
  drc::DesignRules rules;      ///< gap swept per case
  double l_original = 0.0;     ///< trace length before extension
  layout::Trace trace;
  layout::RoutableArea area;   ///< corridor with dense via holes
};

/// Build case k (1..6): d_gap = 2.5 + 0.5 * (k - 1). Deterministic.
[[nodiscard]] Table2Case table2_case(int k);

}  // namespace lmr::workload
