#pragma once
/// \file diffpair_cases.hpp
/// Decoupled differential-pair scenarios for the MSDTW experiments
/// (Figs. 9-13, 16): imperfectly coupled sub-traces with corner node
/// clusters, a tiny intra-pair compensation pattern, and a second DRA where
/// the pair widens.

#include <vector>

#include "drc/rules.hpp"
#include "layout/routable_area.hpp"
#include "layout/trace.hpp"

namespace lmr::workload {

/// One decoupled-pair scenario.
struct DiffPairCase {
  layout::DiffPair pair;
  drc::DesignRules sub_rules;
  std::vector<double> rule_set;   ///< ascending distance rules (MSDTW's R)
  layout::RoutableArea area;
  int tiny_pattern_nodes = 0;     ///< nodes that MSDTW must filter
};

/// The canonical decoupled pair (Fig. 9 profile): narrow section with pitch
/// 0.8 carrying a tiny pattern on traceN plus a short-segment corner
/// cluster on traceP, then a wide section with pitch 2.4 (second DRA).
[[nodiscard]] DiffPairCase decoupled_pair_case();

/// A cleanly coupled pair (control case: MSDTW must match every node).
[[nodiscard]] DiffPairCase coupled_pair_case();

}  // namespace lmr::workload
