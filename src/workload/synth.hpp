#pragma once
/// \file synth.hpp
/// Shared board-synthesis primitives used by the fixed workload generators
/// (Table I/II) and the seeded scenario generator (`lmr::scenario`).

#include <cstdint>
#include <random>

#include "geom/polyline.hpp"

namespace lmr::workload {

/// Pre-routed path whose length exceeds the straight run by `extra`: a row
/// of k rectangular bumps of height extra/(2k) dropped below the centerline
/// — the profile of a hand-tuned bus member before final length matching.
/// Bump height is capped at `h_max` (k grows instead). Deterministic.
[[nodiscard]] geom::Polyline pretuned_path(double x0, double x1, double y, double extra,
                                           double h_max, double bump_width);

/// Uniform double in [lo, hi) driven only by raw mt19937_64 output, so the
/// value stream is identical on every platform (std::uniform_real_distribution
/// is implementation-defined and would break the bit-identical-results
/// contract of tracked benchmark JSON).
[[nodiscard]] double uniform_real(std::mt19937_64& rng, double lo, double hi);

}  // namespace lmr::workload
