#pragma once
/// \file synth.hpp
/// Shared board-synthesis primitives used by the fixed workload generators
/// (Table I/II) and the seeded scenario generator (`lmr::scenario`).

#include <cstdint>
#include <random>

#include "geom/polyline.hpp"

namespace lmr::workload {

/// Pre-routed path whose length exceeds the straight run by `extra`: a row
/// of k rectangular bumps of height extra/(2k) dropped below the centerline
/// — the profile of a hand-tuned bus member before final length matching.
/// Bump height is capped at `h_max` (k grows instead). Deterministic.
///
/// `min_edge_gap` > 0 additionally caps k so adjacent bump legs keep at
/// least that much free run between them, growing the bumps taller instead
/// (beyond `h_max`). Differential workloads need it: the legs of the inner
/// sub-trace of a pair pre-tuned from this path close in by the full pair
/// pitch, so its legs must keep effective_gap + pitch to restore DRC-clean.
[[nodiscard]] geom::Polyline pretuned_path(double x0, double x1, double y, double extra,
                                           double h_max, double bump_width,
                                           double min_edge_gap = 0.0);

/// Uniform double in [lo, hi) driven only by raw mt19937_64 output, so the
/// value stream is identical on every platform (std::uniform_real_distribution
/// is implementation-defined and would break the bit-identical-results
/// contract of tracked benchmark JSON).
[[nodiscard]] double uniform_real(std::mt19937_64& rng, double lo, double hi);

}  // namespace lmr::workload
