#include "workload/diffpair_cases.hpp"

#include <cmath>

namespace lmr::workload {

namespace {

using geom::Point;
using geom::Polygon;
using geom::Polyline;

drc::DesignRules sub_rules() {
  drc::DesignRules r;
  r.gap = 0.6;
  r.obs = 0.4;
  r.protect = 0.3;
  r.trace_width = 0.15;
  return r;
}

}  // namespace

DiffPairCase decoupled_pair_case() {
  DiffPairCase c;
  c.sub_rules = sub_rules();
  const double p_narrow = 0.8;  // DRA 1 pitch
  const double p_wide = 2.4;    // DRA 2 pitch
  c.rule_set = {p_narrow, p_wide};

  // traceP: runs along y = +pitch/2; at x=14 a corner cluster of three short
  // segments stands in for one ideal corner node (Fig. 10a); widens at x=30.
  c.pair.positive.path = Polyline{{
      {0.0, 0.4},
      {6.0, 0.4},
      {13.8, 0.4},          // corner cluster start
      {14.0, 0.42},         // short kink segment (machine-precision corner)
      {14.2, 0.4},          // cluster end
      {22.0, 0.4},
      {30.0, 0.4},
      {34.0, 1.2},          // transition into the wide DRA
      {40.0, 1.2},
      {48.0, 1.2},
  }};

  // traceN: along y = -pitch/2 with a tiny compensation pattern at x=18
  // (Fig. 10b): four extra nodes that plain DTW would mis-match.
  c.pair.negative.path = Polyline{{
      {0.0, -0.4},
      {6.0, -0.4},
      {14.0, -0.4},
      {17.7, -0.4},
      {17.7, -0.7},         // tiny pattern (depth 0.3, width 0.6)
      {18.3, -0.7},
      {18.3, -0.4},
      {22.0, -0.4},
      {30.0, -0.4},
      {34.0, -1.2},
      {40.0, -1.2},
      {48.0, -1.2},
  }};
  c.tiny_pattern_nodes = 4;

  c.pair.name = "decoupled";
  c.pair.pitch = p_narrow;
  c.pair.positive.width = c.sub_rules.trace_width;
  c.pair.negative.width = c.sub_rules.trace_width;
  c.pair.breakout_nodes = 1;

  c.area.outline = Polygon::rect({{-2.0, -10.0}, {50.0, 10.0}});
  return c;
}

DiffPairCase coupled_pair_case() {
  DiffPairCase c;
  c.sub_rules = sub_rules();
  c.rule_set = {0.8};
  c.pair.name = "coupled";
  c.pair.pitch = 0.8;
  c.pair.positive.width = c.sub_rules.trace_width;
  c.pair.negative.width = c.sub_rules.trace_width;
  c.pair.positive.path = Polyline{{{0, 0.4}, {10, 0.4}, {10, 8.4}, {24, 8.4}}};
  c.pair.negative.path = Polyline{{{0, -0.4}, {10.8, -0.4}, {10.8, 7.6}, {24, 7.6}}};
  c.area.outline = Polygon::rect({{-2.0, -6.0}, {28.0, 14.0}});
  return c;
}

}  // namespace lmr::workload
