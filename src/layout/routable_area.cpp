#include "layout/routable_area.hpp"

namespace lmr::layout {

bool RoutableArea::contains(const geom::Point& p) const {
  if (!outline.contains(p)) return false;
  for (const geom::Polygon& h : holes) {
    if (h.contains(p, /*boundary_inside=*/false)) return false;
  }
  return true;
}

double RoutableArea::free_area() const {
  double a = outline.area();
  for (const geom::Polygon& h : holes) a -= h.area();
  return a;
}

}  // namespace lmr::layout
