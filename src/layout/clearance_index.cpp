#include "layout/clearance_index.hpp"

#include <algorithm>
#include <cmath>

#include "core/contract.hpp"
#include "geom/distance.hpp"

namespace lmr::layout {

ClearanceIndex::ClearanceIndex(const drc::DesignRules& rules, DrcCheckOptions opts,
                               ClearanceBackend backend)
    : rules_(rules), opts_(opts), backend_(backend) {}

std::uint32_t ClearanceIndex::add_slot(double width, std::uint32_t net) {
  LMR_REQUIRE(std::isfinite(width) && width >= 0.0,
              "slot width sizes the sampling pitch and query windows");
  Slot s;
  s.net = net;
  s.width = width;
  max_width_ = std::max(max_width_, width);
  slots_.push_back(std::move(s));
  slot_epoch_.push_back(1);
  LMR_ASSERT(slot_epoch_.size() == slots_.size(),
             "slot/epoch vectors march in lockstep");
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void ClearanceIndex::insert(std::uint32_t slot, const Trace& trace) {
  LMR_REQUIRE(slot < slots_.size(), "insert() into an undeclared slot");
  Slot& s = slots_[slot];
  s.trace = &trace;
  s.samples.clear();
  s.sample_seg.clear();
  ++slot_epoch_[slot];
  // The grid backend stores whole segments straight from the trace at sweep
  // time — no samples, making insert O(1). (If Auto later flips a tree-mode
  // index to grid, the already-computed samples of earlier slots simply go
  // unused.)
  if (use_grid()) return;
  // Sample points along every segment. A segment within distance d of
  // another has a sample of it within d + pitch/2 of the closest approach,
  // so the sweep's query window inflated by gap_max + pitch/2 (+ tolerance)
  // never misses a candidate. The pitch trades tree size against window hit
  // count; it depends only on the declared widths, so insertion order can
  // never change the samples.
  const double gap_max = rules_.gap + max_width_;
  const double pitch = std::max(gap_max, rules_.protect);
  const geom::Polyline& path = trace.path;
  for (std::uint32_t seg_idx = 0; seg_idx < path.segment_count(); ++seg_idx) {
    const geom::Segment seg = path.segment(seg_idx);
    const int samples =
        1 + std::max(1, static_cast<int>(std::ceil(seg.length() / pitch)));
    for (int k = 0; k < samples; ++k) {
      const double u = static_cast<double>(k) / (samples - 1);
      s.samples.push_back(seg.a + (seg.b - seg.a) * u);
      s.sample_seg.push_back(seg_idx);
    }
  }
}

void ClearanceIndex::remove(std::uint32_t slot) {
  LMR_REQUIRE(slot < slots_.size(), "remove() of an undeclared slot");
  Slot& s = slots_.at(slot);
  s.trace = nullptr;
  s.samples.clear();
  s.sample_seg.clear();
  ++slot_epoch_[slot];
}

void ClearanceIndex::refresh_cache() const {
  // A slot is stale-in-main when its epoch moved since the main build (or
  // the main build predates the slot). Stale inserted slots get overlay
  // trees; stale removed slots just have their main entries skipped at
  // query time. Once a quarter of the slots carry overlays the per-query
  // overlay scans stop paying for themselves — compact into a fresh main
  // tree instead.
  bool full = cache_built_epoch_.size() != slots_.size();
  if (!full) {
    std::size_t overlaid = 0;
    for (std::uint32_t t = 0; t < slots_.size(); ++t) {
      if (slots_[t].trace != nullptr && slot_epoch_[t] != cache_built_epoch_[t]) {
        ++overlaid;
      }
    }
    full = overlaid * 4 >= slots_.size();
  }

  if (full) {
    cache_segs_.clear();
    std::vector<index::RangeTree2D::Entry> entries;
    for (std::uint32_t t = 0; t < slots_.size(); ++t) {
      const Slot& s = slots_[t];
      if (s.trace == nullptr) continue;
      const auto seg_base = static_cast<std::uint32_t>(cache_segs_.size());
      for (std::uint32_t seg_idx = 0; seg_idx < s.trace->path.segment_count();
           ++seg_idx) {
        cache_segs_.push_back({t, seg_idx});
      }
      for (std::size_t k = 0; k < s.samples.size(); ++k) {
        entries.push_back({s.samples[k], seg_base + s.sample_seg[k]});
      }
    }
    cache_tree_ = index::RangeTree2D{std::move(entries)};
    cache_built_epoch_.assign(slot_epoch_.begin(), slot_epoch_.end());
    overlays_.clear();
    return;
  }

  // Incremental: drop overlays for slots that emptied, refresh overlays for
  // slots whose epoch moved again, add overlays for newly-stale slots.
  std::erase_if(overlays_, [&](const Overlay& ov) {
    return slots_[ov.slot].trace == nullptr;
  });
  for (std::uint32_t t = 0; t < slots_.size(); ++t) {
    const Slot& s = slots_[t];
    if (s.trace == nullptr || slot_epoch_[t] == cache_built_epoch_[t]) continue;
    auto it = std::find_if(overlays_.begin(), overlays_.end(),
                           [&](const Overlay& ov) { return ov.slot == t; });
    if (it != overlays_.end() && it->epoch == slot_epoch_[t]) continue;
    std::vector<index::RangeTree2D::Entry> entries;
    entries.reserve(s.samples.size());
    for (std::size_t k = 0; k < s.samples.size(); ++k) {
      entries.push_back({s.samples[k], s.sample_seg[k]});
    }
    Overlay ov;
    ov.slot = t;
    ov.epoch = slot_epoch_[t];
    ov.tree = index::RangeTree2D{std::move(entries)};
    if (it != overlays_.end()) {
      *it = std::move(ov);
    } else {
      overlays_.push_back(std::move(ov));
    }
  }
  // Deterministic overlay scan order (erase/append above can permute).
  std::sort(overlays_.begin(), overlays_.end(),
            [](const Overlay& a, const Overlay& b) { return a.slot < b.slot; });

  // Epoch agreement: every surviving overlay answers for an inserted slot at
  // exactly that slot's current epoch — the property the stale-in-main skip
  // in sweep() leans on.
  LMR_ASSERT(cache_built_epoch_.size() == slots_.size(),
             "main tree built-epoch vector covers every slot");
  LMR_ASSERT(std::all_of(overlays_.begin(), overlays_.end(),
                         [&](const Overlay& ov) {
                           return ov.slot < slots_.size() &&
                                  slots_[ov.slot].trace != nullptr &&
                                  ov.epoch == slot_epoch_[ov.slot];
                         }),
             "every overlay is current for an inserted slot");
}

void ClearanceIndex::refresh_grid() const {
  if (grid_built_epoch_.empty()) {
    // First grid build: size cells to the worst-case interaction reach, so a
    // query window (segment bbox + gap_max) spans O(1) cells for segments of
    // typical (pattern-scale) length.
    const double cell = std::max(rules_.effective_gap() + max_width_, rules_.protect);
    grid_.reset(cell);
  }
  if (grid_built_epoch_.size() != slots_.size()) {
    grid_built_epoch_.resize(slots_.size(), 0);  // epoch 0 = never built
    grid_ids_.resize(slots_.size());
  }
  for (std::uint32_t t = 0; t < slots_.size(); ++t) {
    if (slot_epoch_[t] == grid_built_epoch_[t]) continue;
    for (const std::uint32_t id : grid_ids_[t]) grid_.remove(id);
    grid_ids_[t].clear();
    const Slot& s = slots_[t];
    if (s.trace != nullptr) {
      const geom::Polyline& path = s.trace->path;
      grid_ids_[t].reserve(path.segment_count());
      for (std::uint32_t seg_idx = 0; seg_idx < path.segment_count(); ++seg_idx) {
        const std::uint64_t payload = (static_cast<std::uint64_t>(t) << 32) | seg_idx;
        grid_ids_[t].push_back(grid_.insert(path.segment(seg_idx), payload));
      }
    }
    grid_built_epoch_[t] = slot_epoch_[t];
  }
  LMR_ASSERT(std::equal(grid_built_epoch_.begin(), grid_built_epoch_.end(),
                        slot_epoch_.begin(), slot_epoch_.end()),
             "grid store agrees with every slot epoch after refresh");
}

std::vector<Violation> ClearanceIndex::sweep() const {
  // A cached result is only comparable to the live epochs when it was taken
  // over the same slot universe (slots are never undeclared, so a shorter
  // result_epochs_ just means new slots arrived since).
  LMR_ASSERT(result_epochs_.empty() || result_epochs_.size() <= slot_epoch_.size(),
             "result epochs never outnumber declared slots");
  // Nothing changed since the last sweep: the cached violations are exact.
  if (slot_epoch_ == result_epochs_) return result_;

  std::size_t inserted = 0;
  for (const Slot& s : slots_) inserted += s.trace != nullptr ? 1 : 0;
  if (inserted < 2) {
    result_.clear();
    result_epochs_ = slot_epoch_;
    return result_;
  }

  const bool grid = use_grid();
  if (grid) {
    refresh_grid();
  } else {
    refresh_cache();
  }

  const double gap_max = rules_.gap + max_width_;

  // Collect candidate pairs: each segment window-queries the main tree and
  // every higher-slot overlay; the pair is keyed on the lower slot index so
  // it is found exactly once. Main-tree entries of stale slots are skipped
  // — their overlay (current geometry) answers for them instead.
  struct Candidate {
    std::uint32_t slot_a, slot_b, seg_a, seg_b;
    bool operator<(const Candidate& o) const {
      if (slot_a != o.slot_a) return slot_a < o.slot_a;
      if (slot_b != o.slot_b) return slot_b < o.slot_b;
      if (seg_a != o.seg_a) return seg_a < o.seg_a;
      return seg_b < o.seg_b;
    }
    bool operator==(const Candidate& o) const {
      return slot_a == o.slot_a && slot_b == o.slot_b && seg_a == o.seg_a &&
             seg_b == o.seg_b;
    }
  };
  std::vector<Candidate> candidates;
  if (grid) {
    // The grid stores whole segments, so the window needs no pitch slack:
    // if two segments are closer than gap (<= gap_max), the other segment
    // itself has a point inside this one's bbox inflated by gap_max.
    const double inflate = gap_max + opts_.tolerance + 1e-9;
    for (std::uint32_t t = 0; t < slots_.size(); ++t) {
      const Slot& s = slots_[t];
      if (s.trace == nullptr) continue;
      const geom::Polyline& path = s.trace->path;
      const std::uint64_t floor = (static_cast<std::uint64_t>(t) + 1) << 32;
      for (std::uint32_t seg_idx = 0; seg_idx < path.segment_count(); ++seg_idx) {
        const geom::Box window = path.segment(seg_idx).bbox().inflated(inflate);
        grid_.visit_above(window, floor, [&](const index::SegGrid::Entry& e) {
          // payload floor already guarantees other.slot > t.
          const auto slot_b = static_cast<std::uint32_t>(e.payload >> 32);
          if (slots_[slot_b].net == s.net) return true;
          candidates.push_back(
              {t, slot_b, seg_idx, static_cast<std::uint32_t>(e.payload & 0xffffffffu)});
          return true;
        });
      }
    }
  } else {
    const double pitch = std::max(gap_max, rules_.protect);
    const double inflate = gap_max + pitch / 2.0 + opts_.tolerance + 1e-9;
    for (std::uint32_t t = 0; t < slots_.size(); ++t) {
      const Slot& s = slots_[t];
      if (s.trace == nullptr) continue;
      const geom::Polyline& path = s.trace->path;
      for (std::uint32_t seg_idx = 0; seg_idx < path.segment_count(); ++seg_idx) {
        const geom::Box window = path.segment(seg_idx).bbox().inflated(inflate);
        cache_tree_.visit(window, [&](const index::RangeTree2D::Entry& e) {
          const SegRef& other = cache_segs_[e.payload];
          // Same slot or same net: not a cross check. The lower slot owns
          // the pair (they see each other's windows symmetrically).
          if (other.slot <= t) return true;
          if (slot_epoch_[other.slot] != cache_built_epoch_[other.slot]) return true;
          if (slots_[other.slot].net == s.net) return true;
          candidates.push_back({t, other.slot, seg_idx, other.seg});
          return true;
        });
        for (const Overlay& ov : overlays_) {
          if (ov.slot <= t || slots_[ov.slot].net == s.net) continue;
          ov.tree.visit(window, [&](const index::RangeTree2D::Entry& e) {
            candidates.push_back({t, ov.slot, seg_idx, e.payload});
            return true;
          });
        }
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

  // Exact checks in the naive loop's order (candidates are sorted by
  // (slot_a, slot_b, seg_a, seg_b), which is that order).
  std::vector<Violation> out;
  for (const Candidate& c : candidates) {
    const Trace& a = *slots_[c.slot_a].trace;
    const Trace& b = *slots_[c.slot_b].trace;
    const double gap = rules_.gap + (a.width + b.width) / 2.0;
    const double d =
        geom::dist_segment_segment(a.path.segment(c.seg_a), b.path.segment(c.seg_b));
    if (d + opts_.tolerance < gap) {
      out.push_back({ViolationKind::TraceGap, a.id, b.id, c.seg_a, c.seg_b, d, gap,
                     "segments of different traces closer than gap"});
    }
  }
  result_ = std::move(out);
  result_epochs_ = slot_epoch_;
  return result_;
}

}  // namespace lmr::layout
