#include "layout/clearance_index.hpp"

#include <algorithm>
#include <cmath>

#include "geom/distance.hpp"
#include "index/range_tree.hpp"

namespace lmr::layout {

ClearanceIndex::ClearanceIndex(const drc::DesignRules& rules, DrcCheckOptions opts)
    : rules_(rules), opts_(opts) {}

std::uint32_t ClearanceIndex::add_slot(double width, std::uint32_t net) {
  Slot s;
  s.net = net;
  s.width = width;
  max_width_ = std::max(max_width_, width);
  slots_.push_back(std::move(s));
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void ClearanceIndex::insert(std::uint32_t slot, const Trace& trace) {
  Slot& s = slots_[slot];
  s.trace = &trace;
  s.samples.clear();
  s.sample_seg.clear();
  // Sample points along every segment. A segment within distance d of
  // another has a sample of it within d + pitch/2 of the closest approach,
  // so the sweep's query window inflated by gap_max + pitch/2 (+ tolerance)
  // never misses a candidate. The pitch trades tree size against window hit
  // count; it depends only on the declared widths, so insertion order can
  // never change the samples.
  const double gap_max = rules_.gap + max_width_;
  const double pitch = std::max(gap_max, rules_.protect);
  const geom::Polyline& path = trace.path;
  for (std::uint32_t seg_idx = 0; seg_idx < path.segment_count(); ++seg_idx) {
    const geom::Segment seg = path.segment(seg_idx);
    const int samples =
        1 + std::max(1, static_cast<int>(std::ceil(seg.length() / pitch)));
    for (int k = 0; k < samples; ++k) {
      const double u = static_cast<double>(k) / (samples - 1);
      s.samples.push_back(seg.a + (seg.b - seg.a) * u);
      s.sample_seg.push_back(seg_idx);
    }
  }
}

std::vector<Violation> ClearanceIndex::sweep() const {
  std::vector<Violation> out;
  std::size_t inserted = 0;
  for (const Slot& s : slots_) inserted += s.trace != nullptr ? 1 : 0;
  if (inserted < 2) return out;

  const double gap_max = rules_.gap + max_width_;
  const double pitch = std::max(gap_max, rules_.protect);

  /// Flat id of one (slot, segment) pair across all inserted slots.
  struct SegRef {
    std::uint32_t slot = 0;
    std::uint32_t seg = 0;
  };
  std::vector<SegRef> segs;
  std::vector<index::RangeTree2D::Entry> entries;
  std::vector<std::uint32_t> seg_base(slots_.size(), 0);
  for (std::uint32_t t = 0; t < slots_.size(); ++t) {
    const Slot& s = slots_[t];
    seg_base[t] = static_cast<std::uint32_t>(segs.size());
    if (s.trace == nullptr) continue;
    for (std::uint32_t seg_idx = 0; seg_idx < s.trace->path.segment_count(); ++seg_idx) {
      segs.push_back({t, seg_idx});
    }
    for (std::size_t k = 0; k < s.samples.size(); ++k) {
      entries.push_back({s.samples[k], seg_base[t] + s.sample_seg[k]});
    }
  }
  const index::RangeTree2D tree{std::move(entries)};

  // Collect candidate pairs: each segment window-queries the tree; the pair
  // is keyed on the lower slot index so it is found exactly once.
  struct Candidate {
    std::uint32_t slot_a, slot_b, seg_a, seg_b;
    bool operator<(const Candidate& o) const {
      if (slot_a != o.slot_a) return slot_a < o.slot_a;
      if (slot_b != o.slot_b) return slot_b < o.slot_b;
      if (seg_a != o.seg_a) return seg_a < o.seg_a;
      return seg_b < o.seg_b;
    }
    bool operator==(const Candidate& o) const {
      return slot_a == o.slot_a && slot_b == o.slot_b && seg_a == o.seg_a &&
             seg_b == o.seg_b;
    }
  };
  std::vector<Candidate> candidates;
  const double inflate = gap_max + pitch / 2.0 + opts_.tolerance + 1e-9;
  for (std::uint32_t t = 0; t < slots_.size(); ++t) {
    const Slot& s = slots_[t];
    if (s.trace == nullptr) continue;
    const geom::Polyline& path = s.trace->path;
    for (std::uint32_t seg_idx = 0; seg_idx < path.segment_count(); ++seg_idx) {
      const geom::Box window = path.segment(seg_idx).bbox().inflated(inflate);
      tree.visit(window, [&](const index::RangeTree2D::Entry& e) {
        const SegRef& other = segs[e.payload];
        // Same slot or same net: not a cross check. The lower slot owns the
        // pair (they see each other's windows symmetrically).
        if (other.slot <= t) return true;
        if (slots_[other.slot].net == s.net) return true;
        candidates.push_back({t, other.slot, seg_idx, other.seg});
        return true;
      });
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

  // Exact checks in the naive loop's order (candidates are sorted by
  // (slot_a, slot_b, seg_a, seg_b), which is that order).
  for (const Candidate& c : candidates) {
    const Trace& a = *slots_[c.slot_a].trace;
    const Trace& b = *slots_[c.slot_b].trace;
    const double gap = rules_.gap + (a.width + b.width) / 2.0;
    const double d =
        geom::dist_segment_segment(a.path.segment(c.seg_a), b.path.segment(c.seg_b));
    if (d + opts_.tolerance < gap) {
      out.push_back({ViolationKind::TraceGap, a.id, b.id, c.seg_a, c.seg_b, d, gap,
                     "segments of different traces closer than gap"});
    }
  }
  return out;
}

}  // namespace lmr::layout
