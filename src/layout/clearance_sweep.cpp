#include "layout/clearance_sweep.hpp"

#include "layout/clearance_index.hpp"

namespace lmr::layout {

std::vector<Violation> cross_clearance_sweep(const std::vector<SweepTrace>& traces,
                                             const drc::DesignRules& rules,
                                             const DrcCheckOptions& opts) {
  // One-shot form of the incremental index: declare every trace (fixing
  // pitch and slot order), insert them all, run the query pass.
  ClearanceIndex index(rules, opts);
  for (const SweepTrace& st : traces) index.add_slot(st.trace->width, st.net);
  for (std::uint32_t i = 0; i < traces.size(); ++i) index.insert(i, *traces[i].trace);
  return index.sweep();
}

}  // namespace lmr::layout
