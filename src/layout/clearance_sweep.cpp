#include "layout/clearance_sweep.hpp"

#include <algorithm>
#include <cmath>

#include "geom/distance.hpp"
#include "index/range_tree.hpp"

namespace lmr::layout {

namespace {

/// Flat id of one (trace, segment) slot across all sweep inputs.
struct SegRef {
  std::uint32_t trace_idx = 0;  ///< index into the input vector
  std::uint32_t seg_idx = 0;
};

}  // namespace

std::vector<Violation> cross_clearance_sweep(const std::vector<SweepTrace>& traces,
                                             const drc::DesignRules& rules,
                                             const DrcCheckOptions& opts) {
  std::vector<Violation> out;
  if (traces.size() < 2) return out;

  double max_width = 0.0;
  for (const SweepTrace& st : traces) max_width = std::max(max_width, st.trace->width);
  // Worst-case centerline gap any pair can require.
  const double gap_max = rules.gap + max_width;

  // Index sample points along every segment. A segment within distance d of
  // another has a sample of it within d + pitch/2 of the closest approach,
  // so a window inflated by gap_max + pitch/2 (+ tolerance) never misses a
  // candidate. The pitch trades tree size against window hit count.
  const double pitch = std::max(gap_max, rules.protect);
  std::vector<SegRef> segs;
  std::vector<index::RangeTree2D::Entry> entries;
  for (std::uint32_t t = 0; t < traces.size(); ++t) {
    const geom::Polyline& path = traces[t].trace->path;
    for (std::uint32_t s = 0; s < path.segment_count(); ++s) {
      const geom::Segment seg = path.segment(s);
      const auto id = static_cast<std::uint32_t>(segs.size());
      segs.push_back({t, s});
      const int samples =
          1 + std::max(1, static_cast<int>(std::ceil(seg.length() / pitch)));
      for (int k = 0; k < samples; ++k) {
        const double u = static_cast<double>(k) / (samples - 1);
        entries.push_back({seg.a + (seg.b - seg.a) * u, id});
      }
    }
  }
  const index::RangeTree2D tree{std::move(entries)};

  // Collect candidate pairs: each segment window-queries the tree; the pair
  // is keyed on the lower input index so it is found exactly once.
  struct Candidate {
    std::uint32_t trace_a, trace_b, seg_a, seg_b;
    bool operator<(const Candidate& o) const {
      if (trace_a != o.trace_a) return trace_a < o.trace_a;
      if (trace_b != o.trace_b) return trace_b < o.trace_b;
      if (seg_a != o.seg_a) return seg_a < o.seg_a;
      return seg_b < o.seg_b;
    }
    bool operator==(const Candidate& o) const {
      return trace_a == o.trace_a && trace_b == o.trace_b && seg_a == o.seg_a &&
             seg_b == o.seg_b;
    }
  };
  std::vector<Candidate> candidates;
  const double inflate = gap_max + pitch / 2.0 + opts.tolerance + 1e-9;
  for (std::uint32_t t = 0; t < traces.size(); ++t) {
    const geom::Polyline& path = traces[t].trace->path;
    for (std::uint32_t s = 0; s < path.segment_count(); ++s) {
      const geom::Box window = path.segment(s).bbox().inflated(inflate);
      tree.visit(window, [&](const index::RangeTree2D::Entry& e) {
        const SegRef& other = segs[e.payload];
        // Same trace or same net: not a cross check. Lower index owns the
        // pair (they see each other's windows symmetrically).
        if (other.trace_idx <= t) return true;
        if (traces[other.trace_idx].net == traces[t].net) return true;
        candidates.push_back({t, other.trace_idx, s, other.seg_idx});
        return true;
      });
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

  // Exact checks in the naive loop's order (candidates are sorted by
  // (trace_a, trace_b, seg_a, seg_b), which is that order).
  for (const Candidate& c : candidates) {
    const Trace& a = *traces[c.trace_a].trace;
    const Trace& b = *traces[c.trace_b].trace;
    const double gap = rules.gap + (a.width + b.width) / 2.0;
    const double d =
        geom::dist_segment_segment(a.path.segment(c.seg_a), b.path.segment(c.seg_b));
    if (d + opts.tolerance < gap) {
      out.push_back({ViolationKind::TraceGap, a.id, b.id, c.seg_a, c.seg_b, d, gap,
                     "segments of different traces closer than gap"});
    }
  }
  return out;
}

}  // namespace lmr::layout
