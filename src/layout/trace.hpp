#pragma once
/// \file trace.hpp
/// Traces, differential pairs and matching groups (§II concepts).

#include <cstdint>
#include <string>
#include <vector>

#include "geom/polyline.hpp"

namespace lmr::layout {

using TraceId = std::uint32_t;

/// A routed signal trace: connected segments with a width. "Trace of a
/// signal consisting of connected segments in PCB layout, also indicated by
/// net or wire" (§II).
struct Trace {
  TraceId id = 0;
  std::string name;
  geom::Polyline path;
  double width = 0.0;

  [[nodiscard]] double length() const { return path.length(); }
};

/// A differential pair: two coupled sub-traces with a nominal centerline
/// pitch (the "distance rule" r of §V-B).
struct DiffPair {
  TraceId id = 0;
  std::string name;
  Trace positive;  ///< traceP
  Trace negative;  ///< traceN
  double pitch = 0.0;

  /// Number of leading vertices on each sub-trace forming the breakout that
  /// MSDTW preserves unmatched (§V-A: "except the preserved breakout part").
  std::size_t breakout_nodes = 0;
};

/// Kind discriminator for group members.
enum class MemberKind { SingleEnded, Differential };

/// Reference to one member of a matching group.
struct GroupMember {
  MemberKind kind = MemberKind::SingleEnded;
  TraceId id = 0;
};

/// A matching group: traces that must reach a common target length
/// (per-member targets are supported via `target_for`, §II: "our approach
/// meanders each trace independently, thereby supporting the individual
/// target lengths of each trace").
struct MatchGroup {
  std::string name;
  double target_length = 0.0;
  std::vector<GroupMember> members;
  /// Optional per-member target overrides (same order as members; 0 = use
  /// target_length).
  std::vector<double> member_targets;

  [[nodiscard]] double target_for(std::size_t member_index) const {
    if (member_index < member_targets.size() && member_targets[member_index] > 0.0) {
      return member_targets[member_index];
    }
    return target_length;
  }
};

}  // namespace lmr::layout
