#pragma once
/// \file drc_checker.hpp
/// Ground-truth DRC oracle.
///
/// Codifies the paper's rule model (§II, Fig. 1) into checkable predicates.
/// The extension engine never calls this — it enforces rules constructively
/// via DP transition validity and URA shrinking — but every test suite and
/// the benchmark harness validate results against this oracle, so the two
/// implementations check each other.
///
/// Rule codification (documented in DESIGN.md §5):
///  * MinSegmentLength — every trace segment >= d_protect (chamfer diagonals
///    produced by mitering are exempt when `allow_chamfer_stubs`).
///  * SelfGap — two non-adjacent segments of the same trace violate d_gap
///    (centerline effective gap) only when they also have positive mutual
///    parallel overlap; perpendicular/corner approaches across the serpentine
///    base are legal by construction (opposite-direction transitions are
///    allowed at d_protect, which is below d_gap).
///  * TraceGap — segments of *different* traces must always clear the
///    effective gap (no exemption; matched traces own disjoint regions).
///  * ObstacleClearance — every segment keeps d_obs + w/2 from every obstacle
///    polygon boundary (centerline rule).
///  * AreaContainment — every vertex and segment midpoint of a trace lies
///    inside its routable area.
///  * CornerAngle — when d_miter > 0, no corner may turn by 90 degrees or
///    more (the paper: right/acute rotations must be mitered by obtuse
///    angles).

#include <span>
#include <string>
#include <vector>

#include "drc/rules.hpp"
#include "geom/polyline.hpp"
#include "layout/layout.hpp"
#include "layout/routable_area.hpp"

namespace lmr::layout {

enum class ViolationKind {
  MinSegmentLength,
  SelfGap,
  TraceGap,
  ObstacleClearance,
  AreaContainment,
  CornerAngle,
};

/// One violation instance with enough context to debug a failing test.
struct Violation {
  ViolationKind kind = ViolationKind::SelfGap;
  TraceId trace = 0;
  TraceId other_trace = 0;   ///< for TraceGap
  std::size_t index_a = 0;   ///< segment / vertex index
  std::size_t index_b = 0;   ///< second segment index where applicable
  double measured = 0.0;
  double required = 0.0;
  std::string note;
};

const char* to_string(ViolationKind k);

/// Original-index-preserving reference to one layout obstacle. Obstacle
/// violations record the obstacle's position in the board's obstacle list
/// (`Violation::index_b`), so any filtered view must carry the original
/// index along — a subset checked through refs reports byte-identical
/// violations to checking the full list.
struct ObstacleRef {
  const Obstacle* obstacle = nullptr;
  std::uint32_t index = 0;  ///< position in the layout's obstacle list
};

/// Tile-local obstacle view with an exactness guard. `local` lists every
/// obstacle whose shape bbox intersects `coverage` (in ascending original
/// index); a query whose probe box is not wholly inside `coverage` falls
/// back to `full`. Selection therefore never changes which violations are
/// found — only how many obstacles a check has to scan — even when routed
/// geometry escapes the tile it was planned into.
struct ObstacleSelector {
  std::span<const ObstacleRef> local;
  std::span<const ObstacleRef> full;
  geom::Box coverage;  ///< region `local` is complete for; empty = always full

  [[nodiscard]] std::span<const ObstacleRef> select(const geom::Box& need) const {
    if (!need.empty() && !coverage.empty() && coverage.contains(need.lo) &&
        coverage.contains(need.hi)) {
      return local;
    }
    return full;
  }
};

/// Checker options.
struct DrcCheckOptions {
  /// Numeric slack: measurements may fall short of the rule by this much
  /// before being reported (floating-point construction noise).
  double tolerance = 1e-6;
  /// Exempt sub-d_protect segments that run at ~45 degrees to both
  /// neighbours (chamfer diagonals from mitering).
  bool allow_chamfer_stubs = true;
};

/// Stateless checking functions; all return accumulated violations.
class DrcChecker {
 public:
  explicit DrcChecker(DrcCheckOptions opts = {}) : opts_(opts) {}

  /// Rules within one trace (min length, self gap, corner angle).
  [[nodiscard]] std::vector<Violation> check_trace(const Trace& t,
                                                   const drc::DesignRules& rules) const;

  /// Trace vs obstacle clearances.
  [[nodiscard]] std::vector<Violation> check_obstacles(
      const Trace& t, const drc::DesignRules& rules,
      const std::vector<Obstacle>& obstacles) const;

  /// Same check over an index-preserving subset view (tile-local routing);
  /// refs must be in ascending original index for identical violation order.
  [[nodiscard]] std::vector<Violation> check_obstacles(
      const Trace& t, const drc::DesignRules& rules,
      std::span<const ObstacleRef> obstacles) const;

  /// Trace containment in its routable area.
  [[nodiscard]] std::vector<Violation> check_containment(const Trace& t,
                                                         const RoutableArea& area) const;

  /// Pairwise clearance between two different traces.
  [[nodiscard]] std::vector<Violation> check_trace_pair(const Trace& a, const Trace& b,
                                                        const drc::DesignRules& rules) const;

  /// Full sweep over a layout: every trace against its rules/area/obstacles
  /// and all trace pairs.
  [[nodiscard]] std::vector<Violation> check_layout(const Layout& layout,
                                                    const drc::DesignRules& rules) const;

 private:
  DrcCheckOptions opts_;
};

}  // namespace lmr::layout
