#pragma once
/// \file layout.hpp
/// The PCB layout container: board outline, obstacles, traces, differential
/// pairs, matching groups and per-trace routable areas.
///
/// The layout is *versioned*: every board mutation goes through a recorded
/// mutator that applies the edit, bumps the monotonic version counter and
/// appends a `LayoutDelta` (with the dirty bounding box the edit can
/// influence) to the journal. There are deliberately no raw mutable
/// accessors for obstacles or groups — the session/incremental-reroute
/// machinery (pipeline::Router::reroute) depends on every edit being
/// observable. Trace *geometry* writes via `trace(id)` / `pair(id)` are the
/// one exception: they are routing write-backs, not board edits, and do not
/// version the board.
///
/// While a route is in flight the board structure is frozen
/// (`freeze_for_routing`): recorded mutators throw std::logic_error until
/// the freeze is released, so an edit stream can never interleave with a
/// running route — callers must queue edits and apply them between routes.

#include <atomic>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "drc/rule_area.hpp"
#include "geom/polygon.hpp"
#include "layout/layout_delta.hpp"
#include "layout/routable_area.hpp"
#include "layout/trace.hpp"

namespace lmr::layout {

/// An obstacle: "a polygon that the trace cannot pass" (§II). Vias, pads,
/// keepouts and pre-routed foreign nets all enter the tuner this way.
struct Obstacle {
  geom::Polygon shape;
  std::string name;
};

/// Whole-board model handed to the length-matching flow.
class Layout {
 public:
  Layout() = default;
  explicit Layout(geom::Polygon board) : board_(std::move(board)) {}

  // The routing-freeze flag is an atomic (group chains release it from pool
  // workers), which drops the implicit copy/move; a copied board starts
  // unfrozen with the journal intact.
  Layout(const Layout& o) { assign(o); }
  Layout& operator=(const Layout& o) {
    if (this != &o) assign(o);
    return *this;
  }
  Layout(Layout&& o) noexcept { assign(std::move(o)); }
  Layout& operator=(Layout&& o) noexcept {
    if (this != &o) assign(std::move(o));
    return *this;
  }

  // --- versioning / dirty tracking ---
  /// Monotonic edit counter: starts at 0, +1 per recorded mutation. Routing
  /// write-backs do not count — the version tracks the *board*, not the
  /// traces' tuned geometry.
  [[nodiscard]] std::uint64_t version() const { return journal_.size(); }
  /// The journal suffix after `version` (all recorded mutations when 0).
  /// Invalidated by the next mutation.
  [[nodiscard]] std::span<const LayoutDelta> deltas_since(std::uint64_t version) const;
  /// Union of the dirty boxes of every delta after `version`.
  [[nodiscard]] geom::Box dirty_since(std::uint64_t version) const;

  /// RAII routing freeze: recorded mutators throw while any freeze is
  /// alive. Nests (route_all freezes once per group chain).
  class RoutingFreeze {
   public:
    explicit RoutingFreeze(Layout& l) : l_(&l) {
      l.route_freezes_.fetch_add(1, std::memory_order_relaxed);
    }
    ~RoutingFreeze() {
      if (l_ != nullptr) l_->route_freezes_.fetch_sub(1, std::memory_order_relaxed);
    }
    RoutingFreeze(const RoutingFreeze&) = delete;
    RoutingFreeze& operator=(const RoutingFreeze&) = delete;
    RoutingFreeze(RoutingFreeze&& o) noexcept : l_(o.l_) { o.l_ = nullptr; }
    RoutingFreeze& operator=(RoutingFreeze&&) = delete;

   private:
    /// try_freeze already took the count via CAS; adopt without incrementing.
    struct Adopt {};
    RoutingFreeze(Layout& l, Adopt) : l_(&l) {}
    friend class Layout;

    Layout* l_;
  };
  [[nodiscard]] RoutingFreeze freeze_for_routing() { return RoutingFreeze(*this); }
  /// Non-throwing freeze probe for schedulers that queue instead of catch
  /// (service layers): atomically acquire the freeze iff no other freeze is
  /// alive — unlike `freeze_for_routing`, which nests unconditionally.
  /// Returns std::nullopt while a route is in flight; the recorded-mutator
  /// throw path is unchanged either way.
  [[nodiscard]] std::optional<RoutingFreeze> try_freeze() {
    int expected = 0;
    if (!route_freezes_.compare_exchange_strong(expected, 1,
                                                std::memory_order_relaxed)) {
      return std::nullopt;
    }
    return RoutingFreeze(*this, RoutingFreeze::Adopt{});
  }
  [[nodiscard]] bool frozen() const {
    return route_freezes_.load(std::memory_order_relaxed) != 0;
  }
  /// Probe-style alias of `frozen()`: safe from any thread (atomic load),
  /// pairs with `try_freeze` in queue-instead-of-catch callers.
  [[nodiscard]] bool is_frozen() const { return frozen(); }

  // --- board ---
  LayoutDelta set_board(geom::Polygon b);
  [[nodiscard]] const geom::Polygon& board() const { return board_; }

  // --- obstacles ---
  LayoutDelta add_obstacle(Obstacle o);
  /// Translate obstacle `index` by `d` (shape only; the name stays).
  LayoutDelta move_obstacle(std::size_t index, geom::Vec2 d);
  /// Replace obstacle `index`'s polygon (recorded as a move).
  LayoutDelta set_obstacle_shape(std::size_t index, geom::Polygon shape);
  /// Erase obstacle `index`; later obstacle indices shift down by one.
  LayoutDelta remove_obstacle(std::size_t index);
  [[nodiscard]] const std::vector<Obstacle>& obstacles() const { return obstacles_; }
  [[nodiscard]] std::size_t obstacle_count() const { return obstacles_.size(); }
  [[nodiscard]] const Obstacle& obstacle(std::size_t index) const {
    return obstacles_.at(index);
  }

  // --- traces / pairs ---
  TraceId add_trace(Trace t);
  TraceId add_pair(DiffPair p);
  [[nodiscard]] const Trace& trace(TraceId id) const { return traces_.at(id); }
  [[nodiscard]] Trace& trace(TraceId id) { return traces_.at(id); }
  [[nodiscard]] const DiffPair& pair(TraceId id) const { return pairs_.at(id); }
  [[nodiscard]] DiffPair& pair(TraceId id) { return pairs_.at(id); }
  [[nodiscard]] const std::map<TraceId, Trace>& traces() const { return traces_; }
  [[nodiscard]] const std::map<TraceId, DiffPair>& pairs() const { return pairs_; }

  // --- matching groups ---
  LayoutDelta add_group(MatchGroup g);
  LayoutDelta add_group_member(std::size_t group, GroupMember member,
                               double target = 0.0);
  /// Erase member `member_index` of group `group` (and its target override).
  LayoutDelta remove_group_member(std::size_t group, std::size_t member_index);
  LayoutDelta set_group_target(std::size_t group, double target);
  /// Per-member target override (0 = use the group target).
  LayoutDelta set_member_target(std::size_t group, std::size_t member_index,
                                double target);
  [[nodiscard]] const std::vector<MatchGroup>& groups() const { return groups_; }
  /// Group index owning trace/pair `id`, or kNoIndex when ungrouped.
  [[nodiscard]] std::size_t group_of(TraceId id) const;

  // --- routable areas (region-assignment output) ---
  LayoutDelta set_routable_area(TraceId id, RoutableArea area);
  [[nodiscard]] const RoutableArea* routable_area(TraceId id) const {
    auto it = areas_.find(id);
    return it == areas_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const std::map<TraceId, RoutableArea>& routable_areas() const {
    return areas_;
  }

 private:
  void assign(const Layout& o);
  void assign(Layout&& o);
  /// Throw while frozen, else append + return the recorded delta.
  LayoutDelta record(LayoutDelta d);
  void check_mutable() const;

  geom::Polygon board_;
  std::vector<Obstacle> obstacles_;
  std::map<TraceId, Trace> traces_;
  std::map<TraceId, DiffPair> pairs_;
  std::vector<MatchGroup> groups_;
  std::map<TraceId, RoutableArea> areas_;
  TraceId next_id_ = 1;
  std::vector<LayoutDelta> journal_;
  std::atomic<int> route_freezes_{0};

  friend TraceId allocate_id(Layout& l);
};

}  // namespace lmr::layout
