#pragma once
/// \file layout.hpp
/// The PCB layout container: board outline, obstacles, traces, differential
/// pairs, matching groups and per-trace routable areas.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "drc/rule_area.hpp"
#include "geom/polygon.hpp"
#include "layout/routable_area.hpp"
#include "layout/trace.hpp"

namespace lmr::layout {

/// An obstacle: "a polygon that the trace cannot pass" (§II). Vias, pads,
/// keepouts and pre-routed foreign nets all enter the tuner this way.
struct Obstacle {
  geom::Polygon shape;
  std::string name;
};

/// Whole-board model handed to the length-matching flow.
class Layout {
 public:
  Layout() = default;
  explicit Layout(geom::Polygon board) : board_(std::move(board)) {}

  // --- board ---
  void set_board(geom::Polygon b) { board_ = std::move(b); }
  [[nodiscard]] const geom::Polygon& board() const { return board_; }

  // --- obstacles ---
  std::size_t add_obstacle(Obstacle o) {
    obstacles_.push_back(std::move(o));
    return obstacles_.size() - 1;
  }
  [[nodiscard]] const std::vector<Obstacle>& obstacles() const { return obstacles_; }
  [[nodiscard]] std::vector<Obstacle>& obstacles() { return obstacles_; }

  // --- traces / pairs ---
  TraceId add_trace(Trace t);
  TraceId add_pair(DiffPair p);
  [[nodiscard]] const Trace& trace(TraceId id) const { return traces_.at(id); }
  [[nodiscard]] Trace& trace(TraceId id) { return traces_.at(id); }
  [[nodiscard]] const DiffPair& pair(TraceId id) const { return pairs_.at(id); }
  [[nodiscard]] DiffPair& pair(TraceId id) { return pairs_.at(id); }
  [[nodiscard]] const std::map<TraceId, Trace>& traces() const { return traces_; }
  [[nodiscard]] const std::map<TraceId, DiffPair>& pairs() const { return pairs_; }

  // --- matching groups ---
  std::size_t add_group(MatchGroup g) {
    groups_.push_back(std::move(g));
    return groups_.size() - 1;
  }
  [[nodiscard]] const std::vector<MatchGroup>& groups() const { return groups_; }
  [[nodiscard]] std::vector<MatchGroup>& groups() { return groups_; }

  // --- routable areas (region-assignment output) ---
  void set_routable_area(TraceId id, RoutableArea area) { areas_[id] = std::move(area); }
  [[nodiscard]] const RoutableArea* routable_area(TraceId id) const {
    auto it = areas_.find(id);
    return it == areas_.end() ? nullptr : &it->second;
  }

 private:
  geom::Polygon board_;
  std::vector<Obstacle> obstacles_;
  std::map<TraceId, Trace> traces_;
  std::map<TraceId, DiffPair> pairs_;
  std::vector<MatchGroup> groups_;
  std::map<TraceId, RoutableArea> areas_;
  TraceId next_id_ = 1;

  friend TraceId allocate_id(Layout& l);
};

}  // namespace lmr::layout
