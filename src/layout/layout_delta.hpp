#pragma once
/// \file layout_delta.hpp
/// The record of one board mutation.
///
/// Every `Layout` mutator (add/move/remove obstacle, routable-area change,
/// group membership / target change) applies its edit immediately and
/// appends one `LayoutDelta` to the layout's journal: what happened, the
/// version the board reached, and the dirty bounding box the change can
/// influence. Deltas are *records*, not commands — replay is never needed;
/// `pipeline::Router::reroute` only reads them to prove which groups an
/// edit can touch (dirty bbox inflated by the clearance radius vs. cached
/// per-group route bboxes) and to reject stale or out-of-order edits via
/// the version stamps.

#include <cstddef>
#include <cstdint>

#include "geom/box.hpp"
#include "layout/trace.hpp"

namespace lmr::layout {

/// "No index" sentinel for the optional obstacle / group fields.
inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

/// What kind of mutation a delta records.
enum class DeltaKind {
  AddTrace,           ///< trace added (affects nothing until grouped)
  AddPair,            ///< differential pair added (ditto)
  SetBoard,           ///< board outline replaced (conservative: everything)
  AddObstacle,        ///< obstacle appended
  MoveObstacle,       ///< obstacle translated or reshaped in place
  RemoveObstacle,     ///< obstacle erased (later indices shift down)
  SetRoutableArea,    ///< one trace's routable area replaced
  AddGroup,           ///< matching group appended
  AddGroupMember,     ///< member appended to a group
  RemoveGroupMember,  ///< member erased from a group
  SetGroupTarget,     ///< group target length changed
  SetMemberTarget,    ///< one member's target override changed
};

/// One recorded mutation. `version` is the layout's version *after* the
/// mutation, so a journal suffix `prior_version + 1 ... layout.version()`
/// is exactly the edits a cached route has not seen yet.
struct LayoutDelta {
  DeltaKind kind = DeltaKind::AddObstacle;
  std::uint64_t version = 0;
  /// Union of everything the mutation touched (old and new geometry for
  /// moves). Empty for purely structural edits (group membership, targets)
  /// — those name their group directly instead.
  geom::Box dirty;
  /// Obstacle index the mutation applied to, at the time it applied
  /// (a RemoveObstacle shifts later indices down). kNoIndex otherwise.
  std::size_t obstacle = kNoIndex;
  /// Group index for group-structure deltas; kNoIndex otherwise.
  std::size_t group = kNoIndex;
  /// Trace/pair id for AddTrace/AddPair/SetRoutableArea/membership deltas.
  TraceId trace = 0;
};

}  // namespace lmr::layout
