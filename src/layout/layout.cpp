#include "layout/layout.hpp"

#include <stdexcept>
#include <utility>

#include "core/contract.hpp"

namespace lmr::layout {
namespace {

geom::Box pair_bbox(const DiffPair& p) {
  geom::Box b = p.positive.path.bbox();
  b.expand(p.negative.path.bbox());
  return b;
}

geom::Box area_bbox(const RoutableArea& a) {
  geom::Box b = a.outline.bbox();
  for (const geom::Polygon& h : a.holes) b.expand(h.bbox());
  return b;
}

}  // namespace

TraceId allocate_id(Layout& l) { return l.next_id_++; }

void Layout::assign(const Layout& o) {
  board_ = o.board_;
  obstacles_ = o.obstacles_;
  traces_ = o.traces_;
  pairs_ = o.pairs_;
  groups_ = o.groups_;
  areas_ = o.areas_;
  next_id_ = o.next_id_;
  journal_ = o.journal_;
  route_freezes_.store(0, std::memory_order_relaxed);
}

void Layout::assign(Layout&& o) {
  board_ = std::move(o.board_);
  obstacles_ = std::move(o.obstacles_);
  traces_ = std::move(o.traces_);
  pairs_ = std::move(o.pairs_);
  groups_ = std::move(o.groups_);
  areas_ = std::move(o.areas_);
  next_id_ = o.next_id_;
  journal_ = std::move(o.journal_);
  route_freezes_.store(0, std::memory_order_relaxed);
}

void Layout::check_mutable() const {
  if (frozen()) {
    throw std::logic_error(
        "Layout: board mutation while a route is in flight; apply edits "
        "between routes");
  }
}

LayoutDelta Layout::record(LayoutDelta d) {
  // Versioning contract: the journal is exactly the versions 1..N in order,
  // and nothing records into a frozen board (every recorded mutator calls
  // check_mutable() before touching state — by the time we get here the
  // mutation already happened, so a frozen board would mean a mutator
  // skipped its check).
  LMR_ASSERT(!frozen(), "recorded mutation slipped past check_mutable()");
  LMR_ASSERT(journal_.empty() || journal_.back().version == journal_.size(),
             "journal versions must be contiguous 1..N");
  d.version = journal_.size() + 1;
  journal_.push_back(d);
  return d;
}

std::span<const LayoutDelta> Layout::deltas_since(std::uint64_t version) const {
  if (version > journal_.size()) {
    throw std::invalid_argument("Layout::deltas_since: version from the future");
  }
  return {journal_.data() + version, journal_.size() - version};
}

geom::Box Layout::dirty_since(std::uint64_t version) const {
  geom::Box b;
  for (const LayoutDelta& d : deltas_since(version)) b.expand(d.dirty);
  return b;
}

LayoutDelta Layout::set_board(geom::Polygon b) {
  check_mutable();
  LayoutDelta d;
  d.kind = DeltaKind::SetBoard;
  d.dirty = board_.bbox();
  d.dirty.expand(b.bbox());
  board_ = std::move(b);
  return record(d);
}

LayoutDelta Layout::add_obstacle(Obstacle o) {
  check_mutable();
  LayoutDelta d;
  d.kind = DeltaKind::AddObstacle;
  d.dirty = o.shape.bbox();
  d.obstacle = obstacles_.size();
  obstacles_.push_back(std::move(o));
  return record(d);
}

LayoutDelta Layout::move_obstacle(std::size_t index, geom::Vec2 delta) {
  check_mutable();
  Obstacle& o = obstacles_.at(index);
  LayoutDelta d;
  d.kind = DeltaKind::MoveObstacle;
  d.dirty = o.shape.bbox();
  d.obstacle = index;
  for (geom::Point& p : o.shape.points()) p += delta;
  d.dirty.expand(o.shape.bbox());
  return record(d);
}

LayoutDelta Layout::set_obstacle_shape(std::size_t index, geom::Polygon shape) {
  check_mutable();
  Obstacle& o = obstacles_.at(index);
  LayoutDelta d;
  d.kind = DeltaKind::MoveObstacle;
  d.dirty = o.shape.bbox();
  d.dirty.expand(shape.bbox());
  d.obstacle = index;
  o.shape = std::move(shape);
  return record(d);
}

LayoutDelta Layout::remove_obstacle(std::size_t index) {
  check_mutable();
  const Obstacle& o = obstacles_.at(index);
  LayoutDelta d;
  d.kind = DeltaKind::RemoveObstacle;
  d.dirty = o.shape.bbox();
  d.obstacle = index;
  obstacles_.erase(obstacles_.begin() + static_cast<std::ptrdiff_t>(index));
  return record(d);
}

TraceId Layout::add_trace(Trace t) {
  check_mutable();
  if (t.id == 0) t.id = allocate_id(*this);
  const TraceId id = t.id;
  LayoutDelta d;
  d.kind = DeltaKind::AddTrace;
  d.dirty = t.path.bbox();
  d.trace = id;
  traces_[id] = std::move(t);
  record(d);
  return id;
}

TraceId Layout::add_pair(DiffPair p) {
  check_mutable();
  if (p.id == 0) p.id = allocate_id(*this);
  const TraceId id = p.id;
  LayoutDelta d;
  d.kind = DeltaKind::AddPair;
  d.dirty = pair_bbox(p);
  d.trace = id;
  pairs_[id] = std::move(p);
  record(d);
  return id;
}

LayoutDelta Layout::add_group(MatchGroup g) {
  check_mutable();
  LayoutDelta d;
  d.kind = DeltaKind::AddGroup;
  d.group = groups_.size();
  groups_.push_back(std::move(g));
  return record(d);
}

LayoutDelta Layout::add_group_member(std::size_t group, GroupMember member,
                                     double target) {
  check_mutable();
  MatchGroup& g = groups_.at(group);
  LayoutDelta d;
  d.kind = DeltaKind::AddGroupMember;
  d.group = group;
  d.trace = member.id;
  if (target > 0.0 || !g.member_targets.empty()) {
    g.member_targets.resize(g.members.size(), 0.0);
    g.member_targets.push_back(target);
  }
  g.members.push_back(member);
  LMR_ASSERT(g.member_targets.empty() || g.member_targets.size() == g.members.size(),
             "member_targets is all-or-nothing per group");
  return record(d);
}

LayoutDelta Layout::remove_group_member(std::size_t group, std::size_t member_index) {
  check_mutable();
  MatchGroup& g = groups_.at(group);
  if (member_index >= g.members.size()) {
    throw std::out_of_range("Layout::remove_group_member: bad member index");
  }
  LayoutDelta d;
  d.kind = DeltaKind::RemoveGroupMember;
  d.group = group;
  d.trace = g.members[member_index].id;
  g.members.erase(g.members.begin() + static_cast<std::ptrdiff_t>(member_index));
  if (member_index < g.member_targets.size()) {
    g.member_targets.erase(g.member_targets.begin() +
                           static_cast<std::ptrdiff_t>(member_index));
  }
  LMR_ASSERT(g.member_targets.empty() || g.member_targets.size() == g.members.size(),
             "member_targets is all-or-nothing per group");
  return record(d);
}

LayoutDelta Layout::set_group_target(std::size_t group, double target) {
  check_mutable();
  MatchGroup& g = groups_.at(group);
  LayoutDelta d;
  d.kind = DeltaKind::SetGroupTarget;
  d.group = group;
  g.target_length = target;
  return record(d);
}

LayoutDelta Layout::set_member_target(std::size_t group, std::size_t member_index,
                                      double target) {
  check_mutable();
  MatchGroup& g = groups_.at(group);
  if (member_index >= g.members.size()) {
    throw std::out_of_range("Layout::set_member_target: bad member index");
  }
  LayoutDelta d;
  d.kind = DeltaKind::SetMemberTarget;
  d.group = group;
  d.trace = g.members[member_index].id;
  if (g.member_targets.size() < g.members.size()) {
    g.member_targets.resize(g.members.size(), 0.0);
  }
  g.member_targets[member_index] = target;
  return record(d);
}

std::size_t Layout::group_of(TraceId id) const {
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    for (const GroupMember& m : groups_[gi].members) {
      if (m.id == id) return gi;
    }
  }
  return kNoIndex;
}

LayoutDelta Layout::set_routable_area(TraceId id, RoutableArea area) {
  check_mutable();
  LayoutDelta d;
  d.kind = DeltaKind::SetRoutableArea;
  d.trace = id;
  d.dirty = area_bbox(area);
  auto it = areas_.find(id);
  if (it != areas_.end()) {
    d.dirty.expand(area_bbox(it->second));
    it->second = std::move(area);
  } else {
    areas_.emplace(id, std::move(area));
  }
  return record(d);
}

}  // namespace lmr::layout
