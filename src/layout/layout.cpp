#include "layout/layout.hpp"

namespace lmr::layout {

TraceId allocate_id(Layout& l) { return l.next_id_++; }

TraceId Layout::add_trace(Trace t) {
  if (t.id == 0) t.id = allocate_id(*this);
  const TraceId id = t.id;
  traces_[id] = std::move(t);
  return id;
}

TraceId Layout::add_pair(DiffPair p) {
  if (p.id == 0) p.id = allocate_id(*this);
  const TraceId id = p.id;
  pairs_[id] = std::move(p);
  return id;
}

}  // namespace lmr::layout
