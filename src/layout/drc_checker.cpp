#include "layout/drc_checker.hpp"

#include <algorithm>
#include <cmath>

#include "geom/distance.hpp"
#include "layout/clearance_sweep.hpp"

namespace lmr::layout {

namespace {

using geom::Point;
using geom::Segment;
using geom::Vec2;

/// Length of the mutual parallel overlap between two segments: the overlap
/// of s2's projection onto s1's axis with s1's own extent (and vice versa;
/// we take the smaller). Zero for perpendicular or merely corner-touching
/// placements.
double parallel_overlap(const Segment& s1, const Segment& s2) {
  const auto overlap_on = [](const Segment& base, const Segment& other) {
    const Vec2 u = base.unit();
    const double a0 = 0.0;
    const double a1 = base.length();
    double b0 = geom::dot(other.a - base.a, u);
    double b1 = geom::dot(other.b - base.a, u);
    if (b0 > b1) std::swap(b0, b1);
    return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
  };
  if (s1.degenerate() || s2.degenerate()) return 0.0;
  return std::min(overlap_on(s1, s2), overlap_on(s2, s1));
}

bool is_chamfer_stub(const geom::Polyline& path, std::size_t seg_idx) {
  // A chamfer diagonal runs at roughly 45 degrees to at least one adjacent
  // segment (the mitered corner's arms).
  const Segment s = path.segment(seg_idx);
  const Vec2 u = s.unit();
  const auto angle_ok = [&](const Segment& nb) {
    if (nb.degenerate()) return false;
    const double c = std::abs(geom::dot(u, nb.unit()));
    return c > 0.5 && c < 0.9;  // ~25..60 degrees: chamfer-like
  };
  if (seg_idx > 0 && angle_ok(path.segment(seg_idx - 1))) return true;
  if (seg_idx + 1 < path.segment_count() && angle_ok(path.segment(seg_idx + 1))) return true;
  return false;
}

}  // namespace

const char* to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::MinSegmentLength: return "MinSegmentLength";
    case ViolationKind::SelfGap: return "SelfGap";
    case ViolationKind::TraceGap: return "TraceGap";
    case ViolationKind::ObstacleClearance: return "ObstacleClearance";
    case ViolationKind::AreaContainment: return "AreaContainment";
    case ViolationKind::CornerAngle: return "CornerAngle";
  }
  return "?";
}

std::vector<Violation> DrcChecker::check_trace(const Trace& t,
                                               const drc::DesignRules& rules) const {
  std::vector<Violation> out;
  const auto& path = t.path;
  const std::size_t n = path.segment_count();

  for (std::size_t i = 0; i < n; ++i) {
    const double len = path.segment(i).length();
    if (len + opts_.tolerance < rules.protect) {
      if (opts_.allow_chamfer_stubs && is_chamfer_stub(path, i)) continue;
      out.push_back({ViolationKind::MinSegmentLength, t.id, 0, i, 0, len, rules.protect,
                     "segment shorter than d_protect"});
    }
  }

  const double gap = rules.effective_gap();
  // cos(30 deg): the self-gap rule targets coupled parallel runs; segments
  // meeting at wider angles (corner necks, perpendicular legs at joints)
  // are legal down to d_protect by the paper's transition rules.
  constexpr double kNearParallel = 0.866;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j < n; ++j) {
      const Segment si = path.segment(i);
      const Segment sj = path.segment(j);
      const double d = geom::dist_segment_segment(si, sj);
      if (d + opts_.tolerance >= gap) continue;
      if (parallel_overlap(si, sj) <= opts_.tolerance) continue;
      if (si.degenerate() || sj.degenerate()) continue;
      if (std::abs(geom::dot(si.unit(), sj.unit())) < kNearParallel) continue;
      out.push_back({ViolationKind::SelfGap, t.id, 0, i, j, d, gap,
                     "parallel same-net segments closer than effective gap"});
    }
  }

  if (rules.miter > 0.0) {
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      const Vec2 in_dir = path[i] - path[i - 1];
      const Vec2 out_dir = path[i + 1] - path[i];
      if (in_dir.norm() <= geom::kEps || out_dir.norm() <= geom::kEps) continue;
      // Turn of >= 90 degrees <=> forward dot <= 0 (right angle included).
      if (geom::dot(in_dir.normalized(), out_dir.normalized()) <= opts_.tolerance) {
        out.push_back({ViolationKind::CornerAngle, t.id, 0, i, 0,
                       geom::dot(in_dir.normalized(), out_dir.normalized()), 0.0,
                       "right/acute corner present while d_miter demands obtuse"});
      }
    }
  }
  return out;
}

std::vector<Violation> DrcChecker::check_obstacles(
    const Trace& t, const drc::DesignRules& rules,
    const std::vector<Obstacle>& obstacles) const {
  std::vector<ObstacleRef> refs;
  refs.reserve(obstacles.size());
  for (std::size_t oi = 0; oi < obstacles.size(); ++oi) {
    refs.push_back({&obstacles[oi], static_cast<std::uint32_t>(oi)});
  }
  return check_obstacles(t, rules, std::span<const ObstacleRef>(refs));
}

std::vector<Violation> DrcChecker::check_obstacles(
    const Trace& t, const drc::DesignRules& rules,
    std::span<const ObstacleRef> obstacles) const {
  std::vector<Violation> out;
  const double clear = rules.effective_obs();
  for (const ObstacleRef& ref : obstacles) {
    const geom::Polygon& poly = ref.obstacle->shape;
    const geom::Box grown = poly.bbox().inflated(clear + opts_.tolerance);
    for (std::size_t i = 0; i < t.path.segment_count(); ++i) {
      const Segment s = t.path.segment(i);
      if (!grown.intersects(s.bbox())) continue;
      const double d = geom::dist_segment_polygon(s, poly);
      if (d + opts_.tolerance < clear) {
        out.push_back({ViolationKind::ObstacleClearance, t.id, 0, i, ref.index, d,
                       clear, "trace too close to obstacle " + ref.obstacle->name});
      }
    }
  }
  return out;
}

std::vector<Violation> DrcChecker::check_containment(const Trace& t,
                                                     const RoutableArea& area) const {
  std::vector<Violation> out;
  if (area.outline.empty()) return out;
  for (std::size_t i = 0; i < t.path.size(); ++i) {
    if (!area.contains(t.path[i])) {
      out.push_back({ViolationKind::AreaContainment, t.id, 0, i, 0, 0.0, 0.0,
                     "vertex outside routable area"});
    }
  }
  for (std::size_t i = 0; i < t.path.segment_count(); ++i) {
    const Point mid = t.path.segment(i).midpoint();
    if (!area.contains(mid)) {
      out.push_back({ViolationKind::AreaContainment, t.id, 0, i, 0, 0.0, 0.0,
                     "segment midpoint outside routable area"});
    }
  }
  return out;
}

std::vector<Violation> DrcChecker::check_trace_pair(const Trace& a, const Trace& b,
                                                    const drc::DesignRules& rules) const {
  std::vector<Violation> out;
  const double gap = rules.gap + (a.width + b.width) / 2.0;
  if (!a.path.bbox().inflated(gap).intersects(b.path.bbox())) return out;
  for (std::size_t i = 0; i < a.path.segment_count(); ++i) {
    for (std::size_t j = 0; j < b.path.segment_count(); ++j) {
      const double d = geom::dist_segment_segment(a.path.segment(i), b.path.segment(j));
      if (d + opts_.tolerance < gap) {
        out.push_back({ViolationKind::TraceGap, a.id, b.id, i, j, d, gap,
                       "segments of different traces closer than gap"});
      }
    }
  }
  return out;
}

std::vector<Violation> DrcChecker::check_layout(const Layout& layout,
                                                const drc::DesignRules& rules) const {
  std::vector<Violation> out;
  const auto append = [&out](std::vector<Violation> v) {
    out.insert(out.end(), v.begin(), v.end());
  };
  for (const auto& [id, t] : layout.traces()) {
    append(check_trace(t, rules));
    append(check_obstacles(t, rules, layout.obstacles()));
    if (const RoutableArea* area = layout.routable_area(id)) {
      append(check_containment(t, *area));
    }
  }
  // Pairwise clearance via the indexed sweep (each trace is its own net) —
  // the one-shot ClearanceIndex wrapper.
  std::vector<SweepTrace> sweep;
  std::uint32_t net = 0;
  for (const auto& [id, t] : layout.traces()) {
    (void)id;
    sweep.push_back({&t, net++});
  }
  append(cross_clearance_sweep(sweep, rules, opts_));
  return out;
}

}  // namespace lmr::layout
