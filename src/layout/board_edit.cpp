#include "layout/board_edit.hpp"

#include <stdexcept>
#include <utility>

namespace lmr::layout {

namespace {

bool same_polygon(const geom::Polygon& a, const geom::Polygon& b) {
  return a.points() == b.points();
}

/// Rewrite the holes of every routable area that carries `match`, in
/// deterministic trace-id order. `rewrite(holes, i)` edits the matched hole
/// in place (or erases it); each touched area goes back through the
/// recorded mutator so the journal sees the change.
template <typename Rewrite>
void rewrite_matching_holes(Layout& l, const geom::Polygon& match, Rewrite rewrite,
                            std::vector<LayoutDelta>& deltas) {
  std::vector<std::pair<TraceId, RoutableArea>> touched;
  for (const auto& [id, area] : l.routable_areas()) {
    for (std::size_t h = 0; h < area.holes.size(); ++h) {
      if (!same_polygon(area.holes[h], match)) continue;
      RoutableArea edited = area;
      rewrite(edited.holes, h);
      touched.emplace_back(id, std::move(edited));
      break;  // identical polygons are punched at most once per area
    }
  }
  for (auto& [id, area] : touched) {
    deltas.push_back(l.set_routable_area(id, std::move(area)));
  }
}

/// Reject bad indices up front with a message naming the edit, so a queued
/// edit invalidated by an earlier edit in the same batch (an obstacle or
/// group it referred to no longer exists) fails cleanly before any mutation
/// instead of surfacing as a bare container error mid-lowering.
void check_indices(const Layout& l, const BoardEdit& edit) {
  switch (edit.kind) {
    case BoardEditKind::MoveObstacle:
    case BoardEditKind::RemoveObstacle:
      if (edit.obstacle >= l.obstacle_count()) {
        throw std::out_of_range(
            "apply_edit: obstacle " + std::to_string(edit.obstacle) +
            " does not exist (board has " + std::to_string(l.obstacle_count()) +
            "); was it removed by an earlier edit?");
      }
      break;
    case BoardEditKind::SetGroupTarget:
      if (edit.group >= l.groups().size()) {
        throw std::out_of_range(
            "apply_edit: SetGroupTarget on missing group " +
            std::to_string(edit.group) + " (board has " +
            std::to_string(l.groups().size()) +
            "); was it removed by an earlier edit?");
      }
      break;
    case BoardEditKind::AddObstacle:
      break;
  }
}

}  // namespace

std::vector<LayoutDelta> apply_edit(Layout& l, const BoardEdit& edit) {
  check_indices(l, edit);
  std::vector<LayoutDelta> deltas;
  switch (edit.kind) {
    case BoardEditKind::AddObstacle: {
      deltas.push_back(l.add_obstacle({edit.shape, edit.name}));
      // Punch the polygon into every area it lands in, exactly as the
      // generator does for vias: the identical polygon becomes a hole of
      // each routable area whose outline holds its centroid.
      std::vector<TraceId> punched;
      for (const auto& [id, area] : l.routable_areas()) {
        if (area.outline.contains(edit.shape.centroid())) punched.push_back(id);
      }
      for (const TraceId id : punched) {
        RoutableArea edited = *l.routable_area(id);
        edited.holes.push_back(edit.shape);
        deltas.push_back(l.set_routable_area(id, std::move(edited)));
      }
      break;
    }
    case BoardEditKind::MoveObstacle: {
      const geom::Polygon before = l.obstacle(edit.obstacle).shape;
      deltas.push_back(l.move_obstacle(edit.obstacle, edit.move));
      const geom::Polygon after = l.obstacle(edit.obstacle).shape;
      rewrite_matching_holes(
          l, before,
          [&](std::vector<geom::Polygon>& holes, std::size_t h) { holes[h] = after; },
          deltas);
      break;
    }
    case BoardEditKind::RemoveObstacle: {
      const geom::Polygon before = l.obstacle(edit.obstacle).shape;
      deltas.push_back(l.remove_obstacle(edit.obstacle));
      rewrite_matching_holes(
          l, before,
          [](std::vector<geom::Polygon>& holes, std::size_t h) {
            holes.erase(holes.begin() + static_cast<std::ptrdiff_t>(h));
          },
          deltas);
      break;
    }
    case BoardEditKind::SetGroupTarget:
      deltas.push_back(l.set_group_target(edit.group, edit.target));
      break;
  }
  return deltas;
}

}  // namespace lmr::layout
