// trace.hpp is header-only; this translation unit anchors the library.
#include "layout/trace.hpp"
