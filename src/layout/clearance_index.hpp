#pragma once
/// \file clearance_index.hpp
/// Incrementally-buildable cross-net clearance index.
///
/// The one-shot sweep (clearance_sweep.hpp) samples every trace, builds the
/// range tree and runs the window queries in a single tail call — pure
/// added latency after the last group member finishes extending. The staged
/// routing pipeline wants the per-trace half of that work to happen *while*
/// other members are still extending, so `ClearanceIndex` splits the sweep
/// into three phases:
///
///  1. `add_slot()` — declare every participating trace up front (serial,
///     cheap). This fixes the sampling pitch (a function of the declared
///     widths only) and the deterministic slot order that violation
///     ordering is keyed on.
///  2. `insert()`  — sample one trace's segments into its slot. Each call
///     writes only that slot's pre-allocated storage, so inserts for
///     distinct slots are safe from concurrent pipeline chains: a member
///     indexes its own geometry the moment it lands, in any order.
///     `remove()` empties a slot again, and a removed or replaced slot can
///     be re-`insert`ed — the edit-session path re-indexes only the traces
///     an edit touched.
///  3. `sweep()`   — the only remaining barrier: run the window-query /
///     exact-check pass. The assembled range tree and the resulting
///     violations are cached across calls; a sweep after a small edit
///     rebuilds only per-dirty-slot overlay trees (falling back to a full
///     rebuild once a quarter of the slots have gone dirty), and a sweep
///     with no intervening insert/remove returns the cached violations
///     without touching the tree at all. `sweep()` must not race with
///     `insert`/`remove` or another `sweep` on the same index — it is the
///     barrier, exactly as before.
///
/// The output is identical — same violations, same order — to running
/// `cross_clearance_sweep` over the currently-inserted traces in slot
/// order: sampling depends only on each trace's own geometry and the
/// declared widths, and candidates are ordered by slot index, never by
/// insertion timing or cache state.

#include <cstdint>
#include <vector>

#include "drc/rules.hpp"
#include "geom/vec2.hpp"
#include "index/range_tree.hpp"
#include "index/seg_grid.hpp"
#include "layout/drc_checker.hpp"
#include "layout/trace.hpp"

namespace lmr::layout {

/// Broadphase backing the candidate-collection pass of `sweep()`.
///
/// Both backends feed the same sorted/unique/exact-check funnel, so they
/// produce bit-identical violations; they differ only in how candidates are
/// found. `RangeTree` samples every trace into one range tree (cheap per
/// query on small boards, O(n log n) rebuilds). `Grid` drops whole segments
/// into a uniform segment-collider grid (no sampling at all — insert is
/// O(1), updates are in-place per slot) and wins once boards carry hundreds
/// of slots. `Auto` picks per index: grid when the index has declared at
/// least `ClearanceIndex::kGridAutoSlots` slots, range tree below that.
enum class ClearanceBackend : std::uint8_t { Auto, RangeTree, Grid };

/// The incremental form of the cross-net clearance sweep. Not copyable (the
/// cache is cheap to rebuild but pointless to duplicate) but movable, so
/// sessions and containers can hold one by value; a moved-from index is an
/// empty index — `slot_count() == 0`, `sweep()` returns no violations, and
/// it can be rebuilt from `add_slot` up.
class ClearanceIndex {
 public:
  /// `Auto` flips to the grid backend at this many declared slots. Small
  /// groups stay on the range tree (tiny trees, negligible rebuilds); a
  /// board-wide index over a mega board crosses the threshold and gets the
  /// O(1)-update grid.
  static constexpr std::size_t kGridAutoSlots = 64;

  explicit ClearanceIndex(const drc::DesignRules& rules, DrcCheckOptions opts = {},
                          ClearanceBackend backend = ClearanceBackend::Auto);

  ClearanceIndex(const ClearanceIndex&) = delete;
  ClearanceIndex& operator=(const ClearanceIndex&) = delete;
  ClearanceIndex(ClearanceIndex&&) noexcept = default;
  ClearanceIndex& operator=(ClearanceIndex&&) noexcept = default;

  /// Declare one participating trace: its width (enters the worst-case gap
  /// that sizes sampling pitch and query windows) and its net id (traces of
  /// equal net are never checked against each other). Returns the dense
  /// slot id, assigned in call order — the order violations are keyed on.
  /// All slots must be declared before the first `insert`.
  std::uint32_t add_slot(double width, std::uint32_t net);

  /// Sample `trace`'s segments into `slot`. Thread-safe for distinct slots
  /// (each call touches only its own slot's storage); `trace` must outlive
  /// the index. Inserting a slot twice replaces its samples and marks the
  /// slot dirty for the next `sweep`.
  void insert(std::uint32_t slot, const Trace& trace);

  /// Empty `slot` again: it stops participating in sweeps until the next
  /// `insert`, exactly as if it had been declared but never inserted.
  void remove(std::uint32_t slot);

  /// Query-only pass over everything inserted so far. Returns all TraceGap
  /// violations between traces of different nets, deterministically ordered
  /// by (slot a, slot b, segment a, segment b). Slots that were declared
  /// but never inserted (or were removed) simply do not participate.
  [[nodiscard]] std::vector<Violation> sweep() const;

  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }
  [[nodiscard]] double slot_width(std::uint32_t slot) const {
    return slots_.at(slot).width;
  }
  [[nodiscard]] std::uint32_t slot_net(std::uint32_t slot) const {
    return slots_.at(slot).net;
  }
  /// True when `slot` currently holds samples.
  [[nodiscard]] bool slot_inserted(std::uint32_t slot) const {
    return slots_.at(slot).trace != nullptr;
  }

  /// The backend the next `sweep()` will use. For `Auto` this is a pure
  /// function of the current slot count, so it can flip RangeTree -> Grid as
  /// a session declares more slots (never back — slots are never undeclared);
  /// the grid needs no samples, so a flip just means the next sweep rebuilds
  /// its store from the traces' live segments.
  [[nodiscard]] ClearanceBackend backend() const {
    return use_grid() ? ClearanceBackend::Grid : ClearanceBackend::RangeTree;
  }

 private:
  struct Slot {
    const Trace* trace = nullptr;  ///< null until insert() / after remove()
    std::uint32_t net = 0;
    double width = 0.0;
    std::vector<geom::Point> samples;
    std::vector<std::uint32_t> sample_seg;  ///< sample -> local segment index
  };

  /// Flat id of one (slot, segment) pair across the main tree's slots.
  struct SegRef {
    std::uint32_t slot = 0;
    std::uint32_t seg = 0;
  };

  /// Per-dirty-slot patch tree built over one slot's current samples
  /// (payload = local segment index). Replaces that slot's stale entries in
  /// the main tree until the next full rebuild folds it back in.
  struct Overlay {
    std::uint32_t slot = 0;
    std::uint64_t epoch = 0;  ///< slot epoch the overlay was built at
    index::RangeTree2D tree;
  };

  /// Bring the cached main tree + overlays up to date with the slot epochs.
  void refresh_cache() const;
  /// Grid twin of refresh_cache(): re-inserts only the slots whose epoch
  /// moved (O(segments of dirty slots), no overlays needed — the grid
  /// updates in place).
  void refresh_grid() const;
  [[nodiscard]] bool use_grid() const {
    if (backend_ != ClearanceBackend::Auto) return backend_ == ClearanceBackend::Grid;
    return slots_.size() >= kGridAutoSlots;
  }

  drc::DesignRules rules_;
  DrcCheckOptions opts_;
  ClearanceBackend backend_ = ClearanceBackend::Auto;
  double max_width_ = 0.0;  ///< over declared widths; frozen by first insert
  std::vector<Slot> slots_;
  /// Per-slot mutation counter: bumped by insert()/remove(). Epoch
  /// comparisons drive every cache decision, so there is no validity flag
  /// to get stale on move.
  std::vector<std::uint64_t> slot_epoch_;

  // --- sweep cache (only touched inside sweep(), which is the barrier) ---
  mutable index::RangeTree2D cache_tree_;              ///< main tree
  mutable std::vector<SegRef> cache_segs_;             ///< main payload -> (slot, seg)
  mutable std::vector<std::uint64_t> cache_built_epoch_;  ///< per slot, at build
  mutable std::vector<Overlay> overlays_;
  // --- grid backend state (also only touched inside sweep()) ---
  mutable index::SegGrid grid_;  ///< payload packs (slot << 32) | segment
  mutable std::vector<std::vector<std::uint32_t>> grid_ids_;  ///< per slot: entry ids
  mutable std::vector<std::uint64_t> grid_built_epoch_;       ///< per slot, at build
  mutable std::vector<Violation> result_;              ///< last sweep's output
  mutable std::vector<std::uint64_t> result_epochs_;   ///< epochs it was valid at
};

}  // namespace lmr::layout
