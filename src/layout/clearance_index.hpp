#pragma once
/// \file clearance_index.hpp
/// Incrementally-buildable cross-net clearance index.
///
/// The one-shot sweep (clearance_sweep.hpp) samples every trace, builds the
/// range tree and runs the window queries in a single tail call — pure
/// added latency after the last group member finishes extending. The staged
/// routing pipeline wants the per-trace half of that work to happen *while*
/// other members are still extending, so `ClearanceIndex` splits the sweep
/// into three phases:
///
///  1. `add_slot()` — declare every participating trace up front (serial,
///     cheap). This fixes the sampling pitch (a function of the declared
///     widths only) and the deterministic slot order that violation
///     ordering is keyed on.
///  2. `insert()`  — sample one trace's segments into its slot. Each call
///     writes only that slot's pre-allocated storage, so inserts for
///     distinct slots are safe from concurrent pipeline chains: a member
///     indexes its own geometry the moment it lands, in any order.
///  3. `sweep()`   — the only remaining barrier: assemble the range tree
///     over the pre-sampled points and run the query / exact-check pass.
///
/// The output is identical — same violations, same order — to running
/// `cross_clearance_sweep` over the same traces in slot order: sampling
/// depends only on each trace's own geometry and the declared widths, and
/// candidates are ordered by slot index, never by insertion timing.

#include <cstdint>
#include <vector>

#include "drc/rules.hpp"
#include "geom/vec2.hpp"
#include "layout/drc_checker.hpp"
#include "layout/trace.hpp"

namespace lmr::layout {

/// The incremental form of the cross-net clearance sweep. Not copyable; a
/// fresh index is cheap and a sweep is usually one-shot per routed group.
class ClearanceIndex {
 public:
  explicit ClearanceIndex(const drc::DesignRules& rules, DrcCheckOptions opts = {});

  /// Declare one participating trace: its width (enters the worst-case gap
  /// that sizes sampling pitch and query windows) and its net id (traces of
  /// equal net are never checked against each other). Returns the dense
  /// slot id, assigned in call order — the order violations are keyed on.
  /// All slots must be declared before the first `insert`.
  std::uint32_t add_slot(double width, std::uint32_t net);

  /// Sample `trace`'s segments into `slot`. Thread-safe for distinct slots
  /// (each call touches only its own slot's storage); `trace` must outlive
  /// the index. Inserting a slot twice replaces its samples.
  void insert(std::uint32_t slot, const Trace& trace);

  /// Query-only pass over everything inserted so far: build the range tree
  /// from the pre-sampled points and run the exact checks. Returns all
  /// TraceGap violations between traces of different nets, deterministically
  /// ordered by (slot a, slot b, segment a, segment b). Slots that were
  /// declared but never inserted simply do not participate.
  [[nodiscard]] std::vector<Violation> sweep() const;

  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

 private:
  struct Slot {
    const Trace* trace = nullptr;  ///< null until insert()
    std::uint32_t net = 0;
    double width = 0.0;
    std::vector<geom::Point> samples;
    std::vector<std::uint32_t> sample_seg;  ///< sample -> local segment index
  };

  drc::DesignRules rules_;
  DrcCheckOptions opts_;
  double max_width_ = 0.0;  ///< over declared widths; frozen by first insert
  std::vector<Slot> slots_;
};

}  // namespace lmr::layout
