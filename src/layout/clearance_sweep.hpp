#pragma once
/// \file clearance_sweep.hpp
/// Indexed cross-net clearance sweep.
///
/// The naive TraceGap check compares every segment of every trace against
/// every segment of every other trace — O(m² s²) for m traces of s segments,
/// the dominant DRC cost on large matching groups. This sweep reuses the
/// paper's 2-D range tree (§IV-D): sample points along every segment go into
/// one tree, each segment queries a window inflated by the worst-case gap,
/// and only the surviving candidate pairs pay an exact distance check.
/// Output is the naive loop's violation set, deterministically ordered by
/// (trace index, other trace index, segment, other segment).
///
/// This is the one-shot convenience form of `layout::ClearanceIndex`
/// (clearance_index.hpp), which the staged routing pipeline uses directly
/// to overlap the sampling work with member extension.

#include <cstdint>
#include <vector>

#include "drc/rules.hpp"
#include "layout/drc_checker.hpp"
#include "layout/trace.hpp"

namespace lmr::layout {

/// One trace participating in the sweep. Traces with equal `net` are never
/// checked against each other (sub-traces of one differential member, or
/// one matching-group member's geometry).
struct SweepTrace {
  const Trace* trace = nullptr;
  std::uint32_t net = 0;
};

/// All TraceGap violations between traces of different nets — the same set
/// `DrcChecker::check_trace_pair` finds over every (i, j) input pair with
/// `net_i < net_j`. Runs in O(S log² S + k) for S total segments instead of
/// O(S²).
[[nodiscard]] std::vector<Violation> cross_clearance_sweep(
    const std::vector<SweepTrace>& traces, const drc::DesignRules& rules,
    const DrcCheckOptions& opts = {});

}  // namespace lmr::layout
