#pragma once
/// \file board_edit.hpp
/// High-level board edits for routed-layout sessions.
///
/// A `LayoutDelta` records one primitive mutation after the fact; a
/// `BoardEdit` describes one *user-level* edit before it happens — "drop a
/// via here", "nudge this obstacle", "retarget this group" — and
/// `apply_edit` lowers it onto the layout as the matching primitive
/// mutations, keeping the derived state consistent: routable-area holes
/// mirror the obstacle set (the generator pushes the identical polygon to
/// both, so holes are matched back to obstacles by exact point equality),
/// exactly as if the board had been generated with the edit already in
/// place. That last property is what makes the incremental re-route
/// oracle-checkable — applying the same edits to a pristine copy of the
/// board and routing it fresh must reproduce the session's state bit for
/// bit.
///
/// Edits are plain data, so an edit script can be generated once (see
/// scenario::edit_storm) and replayed on both sides of the oracle.

#include <cstddef>
#include <string>
#include <vector>

#include "geom/polygon.hpp"
#include "layout/layout.hpp"

namespace lmr::layout {

enum class BoardEditKind {
  AddObstacle,     ///< new obstacle polygon, punched into overlapping areas
  MoveObstacle,    ///< translate an obstacle (and its area holes) by `move`
  RemoveObstacle,  ///< erase an obstacle (and its area holes)
  SetGroupTarget,  ///< change one group's target length
};

/// One user-level edit. Only the fields of the active kind are meaningful.
struct BoardEdit {
  BoardEditKind kind = BoardEditKind::AddObstacle;
  geom::Polygon shape;               ///< AddObstacle
  std::string name;                  ///< AddObstacle
  std::size_t obstacle = kNoIndex;   ///< Move/RemoveObstacle
  geom::Vec2 move;                   ///< MoveObstacle
  std::size_t group = kNoIndex;      ///< SetGroupTarget
  double target = 0.0;               ///< SetGroupTarget
};

/// Lower `edit` onto `l` through the recorded mutators. Returns every
/// primitive delta produced, in application order (the obstacle mutation
/// first, then one SetRoutableArea per area whose holes changed). Throws
/// std::out_of_range on a bad obstacle/group index and std::logic_error
/// while a route is in flight, in both cases before mutating anything.
std::vector<LayoutDelta> apply_edit(Layout& l, const BoardEdit& edit);

}  // namespace lmr::layout
