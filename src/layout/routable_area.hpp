#pragma once
/// \file routable_area.hpp
/// Per-trace routable area: "the union of non-overlapping routing regions
/// assigned to a trace, represented as some irregular polygons" (§II), with
/// obstacles "converted into a part of the routable area" as holes.

#include <vector>

#include "geom/polygon.hpp"

namespace lmr::layout {

/// Routable area = outline polygon minus hole polygons. Holes are obstacle
/// polygons (possibly inflated for d_obs) lying inside the outline.
struct RoutableArea {
  geom::Polygon outline;
  std::vector<geom::Polygon> holes;

  /// True when `p` lies in the outline and outside every hole.
  [[nodiscard]] bool contains(const geom::Point& p) const;

  /// Free area = outline area minus hole areas (holes assumed disjoint and
  /// inside the outline).
  [[nodiscard]] double free_area() const;

  [[nodiscard]] geom::Box bbox() const { return outline.bbox(); }
};

}  // namespace lmr::layout
