#include "bench_harness/suite.hpp"

#include <algorithm>

#include "bench_harness/report.hpp"
#include "core/clock.hpp"
#include "fault/fault_plan.hpp"
#include "pipeline/session.hpp"
#include "scenario/edit_storm.hpp"
#include "scenario/fault_storm.hpp"
#include "scenario/service_storm.hpp"
#include "service/routing_service.hpp"

namespace lmr::bench {

namespace {

using core::seconds_since;

Json spec_json(const scenario::ScenarioSpec& s) {
  Json j = Json::object();
  j["corridor_length"] = s.corridor_length;
  j["band_height"] = s.band_height;
  j["corridor_angle_deg"] = s.corridor_angle_deg;
  j["groups"] = static_cast<std::int64_t>(s.groups);
  j["members_per_group"] = static_cast<std::int64_t>(s.members_per_group);
  j["diff_fraction"] = s.diff_fraction;
  j["pair_pitch"] = s.pair_pitch;
  j["dra_sections"] = static_cast<std::int64_t>(s.dra_sections);
  j["vias_per_band"] = static_cast<std::int64_t>(s.vias_per_band);
  j["target_fraction"] = s.target_fraction;
  Json rules = Json::object();
  rules["gap"] = s.rules.gap;
  rules["obs"] = s.rules.obs;
  rules["protect"] = s.rules.protect;
  rules["miter"] = s.rules.miter;
  rules["trace_width"] = s.rules.trace_width;
  j["rules"] = std::move(rules);
  return j;
}

Json group_json(const GroupOutcome& g) {
  Json j = Json::object();
  j["group"] = g.group;
  j["target"] = g.target;
  j["members"] = static_cast<std::int64_t>(g.members);
  j["initial_max_error_pct"] = g.initial_max_error_pct;
  j["initial_avg_error_pct"] = g.initial_avg_error_pct;
  j["max_error_pct"] = g.max_error_pct;
  j["avg_error_pct"] = g.avg_error_pct;
  j["matched"] = g.matched;
  j["patterns"] = static_cast<std::int64_t>(g.patterns);
  j["net_violations"] = static_cast<std::int64_t>(g.net_violations);
  j["cross_violations"] = static_cast<std::int64_t>(g.cross_violations);
  j["runtime_s"] = g.runtime_s;
  j["extend_runtime_s"] = g.extend_runtime_s;
  j["drc_overlap_runtime_s"] = g.drc_overlap_runtime_s;
  j["drc_barrier_runtime_s"] = g.drc_barrier_runtime_s;
  j["drc_runtime_s"] = g.drc_runtime_s;
  return j;
}

std::vector<scenario::Family> selected_families(const SuiteOptions& opts) {
  if (opts.families.empty()) return scenario::standard_families(opts.smoke);
  std::vector<scenario::Family> families;
  for (const std::string& name : opts.families) {
    families.push_back(scenario::family(name, opts.smoke));
  }
  return families;
}

}  // namespace

bool CaseOutcome::matched() const {
  return std::all_of(groups.begin(), groups.end(),
                     [](const GroupOutcome& g) { return g.matched; });
}

bool CaseOutcome::drc_clean() const {
  return std::all_of(groups.begin(), groups.end(), [](const GroupOutcome& g) {
    return g.net_violations == 0 && g.cross_violations == 0;
  });
}

double CaseOutcome::worst_error_pct() const {
  double worst = 0.0;
  for (const GroupOutcome& g : groups) worst = std::max(worst, g.max_error_pct);
  return worst;
}

bool SuiteResult::all_ok() const {
  return std::all_of(cases.begin(), cases.end(),
                     [](const CaseOutcome& c) { return c.ok(); });
}

Suite::Suite(SuiteOptions opts)
    : opts_(std::move(opts)), pool_handle_(opts_.threads) {}

exec::TaskPool* Suite::pool() const { return pool_handle_.acquire(); }

pipeline::RouterOptions Suite::scenario_router_options(const scenario::Scenario& sc) const {
  pipeline::RouterOptions ropts = opts_.router;
  ropts.run_drc = opts_.run_drc;
  if (sc.spec.extender_tolerance > 0.0) {
    ropts.extender.tolerance = sc.spec.extender_tolerance;
  }
  if (sc.pair_rule_set.size() > 1) ropts.pair_rule_set = sc.pair_rule_set;
  return ropts;
}

pipeline::RouterOptions Suite::router_options_for(const scenario::Scenario& sc) const {
  pipeline::RouterOptions ropts = scenario_router_options(sc);
  ropts.threads = opts_.threads;
  ropts.pool = pool();  // one executor across cases, groups and members
  return ropts;
}

CaseOutcome Suite::run_case(const scenario::Family& fam,
                            const scenario::FamilyCase& fc) const {
  const auto t_case = core::now();
  scenario::Scenario sc = scenario::materialize(fc);

  CaseOutcome outcome;
  outcome.family = fam.name;
  outcome.scenario = sc.spec.name;
  outcome.seed = sc.seed;
  outcome.max_error_gate_pct = fam.max_error_gate_pct;
  outcome.expect_drc_clean = fc.expect_drc_clean;
  outcome.traces = sc.layout.traces().size();
  outcome.pairs = sc.layout.pairs().size();
  outcome.obstacles = sc.layout.obstacles().size();
  outcome.threads_used = exec::resolve_threads(opts_.threads);

  const pipeline::Router router(sc.rules, router_options_for(sc));

  for (const pipeline::RouteResult& rr : router.route_all(sc.layout)) {
    GroupOutcome go;
    go.group = rr.group.group_name;
    go.target = rr.group.target;
    go.initial_max_error_pct = rr.group.initial_max_error_pct;
    go.initial_avg_error_pct = rr.group.initial_avg_error_pct;
    go.max_error_pct = rr.group.max_error_pct;
    go.avg_error_pct = rr.group.avg_error_pct;
    go.matched = rr.matched();
    go.members = rr.group.members.size();
    for (const pipeline::MemberReport& mr : rr.group.members) go.patterns += mr.patterns;
    for (const pipeline::NetResult& net : rr.nets) {
      go.net_violations += net.violations.size();
    }
    go.cross_violations = rr.cross_violations.size();
    go.runtime_s = rr.runtime_s;
    go.extend_runtime_s = rr.extend_runtime_s;
    go.drc_overlap_runtime_s = rr.drc_overlap_runtime_s;
    go.drc_barrier_runtime_s = rr.drc_barrier_runtime_s;
    go.drc_runtime_s = rr.drc_runtime_s;
    outcome.groups.push_back(std::move(go));
  }
  outcome.runtime_s = seconds_since(t_case);
  return outcome;
}

SuiteResult Suite::run() const {
  SuiteResult result;
  const auto t_suite = core::now();

  // Flatten (family, case) so independent boards become one task batch;
  // every outcome is written at its flat index, which keeps the report
  // order — and therefore the JSON bytes — identical across thread counts.
  struct Flat {
    const scenario::Family* fam;
    const scenario::FamilyCase* fc;
  };
  const std::vector<scenario::Family> families = selected_families(opts_);
  std::vector<Flat> flat;
  for (const scenario::Family& fam : families) {
    for (const scenario::FamilyCase& fc : fam.cases) flat.push_back({&fam, &fc});
  }

  result.cases.resize(flat.size());
  exec::TaskPool* pool_ptr = pool();
  const std::size_t threads = exec::resolve_threads(opts_.threads);
  if (pool_ptr == nullptr || threads <= 1) {
    for (std::size_t i = 0; i < flat.size(); ++i) {
      result.cases[i] = run_case(*flat[i].fam, *flat[i].fc);
    }
  } else {
    exec::parallel_for_dynamic(*pool_ptr, flat.size(), threads, [&](std::size_t i) {
      result.cases[i] = run_case(*flat[i].fam, *flat[i].fc);
    });
  }
  result.runtime_s = seconds_since(t_suite);
  return result;
}

std::vector<std::size_t> Suite::default_scaling_threads() {
  std::vector<std::size_t> counts = {1, 2, 4};
  const std::size_t hw = exec::resolve_threads(0);
  if (hw > 4) counts.push_back(hw);
  return counts;
}

std::vector<ScalingCurve> Suite::run_scaling(const SuiteOptions& base,
                                             const std::vector<std::string>& families,
                                             const std::vector<std::size_t>& thread_counts) {
  std::vector<ScalingCurve> curves;
  for (const std::string& fam : families) {
    ScalingCurve curve;
    curve.family = fam;
    double t_ref = 0.0;
    for (const std::size_t threads : thread_counts) {
      SuiteOptions opts = base;
      opts.families = {fam};
      opts.threads = threads;
      const Suite suite(opts);
      const SuiteResult r = suite.run();
      ScalingPoint p;
      p.threads = threads;
      p.runtime_s = r.runtime_s;
      // The first entry is the baseline by position (conventionally 1
      // thread); its speedup is 1 by definition even if the clock
      // resolution rounds a smoke-sized run down to zero.
      if (curve.points.empty()) {
        t_ref = r.runtime_s;
        p.speedup = 1.0;
      } else {
        p.speedup = p.runtime_s > 0.0 ? t_ref / p.runtime_s : 0.0;
      }
      curve.points.push_back(p);
    }
    curves.push_back(std::move(curve));
  }
  return curves;
}

std::vector<OverlapComparison> Suite::run_drc_overlap(
    const SuiteOptions& base, const std::vector<std::string>& families) {
  // Min of several repeats per schedule, with each schedule's Suite (and
  // therefore its pool) reused across its repeats: a single cold sample
  // would charge thread spin-up and allocator warm-up to whichever schedule
  // runs first and report that bias as a "win".
  constexpr int kRepeats = 3;
  std::vector<OverlapComparison> comparisons;
  for (const std::string& fam : families) {
    OverlapComparison cmp;
    cmp.family = fam;
    for (const pipeline::DrcSchedule schedule :
         {pipeline::DrcSchedule::Barrier, pipeline::DrcSchedule::Overlapped}) {
      SuiteOptions opts = base;
      opts.families = {fam};
      opts.router.drc_schedule = schedule;
      const Suite suite(opts);
      double best = 0.0;
      for (int rep = 0; rep < kRepeats; ++rep) {
        const SuiteResult r = suite.run();
        best = rep == 0 ? r.runtime_s : std::min(best, r.runtime_s);
      }
      (schedule == pipeline::DrcSchedule::Barrier ? cmp.barrier_runtime_s
                                                  : cmp.overlapped_runtime_s) = best;
    }
    cmp.speedup = cmp.overlapped_runtime_s > 0.0
                      ? cmp.barrier_runtime_s / cmp.overlapped_runtime_s
                      : 0.0;
    comparisons.push_back(std::move(cmp));
  }
  return comparisons;
}

std::vector<BackendComparison> Suite::run_backend_compare(
    const SuiteOptions& base, const std::vector<std::string>& families) {
  // The backend decides the broadphase cost of the *board-level* clearance
  // sweep — the Session::board_clearance shape, where every net on the
  // board shares one index (1k+ slots on mega_board). End-to-end route time
  // is extension/oracle-dominated and would bury the difference, so: route
  // each family once (routed geometry is backend-invariant, enforced by the
  // clearance_backend tests), then time a cold build-insert-sweep of a
  // whole-board index per backend. Min of repeats, same shape as
  // run_drc_overlap and for the same reason: a single cold sample would
  // bill allocator warm-up to whichever backend runs first.
  constexpr int kRepeats = 3;
  std::vector<BackendComparison> comparisons;
  for (const std::string& fam : families) {
    SuiteOptions opts = base;
    opts.families = {fam};
    const Suite suite(opts);

    std::vector<scenario::Scenario> boards;
    for (const scenario::FamilyCase& fc : scenario::family(fam, opts.smoke).cases) {
      scenario::Scenario sc = scenario::materialize(fc);
      const pipeline::Router router(sc.rules, suite.router_options_for(sc));
      (void)router.route_all(sc.layout);
      boards.push_back(std::move(sc));
    }

    BackendComparison cmp;
    cmp.family = fam;
    for (const layout::ClearanceBackend backend :
         {layout::ClearanceBackend::RangeTree, layout::ClearanceBackend::Grid}) {
      double best = 0.0;
      for (int rep = 0; rep < kRepeats; ++rep) {
        const auto t0 = core::now();
        for (const scenario::Scenario& sc : boards) {
          layout::ClearanceIndex index(sc.rules, opts.router.drc, backend);
          // Slot per sub-trace, pair halves sharing a net: the
          // Session::reindex_groups shape.
          std::uint32_t net = 0;
          for (const layout::MatchGroup& g : sc.layout.groups()) {
            for (const layout::GroupMember& m : g.members) {
              if (m.kind == layout::MemberKind::SingleEnded) {
                const layout::Trace& t = sc.layout.trace(m.id);
                index.insert(index.add_slot(t.width, net), t);
              } else {
                const layout::DiffPair& p = sc.layout.pair(m.id);
                index.insert(index.add_slot(p.positive.width, net), p.positive);
                index.insert(index.add_slot(p.negative.width, net), p.negative);
              }
              ++net;
            }
          }
          // sweep() mutates the index's caches, so it cannot be elided.
          (void)index.sweep();
        }
        const double took = seconds_since(t0);
        best = rep == 0 ? took : std::min(best, took);
      }
      (backend == layout::ClearanceBackend::RangeTree ? cmp.range_tree_sweep_s
                                                      : cmp.grid_sweep_s) = best;
    }
    cmp.speedup =
        cmp.grid_sweep_s > 0.0 ? cmp.range_tree_sweep_s / cmp.grid_sweep_s : 0.0;
    comparisons.push_back(std::move(cmp));
  }
  return comparisons;
}

Json Suite::backend_json(const std::vector<BackendComparison>& comparisons) {
  Json out = Json::array();
  for (const BackendComparison& c : comparisons) {
    Json jc = Json::object();
    jc["family"] = c.family;
    jc["range_tree_sweep_s"] = c.range_tree_sweep_s;
    jc["grid_sweep_s"] = c.grid_sweep_s;
    jc["speedup"] = c.speedup;
    out.push_back(std::move(jc));
  }
  return out;
}

std::vector<EditStormOutcome> Suite::run_edit_storm() const {
  std::vector<EditStormOutcome> storms;
  for (const scenario::EditStormCase& c : scenario::edit_storm_cases(opts_.smoke)) {
    scenario::EditStorm storm = scenario::materialize_storm(c);

    EditStormOutcome out;
    out.name = storm.spec.name;
    out.base_scenario = storm.scenario.spec.name;
    out.edits = storm.edits.size();
    out.groups_total = storm.scenario.layout.groups().size();

    const pipeline::RouterOptions ropts = router_options_for(storm.scenario);
    pipeline::Session session(storm.scenario.rules, ropts, storm.scenario.layout);
    auto t0 = core::now();
    session.route();
    out.initial_route_s = seconds_since(t0);

    // One apply per edit: the interactive cadence the latency ratio is
    // about. (Batching all edits into one apply would re-route each touched
    // group once instead of once per touching edit.)
    for (const layout::BoardEdit& edit : storm.edits) {
      const pipeline::ApplyOutcome applied = session.apply(edit);
      EditStormStep step;
      step.rerouted = applied.rerouted_groups.size();
      step.reroute_s = applied.reroute_s;
      out.rerouted_total += step.rerouted;
      out.reroute_total_s += step.reroute_s;
      if (step.rerouted < out.groups_total) out.incremental = true;
      out.steps.push_back(step);
    }

    // Oracle: regenerate the pristine board from the same seed, replay the
    // identical script, route it from scratch.
    scenario::Scenario fresh = scenario::materialize(c.base);
    for (const layout::BoardEdit& edit : storm.edits) {
      layout::apply_edit(fresh.layout, edit);
    }
    const pipeline::Router router(fresh.rules, ropts);
    t0 = core::now();
    const pipeline::BoardRoute full = router.route_board(fresh.layout);
    out.full_route_s = seconds_since(t0);
    out.equivalent = pipeline::routes_equivalent(session.layout(), session.route_state(),
                                                 fresh.layout, full, &out.mismatch);

    const double mean_reroute =
        out.steps.empty() ? 0.0 : out.reroute_total_s / static_cast<double>(out.steps.size());
    out.speedup = mean_reroute > 0.0 ? out.full_route_s / mean_reroute : 0.0;
    storms.push_back(std::move(out));
  }
  return storms;
}

Json Suite::edit_storm_json(const std::vector<EditStormOutcome>& storms) {
  Json out = Json::array();
  for (const EditStormOutcome& s : storms) {
    Json js = Json::object();
    js["name"] = s.name;
    js["base_scenario"] = s.base_scenario;
    js["edits"] = static_cast<std::int64_t>(s.edits);
    js["groups_total"] = static_cast<std::int64_t>(s.groups_total);
    js["rerouted_total"] = static_cast<std::int64_t>(s.rerouted_total);
    js["incremental"] = s.incremental;
    js["equivalent"] = s.equivalent;
    if (!s.equivalent) js["mismatch"] = s.mismatch;
    Json jsteps = Json::array();
    for (const EditStormStep& st : s.steps) {
      Json jst = Json::object();
      jst["rerouted"] = static_cast<std::int64_t>(st.rerouted);
      jst["reroute_s"] = st.reroute_s;
      jsteps.push_back(std::move(jst));
    }
    js["steps"] = std::move(jsteps);
    js["initial_route_s"] = s.initial_route_s;
    js["reroute_total_s"] = s.reroute_total_s;
    js["full_route_s"] = s.full_route_s;
    js["speedup"] = s.speedup;
    out.push_back(std::move(js));
  }
  return out;
}

bool ServiceStormOutcome::all_equivalent() const {
  return std::all_of(points.begin(), points.end(),
                     [](const ServiceThreadPoint& p) { return p.all_equivalent; });
}

std::vector<ServiceStormOutcome> Suite::run_service(
    const std::vector<std::size_t>& thread_counts) const {
  std::vector<ServiceStormOutcome> outcomes;
  for (const scenario::ServiceStormCase& c :
       scenario::service_storm_cases(opts_.smoke)) {
    scenario::ServiceStorm storm = scenario::materialize_service_storm(c);

    ServiceStormOutcome out;
    out.name = c.name;
    out.boards = storm.boards.size();
    out.events = storm.stream.size();

    // Per-board stream-event counts, for the per-board readout.
    std::vector<std::size_t> event_counts(storm.boards.size(), 0);
    for (const scenario::ServiceStormEvent& ev : storm.stream) {
      ++event_counts[ev.board];
    }

    // Oracle end states: regenerate each pristine board, replay its script,
    // route it from scratch. Computed once, not per thread count — routed
    // geometry is thread-count invariant by construction (and separately
    // enforced by the reproducibility tests).
    std::vector<scenario::Scenario> fresh;
    std::vector<pipeline::BoardRoute> fresh_routes;
    for (const scenario::EditStorm& bs : storm.boards) {
      scenario::Scenario f = scenario::materialize(bs.spec.base);
      for (const layout::BoardEdit& e : bs.edits) layout::apply_edit(f.layout, e);
      const pipeline::Router router(f.rules, router_options_for(f));
      fresh_routes.push_back(router.route_board(f.layout));
      fresh.push_back(std::move(f));
    }

    for (const std::size_t threads : thread_counts) {
      service::ServiceOptions sopts;
      sopts.threads = threads;
      service::RoutingService svc(sopts);
      for (const scenario::EditStorm& bs : storm.boards) {
        svc.add_board(bs.spec.name, bs.scenario.rules,
                      scenario_router_options(bs.scenario), bs.scenario.layout);
      }
      svc.drain();  // initial routes settle before the replay clock starts

      const auto t0 = core::now();
      for (const scenario::ServiceStormEvent& ev : storm.stream) {
        svc.submit(storm.boards[ev.board].spec.name, ev.edit);
        if (ev.sync_after) svc.drain();
        if (ev.evict_after) {
          svc.drain();
          svc.evict_idle();
        }
      }
      svc.drain();
      const double replay_s = seconds_since(t0);

      ServiceThreadPoint p;
      p.threads = threads;
      p.replay_s = replay_s;
      p.edits_per_s =
          replay_s > 0.0 ? static_cast<double>(out.events) / replay_s : 0.0;
      p.all_equivalent = true;
      for (std::size_t b = 0; b < storm.boards.size(); ++b) {
        const std::string& id = storm.boards[b].spec.name;
        const service::BoardStats st = svc.stats(id);
        ServiceBoardOutcome bo;
        bo.board = id;
        bo.edits = event_counts[b];
        bo.applied = st.applied;
        bo.batches = st.batches;
        bo.coalesced_batches = st.coalesced_batches;
        bo.max_batch = st.max_batch;
        bo.max_queue_depth = st.max_queue_depth;
        bo.queued_while_frozen = st.queued_while_frozen;
        bo.evictions = st.evictions;
        bo.thaws = st.thaws;
        bo.equivalent =
            pipeline::routes_equivalent(svc.board_layout(id), svc.board_route(id),
                                        fresh[b].layout, fresh_routes[b], &bo.mismatch);
        p.all_equivalent = p.all_equivalent && bo.equivalent;
        p.batches += bo.batches;
        p.coalesced_batches += bo.coalesced_batches;
        p.max_batch = std::max(p.max_batch, bo.max_batch);
        p.max_queue_depth = std::max(p.max_queue_depth, bo.max_queue_depth);
        p.queued_while_frozen += bo.queued_while_frozen;
        p.evictions += bo.evictions;
        p.thaws += bo.thaws;
        p.boards.push_back(std::move(bo));
      }
      out.points.push_back(std::move(p));
    }
    outcomes.push_back(std::move(out));
  }
  return outcomes;
}

Json Suite::service_json(const std::vector<ServiceStormOutcome>& storms) {
  Json out = Json::array();
  for (const ServiceStormOutcome& s : storms) {
    Json js = Json::object();
    js["name"] = s.name;
    js["boards"] = static_cast<std::int64_t>(s.boards);
    js["events"] = static_cast<std::int64_t>(s.events);
    js["all_equivalent"] = s.all_equivalent();
    Json jpoints = Json::array();
    for (const ServiceThreadPoint& p : s.points) {
      Json jp = Json::object();
      jp["threads"] = static_cast<std::int64_t>(p.threads);
      jp["replay_s"] = p.replay_s;
      jp["edits_per_s"] = p.edits_per_s;
      jp["batches"] = static_cast<std::int64_t>(p.batches);
      jp["coalesced_batches"] = static_cast<std::int64_t>(p.coalesced_batches);
      jp["max_batch"] = static_cast<std::int64_t>(p.max_batch);
      jp["max_queue_depth"] = static_cast<std::int64_t>(p.max_queue_depth);
      jp["queued_while_frozen"] = static_cast<std::int64_t>(p.queued_while_frozen);
      jp["evictions"] = static_cast<std::int64_t>(p.evictions);
      jp["thaws"] = static_cast<std::int64_t>(p.thaws);
      jp["all_equivalent"] = p.all_equivalent;
      Json jboards = Json::array();
      for (const ServiceBoardOutcome& b : p.boards) {
        Json jb = Json::object();
        jb["board"] = b.board;
        jb["edits"] = static_cast<std::int64_t>(b.edits);
        jb["applied"] = static_cast<std::int64_t>(b.applied);
        jb["batches"] = static_cast<std::int64_t>(b.batches);
        jb["coalesced_batches"] = static_cast<std::int64_t>(b.coalesced_batches);
        jb["max_batch"] = static_cast<std::int64_t>(b.max_batch);
        jb["max_queue_depth"] = static_cast<std::int64_t>(b.max_queue_depth);
        jb["queued_while_frozen"] = static_cast<std::int64_t>(b.queued_while_frozen);
        jb["evictions"] = static_cast<std::int64_t>(b.evictions);
        jb["thaws"] = static_cast<std::int64_t>(b.thaws);
        jb["equivalent"] = b.equivalent;
        if (!b.equivalent) jb["mismatch"] = b.mismatch;
        jboards.push_back(std::move(jb));
      }
      jp["boards"] = std::move(jboards);
      jpoints.push_back(std::move(jp));
    }
    js["points"] = std::move(jpoints);
    out.push_back(std::move(js));
  }
  return out;
}

bool FaultStormOutcome::all_ok() const {
  return !points.empty() &&
         std::all_of(points.begin(), points.end(), [](const FaultThreadPoint& p) {
           return p.all_equivalent && p.gates_ok;
         });
}

namespace {

const char* fault_kind_name(scenario::FaultStormKind k) {
  switch (k) {
    case scenario::FaultStormKind::Transient: return "transient";
    case scenario::FaultStormKind::Timeout: return "timeout";
    case scenario::FaultStormKind::Quarantine: return "quarantine";
  }
  return "unknown";
}

}  // namespace

std::vector<FaultStormOutcome> Suite::run_fault_storm(
    const std::vector<std::size_t>& thread_counts,
    std::uint64_t seed_override) const {
  std::vector<FaultStormOutcome> outcomes;
  for (const scenario::FaultStormCase& c :
       scenario::fault_storm_cases(opts_.smoke, seed_override)) {
    const scenario::FaultStorm storm = scenario::materialize_fault_storm(c);

    FaultStormOutcome out;
    out.name = c.name;
    out.kind = fault_kind_name(c.kind);
    out.fault_seed = c.fault_seed;
    out.boards = storm.storm.boards.size();
    out.events = storm.storm.stream.size();
    out.rules = storm.rules.size();

    // Full-script oracles, once per board — routed geometry is thread-count
    // invariant, and the fault plane must not change where a board *ends up*,
    // only which attempts it loses on the way.
    std::vector<scenario::Scenario> fresh;
    std::vector<pipeline::BoardRoute> fresh_routes;
    for (const scenario::EditStorm& bs : storm.storm.boards) {
      scenario::Scenario f = scenario::materialize(bs.spec.base);
      for (const layout::BoardEdit& e : bs.edits) layout::apply_edit(f.layout, e);
      const pipeline::Router router(f.rules, router_options_for(f));
      fresh_routes.push_back(router.route_board(f.layout));
      fresh.push_back(std::move(f));
    }

    for (const std::size_t threads : thread_counts) {
      // A FRESH plan per replay: occurrence counters are plan state, so a
      // shared instance would shift every window on the second replay.
      service::ServiceOptions sopts;
      sopts.threads = threads;
      sopts.max_attempts = c.max_attempts;
      sopts.fault_plan = std::make_shared<fault::FaultPlan>(storm.rules);
      service::RoutingService svc(sopts);
      for (std::size_t b = 0; b < storm.storm.boards.size(); ++b) {
        const scenario::EditStorm& bs = storm.storm.boards[b];
        pipeline::RouterOptions ropts = scenario_router_options(bs.scenario);
        if (b == storm.timeout_board) ropts.deadline_s = c.deadline_s;
        svc.add_board(bs.spec.name, bs.scenario.rules, ropts, bs.scenario.layout);
      }

      FaultThreadPoint p;
      p.threads = threads;
      const auto drain = [&svc, &p] {
        try {
          svc.drain();
        } catch (const service::ServiceError& e) {
          p.drain_failures += e.failures().size();
        }
      };

      drain();  // initial routes settle; initial-route kills surface here
      const auto t0 = core::now();
      for (const scenario::ServiceStormEvent& ev : storm.storm.stream) {
        (void)svc.submit(storm.storm.boards[ev.board].spec.name, ev.edit);
        if (ev.sync_after) drain();
      }
      drain();
      p.replay_s = seconds_since(t0);

      p.all_equivalent = true;
      std::size_t quarantine_targets_hit = 0;
      for (std::size_t b = 0; b < storm.storm.boards.size(); ++b) {
        const scenario::EditStorm& bs = storm.storm.boards[b];
        const std::string& id = bs.spec.name;
        FaultBoardOutcome bo;
        bo.board = id;
        bo.edits = bs.edits.size();
        bo.applied = svc.stats(id).applied;  // pre-recovery: the served prefix
        bo.quarantined = svc.is_quarantined(id);

        if (bo.quarantined) {
          // A quarantined routed board must serve its last-good state: a
          // fresh route of exactly the edits it committed. A board killed
          // during its initial route serves nothing — skip straight to
          // recovery.
          if (svc.is_routed(id)) {
            scenario::Scenario pre = scenario::materialize(bs.spec.base);
            for (std::uint64_t k = 0; k < bo.applied; ++k) {
              layout::apply_edit(pre.layout, bs.edits.at(k));
            }
            const pipeline::Router router(pre.rules, router_options_for(pre));
            const pipeline::BoardRoute pre_route = router.route_board(pre.layout);
            bo.prefix_equivalent = pipeline::routes_equivalent(
                svc.board_layout(id), svc.board_route(id), pre.layout, pre_route,
                &bo.mismatch);
          }
          // Re-admit and replay the lost suffix. The storm's rule windows are
          // sized to be exhausted by now, so the replay must converge.
          bool ok = svc.resurrect(id);
          for (std::size_t k = bo.applied; k < bs.edits.size(); ++k) {
            ok = svc.submit(id, bs.edits[k]).accepted() && ok;
          }
          try {
            svc.drain();
          } catch (const service::ServiceError& e) {
            p.drain_failures += e.failures().size();
            ok = false;
          }
          bo.recovered = ok && !svc.is_quarantined(id);
        }

        bo.equivalent = pipeline::routes_equivalent(
            svc.board_layout(id), svc.board_route(id), fresh[b].layout,
            fresh_routes[b], &bo.mismatch);

        const service::BoardStats st = svc.stats(id);  // recovery included
        bo.retries = st.retries;
        bo.degraded_retries = st.degraded_retries;
        bo.timeouts = st.timeouts;
        bo.injected_faults = st.injected_faults;
        bo.quarantines = st.quarantines;
        bo.resurrections = st.resurrections;
        bo.shed = st.shed;
        bo.dropped_edits = st.dropped_edits;
        bo.backoff_virtual_s = st.backoff_virtual_s;

        p.retries += bo.retries;
        p.timeouts += bo.timeouts;
        p.injected_faults += bo.injected_faults;
        p.quarantines += bo.quarantines;
        p.resurrections += bo.resurrections;
        p.shed += bo.shed;
        p.dropped_edits += bo.dropped_edits;
        p.all_equivalent = p.all_equivalent && bo.equivalent &&
                           bo.prefix_equivalent && bo.recovered;
        p.boards.push_back(std::move(bo));
      }
      for (const std::size_t qb : storm.quarantine_boards) {
        if (p.boards[qb].quarantined) ++quarantine_targets_hit;
      }

      switch (c.kind) {
        case scenario::FaultStormKind::Transient:
          // Every window is one-shot: faults must have fired, the first
          // retry rung must have absorbed them, nothing may quarantine.
          p.gates_ok = p.injected_faults >= 1 && p.retries >= 1 &&
                       p.quarantines == 0;
          break;
        case scenario::FaultStormKind::Timeout:
          p.gates_ok = p.timeouts >= 1;
          break;
        case scenario::FaultStormKind::Quarantine:
          p.gates_ok = quarantine_targets_hit == storm.quarantine_boards.size() &&
                       p.quarantines >= storm.quarantine_boards.size() &&
                       p.resurrections >= storm.quarantine_boards.size();
          break;
      }
      out.points.push_back(std::move(p));
    }
    outcomes.push_back(std::move(out));
  }
  return outcomes;
}

Json Suite::fault_storm_json(const std::vector<FaultStormOutcome>& storms) {
  Json out = Json::array();
  for (const FaultStormOutcome& s : storms) {
    Json js = Json::object();
    js["name"] = s.name;
    js["kind"] = s.kind;
    js["fault_seed"] = static_cast<std::int64_t>(s.fault_seed);
    js["boards"] = static_cast<std::int64_t>(s.boards);
    js["events"] = static_cast<std::int64_t>(s.events);
    js["rules"] = static_cast<std::int64_t>(s.rules);
    js["all_ok"] = s.all_ok();
    Json jpoints = Json::array();
    for (const FaultThreadPoint& p : s.points) {
      Json jp = Json::object();
      jp["threads"] = static_cast<std::int64_t>(p.threads);
      jp["replay_s"] = p.replay_s;
      jp["retries"] = static_cast<std::int64_t>(p.retries);
      jp["timeouts"] = static_cast<std::int64_t>(p.timeouts);
      jp["injected_faults"] = static_cast<std::int64_t>(p.injected_faults);
      jp["quarantines"] = static_cast<std::int64_t>(p.quarantines);
      jp["resurrections"] = static_cast<std::int64_t>(p.resurrections);
      jp["shed"] = static_cast<std::int64_t>(p.shed);
      jp["dropped_edits"] = static_cast<std::int64_t>(p.dropped_edits);
      jp["drain_failures"] = static_cast<std::int64_t>(p.drain_failures);
      jp["all_equivalent"] = p.all_equivalent;
      jp["gates_ok"] = p.gates_ok;
      Json jboards = Json::array();
      for (const FaultBoardOutcome& b : p.boards) {
        Json jb = Json::object();
        jb["board"] = b.board;
        jb["edits"] = static_cast<std::int64_t>(b.edits);
        jb["applied"] = static_cast<std::int64_t>(b.applied);
        jb["retries"] = static_cast<std::int64_t>(b.retries);
        jb["degraded_retries"] = static_cast<std::int64_t>(b.degraded_retries);
        jb["timeouts"] = static_cast<std::int64_t>(b.timeouts);
        jb["injected_faults"] = static_cast<std::int64_t>(b.injected_faults);
        jb["quarantines"] = static_cast<std::int64_t>(b.quarantines);
        jb["resurrections"] = static_cast<std::int64_t>(b.resurrections);
        jb["shed"] = static_cast<std::int64_t>(b.shed);
        jb["dropped_edits"] = static_cast<std::int64_t>(b.dropped_edits);
        jb["backoff_virtual_s"] = b.backoff_virtual_s;
        jb["quarantined"] = b.quarantined;
        jb["prefix_equivalent"] = b.prefix_equivalent;
        jb["recovered"] = b.recovered;
        jb["equivalent"] = b.equivalent;
        if (!b.mismatch.empty()) jb["mismatch"] = b.mismatch;
        jboards.push_back(std::move(jb));
      }
      jp["boards"] = std::move(jboards);
      jpoints.push_back(std::move(jp));
    }
    js["points"] = std::move(jpoints);
    out.push_back(std::move(js));
  }
  return out;
}

Json Suite::drc_overlap_json(const std::vector<OverlapComparison>& comparisons) {
  Json out = Json::array();
  for (const OverlapComparison& c : comparisons) {
    Json jc = Json::object();
    jc["family"] = c.family;
    jc["barrier_runtime_s"] = c.barrier_runtime_s;
    jc["overlapped_runtime_s"] = c.overlapped_runtime_s;
    jc["speedup"] = c.speedup;
    out.push_back(std::move(jc));
  }
  return out;
}

Json Suite::scaling_json(const std::vector<ScalingCurve>& curves) {
  Json jcurves = Json::array();
  for (const ScalingCurve& c : curves) {
    Json jc = Json::object();
    jc["family"] = c.family;
    Json jpoints = Json::array();
    for (const ScalingPoint& p : c.points) {
      Json jp = Json::object();
      jp["threads"] = static_cast<std::int64_t>(p.threads);
      jp["runtime_s"] = p.runtime_s;
      jp["speedup"] = p.speedup;
      jpoints.push_back(std::move(jp));
    }
    jc["points"] = std::move(jpoints);
    jcurves.push_back(std::move(jc));
  }
  return jcurves;
}

Json Suite::to_json(const SuiteResult& result, const SuiteOptions& opts) {
  Json doc = Json::object();
  doc["schema"] = kSchema;
  Json jrun = run_info_json(collect_run_info());
  // Effective parallelism next to the machine context: `hardware_threads`
  // alone says nothing about what the run actually used.
  jrun["threads_used"] = static_cast<std::int64_t>(exec::resolve_threads(opts.threads));
  jrun["pool_policy"] = opts.threads == 0   ? "shared-pool"
                        : opts.threads == 1 ? "serial"
                                            : "explicit-pool";
  doc["run"] = std::move(jrun);

  Json jopts = Json::object();
  jopts["smoke"] = opts.smoke;
  jopts["run_drc"] = opts.run_drc;
  jopts["l_disc"] = opts.router.extender.l_disc;
  jopts["max_width_steps"] = static_cast<std::int64_t>(opts.router.extender.max_width_steps);
  doc["options"] = std::move(jopts);

  // Group cases by family, preserving run order.
  Json jfams = Json::array();
  for (std::size_t i = 0; i < result.cases.size();) {
    const std::string& fam = result.cases[i].family;
    Json jf = Json::object();
    jf["family"] = fam;
    Json jcases = Json::array();
    for (; i < result.cases.size() && result.cases[i].family == fam; ++i) {
      const CaseOutcome& c = result.cases[i];
      Json jc = Json::object();
      jc["scenario"] = c.scenario;
      jc["seed"] = Json{c.seed};  // checked: throws above INT64_MAX
      jc["max_error_gate_pct"] = c.max_error_gate_pct;
      jc["expect_drc_clean"] = c.expect_drc_clean;
      jc["traces"] = static_cast<std::int64_t>(c.traces);
      jc["pairs"] = static_cast<std::int64_t>(c.pairs);
      jc["obstacles"] = static_cast<std::int64_t>(c.obstacles);
      jc["threads_used"] = static_cast<std::int64_t>(c.threads_used);
      jc["ok"] = c.ok();
      Json jgroups = Json::array();
      for (const GroupOutcome& g : c.groups) jgroups.push_back(group_json(g));
      jc["groups"] = std::move(jgroups);
      jc["runtime_s"] = c.runtime_s;
      jcases.push_back(std::move(jc));
    }
    jf["cases"] = std::move(jcases);
    jfams.push_back(std::move(jf));
  }
  doc["families"] = std::move(jfams);
  doc["runtime_s"] = result.runtime_s;

  // Self-description of the generated workloads: one entry per case that
  // actually ran, so `(spec, seed)` pairs in the file regenerate the boards.
  Json jspecs = Json::array();
  for (const scenario::Family& fam : selected_families(opts)) {
    for (const scenario::FamilyCase& fc : fam.cases) {
      Json js = Json::object();
      js["family"] = fam.name;
      js["scenario"] = fc.spec.name;
      js["seed"] = Json{fc.seed};  // checked: throws above INT64_MAX
      if (fc.table1_case > 0) {
        js["table1_case"] = static_cast<std::int64_t>(fc.table1_case);
      } else {
        js["spec"] = spec_json(fc.spec);
      }
      jspecs.push_back(std::move(js));
    }
  }
  doc["specs"] = std::move(jspecs);
  return doc;
}

}  // namespace lmr::bench
