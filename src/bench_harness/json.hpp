#pragma once
/// \file json.hpp
/// Minimal JSON value model for the benchmark harness.
///
/// Design constraints that rule out an off-the-shelf library:
///  * objects preserve insertion order, so a dump is deterministic and
///    `BENCH_results.json` diffs stay readable across runs;
///  * doubles serialize via std::to_chars (shortest round-trip form), so the
///    same metric value always produces the same bytes — the reproducibility
///    contract of the suite ("bit-identical modulo timing fields") rests on
///    this;
///  * a parser is included so tests can assert round-trip fidelity and tools
///    can post-process tracked results without another dependency.
///
/// The model is deliberately small: null, bool, int64, double, string,
/// array, ordered object. Everything the harness writes fits these.

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace lmr::bench {

/// One JSON value. Copyable; object member order is insertion order.
class Json {
 public:
  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(int i) : v_(static_cast<std::int64_t>(i)) {}
  Json(std::int64_t i) : v_(i) {}
  /// Throws std::overflow_error above INT64_MAX: silently wrapping to a
  /// negative number would corrupt round-tripped values (e.g. the
  /// `(spec, seed)` pairs tracked results are regenerated from).
  Json(std::uint64_t i) : v_(checked_int64(i)) {}
  Json(double d) : v_(d) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(Array a) : v_(std::move(a)) {}
  Json(Object o) : v_(std::move(o)) {}

  static Json object() { return Json{Object{}}; }
  static Json array() { return Json{Array{}}; }

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(v_); }

  /// Typed accessors; throw std::bad_variant_access on mismatch.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  /// Numeric read that accepts both int and double storage.
  [[nodiscard]] double as_double() const {
    return is_int() ? static_cast<double>(std::get<std::int64_t>(v_)) : std::get<double>(v_);
  }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
  [[nodiscard]] const Array& items() const { return std::get<Array>(v_); }
  [[nodiscard]] Array& items() { return std::get<Array>(v_); }
  [[nodiscard]] const Object& members() const { return std::get<Object>(v_); }
  [[nodiscard]] Object& members() { return std::get<Object>(v_); }

  /// Object access: returns the member, inserting a null member (and
  /// converting a null value into an object) when absent.
  Json& operator[](const std::string& key);
  /// Lookup without insertion; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Remove an object member if present; no-op otherwise.
  void erase(const std::string& key);

  /// Array append (converts a null value into an array).
  void push_back(Json v);

  [[nodiscard]] std::size_t size() const;

  /// Serialize. indent = 0 is compact one-line; indent > 0 pretty-prints
  /// with that many spaces per level. Key order is insertion order, so the
  /// output is deterministic for deterministically built values.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parse a complete JSON document. Throws std::runtime_error (with a byte
  /// offset in the message) on malformed input or trailing garbage.
  static Json parse(const std::string& text);

  bool operator==(const Json& o) const = default;

 private:
  static std::int64_t checked_int64(std::uint64_t i);

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object> v_;
};

}  // namespace lmr::bench
