#pragma once
/// \file suite.hpp
/// Benchmark-suite runner: scenario families -> Router -> tracked JSON.
///
/// `Suite::run()` materializes every case of the selected scenario
/// families, drives `pipeline::Router::route_batch()` over every matching
/// group, and collects the paper's Eq. 19 quality metrics, runtimes and DRC
/// verdicts. `to_json` serializes the outcome under the report conventions
/// of report.hpp, so `BENCH_results.json` can be committed and re-generated
/// bit-identically (modulo `"run"` and `*_s` timing fields) from the same
/// seeds.

#include <cstdint>
#include <string>
#include <vector>

#include "bench_harness/json.hpp"
#include "pipeline/router.hpp"
#include "scenario/scenario_families.hpp"

namespace lmr::bench {

/// Runner configuration.
struct SuiteOptions {
  bool smoke = false;                  ///< tiny variants of every family
  std::vector<std::string> families;   ///< empty = all standard families
  std::size_t threads = 0;             ///< route_batch workers; 0 = hardware
  bool run_drc = true;                 ///< final oracle sweep per group
  pipeline::RouterOptions router;      ///< engine/extender base options

  SuiteOptions() {
    // The Table I bench configuration: fine grid, capped width loop.
    router.extender.l_disc = 0.5;
    router.extender.max_width_steps = 24;
  }
};

/// One routed group's outcome.
struct GroupOutcome {
  std::string group;
  double target = 0.0;
  double initial_max_error_pct = 0.0;
  double initial_avg_error_pct = 0.0;
  double max_error_pct = 0.0;
  double avg_error_pct = 0.0;
  bool matched = false;
  std::size_t members = 0;
  int patterns = 0;                    ///< total inserted patterns
  std::size_t net_violations = 0;      ///< per-net oracle violations
  std::size_t cross_violations = 0;    ///< cross-member clearance violations
  double runtime_s = 0.0;
  double drc_runtime_s = 0.0;          ///< oracle-sweep share of runtime_s
};

/// One scenario's outcome.
struct CaseOutcome {
  std::string family;
  std::string scenario;
  std::uint64_t seed = 0;
  double max_error_gate_pct = 0.0;  ///< family pass ceiling; <= 0 = no gate
  bool expect_drc_clean = true;
  std::size_t traces = 0;
  std::size_t pairs = 0;
  std::size_t obstacles = 0;
  std::vector<GroupOutcome> groups;
  double runtime_s = 0.0;

  [[nodiscard]] bool matched() const;
  [[nodiscard]] bool drc_clean() const;
  [[nodiscard]] double worst_error_pct() const;
  /// Under the family's error gate, and DRC-clean where expected.
  [[nodiscard]] bool ok() const {
    if (expect_drc_clean && !drc_clean()) return false;
    return max_error_gate_pct <= 0.0 || worst_error_pct() <= max_error_gate_pct;
  }
};

/// Whole-suite outcome.
struct SuiteResult {
  std::vector<CaseOutcome> cases;
  double runtime_s = 0.0;

  [[nodiscard]] bool all_ok() const;
};

/// The runner. Construct with options, `run()` as often as needed.
class Suite {
 public:
  explicit Suite(SuiteOptions opts = {});

  /// Run the selected families. Throws std::out_of_range on an unknown
  /// family name.
  [[nodiscard]] SuiteResult run() const;

  /// Full result document (schema + run info + options + cases).
  [[nodiscard]] static Json to_json(const SuiteResult& result, const SuiteOptions& opts);

  [[nodiscard]] const SuiteOptions& options() const { return opts_; }

  /// Document schema id written into every result file.
  static constexpr const char* kSchema = "lmroute-bench-suite/v1";

 private:
  SuiteOptions opts_;
};

}  // namespace lmr::bench
