#pragma once
/// \file suite.hpp
/// Benchmark-suite runner: scenario families -> Router -> tracked JSON.
///
/// `Suite::run()` materializes every case of the selected scenario
/// families, drives `pipeline::Router::route_all()` over every board, and
/// collects the paper's Eq. 19 quality metrics, runtimes and DRC verdicts.
/// Independent cases run concurrently on one persistent work-stealing pool
/// (exec/task_pool) shared with the Routers' group/member fan-outs; every
/// metric is written by case index, so the report is byte-identical across
/// thread counts. `to_json` serializes the outcome under the report
/// conventions of report.hpp, so `BENCH_results.json` can be committed and
/// re-generated bit-identically (modulo the volatile context: `"run"`,
/// `"scaling"`, `"drc_overlap"`, `"backend"`, `threads_used`/`pool_policy`,
/// and `*_s` timing fields) from the same seeds. `run_scaling` sweeps thread counts
/// over selected families and reports the speedup curve; `run_drc_overlap`
/// diffs the staged pipeline against the legacy barrier schedule.

#include <cstdint>
#include <string>
#include <vector>

#include "bench_harness/json.hpp"
#include "exec/task_pool.hpp"
#include "pipeline/router.hpp"
#include "scenario/scenario_families.hpp"

namespace lmr::bench {

/// Runner configuration.
struct SuiteOptions {
  bool smoke = false;                  ///< tiny variants of every family
  std::vector<std::string> families;   ///< empty = all standard families
  /// Pool-wide parallelism across cases, groups and members; 0 = hardware
  /// (exec::resolve_threads), 1 = fully serial.
  std::size_t threads = 0;
  bool run_drc = true;                 ///< final oracle sweep per group
  pipeline::RouterOptions router;      ///< engine/extender base options

  SuiteOptions() {
    // The Table I bench configuration: fine grid, capped width loop.
    router.extender.l_disc = 0.5;
    router.extender.max_width_steps = 24;
  }
};

/// One routed group's outcome.
struct GroupOutcome {
  std::string group;
  double target = 0.0;
  double initial_max_error_pct = 0.0;
  double initial_avg_error_pct = 0.0;
  double max_error_pct = 0.0;
  double avg_error_pct = 0.0;
  bool matched = false;
  std::size_t members = 0;
  int patterns = 0;                    ///< total inserted patterns
  std::size_t net_violations = 0;      ///< per-net oracle violations
  std::size_t cross_violations = 0;    ///< cross-member clearance violations
  double runtime_s = 0.0;
  double extend_runtime_s = 0.0;       ///< aggregate extension work time
  /// Aggregate per-net oracle work (overlapped with extension by default).
  double drc_overlap_runtime_s = 0.0;
  /// Wall time of the final cross-member clearance query pass.
  double drc_barrier_runtime_s = 0.0;
  double drc_runtime_s = 0.0;          ///< total oracle work (overlap + barrier)
};

/// One scenario's outcome.
struct CaseOutcome {
  std::string family;
  std::string scenario;
  std::uint64_t seed = 0;
  double max_error_gate_pct = 0.0;  ///< family pass ceiling; <= 0 = no gate
  bool expect_drc_clean = true;
  std::size_t traces = 0;
  std::size_t pairs = 0;
  std::size_t obstacles = 0;
  /// Effective parallelism the case ran under (volatile context, like
  /// "run": stripped by strip_volatile so thread counts never change the
  /// tracked quality document).
  std::size_t threads_used = 1;
  std::vector<GroupOutcome> groups;
  double runtime_s = 0.0;

  [[nodiscard]] bool matched() const;
  [[nodiscard]] bool drc_clean() const;
  [[nodiscard]] double worst_error_pct() const;
  /// Under the family's error gate, and DRC-clean where expected.
  [[nodiscard]] bool ok() const {
    if (expect_drc_clean && !drc_clean()) return false;
    return max_error_gate_pct <= 0.0 || worst_error_pct() <= max_error_gate_pct;
  }
};

/// Whole-suite outcome.
struct SuiteResult {
  std::vector<CaseOutcome> cases;
  double runtime_s = 0.0;

  [[nodiscard]] bool all_ok() const;
};

/// One measured point of a thread-count sweep.
struct ScalingPoint {
  std::size_t threads = 0;
  double runtime_s = 0.0;
  /// Baseline runtime / runtime at `threads`. The baseline is the sweep's
  /// *first* entry by position (1.0 there by definition); pass 1 as the
  /// first thread count — as `default_scaling_threads()` does — to read
  /// this as absolute speedup over serial.
  double speedup = 0.0;
};

/// The speedup curve of one family under the sweep.
struct ScalingCurve {
  std::string family;
  std::vector<ScalingPoint> points;  ///< in `thread_counts` order
};

/// Barrier-vs-overlapped DRC scheduling comparison for one family (see
/// pipeline::DrcSchedule): the measured value of the staged pipeline,
/// bounded per family by the recorded `drc_runtime_s`.
struct OverlapComparison {
  std::string family;
  double barrier_runtime_s = 0.0;     ///< two-phase flow wall time
  double overlapped_runtime_s = 0.0;  ///< staged-pipeline wall time
  double speedup = 0.0;               ///< barrier / overlapped
};

/// Range-tree-vs-grid clearance broadphase comparison for one family (see
/// layout::ClearanceBackend): the family's boards routed once, then a cold
/// whole-board build-insert-sweep timed per forced backend (the
/// Session::board_clearance shape — every net in one index), min of
/// repeats. Violations are bit-identical by construction (enforced by the
/// clearance_backend tests); only the sweep cost differs.
struct BackendComparison {
  std::string family;
  double range_tree_sweep_s = 0.0;  ///< backend forced to RangeTree
  double grid_sweep_s = 0.0;        ///< backend forced to Grid
  double speedup = 0.0;             ///< range_tree / grid
};

/// One `Session::apply` of an edit storm.
struct EditStormStep {
  std::size_t rerouted = 0;   ///< groups the reroute actually re-ran
  double reroute_s = 0.0;     ///< wall time of the incremental reroute
};

/// One edit-storm case: a routed board driven through a seeded edit script
/// on a live pipeline::Session, oracle-checked against a fresh route of the
/// final edited board.
struct EditStormOutcome {
  std::string name;
  std::string base_scenario;
  std::size_t edits = 0;
  std::size_t groups_total = 0;
  std::vector<EditStormStep> steps;     ///< one per edit, in script order
  std::size_t rerouted_total = 0;       ///< sum of steps[i].rerouted
  /// Some step re-routed strictly fewer groups than the board holds — the
  /// incrementality proof actually pruned work.
  bool incremental = false;
  /// Session state after the storm is routes_equivalent to a fresh
  /// route_board of the same edited board. The hard correctness gate:
  /// bench_suite --edit-storm exits non-zero when false.
  bool equivalent = false;
  std::string mismatch;                 ///< first difference when !equivalent
  double initial_route_s = 0.0;         ///< full route of the pristine board
  double reroute_total_s = 0.0;         ///< sum of incremental reroutes
  double full_route_s = 0.0;            ///< fresh route of the edited board
  /// full_route_s / mean(step reroute_s): the latency win of answering one
  /// edit incrementally instead of re-routing the board.
  double speedup = 0.0;
};

/// One board's end-of-stream outcome inside a service replay point.
struct ServiceBoardOutcome {
  std::string board;              ///< board id (the per-board storm name)
  std::size_t edits = 0;          ///< stream events addressed to this board
  std::uint64_t applied = 0;      ///< edits applied through the Session
  std::uint64_t batches = 0;      ///< dispatches (one reroute + sweep each)
  std::uint64_t coalesced_batches = 0;
  std::uint64_t max_batch = 0;
  std::uint64_t max_queue_depth = 0;
  std::uint64_t queued_while_frozen = 0;
  std::uint64_t evictions = 0;
  std::uint64_t thaws = 0;
  /// Service end state is routes_equivalent to a fresh route_board of the
  /// edited board — the hard gate, per board per thread count.
  bool equivalent = false;
  std::string mismatch;           ///< first difference when !equivalent
};

/// One thread count of a service replay sweep.
struct ServiceThreadPoint {
  std::size_t threads = 0;
  double replay_s = 0.0;     ///< submit of event 0 → final drain returned
  double edits_per_s = 0.0;  ///< events / replay_s, the aggregate rate
  std::uint64_t batches = 0;             ///< summed over boards
  std::uint64_t coalesced_batches = 0;
  std::uint64_t max_batch = 0;           ///< max over boards
  std::uint64_t max_queue_depth = 0;     ///< max over boards
  std::uint64_t queued_while_frozen = 0;
  std::uint64_t evictions = 0;
  std::uint64_t thaws = 0;
  std::vector<ServiceBoardOutcome> boards;
  bool all_equivalent = false;
};

/// One service-storm case replayed at every swept thread count.
struct ServiceStormOutcome {
  std::string name;
  std::size_t boards = 0;
  std::size_t events = 0;
  std::vector<ServiceThreadPoint> points;  ///< in sweep order

  [[nodiscard]] bool all_equivalent() const;
};

/// One board's end-of-storm verdict inside a fault replay point.
struct FaultBoardOutcome {
  std::string board;
  std::size_t edits = 0;            ///< script length for this board
  std::uint64_t applied = 0;        ///< edits committed before the final drain
  std::uint64_t retries = 0;
  std::uint64_t degraded_retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t injected_faults = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t resurrections = 0;
  std::uint64_t shed = 0;
  std::uint64_t dropped_edits = 0;
  double backoff_virtual_s = 0.0;
  bool quarantined = false;  ///< board was quarantined when the stream drained
  /// Quarantined boards only: the served last-good state matched a fresh
  /// route of the applied-edit prefix of the script (vacuously true for a
  /// board that was never routed — there is no state to serve).
  bool prefix_equivalent = true;
  /// Quarantined boards only: resurrect() + replay of the lost suffix
  /// converged to the full-script oracle (true outright for survivors).
  bool recovered = true;
  /// End state (post-recovery where needed) is routes_equivalent to a fresh
  /// route_board of the fully edited board — the hard gate.
  bool equivalent = false;
  std::string mismatch;  ///< first difference when a check failed
};

/// One thread count of a fault-storm replay.
struct FaultThreadPoint {
  std::size_t threads = 0;
  double replay_s = 0.0;  ///< submit of event 0 → final drain returned
  std::uint64_t retries = 0;             ///< summed over boards
  std::uint64_t timeouts = 0;
  std::uint64_t injected_faults = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t resurrections = 0;
  std::uint64_t shed = 0;
  std::uint64_t dropped_edits = 0;
  std::size_t drain_failures = 0;  ///< BoardFailure entries across all drains
  std::vector<FaultBoardOutcome> boards;
  bool all_equivalent = false;  ///< every board equivalent + prefix/recovery ok
  /// The kind-specific fault gate: the storm actually exercised what it was
  /// synthesized to (Transient: faults fired, retries absorbed them, nothing
  /// quarantined; Timeout: a deadline fired; Quarantine: both target boards
  /// quarantined and were resurrected).
  bool gates_ok = false;
};

/// One fault-storm case replayed at every swept thread count.
struct FaultStormOutcome {
  std::string name;
  std::string kind;  ///< "transient" | "timeout" | "quarantine"
  std::uint64_t fault_seed = 0;
  std::size_t boards = 0;
  std::size_t events = 0;
  std::size_t rules = 0;  ///< synthesized fault rules armed per replay
  std::vector<FaultThreadPoint> points;  ///< in sweep order

  [[nodiscard]] bool all_ok() const;  ///< equivalence + gates at every point
};

/// The runner. Construct with options, `run()` as often as needed — the
/// executor persists for the Suite's lifetime, so repeated runs reuse the
/// same workers.
class Suite {
 public:
  explicit Suite(SuiteOptions opts = {});

  /// Run the selected families. Throws std::out_of_range on an unknown
  /// family name.
  [[nodiscard]] SuiteResult run() const;

  /// Full result document (schema + run info + options + cases).
  [[nodiscard]] static Json to_json(const SuiteResult& result, const SuiteOptions& opts);

  /// Thread-count sweep: rerun `families` once per entry of
  /// `thread_counts` (each through its own pinned-size pool) and report
  /// wall-clock plus speedup relative to the first entry — conventionally
  /// 1, giving the absolute scaling curve. Quality metrics are discarded:
  /// they are thread-count-invariant by construction (and separately
  /// enforced by the reproducibility tests); only the timings differ.
  [[nodiscard]] static std::vector<ScalingCurve> run_scaling(
      const SuiteOptions& base, const std::vector<std::string>& families,
      const std::vector<std::size_t>& thread_counts);

  /// Default sweep {1, 2, 4, (hardware if > 4)} — small enough for CI,
  /// wide enough to see the knee.
  [[nodiscard]] static std::vector<std::size_t> default_scaling_threads();

  /// `"scaling"` section for a result document (volatile by definition:
  /// strip_volatile removes the whole section).
  [[nodiscard]] static Json scaling_json(const std::vector<ScalingCurve>& curves);

  /// Rerun `families` once per DRC schedule (Barrier, then Overlapped) and
  /// report the wall-clock win of the staged pipeline. Quality metrics are
  /// discarded: they are schedule-invariant by construction (and separately
  /// enforced by the pipeline equivalence tests).
  [[nodiscard]] static std::vector<OverlapComparison> run_drc_overlap(
      const SuiteOptions& base, const std::vector<std::string>& families);

  /// `"drc_overlap"` section for a result document (volatile by definition:
  /// strip_volatile removes the whole section).
  [[nodiscard]] static Json drc_overlap_json(
      const std::vector<OverlapComparison>& comparisons);

  /// Route `families` once each, then time a cold whole-board clearance
  /// sweep per forced backend (RangeTree, then Grid) and report the
  /// wall-clock win of the uniform-grid broadphase on the board-level
  /// index. Violations are backend-invariant by construction (and
  /// separately enforced by the clearance_backend equivalence tests).
  [[nodiscard]] static std::vector<BackendComparison> run_backend_compare(
      const SuiteOptions& base, const std::vector<std::string>& families);

  /// `"backend"` section for a result document (volatile by definition:
  /// strip_volatile removes the whole section).
  [[nodiscard]] static Json backend_json(
      const std::vector<BackendComparison>& comparisons);

  /// Replay the edit-storm catalogue (scenario::edit_storm_cases) on live
  /// Sessions sharing this Suite's pool and options: route the pristine
  /// board, apply every scripted edit through Session::apply, then
  /// oracle-check the final session state against a fresh route_board of
  /// the same edited board (pipeline::routes_equivalent). Reroute and
  /// full-route wall clocks feed the reroute-vs-full latency ratio.
  [[nodiscard]] std::vector<EditStormOutcome> run_edit_storm() const;

  /// `"edit_storm"` section for a result document (volatile by definition:
  /// strip_volatile removes the whole section — the payload is timings).
  [[nodiscard]] static Json edit_storm_json(const std::vector<EditStormOutcome>& storms);

  /// Replay the service-storm catalogue (scenario::service_storm_cases)
  /// through a service::RoutingService once per entry of `thread_counts`
  /// (each service owning its own executor of that size), honouring the
  /// stream's sync/evict markers, and oracle-check every board's end state
  /// against a fresh route_board of its edited board — computed once per
  /// board, since routed geometry is thread-count invariant. Queue-depth,
  /// coalescing and eviction/thaw counters come from the service's own
  /// per-board stats.
  [[nodiscard]] std::vector<ServiceStormOutcome> run_service(
      const std::vector<std::size_t>& thread_counts) const;

  /// `"service"` section for a result document (volatile by definition:
  /// strip_volatile removes the whole section — the payload is timings,
  /// rates and scheduling counters).
  [[nodiscard]] static Json service_json(const std::vector<ServiceStormOutcome>& storms);

  /// Replay the fault-storm catalogue (scenario::fault_storm_cases) once
  /// per entry of `thread_counts`, each replay arming a FRESH FaultPlan
  /// built from the storm's synthesized rules (occurrence counters are
  /// plan state). The replay drives the full degradation ladder — retries,
  /// degraded retries, deadline timeouts, quarantine — then checks, per
  /// board: quarantined boards serve a last-good state equivalent to a
  /// fresh route of their applied-edit prefix, resurrect() + replay of the
  /// lost suffix converges, and every board's end state is
  /// routes_equivalent to the full-script oracle. `seed_override`
  /// (non-zero) re-seeds the rule synthesis — the reproduction knob behind
  /// `bench_suite --fault-storm --seed N`.
  [[nodiscard]] std::vector<FaultStormOutcome> run_fault_storm(
      const std::vector<std::size_t>& thread_counts,
      std::uint64_t seed_override = 0) const;

  /// `"fault_storm"` section for a result document (volatile by definition:
  /// strip_volatile removes the whole section — the payload is timings and
  /// fault/retry counters).
  [[nodiscard]] static Json fault_storm_json(const std::vector<FaultStormOutcome>& storms);

  [[nodiscard]] const SuiteOptions& options() const { return opts_; }

  /// The executor `run()` fans out on: nullptr when fully serial
  /// (threads == 1), the shared singleton for the hardware default
  /// (threads == 0), a private pinned-size pool otherwise.
  [[nodiscard]] exec::TaskPool* pool() const;

  /// Document schema id written into every result file.
  static constexpr const char* kSchema = "lmroute-bench-suite/v1";

 private:
  [[nodiscard]] CaseOutcome run_case(const scenario::Family& fam,
                                     const scenario::FamilyCase& fc) const;
  /// The suite's base RouterOptions specialized to one materialized board:
  /// threads/run_drc/pool wiring plus the scenario's extender tolerance and
  /// pair rule set. Shared by run_case and run_edit_storm so the storm
  /// sessions route exactly like the suite routes the same family.
  [[nodiscard]] pipeline::RouterOptions router_options_for(
      const scenario::Scenario& sc) const;
  /// The scenario-specific half of router_options_for, without the
  /// executor wiring: what run_service hands to RoutingService::add_board
  /// (the service overrides pool/threads with its own executor).
  [[nodiscard]] pipeline::RouterOptions scenario_router_options(
      const scenario::Scenario& sc) const;

  SuiteOptions opts_;
  /// Owns-or-borrows the executor per the exec 0/1/N convention (lazy).
  mutable exec::PoolHandle pool_handle_;
};

}  // namespace lmr::bench
