#include "bench_harness/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace lmr::bench {

namespace {

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void dump_double(double d, std::string& out) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; the harness never produces them, but a defensive
    // null beats emitting an unparseable token.
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, d);
  std::string_view sv{buf, static_cast<std::size_t>(res.ptr - buf)};
  out.append(sv);
  // Keep doubles distinguishable from ints on re-parse (round-trip types).
  if (sv.find('.') == std::string_view::npos && sv.find('e') == std::string_view::npos &&
      sv.find("inf") == std::string_view::npos) {
    out += ".0";
  }
}

/// Recursive-descent parser over a string view with offset-tagged errors.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json{parse_string()};
      case 't':
        if (consume_literal("true")) return Json{true};
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json{false};
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json{nullptr};
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.members().emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.items().push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // BMP-only UTF-8 encoding; the harness never emits surrogates.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view tok{s_.data() + start, pos_ - start};
    if (tok.empty() || tok == "-") fail("bad number");
    const bool floating = tok.find('.') != std::string_view::npos ||
                          tok.find('e') != std::string_view::npos ||
                          tok.find('E') != std::string_view::npos;
    if (!floating) {
      std::int64_t i = 0;
      const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (res.ec == std::errc{} && res.ptr == tok.data() + tok.size()) return Json{i};
    }
    double d = 0.0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc{} || res.ptr != tok.data() + tok.size()) fail("bad number");
    return Json{d};
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::int64_t Json::checked_int64(std::uint64_t i) {
  if (i > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    throw std::overflow_error("Json: unsigned value exceeds int64 range");
  }
  return static_cast<std::int64_t>(i);
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) v_ = Object{};
  Object& obj = std::get<Object>(v_);
  for (Member& m : obj) {
    if (m.first == key) return m.second;
  }
  obj.emplace_back(key, Json{});
  return obj.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const Member& m : std::get<Object>(v_)) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void Json::erase(const std::string& key) {
  if (!is_object()) return;
  Object& obj = std::get<Object>(v_);
  for (auto it = obj.begin(); it != obj.end(); ++it) {
    if (it->first == key) {
      obj.erase(it);
      return;
    }
  }
}

void Json::push_back(Json v) {
  if (is_null()) v_ = Array{};
  std::get<Array>(v_).push_back(std::move(v));
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(v_).size();
  if (is_object()) return std::get<Object>(v_).size();
  return 0;
}

std::string Json::dump(int indent) const {
  std::string out;
  const auto pad = [&](int depth) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * depth), ' ');
  };
  const auto rec = [&](const auto& self, const Json& v, int depth) -> void {
    if (v.is_null()) {
      out += "null";
    } else if (v.is_bool()) {
      out += v.as_bool() ? "true" : "false";
    } else if (v.is_int()) {
      out += std::to_string(v.as_int());
    } else if (v.is_double()) {
      dump_double(std::get<double>(v.v_), out);
    } else if (v.is_string()) {
      dump_string(v.as_string(), out);
    } else if (v.is_array()) {
      const Array& a = v.items();
      if (a.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i > 0) out.push_back(',');
        pad(depth + 1);
        self(self, a[i], depth + 1);
      }
      pad(depth);
      out.push_back(']');
    } else {
      const Object& o = v.members();
      if (o.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i > 0) out.push_back(',');
        pad(depth + 1);
        dump_string(o[i].first, out);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        self(self, o[i].second, depth + 1);
      }
      pad(depth);
      out.push_back('}');
    }
  };
  rec(rec, *this, 0);
  return out;
}

Json Json::parse(const std::string& text) { return Parser{text}.parse_document(); }

}  // namespace lmr::bench
