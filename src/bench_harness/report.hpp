#pragma once
/// \file report.hpp
/// Result-file conventions of the benchmark harness.
///
/// Every tracked result document follows rules that make regression
/// diffing mechanical:
///  * all machine-dependent context lives under the top-level `"run"`
///    object (host, OS, compiler, thread count, timestamp);
///  * every volatile measurement key ends in `"_s"` (seconds);
///  * parallelism context (`threads_used`, `pool_policy`) and the
///    timing-only `"scaling"` / `"drc_overlap"` / `"backend"` /
///    `"edit_storm"` / `"service"` sweep sections are volatile wherever they appear: routed
///    metrics are thread-count- and schedule-invariant by construction, so
///    the executor configuration must never change the stripped bytes.
/// `strip_volatile` removes exactly those, so two runs with the same seeds
/// — at *any* thread counts — must produce byte-identical stripped dumps:
/// the reproducibility check CI and the unit tests perform.

#include <string>

#include "bench_harness/json.hpp"

namespace lmr::bench {

/// Machine / build context recorded with every result file.
struct RunInfo {
  std::string host;
  std::string os;
  std::string compiler;
  std::string build_type;
  std::string timestamp_utc;  ///< ISO-8601, collection time
  int hardware_threads = 0;
};

/// Collect the current machine's context.
[[nodiscard]] RunInfo collect_run_info();

/// `run` object for a result document.
[[nodiscard]] Json run_info_json(const RunInfo& info);

/// Deep copy with the volatile members removed — the `"run"` object, the
/// `"scaling"`, `"drc_overlap"`, `"backend"`, `"edit_storm"` and
/// `"service"` sections,
/// `threads_used`/`pool_policy`,
/// and every `*_s`-suffixed key — the deterministic view of a result
/// document. `tools/strip_volatile.py` is the script-side twin; a unit test
/// keeps their outputs byte-identical on the tracked results file.
[[nodiscard]] Json strip_volatile(const Json& doc);

/// Write `doc` (pretty-printed, trailing newline) to `path`. Throws
/// std::runtime_error when the file cannot be written.
void write_json_file(const std::string& path, const Json& doc);

/// Bench-main epilogue: write `doc` to `path`, print "wrote PATH" on
/// stdout, report failures on stderr. Returns a process exit code (0 ok,
/// 2 on write failure) so mains can `return write_results_file(...)`.
[[nodiscard]] int write_results_file(const std::string& path, const Json& doc);

/// Read and parse a JSON document from `path`. Throws std::runtime_error on
/// I/O or parse failure.
[[nodiscard]] Json read_json_file(const std::string& path);

}  // namespace lmr::bench
