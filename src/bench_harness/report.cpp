#include "bench_harness/report.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#ifdef __unix__
#include <sys/utsname.h>
#include <unistd.h>

#include "core/clock.hpp"
#endif

namespace lmr::bench {

RunInfo collect_run_info() {
  RunInfo info;
#ifdef __unix__
  char host[256] = {0};
  if (gethostname(host, sizeof host - 1) == 0) info.host = host;
  utsname u{};
  if (uname(&u) == 0) info.os = std::string(u.sysname) + " " + u.release;
#endif
  if (info.host.empty()) info.host = "unknown";
  if (info.os.empty()) info.os = "unknown";
#if defined(__VERSION__)
  info.compiler = __VERSION__;
#else
  info.compiler = "unknown";
#endif
#ifdef NDEBUG
  info.build_type = "release";
#else
  info.build_type = "debug";
#endif
  info.hardware_threads = static_cast<int>(std::thread::hardware_concurrency());

  info.timestamp_utc = core::utc_timestamp();
  return info;
}

Json run_info_json(const RunInfo& info) {
  Json j = Json::object();
  j["host"] = info.host;
  j["os"] = info.os;
  j["compiler"] = info.compiler;
  j["build_type"] = info.build_type;
  j["hardware_threads"] = info.hardware_threads;
  j["timestamp_utc"] = info.timestamp_utc;
  return j;
}

Json strip_volatile(const Json& doc) {
  if (doc.is_array()) {
    Json out = Json::array();
    for (const Json& item : doc.items()) out.push_back(strip_volatile(item));
    return out;
  }
  if (doc.is_object()) {
    Json out = Json::object();
    for (const auto& [key, value] : doc.members()) {
      if (key == "run" || key == "scaling" || key == "drc_overlap" ||
          key == "backend" || key == "edit_storm" || key == "service" ||
          key == "fault_storm") {
        continue;
      }
      if (key == "threads_used" || key == "pool_policy") continue;
      if (key.size() >= 2 && key.compare(key.size() - 2, 2, "_s") == 0) continue;
      out[key] = strip_volatile(value);
    }
    return out;
  }
  return doc;
}

void write_json_file(const std::string& path, const Json& doc) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << doc.dump(2) << '\n';
  if (!out) throw std::runtime_error("write failed: " + path);
}

int write_results_file(const std::string& path, const Json& doc) {
  try {
    write_json_file(path, doc);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot write results: %s\n", e.what());
    return 2;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

Json read_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Json::parse(ss.str());
}

}  // namespace lmr::bench
