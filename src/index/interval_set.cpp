#include "index/interval_set.hpp"

#include <algorithm>

namespace lmr::index {

void IntervalSet::insert(double lo, double hi) {
  if (hi < lo) std::swap(lo, hi);
  auto it = std::lower_bound(ivs_.begin(), ivs_.end(), lo,
                             [](const Interval& iv, double v) { return iv.hi < v; });
  Interval merged{lo, hi};
  auto first = it;
  while (it != ivs_.end() && it->lo <= merged.hi) {
    merged.lo = std::min(merged.lo, it->lo);
    merged.hi = std::max(merged.hi, it->hi);
    ++it;
  }
  it = ivs_.erase(first, it);
  ivs_.insert(it, merged);
}

double IntervalSet::total_length() const {
  double total = 0.0;
  for (const Interval& iv : ivs_) total += iv.length();
  return total;
}

bool IntervalSet::intersects(double lo, double hi, double tol) const {
  auto it = std::lower_bound(ivs_.begin(), ivs_.end(), lo - tol,
                             [](const Interval& iv, double v) { return iv.hi < v; });
  return it != ivs_.end() && it->lo <= hi + tol;
}

std::vector<Interval> IntervalSet::gaps(double lo, double hi) const {
  std::vector<Interval> out;
  double cursor = lo;
  for (const Interval& iv : ivs_) {
    if (iv.hi < lo) continue;
    if (iv.lo > hi) break;
    if (iv.lo > cursor) out.push_back({cursor, std::min(iv.lo, hi)});
    cursor = std::max(cursor, iv.hi);
    if (cursor >= hi) break;
  }
  if (cursor < hi) out.push_back({cursor, hi});
  return out;
}

}  // namespace lmr::index
