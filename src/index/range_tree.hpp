#pragma once
/// \file range_tree.hpp
/// Static 2-D range tree: the paper's "segment tree [maintaining] points
/// whose abscissa rank is within intervals, [with] points in each tree node
/// sorted by ordinate" (§IV-D).
///
/// Built once over the node points of all environment polygons, it answers
/// the P_check query of Alg. 2 — all points with x in [xA, xC] and
/// y in [yD, yB] — in O(log^2 N + k). Space is O(N log N) as each point is
/// stored in O(log N) tree nodes.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geom/box.hpp"
#include "geom/vec2.hpp"

namespace lmr::index {

/// Immutable range tree over payload-tagged points.
class RangeTree2D {
 public:
  struct Entry {
    geom::Point p;
    std::uint32_t payload = 0;  ///< caller-defined id (polygon index, node index, ...)
  };

  RangeTree2D() = default;
  /// Build over a snapshot of entries. O(N log N).
  explicit RangeTree2D(std::vector<Entry> entries);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }

  /// All entries with p inside `box` (inclusive bounds).
  [[nodiscard]] std::vector<Entry> query(const geom::Box& box) const;

  /// Visit entries inside `box`; `fn(entry)` returning false stops the scan
  /// early (used when the caller only needs existence or a running minimum).
  template <typename Fn>
  void visit(const geom::Box& box, Fn&& fn) const {
    if (n_ == 0) return;
    visit_node(1, 0, n_, box, fn);
  }

 private:
  struct YEntry {
    double y;
    std::uint32_t idx;  ///< index into entries_
    bool operator<(const YEntry& o) const { return y < o.y; }
  };

  template <typename Fn>
  bool visit_node(std::size_t node, std::size_t lo, std::size_t hi, const geom::Box& box,
                  Fn&& fn) const {
    if (lo >= hi) return true;
    const double xmin = xs_[lo];
    const double xmax = xs_[hi - 1];
    if (xmin > box.hi.x || xmax < box.lo.x) return true;
    if (xmin >= box.lo.x && xmax <= box.hi.x) return scan_ys(node, box, fn);
    const std::size_t mid = (lo + hi) / 2;
    if (!visit_node(node * 2, lo, mid, box, fn)) return false;
    return visit_node(node * 2 + 1, mid, hi, box, fn);
  }

  template <typename Fn>
  bool scan_ys(std::size_t node, const geom::Box& box, Fn&& fn) const {
    const auto& ys = ylists_[node];
    auto it = std::lower_bound(ys.begin(), ys.end(), YEntry{box.lo.y, 0});
    for (; it != ys.end() && it->y <= box.hi.y; ++it) {
      if (!fn(entries_[it->idx])) return false;
    }
    return true;
  }

  void build(std::size_t node, std::size_t lo, std::size_t hi);

  std::size_t n_ = 0;
  std::vector<Entry> entries_;           ///< sorted by x
  std::vector<double> xs_;               ///< x of entries_ (sorted)
  std::vector<std::vector<YEntry>> ylists_;  ///< per tree node, y-sorted
};

}  // namespace lmr::index
