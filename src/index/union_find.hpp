#pragma once
/// \file union_find.hpp
/// Disjoint-set forest. MSDTW (§V-A) connects matched node pairs into
/// connected components before computing median points; this is the
/// component structure.

#include <cstddef>
#include <numeric>
#include <vector>

namespace lmr::index {

/// Union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  [[nodiscard]] std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merge the sets of a and b; returns false when already joined.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  [[nodiscard]] bool connected(std::size_t a, std::size_t b) { return find(a) == find(b); }
  [[nodiscard]] std::size_t component_size(std::size_t x) { return size_[find(x)]; }
  [[nodiscard]] std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace lmr::index
