#pragma once
/// \file seg_grid.hpp
/// Uniform segment-collider grid: the broadphase behind the Grid clearance
/// backend and the scenario generator's placement-legality scan.
///
/// A hash grid over square cells. Each entry is a segment plus a caller
/// payload; an entry is registered in every cell its bounding box (short
/// spans) or a conservative walk along the segment (long diagonals) touches,
/// so a window query visits a *superset* of the entries that intersect the
/// window. Callers re-check candidates exactly — the grid only promises it
/// never misses an entry with a point inside the query box.
///
/// Guarantees:
///  - insert/remove are O(cells touched) — O(1) for segments comparable to
///    the cell size, which is how both clients size their cells.
///  - `visit` reports each entry at most once per query (stamp dedup).
///  - `visit_above` additionally skips whole cells whose max payload is below
///    the floor (per-cell metadata predicate); the max is left stale-high
///    after removals, which only costs visits, never correctness.
///
/// Queries mutate the internal dedup stamps, so a SegGrid must not be
/// queried from two threads at once. Both clients query behind a barrier
/// (ClearanceIndex::sweep; the single-threaded generator).

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/contract.hpp"
#include "geom/box.hpp"
#include "geom/segment.hpp"

namespace lmr::index {

class SegGrid {
 public:
  struct Entry {
    geom::Segment seg;
    std::uint64_t payload = 0;
  };

  SegGrid() = default;
  /// \param cell Cell edge length; clamped to a small positive minimum.
  explicit SegGrid(double cell) { reset(cell); }

  /// Drop all entries and re-size the cells.
  void reset(double cell);

  /// Insert a segment (degenerate segments model points). Returns an id for
  /// `remove`; ids are recycled after removal.
  std::uint32_t insert(const geom::Segment& seg, std::uint64_t payload);

  /// Remove a previously inserted entry by id.
  void remove(std::uint32_t id);

  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] double cell() const { return cell_; }

  /// Visit every entry whose segment may intersect `box` (conservative
  /// superset; each entry at most once). `fn(const Entry&)` returns false to
  /// stop early.
  template <typename Fn>
  void visit(const geom::Box& box, Fn&& fn) const {
    visit_above(box, 0, static_cast<Fn&&>(fn));
  }

  /// `visit`, but skips entries with payload < `min_payload` and prunes
  /// whole cells via the per-cell payload maximum.
  template <typename Fn>
  void visit_above(const geom::Box& box, std::uint64_t min_payload, Fn&& fn) const {
    if (live_ == 0 || box.empty()) return;
    geom::Box window = box;
    // Clamp to the content extent so a huge window cannot spin over empty
    // cells; entries outside the extent cannot exist.
    window.lo.x = std::max(window.lo.x, extent_.lo.x - cell_);
    window.lo.y = std::max(window.lo.y, extent_.lo.y - cell_);
    window.hi.x = std::min(window.hi.x, extent_.hi.x + cell_);
    window.hi.y = std::min(window.hi.y, extent_.hi.y + cell_);
    if (window.lo.x > window.hi.x || window.lo.y > window.hi.y) return;
    // The per-query dedupe stamp must cover every record and be fresh: a
    // stamp equal to the new query id before we start would mean a previous
    // query's marks leak into this one (exactly the bug concurrent queries
    // would produce — see the class comment's single-querier contract).
    LMR_ASSERT(stamps_.size() == records_.size(),
               "dedupe stamps cover every record");
    const std::uint64_t q = ++query_;
    LMR_ASSERT(std::find(stamps_.begin(), stamps_.end(), q) == stamps_.end(),
               "fresh query id never collides with an existing stamp");
    const std::int64_t x0 = coord(window.lo.x);
    const std::int64_t x1 = coord(window.hi.x);
    const std::int64_t y0 = coord(window.lo.y);
    const std::int64_t y1 = coord(window.hi.y);
    for (std::int64_t cy = y0; cy <= y1; ++cy) {
      for (std::int64_t cx = x0; cx <= x1; ++cx) {
        const auto it = cells_.find(key(cx, cy));
        if (it == cells_.end()) continue;
        const Cell& cell = it->second;
        if (cell.max_payload < min_payload) continue;
        for (const std::uint32_t id : cell.entries) {
          const Record& rec = records_[id];
          if (rec.entry.payload < min_payload) continue;
          if (stamps_[id] == q) continue;
          stamps_[id] = q;
          if (!fn(rec.entry)) return;
        }
      }
    }
  }

 private:
  struct Cell {
    std::vector<std::uint32_t> entries;
    std::uint64_t max_payload = 0;
  };
  struct Record {
    Entry entry;
    std::vector<std::uint64_t> cells;  ///< keys this entry is registered in
    bool live = false;
  };

  [[nodiscard]] std::int64_t coord(double v) const;
  [[nodiscard]] static std::uint64_t key(std::int64_t cx, std::int64_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  }
  void covered_cells(const geom::Segment& seg, std::vector<std::uint64_t>& out) const;

  double cell_ = 1.0;
  std::unordered_map<std::uint64_t, Cell> cells_;
  std::vector<Record> records_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  geom::Box extent_;  ///< union of all inserted segment bboxes (never shrinks)
  mutable std::vector<std::uint64_t> stamps_;
  mutable std::uint64_t query_ = 0;
  std::vector<std::uint64_t> scratch_cells_;
};

}  // namespace lmr::index
