#pragma once
/// \file interval_set.hpp
/// Sorted set of disjoint 1-D intervals. The fixed-track baseline uses it to
/// track occupied foot positions along a segment, and the slab decomposition
/// uses it to measure free vertical extent inside a slab.

#include <vector>

namespace lmr::index {

/// Closed interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  [[nodiscard]] double length() const { return hi - lo; }
};

/// Maintains a union of intervals in sorted, coalesced form.
class IntervalSet {
 public:
  /// Insert [lo, hi], merging overlapping/adjacent intervals.
  void insert(double lo, double hi);

  /// Total measure of the union.
  [[nodiscard]] double total_length() const;

  /// True when [lo, hi] intersects any stored interval (touching counts
  /// when `tol` >= 0 expands the probes).
  [[nodiscard]] bool intersects(double lo, double hi, double tol = 0.0) const;

  /// Complement of the set within [lo, hi]: the free gaps.
  [[nodiscard]] std::vector<Interval> gaps(double lo, double hi) const;

  [[nodiscard]] const std::vector<Interval>& intervals() const { return ivs_; }
  [[nodiscard]] bool empty() const { return ivs_.empty(); }
  void clear() { ivs_.clear(); }

 private:
  std::vector<Interval> ivs_;  ///< sorted by lo, pairwise disjoint
};

}  // namespace lmr::index
