// union_find is header-only; this translation unit anchors the library.
#include "index/union_find.hpp"
