/// \file seg_grid.cpp

#include "index/seg_grid.hpp"

#include <cmath>

#include "core/contract.hpp"

namespace lmr::index {
namespace {

/// Above this many bbox cells the segment is registered by walking along it
/// instead of enumerating the whole (mostly empty) bounding box — a long
/// diagonal's bbox is quadratic in its length, the walk is linear.
constexpr std::uint64_t kBboxCellCap = 64;

}  // namespace

void SegGrid::reset(double cell) {
  LMR_REQUIRE(std::isfinite(cell), "cell size must be a real length");
  cell_ = std::max(cell, 1e-9);
  cells_.clear();
  records_.clear();
  free_.clear();
  live_ = 0;
  extent_ = geom::Box{};
  stamps_.clear();
  query_ = 0;
}

std::int64_t SegGrid::coord(double v) const {
  return static_cast<std::int64_t>(std::floor(v / cell_));
}

void SegGrid::covered_cells(const geom::Segment& seg, std::vector<std::uint64_t>& out) const {
  out.clear();
  const geom::Box bb = seg.bbox();
  const std::int64_t x0 = coord(bb.lo.x);
  const std::int64_t x1 = coord(bb.hi.x);
  const std::int64_t y0 = coord(bb.lo.y);
  const std::int64_t y1 = coord(bb.hi.y);
  const std::uint64_t nx = static_cast<std::uint64_t>(x1 - x0 + 1);
  const std::uint64_t ny = static_cast<std::uint64_t>(y1 - y0 + 1);
  if (nx * ny <= kBboxCellCap) {
    out.reserve(nx * ny);
    for (std::int64_t cy = y0; cy <= y1; ++cy) {
      for (std::int64_t cx = x0; cx <= x1; ++cx) out.push_back(key(cx, cy));
    }
    return;
  }
  // Walk the segment at half-cell steps; each sample registers its 3x3 cell
  // neighborhood. Any cell the segment touches is within cell/2 of some
  // sample's cell in Chebyshev terms, so the neighborhoods cover it.
  const double len = seg.length();
  const int steps = static_cast<int>(std::ceil(len / (0.5 * cell_))) + 1;
  for (int k = 0; k <= steps; ++k) {
    const geom::Point p = seg.at(static_cast<double>(k) / static_cast<double>(steps));
    const std::int64_t cx = coord(p.x);
    const std::int64_t cy = coord(p.y);
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dx = -1; dx <= 1; ++dx) out.push_back(key(cx + dx, cy + dy));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::uint32_t SegGrid::insert(const geom::Segment& seg, std::uint64_t payload) {
  std::uint32_t id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(records_.size());
    records_.emplace_back();
    stamps_.push_back(0);
  }
  Record& rec = records_[id];
  rec.entry = Entry{seg, payload};
  rec.live = true;
  covered_cells(seg, scratch_cells_);
  // Registration contract: every entry lands in at least one cell (even a
  // degenerate point-segment covers its own cell), and the stamp vector the
  // query-time dedupe indexes by id always spans every record.
  LMR_ASSERT(!scratch_cells_.empty(), "a segment always covers its own cell");
  LMR_ASSERT(stamps_.size() == records_.size(),
             "dedupe stamps cover every record");
  rec.cells = scratch_cells_;
  for (const std::uint64_t k : rec.cells) {
    Cell& cell = cells_[k];
    cell.entries.push_back(id);
    cell.max_payload = std::max(cell.max_payload, payload);
  }
  extent_.expand(seg.bbox());
  ++live_;
  return id;
}

void SegGrid::remove(std::uint32_t id) {
  // Double-remove (or a stale id) is a client bookkeeping bug even though
  // the release build tolerates it silently.
  LMR_REQUIRE(id < records_.size() && records_[id].live,
              "remove() of an id that is not live");
  if (id >= records_.size() || !records_[id].live) return;
  Record& rec = records_[id];
  for (const std::uint64_t k : rec.cells) {
    const auto it = cells_.find(k);
    if (it == cells_.end()) continue;
    auto& entries = it->second.entries;
    entries.erase(std::remove(entries.begin(), entries.end(), id), entries.end());
    // max_payload intentionally left stale-high: recomputing would make
    // remove O(cell population); a too-high max only weakens the
    // visit_above prune, never its correctness.
    if (entries.empty()) cells_.erase(it);
  }
  rec.cells.clear();
  rec.live = false;
  free_.push_back(id);
  --live_;
}

}  // namespace lmr::index
