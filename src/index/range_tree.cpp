#include "index/range_tree.hpp"

#include <algorithm>

namespace lmr::index {

RangeTree2D::RangeTree2D(std::vector<Entry> entries) : entries_(std::move(entries)) {
  n_ = entries_.size();
  if (n_ == 0) return;
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.p.x < b.p.x; });
  xs_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) xs_[i] = entries_[i].p.x;
  ylists_.assign(4 * n_, {});
  build(1, 0, n_);
}

void RangeTree2D::build(std::size_t node, std::size_t lo, std::size_t hi) {
  auto& ys = ylists_[node];
  ys.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) {
    ys.push_back({entries_[i].p.y, static_cast<std::uint32_t>(i)});
  }
  std::sort(ys.begin(), ys.end());
  if (hi - lo <= 1) return;
  const std::size_t mid = (lo + hi) / 2;
  build(node * 2, lo, mid);
  build(node * 2 + 1, mid, hi);
}

std::vector<RangeTree2D::Entry> RangeTree2D::query(const geom::Box& box) const {
  std::vector<Entry> out;
  visit(box, [&](const Entry& e) {
    out.push_back(e);
    return true;
  });
  return out;
}

}  // namespace lmr::index
