#pragma once
/// \file aidt_style.hpp
/// AiDT-style greedy tuner — the Table I comparator.
///
/// Allegro's Auto-interactive Delay Tune is closed source; this class
/// reproduces the *behavioural class* the paper compares against (see
/// DESIGN.md §3): a greedy, fixed-geometry serpentine tuner that
///  * processes straight runs longest-first (largest free span first, as an
///    interactive user would),
///  * uses fixed amplitude steps and a fixed meander pitch,
///  * performs a refinement pass at half pitch offset when the first pass
///    falls short (the "interactive" retry),
///  * never adapts pattern width, never connects patterns, never routes
///    around obstacles.
/// Strong in open space; loses achievable length in obstacle-dense or
/// tight-DRC regions — the comparison axis of Table I.

#include "baseline/fixed_track.hpp"

namespace lmr::baseline {

/// Tuning report.
struct AidtStats {
  double initial_length = 0.0;
  double final_length = 0.0;
  double target = 0.0;
  int passes = 0;
  bool reached = false;
};

/// Greedy two-pass tuner built on the fixed-track machinery.
class AidtStyleTuner {
 public:
  AidtStyleTuner(drc::DesignRules rules, const layout::RoutableArea& area,
                 std::vector<geom::Polygon> extra_obstacles = {});

  /// Tune `trace` toward `target`.
  AidtStats tune(layout::Trace& trace, double target);

 private:
  drc::DesignRules rules_;
  const layout::RoutableArea& area_;
  std::vector<geom::Polygon> extra_;
};

}  // namespace lmr::baseline
