#pragma once
/// \file fixed_track.hpp
/// The "without DP" ablation baseline of Table II.
///
/// Represents the class of gridded meanderers the paper compares against:
/// pattern feet sit on *fixed tracks* (multiples of a fixed pitch along the
/// segment), the pattern width is *constant*, patterns never connect, never
/// route around obstacles (an obstacle inside the URA always caps the
/// height), and each original segment is processed exactly once — no
/// meandering on meanders. Everything else (URA clearance model, trace
/// splicing) matches the DP engine, so Table II isolates exactly the DP's
/// flexibility: foot choice, width adaptation, connection, and obstacle
/// circumnavigation.

#include <vector>

#include "core/environment.hpp"
#include "drc/rules.hpp"
#include "layout/routable_area.hpp"
#include "layout/trace.hpp"

namespace lmr::baseline {

/// Baseline knobs. Zeros mean "derive from the rules" (pitch = width =
/// effective gap, the classic serpentine geometry).
struct FixedTrackConfig {
  double track_pitch = 0.0;    ///< foot grid spacing
  double pattern_width = 0.0;  ///< constant pattern width
  double tolerance = 1e-6;
};

/// Outcome report (mirrors core::ExtendStats where meaningful).
struct FixedTrackStats {
  double initial_length = 0.0;
  double final_length = 0.0;
  double target = 0.0;
  int patterns_inserted = 0;
  bool reached = false;
};

/// Fixed-track meanderer over one trace in its routable area.
class FixedTrackMeanderer {
 public:
  FixedTrackMeanderer(drc::DesignRules rules, const layout::RoutableArea& area,
                      std::vector<geom::Polygon> extra_obstacles = {});

  /// Meander toward `target`; stops early when the target is met and trims
  /// the final pattern for an exact match where possible.
  FixedTrackStats extend(layout::Trace& trace, double target,
                         const FixedTrackConfig& cfg = {});

  /// Insert as much length as the fixed tracks allow (Table II protocol).
  FixedTrackStats maximize(layout::Trace& trace, const FixedTrackConfig& cfg = {});

 private:
  FixedTrackStats run(layout::Trace& trace, double target, bool bounded,
                      const FixedTrackConfig& cfg);

  drc::DesignRules rules_;
  core::Environment env_;
  double area_reach_ = 0.0;
};

}  // namespace lmr::baseline
