#include "baseline/fixed_track.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/height_solver.hpp"
#include "core/ura.hpp"
#include "geom/frame.hpp"
#include "geom/offset.hpp"

namespace lmr::baseline {

namespace {

/// One placed baseline pattern in segment-local continuous coordinates.
struct Placed {
  double x0 = 0.0;
  double x1 = 0.0;
  double h = 0.0;
  int dir = 1;
};

std::vector<geom::Point> realize_continuous(const std::vector<Placed>& ps, double len) {
  std::vector<geom::Point> out;
  out.reserve(ps.size() * 4 + 2);
  const auto push = [&out](double x, double y) {
    const geom::Point p{x, y};
    if (out.empty() || !geom::almost_equal(out.back(), p)) out.push_back(p);
  };
  push(0.0, 0.0);
  for (const Placed& p : ps) {
    push(p.x0, 0.0);
    push(p.x0, p.dir * p.h);
    push(p.x1, p.dir * p.h);
    push(p.x1, 0.0);
  }
  push(len, 0.0);
  return out;
}

}  // namespace

FixedTrackMeanderer::FixedTrackMeanderer(drc::DesignRules rules,
                                         const layout::RoutableArea& area,
                                         std::vector<geom::Polygon> extra_obstacles)
    : rules_(rules) {
  rules_.validate();
  if (!area.outline.empty()) {
    geom::Polygon outline = area.outline;
    outline.make_ccw();
    env_.add_static(std::move(outline), core::EnvKind::AreaOutline);
  }
  const double inflate = rules_.obstacle_inflation();
  for (const geom::Polygon& h : area.holes) {
    // Marked SelfUra so the height solver never treats them as enclosable:
    // the baseline cannot route around obstacles.
    env_.add_static(geom::inflate_polygon(h, inflate), core::EnvKind::SelfUra);
  }
  for (geom::Polygon& p : extra_obstacles) {
    env_.add_static(geom::inflate_polygon(std::move(p), inflate), core::EnvKind::SelfUra);
  }
  env_.build_index();
  const geom::Box bb = area.outline.empty() ? geom::Box{{0, 0}, {1, 1}} : area.bbox();
  area_reach_ = std::hypot(bb.width(), bb.height());
}

FixedTrackStats FixedTrackMeanderer::extend(layout::Trace& trace, double target,
                                            const FixedTrackConfig& cfg) {
  return run(trace, target, /*bounded=*/true, cfg);
}

FixedTrackStats FixedTrackMeanderer::maximize(layout::Trace& trace,
                                              const FixedTrackConfig& cfg) {
  return run(trace, std::numeric_limits<double>::infinity(), /*bounded=*/false, cfg);
}

FixedTrackStats FixedTrackMeanderer::run(layout::Trace& trace, double target, bool bounded,
                                         const FixedTrackConfig& cfg) {
  FixedTrackStats stats;
  stats.initial_length = trace.path.length();
  stats.target = target;
  if (bounded && target < stats.initial_length - cfg.tolerance) {
    throw std::invalid_argument("FixedTrackMeanderer: target below current length");
  }

  const double eff_gap = rules_.effective_gap();
  const double half = rules_.ura_halfwidth();
  const double pitch = cfg.track_pitch > 0.0 ? cfg.track_pitch : eff_gap;
  const double width = cfg.pattern_width > 0.0 ? cfg.pattern_width : eff_gap;
  const double min_h = rules_.protect;

  // Snapshot the original segments: the baseline never revisits meanders.
  std::vector<geom::Segment> originals;
  for (std::size_t k = 0; k + 1 < trace.path.size(); ++k) {
    originals.push_back(trace.path.segment(k));
  }

  double current = stats.initial_length;
  for (const geom::Segment& seg : originals) {
    if (bounded && target - current <= cfg.tolerance) break;
    const double len = seg.length();
    if (len < width + 2.0 * rules_.protect) continue;

    // Locate the segment in the (possibly already meandered) path.
    std::size_t at = std::numeric_limits<std::size_t>::max();
    for (std::size_t k = 0; k + 1 < trace.path.size(); ++k) {
      if (geom::almost_equal(trace.path[k], seg.a, 1e-7) &&
          geom::almost_equal(trace.path[k + 1], seg.b, 1e-7)) {
        at = k;
        break;
      }
    }
    if (at == std::numeric_limits<std::size_t>::max()) continue;

    env_.set_dynamic(core::self_uras(trace.path, at, half, eff_gap));
    const double reach = std::min(
        area_reach_, bounded ? (target - current) / 2.0 + rules_.protect : area_reach_);
    const core::HeightSolver up = core::HeightSolver::for_segment(env_, seg, +1, reach, half);
    const core::HeightSolver down =
        core::HeightSolver::for_segment(env_, seg, -1, reach, half);

    // Evaluate every fixed track first (feet at x = protect + k * pitch),
    // then place best-height-first: the classic gridded meanderer maximizes
    // amplitude on its tracks but never adapts feet or width and never
    // wraps obstacles.
    std::vector<Placed> candidates;
    for (double x = rules_.protect; x + width <= len - rules_.protect + 1e-12; x += pitch) {
      const double want = area_reach_;
      const double hu = up.max_height(x, x + width, want);
      const double hd = down.max_height(x, x + width, want);
      const double h = std::max(hu, hd);
      if (h < min_h) continue;  // track blocked: the baseline just skips it
      candidates.push_back({x, x + width, h, hu >= hd ? +1 : -1});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Placed& a, const Placed& b) { return a.h > b.h; });

    std::vector<Placed> placed;
    for (const Placed& cand : candidates) {
      // Stop before a minimum-height pattern would overshoot the target.
      if (bounded && target - current < 2.0 * min_h) break;
      bool ok = true;
      for (const Placed& p : placed) {
        // Same-side neighbours need the gap rule, opposite sides d_protect.
        const double spacing = p.dir == cand.dir ? eff_gap : rules_.protect;
        if (cand.x0 < p.x1 + spacing - 1e-12 && cand.x1 > p.x0 - spacing + 1e-12) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      Placed chosen = cand;
      if (bounded) {
        chosen.h = std::min(chosen.h, std::max(min_h, (target - current) / 2.0));
      }
      placed.push_back(chosen);
      current += 2.0 * chosen.h;
      ++stats.patterns_inserted;
    }
    if (placed.empty()) continue;
    std::sort(placed.begin(), placed.end(),
              [](const Placed& a, const Placed& b) { return a.x0 < b.x0; });

    const geom::Frame frame = geom::Frame::along(seg);
    std::vector<geom::Point> global_pts;
    for (const geom::Point& q : realize_continuous(placed, len)) {
      global_pts.push_back(frame.to_global(q));
    }
    global_pts.front() = seg.a;
    global_pts.back() = seg.b;
    trace.path.splice(at, at + 1, global_pts);
    current = trace.path.length();
  }

  stats.final_length = trace.path.length();
  stats.reached = bounded && std::abs(stats.final_length - target) <= cfg.tolerance * 10.0;
  if (!bounded) stats.reached = true;
  return stats;
}

}  // namespace lmr::baseline
