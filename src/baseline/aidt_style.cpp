#include "baseline/aidt_style.hpp"

#include <cmath>

namespace lmr::baseline {

AidtStyleTuner::AidtStyleTuner(drc::DesignRules rules, const layout::RoutableArea& area,
                               std::vector<geom::Polygon> extra_obstacles)
    : rules_(rules), area_(area), extra_(std::move(extra_obstacles)) {
  rules_.validate();
}

AidtStats AidtStyleTuner::tune(layout::Trace& trace, double target) {
  AidtStats stats;
  stats.initial_length = trace.path.length();
  stats.target = target;

  // Pass 1: canonical serpentine geometry (pitch = width = effective gap).
  {
    FixedTrackMeanderer m(rules_, area_, extra_);
    FixedTrackConfig cfg;
    ++stats.passes;
    m.extend(trace, target, cfg);
  }
  // Pass 2 ("interactive retry"): if short, re-run with the foot grid offset
  // by half a pitch — tracks that were blocked may now be free.
  if (target - trace.path.length() > 1e-6) {
    FixedTrackMeanderer m(rules_, area_, extra_);
    FixedTrackConfig cfg;
    cfg.track_pitch = rules_.effective_gap() * 1.5;  // offset grid
    ++stats.passes;
    m.extend(trace, target, cfg);
  }

  stats.final_length = trace.path.length();
  stats.reached = std::abs(stats.final_length - target) <= 1e-5;
  return stats;
}

}  // namespace lmr::baseline
