#pragma once
/// \file pair_restore.hpp
/// Differential-pair <-> median-trace round trip (§V).
///
/// `merge_pair` converts a (possibly decoupled) differential pair into a
/// median single-ended trace via MSDTW plus the virtual-DRC conversion, so
/// the ordinary DP extension engine can length-match it. `restore_pair`
/// regenerates the two sub-traces by offsetting the (meandered) median by
/// +/- pitch/2, and `compensate_skew` re-inserts a tiny pattern on the
/// shorter sub-trace when the restored pair carries residual intra-pair
/// skew — the paper's "compensate tiny patterns to sub-traces if needed".

#include <vector>

#include "drc/rules.hpp"
#include "dtw/msdtw.hpp"
#include "layout/trace.hpp"

namespace lmr::dtw {

/// Result of merging a pair.
struct MergedPair {
  layout::Trace median;          ///< single-ended stand-in
  drc::DesignRules virtual_rules;  ///< rules the median must obey
  MsdtwResult matching;          ///< diagnostic: the MSDTW matching used
  double skipped_p_length = 0.0;  ///< traceP length carried by unpaired nodes
  double skipped_n_length = 0.0;  ///< traceN length carried by unpaired nodes
};

/// Merge `pair` using the ascending distance-rule set `rules_r` (Alg. 3's R;
/// pass {pair.pitch} when the pair stays inside one DRA). `sub_rules` is the
/// DRC in force for the sub-traces. The first `pair.breakout_nodes` nodes of
/// each sub-trace are copied into the median unmatched (preserved breakout).
[[nodiscard]] MergedPair merge_pair(const layout::DiffPair& pair,
                                    const drc::DesignRules& sub_rules,
                                    const std::vector<double>& rules_r);

/// Restore a differential pair from a (length-matched) median trace:
/// traceP at +pitch/2 (left of travel), traceN at -pitch/2.
[[nodiscard]] layout::DiffPair restore_pair(const layout::Trace& median, double pitch,
                                            double sub_width);

/// Equalize sub-trace lengths by inserting one tiny serpentine pattern on
/// the longest straight segment of the shorter sub-trace. Pattern height is
/// skew/2, width is 2*d_protect; heights below d_protect are skipped (skew
/// already negligible). Returns the residual skew after compensation.
double compensate_skew(layout::DiffPair& pair, const drc::DesignRules& sub_rules);

}  // namespace lmr::dtw
