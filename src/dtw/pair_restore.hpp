#pragma once
/// \file pair_restore.hpp
/// Differential-pair <-> median-trace round trip (§V).
///
/// `merge_pair` converts a (possibly decoupled) differential pair into a
/// median single-ended trace via MSDTW plus the virtual-DRC conversion, so
/// the ordinary DP extension engine can length-match it. `restore_pair`
/// regenerates the two sub-traces by offsetting the (meandered) median by
/// +/- pitch/2 — piecewise, at each median node's own Design-Rule-Area pitch
/// when the pair crosses several DRAs — and `compensate_skew` re-inserts a
/// tiny pattern on the shorter sub-trace when the restored pair carries
/// residual intra-pair skew, validating the pattern against the routable
/// area and obstacles before splicing it (the paper's "compensate tiny
/// patterns to sub-traces if needed").
///
/// The rule-aware flow a caller wires together (see pipeline::Router):
///  1. `merge_pair` records per-node DRA pitches (from MSDTW round
///     attribution) and the original breakout points;
///  2. the median is extended with an ExtenderConfig::restore_margin built
///     from `local_restore_pitch`, so no pattern is placed whose restore
///     offsets would violate the sub-trace rules;
///  3. `transfer_node_pitch` re-derives per-node pitches for the extended
///     median (pattern nodes inherit their host segment's DRA);
///  4. `restore_pair` offsets each node at its own pitch with smooth
///     miter-joint tapers at pitch transitions and re-anchors the preserved
///     breakout verbatim.

#include <span>
#include <vector>

#include "drc/rules.hpp"
#include "dtw/msdtw.hpp"
#include "layout/drc_checker.hpp"
#include "layout/layout.hpp"
#include "layout/routable_area.hpp"
#include "layout/trace.hpp"

namespace lmr::dtw {

/// Result of merging a pair.
struct MergedPair {
  layout::Trace median;          ///< single-ended stand-in
  drc::DesignRules virtual_rules;  ///< rules the median must obey
  MsdtwResult matching;          ///< diagnostic: the MSDTW matching used
  double base_pitch = 0.0;       ///< the pair's nominal pitch
  /// Per median-path node: the DRA distance rule that matched it (breakout
  /// and single-DRA nodes carry the base pitch). Aligned with
  /// `median.path.points()`; pitch-transition markers survive simplification
  /// even when geometrically collinear.
  std::vector<double> node_pitch;
  /// The original (un-averaged) preserved breakout points of each sub-trace,
  /// so the restore can re-anchor the pin positions verbatim.
  std::vector<geom::Point> breakout_p;
  std::vector<geom::Point> breakout_n;
  double skipped_p_length = 0.0;  ///< traceP length carried by unpaired nodes
  double skipped_n_length = 0.0;  ///< traceN length carried by unpaired nodes
};

/// Merge `pair` using the ascending distance-rule set `rules_r` (Alg. 3's R;
/// pass {pair.pitch} when the pair stays inside one DRA). `sub_rules` is the
/// DRC in force for the sub-traces. The first `pair.breakout_nodes` nodes of
/// each sub-trace are copied into the median unmatched (preserved breakout).
[[nodiscard]] MergedPair merge_pair(const layout::DiffPair& pair,
                                    const drc::DesignRules& sub_rules,
                                    const std::vector<double>& rules_r);

/// How to restore a differential pair from its (length-matched) median.
struct RestoreSpec {
  double pitch = 0.0;      ///< nominal pitch (also the uniform fallback)
  double sub_width = 0.0;  ///< restored sub-trace width
  /// Per median-node restore pitch (empty = uniform `pitch` everywhere).
  /// Must align with the median path when non-empty.
  std::span<const double> node_pitch;
  /// Original breakout points to re-anchor verbatim (may be empty). The
  /// anchoring stops at the first median node that no longer equals the
  /// averaged breakout (extension inserted nodes there).
  std::span<const geom::Point> breakout_p;
  std::span<const geom::Point> breakout_n;
};

/// Restore a differential pair from a (length-matched) median trace:
/// traceP at +pitch/2 (left of travel), traceN at -pitch/2, each node offset
/// at its own DRA pitch (miter-vector offsets, so uniform pitches reproduce
/// the classic parallel offset and pitch transitions become straight
/// tapers). Throws std::invalid_argument when `node_pitch` is non-empty but
/// misaligned with the median path.
[[nodiscard]] layout::DiffPair restore_pair(const layout::Trace& median,
                                            const RestoreSpec& spec);

/// Uniform-pitch restore (single-DRA pairs and baselines).
[[nodiscard]] layout::DiffPair restore_pair(const layout::Trace& median, double pitch,
                                            double sub_width);

/// Re-derive per-node pitches for a median whose geometry changed under
/// extension: each node of `extended` inherits the pitch of its own node in
/// `reference` when it survived verbatim, otherwise the pitch of the nearest
/// `reference` segment (max of its endpoint pitches — patterns bulge
/// perpendicular to their host segment, so the host stays nearest).
[[nodiscard]] std::vector<double> transfer_node_pitch(
    const geom::Polyline& reference, std::span<const double> reference_pitch,
    const geom::Polyline& extended);

/// Widest restore pitch in force along `seg` (probed at both ends and the
/// midpoint against `reference`), for ExtenderConfig::restore_margin.
[[nodiscard]] double local_restore_pitch(const geom::Polyline& reference,
                                         std::span<const double> reference_pitch,
                                         const geom::Segment& seg);

/// Equalize sub-trace lengths by inserting one tiny serpentine pattern on a
/// straight segment of the shorter sub-trace. Pattern height is skew/2,
/// width is max(2*d_protect, effective gap); heights below d_protect are
/// skipped (skew already negligible). Hosts are tried longest-first and each
/// candidate splice is validated through the DRC oracle (self rules, and —
/// when `area` / `obstacles` are given — containment and obstacle
/// clearance): the hat pokes *away* from the partner sub-trace, straight
/// into the via field, so splicing blind can leave the routing area, crowd
/// an obstacle, or close under the gap rule against a neighbouring meander
/// leg. A host whose splice would add any violation is rejected in favour of
/// the next-longest. Returns the residual skew after compensation (unchanged
/// when no host fits).
double compensate_skew(layout::DiffPair& pair, const drc::DesignRules& sub_rules,
                       const layout::RoutableArea* area = nullptr,
                       const std::vector<layout::Obstacle>* obstacles = nullptr);

/// Tile-aware variant: obstacle clearance goes through the selector, which
/// serves the tile-local obstacle subset when the spliced candidate stays
/// inside the tile's coverage and transparently falls back to the full board
/// list when the hat pokes past it — verdicts (and therefore host choice)
/// are independent of how the board was tiled. Null behaves like the
/// obstacle-less overload.
double compensate_skew(layout::DiffPair& pair, const drc::DesignRules& sub_rules,
                       const layout::RoutableArea* area,
                       const layout::ObstacleSelector* obstacles);

}  // namespace lmr::dtw
