#pragma once
/// \file dtw.hpp
/// Dynamic Time Warping over trace node sequences (§V-A, Eq. 17).
///
/// MSDTW relies on *node matching* instead of parallel-segment detection to
/// find the coupling of a differential pair: node positions and clusters are
/// stable even when segments are not strictly parallel (Fig. 10). DTW finds
/// the minimum-total-cost monotone matching in which every node of both
/// sub-traces is matched and several nodes may share a partner.

#include <cstddef>
#include <span>
#include <vector>

#include "geom/vec2.hpp"

namespace lmr::dtw {

/// One matched node pair (indices into the two input sequences).
struct MatchPair {
  std::size_t ip = 0;  ///< node index in traceP
  std::size_t in = 0;  ///< node index in traceN
  double cost = 0.0;   ///< d(P[ip], N[in])
};

/// Full matching with its total cost C[I][J].
struct DtwResult {
  double total_cost = 0.0;
  std::vector<MatchPair> pairs;  ///< monotone, restored by backtracking
};

/// Match two node sequences. Either sequence may be empty (empty result).
/// O(I*J) time and memory.
[[nodiscard]] DtwResult dtw_match(std::span<const geom::Point> p,
                                  std::span<const geom::Point> n);

}  // namespace lmr::dtw
