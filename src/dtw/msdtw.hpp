#pragma once
/// \file msdtw.hpp
/// Multi-Scale Dynamic Time Warping (§V, Alg. 3).
///
/// Plain DTW matches *every* node, including the nodes of tiny intra-pair
/// length-compensation patterns, which drags median points off the pair axis
/// (Fig. 11). MSDTW therefore:
///  1. filters matched pairs whose cost exceeds sqrt(2) * r, where r is the
///     pair distance rule — legitimate couplings, even across an obtuse
///     corner, stay below that bound (§V-B);
///  2. when the pair traverses several Design Rule Areas with different
///     distance rules, matches in rounds of ascending r ("multi-scale"):
///     pairs matched in an earlier (tighter) round split the remaining
///     sub-pairs, and later rounds match only inside each sub-pair, so a
///     loose rule can never mis-absorb nodes that belong to a tighter DRA
///     (Fig. 12);
///  3. drops sub-pairs that have run out of nodes on either side — the
///     remaining nodes there are tiny-pattern noise by construction.

#include <span>
#include <vector>

#include "dtw/dtw.hpp"
#include "geom/vec2.hpp"

namespace lmr::dtw {

/// MSDTW output: the accepted matched pairs plus per-node pairing flags.
struct MsdtwResult {
  std::vector<MatchPair> pairs;   ///< all accepted pairs, ascending in ip
  /// Per accepted pair (aligned with `pairs`): the distance rule r of the
  /// round that accepted it — the Design-Rule-Area attribution the restore
  /// needs to offset each median section at its own pitch. Rounds separated
  /// by more than sqrt(2) (as Alg. 3 assumes) attribute exactly: a round's
  /// cutoff sqrt(2)*r stays below the next DRA's pitch.
  std::vector<double> pair_rules;
  std::vector<bool> p_paired;     ///< per traceP node: appears in a pair
  std::vector<bool> n_paired;     ///< per traceN node
  int rounds_run = 0;             ///< number of rule rounds executed
};

/// Run MSDTW over node sequences `p` / `n` with the ascending distance-rule
/// set `rules` (Alg. 3's R). A single-element rule set reduces to
/// filtered DTW. Throws std::invalid_argument when `rules` is empty or not
/// ascending.
[[nodiscard]] MsdtwResult msdtw_match(std::span<const geom::Point> p,
                                      std::span<const geom::Point> n,
                                      std::span<const double> rules);

}  // namespace lmr::dtw
