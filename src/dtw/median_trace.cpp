#include "dtw/median_trace.hpp"

#include <algorithm>
#include <stdexcept>

#include "index/union_find.hpp"

namespace lmr::dtw {

MedianTrace build_median_trace(std::span<const geom::Point> p, std::span<const geom::Point> n,
                               std::span<const MatchPair> pairs,
                               std::span<const double> pair_rules) {
  MedianTrace out;
  const std::size_t I = p.size();
  const std::size_t J = n.size();
  // Union nodes across the bipartite matching: ids [0, I) are P nodes,
  // [I, I+J) are N nodes.
  index::UnionFind uf(I + J);
  for (const MatchPair& m : pairs) uf.unite(m.ip, I + m.in);

  // DRA attribution per component root: widest rule among its pairs.
  if (!pair_rules.empty() && pair_rules.size() != pairs.size()) {
    throw std::invalid_argument("build_median_trace: pair_rules misaligned with pairs");
  }
  std::vector<double> root_rule(I + J, 0.0);
  if (!pair_rules.empty()) {
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      const std::size_t r = uf.find(pairs[k].ip);
      root_rule[r] = std::max(root_rule[r], pair_rules[k]);
    }
  }

  // Collect members per root, but only for nodes that appear in some pair
  // (unpaired nodes are filtered noise, §V-B).
  std::vector<char> in_pair(I + J, 0);
  for (const MatchPair& m : pairs) {
    in_pair[m.ip] = 1;
    in_pair[I + m.in] = 1;
  }
  std::vector<std::vector<std::size_t>> members_p(I + J), members_n(I + J);
  for (std::size_t i = 0; i < I; ++i) {
    if (in_pair[i]) members_p[uf.find(i)].push_back(i);
  }
  for (std::size_t j = 0; j < J; ++j) {
    if (in_pair[I + j]) members_n[uf.find(I + j)].push_back(j);
  }

  // Order components along the trace by their smallest traceP index.
  std::vector<std::size_t> roots;
  for (std::size_t r = 0; r < I + J; ++r) {
    if (!members_p[r].empty() || !members_n[r].empty()) roots.push_back(r);
  }
  std::sort(roots.begin(), roots.end(), [&](std::size_t a, std::size_t b) {
    const auto key = [&](std::size_t r) {
      return members_p[r].empty() ? std::size_t{0} : members_p[r].front();
    };
    return key(a) < key(b);
  });

  for (std::size_t r : roots) {
    MedianComponent comp;
    comp.p_nodes = members_p[r];
    comp.n_nodes = members_n[r];
    comp.rule = root_rule[r];
    geom::Point avg_p, avg_n;
    for (std::size_t i : comp.p_nodes) avg_p += p[i];
    for (std::size_t j : comp.n_nodes) avg_n += n[j];
    if (!comp.p_nodes.empty()) avg_p = avg_p / static_cast<double>(comp.p_nodes.size());
    if (!comp.n_nodes.empty()) avg_n = avg_n / static_cast<double>(comp.n_nodes.size());
    if (comp.p_nodes.empty()) {
      comp.median = avg_n;
    } else if (comp.n_nodes.empty()) {
      comp.median = avg_p;
    } else {
      comp.median = (avg_p + avg_n) * 0.5;  // Eq. 18
    }
    out.median.push_back(comp.median);
    out.components.push_back(std::move(comp));
  }
  return out;
}

}  // namespace lmr::dtw
