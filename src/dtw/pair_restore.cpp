#include "dtw/pair_restore.hpp"

#include <algorithm>
#include <cmath>

#include "dtw/median_trace.hpp"
#include "geom/frame.hpp"
#include "geom/offset.hpp"

namespace lmr::dtw {

MergedPair merge_pair(const layout::DiffPair& pair, const drc::DesignRules& sub_rules,
                      const std::vector<double>& rules_r) {
  MergedPair out;
  const auto& pp = pair.positive.path.points();
  const auto& nn = pair.negative.path.points();
  const std::size_t skip = std::min({pair.breakout_nodes, pp.size(), nn.size()});

  const std::span<const geom::Point> p_span{pp.data() + skip, pp.size() - skip};
  const std::span<const geom::Point> n_span{nn.data() + skip, nn.size() - skip};
  out.matching = msdtw_match(p_span, n_span, rules_r);

  const MedianTrace mt = build_median_trace(p_span, n_span, out.matching.pairs);

  // Assemble: preserved breakout (averaged across the pair) then the median
  // points of the matched components.
  geom::Polyline median;
  for (std::size_t i = 0; i < skip; ++i) median.push_back((pp[i] + nn[i]) * 0.5);
  for (const geom::Point& q : mt.median.points()) median.push_back(q);
  median.simplify(1e-12);

  out.median.id = pair.id;
  out.median.name = pair.name + ".median";
  out.median.path = std::move(median);
  out.median.width = 2.0 * pair.positive.width + pair.pitch;
  out.virtual_rules = drc::virtual_pair_rules(sub_rules, pair.pitch);

  // Length bookkeeping for tiny-pattern compensation.
  const double med_len = out.median.path.length();
  out.skipped_p_length = pair.positive.path.length() - med_len;
  out.skipped_n_length = pair.negative.path.length() - med_len;
  return out;
}

layout::DiffPair restore_pair(const layout::Trace& median, double pitch, double sub_width) {
  layout::DiffPair pair;
  pair.id = median.id;
  pair.name = median.name;
  pair.pitch = pitch;
  pair.positive.id = median.id;
  pair.positive.name = median.name + ".P";
  pair.positive.width = sub_width;
  pair.positive.path = geom::offset_polyline(median.path, +pitch / 2.0);
  pair.negative.id = median.id;
  pair.negative.name = median.name + ".N";
  pair.negative.width = sub_width;
  pair.negative.path = geom::offset_polyline(median.path, -pitch / 2.0);
  return pair;
}

double compensate_skew(layout::DiffPair& pair, const drc::DesignRules& sub_rules) {
  const double lp = pair.positive.path.length();
  const double ln = pair.negative.path.length();
  const double skew = std::abs(lp - ln);
  const double h = skew / 2.0;
  if (h < sub_rules.protect) return skew;  // negligible; leave as-is

  layout::Trace& shorter = lp < ln ? pair.positive : pair.negative;
  geom::Polyline& path = shorter.path;
  // Longest straight segment hosts the compensation pattern.
  std::size_t best = 0;
  double best_len = 0.0;
  for (std::size_t i = 0; i < path.segment_count(); ++i) {
    const double l = path.segment(i).length();
    if (l > best_len) {
      best_len = l;
      best = i;
    }
  }
  // Pattern legs are same-side parallel runs, so the hat width must meet
  // the gap rule as well as d_protect — the same minimum-width constraint
  // the segment DP enforces for its patterns.
  const double w = std::max(2.0 * sub_rules.protect, sub_rules.effective_gap());
  if (best_len < w + 2.0 * sub_rules.protect) return skew;  // no room

  const geom::Segment seg = path.segment(best);
  const geom::Frame frame = geom::Frame::along(seg);
  const double mid = best_len / 2.0;
  // Tiny pattern pointing away from the partner sub-trace (outward = the
  // side of the median offset, i.e. left for P, right for N).
  const double side = (&shorter == &pair.positive) ? +1.0 : -1.0;
  const std::vector<geom::Point> local{
      {0.0, 0.0},           {mid - w / 2.0, 0.0}, {mid - w / 2.0, side * h},
      {mid + w / 2.0, side * h}, {mid + w / 2.0, 0.0}, {best_len, 0.0}};
  std::vector<geom::Point> global_pts;
  global_pts.reserve(local.size());
  for (const geom::Point& q : local) global_pts.push_back(frame.to_global(q));
  global_pts.front() = seg.a;
  global_pts.back() = seg.b;
  path.splice(best, best + 1, global_pts);
  return std::abs(pair.positive.path.length() - pair.negative.path.length());
}

}  // namespace lmr::dtw
