#include "dtw/pair_restore.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/contract.hpp"
#include "core/pattern.hpp"
#include "dtw/median_trace.hpp"
#include "geom/chamfer.hpp"
#include "geom/distance.hpp"
#include "geom/frame.hpp"
#include "geom/offset.hpp"
#include "layout/drc_checker.hpp"

namespace lmr::dtw {

namespace {

/// Lockstep variant of Polyline::simplify: removes duplicates and collinear
/// interior vertices together with their pitch entries, but keeps a
/// collinear vertex whose pitch differs from a neighbour — it marks a DRA
/// transition the piecewise restore must reproduce (a multi-DRA corridor
/// median is typically one straight line, so the markers carry the only
/// record of where the pitch steps). The first `keep_prefix` vertices are
/// never removed: they are the averaged breakout the restore re-anchors by
/// index, so simplification must not shift them.
void simplify_with_pitch(geom::Polyline& path, std::vector<double>& pitch, double tol,
                         std::size_t keep_prefix) {
  auto& pts = path.points();
  if (pts.size() < 2 || pts.size() != pitch.size()) return;

  std::vector<geom::Point> dedup;
  std::vector<double> dq;
  dedup.reserve(pts.size());
  dq.reserve(pts.size());
  dedup.push_back(pts.front());
  dq.push_back(pitch.front());
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (i >= keep_prefix && geom::almost_equal(dedup.back(), pts[i], tol)) {
      // Merged duplicates keep the wider rule (conservative for the margin).
      dq.back() = std::max(dq.back(), pitch[i]);
    } else {
      dedup.push_back(pts[i]);
      dq.push_back(pitch[i]);
    }
  }
  if (dedup.size() < 3) {
    pts = std::move(dedup);
    pitch = std::move(dq);
    return;
  }

  std::vector<geom::Point> out;
  std::vector<double> q;
  out.reserve(dedup.size());
  q.reserve(dedup.size());
  out.push_back(dedup.front());
  q.push_back(dq.front());
  for (std::size_t i = 1; i + 1 < dedup.size(); ++i) {
    const geom::Segment s{out.back(), dedup[i + 1]};
    const double d = geom::dist(geom::closest_point(s, dedup[i]), dedup[i]);
    const bool collinear =
        d <= tol && geom::dot(dedup[i] - out.back(), dedup[i + 1] - dedup[i]) >= 0.0;
    const bool transition = dq[i] != q.back() || dq[i] != dq[i + 1];
    if (i < keep_prefix || !collinear || transition) {
      out.push_back(dedup[i]);
      q.push_back(dq[i]);
    }
  }
  out.push_back(dedup.back());
  q.push_back(dq.back());
  pts = std::move(out);
  pitch = std::move(q);
}

/// Per-vertex miter offset at half the local pitch. For a uniform pitch the
/// miter vector (n1 + n2) / (1 + n1.n2) lands exactly on the intersection of
/// the two shifted supporting lines, i.e. geom::offset_polyline; per-node
/// pitches turn every transition into a straight taper between the two
/// offsets.
geom::Polyline offset_piecewise(const geom::Polyline& pl, std::span<const double> pitch,
                                double side) {
  const std::size_t n = pl.size();
  if (n < 2) return pl;
  // The pitch span is indexed in lockstep with the vertices below; a short
  // span would read past its end, a non-finite side/pitch would smear NaN
  // through every miter vertex.
  LMR_REQUIRE(pitch.size() >= n, "one pitch entry per polyline vertex");
  LMR_REQUIRE(std::isfinite(side), "offset side must be a real sign/scale");
  std::vector<geom::Vec2> normals(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const geom::Segment s = pl.segment(i);
    normals[i] = s.degenerate() ? geom::Vec2{} : s.unit().perp();  // left normal
  }
  const auto normal_before = [&](std::size_t i) -> geom::Vec2 {
    for (std::size_t k = i; k > 0; --k) {
      if (normals[k - 1].norm() > geom::kEps) return normals[k - 1];
    }
    return {};
  };
  const auto normal_after = [&](std::size_t i) -> geom::Vec2 {
    for (std::size_t k = i; k < normals.size(); ++k) {
      if (normals[k].norm() > geom::kEps) return normals[k];
    }
    return {};
  };
  std::vector<geom::Point> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = side * pitch[i] / 2.0;
    geom::Vec2 n1 = normal_before(i);
    geom::Vec2 n2 = normal_after(i);
    if (n1.norm() <= geom::kEps) n1 = n2;
    if (n2.norm() <= geom::kEps) n2 = n1;
    const double denom = 1.0 + geom::dot(n1, n2);
    // A near-U-turn corner has no finite miter; fall back to the outgoing
    // normal (simplified medians never carry such corners).
    const geom::Vec2 m = denom > 1e-9 ? (n1 + n2) / denom : n2;
    out.push_back(pl[i] + m * d);
  }
  return geom::Polyline{std::move(out)};
}

/// Collapse miter fold-backs after offsetting. A corner's miter join
/// overshoots along the outgoing direction by up to pitch/2; when a
/// *collinear* run shorter than that follows (DRA transition markers
/// subdivide straight runs, so a pattern foot can sit d_protect before a
/// marker), the offset doubles straight back over itself. Only that
/// signature — a short incoming edge nearly antiparallel to the outgoing
/// one — is an artifact; obtuse turns are legitimate (the pitch tapers the
/// piecewise restore introduces meet pattern legs at > 90 degrees). `first`
/// protects the verbatim-anchored breakout prefix.
void collapse_foldbacks(geom::Polyline& path, double max_back, std::size_t first) {
  constexpr double kAntiparallel = -0.99;
  auto& pts = path.points();
  bool changed = true;
  while (changed && pts.size() >= 3) {
    changed = false;
    for (std::size_t i = std::max<std::size_t>(first, 1); i + 1 < pts.size(); ++i) {
      const geom::Vec2 in = pts[i] - pts[i - 1];
      const geom::Vec2 out = pts[i + 1] - pts[i];
      if (in.norm() <= geom::kEps || out.norm() <= geom::kEps) continue;
      if (in.norm() > max_back) continue;
      if (geom::dot(in.normalized(), out.normalized()) >= kAntiparallel) continue;
      pts.erase(pts.begin() + static_cast<std::ptrdiff_t>(i));
      changed = true;
      break;
    }
  }
}

/// Pitch attribution of one point against the reference median: its own
/// node's pitch when it survived extension verbatim, otherwise the widest
/// endpoint pitch of the nearest reference segment.
double pitch_at_point(const geom::Polyline& reference, std::span<const double> pitch,
                      const geom::Point& p) {
  constexpr double kNodeTol = 1e-7;
  if (reference.empty() || pitch.size() != reference.size()) return 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (geom::almost_equal(reference[i], p, kNodeTol)) return pitch[i];
  }
  double best_d = std::numeric_limits<double>::max();
  double best_pitch = pitch.front();
  for (std::size_t i = 0; i + 1 < reference.size(); ++i) {
    const double d = geom::dist_point_segment(p, reference.segment(i));
    if (d < best_d - 1e-12) {
      best_d = d;
      best_pitch = std::max(pitch[i], pitch[i + 1]);
    }
  }
  return best_pitch;
}

/// Oracle verdict of one sub-trace against everything the board knows about
/// (self rules always; containment/obstacles when the caller supplied them).
std::vector<layout::Violation> oracle_violations(
    const layout::Trace& t, const drc::DesignRules& rules,
    const layout::RoutableArea* area, const layout::ObstacleSelector* obstacles) {
  const layout::DrcChecker checker;
  std::vector<layout::Violation> out = checker.check_trace(t, rules);
  const auto append = [&out](std::vector<layout::Violation> v) {
    out.insert(out.end(), v.begin(), v.end());
  };
  if (obstacles != nullptr) {
    // Everything obstacle clearance can reach from this candidate path; the
    // selector falls back to the full board list when the splice escaped the
    // tile-local coverage, so the verdict never depends on tiling.
    const geom::Box need = t.path.bbox().inflated(
        rules.effective_obs() + layout::DrcCheckOptions{}.tolerance + 1e-9);
    append(checker.check_obstacles(t, rules, obstacles->select(need)));
  }
  if (area != nullptr && !area->outline.empty()) {
    append(checker.check_containment(t, *area));
  }
  return out;
}

}  // namespace

MergedPair merge_pair(const layout::DiffPair& pair, const drc::DesignRules& sub_rules,
                      const std::vector<double>& rules_r) {
  MergedPair out;
  const auto& pp = pair.positive.path.points();
  const auto& nn = pair.negative.path.points();
  const std::size_t skip = std::min({pair.breakout_nodes, pp.size(), nn.size()});

  const std::span<const geom::Point> p_span{pp.data() + skip, pp.size() - skip};
  const std::span<const geom::Point> n_span{nn.data() + skip, nn.size() - skip};
  out.matching = msdtw_match(p_span, n_span, rules_r);

  const MedianTrace mt =
      build_median_trace(p_span, n_span, out.matching.pairs, out.matching.pair_rules);

  // Assemble: preserved breakout (averaged across the pair) then the median
  // points of the matched components, each carrying its DRA pitch.
  geom::Polyline median;
  std::vector<double> node_pitch;
  for (std::size_t i = 0; i < skip; ++i) {
    median.push_back((pp[i] + nn[i]) * 0.5);
    node_pitch.push_back(pair.pitch);
  }
  for (const MedianComponent& comp : mt.components) {
    median.push_back(comp.median);
    node_pitch.push_back(comp.rule > 0.0 ? comp.rule : pair.pitch);
  }
  simplify_with_pitch(median, node_pitch, 1e-12, skip);

  out.median.id = pair.id;
  out.median.name = pair.name + ".median";
  out.median.path = std::move(median);
  out.median.width = 2.0 * pair.positive.width + pair.pitch;
  out.virtual_rules = drc::virtual_pair_rules(sub_rules, pair.pitch);
  out.base_pitch = pair.pitch;
  out.node_pitch = std::move(node_pitch);
  out.breakout_p.assign(pp.begin(), pp.begin() + static_cast<std::ptrdiff_t>(skip));
  out.breakout_n.assign(nn.begin(), nn.begin() + static_cast<std::ptrdiff_t>(skip));

  // Length bookkeeping for tiny-pattern compensation.
  const double med_len = out.median.path.length();
  out.skipped_p_length = pair.positive.path.length() - med_len;
  out.skipped_n_length = pair.negative.path.length() - med_len;
  return out;
}

layout::DiffPair restore_pair(const layout::Trace& median, const RestoreSpec& spec) {
  if (!spec.node_pitch.empty() && spec.node_pitch.size() != median.path.size()) {
    throw std::invalid_argument("restore_pair: node_pitch misaligned with median path");
  }
  layout::DiffPair pair;
  pair.id = median.id;
  pair.name = median.name;
  pair.pitch = spec.pitch;
  pair.positive.id = median.id;
  pair.positive.name = median.name + ".P";
  pair.positive.width = spec.sub_width;
  pair.negative.id = median.id;
  pair.negative.name = median.name + ".N";
  pair.negative.width = spec.sub_width;
  if (spec.node_pitch.empty()) {
    pair.positive.path = geom::offset_polyline(median.path, +spec.pitch / 2.0);
    pair.negative.path = geom::offset_polyline(median.path, -spec.pitch / 2.0);
  } else {
    pair.positive.path = offset_piecewise(median.path, spec.node_pitch, +1.0);
    pair.negative.path = offset_piecewise(median.path, spec.node_pitch, -1.0);
  }

  // Re-anchor the preserved breakout verbatim: the averaged-then-offset
  // breakout drifts off the original pin positions whenever the breakout is
  // not exactly pitch-separated. Stop at the first median node that is no
  // longer the breakout average (extension inserted nodes there).
  // Index-aligned anchoring requires the offset paths to mirror the median
  // node for node (offset_polyline can drop degenerate segments of an
  // unsimplified median; in that case skip anchoring rather than overwrite
  // the wrong vertex).
  const bool aligned = pair.positive.path.size() == median.path.size() &&
                       pair.negative.path.size() == median.path.size();
  const std::size_t k =
      aligned ? std::min({spec.breakout_p.size(), spec.breakout_n.size(),
                          median.path.size()})
              : 0;
  std::size_t anchored = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const geom::Point avg = (spec.breakout_p[i] + spec.breakout_n[i]) * 0.5;
    if (!geom::almost_equal(median.path[i], avg, 1e-7)) break;
    pair.positive.path[i] = spec.breakout_p[i];
    pair.negative.path[i] = spec.breakout_n[i];
    anchored = i + 1;
  }

  double max_pitch = spec.pitch;
  for (const double q : spec.node_pitch) max_pitch = std::max(max_pitch, q);
  collapse_foldbacks(pair.positive.path, max_pitch, anchored);
  collapse_foldbacks(pair.negative.path, max_pitch, anchored);
  return pair;
}

layout::DiffPair restore_pair(const layout::Trace& median, double pitch, double sub_width) {
  RestoreSpec spec;
  spec.pitch = pitch;
  spec.sub_width = sub_width;
  return restore_pair(median, spec);
}

std::vector<double> transfer_node_pitch(const geom::Polyline& reference,
                                        std::span<const double> reference_pitch,
                                        const geom::Polyline& extended) {
  if (reference_pitch.size() != reference.size()) {
    throw std::invalid_argument("transfer_node_pitch: pitch misaligned with reference");
  }
  std::vector<double> out;
  out.reserve(extended.size());
  for (std::size_t i = 0; i < extended.size(); ++i) {
    out.push_back(pitch_at_point(reference, reference_pitch, extended[i]));
  }
  return out;
}

double local_restore_pitch(const geom::Polyline& reference,
                           std::span<const double> reference_pitch,
                           const geom::Segment& seg) {
  if (reference_pitch.size() != reference.size()) {
    throw std::invalid_argument("local_restore_pitch: pitch misaligned with reference");
  }
  return std::max({pitch_at_point(reference, reference_pitch, seg.a),
                   pitch_at_point(reference, reference_pitch, seg.midpoint()),
                   pitch_at_point(reference, reference_pitch, seg.b)});
}

double compensate_skew(layout::DiffPair& pair, const drc::DesignRules& sub_rules,
                       const layout::RoutableArea* area,
                       const std::vector<layout::Obstacle>* obstacles) {
  if (obstacles == nullptr) {
    return compensate_skew(pair, sub_rules, area,
                           static_cast<const layout::ObstacleSelector*>(nullptr));
  }
  std::vector<layout::ObstacleRef> refs;
  refs.reserve(obstacles->size());
  for (std::size_t oi = 0; oi < obstacles->size(); ++oi) {
    refs.push_back({&(*obstacles)[oi], static_cast<std::uint32_t>(oi)});
  }
  // Empty coverage: every probe selects the full list — plain board checking.
  const layout::ObstacleSelector sel{refs, refs, geom::Box{}};
  return compensate_skew(pair, sub_rules, area, &sel);
}

double compensate_skew(layout::DiffPair& pair, const drc::DesignRules& sub_rules,
                       const layout::RoutableArea* area,
                       const layout::ObstacleSelector* obstacles) {
  const double lp = pair.positive.path.length();
  const double ln = pair.negative.path.length();
  const double skew = std::abs(lp - ln);
  // Under mitered rules the hat corners must be chamfered (the oracle
  // rejects right angles there), which trades length per corner; size the
  // height for the style so the realized gain still covers the skew.
  const core::PatternStyle style = sub_rules.miter > 0.0 ? core::PatternStyle::Mitered
                                                         : core::PatternStyle::RightAngle;
  const double h = core::height_for_gain(skew, style, sub_rules.miter);
  if (h < sub_rules.protect) return skew;  // negligible; leave as-is

  layout::Trace& shorter = lp < ln ? pair.positive : pair.negative;
  geom::Polyline& path = shorter.path;
  // Pattern legs are same-side parallel runs, so the hat width must meet
  // the gap rule as well as d_protect — the same minimum-width constraint
  // the segment DP enforces for its patterns. Mitering needs room for the
  // two hat chamfer cuts on top.
  const double w = std::max(2.0 * sub_rules.protect + 2.0 * sub_rules.miter,
                            sub_rules.effective_gap());

  // Candidate host segments, longest first (ties keep trace order): the
  // pattern needs w plus a d_protect stub on each side.
  std::vector<std::size_t> hosts;
  for (std::size_t i = 0; i < path.segment_count(); ++i) {
    if (path.segment(i).length() >= w + 2.0 * sub_rules.protect) hosts.push_back(i);
  }
  std::stable_sort(hosts.begin(), hosts.end(), [&](std::size_t a, std::size_t b) {
    return path.segment(a).length() > path.segment(b).length();
  });

  // Tiny pattern pointing away from the partner sub-trace (outward = the
  // side of the median offset, i.e. left for P, right for N).
  const double side = (&shorter == &pair.positive) ? +1.0 : -1.0;
  for (const std::size_t best : hosts) {
    const geom::Segment seg = path.segment(best);
    const double best_len = seg.length();
    const geom::Frame frame = geom::Frame::along(seg);
    const double mid = best_len / 2.0;
    geom::Polyline local{{
        {0.0, 0.0},           {mid - w / 2.0, 0.0}, {mid - w / 2.0, side * h},
        {mid + w / 2.0, side * h}, {mid + w / 2.0, 0.0}, {best_len, 0.0}}};
    if (style == core::PatternStyle::Mitered) {
      local = geom::chamfer_corners(local, sub_rules.miter);
    }
    std::vector<geom::Point> global_pts;
    global_pts.reserve(local.size());
    for (const geom::Point& q : local.points()) global_pts.push_back(frame.to_global(q));
    global_pts.front() = seg.a;
    global_pts.back() = seg.b;
    // The hat pokes outward into whatever the board put there — validate the
    // spliced candidate through the oracle (self gap against neighbouring
    // meander legs, containment, obstacle clearance) and fall back to the
    // next-longest host when any verdict touches the spliced region
    // (segments/vertices [best, best+5]). Pre-existing violations elsewhere
    // on the path keep their indices out of that range and never veto a
    // host; a pre-existing violation *on* the host keeps the pattern away
    // from already-compromised ground.
    layout::Trace candidate = shorter;
    candidate.path.splice(best, best + 1, global_pts);
    const std::vector<layout::Violation> verdicts =
        oracle_violations(candidate, sub_rules, area, obstacles);
    // The splice replaces one segment by global_pts.size() - 1 new ones at
    // [best, best + size - 2]; the old follower segment lands at
    // best + size - 1 and must keep its pre-existing verdicts veto-free.
    const auto in_region = [&](std::size_t idx) {
      return idx >= best && idx + 1 < best + global_pts.size();
    };
    // index_b is a segment of this trace only for SelfGap (it names the
    // obstacle for clearance verdicts and is unused elsewhere).
    const bool pattern_clean =
        std::none_of(verdicts.begin(), verdicts.end(), [&](const layout::Violation& v) {
          return in_region(v.index_a) ||
                 (v.kind == layout::ViolationKind::SelfGap && in_region(v.index_b));
        });
    if (!pattern_clean) continue;
    path = std::move(candidate.path);
    return std::abs(pair.positive.path.length() - pair.negative.path.length());
  }
  return skew;  // no host can take the pattern legally
}

}  // namespace lmr::dtw
