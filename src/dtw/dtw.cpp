#include "dtw/dtw.hpp"

#include <algorithm>
#include <limits>

namespace lmr::dtw {

DtwResult dtw_match(std::span<const geom::Point> p, std::span<const geom::Point> n) {
  DtwResult result;
  const std::size_t I = p.size();
  const std::size_t J = n.size();
  if (I == 0 || J == 0) return result;

  // C[i][j] = min cost matching the first i nodes of P with the first j of N
  // (1-based); Eq. 17 with the C[0][0] = 0 initialization.
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> c(I + 1, std::vector<double>(J + 1, inf));
  c[0][0] = 0.0;
  for (std::size_t i = 1; i <= I; ++i) {
    for (std::size_t j = 1; j <= J; ++j) {
      const double best =
          std::min({c[i - 1][j], c[i][j - 1], c[i - 1][j - 1]});
      if (best < inf) c[i][j] = best + geom::dist(p[i - 1], n[j - 1]);
    }
  }
  result.total_cost = c[I][J];

  // Backtrack from C[I][J] to C[0][0]; every visited cell is a matched pair.
  std::size_t i = I, j = J;
  while (i >= 1 && j >= 1) {
    result.pairs.push_back({i - 1, j - 1, geom::dist(p[i - 1], n[j - 1])});
    const double diag = (i > 1 && j > 1) ? c[i - 1][j - 1] : inf;
    const double up = i > 1 ? c[i - 1][j] : inf;
    const double left = j > 1 ? c[i][j - 1] : inf;
    if (i == 1 && j == 1) break;
    if (diag <= up && diag <= left) {
      --i;
      --j;
    } else if (up <= left) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(result.pairs.begin(), result.pairs.end());
  return result;
}

}  // namespace lmr::dtw
