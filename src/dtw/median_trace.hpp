#pragma once
/// \file median_trace.hpp
/// Median-trace generation from matched node pairs (§V-A, Eq. 18).
///
/// Matched pairs connect nodes of the two sub-traces into connected
/// components; each component V_C yields one median point
///     p_m = midpoint( avg(V_C ∩ P), avg(V_C ∩ N) )
/// — first averaging per side so that many-to-one matchings do not drag the
/// median toward the denser side. Unmatched (filtered) nodes contribute
/// nothing.

#include <span>
#include <vector>

#include "dtw/dtw.hpp"
#include "geom/polyline.hpp"

namespace lmr::dtw {

/// One connected component of matched nodes.
struct MedianComponent {
  std::vector<std::size_t> p_nodes;  ///< member indices in traceP
  std::vector<std::size_t> n_nodes;  ///< member indices in traceN
  geom::Point median;                ///< Eq. 18 result
  /// Design-Rule-Area attribution: the widest distance rule among the
  /// matched pairs forming this component (0 when no rule attribution was
  /// supplied). The piecewise restore offsets this median node at rule/2.
  double rule = 0.0;
};

/// Components in trace order plus the assembled median polyline.
struct MedianTrace {
  std::vector<MedianComponent> components;
  geom::Polyline median;
};

/// Build the median trace for sub-trace node sequences `p`/`n` from matched
/// pairs (typically the filtered output of MSDTW). Pairs must reference
/// valid indices. Components are emitted in ascending traceP order, which is
/// the trace direction for monotone DTW matchings. `pair_rules`, when
/// non-empty, must align with `pairs` (MsdtwResult::pair_rules) and
/// attributes each component with its DRA rule.
[[nodiscard]] MedianTrace build_median_trace(std::span<const geom::Point> p,
                                             std::span<const geom::Point> n,
                                             std::span<const MatchPair> pairs,
                                             std::span<const double> pair_rules = {});

}  // namespace lmr::dtw
