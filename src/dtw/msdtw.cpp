#include "dtw/msdtw.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lmr::dtw {

namespace {

/// A sub-pair: index ranges [p_lo, p_hi) x [n_lo, n_hi) still to be matched.
struct SubPair {
  std::size_t p_lo = 0, p_hi = 0;
  std::size_t n_lo = 0, n_hi = 0;
  [[nodiscard]] bool has_p() const { return p_lo < p_hi; }
  [[nodiscard]] bool has_n() const { return n_lo < n_hi; }
};

}  // namespace

MsdtwResult msdtw_match(std::span<const geom::Point> p, std::span<const geom::Point> n,
                        std::span<const double> rules) {
  if (rules.empty()) throw std::invalid_argument("msdtw_match: empty rule set");
  for (std::size_t k = 1; k < rules.size(); ++k) {
    if (rules[k] < rules[k - 1]) {
      throw std::invalid_argument("msdtw_match: rules must be ascending");
    }
  }

  MsdtwResult out;
  out.p_paired.assign(p.size(), false);
  out.n_paired.assign(n.size(), false);

  std::vector<SubPair> subs{{0, p.size(), 0, n.size()}};
  for (const double r : rules) {
    ++out.rounds_run;
    // Absolute epsilon so a coupling at exactly sqrt(2)*r (a perfect
    // 90-degree corner of a pair at pitch r) is accepted despite rounding.
    const double cutoff = std::sqrt(2.0) * r + 1e-9;
    std::vector<SubPair> next;
    for (const SubPair& sp : subs) {
      // Dropping rule (Alg. 3 lines 12-16): a side with no nodes left means
      // the remainder is tiny-pattern noise.
      if (!sp.has_p() || !sp.has_n()) continue;

      const DtwResult d = dtw_match(p.subspan(sp.p_lo, sp.p_hi - sp.p_lo),
                                    n.subspan(sp.n_lo, sp.n_hi - sp.n_lo));
      // Accept pairs under the cutoff; record and use them as split points.
      std::vector<MatchPair> accepted;
      for (const MatchPair& m : d.pairs) {
        if (m.cost <= cutoff) {
          accepted.push_back({m.ip + sp.p_lo, m.in + sp.n_lo, m.cost});
        }
      }
      if (accepted.empty()) {
        // Nothing matched at this scale; retry the whole sub-pair at the
        // next (looser) rule.
        next.push_back(sp);
        continue;
      }
      for (const MatchPair& m : accepted) {
        out.pairs.push_back(m);
        out.pair_rules.push_back(r);
        out.p_paired[m.ip] = true;
        out.n_paired[m.in] = true;
      }
      // Split into the gaps between consecutive accepted pairs (plus the
      // leading and trailing remainders).
      std::size_t prev_p = sp.p_lo, prev_n = sp.n_lo;
      for (const MatchPair& m : accepted) {
        next.push_back({prev_p, m.ip, prev_n, m.in});
        prev_p = m.ip + 1;
        prev_n = m.in + 1;
      }
      next.push_back({prev_p, sp.p_hi, prev_n, sp.n_hi});
    }
    subs = std::move(next);
    if (subs.empty()) break;
  }

  // Sort pairs by trace position, carrying the rule attribution along.
  std::vector<std::size_t> order(out.pairs.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const MatchPair& ma = out.pairs[a];
    const MatchPair& mb = out.pairs[b];
    return ma.ip < mb.ip || (ma.ip == mb.ip && ma.in < mb.in);
  });
  std::vector<MatchPair> sorted_pairs;
  std::vector<double> sorted_rules;
  sorted_pairs.reserve(order.size());
  sorted_rules.reserve(order.size());
  for (const std::size_t k : order) {
    sorted_pairs.push_back(out.pairs[k]);
    sorted_rules.push_back(out.pair_rules[k]);
  }
  out.pairs = std::move(sorted_pairs);
  out.pair_rules = std::move(sorted_rules);
  return out;
}

}  // namespace lmr::dtw
