#pragma once
/// \file cancel.hpp
/// Cooperative cancellation and deadlines for long-running routing work.
///
/// A `CancelToken` is a cheap, copyable handle that routing stages and the
/// DP extender's outer loop poll at pattern-placement granularity. A
/// default-constructed token is *empty*: `check()` on it is a single null
/// pointer test, so the plumbing costs nothing when nobody asked for
/// cancellation (see bench_micro_fault for the measured overhead).
///
/// Tokens form a chain: `source()` makes a manually cancellable root and
/// `with_deadline(budget_s)` derives a child that also expires `budget_s`
/// from the moment of derivation, while still honouring every ancestor.
/// Expiry surfaces as a typed exception — `RouteTimeout` for a deadline,
/// `RouteCancelled` for a manual cancel — thrown from `check()`; the
/// Router's rollback-on-throw path turns either into a clean abort that
/// leaves the layout untouched.

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/clock.hpp"

namespace lmr::fault {

/// A route exceeded its deadline (`RouterOptions::deadline_s` or a token
/// from `CancelToken::with_deadline`). The layout is untouched: the throw
/// unwinds through the Router's rollback path.
class RouteTimeout : public std::runtime_error {
 public:
  explicit RouteTimeout(double budget_s)
      : std::runtime_error("route deadline of " + std::to_string(budget_s) +
                           " s exceeded"),
        budget_s_(budget_s) {}
  [[nodiscard]] double budget_s() const noexcept { return budget_s_; }

 private:
  double budget_s_;
};

/// A route was cancelled via `CancelToken::cancel()`. Same rollback
/// guarantee as RouteTimeout.
class RouteCancelled : public std::runtime_error {
 public:
  RouteCancelled() : std::runtime_error("route cancelled") {}
};

/// Copyable cancellation handle. Thread-safe: any thread may `cancel()`
/// while workers `check()`. Empty tokens never fire.
class CancelToken {
 public:
  CancelToken() = default;

  /// A manually cancellable root token.
  [[nodiscard]] static CancelToken source();

  /// Derive a token that additionally expires `budget_s` seconds from now.
  /// The parent's cancellation/deadline still applies to the child. Called
  /// on an empty token this just creates a deadline root.
  [[nodiscard]] CancelToken with_deadline(double budget_s) const;

  /// Request cancellation. No-op on an empty token; ancestors are not
  /// affected, descendants observe it.
  void cancel() const;

  [[nodiscard]] bool armed() const noexcept { return state_ != nullptr; }

  /// True when cancelled or past any deadline in the chain (non-throwing).
  [[nodiscard]] bool expired() const;

  /// Throw RouteCancelled / RouteTimeout when expired; otherwise return.
  /// The hot-path cost of an empty token is this one null test.
  void check() const {
    if (state_ != nullptr) check_armed();
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;
    core::Clock::time_point deadline{};
    double budget_s = 0.0;
    std::shared_ptr<State> parent;
  };

  explicit CancelToken(std::shared_ptr<State> s) : state_(std::move(s)) {}
  void check_armed() const;

  std::shared_ptr<State> state_;
};

}  // namespace lmr::fault
