#pragma once
/// \file fault_plan.hpp
/// Deterministic, seeded fault injection for the routing stack.
///
/// A `FaultPlan` is a list of rules, each naming a *site key* — a
/// thread-agnostic string identifying one place the pipeline calls
/// `at_site()` from:
///
///   extend:<scope>/g<group>/m<member>   one member's extension starting
///   sweep:<scope>/g<group>              one group's cross-member sweep
///   session:apply:<scope>               one edit lowering in Session::apply
///
/// where `<scope>` is `RouterOptions::fault_scope` (the serving tier sets
/// the board id). Each rule keeps its own occurrence counter: the rule
/// fires on matching occurrences `[nth, nth + count)`, either throwing a
/// typed `InjectedFault` or sleeping `delay_s` (to force deadline
/// timeouts). Matching is exact, or prefix when the rule's site ends in
/// `*`.
///
/// Determinism: a fire is a function of (site key, per-rule occurrence
/// number) only — never of thread identity. When the visits matching one
/// rule are serialized (one board's pumps are; one member's extensions
/// are), the occurrence sequence — and therefore every fire — is
/// byte-reproducible across thread counts. That is the property the
/// fault_storm oracle leans on: its synthesized rules only target sites
/// with serialized visit order (apply sites, and first-occurrence extend
/// sites).
///
/// Thread-safety: counters are atomic, the rule list is immutable after
/// installation — add every rule *before* sharing the plan with a Router
/// or RoutingService. The disarmed cost (no plan installed) is one null
/// pointer test per site; see bench_micro_fault.

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace lmr::fault {

/// The typed failure a Throw rule raises. Derives from std::runtime_error
/// (not logic_error): the serving tier classifies it as retryable.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(std::string site, std::uint64_t occurrence)
      : std::runtime_error("injected fault at " + site + " (occurrence " +
                           std::to_string(occurrence) + ")"),
        site_(std::move(site)),
        occurrence_(occurrence) {}
  [[nodiscard]] const std::string& site() const noexcept { return site_; }
  [[nodiscard]] std::uint64_t occurrence() const noexcept { return occurrence_; }

 private:
  std::string site_;
  std::uint64_t occurrence_;
};

enum class FaultAction : std::uint8_t {
  Throw,  ///< raise InjectedFault at the site
  Delay,  ///< sleep delay_s at the site (for deadline tests), then continue
};

/// One armed failure: fire on matching occurrences [nth, nth + count).
struct FaultRule {
  std::string site;          ///< exact site key, or prefix ending in '*'
  std::uint64_t nth = 1;     ///< first matching occurrence that fires (1-based)
  std::uint64_t count = 1;   ///< consecutive occurrences that fire from nth on
  FaultAction action = FaultAction::Throw;
  double delay_s = 0.0;      ///< Delay action sleep duration
};

/// The installed plan. Share via shared_ptr in RouterOptions::fault_plan /
/// ServiceOptions::fault_plan; occurrence counters live in the plan, so a
/// replay that must start from zero needs a fresh instance.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultRule> rules);

  /// Arm one rule. Not thread-safe: call before installing the plan.
  void add(FaultRule rule);

  /// The pipeline's hook: count this visit against every matching rule and
  /// fire the ones whose window covers it. Delay rules sleep and fall
  /// through (a later Throw rule may still fire); the first matching Throw
  /// rule in arming order wins.
  void at_site(std::string_view site);

  [[nodiscard]] bool empty() const noexcept { return rules_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }
  [[nodiscard]] const FaultRule& rule(std::size_t i) const { return rules_.at(i)->rule; }
  /// Matching occurrences rule `i` has seen so far.
  [[nodiscard]] std::uint64_t hits(std::size_t i) const;
  /// Times rule `i` actually fired.
  [[nodiscard]] std::uint64_t fires(std::size_t i) const;
  [[nodiscard]] std::uint64_t total_fires() const noexcept {
    return total_fires_.load(std::memory_order_relaxed);
  }

 private:
  struct Armed {
    FaultRule rule;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fires{0};
  };
  static bool matches(const FaultRule& r, std::string_view site);

  std::vector<std::unique_ptr<Armed>> rules_;  ///< unique_ptr: atomics pin addresses
  std::atomic<std::uint64_t> total_fires_{0};
};

// Site-key builders, shared by the injection points and the tests/bench
// that target them.
[[nodiscard]] std::string extend_site(std::string_view scope, std::size_t group,
                                      std::size_t member);
[[nodiscard]] std::string sweep_site(std::string_view scope, std::size_t group);
[[nodiscard]] std::string apply_site(std::string_view scope);

}  // namespace lmr::fault
