#include "fault/cancel.hpp"

#include "core/clock.hpp"

namespace lmr::fault {

CancelToken CancelToken::source() {
  return CancelToken(std::make_shared<State>());
}

CancelToken CancelToken::with_deadline(double budget_s) const {
  auto s = std::make_shared<State>();
  s->has_deadline = true;
  s->deadline = core::now() + core::duration_from_seconds(budget_s);
  s->budget_s = budget_s;
  s->parent = state_;
  return CancelToken(std::move(s));
}

void CancelToken::cancel() const {
  if (state_ != nullptr) state_->cancelled.store(true, std::memory_order_release);
}

bool CancelToken::expired() const {
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->cancelled.load(std::memory_order_acquire)) return true;
    if (s->has_deadline && core::now() > s->deadline) return true;
  }
  return false;
}

void CancelToken::check_armed() const {
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->cancelled.load(std::memory_order_acquire)) throw RouteCancelled();
    if (s->has_deadline && core::now() > s->deadline) {
      throw RouteTimeout(s->budget_s);
    }
  }
}

}  // namespace lmr::fault
