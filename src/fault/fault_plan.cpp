#include "fault/fault_plan.hpp"

#include <chrono>
#include <thread>
#include <utility>

namespace lmr::fault {

FaultPlan::FaultPlan(std::vector<FaultRule> rules) {
  for (FaultRule& r : rules) add(std::move(r));
}

void FaultPlan::add(FaultRule rule) {
  auto armed = std::make_unique<Armed>();
  armed->rule = std::move(rule);
  rules_.push_back(std::move(armed));
}

bool FaultPlan::matches(const FaultRule& r, std::string_view site) {
  if (!r.site.empty() && r.site.back() == '*') {
    const std::string_view prefix(r.site.data(), r.site.size() - 1);
    return site.substr(0, prefix.size()) == prefix;
  }
  return site == r.site;
}

void FaultPlan::at_site(std::string_view site) {
  for (const std::unique_ptr<Armed>& a : rules_) {
    if (!matches(a->rule, site)) continue;
    const std::uint64_t n = a->hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n < a->rule.nth || n >= a->rule.nth + a->rule.count) continue;
    a->fires.fetch_add(1, std::memory_order_relaxed);
    total_fires_.fetch_add(1, std::memory_order_relaxed);
    if (a->rule.action == FaultAction::Delay) {
      std::this_thread::sleep_for(std::chrono::duration<double>(a->rule.delay_s));
      continue;  // a delay stalls the stage; it does not abort it
    }
    throw InjectedFault(std::string(site), n);
  }
}

std::uint64_t FaultPlan::hits(std::size_t i) const {
  return rules_.at(i)->hits.load(std::memory_order_relaxed);
}

std::uint64_t FaultPlan::fires(std::size_t i) const {
  return rules_.at(i)->fires.load(std::memory_order_relaxed);
}

std::string extend_site(std::string_view scope, std::size_t group, std::size_t member) {
  return "extend:" + std::string(scope) + "/g" + std::to_string(group) + "/m" +
         std::to_string(member);
}

std::string sweep_site(std::string_view scope, std::size_t group) {
  return "sweep:" + std::string(scope) + "/g" + std::to_string(group);
}

std::string apply_site(std::string_view scope) {
  return "session:apply:" + std::string(scope);
}

}  // namespace lmr::fault
