#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/contract.hpp"

namespace lmr::lp {

namespace {

constexpr double kTol = 1e-9;

/// Dense simplex tableau with explicit basis bookkeeping.
struct Tableau {
  // Rows: one per constraint; columns: structural + slack/surplus +
  // artificial + rhs.
  std::size_t rows = 0;
  std::size_t cols = 0;  // total variable columns (without rhs)
  std::vector<std::vector<double>> a;  // rows x (cols + 1); last col = rhs
  std::vector<std::size_t> basis;      // basic variable of each row

  double& at(std::size_t r, std::size_t c) { return a[r][c]; }
  double rhs(std::size_t r) const { return a[r][cols]; }

  void pivot(std::size_t pr, std::size_t pc) {
    const double pv = a[pr][pc];
    LMR_ASSERT(std::abs(pv) > kTol, "pivot element chosen by the ratio test is nonzero");
    for (double& v : a[pr]) v /= pv;
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == pr) continue;
      const double f = a[r][pc];
      if (std::abs(f) <= kTol) continue;
      for (std::size_t c = 0; c <= cols; ++c) a[r][c] -= f * a[pr][c];
    }
    basis[pr] = pc;
  }

  /// Price out: reduced costs for objective `obj` (maximization).
  /// Returns entering column by Bland's rule, or npos at optimality.
  std::size_t entering(const std::vector<double>& z) const {
    for (std::size_t c = 0; c < cols; ++c) {
      if (z[c] > kTol) return c;
    }
    return npos;
  }

  /// Ratio test; returns leaving row or npos (unbounded).
  std::size_t leaving(std::size_t pc) const {
    std::size_t best = npos;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < rows; ++r) {
      if (a[r][pc] <= kTol) continue;
      const double ratio = rhs(r) / a[r][pc];
      if (ratio < best_ratio - kTol ||
          (ratio < best_ratio + kTol && (best == npos || basis[r] < basis[best]))) {
        best_ratio = ratio;
        best = r;
      }
    }
    return best;
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Reduced-cost vector for maximizing objective `c_full` given the basis.
std::vector<double> reduced_costs(const Tableau& t, const std::vector<double>& c_full) {
  std::vector<double> z(t.cols, 0.0);
  for (std::size_t c = 0; c < t.cols; ++c) {
    double v = c_full[c];
    for (std::size_t r = 0; r < t.rows; ++r) v -= c_full[t.basis[r]] * t.a[r][c];
    z[c] = v;
  }
  return z;
}

double objective_value(const Tableau& t, const std::vector<double>& c_full) {
  double v = 0.0;
  for (std::size_t r = 0; r < t.rows; ++r) v += c_full[t.basis[r]] * t.rhs(r);
  return v;
}

LpStatus run_simplex(Tableau& t, const std::vector<double>& c_full) {
  // Bland's rule guarantees termination; cap iterations defensively anyway.
  const std::size_t max_iters = 50 * (t.rows + t.cols) + 1000;
  for (std::size_t it = 0; it < max_iters; ++it) {
    const auto z = reduced_costs(t, c_full);
    const std::size_t pc = t.entering(z);
    if (pc == Tableau::npos) return LpStatus::Optimal;
    const std::size_t pr = t.leaving(pc);
    if (pr == Tableau::npos) return LpStatus::Unbounded;
    t.pivot(pr, pc);
  }
  return LpStatus::Optimal;  // converged within tolerance in practice
}

}  // namespace

void SimplexSolver::set_objective(std::vector<double> c) {
  LMR_REQUIRE(c.size() == n_, "objective has one coefficient per variable");
  c_ = std::move(c);
}

void SimplexSolver::add_constraint(Constraint c) {
  LMR_REQUIRE(c.coeffs.size() == n_, "constraint has one coefficient per variable");
  cons_.push_back(std::move(c));
}

LpResult SimplexSolver::solve() const {
  const std::size_t m = cons_.size();
  // Column layout: [structural n_][slack/surplus s][artificial a].
  std::size_t num_slack = 0;
  for (const auto& con : cons_) {
    if (con.rel != Relation::Equal) ++num_slack;
  }
  // Artificial variables: for >=, = rows, and for <= rows with negative rhs
  // (normalized below). Count after normalization.
  std::vector<Constraint> rows = cons_;
  for (auto& con : rows) {
    if (con.rhs < 0.0) {
      for (double& v : con.coeffs) v = -v;
      con.rhs = -con.rhs;
      if (con.rel == Relation::LessEq) {
        con.rel = Relation::GreaterEq;
      } else if (con.rel == Relation::GreaterEq) {
        con.rel = Relation::LessEq;
      }
    }
  }
  num_slack = 0;
  std::size_t num_art = 0;
  for (const auto& con : rows) {
    if (con.rel != Relation::Equal) ++num_slack;
    if (con.rel != Relation::LessEq) ++num_art;
  }

  Tableau t;
  t.rows = m;
  t.cols = n_ + num_slack + num_art;
  t.a.assign(m, std::vector<double>(t.cols + 1, 0.0));
  t.basis.assign(m, Tableau::npos);

  std::size_t slack_col = n_;
  std::size_t art_col = n_ + num_slack;
  for (std::size_t r = 0; r < m; ++r) {
    const Constraint& con = rows[r];
    for (std::size_t c = 0; c < n_; ++c) t.a[r][c] = con.coeffs[c];
    t.a[r][t.cols] = con.rhs;
    switch (con.rel) {
      case Relation::LessEq:
        t.a[r][slack_col] = 1.0;
        t.basis[r] = slack_col;
        ++slack_col;
        break;
      case Relation::GreaterEq:
        t.a[r][slack_col] = -1.0;  // surplus
        ++slack_col;
        t.a[r][art_col] = 1.0;
        t.basis[r] = art_col;
        ++art_col;
        break;
      case Relation::Equal:
        t.a[r][art_col] = 1.0;
        t.basis[r] = art_col;
        ++art_col;
        break;
    }
  }

  LpResult result;

  // Phase 1: maximize -(sum of artificials).
  if (num_art > 0) {
    std::vector<double> c1(t.cols, 0.0);
    for (std::size_t c = n_ + num_slack; c < t.cols; ++c) c1[c] = -1.0;
    const LpStatus s1 = run_simplex(t, c1);
    (void)s1;  // phase 1 is bounded by construction
    if (objective_value(t, c1) < -1e-7) {
      result.status = LpStatus::Infeasible;
      return result;
    }
    // Pivot any artificial still in the basis (degenerate at zero) out.
    for (std::size_t r = 0; r < m; ++r) {
      if (t.basis[r] < n_ + num_slack) continue;
      std::size_t pc = Tableau::npos;
      for (std::size_t c = 0; c < n_ + num_slack; ++c) {
        if (std::abs(t.a[r][c]) > kTol) {
          pc = c;
          break;
        }
      }
      if (pc != Tableau::npos) t.pivot(r, pc);
      // Otherwise the row is redundant; harmless to keep.
    }
    // Erase the artificial columns so phase 2 can never re-enter them: with
    // zero entries everywhere their reduced cost is exactly zero.
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = n_ + num_slack; c < t.cols; ++c) {
        if (t.basis[r] != c) t.a[r][c] = 0.0;
      }
    }
  }

  // Phase 2: user objective (zero objective => any feasible point is optimal).
  std::vector<double> c2(t.cols, 0.0);
  if (!c_.empty()) {
    for (std::size_t c = 0; c < n_; ++c) c2[c] = c_[c];
  }
  // Forbid artificials from re-entering.
  const LpStatus s2 = run_simplex(t, c2);
  if (s2 == LpStatus::Unbounded) {
    result.status = LpStatus::Unbounded;
    return result;
  }

  result.status = LpStatus::Optimal;
  result.x.assign(n_, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (t.basis[r] < n_) result.x[t.basis[r]] = t.rhs(r);
  }
  result.objective = 0.0;
  if (!c_.empty()) {
    for (std::size_t c = 0; c < n_; ++c) result.objective += c_[c] * result.x[c];
  }
  return result;
}

}  // namespace lmr::lp
