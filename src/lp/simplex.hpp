#pragma once
/// \file simplex.hpp
/// Dense two-phase simplex LP solver.
///
/// Substrate for the paper's region-assignment feasibility LP (§III, Eq. 4):
/// find x_ij >= 0 with sum_j x_ij <= Cap_i (region capacity) and
/// sum_i x_ij >= Req_j (trace sufficiency), x_ij = 0 for non-neighbours.
/// Problems of that shape are tiny (regions x traces), so a dense tableau
/// with Bland's anti-cycling rule is entirely adequate and dependency-free.

#include <cstddef>
#include <vector>

namespace lmr::lp {

/// Relational operator of one constraint row.
enum class Relation { LessEq, GreaterEq, Equal };

/// One linear constraint: coeffs . x (rel) rhs.
struct Constraint {
  std::vector<double> coeffs;
  Relation rel = Relation::LessEq;
  double rhs = 0.0;
};

/// Outcome classification of a solve.
enum class LpStatus { Optimal, Infeasible, Unbounded };

/// Solution report.
struct LpResult {
  LpStatus status = LpStatus::Infeasible;
  std::vector<double> x;     ///< primal solution (valid when Optimal)
  double objective = 0.0;    ///< objective value at x
};

/// Linear program: maximize c.x subject to constraints and x >= 0.
class SimplexSolver {
 public:
  /// `num_vars` decision variables, all with implicit x >= 0 bounds.
  explicit SimplexSolver(std::size_t num_vars) : n_(num_vars) {}

  /// Set the maximization objective (defaults to the zero objective, which
  /// turns solve() into a pure feasibility check).
  void set_objective(std::vector<double> c);

  void add_constraint(Constraint c);
  void add_less_eq(std::vector<double> coeffs, double rhs) {
    add_constraint({std::move(coeffs), Relation::LessEq, rhs});
  }
  void add_greater_eq(std::vector<double> coeffs, double rhs) {
    add_constraint({std::move(coeffs), Relation::GreaterEq, rhs});
  }
  void add_equal(std::vector<double> coeffs, double rhs) {
    add_constraint({std::move(coeffs), Relation::Equal, rhs});
  }

  /// Two-phase solve. Phase 1 drives artificial variables to zero (reporting
  /// Infeasible if it cannot); phase 2 optimizes the user objective.
  [[nodiscard]] LpResult solve() const;

  [[nodiscard]] std::size_t num_vars() const { return n_; }
  [[nodiscard]] std::size_t num_constraints() const { return cons_.size(); }

 private:
  std::size_t n_;
  std::vector<double> c_;
  std::vector<Constraint> cons_;
};

}  // namespace lmr::lp
