#pragma once
/// \file task_pool.hpp
/// Persistent work-stealing executor — the process-wide scale lever.
///
/// The routing flow is embarrassingly parallel at three nested levels
/// (members of a group, groups of a layout, cases of a benchmark run), but
/// per-call `std::async` spawning pays a thread start/join per batch and
/// cannot share workers across levels. `TaskPool` fixes both:
///
///  * a fixed set of worker threads lives as long as the pool (constructed
///    once, reused by every `route_batch`/`route_all`/`Suite::run` call);
///  * each worker owns a Chase–Lev deque (steal_deque.hpp): tasks spawned
///    *by* a worker go to its own deque LIFO, idle workers steal FIFO from
///    the others, so uneven task costs — member extension times spread over
///    an order of magnitude — balance without a central queue;
///  * `TaskGroup::wait()` called *on* a worker does not block the thread:
///    the waiter keeps executing pool tasks until its group drains, so
///    nested fan-out (a Suite case task running a Router that fans out its
///    members) cannot deadlock, whatever the pool size;
///  * a pool with 0 workers is valid and fully serial: every task runs
///    inline on the waiting thread — thread count 1 needs no threads.
///
/// Use `TaskPool::shared()` (lazy singleton sized to the hardware) for
/// default-configured callers, or construct explicit instances to pin a
/// worker count (the `--scaling` sweep, tests). `resolve_threads` is the
/// single source of truth for the user-facing "0 = hardware" convention.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/steal_deque.hpp"

namespace lmr::exec {

class TaskGroup;

/// Resolve a user-facing thread-count option: 0 means hardware concurrency,
/// never less than 1. Every layer (Router, Suite, bench mains) must resolve
/// through here so "0" means the same thing everywhere.
[[nodiscard]] std::size_t resolve_threads(std::size_t requested);

/// The executor. Submission happens through `TaskGroup`; the pool itself
/// only knows how to store, steal and run anonymous tasks.
class TaskPool {
 public:
  /// Pool with exactly `workers` worker threads (0 is valid: tasks then run
  /// inline on whichever thread waits on their group). A caller that
  /// participates via `TaskGroup::wait`/`parallel_for_dynamic` adds one to
  /// the effective parallelism, hence `parallelism() == workers + 1`.
  explicit TaskPool(std::size_t workers);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Process-wide lazily-created pool with `resolve_threads(0) - 1` workers
  /// (the submitting thread is the extra participant). First call creates
  /// it; it lives until process exit.
  static TaskPool& shared();

  [[nodiscard]] std::size_t worker_count() const { return deques_.size(); }

  /// Workers plus the calling participant — what a claimer-style fan-out
  /// can actually run concurrently through this pool.
  [[nodiscard]] std::size_t parallelism() const { return deques_.size() + 1; }

  /// True when the calling thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const;

  /// Execute one pending task if any is immediately claimable (own deque
  /// for a worker, else injection queue, else steal). Returns false when
  /// nothing was run. Safe from any thread; the helping backbone of
  /// `TaskGroup::wait`.
  bool try_run_one();

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  void submit(Task* t);
  Task* take(std::size_t self_or_npos);
  static void execute(Task* t);
  void worker_loop(std::size_t index);

  static constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);

  std::vector<std::unique_ptr<StealDeque<Task>>> deques_;
  std::vector<std::thread> workers_;
  std::deque<Task*> injection_;  ///< external submissions; guarded by mu_
  /// Mirror of injection_.size(), so empty-queue polls skip the lock.
  std::atomic<std::size_t> injection_size_{0};
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Submission epoch / parked-worker count: the lock-free half of the
  /// sleep/wake protocol (see submit()); mu_ is only taken to park or to
  /// notify an actual sleeper.
  std::atomic<std::uint64_t> signal_{0};
  std::atomic<std::uint32_t> sleepers_{0};
  bool stop_ = false;  ///< guarded by mu_
};

/// A batch of tasks on one pool, with exception capture: `wait()` returns
/// when every task submitted through `run()` has finished and rethrows the
/// first captured exception (later ones are dropped; the remaining tasks
/// still run to completion, matching the drain-then-rethrow semantics the
/// router's `std::async` claimers had). A group is reusable after `wait()`.
class TaskGroup {
 public:
  explicit TaskGroup(TaskPool& pool) : pool_(pool) {}

  /// Drains remaining tasks; any unretrieved exception is discarded (a
  /// throwing destructor would terminate).
  ~TaskGroup() { drain(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submit one task. From a worker thread this pushes onto its own deque
  /// (stealable by idle workers); from any other thread it goes through the
  /// pool's injection queue.
  void run(std::function<void()> fn);

  /// Chained / continuation submission: run `stages` strictly in order as
  /// successive tasks of this group — stage k+1 is submitted only after
  /// stage k returned normally, so a stage may freely read everything its
  /// predecessors wrote. A throwing stage is captured like any other task
  /// failure and short-circuits the chain: the not-yet-submitted tail never
  /// runs (other chains and tasks of the group still drain before `wait()`
  /// rethrows). Submitted from a worker, each continuation lands on that
  /// worker's own deque (LIFO: it usually runs next, cache-warm) while
  /// staying stealable by idle workers — the building block of the router's
  /// staged extend → write-back → per-net-DRC pipeline.
  void run_chain(std::vector<std::function<void()>> stages);

  /// Block until every task has finished, then rethrow the first captured
  /// exception if any. On a pool worker "block" means *help*: the waiter
  /// executes pool tasks (its own fan-out first, then stolen work) instead
  /// of sleeping, which is what makes nested submission deadlock-free.
  void wait();

  [[nodiscard]] TaskPool& pool() const { return pool_; }

 private:
  friend class TaskPool;

  void run_stage(std::shared_ptr<std::vector<std::function<void()>>> stages,
                 std::size_t k);
  void drain();
  void finish_one(std::exception_ptr error);

  TaskPool& pool_;
  std::atomic<std::size_t> pending_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::exception_ptr error_;  ///< first failure; guarded by mu_
};

/// The single source of truth for the user-facing thread-count convention
/// shared by Router, Suite and the bench mains: `threads == 0` borrows the
/// lazy shared singleton (hardware-sized), `threads == 1` means fully
/// serial (no executor at all), `threads > 1` owns a private pinned pool
/// of `threads - 1` workers — the calling thread is the last participant.
/// Acquisition is lazy, so a handle that is never used for a parallel
/// fan-out never spawns a thread.
class PoolHandle {
 public:
  explicit PoolHandle(std::size_t threads) : threads_(threads) {}

  /// The executor for this thread count, created/borrowed on first call
  /// (thread-safe); nullptr when the configuration is serial.
  [[nodiscard]] TaskPool* acquire();

  [[nodiscard]] std::size_t threads() const { return threads_; }

 private:
  std::size_t threads_;
  std::once_flag once_;
  TaskPool* borrowed_ = nullptr;
  std::unique_ptr<TaskPool> owned_;
};

/// Dynamically-scheduled parallel loop: run `fn(0) .. fn(n-1)` with at most
/// `max_parallelism` concurrent claimers, the calling thread being one of
/// them. Each claimer grabs the next unprocessed index from a shared
/// counter, so wildly uneven per-index costs (the routing workload: member
/// extension times spread over an order of magnitude) never idle behind a
/// static partition. Results must be written by index by `fn` itself —
/// that is what keeps the outcome independent of scheduling order.
///
/// `max_parallelism <= 1`, `n <= 1`, or a 0-worker pool degenerate to an
/// inline serial loop on the caller. Exceptions from `fn` propagate to the
/// caller (first one wins) after every claimer has drained.
template <typename Fn>
void parallel_for_dynamic(TaskPool& pool, std::size_t n, std::size_t max_parallelism,
                          Fn&& fn) {
  if (n == 0) return;
  const std::size_t claimers = std::min({max_parallelism, n, pool.parallelism()});
  if (claimers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const auto claim = [&next, &fn, n] {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  TaskGroup group(pool);
  for (std::size_t c = 1; c < claimers; ++c) group.run(claim);
  claim();  // the caller is a claimer too; ~TaskGroup drains if this throws
  group.wait();
}

}  // namespace lmr::exec
