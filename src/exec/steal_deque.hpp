#pragma once
/// \file steal_deque.hpp
/// Chase–Lev work-stealing deque (SPAA'05), with the C++11 memory orderings
/// of Lê, Pop, Cohen & Nardelli, "Correct and Efficient Work-Stealing for
/// Weak Memory Models" (PPoPP'13).
///
/// Single-owner, multi-thief: the owning worker pushes and pops at the
/// *bottom* (LIFO, cache-warm continuation of its own fan-out), while any
/// other thread steals from the *top* (FIFO, the oldest — typically largest
/// — task). All three operations are lock-free; only `pop` and `steal`
/// contend, and only on the last remaining element.
///
/// The ring buffer grows on demand. Retired buffers cannot be freed
/// immediately (a concurrent thief may still be reading a slot), so they
/// are parked until the deque itself is destroyed — the classic
/// leak-until-quiescent reclamation, bounded because growth doubles.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/contract.hpp"

// ThreadSanitizer does not model std::atomic_thread_fence (GCC warns under
// -Wtsan and the runtime reports false races through fence-ordered code), so
// sanitizer builds use the sequentially-consistent per-operation form of the
// deque instead — the orderings Lê et al. *weaken* with those fences, i.e.
// strictly stronger and slower, and only for the TSAN CI job.
#if defined(__SANITIZE_THREAD__)
#define LMR_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LMR_TSAN_BUILD 1
#endif
#endif

namespace lmr::exec {

/// Deque of `T*` (ownership stays with the caller). The owner thread is the
/// only one allowed to call `push`/`pop`; `steal` is safe from any thread.
template <typename T>
class StealDeque {
 public:
  explicit StealDeque(std::size_t capacity = 64) {
    std::int64_t cap = 1;
    while (cap < static_cast<std::int64_t>(capacity)) cap <<= 1;
    array_.store(new Array(cap), std::memory_order_relaxed);
  }

  ~StealDeque() {
    delete array_.load(std::memory_order_relaxed);
    for (Array* a : retired_) delete a;
  }

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Checked builds only: bind the owner role to the calling thread. The
  /// pool's worker calls this on startup; otherwise the first push/pop
  /// claims ownership. A release no-op.
  void adopt_owner() {
#if LMR_CONTRACT_CHECKS_ENABLED
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }

  /// Owner only: append at the bottom, growing the ring when full.
  void push(T* item) {
    assert_owner();
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t > a->size - 1) a = grow(a, t, b);
    a->put(b, item);
#ifdef LMR_TSAN_BUILD
    bottom_.store(b + 1, std::memory_order_seq_cst);
#else
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
#endif
  }

  /// Owner only: take the most recently pushed item; nullptr when empty.
  T* pop() {
    assert_owner();
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
#ifdef LMR_TSAN_BUILD
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
#else
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
#endif
    T* item = nullptr;
    if (t <= b) {
      item = a->get(b);
      if (t == b) {
        // Last element: race thieves for it; either way the deque empties.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = nullptr;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread: take the oldest item. nullptr when empty *or* on a lost
  /// race with the owner / another thief — callers treat both as "try
  /// elsewhere and come back".
  T* steal() {
#ifdef LMR_TSAN_BUILD
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
#else
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
#endif
    if (t < b) {
      Array* a = array_.load(std::memory_order_acquire);
      T* item = a->get(t);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return nullptr;
      }
      return item;
    }
    return nullptr;
  }

  /// Racy emptiness hint (exact only for the owner between operations).
  [[nodiscard]] bool empty() const {
    return bottom_.load(std::memory_order_relaxed) <=
           top_.load(std::memory_order_relaxed);
  }

 private:
  /// Ownership contract: push/pop are single-owner. In checked builds the
  /// first push/pop (or an explicit adopt_owner) binds the owner thread and
  /// every later call must come from it; release builds carry no owner
  /// state at all.
  void assert_owner() {
#if LMR_CONTRACT_CHECKS_ENABLED
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    if (owner_.compare_exchange_strong(expected, self, std::memory_order_relaxed)) {
      return;  // first owner-side call claims the role
    }
    LMR_REQUIRE(expected == self,
                "push/pop are owner-only; other threads must steal()");
#endif
  }

  struct Array {
    explicit Array(std::int64_t n)
        : size(n), mask(n - 1), slots(new std::atomic<T*>[static_cast<std::size_t>(n)]) {}
    ~Array() { delete[] slots; }
    const std::int64_t size;
    const std::int64_t mask;
    std::atomic<T*>* slots;

    T* get(std::int64_t i) const { return slots[i & mask].load(std::memory_order_relaxed); }
    void put(std::int64_t i, T* x) { slots[i & mask].store(x, std::memory_order_relaxed); }
  };

  Array* grow(Array* a, std::int64_t t, std::int64_t b) {
    auto* bigger = new Array(a->size * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, a->get(i));
    retired_.push_back(a);  // thieves may still read it; freed with *this
    array_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Array*> array_{nullptr};
  std::vector<Array*> retired_;  ///< owner-only; reclaimed at destruction
#if LMR_CONTRACT_CHECKS_ENABLED
  std::atomic<std::thread::id> owner_{};  ///< checked builds: bound owner
#endif
};

}  // namespace lmr::exec
