#include "exec/task_pool.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/contract.hpp"

namespace lmr::exec {

namespace {

/// Worker identity: which pool this thread belongs to (nullptr for every
/// non-worker thread) and its deque index there. Thread-local instead of a
/// map lookup so the hot submit/help paths stay branch-plus-load.
thread_local TaskPool* tl_pool = nullptr;
thread_local std::size_t tl_index = 0;

}  // namespace

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

TaskPool::TaskPool(std::size_t workers) {
  deques_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    deques_.push_back(std::make_unique<StealDeque<Task>>());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // By contract every TaskGroup is waited on before its pool dies, so these
  // drains only matter after a contract violation — still, don't leak. The
  // destructing thread is not the deques' owner, so it steals (any-thread
  // safe) rather than pops; the workers are already joined.
  for (Task* t : injection_) delete t;
  for (auto& d : deques_) {
    while (Task* t = d->steal()) delete t;
  }
}

TaskPool& TaskPool::shared() {
  static TaskPool pool(resolve_threads(0) - 1);
  return pool;
}

bool TaskPool::on_worker_thread() const { return tl_pool == this; }

void TaskPool::submit(Task* t) {
  if (tl_pool == this) {
    deques_[tl_index]->push(t);  // lock-free: the worker-side hot path
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    injection_.push_back(t);
    injection_size_.store(injection_.size(), std::memory_order_release);
  }
  // Wake protocol (Dekker-style, both sides seq_cst): a worker publishes
  // itself in sleepers_ *before* its final signal_ check, we bump signal_
  // *before* reading sleepers_. Whatever the interleaving, either the
  // worker sees the new epoch and skips sleeping, or we see the sleeper
  // and notify — taking the mutex only then, so the common submit path
  // costs two atomics, not a lock.
  signal_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_one();
  }
}

TaskPool::Task* TaskPool::take(std::size_t self_or_npos) {
  // Own deque first: LIFO keeps a worker on the continuation it just
  // spawned (cache-warm, and the natural order for nested fan-out).
  if (self_or_npos != kNotAWorker) {
    if (Task* t = deques_[self_or_npos]->pop()) return t;
  }
  // Gate the injection queue behind its atomic size so the idle-poll loops
  // (helping waiters spinning in drain(), workers between steals) don't
  // serialize on mu_ when the queue is empty — the common case, since
  // worker-submitted tasks live in the lock-free deques.
  if (injection_size_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!injection_.empty()) {
      Task* t = injection_.front();
      injection_.pop_front();
      injection_size_.store(injection_.size(), std::memory_order_release);
      return t;
    }
  }
  // Steal round: rotate from the neighbour so thieves spread out instead of
  // all hammering deque 0. A lost CAS race shows up as nullptr and we just
  // move on — the caller loops anyway.
  const std::size_t n = deques_.size();
  if (n == 0) return nullptr;
  const std::size_t start = self_or_npos == kNotAWorker ? 0 : self_or_npos + 1;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (start + k) % n;
    if (victim == self_or_npos) continue;
    if (Task* t = deques_[victim]->steal()) return t;
  }
  return nullptr;
}

void TaskPool::execute(Task* t) {
  std::exception_ptr err;
  try {
    t->fn();
  } catch (...) {
    err = std::current_exception();
  }
  TaskGroup* group = t->group;
  // Free the task (and the captures keeping the submitter's stack alive)
  // *before* signalling completion: once finish_one drops pending to zero
  // the waiter may unwind that stack.
  delete t;
  group->finish_one(std::move(err));
}

bool TaskPool::try_run_one() {
  Task* t = take(tl_pool == this ? tl_index : kNotAWorker);
  if (t == nullptr) return false;
  execute(t);
  return true;
}

void TaskPool::worker_loop(std::size_t index) {
  // A thread serves at most one pool for its whole life; re-binding would
  // silently corrupt the submit fast path of whichever pool loses.
  LMR_ASSERT(tl_pool == nullptr, "worker thread already bound to a pool");
  tl_pool = this;
  tl_index = index;
  deques_[index]->adopt_owner();
  for (;;) {
    // Record the epoch *before* scanning: any submission after this load
    // bumps signal_ past `epoch`, so the sleep predicate below cannot miss
    // it even if the scan raced past the half-pushed task.
    const std::uint64_t epoch = signal_.load(std::memory_order_seq_cst);
    if (Task* t = take(index)) {
      execute(t);
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return;
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    cv_.wait(lock, [&] {
      return stop_ || signal_.load(std::memory_order_seq_cst) != epoch;
    });
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    if (stop_) return;
  }
}

void TaskGroup::run(std::function<void()> fn) {
  LMR_REQUIRE(static_cast<bool>(fn), "a task must be callable");
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_.submit(new TaskPool::Task{std::move(fn), this});
}

void TaskGroup::run_chain(std::vector<std::function<void()>> stages) {
  if (stages.empty()) return;
  run_stage(std::make_shared<std::vector<std::function<void()>>>(std::move(stages)), 0);
}

void TaskGroup::run_stage(std::shared_ptr<std::vector<std::function<void()>>> stages,
                          std::size_t k) {
  // Each stage is one group task that, on normal return, submits its
  // successor. The submission happens inside the task body — before
  // finish_one drops the pending count — so the group can never observe a
  // momentarily-empty chain and release a waiter early. A throw skips the
  // submission, which is exactly the short-circuit contract.
  run([this, stages, k] {
    (*stages)[k]();
    if (k + 1 < stages->size()) run_stage(stages, k + 1);
  });
}

void TaskGroup::drain() {
  const bool is_worker = pool_.on_worker_thread();
  int idle_spins = 0;
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (pool_.try_run_one()) {
      idle_spins = 0;
      continue;
    }
    // Nothing claimable but the group is not done: our tasks are running on
    // other threads. A worker must not sleep on the group (its own deque is
    // only stealable, not waitable), so it yields, then naps briefly. An
    // external thread can block outright: worker-held tasks are always
    // drained by their owners.
    if (is_worker) {
      if (++idle_spins < 64) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    } else {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return pending_.load(std::memory_order_acquire) == 0; });
    }
  }
  // Destruction barrier. A spinning waiter can observe pending_ == 0 while
  // the finishing thread is still inside finish_one's critical section; if
  // we returned now, ~TaskGroup could destroy mu_/cv_ under it. finish_one
  // touches nothing after that section, so acquiring mu_ once here
  // guarantees the finisher has fully left the group.
  const std::lock_guard<std::mutex> lock(mu_);
}

void TaskGroup::wait() {
  drain();
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(mu_);
    err = std::exchange(error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

TaskPool* PoolHandle::acquire() {
  if (threads_ == 1) return nullptr;
  std::call_once(once_, [&] {
    if (threads_ == 0) {
      borrowed_ = &TaskPool::shared();
    } else {
      owned_ = std::make_unique<TaskPool>(threads_ - 1);
    }
  });
  return borrowed_ != nullptr ? borrowed_ : owned_.get();
}

void TaskGroup::finish_one(std::exception_ptr error) {
  // Entirely under mu_: the decrement is the waiter's release signal, so no
  // member may be touched after it outside this critical section — drain()
  // re-acquires mu_ once after observing pending_ == 0, which makes the
  // section a destruction barrier (and keeps the blocked-waiter wakeup
  // race-free, since its predicate also runs under mu_).
  const std::lock_guard<std::mutex> lock(mu_);
  if (error && !error_) error_ = std::move(error);
  LMR_ASSERT(pending_.load(std::memory_order_relaxed) > 0,
             "finish_one without a matching run()");
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    cv_.notify_all();
  }
}

}  // namespace lmr::exec
