#include "assign/slab_decomposition.hpp"

#include <algorithm>

namespace lmr::assign {

std::vector<Slab> decompose_slabs(const geom::Box& bundle,
                                  const std::vector<geom::Polygon>& obstacles,
                                  double clearance) {
  std::vector<geom::Box> footprints;
  footprints.reserve(obstacles.size());
  std::vector<double> cuts{bundle.lo.x, bundle.hi.x};
  for (const geom::Polygon& o : obstacles) {
    geom::Box b = o.bbox().inflated(clearance);
    if (!b.intersects(bundle)) continue;
    b.lo.x = std::max(b.lo.x, bundle.lo.x);
    b.hi.x = std::min(b.hi.x, bundle.hi.x);
    footprints.push_back(b);
    cuts.push_back(b.lo.x);
    cuts.push_back(b.hi.x);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end(),
                         [](double a, double b) { return std::abs(a - b) < 1e-9; }),
             cuts.end());

  std::vector<Slab> slabs;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    Slab s;
    s.x0 = cuts[i];
    s.x1 = cuts[i + 1];
    if (s.width() <= 1e-9) continue;
    const double xm = (s.x0 + s.x1) / 2.0;
    index::IntervalSet blocked;
    for (const geom::Box& b : footprints) {
      if (xm >= b.lo.x && xm <= b.hi.x) blocked.insert(b.lo.y, b.hi.y);
    }
    s.free_y = blocked.gaps(bundle.lo.y, bundle.hi.y);
    slabs.push_back(std::move(s));
  }
  return slabs;
}

}  // namespace lmr::assign
