#include "assign/region_assigner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lmr::assign {

double space_requirement(double extra, const drc::DesignRules& rules) {
  if (extra <= 0.0) return 0.0;
  // A meander of total extra length L is a row of legs; each unit of gained
  // length occupies roughly (d_gap + w)/2 of area (one leg of height h gains
  // 2h and claims h * (gap + w) of strip area).
  return extra * (rules.effective_gap()) / 2.0;
}

CorridorAssignment assign_corridors(const CorridorSpec& spec) {
  const std::size_t T = spec.traces.size();
  if (spec.targets.size() != T) {
    throw std::invalid_argument("assign_corridors: targets size mismatch");
  }
  CorridorAssignment out;

  const std::vector<Slab> slabs =
      decompose_slabs(spec.bundle, spec.obstacles, spec.rules.effective_obs());
  const std::size_t R = slabs.size();

  // Requirements (Eq. 3 rhs).
  out.requirements.resize(T);
  for (std::size_t j = 0; j < T; ++j) {
    const double extra = spec.targets[j] - spec.traces[j]->path.length();
    out.requirements[j] = spec.safety_factor * space_requirement(extra, spec.rules);
  }

  // Trace centerline y at a given x (piecewise linear sample).
  const auto trace_y_at = [&](const layout::Trace& t, double x) {
    const auto& pts = t.path.points();
    for (std::size_t k = 0; k + 1 < pts.size(); ++k) {
      const double x0 = std::min(pts[k].x, pts[k + 1].x);
      const double x1 = std::max(pts[k].x, pts[k + 1].x);
      if (x >= x0 - 1e-9 && x <= x1 + 1e-9) {
        if (std::abs(pts[k + 1].x - pts[k].x) < 1e-12) return pts[k].y;
        const double u = (x - pts[k].x) / (pts[k + 1].x - pts[k].x);
        return pts[k].y + u * (pts[k + 1].y - pts[k].y);
      }
    }
    return pts.front().y;
  };

  // Neighbor matrix (Eq. 1): region i neighbors trace j when the trace
  // passes through one of its free spans.
  AssignmentInput lp_in;
  lp_in.capacity.resize(R);
  lp_in.requirement = out.requirements;
  lp_in.neighbor.assign(R, std::vector<bool>(T, false));
  for (std::size_t i = 0; i < R; ++i) {
    lp_in.capacity[i] = slabs[i].free_area();
    const double xm = (slabs[i].x0 + slabs[i].x1) / 2.0;
    for (std::size_t j = 0; j < T; ++j) {
      const double y = trace_y_at(*spec.traces[j], xm);
      lp_in.neighbor[i][j] = slabs[i].free_span_at(y) != nullptr;
    }
  }
  out.lp = solve_assignment(lp_in);
  out.feasible = out.lp.feasible;

  // Build disjoint per-trace areas: per slab, split each free span between
  // the traces inside it at the midlines weighted by assigned share; stitch
  // the slab rectangles into one rectilinear outline per trace.
  std::vector<std::vector<geom::Box>> rects(T);
  for (std::size_t i = 0; i < R; ++i) {
    const Slab& slab = slabs[i];
    const double xm = (slab.x0 + slab.x1) / 2.0;
    for (const index::Interval& span : slab.free_y) {
      // Traces inside this span, sorted by y.
      std::vector<std::pair<double, std::size_t>> inside;
      for (std::size_t j = 0; j < T; ++j) {
        const double y = trace_y_at(*spec.traces[j], xm);
        if (y >= span.lo && y <= span.hi) inside.push_back({y, j});
      }
      if (inside.empty()) continue;
      std::sort(inside.begin(), inside.end());
      // Split boundaries: between consecutive traces, weighted by share.
      double lo = span.lo;
      for (std::size_t k = 0; k < inside.size(); ++k) {
        double hi;
        if (k + 1 == inside.size()) {
          hi = span.hi;
        } else {
          const std::size_t ja = inside[k].second;
          const std::size_t jb = inside[k + 1].second;
          const double share_a = out.feasible ? std::max(out.lp.x[i][ja], 1e-9) : 1.0;
          const double share_b = out.feasible ? std::max(out.lp.x[i][jb], 1e-9) : 1.0;
          const double w = share_a / (share_a + share_b);
          hi = inside[k].first + (inside[k + 1].first - inside[k].first) * w;
        }
        rects[inside[k].second].push_back({{slab.x0, lo}, {slab.x1, hi}});
        lo = hi;
      }
    }
  }

  out.areas.resize(T);
  for (std::size_t j = 0; j < T; ++j) {
    if (rects[j].empty()) continue;
    // Stitch slab rectangles (already in ascending x) into a rectilinear
    // outline: top boundary left-to-right, bottom boundary right-to-left.
    std::vector<geom::Point> top, bottom;
    for (const geom::Box& b : rects[j]) {
      top.push_back({b.lo.x, b.hi.y});
      top.push_back({b.hi.x, b.hi.y});
      bottom.push_back({b.lo.x, b.lo.y});
      bottom.push_back({b.hi.x, b.lo.y});
    }
    std::vector<geom::Point> loop;
    loop.insert(loop.end(), bottom.begin(), bottom.end());
    loop.insert(loop.end(), top.rbegin(), top.rend());
    // Drop consecutive duplicates.
    std::vector<geom::Point> clean;
    for (const geom::Point& p : loop) {
      if (clean.empty() || !geom::almost_equal(clean.back(), p, 1e-9)) clean.push_back(p);
    }
    out.areas[j].outline = geom::Polygon{std::move(clean)};
    out.areas[j].outline.make_ccw();
    // Note: obstacles never end up as holes here — the slab decomposition
    // already carves their (inflated) footprints out of every free span, so
    // they lie outside all assigned rectangles by construction.
  }
  return out;
}

}  // namespace lmr::assign
