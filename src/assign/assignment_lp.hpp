#pragma once
/// \file assignment_lp.hpp
/// The region-assignment feasibility LP (§III, Eq. 4).
///
/// Variables x_ij = space of region i given to trace j, subject to
///   neighbor validity: x_ij = 0 when region i is not a neighbor of trace j
///                      (Eq. 1 — realized by simply omitting the variable),
///   feasibility:       sum_j x_ij <= Cap_i, x_ij >= 0 (Eq. 2),
///   sufficiency:       sum_i x_ij >= Req_j (Eq. 3).

#include <cstddef>
#include <vector>

namespace lmr::assign {

/// LP input. `neighbor[i][j]` marks region i adjacent to trace j.
struct AssignmentInput {
  std::vector<double> capacity;              ///< Cap_i per region
  std::vector<double> requirement;           ///< Req_j per trace
  std::vector<std::vector<bool>> neighbor;   ///< [region][trace]
};

/// LP output: x[i][j] (zero where not a neighbor).
struct AssignmentResult {
  bool feasible = false;
  std::vector<std::vector<double>> x;
};

/// Solve Eq. (4) with the in-repo simplex. Pure feasibility (zero
/// objective); any feasible assignment is returned.
[[nodiscard]] AssignmentResult solve_assignment(const AssignmentInput& in);

}  // namespace lmr::assign
