#pragma once
/// \file region_assigner.hpp
/// End-to-end region assignment for corridor bundles.
///
/// Specialization of §III for the common "parallel bus through a corridor"
/// topology used by every Table I case: traces run roughly left-to-right,
/// stacked in y. The assigner
///  1. decomposes the bundle into slabs (regions),
///  2. computes per-trace space requirements from the BSG length-space
///     relation Req_j ≈ safety * (l_target - l_j) * (d_gap + w)/2,
///  3. marks a region a neighbor of a trace when the trace's centerline
///     passes through (or adjacent to) one of its free spans,
///  4. solves the feasibility LP (Eq. 4),
///  5. converts the assignment into disjoint per-trace RoutableAreas by
///     splitting each slab's free span between the traces inside it,
///     proportionally to their assigned share.
///
/// For general topologies users can run the pieces individually; only the
/// final polygon construction assumes the corridor stacking.

#include <vector>

#include "assign/assignment_lp.hpp"
#include "assign/slab_decomposition.hpp"
#include "drc/rules.hpp"
#include "layout/routable_area.hpp"
#include "layout/trace.hpp"

namespace lmr::assign {

/// Input bundle.
struct CorridorSpec {
  geom::Box bundle;                              ///< overall corridor region
  std::vector<const layout::Trace*> traces;      ///< stacked in ascending y
  std::vector<double> targets;                   ///< per-trace target length
  std::vector<geom::Polygon> obstacles;          ///< vias etc. inside the bundle
  drc::DesignRules rules;
  double safety_factor = 1.2;                    ///< requirement head-room
};

/// Result: per-trace areas (same order as spec.traces).
struct CorridorAssignment {
  bool feasible = false;
  std::vector<double> requirements;              ///< Req_j actually used
  std::vector<layout::RoutableArea> areas;
  AssignmentResult lp;                           ///< raw x_ij for inspection
};

/// Space needed to meander `extra` additional length under `rules` (the
/// length-space relation of BSG-route [8] as used in DESIGN.md §5).
[[nodiscard]] double space_requirement(double extra, const drc::DesignRules& rules);

/// Run the corridor assignment.
[[nodiscard]] CorridorAssignment assign_corridors(const CorridorSpec& spec);

}  // namespace lmr::assign
