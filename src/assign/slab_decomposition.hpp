#pragma once
/// \file slab_decomposition.hpp
/// Vertical slab decomposition of a routing bundle (§III: "we divide the
/// design according to its layout to compose several regions").
///
/// The bundle box is cut at every obstacle x-extent; inside each slab the
/// free space is the y-interval complement of the obstacle spans. Slabs are
/// the "regions" of the assignment LP; their free areas are the capacities
/// Cap_i of Eq. (2).

#include <vector>

#include "geom/box.hpp"
#include "geom/polygon.hpp"
#include "index/interval_set.hpp"

namespace lmr::assign {

/// One vertical slab with its free y-intervals.
struct Slab {
  double x0 = 0.0;
  double x1 = 0.0;
  std::vector<index::Interval> free_y;  ///< free spans inside [bundle.lo.y, hi.y]

  [[nodiscard]] double width() const { return x1 - x0; }
  [[nodiscard]] double free_area() const {
    double a = 0.0;
    for (const auto& iv : free_y) a += iv.length();
    return a * width();
  }
  /// The free interval containing y, if any.
  [[nodiscard]] const index::Interval* free_span_at(double y) const {
    for (const auto& iv : free_y) {
      if (y >= iv.lo && y <= iv.hi) return &iv;
    }
    return nullptr;
  }
};

/// Decompose `bundle` against `obstacles` (clipped to the bundle). Obstacle
/// footprints are taken as their bounding boxes inflated by `clearance`
/// (conservative, like the DRC conversion of obstacles in §II).
[[nodiscard]] std::vector<Slab> decompose_slabs(const geom::Box& bundle,
                                                const std::vector<geom::Polygon>& obstacles,
                                                double clearance);

}  // namespace lmr::assign
