#include "assign/assignment_lp.hpp"

#include <stdexcept>

#include "lp/simplex.hpp"

namespace lmr::assign {

AssignmentResult solve_assignment(const AssignmentInput& in) {
  const std::size_t R = in.capacity.size();
  const std::size_t T = in.requirement.size();
  if (in.neighbor.size() != R) {
    throw std::invalid_argument("solve_assignment: neighbor rows != regions");
  }
  for (const auto& row : in.neighbor) {
    if (row.size() != T) {
      throw std::invalid_argument("solve_assignment: neighbor cols != traces");
    }
  }

  // Variables only for neighbor pairs (Eq. 1 by construction).
  std::vector<std::vector<std::size_t>> var_of(R, std::vector<std::size_t>(T, SIZE_MAX));
  std::size_t nv = 0;
  for (std::size_t i = 0; i < R; ++i) {
    for (std::size_t j = 0; j < T; ++j) {
      if (in.neighbor[i][j]) var_of[i][j] = nv++;
    }
  }

  AssignmentResult out;
  out.x.assign(R, std::vector<double>(T, 0.0));
  if (nv == 0) {
    // Feasible iff nobody needs anything.
    out.feasible = true;
    for (double req : in.requirement) out.feasible &= req <= 0.0;
    return out;
  }

  lp::SimplexSolver solver(nv);
  for (std::size_t i = 0; i < R; ++i) {  // Eq. 2
    std::vector<double> row(nv, 0.0);
    bool any = false;
    for (std::size_t j = 0; j < T; ++j) {
      if (var_of[i][j] != SIZE_MAX) {
        row[var_of[i][j]] = 1.0;
        any = true;
      }
    }
    if (any) solver.add_less_eq(std::move(row), in.capacity[i]);
  }
  for (std::size_t j = 0; j < T; ++j) {  // Eq. 3
    std::vector<double> row(nv, 0.0);
    bool any = false;
    for (std::size_t i = 0; i < R; ++i) {
      if (var_of[i][j] != SIZE_MAX) {
        row[var_of[i][j]] = 1.0;
        any = true;
      }
    }
    if (!any && in.requirement[j] > 0.0) return out;  // isolated needy trace
    if (any) solver.add_greater_eq(std::move(row), in.requirement[j]);
  }

  const lp::LpResult r = solver.solve();
  if (r.status != lp::LpStatus::Optimal) return out;
  out.feasible = true;
  for (std::size_t i = 0; i < R; ++i) {
    for (std::size_t j = 0; j < T; ++j) {
      if (var_of[i][j] != SIZE_MAX) out.x[i][j] = r.x[var_of[i][j]];
    }
  }
  return out;
}

}  // namespace lmr::assign
