#include "service/routing_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace lmr::service {

RoutingService::RoutingService(ServiceOptions opts) : opts_(opts) {
  if (opts_.pool != nullptr) {
    pool_ = opts_.pool;
    threads_ = pool_->parallelism();
  } else {
    threads_ = exec::resolve_threads(opts_.threads);
    // threads == 1 owns a 0-worker pool: pump tasks then run inline on the
    // thread that drains, which makes the serial service deterministic.
    owned_pool_ = std::make_unique<exec::TaskPool>(threads_ - 1);
    pool_ = owned_pool_.get();
  }
  group_ = std::make_unique<exec::TaskGroup>(*pool_);
}

RoutingService::~RoutingService() = default;  // ~TaskGroup drains the pumps

RoutingService::Board& RoutingService::board_at(const BoardId& id) {
  auto it = boards_.find(id);
  if (it == boards_.end()) {
    throw std::out_of_range("RoutingService: unknown board '" + id + "'");
  }
  return it->second;
}

const RoutingService::Board& RoutingService::board_at(const BoardId& id) const {
  auto it = boards_.find(id);
  if (it == boards_.end()) {
    throw std::out_of_range("RoutingService: unknown board '" + id + "'");
  }
  return it->second;
}

const RoutingService::Board& RoutingService::idle_board_at(const BoardId& id) const {
  const Board& b = board_at(id);
  if (b.busy) {
    throw std::logic_error("RoutingService: board '" + id +
                           "' is busy; drain() before reading its state");
  }
  return b;
}

void RoutingService::add_board(const BoardId& id, drc::DesignRules rules,
                               pipeline::RouterOptions options, layout::Layout board) {
  // The board's Router must fan out on the service's executor — a private
  // per-board pool would oversubscribe the machine N-fold.
  options.pool = pool_;
  options.threads = threads_;
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = boards_.try_emplace(id);
  if (!inserted) {
    throw std::invalid_argument("RoutingService: board '" + id + "' already exists");
  }
  Board& b = it->second;
  b.rules = rules;
  b.options = options;
  b.session = std::make_unique<pipeline::Session>(std::move(rules), std::move(options),
                                                  std::move(board));
  b.busy = true;  // the initial-route pump owns the board from birth
  schedule_locked(id);
}

std::uint64_t RoutingService::submit(const BoardId& id, layout::BoardEdit edit) {
  std::lock_guard<std::mutex> lk(mu_);
  Board& b = board_at(id);
  if (b.dead) {
    throw std::logic_error("RoutingService: board '" + id +
                           "' is dead (its initial route failed)");
  }
  ++b.stats.submitted;
  // is_frozen() is an atomic probe, safe to read while the pump routes;
  // each hit is an edit that would have been a RoutingFreeze throw.
  if (b.busy && b.session != nullptr && b.session->layout().is_frozen()) {
    ++b.stats.queued_while_frozen;
  }
  b.queue.push_back(Pending{std::move(edit), Clock::now()});
  b.stats.max_queue_depth =
      std::max<std::uint64_t>(b.stats.max_queue_depth, b.queue.size());
  if (!b.busy) {
    b.busy = true;
    schedule_locked(id);
  }
  return b.stats.submitted;
}

void RoutingService::schedule_locked(const BoardId& id) {
  group_->run([this, id] { pump(id); });
}

void RoutingService::pump(const BoardId& id) {
  Board* b = nullptr;
  bool initial = false;
  std::vector<layout::BoardEdit> batch;
  {
    std::lock_guard<std::mutex> lk(mu_);
    b = &boards_.at(id);
    if (b->session == nullptr) {
      // Thaw-on-next-edit: rebuild the Session from the snapshot. Done
      // under the lock so the `session` pointer never changes while
      // another thread may probe it.
      BoardSnapshot snap = std::move(*b->snapshot);
      b->snapshot.reset();
      b->session = std::make_unique<pipeline::Session>(
          b->rules, b->options, std::move(snap.layout), std::move(snap.route));
      ++b->stats.thaws;
    }
    initial = !b->routed;
    if (!initial) {
      std::size_t n = b->queue.size();
      if (opts_.max_batch != 0) n = std::min(n, opts_.max_batch);
      batch.reserve(n);
      const auto now = Clock::now();
      for (std::size_t i = 0; i < n; ++i) {
        Pending& p = b->queue.front();
        const double waited = std::chrono::duration<double>(now - p.enqueued).count();
        b->stats.dispatch_wait_s += waited;
        b->stats.max_dispatch_wait_s = std::max(b->stats.max_dispatch_wait_s, waited);
        batch.push_back(std::move(p.edit));
        b->queue.pop_front();
      }
    }
  }

  // The unlocked section: only this pump touches the Session (busy flag).
  const auto t0 = Clock::now();
  std::exception_ptr err;
  std::uint64_t violations = 0;
  try {
    if (initial) {
      b->session->route();
    } else {
      b->session->apply(std::span<const layout::BoardEdit>(batch));
    }
    // One clearance re-sweep per dispatch, however many edits coalesced.
    violations = b->session->board_clearance().size();
  } catch (...) {
    err = std::current_exception();
  }
  const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();

  std::lock_guard<std::mutex> lk(mu_);
  BoardStats& s = b->stats;
  if (err != nullptr) {
    if (b->error == nullptr) b->error = err;
    if (initial) {
      // No valid whole-board route to edit against: the board is dead.
      b->dead = true;
      b->queue.clear();
    }
  }
  if (initial) {
    if (err == nullptr) {
      b->routed = true;
      s.route_s += elapsed;
      s.clearance_violations = violations;
    }
  } else {
    ++s.batches;
    ++s.reroutes;
    if (batch.size() > 1) ++s.coalesced_batches;
    s.max_batch = std::max<std::uint64_t>(s.max_batch, batch.size());
    s.apply_s += elapsed;
    if (err == nullptr) {
      s.applied += batch.size();
      s.clearance_violations = violations;
    }
  }
  if (!b->dead && !b->queue.empty()) {
    schedule_locked(id);  // stay busy: more edits arrived meanwhile
  } else {
    b->busy = false;
  }
}

void RoutingService::drain() {
  // TaskGroup::wait helps: it runs pool tasks on this thread until every
  // pump (including the ones pumps reschedule) has finished — which is
  // also what executes everything on a 0-worker serial service.
  group_->wait();
  std::exception_ptr first;
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [id, b] : boards_) {
    if (first == nullptr && b.error != nullptr) first = b.error;
    b.error = nullptr;
  }
  if (first != nullptr) std::rethrow_exception(first);
}

bool RoutingService::evict_locked(Board& b) {
  if (b.busy || b.dead || !b.routed || !b.queue.empty() || b.session == nullptr) {
    return false;
  }
  auto [board, route] = b.session->release();
  b.snapshot = BoardSnapshot{std::move(board), std::move(route)};
  b.session.reset();
  ++b.stats.evictions;
  return true;
}

bool RoutingService::evict(const BoardId& id) {
  std::lock_guard<std::mutex> lk(mu_);
  return evict_locked(board_at(id));
}

std::size_t RoutingService::evict_idle() {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t evicted = 0;
  for (auto& [id, b] : boards_) {
    if (evict_locked(b)) ++evicted;
  }
  return evicted;
}

const layout::Layout& RoutingService::board_layout(const BoardId& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Board& b = idle_board_at(id);
  return b.session != nullptr ? b.session->layout() : b.snapshot->layout;
}

const pipeline::BoardRoute& RoutingService::board_route(const BoardId& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Board& b = idle_board_at(id);
  return b.session != nullptr ? b.session->route_state() : b.snapshot->route;
}

bool RoutingService::is_evicted(const BoardId& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return board_at(id).session == nullptr;
}

std::size_t RoutingService::queue_depth(const BoardId& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return board_at(id).queue.size();
}

BoardStats RoutingService::stats(const BoardId& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return board_at(id).stats;
}

std::vector<BoardId> RoutingService::board_ids() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<BoardId> ids;
  ids.reserve(boards_.size());
  for (const auto& [id, b] : boards_) ids.push_back(id);
  return ids;
}

ServiceTotals RoutingService::totals() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServiceTotals t;
  for (const auto& [id, b] : boards_) {
    const BoardStats& s = b.stats;
    t.submitted += s.submitted;
    t.applied += s.applied;
    t.batches += s.batches;
    t.coalesced_batches += s.coalesced_batches;
    t.max_batch = std::max(t.max_batch, s.max_batch);
    t.max_queue_depth = std::max(t.max_queue_depth, s.max_queue_depth);
    t.evictions += s.evictions;
    t.thaws += s.thaws;
    t.queued_while_frozen += s.queued_while_frozen;
  }
  return t;
}

}  // namespace lmr::service
