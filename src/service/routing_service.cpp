#include "service/routing_service.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>

#include "core/contract.hpp"
#include "fault/cancel.hpp"

namespace lmr::service {

namespace {

std::string describe(const std::exception_ptr& err) {
  try {
    std::rethrow_exception(err);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

std::string format_failures(const std::vector<BoardFailure>& failures) {
  std::string msg = std::to_string(failures.size()) + " board(s) failed:";
  for (const BoardFailure& f : failures) {
    msg += " [" + f.board + "] " + f.message + ";";
  }
  if (!failures.empty()) msg.pop_back();
  return msg;
}

}  // namespace

ServiceError::ServiceError(std::vector<BoardFailure> failures)
    : std::runtime_error(format_failures(failures)), failures_(std::move(failures)) {}

RoutingService::RoutingService(ServiceOptions opts) : opts_(std::move(opts)) {
  if (opts_.max_attempts == 0) opts_.max_attempts = 1;
  if (opts_.pool != nullptr) {
    pool_ = opts_.pool;
    threads_ = pool_->parallelism();
  } else {
    threads_ = exec::resolve_threads(opts_.threads);
    // threads == 1 owns a 0-worker pool: pump tasks then run inline on the
    // thread that drains, which makes the serial service deterministic.
    owned_pool_ = std::make_unique<exec::TaskPool>(threads_ - 1);
    pool_ = owned_pool_.get();
  }
  group_ = std::make_unique<exec::TaskGroup>(*pool_);
}

RoutingService::~RoutingService() = default;  // ~TaskGroup drains the pumps

RoutingService::Board& RoutingService::board_at(const BoardId& id) {
  auto it = boards_.find(id);
  if (it == boards_.end()) {
    throw std::out_of_range("RoutingService: unknown board '" + id + "'");
  }
  return it->second;
}

const RoutingService::Board& RoutingService::board_at(const BoardId& id) const {
  auto it = boards_.find(id);
  if (it == boards_.end()) {
    throw std::out_of_range("RoutingService: unknown board '" + id + "'");
  }
  return it->second;
}

const RoutingService::Board& RoutingService::idle_board_at(const BoardId& id) const {
  const Board& b = board_at(id);
  if (b.busy) {
    throw std::logic_error("RoutingService: board '" + id +
                           "' is busy; drain() before reading its state");
  }
  return b;
}

void RoutingService::add_board(const BoardId& id, drc::DesignRules rules,
                               pipeline::RouterOptions options, layout::Layout board) {
  // The board's Router must fan out on the service's executor — a private
  // per-board pool would oversubscribe the machine N-fold.
  options.pool = pool_;
  options.threads = threads_;
  // Fault sites carry the board id so one service-wide plan can target
  // individual boards ("extend:<id>/g0/m0", "session:apply:<id>", …).
  options.fault_scope = id;
  if (options.fault_plan == nullptr) options.fault_plan = opts_.fault_plan;
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = boards_.try_emplace(id);
  if (!inserted) {
    throw std::invalid_argument("RoutingService: board '" + id + "' already exists");
  }
  Board& b = it->second;
  b.rules = rules;
  b.options = options;
  b.session = std::make_unique<pipeline::Session>(std::move(rules), std::move(options),
                                                  std::move(board));
  b.busy = true;  // the initial-route pump owns the board from birth
  schedule_locked(id);
}

SubmitResult RoutingService::submit(const BoardId& id, layout::BoardEdit edit) {
  std::lock_guard<std::mutex> lk(mu_);
  Board& b = board_at(id);
  if (b.quarantined) {
    ++b.stats.shed;
    return {SubmitStatus::Quarantined, 0};
  }
  if (opts_.queue_limit != 0 && b.queue.size() >= opts_.queue_limit) {
    ++b.stats.shed;
    return {SubmitStatus::QueueFull, 0};
  }
  ++b.stats.submitted;
  // is_frozen() is an atomic probe, safe to read while the pump routes;
  // each hit is an edit that would have been a RoutingFreeze throw.
  if (b.busy && b.session != nullptr && b.session->layout().is_frozen()) {
    ++b.stats.queued_while_frozen;
  }
  b.queue.push_back(Pending{std::move(edit), core::now()});
  b.stats.max_queue_depth =
      std::max<std::uint64_t>(b.stats.max_queue_depth, b.queue.size());
  if (!b.busy) {
    b.busy = true;
    schedule_locked(id);
  }
  return {SubmitStatus::Accepted, b.stats.submitted};
}

void RoutingService::schedule_locked(const BoardId& id) {
  // The busy flag is the board's serialization token: exactly one pump may
  // be in flight, and it is scheduled only after the flag is raised.
  LMR_ASSERT(boards_.at(id).busy, "only a busy board may be scheduled");
  group_->run([this, id] { pump(id); });
}

void RoutingService::quarantine_locked(Board& b, std::exception_ptr err) {
  LMR_ASSERT(err != nullptr, "quarantine always records the failure that caused it");
  LMR_ASSERT(!b.quarantined,
             "quarantine is edge-triggered: a quarantined board is never pumped");
  b.quarantined = true;
  ++b.stats.quarantines;
  if (b.error == nullptr) b.error = std::move(err);
  b.stats.dropped_edits += b.inflight.size() + b.queue.size();
  b.inflight.clear();
  b.queue.clear();
  b.lowered_pending = 0;
  b.attempts = 0;
  if (b.routed && b.last_good.has_value()) {
    // Revert to the last-good checkpoint: the live session may hold
    // journaled-but-unrouted deltas from the failed work item, so the
    // snapshot (not the session) becomes the board's serving state. A
    // routed board with a live session always has a checkpoint — it is
    // refreshed on every success and replenished at thaw, so a
    // resurrected board that fails again before any success still has
    // one to revert to. The has_value() guard is defensive: if the
    // invariant ever broke, keeping the current session/snapshot beats
    // clobbering it with an empty optional.
    b.snapshot = std::move(b.last_good);
    b.last_good.reset();
    b.session.reset();
  }
  // An unrouted board keeps its pristine session: Router::run's rollback
  // guarantees the layout is untouched by the failed initial route, so
  // resurrect() can simply reschedule it.
}

void RoutingService::pump(const BoardId& id) {
  Board* b = nullptr;
  bool initial = false;
  bool degraded = false;
  std::size_t pending0 = 0;
  std::size_t n_inflight = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    b = &boards_.at(id);
    // Busy is the pump's exclusive ownership of the board: raised before
    // every schedule_locked, cleared only by the pump itself. Two pumps on
    // one board would race the Session outside the lock below.
    LMR_ASSERT(b->busy, "pump runs only while it owns the board's busy flag");
    if (b->quarantined) {  // defensive: nothing schedules a quarantined board
      b->busy = false;
      return;
    }
    if (b->session == nullptr) {
      LMR_ASSERT(b->snapshot.has_value(),
                 "a board without a live session always holds a snapshot");
      // Thaw-on-next-edit: rebuild the Session from the snapshot. Done
      // under the lock so the `session` pointer never changes while
      // another thread may probe it. The snapshot also replenishes the
      // last-good checkpoint before being consumed: a routed board with a
      // live session must always hold one, or a quarantine that strikes
      // before the next success (a resurrected board failing straight
      // through the ladder again) would have nothing to revert to.
      b->last_good = *b->snapshot;
      BoardSnapshot snap = std::move(*b->snapshot);
      b->snapshot.reset();
      b->session = std::make_unique<pipeline::Session>(
          b->rules, b->options, std::move(snap.layout), std::move(snap.route));
      ++b->stats.thaws;
    }
    initial = !b->routed;
    degraded = opts_.max_attempts > 1 && b->attempts + 1 >= opts_.max_attempts;
    pending0 = b->lowered_pending;
    if (!initial && b->inflight.empty()) {
      std::size_t n = b->queue.size();
      if (opts_.max_batch != 0) n = std::min(n, opts_.max_batch);
      b->inflight.reserve(n);
      const auto now = core::now();
      for (std::size_t i = 0; i < n; ++i) {
        Pending& p = b->queue.front();
        const double waited = core::seconds_between(p.enqueued, now);
        b->stats.dispatch_wait_s += waited;
        b->stats.max_dispatch_wait_s = std::max(b->stats.max_dispatch_wait_s, waited);
        b->inflight.push_back(std::move(p.edit));
        b->queue.pop_front();
      }
    }
    n_inflight = b->inflight.size();
  }

  // The unlocked section: only this pump touches the Session and the
  // inflight vector (busy flag). One attempt of the current work item.
  const pipeline::ApplyMode mode =
      degraded ? pipeline::ApplyMode::Degraded : pipeline::ApplyMode::Normal;
  pipeline::Session& session = *b->session;
  const auto t0 = core::now();
  std::exception_ptr err;
  std::uint64_t violations = 0;
  std::size_t committed_pending = 0;  // previously-lowered edits committed now
  std::size_t lowered_now = 0;        // inflight edits lowered this attempt
  std::size_t committed_now = 0;      // … of which the reroute committed
  bool lowering_failure = false;      // err names inflight[lowered_now] itself
  bool applying = false;
  try {
    if (initial) {
      session.route(mode);
    } else {
      if (!session.in_sync()) {
        // A prior attempt journaled deltas whose reroute failed; catch up
        // on them first so the batch below starts from a committed state.
        session.resync(mode);
        committed_pending = pending0;
      }
      if (n_inflight > 0) {
        applying = true;
        session.apply(std::span<const layout::BoardEdit>(b->inflight), mode);
        applying = false;
        lowered_now = n_inflight;
        committed_now = n_inflight;
      }
    }
    // One clearance re-sweep per dispatch, however many edits coalesced.
    violations = session.board_clearance().size();
  } catch (...) {
    err = std::current_exception();
    if (applying) {
      // The prefix contract (see Session::apply): edit_offsets counts the
      // lowered prefix; in_sync() distinguishes a lowering failure (prefix
      // rerouted and committed, the *next* edit is the culprit) from a
      // reroute-phase failure (prefix journaled but uncommitted).
      const std::optional<pipeline::ApplyOutcome>& part = session.last_partial_outcome();
      if (part.has_value()) lowered_now = part->edit_offsets.size() - 1;
      if (session.in_sync()) {
        lowering_failure = true;
        committed_now = lowered_now;
      }
    }
  }
  const double elapsed = core::seconds_since(t0);

  // Checkpoint outside the lock: copies of the routed layout + route are
  // what quarantine later reverts to ("last good").
  std::optional<BoardSnapshot> checkpoint;
  if (err == nullptr) {
    checkpoint.emplace(BoardSnapshot{session.layout(), session.route_state()});
  }

  std::lock_guard<std::mutex> lk(mu_);
  BoardStats& s = b->stats;
  if (!initial) {
    // Consume what this attempt disposed of: committed edits leave the
    // work item; journaled-but-uncommitted ones stay accounted so the
    // retry resync()s instead of re-lowering.
    LMR_ASSERT(lowered_now <= b->inflight.size() && committed_now <= lowered_now,
               "the lowered prefix never exceeds the dispatched work item");
    b->inflight.erase(b->inflight.begin(),
                      b->inflight.begin() + static_cast<std::ptrdiff_t>(lowered_now));
    b->lowered_pending = (pending0 - committed_pending) + (lowered_now - committed_now);
    s.applied += committed_pending + committed_now;
    ++s.batches;
    ++s.reroutes;
    if (n_inflight > 1) ++s.coalesced_batches;
    s.max_batch = std::max<std::uint64_t>(s.max_batch, n_inflight);
    s.apply_s += elapsed;
  }
  if (err == nullptr) {
    b->attempts = 0;
    b->last_good = std::move(checkpoint);
    s.clearance_violations = violations;
    if (initial) {
      b->routed = true;
      s.route_s += elapsed;
    }
  } else {
    // Classify: logic_error lineage (bad edit, contract breach) is not
    // retryable — no rerun can make the same edit valid; runtime failures
    // (injected faults, timeouts, cancellations) are.
    bool retryable = true;
    try {
      std::rethrow_exception(err);
    } catch (const fault::RouteTimeout&) {
      ++s.timeouts;
    } catch (const fault::InjectedFault&) {
      ++s.injected_faults;
    } catch (const std::logic_error&) {
      retryable = false;
    } catch (...) {
    }
    if (!retryable) {
      if (!initial && lowering_failure && !b->inflight.empty()) {
        // The edit itself is bad: drop it, surface the error at drain, and
        // let the board continue with the rest of its work.
        b->inflight.erase(b->inflight.begin());
        ++s.dropped_edits;
        b->attempts = 0;
        if (b->error == nullptr) b->error = err;
      } else {
        // A non-retryable failure not pinned to a single edit: the board's
        // state machine is in doubt — quarantine.
        quarantine_locked(*b, err);
      }
    } else {
      ++b->attempts;
      if (b->attempts >= opts_.max_attempts) {
        quarantine_locked(*b, err);
      } else {
        // Retry rung: exponential backoff on the virtual clock (never a
        // wall-time sleep), demoting the final attempt to Degraded mode.
        ++s.retries;
        if (opts_.max_attempts > 1 && b->attempts + 1 >= opts_.max_attempts) {
          ++s.degraded_retries;
        }
        s.backoff_virtual_s += std::min(
            opts_.backoff_base_s * std::exp2(static_cast<double>(b->attempts - 1)),
            opts_.backoff_cap_s);
        schedule_locked(id);  // stay busy: the retry owns the board
        return;
      }
    }
  }
  if (!b->quarantined && (!b->inflight.empty() || !b->queue.empty())) {
    schedule_locked(id);  // stay busy: more edits arrived meanwhile
  } else {
    b->busy = false;
  }
}

void RoutingService::drain() {
  // TaskGroup::wait helps: it runs pool tasks on this thread until every
  // pump (including the ones pumps reschedule) has finished — which is
  // also what executes everything on a 0-worker serial service.
  group_->wait();
  std::vector<BoardFailure> failures;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [id, b] : boards_) {
      if (b.error != nullptr) {
        failures.push_back({id, describe(b.error)});
        b.error = nullptr;
      }
    }
  }
  if (!failures.empty()) throw ServiceError(std::move(failures));
}

bool RoutingService::evict_locked(Board& b) {
  if (b.busy || b.quarantined || !b.routed || !b.queue.empty() ||
      !b.inflight.empty() || b.lowered_pending != 0 || b.session == nullptr ||
      !b.session->in_sync()) {
    return false;
  }
  auto [board, route] = b.session->release();
  b.snapshot = BoardSnapshot{std::move(board), std::move(route)};
  b.session.reset();
  ++b.stats.evictions;
  return true;
}

bool RoutingService::evict(const BoardId& id) {
  std::lock_guard<std::mutex> lk(mu_);
  return evict_locked(board_at(id));
}

std::size_t RoutingService::evict_idle() {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t evicted = 0;
  for (auto& [id, b] : boards_) {
    if (evict_locked(b)) ++evicted;
  }
  return evicted;
}

bool RoutingService::resurrect(const BoardId& id) {
  std::lock_guard<std::mutex> lk(mu_);
  Board& b = board_at(id);
  if (!b.quarantined) return false;
  b.quarantined = false;
  ++b.stats.resurrections;
  if (!b.routed) {
    // Quarantined during the initial route: the pristine session is still
    // alive — reschedule the route it never completed.
    b.busy = true;
    schedule_locked(id);
  }
  // A routed board thaws from its last-good snapshot on the next submit.
  return true;
}

const layout::Layout& RoutingService::board_layout(const BoardId& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Board& b = idle_board_at(id);
  return b.session != nullptr ? b.session->layout() : b.snapshot->layout;
}

const pipeline::BoardRoute& RoutingService::board_route(const BoardId& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Board& b = idle_board_at(id);
  return b.session != nullptr ? b.session->route_state() : b.snapshot->route;
}

bool RoutingService::is_evicted(const BoardId& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Board& b = board_at(id);
  return b.session == nullptr && !b.quarantined;
}

bool RoutingService::is_quarantined(const BoardId& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return board_at(id).quarantined;
}

bool RoutingService::is_routed(const BoardId& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return board_at(id).routed;
}

std::size_t RoutingService::queue_depth(const BoardId& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return board_at(id).queue.size();
}

BoardStats RoutingService::stats(const BoardId& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return board_at(id).stats;
}

std::vector<BoardId> RoutingService::board_ids() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<BoardId> ids;
  ids.reserve(boards_.size());
  for (const auto& [id, b] : boards_) ids.push_back(id);
  return ids;
}

ServiceTotals RoutingService::totals() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServiceTotals t;
  for (const auto& [id, b] : boards_) {
    const BoardStats& s = b.stats;
    t.submitted += s.submitted;
    t.applied += s.applied;
    t.batches += s.batches;
    t.coalesced_batches += s.coalesced_batches;
    t.max_batch = std::max(t.max_batch, s.max_batch);
    t.max_queue_depth = std::max(t.max_queue_depth, s.max_queue_depth);
    t.evictions += s.evictions;
    t.thaws += s.thaws;
    t.queued_while_frozen += s.queued_while_frozen;
    t.retries += s.retries;
    t.timeouts += s.timeouts;
    t.injected_faults += s.injected_faults;
    t.quarantines += s.quarantines;
    t.resurrections += s.resurrections;
    t.shed += s.shed;
    t.dropped_edits += s.dropped_edits;
  }
  return t;
}

}  // namespace lmr::service
