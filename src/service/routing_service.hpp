#pragma once
/// \file routing_service.hpp
/// The multi-board serving tier: many pipeline::Sessions behind one facade,
/// sharing one exec::TaskPool.
///
/// A `RoutingService` owns a Session per board id and mediates every edit
/// through a per-board queue. A Session is single-threaded by design and
/// its layout is frozen while a route is in flight, so the service never
/// calls into a busy board: edits that arrive mid-route are enqueued (the
/// `RoutingFreeze` throw path is never hit from here) and dispatched when
/// the board's current work finishes. Consecutive queued edits for one
/// board are *coalesced* — applied as a single `Session::apply(span)` batch
/// with one reroute and one clearance re-sweep — which is the burst-
/// absorbing behaviour the edit_storm numbers motivated.
///
/// Fairness comes from the executor, not from a scheduler here: each board
/// with pending work has exactly one pump task in the shared TaskPool at a
/// time, so N busy boards hold N tasks and the work-stealing deques
/// interleave them. A board is never touched by two pump tasks at once
/// (the `busy` flag under the service mutex is the per-board serializer),
/// which preserves the Session's single-threaded facade contract.
///
/// Failure policy (the robustness tier). A dispatch that throws is
/// classified: anything rooted in std::logic_error (bad edit indices,
/// contract violations) is *non-retryable* — the offending edit is dropped
/// and the board moves on — while runtime failures (injected faults,
/// deadline timeouts, cancellations) are *retryable*. Retries walk a
/// degradation ladder: up to `max_attempts` tries per work item, the last
/// one on the Session's Degraded mode (Barrier schedule, one thread), with
/// capped exponential backoff accounted on a virtual clock
/// (`backoff_virtual_s` — no wall-clock sleeping, so drains stay fast and
/// results carry no timing nondeterminism). A board that exhausts the
/// ladder is *quarantined*: its state reverts to the last-good snapshot
/// (checkpointed after every successful dispatch), queued edits are
/// dropped and counted, and subsequent submits shed with
/// `SubmitStatus::Quarantined` until `resurrect()` re-admits it.
///
/// Backpressure: `queue_limit` bounds each board's queue; a submit over
/// the limit sheds with `SubmitStatus::QueueFull` instead of queueing
/// unboundedly.
///
/// Lifecycle: an idle routed board can be *evicted* — its Session is
/// dismantled into the compact {layout + journal, BoardRoute} snapshot via
/// `Session::release()` — and is transparently *thawed* (Session rebuilt
/// from the snapshot) by the next edit. The service end state is oracle-
/// checked bit-identical to fresh routes by the service_storm and
/// fault_storm benches/tests, evictions, faults and quarantines included.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/clock.hpp"
#include "exec/task_pool.hpp"
#include "fault/fault_plan.hpp"
#include "layout/board_edit.hpp"
#include "pipeline/session.hpp"

namespace lmr::service {

using BoardId = std::string;

/// Service-level knobs. Router-level options (engine, DRC schedule,
/// deadline, …) stay per-board: they are passed to `add_board`.
struct ServiceOptions {
  /// Thread-count convention shared with Router/Suite: 0 = hardware, 1 =
  /// serial (a 0-worker pool: pump tasks run inline on the draining
  /// thread), N = private pool with N-1 workers. Ignored when `pool` is
  /// set.
  std::size_t threads = 0;
  /// Borrow an existing executor instead of owning one.
  exec::TaskPool* pool = nullptr;
  /// Cap on how many queued edits one dispatch may coalesce into a single
  /// apply batch. 0 = unbounded (drain the whole queue), the default.
  std::size_t max_batch = 0;
  /// Bound on each board's edit queue; a submit that would exceed it sheds
  /// with SubmitStatus::QueueFull. 0 = unbounded, the default. Edits
  /// already claimed by a dispatch (in flight) do not count against it.
  std::size_t queue_limit = 0;
  /// Attempts per work item (initial route or one coalesced batch) before
  /// the board is quarantined. 1 = no retry. When > 1, the final attempt
  /// runs in Session's Degraded mode (Barrier schedule, single thread).
  std::uint32_t max_attempts = 3;
  /// Capped exponential backoff between retries, accounted on a virtual
  /// clock only (`BoardStats::backoff_virtual_s`); the service never
  /// sleeps, so drain latency and results stay wall-time free.
  double backoff_base_s = 0.01;
  double backoff_cap_s = 1.0;
  /// Service-wide fault plan, installed into every board's RouterOptions
  /// (board id as the site scope) unless the board brought its own.
  /// Disarmed (null) by default.
  std::shared_ptr<fault::FaultPlan> fault_plan;
};

/// Per-board counters, all monotone over the board's lifetime. Snapshot
/// them via `stats(id)`; the service keeps updating its own copy.
struct BoardStats {
  std::uint64_t submitted = 0;          ///< edits accepted by submit()
  std::uint64_t applied = 0;            ///< edits committed through the Session
  std::uint64_t batches = 0;            ///< apply dispatches (1 reroute each)
  std::uint64_t coalesced_batches = 0;  ///< batches with more than one edit
  std::uint64_t max_batch = 0;          ///< largest single batch
  std::uint64_t max_queue_depth = 0;    ///< high-water mark of the queue
  std::uint64_t reroutes = 0;           ///< Session reroutes (== batches)
  std::uint64_t evictions = 0;
  std::uint64_t thaws = 0;
  /// Edits that arrived while the board's layout was route-frozen — each
  /// one would have been a RoutingFreeze throw without the queue.
  std::uint64_t queued_while_frozen = 0;
  // --- robustness counters ---
  std::uint64_t retries = 0;           ///< failed attempts that were retried
  std::uint64_t degraded_retries = 0;  ///< retries demoted to Degraded mode
  std::uint64_t timeouts = 0;          ///< attempts lost to RouteTimeout
  std::uint64_t injected_faults = 0;   ///< attempts lost to fault::InjectedFault
  std::uint64_t quarantines = 0;       ///< times the board entered quarantine
  std::uint64_t resurrections = 0;     ///< times resurrect() re-admitted it
  std::uint64_t shed = 0;          ///< submits rejected (QueueFull/Quarantined)
  std::uint64_t dropped_edits = 0; ///< accepted edits discarded (bad/quarantine)
  double backoff_virtual_s = 0.0;  ///< virtual-clock backoff the board accrued
  double route_s = 0.0;  ///< initial full route wall time
  double apply_s = 0.0;  ///< total apply+sweep wall time
  /// Total/maximum time edits sat queued before their dispatch started.
  double dispatch_wait_s = 0.0;
  double max_dispatch_wait_s = 0.0;
  /// Board-wide cross-member violation count after the latest sweep.
  std::uint64_t clearance_violations = 0;
};

/// What an evicted board shrinks to: the versioned layout (journal intact)
/// and the last whole-board route. Exactly the `Session::release()` pair.
struct BoardSnapshot {
  layout::Layout layout;
  pipeline::BoardRoute route;
};

/// Aggregate across boards, for the bench JSON.
struct ServiceTotals {
  std::uint64_t submitted = 0;
  std::uint64_t applied = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced_batches = 0;
  std::uint64_t max_batch = 0;
  std::uint64_t max_queue_depth = 0;
  std::uint64_t evictions = 0;
  std::uint64_t thaws = 0;
  std::uint64_t queued_while_frozen = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t injected_faults = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t resurrections = 0;
  std::uint64_t shed = 0;
  std::uint64_t dropped_edits = 0;
};

/// Typed verdict of submit(): accepted, or shed with the reason.
enum class SubmitStatus : std::uint8_t {
  Accepted,
  QueueFull,     ///< queue_limit reached; edit shed, try again after drain
  Quarantined,   ///< board is quarantined; resurrect() it first
};

struct SubmitResult {
  SubmitStatus status = SubmitStatus::Accepted;
  /// The board's submission ordinal (1-based) when accepted, 0 when shed.
  std::uint64_t ordinal = 0;
  [[nodiscard]] bool accepted() const { return status == SubmitStatus::Accepted; }
};

/// One board's contribution to a drain()-time ServiceError.
struct BoardFailure {
  BoardId board;
  std::string message;
};

/// Thrown by drain() after every board settled: aggregates *all* boards
/// that recorded a final failure since the previous drain, not just the
/// first — a storm that kills three boards reports three entries.
class ServiceError : public std::runtime_error {
 public:
  explicit ServiceError(std::vector<BoardFailure> failures);
  [[nodiscard]] const std::vector<BoardFailure>& failures() const {
    return failures_;
  }

 private:
  std::vector<BoardFailure> failures_;
};

/// The serving facade. Thread-safe: `submit` may be called from any thread
/// (including concurrently with dispatches running on pool workers); the
/// state accessors require the board to be idle and are meant for the
/// drained state between replay phases.
class RoutingService {
 public:
  explicit RoutingService(ServiceOptions opts = {});
  /// Drains all in-flight work before tearing down (pending queued edits
  /// are dispatched; errors surface nowhere — call drain() yourself first
  /// if you care).
  ~RoutingService();

  RoutingService(const RoutingService&) = delete;
  RoutingService& operator=(const RoutingService&) = delete;

  /// Register a board and schedule its initial full route. The session is
  /// created immediately; the route runs asynchronously on the pool (wait
  /// for it with drain()). Routing options are per-board; their `pool` is
  /// overridden to the service's executor, `threads` to the service thread
  /// count, `fault_scope` to the board id, and `fault_plan` to the
  /// service-wide plan (unless the board brought its own), so nested
  /// member fan-out shares the workers and fault sites carry the board id.
  /// Throws std::invalid_argument on a duplicate id.
  void add_board(const BoardId& id, drc::DesignRules rules,
                 pipeline::RouterOptions options, layout::Layout board);

  /// Enqueue one edit for `id` and make sure a dispatch is scheduled.
  /// Never blocks on routing and never throws RoutingFreeze's logic_error:
  /// a busy board just queues. Sheds instead of queueing when the board is
  /// quarantined or its queue is at `queue_limit` (see SubmitResult).
  /// Throws std::out_of_range for an unknown id.
  SubmitResult submit(const BoardId& id, layout::BoardEdit edit);

  /// Block until every board is idle with an empty queue, helping the pool
  /// run tasks while waiting (so a 0-worker serial service drains inline).
  /// Throws ServiceError aggregating every board that recorded a *final*
  /// failure since the last drain (quarantine, or a dropped bad edit);
  /// transient failures that a retry recovered do not surface. All boards
  /// settle before the throw.
  void drain();

  /// Evict one idle routed board to its compact snapshot. Returns false
  /// (and does nothing) when the board is busy, has queued or in-flight
  /// edits, is quarantined, or is already evicted. The next submit()
  /// thaws it transparently.
  bool evict(const BoardId& id);
  /// Evict every board that is currently idle; returns how many.
  std::size_t evict_idle();

  /// Re-admit a quarantined board. A routed board resumes from its
  /// last-good snapshot (thawed by the next submit); a board quarantined
  /// during its initial route keeps its pristine layout and the initial
  /// route is rescheduled here. Returns false when not quarantined.
  bool resurrect(const BoardId& id);

  // --- drained-state accessors (throw std::logic_error while busy) ---
  [[nodiscard]] const layout::Layout& board_layout(const BoardId& id) const;
  [[nodiscard]] const pipeline::BoardRoute& board_route(const BoardId& id) const;
  [[nodiscard]] bool is_evicted(const BoardId& id) const;
  [[nodiscard]] bool is_quarantined(const BoardId& id) const;
  /// True once the board's initial route committed (stays true in
  /// quarantine — the last-good snapshot is a routed state).
  [[nodiscard]] bool is_routed(const BoardId& id) const;
  [[nodiscard]] std::size_t queue_depth(const BoardId& id) const;
  [[nodiscard]] BoardStats stats(const BoardId& id) const;
  [[nodiscard]] std::vector<BoardId> board_ids() const;
  [[nodiscard]] ServiceTotals totals() const;
  [[nodiscard]] std::size_t threads() const { return threads_; }

 private:
  using Clock = core::Clock;

  struct Pending {
    layout::BoardEdit edit;
    Clock::time_point enqueued;
  };

  /// Everything the service knows about one board. Nodes live in a
  /// std::map and are never erased, so a pump task may hold a Board*
  /// across the unlocked apply. `session`/`snapshot` pointers only change
  /// under mu_; the pointees are touched exclusively by the pump task that
  /// set `busy`.
  struct Board {
    drc::DesignRules rules;
    pipeline::RouterOptions options;
    std::unique_ptr<pipeline::Session> session;  ///< null while evicted
    std::optional<BoardSnapshot> snapshot;       ///< set while evicted
    /// Checkpoint taken after every successful dispatch — what quarantine
    /// reverts to. Holds a routed state whenever `routed` is true.
    std::optional<BoardSnapshot> last_good;
    std::deque<Pending> queue;
    /// Edits claimed from the queue by the current work item; kept across
    /// retries so a failed batch is re-dispatched without re-queueing.
    std::vector<layout::BoardEdit> inflight;
    /// Leading in-flight edits whose deltas are journaled but whose
    /// reroute failed (session out of sync); the retry resync()s them
    /// instead of re-lowering.
    std::size_t lowered_pending = 0;
    std::uint32_t attempts = 0;  ///< failed attempts on the current work item
    bool busy = false;         ///< a pump task owns this board right now
    bool routed = false;       ///< initial route completed
    bool quarantined = false;  ///< final failure; submits shed until resurrect
    std::exception_ptr error;  ///< first *final* failure since last drain()
    BoardStats stats;
  };

  Board& board_at(const BoardId& id);
  const Board& board_at(const BoardId& id) const;
  const Board& idle_board_at(const BoardId& id) const;
  /// Schedule a pump task for `id`. Caller holds mu_ and has set busy.
  void schedule_locked(const BoardId& id);
  /// One dispatch attempt for one board: initial route, or one coalesced
  /// batch (with resync catch-up after a failed attempt).
  void pump(const BoardId& id);
  /// Final-failure transition. Caller holds mu_.
  void quarantine_locked(Board& b, std::exception_ptr err);
  static bool evict_locked(Board& b);

  ServiceOptions opts_;
  std::size_t threads_;  ///< resolved service parallelism (>= 1)
  std::unique_ptr<exec::TaskPool> owned_pool_;
  exec::TaskPool* pool_;  ///< owned_pool_.get() or opts_.pool

  mutable std::mutex mu_;
  std::map<BoardId, Board> boards_;

  /// Destroyed first (member order): ~TaskGroup drains every pump task
  /// while sessions, boards_ and the pool are still alive above it.
  std::unique_ptr<exec::TaskGroup> group_;
};

}  // namespace lmr::service
