#pragma once
/// \file routing_service.hpp
/// The multi-board serving tier: many pipeline::Sessions behind one facade,
/// sharing one exec::TaskPool.
///
/// A `RoutingService` owns a Session per board id and mediates every edit
/// through a per-board queue. A Session is single-threaded by design and
/// its layout is frozen while a route is in flight, so the service never
/// calls into a busy board: edits that arrive mid-route are enqueued (the
/// `RoutingFreeze` throw path is never hit from here) and dispatched when
/// the board's current work finishes. Consecutive queued edits for one
/// board are *coalesced* — applied as a single `Session::apply(span)` batch
/// with one reroute and one clearance re-sweep — which is the burst-
/// absorbing behaviour the edit_storm numbers motivated.
///
/// Fairness comes from the executor, not from a scheduler here: each board
/// with pending work has exactly one pump task in the shared TaskPool at a
/// time, so N busy boards hold N tasks and the work-stealing deques
/// interleave them. A board is never touched by two pump tasks at once
/// (the `busy` flag under the service mutex is the per-board serializer),
/// which preserves the Session's single-threaded facade contract.
///
/// Lifecycle: an idle routed board can be *evicted* — its Session is
/// dismantled into the compact {layout + journal, BoardRoute} snapshot via
/// `Session::release()` — and is transparently *thawed* (Session rebuilt
/// from the snapshot) by the next edit. The service end state is oracle-
/// checked bit-identical to fresh routes by the service_storm bench/tests,
/// evictions included.

#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "exec/task_pool.hpp"
#include "layout/board_edit.hpp"
#include "pipeline/session.hpp"

namespace lmr::service {

using BoardId = std::string;

/// Service-level knobs. Router-level options (engine, DRC schedule, …)
/// stay per-board: they are passed to `add_board`.
struct ServiceOptions {
  /// Thread-count convention shared with Router/Suite: 0 = hardware, 1 =
  /// serial (a 0-worker pool: pump tasks run inline on the draining
  /// thread), N = private pool with N-1 workers. Ignored when `pool` is
  /// set.
  std::size_t threads = 0;
  /// Borrow an existing executor instead of owning one.
  exec::TaskPool* pool = nullptr;
  /// Cap on how many queued edits one dispatch may coalesce into a single
  /// apply batch. 0 = unbounded (drain the whole queue), the default.
  std::size_t max_batch = 0;
};

/// Per-board counters, all monotone over the board's lifetime. Snapshot
/// them via `stats(id)`; the service keeps updating its own copy.
struct BoardStats {
  std::uint64_t submitted = 0;          ///< edits accepted by submit()
  std::uint64_t applied = 0;            ///< edits applied through the Session
  std::uint64_t batches = 0;            ///< apply dispatches (1 reroute each)
  std::uint64_t coalesced_batches = 0;  ///< batches with more than one edit
  std::uint64_t max_batch = 0;          ///< largest single batch
  std::uint64_t max_queue_depth = 0;    ///< high-water mark of the queue
  std::uint64_t reroutes = 0;           ///< Session reroutes (== batches)
  std::uint64_t evictions = 0;
  std::uint64_t thaws = 0;
  /// Edits that arrived while the board's layout was route-frozen — each
  /// one would have been a RoutingFreeze throw without the queue.
  std::uint64_t queued_while_frozen = 0;
  double route_s = 0.0;  ///< initial full route wall time
  double apply_s = 0.0;  ///< total apply+sweep wall time
  /// Total/maximum time edits sat queued before their dispatch started.
  double dispatch_wait_s = 0.0;
  double max_dispatch_wait_s = 0.0;
  /// Board-wide cross-member violation count after the latest sweep.
  std::uint64_t clearance_violations = 0;
};

/// What an evicted board shrinks to: the versioned layout (journal intact)
/// and the last whole-board route. Exactly the `Session::release()` pair.
struct BoardSnapshot {
  layout::Layout layout;
  pipeline::BoardRoute route;
};

/// Aggregate across boards, for the bench JSON.
struct ServiceTotals {
  std::uint64_t submitted = 0;
  std::uint64_t applied = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced_batches = 0;
  std::uint64_t max_batch = 0;
  std::uint64_t max_queue_depth = 0;
  std::uint64_t evictions = 0;
  std::uint64_t thaws = 0;
  std::uint64_t queued_while_frozen = 0;
};

/// The serving facade. Thread-safe: `submit` may be called from any thread
/// (including concurrently with dispatches running on pool workers); the
/// state accessors require the board to be idle and are meant for the
/// drained state between replay phases.
class RoutingService {
 public:
  explicit RoutingService(ServiceOptions opts = {});
  /// Drains all in-flight work before tearing down (pending queued edits
  /// are dispatched; errors surface nowhere — call drain() yourself first
  /// if you care).
  ~RoutingService();

  RoutingService(const RoutingService&) = delete;
  RoutingService& operator=(const RoutingService&) = delete;

  /// Register a board and schedule its initial full route. The session is
  /// created immediately; the route runs asynchronously on the pool (wait
  /// for it with drain()). Routing options are per-board; their `pool` is
  /// overridden to the service's executor and `threads` to the service
  /// thread count, so nested member fan-out shares the same workers.
  /// Throws std::invalid_argument on a duplicate id.
  void add_board(const BoardId& id, drc::DesignRules rules,
                 pipeline::RouterOptions options, layout::Layout board);

  /// Enqueue one edit for `id` and make sure a dispatch is scheduled.
  /// Never blocks on routing and never throws RoutingFreeze's logic_error:
  /// a busy board just queues. Returns the board's submission ordinal
  /// (1-based). Throws std::out_of_range for an unknown id and
  /// std::logic_error for a dead board (initial route failed).
  std::uint64_t submit(const BoardId& id, layout::BoardEdit edit);

  /// Block until every board is idle with an empty queue, helping the pool
  /// run tasks while waiting (so a 0-worker serial service drains inline).
  /// Rethrows the first board error captured since the last drain; the
  /// remaining boards still finish first, and a board whose *initial
  /// route* failed is dead (its queue is discarded, later submits throw).
  void drain();

  /// Evict one idle routed board to its compact snapshot. Returns false
  /// (and does nothing) when the board is busy, has queued edits, or is
  /// already evicted. The next submit() thaws it transparently.
  bool evict(const BoardId& id);
  /// Evict every board that is currently idle; returns how many.
  std::size_t evict_idle();

  // --- drained-state accessors (throw std::logic_error while busy) ---
  [[nodiscard]] const layout::Layout& board_layout(const BoardId& id) const;
  [[nodiscard]] const pipeline::BoardRoute& board_route(const BoardId& id) const;
  [[nodiscard]] bool is_evicted(const BoardId& id) const;
  [[nodiscard]] std::size_t queue_depth(const BoardId& id) const;
  [[nodiscard]] BoardStats stats(const BoardId& id) const;
  [[nodiscard]] std::vector<BoardId> board_ids() const;
  [[nodiscard]] ServiceTotals totals() const;
  [[nodiscard]] std::size_t threads() const { return threads_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    layout::BoardEdit edit;
    Clock::time_point enqueued;
  };

  /// Everything the service knows about one board. Nodes live in a
  /// std::map and are never erased, so a pump task may hold a Board*
  /// across the unlocked apply. `session`/`snapshot` pointers only change
  /// under mu_; the pointees are touched exclusively by the pump task that
  /// set `busy`.
  struct Board {
    drc::DesignRules rules;
    pipeline::RouterOptions options;
    std::unique_ptr<pipeline::Session> session;  ///< null while evicted
    std::optional<BoardSnapshot> snapshot;       ///< set while evicted
    std::deque<Pending> queue;
    bool busy = false;    ///< a pump task owns this board right now
    bool routed = false;  ///< initial route completed
    bool dead = false;    ///< initial route failed; board unusable
    std::exception_ptr error;  ///< first failure since last drain()
    BoardStats stats;
  };

  Board& board_at(const BoardId& id);
  const Board& board_at(const BoardId& id) const;
  const Board& idle_board_at(const BoardId& id) const;
  /// Schedule a pump task for `id`. Caller holds mu_ and has set busy.
  void schedule_locked(const BoardId& id);
  /// One dispatch for one board: initial route, or one coalesced batch.
  void pump(const BoardId& id);
  static bool evict_locked(Board& b);

  ServiceOptions opts_;
  std::size_t threads_;  ///< resolved service parallelism (>= 1)
  std::unique_ptr<exec::TaskPool> owned_pool_;
  exec::TaskPool* pool_;  ///< owned_pool_.get() or opts_.pool

  mutable std::mutex mu_;
  std::map<BoardId, Board> boards_;

  /// Destroyed first (member order): ~TaskGroup drains every pump task
  /// while sessions, boards_ and the pool are still alive above it.
  std::unique_ptr<exec::TaskGroup> group_;
};

}  // namespace lmr::service
