/// Versioned-layout invariants: the journal counts every recorded mutation
/// exactly once, deltas_since returns a contiguous suffix, dirty boxes
/// cover what the edit touched, and the routing freeze blocks board edits
/// without disturbing the journal.

#include <optional>
#include <stdexcept>

#include <gtest/gtest.h>

#include "layout/layout.hpp"

namespace lmr::layout {
namespace {

Layout small_board() {
  Layout l(geom::Polygon::rect({{0, 0}, {100, 100}}));
  Trace t;
  t.path = geom::Polyline{{{0, 10}, {50, 10}}};
  t.width = 0.2;
  const TraceId id = l.add_trace(t);
  MatchGroup g;
  g.name = "g0";
  g.target_length = 60.0;
  g.members = {{MemberKind::SingleEnded, id}};
  l.add_group(g);
  return l;
}

TEST(LayoutVersion, EveryRecordedMutationBumpsOnce) {
  Layout l;
  EXPECT_EQ(l.version(), 0u);
  l.set_board(geom::Polygon::rect({{0, 0}, {10, 10}}));
  EXPECT_EQ(l.version(), 1u);
  const LayoutDelta d =
      l.add_obstacle({geom::Polygon::rect({{1, 1}, {2, 2}}), "via"});
  EXPECT_EQ(l.version(), 2u);
  EXPECT_EQ(d.version, 2u);
  EXPECT_EQ(d.kind, DeltaKind::AddObstacle);
  EXPECT_EQ(d.obstacle, 0u);

  Trace t;
  t.path = geom::Polyline{{{0, 5}, {9, 5}}};
  const TraceId id = l.add_trace(t);
  EXPECT_EQ(l.version(), 3u);  // trace additions journal too
  EXPECT_EQ(l.deltas_since(2).front().kind, DeltaKind::AddTrace);
  EXPECT_EQ(l.deltas_since(2).front().trace, id);

  // Routing write-backs are not board edits: no version bump.
  l.trace(id).path = geom::Polyline{{{0, 5}, {4, 7}, {9, 5}}};
  EXPECT_EQ(l.version(), 3u);
}

TEST(LayoutVersion, DeltasSinceIsTheContiguousSuffix) {
  Layout l = small_board();
  const std::uint64_t v0 = l.version();
  l.add_obstacle({geom::Polygon::rect({{20, 20}, {22, 22}}), "a"});
  l.move_obstacle(0, {1.0, 0.0});
  l.set_group_target(0, 70.0);

  const auto deltas = l.deltas_since(v0);
  ASSERT_EQ(deltas.size(), 3u);
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    EXPECT_EQ(deltas[i].version, v0 + i + 1);  // contiguous, in order
  }
  EXPECT_EQ(l.deltas_since(l.version()).size(), 0u);
  EXPECT_EQ(l.deltas_since(0).size(), l.version());
  EXPECT_THROW((void)l.deltas_since(l.version() + 1), std::invalid_argument);
}

TEST(LayoutVersion, DirtyBoxesCoverTheEdit) {
  Layout l = small_board();
  l.add_obstacle({geom::Polygon::rect({{30, 30}, {32, 32}}), "a"});
  const std::uint64_t v = l.version();
  const LayoutDelta moved = l.move_obstacle(0, {5.0, -2.0});
  // The move's dirty box must cover the union of the before and after
  // footprints — a reroute proof that only looks at one end would miss
  // groups near the other.
  EXPECT_LE(moved.dirty.lo.x, 30.0);
  EXPECT_LE(moved.dirty.lo.y, 28.0);
  EXPECT_GE(moved.dirty.hi.x, 37.0);
  EXPECT_GE(moved.dirty.hi.y, 32.0);
  EXPECT_TRUE(l.dirty_since(v).contains({31.0, 31.0}));
  EXPECT_TRUE(l.dirty_since(v).contains({36.0, 29.0}));
}

TEST(LayoutVersion, FreezeBlocksBoardEditsNotWriteBacks) {
  Layout l = small_board();
  const TraceId id = l.groups()[0].members[0].id;
  const std::uint64_t v = l.version();
  {
    const Layout::RoutingFreeze freeze = l.freeze_for_routing();
    EXPECT_TRUE(l.frozen());
    EXPECT_THROW(l.add_obstacle({geom::Polygon::rect({{1, 1}, {2, 2}}), "x"}),
                 std::logic_error);
    EXPECT_THROW(l.set_group_target(0, 80.0), std::logic_error);
    // Routing write-backs stay open: extension results land while frozen.
    l.trace(id).path = geom::Polyline{{{0, 10}, {25, 12}, {50, 10}}};
  }
  EXPECT_FALSE(l.frozen());
  EXPECT_EQ(l.version(), v);  // the rejected edits never reached the journal
  l.set_group_target(0, 80.0);
  EXPECT_EQ(l.version(), v + 1);
}

TEST(LayoutVersion, CopyStartsUnfrozenWithJournalIntact) {
  Layout l = small_board();
  const std::uint64_t v = l.version();
  const Layout::RoutingFreeze freeze = l.freeze_for_routing();
  Layout copy = l;
  EXPECT_FALSE(copy.frozen());
  EXPECT_TRUE(l.frozen());
  EXPECT_EQ(copy.version(), v);
  copy.set_group_target(0, 75.0);  // the copy is editable immediately
  EXPECT_EQ(copy.version(), v + 1);
  EXPECT_THROW(l.set_group_target(0, 75.0), std::logic_error);
}

TEST(LayoutVersion, TryFreezeAcquiresOnlyWhenUnfrozen) {
  Layout l = small_board();
  EXPECT_FALSE(l.is_frozen());

  // Acquire: the probe takes the freeze and recorded mutators throw just
  // like under freeze_for_routing — the throw path is unchanged.
  {
    std::optional<Layout::RoutingFreeze> f = l.try_freeze();
    ASSERT_TRUE(f.has_value());
    EXPECT_TRUE(l.is_frozen());
    const std::uint64_t v = l.version();
    EXPECT_THROW(l.set_group_target(0, 80.0), std::logic_error);
    EXPECT_EQ(l.version(), v);

    // A second probe declines instead of nesting.
    EXPECT_FALSE(l.try_freeze().has_value());
  }
  // Released on destruction, exactly like the throwing RAII freeze.
  EXPECT_FALSE(l.is_frozen());
  EXPECT_TRUE(l.try_freeze().has_value());
  EXPECT_FALSE(l.is_frozen());

  // And it declines while a plain routing freeze is alive — the service's
  // queue-instead-of-catch probe never steals an in-flight route's freeze.
  {
    const Layout::RoutingFreeze routing = l.freeze_for_routing();
    EXPECT_FALSE(l.try_freeze().has_value());
    EXPECT_TRUE(l.is_frozen());
  }
  l.set_group_target(0, 80.0);  // edits work once everything released
}

TEST(LayoutVersion, RemoveGroupMemberDropsTargetOverride) {
  Layout l(geom::Polygon::rect({{0, 0}, {100, 100}}));
  Trace t;
  t.path = geom::Polyline{{{0, 10}, {50, 10}}};
  const TraceId a = l.add_trace(t);
  t.path = geom::Polyline{{{0, 20}, {50, 20}}};
  const TraceId b = l.add_trace(t);
  MatchGroup g;
  g.target_length = 60.0;
  g.members = {{MemberKind::SingleEnded, a}, {MemberKind::SingleEnded, b}};
  g.member_targets = {0.0, 90.0};
  l.add_group(g);

  l.remove_group_member(0, 0);
  ASSERT_EQ(l.groups()[0].members.size(), 1u);
  EXPECT_EQ(l.groups()[0].members[0].id, b);
  // b's override must follow it to slot 0, not evaporate.
  EXPECT_DOUBLE_EQ(l.groups()[0].target_for(0), 90.0);
  EXPECT_EQ(l.group_of(a), kNoIndex);
}

}  // namespace
}  // namespace lmr::layout
