/// BoardEdit lowering edge cases: the service's queued-edit path replays
/// scripts whose obstacles/groups may have been invalidated by earlier
/// edits of the same batch, and drops obstacles wherever the user clicks —
/// including outside every routable area. The lowering must degrade
/// cleanly: no hole punched when nothing overlaps, hole rewrites skipped
/// when no exact-match hole exists, and bad indices rejected with a clear
/// error *before* any mutation (not UB, no partial journal entry).

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "layout/board_edit.hpp"
#include "layout/layout.hpp"

namespace lmr::layout {
namespace {

/// A board with one grouped trace whose routable area covers the left half
/// and carries one pre-punched hole matching obstacle 0 exactly (the
/// generator's convention: identical polygon in both places).
Layout holed_board() {
  Layout l(geom::Polygon::rect({{0, 0}, {100, 100}}));
  const geom::Polygon via = geom::Polygon::rect({{20, 20}, {22, 22}});
  l.add_obstacle({via, "via0"});

  Trace t;
  t.path = geom::Polyline{{{0, 10}, {50, 10}}};
  t.width = 0.2;
  const TraceId id = l.add_trace(t);

  RoutableArea area;
  area.outline = geom::Polygon::rect({{0, 0}, {50, 100}});
  area.holes = {via};
  l.set_routable_area(id, area);

  MatchGroup g;
  g.name = "g0";
  g.target_length = 60.0;
  g.members = {{MemberKind::SingleEnded, id}};
  l.add_group(g);
  return l;
}

TEST(BoardEdit, AddObstacleOutsideEveryAreaPunchesNoHole) {
  Layout l = holed_board();
  const std::size_t holes_before =
      l.routable_areas().begin()->second.holes.size();

  BoardEdit e;
  e.kind = BoardEditKind::AddObstacle;
  e.shape = geom::Polygon::rect({{80, 80}, {82, 82}});  // right half: no area
  e.name = "stray";
  const std::vector<LayoutDelta> deltas = apply_edit(l, e);

  // Exactly the AddObstacle primitive — no SetRoutableArea rides along.
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].kind, DeltaKind::AddObstacle);
  EXPECT_EQ(l.routable_areas().begin()->second.holes.size(), holes_before);
  EXPECT_EQ(l.obstacle_count(), 2u);
}

TEST(BoardEdit, MoveWithNoMatchingHoleMovesOnlyTheObstacle) {
  Layout l = holed_board();
  // Obstacle 1 exists but was never punched into any area (added raw, not
  // through apply_edit): the hole rewrite must find nothing and skip.
  l.add_obstacle({geom::Polygon::rect({{30, 60}, {32, 62}}), "unpunched"});

  BoardEdit e;
  e.kind = BoardEditKind::MoveObstacle;
  e.obstacle = 1;
  e.move = {2.0, 0.0};
  const std::vector<LayoutDelta> deltas = apply_edit(l, e);

  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].kind, DeltaKind::MoveObstacle);
  ASSERT_EQ(l.routable_areas().begin()->second.holes.size(), 1u);  // untouched
  EXPECT_EQ(l.obstacle(1).shape.bbox().lo.x, 32.0);
}

TEST(BoardEdit, RemoveWithNoMatchingHoleRemovesOnlyTheObstacle) {
  Layout l = holed_board();
  l.add_obstacle({geom::Polygon::rect({{30, 60}, {32, 62}}), "unpunched"});

  BoardEdit e;
  e.kind = BoardEditKind::RemoveObstacle;
  e.obstacle = 1;
  const std::vector<LayoutDelta> deltas = apply_edit(l, e);

  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].kind, DeltaKind::RemoveObstacle);
  EXPECT_EQ(l.obstacle_count(), 1u);
  EXPECT_EQ(l.routable_areas().begin()->second.holes.size(), 1u);
}

TEST(BoardEdit, MatchedHoleFollowsItsObstacle) {
  // The positive counterpart: obstacle 0 *was* punched, so moving and then
  // removing it rewrites the hole both times.
  Layout l = holed_board();

  BoardEdit mv;
  mv.kind = BoardEditKind::MoveObstacle;
  mv.obstacle = 0;
  mv.move = {3.0, 0.0};
  std::vector<LayoutDelta> deltas = apply_edit(l, mv);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[1].kind, DeltaKind::SetRoutableArea);
  const RoutableArea& area = l.routable_areas().begin()->second;
  ASSERT_EQ(area.holes.size(), 1u);
  EXPECT_EQ(area.holes[0].bbox().lo.x, 23.0);  // hole moved with the shape

  BoardEdit rm;
  rm.kind = BoardEditKind::RemoveObstacle;
  rm.obstacle = 0;
  deltas = apply_edit(l, rm);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_TRUE(l.routable_areas().begin()->second.holes.empty());
}

TEST(BoardEdit, BadObstacleIndexIsRejectedBeforeAnyMutation) {
  Layout l = holed_board();
  const std::uint64_t v = l.version();

  for (const BoardEditKind kind :
       {BoardEditKind::MoveObstacle, BoardEditKind::RemoveObstacle}) {
    BoardEdit e;
    e.kind = kind;
    e.obstacle = l.obstacle_count();  // one past the end — "already removed"
    e.move = {1.0, 0.0};
    try {
      (void)apply_edit(l, e);
      FAIL() << "apply_edit accepted a dangling obstacle index";
    } catch (const std::out_of_range& ex) {
      // The message names the failure and hints at the queued-edit cause.
      EXPECT_NE(std::string(ex.what()).find("does not exist"), std::string::npos)
          << ex.what();
    }
    EXPECT_EQ(l.version(), v);  // nothing reached the journal
    EXPECT_EQ(l.obstacle_count(), 1u);
  }
}

TEST(BoardEdit, SetGroupTargetOnMissingGroupIsRejectedWithAClearError) {
  // The satellite scenario: an earlier queued edit conceptually removed the
  // group this retarget addressed; by apply time the index is dangling. The
  // lowering must reject it up front — clear error, board untouched.
  Layout l = holed_board();
  const std::uint64_t v = l.version();
  const double target_before = l.groups().at(0).target_length;

  BoardEdit e;
  e.kind = BoardEditKind::SetGroupTarget;
  e.group = l.groups().size() + 3;
  e.target = 99.0;
  try {
    (void)apply_edit(l, e);
    FAIL() << "apply_edit accepted a dangling group index";
  } catch (const std::out_of_range& ex) {
    EXPECT_NE(std::string(ex.what()).find("missing group"), std::string::npos)
        << ex.what();
    EXPECT_NE(std::string(ex.what()).find("earlier edit"), std::string::npos)
        << ex.what();
  }
  EXPECT_EQ(l.version(), v);
  EXPECT_DOUBLE_EQ(l.groups().at(0).target_length, target_before);
}

}  // namespace
}  // namespace lmr::layout
