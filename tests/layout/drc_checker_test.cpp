#include "layout/drc_checker.hpp"

#include <gtest/gtest.h>

namespace lmr::layout {
namespace {

drc::DesignRules rules() {
  drc::DesignRules r;
  r.gap = 1.0;
  r.obs = 1.0;
  r.protect = 0.5;
  r.trace_width = 0.0;
  return r;
}

Trace make_trace(std::vector<geom::Point> pts, TraceId id = 1) {
  Trace t;
  t.id = id;
  t.path = geom::Polyline{std::move(pts)};
  return t;
}

TEST(DrcChecker, CleanStraightTrace) {
  const Trace t = make_trace({{0, 0}, {10, 0}});
  DrcChecker c;
  EXPECT_TRUE(c.check_trace(t, rules()).empty());
}

TEST(DrcChecker, CleanSerpentine) {
  // Legs 1 apart (= gap), heights 2: legal serpentine.
  const Trace t = make_trace(
      {{0, 0}, {1, 0}, {1, 2}, {2, 2}, {2, 0}, {3, 0}, {3, 2}, {4, 2}, {4, 0}, {10, 0}});
  DrcChecker c;
  const auto v = c.check_trace(t, rules());
  EXPECT_TRUE(v.empty()) << (v.empty() ? "" : v[0].note);
}

TEST(DrcChecker, ShortSegmentFlagged) {
  const Trace t = make_trace({{0, 0}, {5, 0}, {5, 0.2}, {10, 0.2}});
  DrcChecker c;
  const auto v = c.check_trace(t, rules());
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].kind, ViolationKind::MinSegmentLength);
  EXPECT_NEAR(v[0].measured, 0.2, 1e-9);
}

TEST(DrcChecker, TightParallelLegsFlagged) {
  // Two up-legs only 0.5 apart (< gap 1.0).
  const Trace t = make_trace(
      {{0, 0}, {2, 0}, {2, 3}, {2.5, 3}, {2.5, 0}, {3.0, 0}, {3.0, 3}, {3.5, 3}, {3.5, 0}, {6, 0}});
  DrcChecker c;
  const auto v = c.check_trace(t, rules());
  bool has_self_gap = false;
  for (const auto& viol : v) has_self_gap |= viol.kind == ViolationKind::SelfGap;
  EXPECT_TRUE(has_self_gap);
}

TEST(DrcChecker, OppositeSideProtectSpacingLegal) {
  // Up pattern, 0.5 (= protect) stub, down pattern: legal by the paper's
  // opposite-direction rule; the checker must not flag it.
  const Trace t = make_trace(
      {{0, 0}, {2, 0}, {2, 2}, {4, 2}, {4, 0}, {4.5, 0}, {4.5, -2}, {6.5, -2}, {6.5, 0}, {10, 0}});
  DrcChecker c;
  const auto v = c.check_trace(t, rules());
  EXPECT_TRUE(v.empty()) << (v.empty() ? "" : v[0].note);
}

TEST(DrcChecker, ConnectedOppositePatternsLegal) {
  // Two patterns sharing a foot: the leg crosses the base in one straight
  // line; no violation.
  const Trace t = make_trace(
      {{0, 0}, {2, 0}, {2, 2}, {4, 2}, {4, -2}, {6, -2}, {6, 0}, {10, 0}});
  DrcChecker c;
  const auto v = c.check_trace(t, rules());
  EXPECT_TRUE(v.empty()) << (v.empty() ? "" : v[0].note);
}

TEST(DrcChecker, ObstacleClearance) {
  const Trace t = make_trace({{0, 0}, {10, 0}});
  std::vector<Obstacle> obs;
  obs.push_back({geom::Polygon::rect({{4, 0.4}, {6, 2}}), "via"});
  DrcChecker c;
  const auto v = c.check_obstacles(t, rules(), obs);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, ViolationKind::ObstacleClearance);
  EXPECT_NEAR(v[0].measured, 0.4, 1e-9);
}

TEST(DrcChecker, ObstacleFarEnough) {
  const Trace t = make_trace({{0, 0}, {10, 0}});
  std::vector<Obstacle> obs;
  obs.push_back({geom::Polygon::rect({{4, 1.5}, {6, 3}}), "via"});
  DrcChecker c;
  EXPECT_TRUE(c.check_obstacles(t, rules(), obs).empty());
}

TEST(DrcChecker, ContainmentViolation) {
  const Trace t = make_trace({{0, 0}, {10, 0}, {10, 20}});
  RoutableArea area;
  area.outline = geom::Polygon::rect({{-1, -1}, {12, 5}});
  DrcChecker c;
  const auto v = c.check_containment(t, area);
  EXPECT_FALSE(v.empty());
  EXPECT_EQ(v[0].kind, ViolationKind::AreaContainment);
}

TEST(DrcChecker, ContainmentWithHole) {
  const Trace t = make_trace({{0, 0}, {10, 0}});
  RoutableArea area;
  area.outline = geom::Polygon::rect({{-1, -1}, {12, 5}});
  area.holes.push_back(geom::Polygon::rect({{4, -0.5}, {6, 0.5}}));
  DrcChecker c;
  const auto v = c.check_containment(t, area);
  EXPECT_FALSE(v.empty());  // midpoint at x=5 inside the hole
}

TEST(DrcChecker, TraceGapBetweenDifferentTraces) {
  const Trace a = make_trace({{0, 0}, {10, 0}}, 1);
  const Trace b = make_trace({{0, 0.5}, {10, 0.5}}, 2);
  DrcChecker c;
  const auto v = c.check_trace_pair(a, b, rules());
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].kind, ViolationKind::TraceGap);
  EXPECT_EQ(v[0].trace, 1u);
  EXPECT_EQ(v[0].other_trace, 2u);
}

TEST(DrcChecker, TraceGapRespectsWidths) {
  Trace a = make_trace({{0, 0}, {10, 0}}, 1);
  Trace b = make_trace({{0, 1.2}, {10, 1.2}}, 2);
  a.width = 0.4;
  b.width = 0.4;
  DrcChecker c;
  // Required: 1.0 + (0.4+0.4)/2 = 1.4 > 1.2 -> violation.
  EXPECT_FALSE(c.check_trace_pair(a, b, rules()).empty());
  b.path = geom::Polyline{{{0, 1.5}, {10, 1.5}}};
  EXPECT_TRUE(c.check_trace_pair(a, b, rules()).empty());
}

TEST(DrcChecker, CornerAngleWithMiterRule) {
  drc::DesignRules r = rules();
  r.miter = 0.3;
  const Trace right_angle = make_trace({{0, 0}, {5, 0}, {5, 5}});
  const Trace mitered = make_trace({{0, 0}, {4.7, 0}, {5, 0.3}, {5, 5}});
  DrcChecker c;
  EXPECT_FALSE(c.check_trace(right_angle, r).empty());
  EXPECT_TRUE(c.check_trace(mitered, r).empty());
}

TEST(DrcChecker, ChamferStubsExemptFromMinLength) {
  drc::DesignRules r = rules();
  // Chamfer diagonal of length ~0.42 < protect 0.5 but at 45 degrees.
  const Trace t = make_trace({{0, 0}, {4.7, 0}, {5, 0.3}, {5, 5}});
  DrcChecker c;
  EXPECT_TRUE(c.check_trace(t, r).empty());
  DrcChecker strict{DrcCheckOptions{1e-6, /*allow_chamfer_stubs=*/false}};
  EXPECT_FALSE(strict.check_trace(t, r).empty());
}

TEST(DrcChecker, LayoutSweepAggregates) {
  Layout l;
  l.add_trace(make_trace({{0, 0}, {10, 0}}, 0));
  l.add_trace(make_trace({{0, 0.3}, {10, 0.3}}, 0));
  l.add_obstacle({geom::Polygon::rect({{4, 0.4}, {6, 2}}), "via"});
  DrcChecker c;
  const auto v = c.check_layout(l, rules());
  bool gap = false, obs_v = false;
  for (const auto& viol : v) {
    gap |= viol.kind == ViolationKind::TraceGap;
    obs_v |= viol.kind == ViolationKind::ObstacleClearance;
  }
  EXPECT_TRUE(gap);
  EXPECT_TRUE(obs_v);
}

TEST(ViolationKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(ViolationKind::SelfGap), "SelfGap");
  EXPECT_STREQ(to_string(ViolationKind::TraceGap), "TraceGap");
  EXPECT_STREQ(to_string(ViolationKind::MinSegmentLength), "MinSegmentLength");
  EXPECT_STREQ(to_string(ViolationKind::ObstacleClearance), "ObstacleClearance");
  EXPECT_STREQ(to_string(ViolationKind::AreaContainment), "AreaContainment");
  EXPECT_STREQ(to_string(ViolationKind::CornerAngle), "CornerAngle");
}

}  // namespace
}  // namespace lmr::layout
