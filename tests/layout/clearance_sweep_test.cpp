#include "layout/clearance_sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "scenario/scenario_generator.hpp"

namespace lmr::layout {
namespace {

using ViolationKey = std::tuple<TraceId, TraceId, std::size_t, std::size_t, double>;

std::vector<ViolationKey> keys(const std::vector<Violation>& vs) {
  std::vector<ViolationKey> out;
  for (const Violation& v : vs) {
    out.emplace_back(v.trace, v.other_trace, v.index_a, v.index_b, v.measured);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The naive all-pairs loop the sweep replaces.
std::vector<Violation> naive(const std::vector<SweepTrace>& traces,
                             const drc::DesignRules& rules, const DrcCheckOptions& opts) {
  const DrcChecker checker(opts);
  std::vector<Violation> out;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    for (std::size_t j = i + 1; j < traces.size(); ++j) {
      if (traces[i].net == traces[j].net) continue;
      const auto v = checker.check_trace_pair(*traces[i].trace, *traces[j].trace, rules);
      out.insert(out.end(), v.begin(), v.end());
    }
  }
  return out;
}

drc::DesignRules test_rules() {
  drc::DesignRules r;
  r.gap = 1.0;
  r.obs = 0.5;
  r.protect = 0.5;
  r.trace_width = 0.25;
  return r;
}

TEST(ClearanceSweep, FindsKnownViolationLikeNaive) {
  // Two parallel traces at 0.9 centerline: below gap + width = 1.25.
  Trace a, b, c;
  a.id = 1;
  a.width = 0.25;
  a.path = geom::Polyline{{{0, 0}, {20, 0}}};
  b.id = 2;
  b.width = 0.25;
  b.path = geom::Polyline{{{0, 0.9}, {20, 0.9}}};
  c.id = 3;
  c.width = 0.25;
  c.path = geom::Polyline{{{0, 10}, {20, 10}}};  // far away: clean

  const std::vector<SweepTrace> traces{{&a, 0}, {&b, 1}, {&c, 2}};
  const auto rules = test_rules();
  const auto swept = cross_clearance_sweep(traces, rules);
  ASSERT_EQ(swept.size(), 1u);
  EXPECT_EQ(swept[0].kind, ViolationKind::TraceGap);
  EXPECT_EQ(swept[0].trace, 1u);
  EXPECT_EQ(swept[0].other_trace, 2u);
  EXPECT_NEAR(swept[0].measured, 0.9, 1e-12);
  EXPECT_EQ(keys(swept), keys(naive(traces, rules, {})));
}

TEST(ClearanceSweep, SameNetPairsAreExempt) {
  Trace p, n;
  p.id = 1;
  p.width = 0.25;
  p.path = geom::Polyline{{{0, 0.4}, {20, 0.4}}};
  n.id = 2;
  n.width = 0.25;
  n.path = geom::Polyline{{{0, -0.4}, {20, -0.4}}};
  // Same net (a differential member): no check despite the 0.8 spacing.
  EXPECT_TRUE(cross_clearance_sweep({{&p, 0}, {&n, 0}}, test_rules()).empty());
  // Different nets: violation.
  EXPECT_FALSE(cross_clearance_sweep({{&p, 0}, {&n, 1}}, test_rules()).empty());
}

TEST(ClearanceSweep, EquivalentToNaiveOnGeneratedBoards) {
  // Dense generated boards with deliberately squeezed corridors so real
  // cross violations exist; the sweep must reproduce the naive loop's
  // violation set exactly on every seed.
  scenario::ScenarioSpec spec;
  spec.name = "test/sweep";
  spec.groups = 2;
  spec.members_per_group = 5;
  spec.corridor_length = 80.0;
  spec.band_height = 3.2;  // tight bands: initial bumps approach each other
  spec.vias_per_band = 6;
  spec.rules = test_rules();

  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const scenario::Scenario sc = scenario::ScenarioGenerator(spec).generate(seed);
    std::vector<SweepTrace> traces;
    std::uint32_t net = 0;
    for (const auto& [id, t] : sc.layout.traces()) {
      (void)id;
      traces.push_back({&t, net++});
    }
    const auto swept = cross_clearance_sweep(traces, sc.rules);
    const auto brute = naive(traces, sc.rules, {});
    EXPECT_EQ(keys(swept), keys(brute)) << "seed " << seed;
  }
}

TEST(ClearanceSweep, CrossBandViolationsDetected) {
  // Traces meandering to their band edges in adjacent bands: classic
  // cross-member squeeze. Keys must agree with the naive loop including
  // measured distances.
  Trace a, b;
  a.id = 10;
  a.width = 0.2;
  a.path = geom::Polyline{{{0, 0}, {5, 0}, {5, 2}, {10, 2}, {10, 0}, {20, 0}}};
  b.id = 11;
  b.width = 0.2;
  b.path = geom::Polyline{{{0, 3}, {8, 3}, {8, 2.6}, {14, 2.6}, {14, 3}, {20, 3}}};
  const std::vector<SweepTrace> traces{{&a, 0}, {&b, 1}};
  const auto rules = test_rules();
  const auto swept = cross_clearance_sweep(traces, rules);
  const auto brute = naive(traces, rules, {});
  EXPECT_FALSE(swept.empty());
  EXPECT_EQ(keys(swept), keys(brute));
}

TEST(ClearanceSweep, EmptyAndSingleInputs) {
  EXPECT_TRUE(cross_clearance_sweep({}, test_rules()).empty());
  Trace a;
  a.id = 1;
  a.path = geom::Polyline{{{0, 0}, {10, 0}}};
  EXPECT_TRUE(cross_clearance_sweep({{&a, 0}}, test_rules()).empty());
}

}  // namespace
}  // namespace lmr::layout
