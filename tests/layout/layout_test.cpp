#include "layout/layout.hpp"

#include <gtest/gtest.h>

namespace lmr::layout {
namespace {

TEST(Layout, AddTraceAssignsIds) {
  Layout l;
  Trace t;
  t.path = geom::Polyline{{{0, 0}, {1, 0}}};
  const TraceId a = l.add_trace(t);
  const TraceId b = l.add_trace(t);
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(l.trace(a).id, a);
}

TEST(Layout, ExplicitIdsKept) {
  Layout l;
  Trace t;
  t.id = 42;
  t.path = geom::Polyline{{{0, 0}, {1, 0}}};
  EXPECT_EQ(l.add_trace(t), 42u);
}

TEST(Layout, PairStorage) {
  Layout l;
  DiffPair p;
  p.pitch = 0.6;
  p.positive.path = geom::Polyline{{{0, 0}, {10, 0}}};
  p.negative.path = geom::Polyline{{{0, 0.6}, {10, 0.6}}};
  const TraceId id = l.add_pair(p);
  EXPECT_DOUBLE_EQ(l.pair(id).pitch, 0.6);
}

TEST(Layout, RoutableAreaLookup) {
  Layout l;
  Trace t;
  t.path = geom::Polyline{{{0, 0}, {1, 0}}};
  const TraceId id = l.add_trace(t);
  EXPECT_EQ(l.routable_area(id), nullptr);
  RoutableArea area;
  area.outline = geom::Polygon::rect({{0, 0}, {10, 10}});
  l.set_routable_area(id, area);
  ASSERT_NE(l.routable_area(id), nullptr);
  EXPECT_DOUBLE_EQ(l.routable_area(id)->free_area(), 100.0);
}

TEST(RoutableArea, ContainsRespectsHoles) {
  RoutableArea area;
  area.outline = geom::Polygon::rect({{0, 0}, {10, 10}});
  area.holes.push_back(geom::Polygon::rect({{4, 4}, {6, 6}}));
  EXPECT_TRUE(area.contains({1, 1}));
  EXPECT_FALSE(area.contains({5, 5}));
  EXPECT_FALSE(area.contains({11, 5}));
  EXPECT_DOUBLE_EQ(area.free_area(), 96.0);
}

TEST(MatchGroup, TargetOverrides) {
  MatchGroup g;
  g.target_length = 100.0;
  g.members = {{MemberKind::SingleEnded, 1}, {MemberKind::SingleEnded, 2}};
  g.member_targets = {0.0, 120.0};
  EXPECT_DOUBLE_EQ(g.target_for(0), 100.0);
  EXPECT_DOUBLE_EQ(g.target_for(1), 120.0);
  EXPECT_DOUBLE_EQ(g.target_for(5), 100.0);  // out of range -> group target
}

TEST(Trace, LengthDelegation) {
  Trace t;
  t.path = geom::Polyline{{{0, 0}, {3, 4}}};
  EXPECT_DOUBLE_EQ(t.length(), 5.0);
}

}  // namespace
}  // namespace lmr::layout
