#include "layout/clearance_index.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <tuple>
#include <vector>

#include "exec/task_pool.hpp"
#include "layout/clearance_sweep.hpp"
#include "scenario/scenario_generator.hpp"

namespace lmr::layout {
namespace {

using ViolationKey = std::tuple<TraceId, TraceId, std::size_t, std::size_t, double>;

std::vector<ViolationKey> keys(const std::vector<Violation>& vs) {
  std::vector<ViolationKey> out;
  for (const Violation& v : vs) {
    out.emplace_back(v.trace, v.other_trace, v.index_a, v.index_b, v.measured);
  }
  return out;  // NOT sorted: the index's output order is part of its contract
}

drc::DesignRules test_rules() {
  drc::DesignRules r;
  r.gap = 1.0;
  r.obs = 0.5;
  r.protect = 0.5;
  r.trace_width = 0.25;
  return r;
}

/// A generated board plus the sweep-input view of its traces and the rule
/// set the sweep runs under. Generated boards are born legal, so the sweep
/// rules inflate the gap past the band spacing: the existing parallel runs
/// then genuinely violate, giving the equivalence checks a real, dense
/// violation set to diff.
struct DenseBoard {
  scenario::Scenario sc;
  std::vector<SweepTrace> traces;
  drc::DesignRules rules;
};

DenseBoard dense_board(std::uint64_t seed) {
  scenario::ScenarioSpec spec;
  spec.name = "test/clearance_index";
  spec.groups = 2;
  spec.members_per_group = 5;
  spec.corridor_length = 80.0;
  spec.band_height = 3.2;
  spec.vias_per_band = 6;
  spec.rules = test_rules();
  DenseBoard b{scenario::ScenarioGenerator(spec).generate(seed), {}, test_rules()};
  b.rules.gap = 4.0;  // > band spacing: neighbouring members violate
  std::uint32_t net = 0;
  for (const auto& [id, t] : b.sc.layout.traces()) {
    (void)id;
    b.traces.push_back({&t, net++});
  }
  return b;
}

TEST(ClearanceIndex, MatchesOneShotSweepIncludingOrder) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const DenseBoard b = dense_board(seed);
    const auto rules = b.rules;
    const auto reference = cross_clearance_sweep(b.traces, rules);

    ClearanceIndex index(rules);
    for (const SweepTrace& st : b.traces) index.add_slot(st.trace->width, st.net);
    for (std::uint32_t i = 0; i < b.traces.size(); ++i) {
      index.insert(i, *b.traces[i].trace);
    }
    const auto swept = index.sweep();
    EXPECT_FALSE(reference.empty()) << "seed " << seed << ": want real violations";
    EXPECT_EQ(keys(swept), keys(reference)) << "seed " << seed;
  }
}

TEST(ClearanceIndex, InsertionOrderCannotChangeTheResult) {
  const DenseBoard b = dense_board(2);
  const auto rules = b.rules;
  const auto reference = cross_clearance_sweep(b.traces, rules);

  // Reverse insertion order: samples and candidate order key on slot ids
  // fixed at declaration, so the output must be byte-for-byte the same.
  ClearanceIndex index(rules);
  for (const SweepTrace& st : b.traces) index.add_slot(st.trace->width, st.net);
  for (std::uint32_t i = static_cast<std::uint32_t>(b.traces.size()); i-- > 0;) {
    index.insert(i, *b.traces[i].trace);
  }
  EXPECT_EQ(keys(index.sweep()), keys(reference));
}

TEST(ClearanceIndex, ConcurrentInsertsMatchSerial) {
  // The pipeline inserts each member's geometry from its own chain; distinct
  // slots must be safely writable from concurrent tasks.
  const DenseBoard b = dense_board(3);
  const auto rules = b.rules;
  const auto reference = cross_clearance_sweep(b.traces, rules);

  exec::TaskPool pool(3);
  for (int rep = 0; rep < 10; ++rep) {
    ClearanceIndex index(rules);
    for (const SweepTrace& st : b.traces) index.add_slot(st.trace->width, st.net);
    exec::parallel_for_dynamic(pool, b.traces.size(), 4, [&](std::size_t i) {
      index.insert(static_cast<std::uint32_t>(i), *b.traces[i].trace);
    });
    ASSERT_EQ(keys(index.sweep()), keys(reference)) << "rep " << rep;
  }
}

TEST(ClearanceIndex, UninsertedSlotsDoNotParticipate) {
  Trace a, b;
  a.id = 1;
  a.width = 0.25;
  a.path = geom::Polyline{{{0, 0}, {20, 0}}};
  b.id = 2;
  b.width = 0.25;
  b.path = geom::Polyline{{{0, 0.9}, {20, 0.9}}};  // violating pair with a

  ClearanceIndex index(test_rules());
  index.add_slot(a.width, 0);
  index.add_slot(b.width, 1);
  index.add_slot(10.0, 2);  // declared wide trace, never inserted

  index.insert(0, a);
  EXPECT_TRUE(index.sweep().empty());  // one inserted trace: nothing to check
  index.insert(1, b);
  const auto swept = index.sweep();
  ASSERT_EQ(swept.size(), 1u);
  EXPECT_EQ(swept[0].kind, ViolationKind::TraceGap);
  EXPECT_NEAR(swept[0].measured, 0.9, 1e-12);
}

TEST(ClearanceIndex, SweepIsRepeatable) {
  const DenseBoard b = dense_board(1);
  ClearanceIndex index(b.rules);
  for (const SweepTrace& st : b.traces) index.add_slot(st.trace->width, st.net);
  for (std::uint32_t i = 0; i < b.traces.size(); ++i) index.insert(i, *b.traces[i].trace);
  const auto first = index.sweep();
  EXPECT_EQ(keys(index.sweep()), keys(first));  // query-only: no state consumed
}

TEST(ClearanceIndex, RemoveTakesSlotOutOfTheSweep) {
  const DenseBoard b = dense_board(1);
  ClearanceIndex index(b.rules);
  for (const SweepTrace& st : b.traces) index.add_slot(st.trace->width, st.net);
  for (std::uint32_t i = 0; i < b.traces.size(); ++i) index.insert(i, *b.traces[i].trace);
  ASSERT_FALSE(index.sweep().empty());

  // Removing a slot must be equivalent to never having inserted it.
  const std::uint32_t victim = 3;
  index.remove(victim);
  EXPECT_FALSE(index.slot_inserted(victim));
  std::vector<SweepTrace> remaining;
  for (std::uint32_t i = 0; i < b.traces.size(); ++i) {
    if (i != victim) remaining.push_back(b.traces[i]);
  }
  EXPECT_EQ(keys(index.sweep()), keys(cross_clearance_sweep(remaining, b.rules)));

  // ...and re-inserting restores the full result, in the original order.
  index.insert(victim, *b.traces[victim].trace);
  EXPECT_EQ(keys(index.sweep()), keys(cross_clearance_sweep(b.traces, b.rules)));
}

TEST(ClearanceIndex, CachedSweepSurvivesEditStorms) {
  // Interleave moves (re-insert with shifted geometry), removes and
  // restores; after every step the cached/overlay sweep must match a fresh
  // one-shot sweep over the current traces. Enough steps to cross the
  // quarter-dirty compaction threshold several times.
  const DenseBoard b = dense_board(2);
  std::vector<Trace> shifted(b.traces.size());
  ClearanceIndex index(b.rules);
  for (const SweepTrace& st : b.traces) index.add_slot(st.trace->width, st.net);
  for (std::uint32_t i = 0; i < b.traces.size(); ++i) index.insert(i, *b.traces[i].trace);
  ASSERT_FALSE(index.sweep().empty());

  std::vector<bool> moved(b.traces.size(), false), removed(b.traces.size(), false);
  for (std::uint32_t step = 0; step < 20; ++step) {
    const auto i = static_cast<std::uint32_t>((step * 7 + 3) % b.traces.size());
    switch (step % 3) {
      case 0: {  // move: re-insert shifted geometry (kept alive in `shifted`)
        shifted[i] = *b.traces[i].trace;
        for (geom::Point& p : shifted[i].path.points()) p += {0.0, 0.35};
        index.insert(i, shifted[i]);
        moved[i] = true;
        removed[i] = false;
        break;
      }
      case 1:  // remove
        index.remove(i);
        removed[i] = true;
        break;
      default:  // restore original
        index.insert(i, *b.traces[i].trace);
        moved[i] = false;
        removed[i] = false;
    }
    std::vector<SweepTrace> current;
    for (std::uint32_t k = 0; k < b.traces.size(); ++k) {
      if (removed[k]) continue;
      current.push_back({moved[k] ? &shifted[k] : b.traces[k].trace, b.traces[k].net});
    }
    ASSERT_EQ(keys(index.sweep()), keys(cross_clearance_sweep(current, b.rules)))
        << "step " << step;
    // Back-to-back sweep with no edit: served from the violation cache.
    ASSERT_EQ(keys(index.sweep()), keys(cross_clearance_sweep(current, b.rules)))
        << "step " << step << " (cached)";
  }
}

TEST(ClearanceIndex, MoveLeavesMovedFromEmptyAndReusable) {
  const DenseBoard b = dense_board(1);
  ClearanceIndex index(b.rules);
  for (const SweepTrace& st : b.traces) index.add_slot(st.trace->width, st.net);
  for (std::uint32_t i = 0; i < b.traces.size(); ++i) index.insert(i, *b.traces[i].trace);
  const auto reference = keys(index.sweep());  // populate tree + result caches
  ASSERT_FALSE(reference.empty());

  // Move construction transfers slots and caches wholesale.
  ClearanceIndex moved(std::move(index));
  EXPECT_EQ(keys(moved.sweep()), reference);

  // The moved-from index is an empty-but-valid index: no slots, clean
  // sweep, and it can be rebuilt from scratch without touching stale cache.
  EXPECT_EQ(index.slot_count(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(index.sweep().empty());
  for (const SweepTrace& st : b.traces) index.add_slot(st.trace->width, st.net);
  for (std::uint32_t i = 0; i < b.traces.size(); ++i) index.insert(i, *b.traces[i].trace);
  EXPECT_EQ(keys(index.sweep()), reference);

  // Move assignment, including self-refresh afterwards.
  ClearanceIndex assigned(b.rules);
  assigned = std::move(moved);
  EXPECT_EQ(keys(assigned.sweep()), reference);
}

}  // namespace
}  // namespace lmr::layout
