#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "layout/clearance_index.hpp"
#include "pipeline/router.hpp"
#include "pipeline/session.hpp"
#include "scenario/scenario_families.hpp"
#include "scenario/scenario_generator.hpp"

/// The Grid clearance backend's bit-identity contract: a forced-Grid
/// ClearanceIndex produces exactly the violations (values AND order) of the
/// forced-RangeTree one — on dense boards, through insert/remove/replace
/// churn, and end-to-end through the Router on every smoke family under
/// both DRC schedules. Plus the Auto policy: tree below
/// ClearanceIndex::kGridAutoSlots, grid at/above, with a mid-life flip
/// changing nothing but the broadphase.

namespace lmr::layout {
namespace {

bool same_violations(const std::vector<Violation>& a, const std::vector<Violation>& b,
                     std::string* why = nullptr) {
  if (a.size() != b.size()) {
    if (why != nullptr) *why = "count differs";
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Violation& x = a[i];
    const Violation& y = b[i];
    if (x.kind != y.kind || x.trace != y.trace || x.other_trace != y.other_trace ||
        x.index_a != y.index_a || x.index_b != y.index_b || x.measured != y.measured ||
        x.required != y.required || x.note != y.note) {
      if (why != nullptr) *why = "violation " + std::to_string(i) + " differs";
      return false;
    }
  }
  return true;
}

drc::DesignRules test_rules() {
  drc::DesignRules r;
  r.gap = 1.0;
  r.obs = 0.5;
  r.protect = 0.5;
  r.trace_width = 0.25;
  return r;
}

/// Generated dense board whose sweep rules inflate the gap past the band
/// spacing, so neighbouring members genuinely violate (same trick as the
/// clearance_index tests: born-legal boards have empty sweeps).
struct DenseBoard {
  scenario::Scenario sc;
  std::vector<const Trace*> traces;
  drc::DesignRules rules;
};

DenseBoard dense_board(std::uint64_t seed, int groups = 2, int members = 5) {
  scenario::ScenarioSpec spec;
  spec.name = "test/clearance_backend";
  spec.groups = groups;
  spec.members_per_group = members;
  spec.corridor_length = 80.0;
  spec.band_height = 3.2;
  spec.vias_per_band = 6;
  spec.rules = test_rules();
  DenseBoard b{scenario::ScenarioGenerator(spec).generate(seed), {}, test_rules()};
  b.rules.gap = 4.0;
  for (const auto& [id, t] : b.sc.layout.traces()) {
    (void)id;
    b.traces.push_back(&t);
  }
  return b;
}

/// Two indexes over the same traces, one per forced backend.
struct IndexPair {
  ClearanceIndex tree;
  ClearanceIndex grid;

  explicit IndexPair(const drc::DesignRules& rules)
      : tree(rules, {}, ClearanceBackend::RangeTree),
        grid(rules, {}, ClearanceBackend::Grid) {}

  void add_insert(const Trace& t, std::uint32_t net) {
    tree.insert(tree.add_slot(t.width, net), t);
    grid.insert(grid.add_slot(t.width, net), t);
  }

  void expect_same_sweep(const std::string& tag) {
    std::string why;
    EXPECT_TRUE(same_violations(tree.sweep(), grid.sweep(), &why)) << tag << ": " << why;
  }
};

TEST(ClearanceBackend, ForcedBackendsSweepIdentically) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    DenseBoard b = dense_board(seed);
    IndexPair pair(b.rules);
    std::uint32_t net = 0;
    for (const Trace* t : b.traces) pair.add_insert(*t, net++);
    EXPECT_FALSE(pair.tree.sweep().empty()) << "want real violations";
    pair.expect_same_sweep("seed " + std::to_string(seed));
  }
}

TEST(ClearanceBackend, ChurnSweepsStayIdentical) {
  // Remove / reinsert / replace-geometry sequences, sweeping (and diffing)
  // after every mutation: the grid's incremental re-registration must track
  // the tree's overlay model exactly.
  DenseBoard b = dense_board(21, 2, 6);
  IndexPair pair(b.rules);
  std::uint32_t net = 0;
  for (const Trace* t : b.traces) pair.add_insert(*t, net++);
  pair.expect_same_sweep("initial");

  const auto n = static_cast<std::uint32_t>(b.traces.size());
  for (std::uint32_t step = 0; step < n; ++step) {
    const std::uint32_t victim = (step * 5 + 3) % n;
    pair.tree.remove(victim);
    pair.grid.remove(victim);
    pair.expect_same_sweep("after remove " + std::to_string(victim));

    pair.tree.insert(victim, *b.traces[victim]);
    pair.grid.insert(victim, *b.traces[victim]);
    pair.expect_same_sweep("after reinsert " + std::to_string(victim));
  }

  // Replace geometry in place: shift one trace into its neighbour's band.
  Trace shifted = *b.traces[0];
  for (geom::Point& p : shifted.path.points()) p.y += 1.5;
  pair.tree.insert(0, shifted);
  pair.grid.insert(0, shifted);
  pair.expect_same_sweep("after geometry replace");
}

TEST(ClearanceBackend, AutoFlipsToGridAtThreshold) {
  const drc::DesignRules rules = test_rules();
  ClearanceIndex index(rules);
  ASSERT_EQ(index.backend(), ClearanceBackend::RangeTree) << "empty index";

  std::vector<Trace> traces(ClearanceIndex::kGridAutoSlots + 4);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    traces[i].id = static_cast<TraceId>(i + 1);
    traces[i].width = 0.25;
    const double y = static_cast<double>(i) * 0.8;  // < effective gap: violations
    traces[i].path = geom::Polyline{{{0.0, y}, {40.0, y}}};
  }

  ClearanceIndex forced_tree(rules, {}, ClearanceBackend::RangeTree);
  ClearanceIndex forced_grid(rules, {}, ClearanceBackend::Grid);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto net = static_cast<std::uint32_t>(i);
    index.insert(index.add_slot(traces[i].width, net), traces[i]);
    forced_tree.insert(forced_tree.add_slot(traces[i].width, net), traces[i]);
    forced_grid.insert(forced_grid.add_slot(traces[i].width, net), traces[i]);
    if (i + 1 == ClearanceIndex::kGridAutoSlots / 2) {
      // Mid-life sweep below the threshold: still the tree, and the flip
      // later must not be confused by this sweep's caches.
      EXPECT_EQ(index.backend(), ClearanceBackend::RangeTree);
      (void)index.sweep();
    }
  }
  EXPECT_EQ(index.backend(), ClearanceBackend::Grid)
      << "Auto must flip at kGridAutoSlots";

  std::string why;
  EXPECT_TRUE(same_violations(index.sweep(), forced_grid.sweep(), &why))
      << "auto vs forced grid: " << why;
  EXPECT_TRUE(same_violations(index.sweep(), forced_tree.sweep(), &why))
      << "auto vs forced tree: " << why;
  EXPECT_FALSE(index.sweep().empty()) << "fixture must produce violations";
}

TEST(ClearanceBackend, RoutesIdenticalAcrossBackendsOnEverySmokeFamily) {
  for (const pipeline::DrcSchedule schedule :
       {pipeline::DrcSchedule::Barrier, pipeline::DrcSchedule::Overlapped}) {
    for (const scenario::Family& fam : scenario::standard_families(true)) {
      for (const scenario::FamilyCase& fc : fam.cases) {
        scenario::Scenario a = scenario::materialize(fc);
        scenario::Scenario b = scenario::materialize(fc);

        pipeline::RouterOptions opts;
        opts.drc_schedule = schedule;
        opts.extender.l_disc = 0.5;
        opts.extender.max_width_steps = 24;
        if (a.spec.extender_tolerance > 0.0) {
          opts.extender.tolerance = a.spec.extender_tolerance;
        }
        if (a.pair_rule_set.size() > 1) opts.pair_rule_set = a.pair_rule_set;

        pipeline::RouterOptions tree_opts = opts;
        tree_opts.clearance_backend = ClearanceBackend::RangeTree;
        pipeline::RouterOptions grid_opts = opts;
        grid_opts.clearance_backend = ClearanceBackend::Grid;

        const pipeline::BoardRoute ra =
            pipeline::Router(a.rules, tree_opts).route_board(a.layout);
        const pipeline::BoardRoute rb =
            pipeline::Router(b.rules, grid_opts).route_board(b.layout);
        std::string why;
        EXPECT_TRUE(pipeline::routes_equivalent(a.layout, ra, b.layout, rb, &why))
            << fam.name << "/" << fc.spec.name << " schedule "
            << (schedule == pipeline::DrcSchedule::Barrier ? "barrier" : "overlapped")
            << ": " << why;
      }
    }
  }
}

}  // namespace
}  // namespace lmr::layout
