#include "viz/render.hpp"
#include "viz/svg.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace lmr::viz {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(Svg, WritesWellFormedFile) {
  SvgWriter svg({{0, 0}, {10, 10}}, 10.0);
  svg.polyline(geom::Polyline{{{0, 0}, {5, 5}}}, Style{});
  svg.polygon(geom::Polygon::rect({{1, 1}, {2, 2}}), Style{});
  svg.circle({5, 5}, 1.0, Style{});
  svg.line({0, 0}, {10, 10}, Style{});
  svg.text({1, 9}, "hello", 1.0);
  const std::string path = "/tmp/lmr_svg_test.svg";
  ASSERT_TRUE(svg.save(path));
  const std::string content = slurp(path);
  EXPECT_NE(content.find("<svg"), std::string::npos);
  EXPECT_NE(content.find("</svg>"), std::string::npos);
  EXPECT_NE(content.find("<polyline"), std::string::npos);
  EXPECT_NE(content.find("<polygon"), std::string::npos);
  EXPECT_NE(content.find("<circle"), std::string::npos);
  EXPECT_NE(content.find("hello"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Svg, YAxisFlipped) {
  SvgWriter svg({{0, 0}, {10, 10}}, 1.0);
  svg.circle({0, 0}, 0.5, Style{});  // bottom-left in layout coords
  const std::string path = "/tmp/lmr_svg_flip.svg";
  ASSERT_TRUE(svg.save(path));
  const std::string content = slurp(path);
  // Bottom-left maps to y = 10 in SVG pixels (flipped), x = 0.
  EXPECT_NE(content.find("cx=\"0\" cy=\"10\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Render, LayoutSmoke) {
  layout::Layout l;
  layout::Trace t;
  t.name = "t";
  t.path = geom::Polyline{{{0, 0}, {20, 0}}};
  const auto id = l.add_trace(t);
  layout::RoutableArea area;
  area.outline = geom::Polygon::rect({{-1, -4}, {21, 4}});
  l.set_routable_area(id, area);
  l.add_obstacle({geom::Polygon::regular({10, 2}, 0.8, 8), "via"});
  const std::string path = "/tmp/lmr_render_test.svg";
  ASSERT_TRUE(render_layout(l, path));
  EXPECT_FALSE(slurp(path).empty());
  std::remove(path.c_str());
}

TEST(Render, TracePanelSmoke) {
  layout::Trace t;
  t.path = geom::Polyline{{{0, 0}, {5, 0}, {5, 5}}};
  layout::RoutableArea area;
  area.outline = geom::Polygon::rect({{-1, -1}, {6, 6}});
  const std::string path = "/tmp/lmr_panel_test.svg";
  ASSERT_TRUE(render_trace_panel(t, area, path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lmr::viz
