#include "bench_harness/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "bench_harness/report.hpp"

namespace lmr::bench {
namespace {

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(Json::parse("null"), Json{});
  EXPECT_EQ(Json::parse("true"), Json{true});
  EXPECT_EQ(Json::parse("false"), Json{false});
  EXPECT_EQ(Json::parse("42"), Json{std::int64_t{42}});
  EXPECT_EQ(Json::parse("-7"), Json{std::int64_t{-7}});
  EXPECT_EQ(Json::parse("2.5"), Json{2.5});
  EXPECT_EQ(Json::parse("\"hi\""), Json{"hi"});
}

TEST(Json, IntAndDoubleStayDistinct) {
  // 3 and 3.0 must survive a round trip with their types: metric fields are
  // doubles even when they land on integers, counters are ints.
  const Json i{std::int64_t{3}};
  const Json d{3.0};
  EXPECT_EQ(i.dump(), "3");
  EXPECT_EQ(d.dump(), "3.0");
  EXPECT_TRUE(Json::parse(i.dump()).is_int());
  EXPECT_TRUE(Json::parse(d.dump()).is_double());
}

TEST(Json, DoubleDumpIsShortestRoundTrip) {
  const double v = 0.1 + 0.2;  // classic non-representable sum
  const Json j{v};
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.as_double(), v);  // bit-exact after round trip
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json obj = Json::object();
  obj["zebra"] = 1;
  obj["alpha"] = 2;
  obj["mid"] = 3;
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  const Json back = Json::parse(obj.dump());
  ASSERT_TRUE(back.is_object());
  EXPECT_EQ(back.members()[0].first, "zebra");
  EXPECT_EQ(back.members()[1].first, "alpha");
  EXPECT_EQ(back.members()[2].first, "mid");
}

TEST(Json, StringEscapes) {
  const std::string raw = "a\"b\\c\nd\te\x01f";
  const Json j{raw};
  EXPECT_EQ(Json::parse(j.dump()).as_string(), raw);
  EXPECT_EQ(Json::parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
}

TEST(Json, NestedRoundTripPretty) {
  Json doc = Json::object();
  doc["name"] = "suite";
  doc["ok"] = true;
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(2.5);
  arr.push_back("three");
  doc["items"] = std::move(arr);
  doc["nested"] = Json::object();
  doc["nested"]["empty_list"] = Json::array();

  for (const int indent : {0, 2}) {
    const Json back = Json::parse(doc.dump(indent));
    EXPECT_EQ(back, doc) << "indent " << indent;
  }
}

TEST(Json, DumpIsDeterministic) {
  const auto build = [] {
    Json j = Json::object();
    j["b"] = 0.30000000000000004;
    j["a"] = Json::array();
    j["a"].push_back(-1.5e-7);
    return j;
  };
  EXPECT_EQ(build().dump(2), build().dump(2));
}

TEST(Json, ParseErrors) {
  EXPECT_THROW((void)Json::parse(""), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("tru"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("1 2"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("\"unterminated"), std::runtime_error);
}

TEST(Json, Uint64AboveInt64RangeThrows) {
  EXPECT_NO_THROW(Json{std::uint64_t{1} << 62});
  EXPECT_THROW(Json{~std::uint64_t{0}}, std::overflow_error);
  EXPECT_THROW(Json{std::uint64_t{1} << 63}, std::overflow_error);
}

TEST(Json, FindAndErase) {
  Json obj = Json::object();
  obj["keep"] = 1;
  obj["drop"] = 2;
  EXPECT_NE(obj.find("drop"), nullptr);
  obj.erase("drop");
  EXPECT_EQ(obj.find("drop"), nullptr);
  EXPECT_NE(obj.find("keep"), nullptr);
  EXPECT_EQ(obj.size(), 1u);
}

TEST(Report, StripVolatileRemovesRunAndTimingKeys) {
  Json doc = Json::object();
  doc["schema"] = "x/v1";
  doc["run"] = run_info_json(collect_run_info());
  doc["metric"] = 1.25;
  doc["runtime_s"] = 0.5;
  Json inner = Json::object();
  inner["aidt_runtime_s"] = 1.0;
  inner["value"] = 7;
  Json arr = Json::array();
  arr.push_back(std::move(inner));
  doc["cases"] = std::move(arr);

  const Json stripped = strip_volatile(doc);
  EXPECT_EQ(stripped.find("run"), nullptr);
  EXPECT_EQ(stripped.find("runtime_s"), nullptr);
  ASSERT_NE(stripped.find("cases"), nullptr);
  const Json& c0 = stripped.find("cases")->items()[0];
  EXPECT_EQ(c0.find("aidt_runtime_s"), nullptr);
  ASSERT_NE(c0.find("value"), nullptr);
  EXPECT_EQ(c0.find("value")->as_int(), 7);
}

TEST(Report, WriteAndReadRoundTrip) {
  Json doc = Json::object();
  doc["hello"] = "world";
  doc["pi"] = 3.14159;
  const std::string path = ::testing::TempDir() + "lmr_json_roundtrip.json";
  write_json_file(path, doc);
  EXPECT_EQ(read_json_file(path), doc);
}

TEST(Report, RunInfoIsPopulated) {
  const RunInfo info = collect_run_info();
  EXPECT_FALSE(info.host.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_GT(info.hardware_threads, 0);
  EXPECT_EQ(info.timestamp_utc.size(), 20u);  // YYYY-MM-DDTHH:MM:SSZ
}

}  // namespace
}  // namespace lmr::bench
