#include "bench_harness/suite.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "bench_harness/report.hpp"

namespace lmr::bench {
namespace {

SuiteOptions tiny_options() {
  SuiteOptions opts;
  opts.smoke = true;
  // Two cheap families: one generated sweep and the saturation probe.
  opts.families = {"obstacle_sweep", "saturated"};
  opts.threads = 2;
  return opts;
}

TEST(Suite, RunsSelectedFamilies) {
  const Suite suite(tiny_options());
  const SuiteResult result = suite.run();
  ASSERT_GE(result.cases.size(), 3u);  // two sweep densities + saturated
  for (const CaseOutcome& c : result.cases) {
    EXPECT_TRUE(c.family == "obstacle_sweep" || c.family == "saturated") << c.family;
    ASSERT_FALSE(c.groups.empty());
    for (const GroupOutcome& g : c.groups) {
      EXPECT_GT(g.members, 0u);
      EXPECT_GT(g.target, 0.0);
      EXPECT_GE(g.initial_max_error_pct, g.initial_avg_error_pct);
    }
  }
  EXPECT_TRUE(result.all_ok());
}

TEST(Suite, SaturatedCaseIsCleanButUnmatched) {
  SuiteOptions opts;
  opts.smoke = true;
  opts.families = {"saturated"};
  const SuiteResult result = Suite(opts).run();
  ASSERT_EQ(result.cases.size(), 1u);
  const CaseOutcome& c = result.cases[0];
  EXPECT_FALSE(c.matched());
  EXPECT_TRUE(c.drc_clean());
  EXPECT_TRUE(c.ok());  // no error gate on the capacity probe
  EXPECT_GT(c.worst_error_pct(), 10.0);
}

TEST(Suite, UnknownFamilyThrows) {
  SuiteOptions opts;
  opts.families = {"definitely_not_a_family"};
  EXPECT_THROW((void)Suite(opts).run(), std::out_of_range);
}

TEST(Suite, JsonFollowsSchema) {
  const SuiteOptions opts = tiny_options();
  const SuiteResult result = Suite(opts).run();
  const Json doc = Suite::to_json(result, opts);

  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), Suite::kSchema);
  ASSERT_NE(doc.find("run"), nullptr);
  EXPECT_NE(doc.find("run")->find("host"), nullptr);
  ASSERT_NE(doc.find("families"), nullptr);
  ASSERT_NE(doc.find("specs"), nullptr);
  EXPECT_EQ(doc.find("families")->items().size(), 2u);

  const Json& fam0 = doc.find("families")->items()[0];
  ASSERT_NE(fam0.find("cases"), nullptr);
  const Json& case0 = fam0.find("cases")->items()[0];
  for (const char* key : {"scenario", "seed", "ok", "groups", "runtime_s"}) {
    EXPECT_NE(case0.find(key), nullptr) << key;
  }
  const Json& group0 = case0.find("groups")->items()[0];
  for (const char* key :
       {"group", "target", "max_error_pct", "avg_error_pct", "matched", "runtime_s",
        "net_violations", "cross_violations"}) {
    EXPECT_NE(group0.find(key), nullptr) << key;
  }

  // Round trip through the parser.
  EXPECT_EQ(Json::parse(doc.dump(2)), doc);
}

TEST(Suite, RerunIsBitIdenticalModuloTiming) {
  // The tracked-results contract: same seeds in, byte-identical stripped
  // document out — including every routed metric.
  const SuiteOptions opts = tiny_options();
  const Json a = Suite::to_json(Suite(opts).run(), opts);
  const Json b = Suite::to_json(Suite(opts).run(), opts);
  EXPECT_EQ(strip_volatile(a).dump(2), strip_volatile(b).dump(2));
}

TEST(Suite, ThreadCountDoesNotChangeMetrics) {
  SuiteOptions seq = tiny_options();
  seq.threads = 1;
  SuiteOptions par = tiny_options();
  par.threads = 8;
  const Json a = Suite::to_json(Suite(seq).run(), seq);
  const Json b = Suite::to_json(Suite(par).run(), par);
  EXPECT_EQ(strip_volatile(a).dump(2), strip_volatile(b).dump(2));
}

TEST(Suite, RecordsParallelismContextAsVolatile) {
  SuiteOptions opts = tiny_options();
  opts.threads = 3;
  const Json doc = Suite::to_json(Suite(opts).run(), opts);

  // The run object names the effective worker count and pool policy...
  ASSERT_NE(doc.find("run"), nullptr);
  ASSERT_NE(doc.find("run")->find("threads_used"), nullptr);
  EXPECT_EQ(doc.find("run")->find("threads_used")->as_int(), 3);
  ASSERT_NE(doc.find("run")->find("pool_policy"), nullptr);
  EXPECT_EQ(doc.find("run")->find("pool_policy")->as_string(), "explicit-pool");

  // ...and every case records what it actually ran under.
  const Json& case0 = doc.find("families")->items()[0].find("cases")->items()[0];
  ASSERT_NE(case0.find("threads_used"), nullptr);
  EXPECT_EQ(case0.find("threads_used")->as_int(), 3);

  // Both are volatile context: the stripped document must not contain them,
  // or thread counts would change the tracked quality bytes.
  const std::string stripped = strip_volatile(doc).dump(2);
  EXPECT_EQ(stripped.find("threads_used"), std::string::npos);
  EXPECT_EQ(stripped.find("pool_policy"), std::string::npos);
}

TEST(Suite, PoolPolicySelection) {
  SuiteOptions serial = tiny_options();
  serial.threads = 1;
  EXPECT_EQ(Suite(serial).pool(), nullptr);

  SuiteOptions shared = tiny_options();
  shared.threads = 0;
  EXPECT_EQ(Suite(shared).pool(), &exec::TaskPool::shared());

  SuiteOptions pinned = tiny_options();
  pinned.threads = 4;
  const Suite suite(pinned);
  ASSERT_NE(suite.pool(), nullptr);
  EXPECT_NE(suite.pool(), &exec::TaskPool::shared());
  EXPECT_EQ(suite.pool()->parallelism(), 4u);
}

TEST(Suite, ScalingSweepMeasuresEveryThreadCount) {
  SuiteOptions base;
  base.smoke = true;
  const std::vector<std::size_t> counts = {1, 2};
  const auto curves = Suite::run_scaling(base, {"multi_group"}, counts);
  ASSERT_EQ(curves.size(), 1u);
  EXPECT_EQ(curves[0].family, "multi_group");
  ASSERT_EQ(curves[0].points.size(), 2u);
  EXPECT_EQ(curves[0].points[0].threads, 1u);
  EXPECT_DOUBLE_EQ(curves[0].points[0].speedup, 1.0);  // reference point
  EXPECT_EQ(curves[0].points[1].threads, 2u);
  EXPECT_GT(curves[0].points[1].runtime_s, 0.0);
  EXPECT_GT(curves[0].points[1].speedup, 0.0);

  // The JSON section round-trips and strips away entirely (timing-only).
  const Json jscaling = Suite::scaling_json(curves);
  ASSERT_EQ(jscaling.items().size(), 1u);
  EXPECT_EQ(jscaling.items()[0].find("family")->as_string(), "multi_group");
  EXPECT_EQ(jscaling.items()[0].find("points")->items().size(), 2u);
  Json doc = Json::object();
  doc["schema"] = "x";
  doc["scaling"] = jscaling;
  EXPECT_EQ(strip_volatile(doc).find("scaling"), nullptr);

  EXPECT_FALSE(Suite::default_scaling_threads().empty());
  EXPECT_EQ(Suite::default_scaling_threads().front(), 1u);
}

}  // namespace
}  // namespace lmr::bench
