#include "bench_harness/suite.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "bench_harness/report.hpp"

namespace lmr::bench {
namespace {

SuiteOptions tiny_options() {
  SuiteOptions opts;
  opts.smoke = true;
  // Two cheap families: one generated sweep and the saturation probe.
  opts.families = {"obstacle_sweep", "saturated"};
  opts.threads = 2;
  return opts;
}

TEST(Suite, RunsSelectedFamilies) {
  const Suite suite(tiny_options());
  const SuiteResult result = suite.run();
  ASSERT_GE(result.cases.size(), 3u);  // two sweep densities + saturated
  for (const CaseOutcome& c : result.cases) {
    EXPECT_TRUE(c.family == "obstacle_sweep" || c.family == "saturated") << c.family;
    ASSERT_FALSE(c.groups.empty());
    for (const GroupOutcome& g : c.groups) {
      EXPECT_GT(g.members, 0u);
      EXPECT_GT(g.target, 0.0);
      EXPECT_GE(g.initial_max_error_pct, g.initial_avg_error_pct);
    }
  }
  EXPECT_TRUE(result.all_ok());
}

TEST(Suite, SaturatedCaseIsCleanButUnmatched) {
  SuiteOptions opts;
  opts.smoke = true;
  opts.families = {"saturated"};
  const SuiteResult result = Suite(opts).run();
  ASSERT_EQ(result.cases.size(), 1u);
  const CaseOutcome& c = result.cases[0];
  EXPECT_FALSE(c.matched());
  EXPECT_TRUE(c.drc_clean());
  EXPECT_TRUE(c.ok());  // no error gate on the capacity probe
  EXPECT_GT(c.worst_error_pct(), 10.0);
}

TEST(Suite, UnknownFamilyThrows) {
  SuiteOptions opts;
  opts.families = {"definitely_not_a_family"};
  EXPECT_THROW((void)Suite(opts).run(), std::out_of_range);
}

TEST(Suite, JsonFollowsSchema) {
  const SuiteOptions opts = tiny_options();
  const SuiteResult result = Suite(opts).run();
  const Json doc = Suite::to_json(result, opts);

  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), Suite::kSchema);
  ASSERT_NE(doc.find("run"), nullptr);
  EXPECT_NE(doc.find("run")->find("host"), nullptr);
  ASSERT_NE(doc.find("families"), nullptr);
  ASSERT_NE(doc.find("specs"), nullptr);
  EXPECT_EQ(doc.find("families")->items().size(), 2u);

  const Json& fam0 = doc.find("families")->items()[0];
  ASSERT_NE(fam0.find("cases"), nullptr);
  const Json& case0 = fam0.find("cases")->items()[0];
  for (const char* key : {"scenario", "seed", "ok", "groups", "runtime_s"}) {
    EXPECT_NE(case0.find(key), nullptr) << key;
  }
  const Json& group0 = case0.find("groups")->items()[0];
  for (const char* key :
       {"group", "target", "max_error_pct", "avg_error_pct", "matched", "runtime_s",
        "net_violations", "cross_violations"}) {
    EXPECT_NE(group0.find(key), nullptr) << key;
  }

  // Round trip through the parser.
  EXPECT_EQ(Json::parse(doc.dump(2)), doc);
}

TEST(Suite, RerunIsBitIdenticalModuloTiming) {
  // The tracked-results contract: same seeds in, byte-identical stripped
  // document out — including every routed metric.
  const SuiteOptions opts = tiny_options();
  const Json a = Suite::to_json(Suite(opts).run(), opts);
  const Json b = Suite::to_json(Suite(opts).run(), opts);
  EXPECT_EQ(strip_volatile(a).dump(2), strip_volatile(b).dump(2));
}

TEST(Suite, ThreadCountDoesNotChangeMetrics) {
  SuiteOptions seq = tiny_options();
  seq.threads = 1;
  SuiteOptions par = tiny_options();
  par.threads = 8;
  const Json a = Suite::to_json(Suite(seq).run(), seq);
  const Json b = Suite::to_json(Suite(par).run(), par);
  EXPECT_EQ(strip_volatile(a).dump(2), strip_volatile(b).dump(2));
}

}  // namespace
}  // namespace lmr::bench
