#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include "bench_harness/report.hpp"

/// Drift guard for the two strip_volatile implementations: the C++
/// `lmr::bench::strip_volatile` (report.cpp) and its script-side twin
/// `tools/strip_volatile.py` must produce byte-identical stripped documents
/// on the committed BENCH_results.json. CI compares results files with the
/// python script while the unit tests and the suite use the C++ one — if
/// either learns a volatile key the other doesn't, reproducibility checks
/// would pass on one side and fail on the other.

namespace lmr::bench {
namespace {

/// Capture a command's stdout; empty optional-style: ok=false when the
/// command could not run or exited non-zero.
bool run_command(const std::string& cmd, std::string& out) {
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return false;
  std::array<char, 4096> buf;
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    out.append(buf.data(), got);
  }
  return pclose(pipe) == 0;
}

TEST(StripVolatile, PythonTwinIsByteIdenticalOnTrackedResults) {
  const std::string src_dir = LMR_SOURCE_DIR;
  const std::string results = src_dir + "/BENCH_results.json";
  const std::string script = src_dir + "/tools/strip_volatile.py";

  std::string probe;
  if (!run_command("python3 --version 2>/dev/null", probe)) {
    GTEST_SKIP() << "python3 not available";
  }

  const Json doc = read_json_file(results);
  const std::string cpp_stripped = strip_volatile(doc).dump(2) + "\n";

  std::string py_stripped;
  ASSERT_TRUE(run_command("python3 '" + script + "' '" + results + "'", py_stripped))
      << "strip_volatile.py failed";
  EXPECT_EQ(cpp_stripped, py_stripped)
      << "C++ strip_volatile and tools/strip_volatile.py drifted apart";
}

TEST(StripVolatile, DrcOverlapSectionIsVolatile) {
  Json doc = Json::object();
  doc["schema"] = "test";
  Json cmp = Json::object();
  cmp["family"] = "large_group";
  cmp["barrier_runtime_s"] = 1.0;
  cmp["overlapped_runtime_s"] = 0.5;
  cmp["speedup"] = 2.0;
  Json section = Json::array();
  section.push_back(std::move(cmp));
  doc["drc_overlap"] = std::move(section);
  doc["extend_runtime_s"] = 0.25;
  doc["drc_barrier_runtime_s"] = 0.125;

  const Json stripped = strip_volatile(doc);
  EXPECT_EQ(stripped.find("drc_overlap"), nullptr);
  EXPECT_EQ(stripped.find("extend_runtime_s"), nullptr);
  EXPECT_EQ(stripped.find("drc_barrier_runtime_s"), nullptr);
  EXPECT_NE(stripped.find("schema"), nullptr);
}

TEST(StripVolatile, BackendSectionIsVolatile) {
  // Range-tree-vs-grid comparisons are pure wall clock: which backend wins
  // by how much is machine context, while the violations themselves are
  // backend-invariant (enforced by the clearance_backend tests) — strip the
  // whole section.
  Json doc = Json::object();
  doc["schema"] = "test";
  Json cmp = Json::object();
  cmp["family"] = "mega_board";
  cmp["range_tree_sweep_s"] = 2.0;
  cmp["grid_sweep_s"] = 1.0;
  cmp["speedup"] = 2.0;
  Json section = Json::array();
  section.push_back(std::move(cmp));
  doc["backend"] = std::move(section);
  doc["groups"] = 7;

  const Json stripped = strip_volatile(doc);
  EXPECT_EQ(stripped.find("backend"), nullptr);
  EXPECT_NE(stripped.find("schema"), nullptr);
  EXPECT_NE(stripped.find("groups"), nullptr);
}

TEST(StripVolatile, ServiceSectionIsVolatile) {
  // The multi-board replay section is pure timing + scheduling counters
  // (edits/sec, queue depths, batch sizes): thread count and dispatch
  // interleaving change every number, so the whole section strips.
  Json doc = Json::object();
  doc["schema"] = "test";
  Json storm = Json::object();
  storm["name"] = "service_storm/smoke-8x4";
  storm["all_equivalent"] = true;
  Json point = Json::object();
  point["threads"] = 4;
  point["replay_s"] = 0.25;
  point["edits_per_s"] = 128.0;
  Json points = Json::array();
  points.push_back(std::move(point));
  storm["points"] = std::move(points);
  Json section = Json::array();
  section.push_back(std::move(storm));
  doc["service"] = std::move(section);
  doc["groups"] = 7;

  const Json stripped = strip_volatile(doc);
  EXPECT_EQ(stripped.find("service"), nullptr);
  EXPECT_NE(stripped.find("schema"), nullptr);
  EXPECT_NE(stripped.find("groups"), nullptr);
}

TEST(StripVolatile, FaultStormSectionIsVolatile) {
  // Fault-storm payloads are retry/timeout/backoff counters and replay
  // timings; the dropped-vs-shed split even depends on dispatch timing.
  // The hard gates (end-state equivalence, fault gates) are enforced by
  // bench_suite's exit code, not by document comparison — strip it whole.
  Json doc = Json::object();
  doc["schema"] = "test";
  Json storm = Json::object();
  storm["name"] = "fault_storm/quarantine-4x4";
  storm["kind"] = "quarantine";
  storm["all_ok"] = true;
  Json point = Json::object();
  point["threads"] = 4;
  point["retries"] = 4;
  point["quarantines"] = 2;
  point["backoff_virtual_s"] = 0.07;
  Json points = Json::array();
  points.push_back(std::move(point));
  storm["points"] = std::move(points);
  Json section = Json::array();
  section.push_back(std::move(storm));
  doc["fault_storm"] = std::move(section);
  doc["groups"] = 7;

  const Json stripped = strip_volatile(doc);
  EXPECT_EQ(stripped.find("fault_storm"), nullptr);
  EXPECT_NE(stripped.find("schema"), nullptr);
  EXPECT_NE(stripped.find("groups"), nullptr);
}

}  // namespace
}  // namespace lmr::bench
