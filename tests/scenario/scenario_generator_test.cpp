#include "scenario/scenario_generator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "layout/drc_checker.hpp"
#include "pipeline/router.hpp"
#include "scenario/scenario_families.hpp"

namespace lmr::scenario {
namespace {

/// Byte-identical polyline comparison (no tolerance: determinism means the
/// exact same doubles).
void expect_identical(const geom::Polyline& a, const geom::Polyline& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
  }
}

void expect_identical(const geom::Polygon& a, const geom::Polygon& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
  }
}

ScenarioSpec busy_spec() {
  ScenarioSpec s;
  s.name = "test/busy";
  s.groups = 2;
  s.members_per_group = 4;
  s.diff_fraction = 0.5;
  s.corridor_length = 60.0;
  s.vias_per_band = 8;
  return s;
}

TEST(ScenarioGenerator, SameSpecAndSeedIsByteIdentical) {
  const ScenarioGenerator gen(busy_spec());
  const Scenario a = gen.generate(42);
  const Scenario b = gen.generate(42);

  expect_identical(a.layout.board(), b.layout.board());
  ASSERT_EQ(a.layout.obstacles().size(), b.layout.obstacles().size());
  for (std::size_t i = 0; i < a.layout.obstacles().size(); ++i) {
    expect_identical(a.layout.obstacles()[i].shape, b.layout.obstacles()[i].shape);
  }
  ASSERT_EQ(a.layout.traces().size(), b.layout.traces().size());
  for (const auto& [id, t] : a.layout.traces()) {
    expect_identical(t.path, b.layout.trace(id).path);
  }
  ASSERT_EQ(a.layout.pairs().size(), b.layout.pairs().size());
  for (const auto& [id, p] : a.layout.pairs()) {
    expect_identical(p.positive.path, b.layout.pair(id).positive.path);
    expect_identical(p.negative.path, b.layout.pair(id).negative.path);
  }
  ASSERT_EQ(a.layout.groups().size(), b.layout.groups().size());
  for (std::size_t g = 0; g < a.layout.groups().size(); ++g) {
    EXPECT_EQ(a.layout.groups()[g].name, b.layout.groups()[g].name);
    EXPECT_EQ(a.layout.groups()[g].target_length, b.layout.groups()[g].target_length);
    EXPECT_EQ(a.layout.groups()[g].members.size(), b.layout.groups()[g].members.size());
  }
}

TEST(ScenarioGenerator, DifferentSeedsDifferentObstacles) {
  const ScenarioGenerator gen(busy_spec());
  const Scenario a = gen.generate(1);
  const Scenario b = gen.generate(2);
  ASSERT_FALSE(a.layout.obstacles().empty());
  std::set<std::pair<double, double>> ca, cb;
  for (const auto& o : a.layout.obstacles()) {
    ca.insert({o.shape.centroid().x, o.shape.centroid().y});
  }
  for (const auto& o : b.layout.obstacles()) {
    cb.insert({o.shape.centroid().x, o.shape.centroid().y});
  }
  EXPECT_NE(ca, cb);
}

TEST(ScenarioGenerator, StructureMatchesSpec) {
  ScenarioSpec spec = busy_spec();
  const Scenario sc = ScenarioGenerator(spec).generate(7);
  ASSERT_EQ(sc.layout.groups().size(), 2u);
  for (const auto& g : sc.layout.groups()) {
    EXPECT_EQ(g.members.size(), 4u);
    EXPECT_DOUBLE_EQ(g.target_length, spec.target_fraction * spec.corridor_length);
    int diffs = 0;
    for (const auto& m : g.members) {
      if (m.kind == layout::MemberKind::Differential) ++diffs;
      EXPECT_NE(sc.layout.routable_area(m.id), nullptr);
    }
    EXPECT_EQ(diffs, 2);  // diff_fraction 0.5 of 4 members
  }
}

TEST(ScenarioGenerator, InitialGeometryIsDrcSane) {
  // Generated boards must start legal: no stub segments, obstacle
  // clearances met, every member inside its corridor.
  for (const std::uint64_t seed : {3u, 17u, 99u}) {
    const Scenario sc = ScenarioGenerator(busy_spec()).generate(seed);
    const layout::DrcChecker checker;
    for (const auto& [id, t] : sc.layout.traces()) {
      EXPECT_TRUE(checker.check_trace(t, sc.rules).empty()) << "seed " << seed;
      EXPECT_TRUE(
          checker.check_obstacles(t, sc.rules, sc.layout.obstacles()).empty())
          << "seed " << seed;
      EXPECT_TRUE(checker.check_containment(t, *sc.layout.routable_area(id)).empty())
          << "seed " << seed;
    }
  }
}

TEST(ScenarioGenerator, RotationPreservesLengths) {
  ScenarioSpec flat = busy_spec();
  ScenarioSpec tilted = flat;
  tilted.corridor_angle_deg = 30.0;
  const Scenario a = ScenarioGenerator(flat).generate(5);
  const Scenario b = ScenarioGenerator(tilted).generate(5);
  for (const auto& [id, t] : a.layout.traces()) {
    EXPECT_NEAR(t.path.length(), b.layout.trace(id).path.length(), 1e-9);
  }
  // And the rotated board is genuinely tilted.
  const auto& p0 = b.layout.board()[0];
  const auto& p1 = b.layout.board()[1];
  EXPECT_GT(std::abs(p1.y - p0.y), 1.0);
}

TEST(ScenarioGenerator, MultiDraPairsWidenPerSection) {
  ScenarioSpec spec;
  spec.name = "test/dra";
  spec.members_per_group = 1;
  spec.diff_fraction = 1.0;
  spec.dra_sections = 3;
  spec.dra_width_factor = 2.0;
  spec.band_height = 6.0;
  spec.vias_per_band = 0;
  const Scenario sc = ScenarioGenerator(spec).generate(11);
  ASSERT_EQ(sc.pair_rule_set.size(), 3u);
  EXPECT_LT(sc.pair_rule_set.front(), sc.pair_rule_set.back());
  ASSERT_EQ(sc.layout.pairs().size(), 1u);
  const auto& pair = sc.layout.pairs().begin()->second;
  // Separation at the run's start vs end follows the section pitches.
  const double sep_start =
      std::abs(pair.positive.path.front().y - pair.negative.path.front().y);
  const double sep_end =
      std::abs(pair.positive.path.back().y - pair.negative.path.back().y);
  EXPECT_NEAR(sep_start, spec.pair_pitch, 1e-9);
  EXPECT_NEAR(sep_end, spec.pair_pitch * spec.dra_width_factor, 1e-9);
}

TEST(ScenarioFamilies, StandardFamiliesCoverTheRoadmapAxes) {
  const auto fams = standard_families(true);
  std::set<std::string> names;
  for (const auto& f : fams) {
    EXPECT_FALSE(f.cases.empty()) << f.name;
    names.insert(f.name);
  }
  for (const char* required :
       {"multi_group", "mixed_se_diff", "pair_corridors", "obstacle_sweep", "saturated"}) {
    EXPECT_TRUE(names.count(required)) << required;
  }
  EXPECT_THROW((void)family("no_such_family", true), std::out_of_range);
}

TEST(ScenarioFamilies, Table1FullyGatedOnDrc) {
  // The rule-aware restore closed the case-5 DRC debt: every Table I case —
  // including the dense differential one — now expects a clean oracle.
  for (const bool smoke : {false, true}) {
    const Family f = family("table1", smoke);
    for (const FamilyCase& fc : f.cases) {
      EXPECT_TRUE(fc.expect_drc_clean) << fc.spec.name;
    }
  }
}

TEST(ScenarioFamilies, SmokeVariantsAreSmaller) {
  std::size_t smoke_members = 0, full_members = 0;
  for (const auto& f : standard_families(true)) {
    for (const auto& c : f.cases) {
      smoke_members += static_cast<std::size_t>(c.spec.groups) *
                       static_cast<std::size_t>(c.spec.members_per_group);
    }
  }
  for (const auto& f : standard_families(false)) {
    for (const auto& c : f.cases) {
      full_members += static_cast<std::size_t>(c.spec.groups) *
                      static_cast<std::size_t>(c.spec.members_per_group);
    }
  }
  EXPECT_LT(smoke_members, full_members);
}

TEST(ScenarioFamilies, SaturatedScenarioSaturatesCleanly) {
  // The exported saturation reproduction: route it end to end; matching is
  // impossible but the meander must be DRC-clean (the regression this
  // PR's height-solver fix addresses at system level).
  const Scenario sc = ScenarioGenerator(saturated_corridor_spec()).generate(7601);
  pipeline::RouterOptions opts;
  opts.extender.l_disc = 0.5;
  opts.extender.max_width_steps = 24;
  const pipeline::Router router(sc.rules, opts);
  layout::Layout layout = sc.layout;
  const pipeline::RouteResult res = router.route(layout);
  EXPECT_FALSE(res.matched());
  EXPECT_TRUE(res.drc_clean()) << res.violation_count() << " violations";
  EXPECT_GT(res.group.members[0].final_length, res.group.members[0].initial_length);
}

TEST(ScenarioGenerator, DegenerateSpecThrows) {
  ScenarioSpec s;
  s.members_per_group = 0;
  EXPECT_THROW(ScenarioGenerator{s}, std::invalid_argument);
}

}  // namespace
}  // namespace lmr::scenario
