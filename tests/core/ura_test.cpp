#include "core/ura.hpp"

#include <gtest/gtest.h>

namespace lmr::core {
namespace {

TEST(UraBorders, OuterBox) {
  const UraBorders b{2.0, 8.0, 0.5, 4.0};
  const geom::Box o = b.outer();
  EXPECT_DOUBLE_EQ(o.lo.x, 1.5);
  EXPECT_DOUBLE_EQ(o.hi.x, 8.5);
  EXPECT_DOUBLE_EQ(o.lo.y, 0.0);
  EXPECT_DOUBLE_EQ(o.hi.y, 4.0);
}

TEST(UraBorders, InnerBox) {
  const UraBorders b{2.0, 8.0, 0.5, 4.0};
  const geom::Box i = b.inner();
  EXPECT_DOUBLE_EQ(i.lo.x, 2.5);
  EXPECT_DOUBLE_EQ(i.hi.x, 7.5);
  EXPECT_DOUBLE_EQ(i.hi.y, 3.0);
  EXPECT_FALSE(b.inner_empty());
}

TEST(UraBorders, InnerEmptyWhenNarrow) {
  // Width 0.8 <= 2*half -> no inner region.
  const UraBorders b{2.0, 2.8, 0.5, 4.0};
  EXPECT_TRUE(b.inner_empty());
}

TEST(UraBorders, InnerEmptyWhenLow) {
  const UraBorders b{2.0, 8.0, 0.5, 0.9};
  EXPECT_TRUE(b.inner_empty());
}

TEST(UraBorders, PatternHeightEq10) {
  // h = max(0, hob - half), Eq. 10.
  EXPECT_DOUBLE_EQ((UraBorders{0, 1, 0.5, 4.0}).pattern_height(), 3.5);
  EXPECT_DOUBLE_EQ((UraBorders{0, 1, 0.5, 0.3}).pattern_height(), 0.0);
}

TEST(UraOfSegment, AxisAligned) {
  const geom::Polygon u = ura_of_segment({{2, 3}, {8, 3}}, 0.5);
  ASSERT_EQ(u.size(), 4u);
  const geom::Box b = u.bbox();
  // Extends half beyond the endpoints and half on each side.
  EXPECT_DOUBLE_EQ(b.lo.x, 1.5);
  EXPECT_DOUBLE_EQ(b.hi.x, 8.5);
  EXPECT_DOUBLE_EQ(b.lo.y, 2.5);
  EXPECT_DOUBLE_EQ(b.hi.y, 3.5);
}

TEST(UraOfSegment, Rotated45) {
  const geom::Polygon u = ura_of_segment({{0, 0}, {10, 10}}, 0.5);
  EXPECT_NEAR(u.area(), (10.0 * std::sqrt(2.0) + 1.0) * 1.0, 1e-9);
  // Center of the segment must be inside.
  EXPECT_TRUE(u.contains({5, 5}));
  // A point 1.0 away perpendicular must be outside.
  EXPECT_FALSE(u.contains({5 - 1.0, 5 + 1.0}));
}

TEST(SelfUras, SkipsRequestedSegment) {
  const geom::Polyline path{{{0, 0}, {10, 0}, {10, 10}, {20, 10}}};
  const auto uras = self_uras(path, 1, 0.5, 1.0);
  EXPECT_EQ(uras.size(), 2u);
}

TEST(SelfUras, KeepAllWithSentinel) {
  const geom::Polyline path{{{0, 0}, {10, 0}, {10, 10}}};
  const auto uras = self_uras(path, std::numeric_limits<std::size_t>::max(), 0.5, 1.0);
  EXPECT_EQ(uras.size(), 2u);
}

TEST(SelfUras, AdjacentTrimmedAtJoint) {
  const geom::Polyline path{{{0, 0}, {10, 0}, {10, 10}, {20, 10}}};
  const double trim = 2.0;
  const auto uras = self_uras(path, 1, 0.5, trim);
  ASSERT_EQ(uras.size(), 2u);
  // First segment's URA is trimmed at the (10,0) end: its bbox must stop at
  // x = 10 - trim + half = 8.5.
  EXPECT_NEAR(uras[0].bbox().hi.x, 10.0 - trim + 0.5, 1e-9);
  // Third segment trimmed at the (10,10) end: starts at x = 10 + trim - half.
  EXPECT_NEAR(uras[1].bbox().lo.x, 10.0 + trim - 0.5, 1e-9);
}

TEST(SelfUras, DegenerateSegmentsDropped) {
  const geom::Polyline path{{{0, 0}, {0, 0}, {10, 0}}};
  const auto uras = self_uras(path, std::numeric_limits<std::size_t>::max(), 0.5, 1.0);
  EXPECT_EQ(uras.size(), 1u);
}

}  // namespace
}  // namespace lmr::core
