#include "core/trace_extender.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "layout/drc_checker.hpp"

namespace lmr::core {
namespace {

using geom::Point;
using geom::Polygon;
using geom::Polyline;

drc::DesignRules rules() {
  drc::DesignRules r;
  r.gap = 1.0;
  r.obs = 0.5;
  r.protect = 0.5;
  r.trace_width = 0.0;
  return r;
}

layout::RoutableArea corridor(double x0, double x1, double y0, double y1) {
  layout::RoutableArea a;
  a.outline = Polygon::rect({{x0, y0}, {x1, y1}});
  return a;
}

layout::Trace straight_trace(double y = 0.0, double x0 = 0.0, double x1 = 30.0) {
  layout::Trace t;
  t.id = 1;
  t.path = Polyline{{{x0, y}, {x1, y}}};
  return t;
}

void expect_clean(const layout::Trace& t, const drc::DesignRules& r,
                  const layout::RoutableArea& area) {
  layout::DrcChecker checker;
  const auto v1 = checker.check_trace(t, r);
  EXPECT_TRUE(v1.empty()) << (v1.empty() ? "" : layout::to_string(v1[0].kind));
  std::vector<layout::Obstacle> obs;
  for (const auto& h : area.holes) obs.push_back({h, "hole"});
  const auto v2 = checker.check_obstacles(t, r, obs);
  EXPECT_TRUE(v2.empty()) << (v2.empty() ? "" : v2[0].note);
  const auto v3 = checker.check_containment(t, area);
  EXPECT_TRUE(v3.empty()) << (v3.empty() ? "" : v3[0].note);
}

TEST(TraceExtender, ReachesTargetInOpenCorridor) {
  auto area = corridor(-1, 31, -6, 6);
  layout::Trace t = straight_trace();
  TraceExtender ext(rules(), area);
  const ExtendStats stats = ext.extend(t, 60.0);
  EXPECT_TRUE(stats.reached);
  EXPECT_NEAR(t.path.length(), 60.0, 1e-5);
  EXPECT_GT(stats.patterns_inserted, 0);
  expect_clean(t, rules(), area);
}

TEST(TraceExtender, EndpointsPreserved) {
  auto area = corridor(-1, 31, -6, 6);
  layout::Trace t = straight_trace();
  TraceExtender ext(rules(), area);
  ext.extend(t, 50.0);
  EXPECT_TRUE(geom::almost_equal(t.path.front(), {0.0, 0.0}));
  EXPECT_TRUE(geom::almost_equal(t.path.back(), {30.0, 0.0}));
}

TEST(TraceExtender, TargetEqualToLengthIsNoop) {
  auto area = corridor(-1, 31, -6, 6);
  layout::Trace t = straight_trace();
  TraceExtender ext(rules(), area);
  const ExtendStats stats = ext.extend(t, 30.0);
  EXPECT_TRUE(stats.reached);
  EXPECT_EQ(stats.patterns_inserted, 0);
  EXPECT_DOUBLE_EQ(t.path.length(), 30.0);
}

TEST(TraceExtender, TargetBelowLengthThrows) {
  auto area = corridor(-1, 31, -6, 6);
  layout::Trace t = straight_trace();
  TraceExtender ext(rules(), area);
  EXPECT_THROW(ext.extend(t, 10.0), std::invalid_argument);
}

TEST(TraceExtender, NarrowCorridorLimitsGain) {
  // Corridor only 1.6 tall around the trace: max height above/below is
  // 1.6/2 - half = 0.3 < protect -> nothing fits above, nothing below.
  auto area = corridor(-1, 31, -0.8, 0.8);
  layout::Trace t = straight_trace();
  TraceExtender ext(rules(), area);
  const ExtendStats stats = ext.extend(t, 60.0);
  EXPECT_FALSE(stats.reached);
  EXPECT_DOUBLE_EQ(t.path.length(), 30.0);
}

TEST(TraceExtender, AsymmetricCorridorUsesOpenSide) {
  // Only the lower side has room.
  auto area = corridor(-1, 31, -8, 0.7);
  layout::Trace t = straight_trace();
  TraceExtender ext(rules(), area);
  ext.extend(t, 55.0);
  EXPECT_NEAR(t.path.length(), 55.0, 1e-5);
  for (const Point& p : t.path.points()) EXPECT_LE(p.y, 0.7 + 1e-9);
  expect_clean(t, rules(), area);
}

TEST(TraceExtender, AvoidsObstacles) {
  auto area = corridor(-1, 31, -6, 6);
  area.holes.push_back(Polygon::rect({{8, 1}, {12, 5}}));
  area.holes.push_back(Polygon::rect({{18, -5}, {22, -1}}));
  layout::Trace t = straight_trace();
  TraceExtender ext(rules(), area);
  const ExtendStats stats = ext.extend(t, 58.0);
  EXPECT_TRUE(stats.reached) << "final " << t.path.length();
  expect_clean(t, rules(), area);
}

TEST(TraceExtender, ExhaustiveOracleAgreesDuringFullRun) {
  auto area = corridor(-1, 31, -6, 6);
  area.holes.push_back(Polygon::rect({{9, 1.2}, {11, 3.0}}));
  area.holes.push_back(Polygon::rect({{15, -3.0}, {17, -1.2}}));
  layout::Trace t = straight_trace();
  TraceExtender ext(rules(), area);
  ExtenderConfig cfg;
  cfg.exhaustive_checks = true;
  const ExtendStats stats = ext.extend(t, 55.0, cfg);
  EXPECT_EQ(stats.oracle_mismatches, 0);
  EXPECT_TRUE(stats.reached);
  expect_clean(t, rules(), area);
}

TEST(TraceExtender, AnyDirectionDiagonalTrace) {
  // 30-degree corridor: everything must work in the rotated frame.
  const double c = std::cos(M_PI / 6), s = std::sin(M_PI / 6);
  const geom::Vec2 dir{c, s};
  const geom::Vec2 n{-s, c};
  const Point a{0, 0};
  const Point b = a + dir * 30.0;
  layout::RoutableArea area;
  area.outline = Polygon{{a - dir - n * 6.0, b + dir - n * 6.0, b + dir + n * 6.0,
                          a - dir + n * 6.0}};
  layout::Trace t;
  t.id = 1;
  t.path = Polyline{{a, b}};
  TraceExtender ext(rules(), area);
  const ExtendStats stats = ext.extend(t, 55.0);
  EXPECT_TRUE(stats.reached) << "final " << t.path.length();
  EXPECT_NEAR(t.path.length(), 55.0, 1e-5);
  expect_clean(t, rules(), area);
}

TEST(TraceExtender, MultiSegmentLShapedTrace) {
  layout::RoutableArea area;
  area.outline = Polygon::rect({{-6, -6}, {26, 26}});
  layout::Trace t;
  t.id = 1;
  t.path = Polyline{{{0, 0}, {20, 0}, {20, 20}}};
  TraceExtender ext(rules(), area);
  const ExtendStats stats = ext.extend(t, 70.0);
  EXPECT_TRUE(stats.reached) << "final " << t.path.length();
  expect_clean(t, rules(), area);
  // Original corner must still exist (preserved original routing).
  bool corner_found = false;
  for (const Point& p : t.path.points()) {
    if (geom::almost_equal(p, {20.0, 0.0}, 1e-7)) corner_found = true;
  }
  EXPECT_TRUE(corner_found);
}

TEST(TraceExtender, MaximizeFillsCorridor) {
  auto area = corridor(-1, 31, -4, 4);
  layout::Trace t = straight_trace();
  TraceExtender ext(rules(), area);
  const ExtendStats stats = ext.maximize(t);
  EXPECT_GT(t.path.length(), 2.0 * stats.initial_length);
  expect_clean(t, rules(), area);
}

TEST(TraceExtender, MaximizeWithDenseVias) {
  auto area = corridor(-1, 31, -5, 5);
  for (int i = 0; i < 5; ++i) {
    area.holes.push_back(
        Polygon::regular({4.0 + 5.5 * i, 2.5}, 0.8, 8, M_PI / 8));
    area.holes.push_back(
        Polygon::regular({6.5 + 5.5 * i, -2.5}, 0.8, 8, M_PI / 8));
  }
  layout::Trace t = straight_trace();
  TraceExtender ext(rules(), area);
  ext.maximize(t);
  EXPECT_GT(t.path.length(), 30.0);
  expect_clean(t, rules(), area);
}

TEST(TraceExtender, MiteredStyleProducesObtuseCorners) {
  drc::DesignRules r = rules();
  r.miter = 0.25;
  auto area = corridor(-1, 31, -6, 6);
  layout::Trace t = straight_trace();
  TraceExtender ext(r, area);
  ExtenderConfig cfg;
  cfg.style = PatternStyle::Mitered;
  const ExtendStats stats = ext.extend(t, 50.0, cfg);
  EXPECT_TRUE(stats.reached) << "final " << t.path.length();
  // No corner may turn by >= 90 degrees.
  layout::DrcChecker checker;
  const auto v = checker.check_trace(t, r);
  for (const auto& viol : v) {
    EXPECT_NE(viol.kind, layout::ViolationKind::CornerAngle) << "corner at " << viol.index_a;
  }
}

TEST(TraceExtender, StatsAreConsistent) {
  auto area = corridor(-1, 31, -6, 6);
  layout::Trace t = straight_trace();
  TraceExtender ext(rules(), area);
  const ExtendStats stats = ext.extend(t, 45.0);
  EXPECT_DOUBLE_EQ(stats.initial_length, 30.0);
  EXPECT_NEAR(stats.final_length, 45.0, 1e-5);
  EXPECT_DOUBLE_EQ(stats.target, 45.0);
  EXPECT_GE(stats.dp_runs, stats.segments_processed);
}

TEST(TraceExtender, RepeatedExtensionIsStable) {
  // Extend in two steps: 30 -> 40 -> 50; the second call meanders the
  // already-meandered trace (patterns on patterns).
  auto area = corridor(-1, 31, -8, 8);
  layout::Trace t = straight_trace();
  TraceExtender ext(rules(), area);
  EXPECT_TRUE(ext.extend(t, 40.0).reached);
  EXPECT_TRUE(ext.extend(t, 50.0).reached) << "len " << t.path.length();
  EXPECT_NEAR(t.path.length(), 50.0, 1e-5);
  expect_clean(t, rules(), area);
}

TEST(TraceExtender, SaturatedCorridorStaysDrcClean) {
  // Regression (ROADMAP "extender saturation corner"): a far-unreachable
  // target saturates the corridor; the meander must stay legal. The fast
  // height solver used to approve patterns whose hat collided with an
  // adjacent sub-`half` stub (whose untrimmed URA crosses the base line and
  // is invisible to the node-based shrinking), leaving the quickstart
  // geometry with SelfGap fold-backs at target 1000.
  drc::DesignRules r = rules();
  r.trace_width = 0.2;
  layout::RoutableArea area;
  area.outline = Polygon{{{-2, -6}, {42, -6}, {42, 12}, {-2, 12}}};
  area.holes.push_back(Polygon::regular({12, 2.5}, 1.0, 8));
  area.holes.push_back(Polygon::regular({24, -2.5}, 1.0, 8));
  layout::Trace t;
  t.id = 1;
  t.width = r.trace_width;
  t.path = Polyline{{{0, 0}, {28, 0}, {40, 6}}};

  TraceExtender ext(r, area);
  const ExtendStats stats = ext.extend(t, 1000.0);
  EXPECT_FALSE(stats.reached);
  EXPECT_GT(stats.final_length, 300.0);  // saturation, not a stall
  EXPECT_LT(stats.final_length, 1000.0);
  expect_clean(t, r, area);

  // No fold-backs: consecutive vertices never repeat two apart.
  const auto& pts = t.path.points();
  for (std::size_t i = 0; i + 2 < pts.size(); ++i) {
    EXPECT_FALSE(geom::almost_equal(pts[i], pts[i + 2], 1e-9))
        << "fold-back at vertex " << i;
  }
}

TEST(TraceExtender, SaturatedRunMatchesExhaustiveOracle) {
  // The same saturated run with per-height oracle validation: the fast
  // shrinking path must never accept a height the exhaustive check rejects.
  drc::DesignRules r = rules();
  layout::RoutableArea area;
  area.outline = Polygon::rect({{-1, -4}, {41, 4}});
  area.holes.push_back(Polygon::regular({20, 1.5}, 0.8, 8));
  layout::Trace t = straight_trace(0.0, 0.0, 40.0);
  TraceExtender ext(r, area);
  ExtenderConfig cfg;
  cfg.exhaustive_checks = true;
  const ExtendStats stats = ext.extend(t, 500.0, cfg);
  EXPECT_FALSE(stats.reached);
  EXPECT_EQ(stats.oracle_mismatches, 0);
  expect_clean(t, r, area);
}

TEST(TraceExtender, RestoreMarginKeepsPatternsAwayFromWalls) {
  // Restore-feasibility hook: with a clearance margin m every pattern URA
  // must stay m further from walls/obstacles, exactly the room the restored
  // sub-traces will consume at a wider DRA pitch. The meandered trace with
  // margin must therefore stay 1.0 lower than the unconstrained one.
  auto area = corridor(-1, 31, -6, 6);
  layout::Trace plain_t = straight_trace();
  TraceExtender plain_ext(rules(), area);
  const ExtendStats plain_stats = plain_ext.maximize(plain_t);

  layout::Trace t = straight_trace();
  TraceExtender ext(rules(), area);
  ExtenderConfig cfg;
  cfg.restore_margin = [](const geom::Segment&) {
    drc::RestoreMargin m;
    m.clearance = 1.0;
    m.spacing = 2.0;
    return m;
  };
  const ExtendStats stats = ext.maximize(t, cfg);
  EXPECT_GT(stats.patterns_inserted, 0);
  double max_reach = 0.0, plain_reach = 0.0;
  for (const Point& p : t.path.points()) max_reach = std::max(max_reach, std::abs(p.y));
  for (const Point& p : plain_t.path.points()) {
    plain_reach = std::max(plain_reach, std::abs(p.y));
  }
  // The restored sub-traces of a hypothetical pair 2.0 wider than the base
  // pitch stay inside the area: every point keeps >= 1.0 of slack beyond
  // the plain URA clearance (half = 0.5) to the walls at +/-6 — the plain
  // run is free to use that band.
  EXPECT_LE(max_reach, 6.0 - 0.5 - 1.0 + 1e-9);
  EXPECT_GT(plain_reach, max_reach);
  EXPECT_GE(plain_stats.final_length, stats.final_length);
  expect_clean(t, rules(), area);
}

TEST(TraceExtender, RestoreMarginSpacingWidensPatterns) {
  // The spacing margin feeds the DP gap: hats and same-side feet must be
  // wide enough to survive the inner sub-trace shrinking by the local pitch.
  auto area = corridor(-1, 61, -8, 8);
  layout::Trace t = straight_trace(0.0, 0.0, 60.0);
  TraceExtender ext(rules(), area);
  ExtenderConfig cfg;
  const double extra = 2.0;
  cfg.restore_margin = [extra](const geom::Segment&) {
    drc::RestoreMargin m;
    m.clearance = extra / 2.0;
    m.spacing = extra;
    return m;
  };
  const ExtendStats stats = ext.extend(t, 90.0, cfg);
  EXPECT_GT(stats.patterns_inserted, 0);
  // Every pair of same-side parallel vertical legs keeps the widened gap
  // (effective gap 1.0 + spacing 2.0), so the -pitch shrink of a restore at
  // base + 2.0 cannot close them under the base gap rule.
  const auto& path = t.path;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    for (std::size_t j = i + 2; j + 1 < path.size(); ++j) {
      const geom::Segment a = path.segment(i);
      const geom::Segment b = path.segment(j);
      if (a.degenerate() || b.degenerate()) continue;
      if (std::abs(a.unit().x) > 1e-9 || std::abs(b.unit().x) > 1e-9) continue;
      // Vertical legs with overlapping y spans: the DP's gap transitions.
      const double lo = std::max(std::min(a.a.y, a.b.y), std::min(b.a.y, b.b.y));
      const double hi = std::min(std::max(a.a.y, a.b.y), std::max(b.a.y, b.b.y));
      if (hi - lo <= 1e-9) continue;
      EXPECT_GE(std::abs(a.a.x - b.a.x), 1.0 + extra - 1e-6)
          << "legs " << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace lmr::core
