#include "core/height_solver.hpp"

#include <gtest/gtest.h>

#include <random>

namespace lmr::core {
namespace {

using geom::Point;
using geom::Polygon;

constexpr double kHalf = 0.5;

LocalPoly obstacle(Polygon p) {
  LocalPoly lp;
  lp.poly = std::move(p);
  lp.kind = EnvKind::Obstacle;
  return lp;
}

LocalPoly wall(Polygon p) {
  LocalPoly lp;
  lp.poly = std::move(p);
  lp.kind = EnvKind::AreaOutline;
  return lp;
}

TEST(HeightSolver, FreeSpaceReturnsRequest) {
  HeightSolver s({}, kHalf);
  EXPECT_DOUBLE_EQ(s.max_height(2.0, 8.0, 5.0), 5.0);
}

TEST(HeightSolver, ZeroRequestOrDegenerateFeet) {
  HeightSolver s({}, kHalf);
  EXPECT_DOUBLE_EQ(s.max_height(2.0, 8.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.max_height(5.0, 5.0, 3.0), 0.0);
}

TEST(HeightSolver, BarrierAboveCapsViaSides) {
  // Wide solid barrier whose bottom edge crosses both URA sides at y = 3
  // (its corner nodes lie outside the border, so only Eq. 11 can cap it).
  HeightSolver s({obstacle(Polygon::rect({{-100, 3}, {100, 10}}))}, kHalf);
  const double h = s.max_height(2.0, 8.0, 5.0);
  // hob capped at 3 -> h = 3 - half.
  EXPECT_NEAR(h, 3.0 - kHalf, 1e-9);
  EXPECT_TRUE(s.valid_exhaustive(2.0, 8.0, h));
  EXPECT_FALSE(s.valid_exhaustive(2.0, 8.0, h + 0.01));
}

TEST(HeightSolver, EnclosingAreaOutlineAccepted) {
  // The routable-area outline surrounds the pattern: valid, no capping from
  // the far walls.
  HeightSolver s({wall(Polygon::rect({{-5, -5}, {30, 20}}))}, kHalf);
  const double h = s.max_height(2.0, 8.0, 5.0);
  EXPECT_DOUBLE_EQ(h, 5.0);
  EXPECT_TRUE(s.valid_exhaustive(2.0, 8.0, h));
}

TEST(HeightSolver, AreaOutlineTopCaps) {
  // Outline top edge at y = 4 crosses the URA sides: pattern stays inside.
  HeightSolver s({wall(Polygon::rect({{-5, -5}, {30, 4}}))}, kHalf);
  const double h = s.max_height(2.0, 8.0, 6.0);
  EXPECT_NEAR(h, 4.0 - kHalf, 1e-9);
  EXPECT_TRUE(s.valid_exhaustive(2.0, 8.0, h));
  EXPECT_FALSE(s.valid_exhaustive(2.0, 8.0, h + 0.01));
}

TEST(HeightSolver, ObstacleWithNodesInsideCapsViaHat) {
  // Small obstacle hanging into the URA from above: nodes at y=2 inside,
  // nodes at y=6 outside the initial outer border (hob_init = 5.5).
  HeightSolver s({obstacle(Polygon::rect({{4, 2}, {6, 6}}))}, kHalf);
  const double h = s.max_height(2.0, 8.0, 5.0);
  EXPECT_NEAR(h, 2.0 - kHalf, 1e-9);
  EXPECT_TRUE(s.valid_exhaustive(2.0, 8.0, h));
}

TEST(HeightSolver, EnclosableObstacleIsRoutedAround) {
  // Obstacle fully inside the inner border: pattern may wrap it.
  // Feet 2 and 8, half 0.5 -> inner x in [2.5, 7.5]; request 5 -> inner top 4.5.
  HeightSolver s({obstacle(Polygon::rect({{4, 1}, {6, 3}}))}, kHalf);
  const double h = s.max_height(2.0, 8.0, 5.0);
  EXPECT_DOUBLE_EQ(h, 5.0);
  EXPECT_TRUE(s.valid_exhaustive(2.0, 8.0, h));
}

TEST(HeightSolver, ObstacleInClearanceBandForcesLowPattern) {
  // Obstacle next to the left leg (x in [2.1, 2.6] intersects the band
  // [1.5, 2.5]): cannot be enclosed, pattern must stay below it.
  HeightSolver s({obstacle(Polygon::rect({{2.1, 2.0}, {2.6, 3.0}}))}, kHalf);
  const double h = s.max_height(2.0, 8.0, 5.0);
  EXPECT_NEAR(h, 2.0 - kHalf, 1e-9);
  EXPECT_TRUE(s.valid_exhaustive(2.0, 8.0, h));
}

TEST(HeightSolver, WallNeverEnclosable) {
  // Same geometry as the enclosable obstacle but marked as wall: the hat
  // must stay below it.
  HeightSolver s({wall(Polygon::rect({{4, 1}, {6, 3}}))}, kHalf);
  const double h = s.max_height(2.0, 8.0, 5.0);
  EXPECT_NEAR(h, 1.0 - kHalf, 1e-9);
}

TEST(HeightSolver, SelfUraNeverEnclosable) {
  LocalPoly lp;
  lp.poly = Polygon::rect({{4, 1}, {6, 3}});
  lp.kind = EnvKind::SelfUra;
  HeightSolver s({lp}, kHalf);
  EXPECT_NEAR(s.max_height(2.0, 8.0, 5.0), 0.5, 1e-9);
}

TEST(HeightSolver, NarrowPatternCannotEnclose) {
  // Feet 2 and 3 (width 1 = 2*half): inner border empty -> obstacle inside
  // the outer border forces the hat below it even though it is small.
  HeightSolver s({obstacle(Polygon::rect({{2.2, 1.5}, {2.8, 2.0}}))}, kHalf);
  const double h = s.max_height(2.0, 3.0, 5.0);
  EXPECT_NEAR(h, 1.5 - kHalf, 1e-9);
}

TEST(HeightSolver, IterativeHatShrink) {
  // Two stacked obstacles: shrinking below the top one exposes the lower
  // one as partially inside (Fig. 7's iteration).
  HeightSolver s({obstacle(Polygon::rect({{4, 4}, {6, 9}})),
                  obstacle(Polygon::rect({{3, 2}, {4.5, 4.5}}))},
                 kHalf);
  const double h = s.max_height(2.0, 8.0, 8.0);
  EXPECT_NEAR(h, 2.0 - kHalf, 1e-9);
  EXPECT_TRUE(s.valid_exhaustive(2.0, 8.0, h));
}

TEST(HeightSolver, InnerBorderIterationFig8) {
  // An obstacle fully inside the inner border at the initial request, plus
  // one in the clearance band higher up: shrinking for the second drags the
  // inner border down past the first, which must then also be cleared.
  HeightSolver s({obstacle(Polygon::rect({{4.0, 3.2}, {6.0, 3.8}})),   // encloseable at h=5
                  obstacle(Polygon::rect({{2.1, 4.2}, {2.4, 4.4}}))},  // band violator
                 kHalf);
  const double h = s.max_height(2.0, 8.0, 5.0);
  // After shrinking below the band violator (hob=4.2), inner top = 3.2 and
  // the first obstacle (top y=3.8) pokes out -> shrink below it (hob=3.2),
  // h = 3.2 - 0.5.
  EXPECT_NEAR(h, 3.2 - kHalf, 1e-9);
  EXPECT_TRUE(s.valid_exhaustive(2.0, 8.0, h));
}

TEST(HeightSolver, TouchingClearanceIsLegal) {
  // Obstacle bottom exactly half above the requested hat: h = request OK.
  HeightSolver s({obstacle(Polygon::rect({{4, 3.5}, {6, 5}}))}, kHalf);
  const double h = s.max_height(2.0, 8.0, 3.0);
  EXPECT_NEAR(h, 3.0, 1e-9);
  EXPECT_TRUE(s.valid_exhaustive(2.0, 8.0, h));
}

TEST(HeightSolver, ObstacleBeyondSidesIgnored) {
  HeightSolver s({obstacle(Polygon::rect({{20, 0}, {22, 10}}))}, kHalf);
  EXPECT_DOUBLE_EQ(s.max_height(2.0, 8.0, 5.0), 5.0);
}

TEST(HeightSolver, ForSegmentTransformsEnvironment) {
  // Global environment with a wall above a 45-degree segment.
  Environment env;
  // Segment from (0,0) to (10,10); wall parallel to it on the upper-left
  // side at perpendicular distance 2.
  const geom::Vec2 n{-std::sqrt(0.5), std::sqrt(0.5)};  // left normal
  geom::Polygon wall_poly{{geom::Point{0, 0} + n * 2.0, geom::Point{10, 10} + n * 2.0,
                           geom::Point{10, 10} + n * 5.0, geom::Point{0, 0} + n * 5.0}};
  env.add_static(wall_poly, EnvKind::AreaOutline);
  env.build_index();
  const geom::Segment seg{{0, 0}, {10, 10}};
  const HeightSolver up = HeightSolver::for_segment(env, seg, +1, 10.0, kHalf);
  const double h = up.max_height(3.0, 9.0, 8.0);
  EXPECT_NEAR(h, 2.0 - kHalf, 1e-9);
  // The other side is free.
  const HeightSolver down = HeightSolver::for_segment(env, seg, -1, 10.0, kHalf);
  EXPECT_DOUBLE_EQ(down.max_height(3.0, 9.0, 8.0), 8.0);
}

TEST(HeightSolver, ExhaustiveOracleAgreesOnRandomScenes) {
  // Property: the fast shrinking result is always valid per the oracle, and
  // on scenes without enclosable obstacles it is maximal (validity is
  // monotone there).
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> ux(0.0, 20.0);
  std::uniform_real_distribution<double> uy(1.2, 9.0);
  std::uniform_real_distribution<double> usz(0.8, 3.0);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<LocalPoly> polys;
    const int n_obs = 1 + static_cast<int>(trial % 4);
    for (int k = 0; k < n_obs; ++k) {
      const double x = ux(rng), y = uy(rng), w = usz(rng), hgt = usz(rng);
      polys.push_back(obstacle(Polygon::rect({{x, y}, {x + w, y + hgt}})));
    }
    HeightSolver s(std::move(polys), kHalf);
    const double x0 = 2.0, x1 = 2.0 + 2.0 + (trial % 5);
    const double h = s.max_height(x0, x1, 7.5);
    if (h > 0.0) {
      EXPECT_TRUE(s.valid_exhaustive(x0, x1, h)) << "trial " << trial << " h=" << h;
    }
    // Maximality probe: a slightly taller pattern must be invalid unless the
    // request itself was granted or the taller pattern legally encloses
    // obstacles (possible in non-monotone scenes).
    if (h > 0.0 && h < 7.5 - 1e-9) {
      const bool taller_valid = s.valid_exhaustive(x0, x1, h + 0.05);
      if (taller_valid) {
        // Must be a non-monotone enclosure case: verify some obstacle is
        // enclosed by the taller pattern.
        const UraBorders taller{x0, x1, kHalf, h + 0.05 + kHalf};
        bool encloses = false;
        for (const LocalPoly& lp : s.polys()) {
          bool inside = true;
          for (const Point& p : lp.poly.points()) {
            inside &= taller.inner().contains(p, 1e-9);
          }
          encloses |= inside;
        }
        EXPECT_TRUE(encloses) << "trial " << trial;
      }
    }
  }
}

}  // namespace
}  // namespace lmr::core
