/// \file contract_release_test.cpp
/// Release (unchecked) semantics of the contract layer: the macros must
/// compile to nothing — no evaluation, no side effects, no throw — while
/// still type-checking their condition. Forcing LMR_CHECKED off before the
/// only contract.hpp include makes this testable in every build config,
/// including the checked CI job.

#ifdef LMR_CHECKED
#undef LMR_CHECKED
#endif

#include "core/contract.hpp"

#include <gtest/gtest.h>

namespace {

static_assert(LMR_CONTRACT_CHECKS_ENABLED == 0,
              "this TU must see the unchecked contract layer");

TEST(ContractRelease, FailedChecksAreNoOps) {
  EXPECT_NO_THROW(LMR_ASSERT(false, "compiled away"));
  EXPECT_NO_THROW(LMR_REQUIRE(1 == 2));
}

TEST(ContractRelease, ConditionIsNeverEvaluated) {
  int evals = 0;
  const auto probe = [&evals] {
    ++evals;
    return false;
  };
  LMR_ASSERT(probe(), "the probe must not run");
  LMR_REQUIRE(probe());
  EXPECT_EQ(evals, 0);
}

TEST(ContractRelease, ContractOnlyVariablesAreNotUnused) {
  // This test is primarily a compile-time property: `witness` is referenced
  // only inside contracts, and the -Werror build must not flag it unused —
  // the unevaluated sizeof form keeps it odr-used enough.
  const bool witness = true;
  LMR_ASSERT(witness);
  SUCCEED();
}

int pick(int v) {
  switch (v & 1) {
    case 0:
      return 10;
    case 1:
      return 11;
  }
  LMR_UNREACHABLE("v & 1 is exhaustive");
}

TEST(ContractRelease, UnreachableCompilesOnDeadPaths) {
  // Reaching LMR_UNREACHABLE in a release build is undefined behaviour, so
  // only the live paths run; the point is that the function above compiles
  // without a -Wreturn-type warning under -Werror.
  EXPECT_EQ(pick(2), 10);
  EXPECT_EQ(pick(3), 11);
}

}  // namespace
