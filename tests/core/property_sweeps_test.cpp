/// \file property_sweeps_test.cpp
/// Parameterized property sweeps over the extension engine's input space:
/// trace angle (the any-direction claim), rule combinations, target factors
/// and random obstacle scenes. Every sweep asserts the same contract — the
/// target is reached when reachable, the result passes the independent DRC
/// oracle, and the original routing survives.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/trace_extender.hpp"
#include "dtw/msdtw.hpp"
#include "layout/drc_checker.hpp"

namespace lmr::core {
namespace {

using geom::Point;
using geom::Polygon;
using geom::Polyline;
using geom::Vec2;

drc::DesignRules base_rules() {
  drc::DesignRules r;
  r.gap = 1.0;
  r.obs = 0.5;
  r.protect = 0.5;
  r.trace_width = 0.0;
  return r;
}

void expect_contract(const layout::Trace& t, const drc::DesignRules& rules,
                     const layout::RoutableArea& area, const Point& a, const Point& b) {
  layout::DrcChecker checker;
  const auto v1 = checker.check_trace(t, rules);
  EXPECT_TRUE(v1.empty()) << layout::to_string(v1.empty() ? layout::ViolationKind::SelfGap
                                                          : v1[0].kind)
                          << (v1.empty() ? "" : (" " + v1[0].note));
  std::vector<layout::Obstacle> obs;
  for (const auto& h : area.holes) obs.push_back({h, "via"});
  const auto v2 = checker.check_obstacles(t, rules, obs);
  EXPECT_TRUE(v2.empty()) << (v2.empty() ? "" : v2[0].note);
  const auto v3 = checker.check_containment(t, area);
  EXPECT_TRUE(v3.empty()) << (v3.empty() ? "" : v3[0].note);
  EXPECT_TRUE(geom::almost_equal(t.path.front(), a, 1e-7));
  EXPECT_TRUE(geom::almost_equal(t.path.back(), b, 1e-7));
  EXPECT_FALSE(t.path.self_intersects());
}

// ---------------------------------------------------------------------------
// Sweep 1: trace angle — the any-direction property.
// ---------------------------------------------------------------------------

class AngleSweep : public ::testing::TestWithParam<int> {};

TEST_P(AngleSweep, RotatedCorridorExtensionIsCleanAndExact) {
  const double deg = static_cast<double>(GetParam());
  const double rad = deg * M_PI / 180.0;
  const Vec2 dir{std::cos(rad), std::sin(rad)};
  const Vec2 n{-dir.y, dir.x};
  const Point a{3.0, -2.0};
  const Point b = a + dir * 30.0;

  layout::RoutableArea area;
  area.outline = Polygon{{a - dir * 2.0 - n * 6.0, b + dir * 2.0 - n * 6.0,
                          b + dir * 2.0 + n * 6.0, a - dir * 2.0 + n * 6.0}};
  area.holes.push_back(Polygon::regular(a + dir * 15.0 + n * 3.0, 0.8, 8));

  layout::Trace t;
  t.id = 1;
  t.path = Polyline{{a, b}};
  TraceExtender ext(base_rules(), area);
  const ExtendStats stats = ext.extend(t, 48.0);
  EXPECT_TRUE(stats.reached) << "angle " << deg << " final " << stats.final_length;
  EXPECT_NEAR(t.path.length(), 48.0, 1e-5);
  expect_contract(t, base_rules(), area, a, b);
}

INSTANTIATE_TEST_SUITE_P(AnyDirection, AngleSweep,
                         ::testing::Values(0, 15, 30, 45, 60, 75, 90, 120, 135, 150, 165));

// ---------------------------------------------------------------------------
// Sweep 2: rule combinations — gap/protect ratios, widths, miters.
// ---------------------------------------------------------------------------

struct RuleCombo {
  double gap;
  double protect;
  double width;
  double miter;
};

class RuleSweep : public ::testing::TestWithParam<RuleCombo> {};

TEST_P(RuleSweep, ExtensionHonoursEveryRuleCombo) {
  const RuleCombo combo = GetParam();
  drc::DesignRules rules;
  rules.gap = combo.gap;
  rules.obs = 0.5;
  rules.protect = combo.protect;
  rules.trace_width = combo.width;
  rules.miter = combo.miter;

  layout::RoutableArea area;
  area.outline = Polygon::rect({{-1, -8}, {41, 8}});
  layout::Trace t;
  t.id = 1;
  t.path = Polyline{{{0, 0}, {40, 0}}};

  TraceExtender ext(rules, area);
  ExtenderConfig cfg;
  cfg.style = combo.miter > 0.0 ? PatternStyle::Mitered : PatternStyle::RightAngle;
  const ExtendStats stats = ext.extend(t, 60.0, cfg);
  EXPECT_TRUE(stats.reached) << "gap " << combo.gap << " protect " << combo.protect
                             << " final " << stats.final_length;
  layout::DrcChecker checker;
  const auto v = checker.check_trace(t, rules);
  EXPECT_TRUE(v.empty()) << (v.empty() ? "" : v[0].note);
}

INSTANTIATE_TEST_SUITE_P(Rules, RuleSweep,
                         ::testing::Values(RuleCombo{0.6, 0.3, 0.0, 0.0},
                                           RuleCombo{1.0, 0.5, 0.0, 0.0},
                                           RuleCombo{1.0, 0.5, 0.3, 0.0},
                                           RuleCombo{1.0, 1.0, 0.0, 0.0},
                                           RuleCombo{2.0, 0.5, 0.0, 0.0},
                                           RuleCombo{2.0, 1.0, 0.5, 0.0},
                                           RuleCombo{1.0, 0.5, 0.0, 0.2},
                                           RuleCombo{1.5, 0.8, 0.2, 0.3}));

// ---------------------------------------------------------------------------
// Sweep 3: target factor — exactness across demand levels.
// ---------------------------------------------------------------------------

class TargetSweep : public ::testing::TestWithParam<double> {};

TEST_P(TargetSweep, TargetHitExactlyAcrossDemandLevels) {
  const double factor = GetParam();
  layout::RoutableArea area;
  area.outline = Polygon::rect({{-1, -10}, {41, 10}});
  layout::Trace t;
  t.id = 1;
  t.path = Polyline{{{0, 0}, {40, 0}}};
  const double target = 40.0 * factor;
  TraceExtender ext(base_rules(), area);
  const ExtendStats stats = ext.extend(t, target);
  EXPECT_TRUE(stats.reached) << "factor " << factor << " final " << stats.final_length;
  EXPECT_NEAR(t.path.length(), target, 1e-5);
  expect_contract(t, base_rules(), area, {0, 0}, {40, 0});
}

INSTANTIATE_TEST_SUITE_P(Demand, TargetSweep,
                         ::testing::Values(1.0, 1.05, 1.2, 1.5, 2.0, 2.5, 3.0));

// ---------------------------------------------------------------------------
// Sweep 4: random obstacle scenes — safety under fuzzing.
// ---------------------------------------------------------------------------

class SceneSweep : public ::testing::TestWithParam<int> {};

TEST_P(SceneSweep, RandomViaFieldsNeverViolate) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_real_distribution<double> ux(3.0, 37.0);
  std::uniform_real_distribution<double> uy(1.6, 6.5);
  std::uniform_int_distribution<int> u_count(3, 9);
  std::uniform_real_distribution<double> u_side(0.0, 1.0);

  layout::RoutableArea area;
  area.outline = Polygon::rect({{-1, -8}, {41, 8}});
  const int n_vias = u_count(rng);
  for (int i = 0; i < n_vias; ++i) {
    const double side = u_side(rng) < 0.5 ? -1.0 : 1.0;
    area.holes.push_back(Polygon::regular({ux(rng), side * uy(rng)}, 0.7, 8));
  }
  layout::Trace t;
  t.id = 1;
  t.path = Polyline{{{0, 0}, {40, 0}}};
  TraceExtender ext(base_rules(), area);
  ExtenderConfig cfg;
  cfg.exhaustive_checks = true;  // oracle-validate every accepted height
  const ExtendStats stats = ext.extend(t, 58.0, cfg);
  EXPECT_EQ(stats.oracle_mismatches, 0) << "seed " << GetParam();
  expect_contract(t, base_rules(), area, {0, 0}, {40, 0});
  // Reachability is scene-dependent; only assert no regression below start.
  EXPECT_GE(t.path.length(), 40.0);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, SceneSweep, ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Sweep 5: MSDTW pitch — full matching of coupled pairs at every pitch.
// ---------------------------------------------------------------------------

class PitchSweep : public ::testing::TestWithParam<double> {};

TEST_P(PitchSweep, CoupledPairFullyMatchedAtEveryPitch) {
  const double pitch = GetParam();
  std::vector<Point> p, n;
  for (double x = 0.0; x <= 30.0; x += 6.0) {
    p.push_back({x, pitch / 2.0});
    n.push_back({x, -pitch / 2.0});
  }
  const std::vector<double> rules{pitch};
  const dtw::MsdtwResult r = dtw::msdtw_match(p, n, rules);
  for (bool b : r.p_paired) EXPECT_TRUE(b) << "pitch " << pitch;
  for (bool b : r.n_paired) EXPECT_TRUE(b) << "pitch " << pitch;
  EXPECT_EQ(r.pairs.size(), p.size());
}

INSTANTIATE_TEST_SUITE_P(Pitches, PitchSweep,
                         ::testing::Values(0.4, 0.6, 0.8, 1.2, 1.6, 2.0));

}  // namespace
}  // namespace lmr::core
