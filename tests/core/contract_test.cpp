/// \file contract_test.cpp
/// Checked-build semantics of LMR_ASSERT / LMR_REQUIRE / LMR_UNREACHABLE.
///
/// The contract layer is a per-translation-unit macro switch, so this test
/// forces LMR_CHECKED *before its only contract.hpp include* and therefore
/// exercises the throwing semantics in every build configuration — including
/// the default one where the library itself compiled the checks away. The
/// mirror file (contract_release_test.cpp) does the opposite.

#ifndef LMR_CHECKED
#define LMR_CHECKED 1
#endif

#include "core/contract.hpp"

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace {

using lmr::core::ContractViolation;

static_assert(LMR_CONTRACT_CHECKS_ENABLED == 1,
              "this TU must see the checked contract layer");

TEST(Contract, PassingChecksAreSilent) {
  EXPECT_NO_THROW(LMR_ASSERT(1 + 1 == 2));
  EXPECT_NO_THROW(LMR_REQUIRE(true, "never printed"));
}

TEST(Contract, FailedAssertThrowsTypedViolation) {
  try {
    LMR_ASSERT(2 < 1, "two is not less than one");
    FAIL() << "LMR_ASSERT(false) must throw in checked builds";
  } catch (const ContractViolation& v) {
    EXPECT_STREQ(v.kind(), "LMR_ASSERT");
    EXPECT_STREQ(v.expression(), "2 < 1");
    EXPECT_NE(std::string(v.what()).find("two is not less than one"),
              std::string::npos);
    EXPECT_NE(std::string(v.file()).find("contract_test.cpp"), std::string::npos);
    EXPECT_GT(v.line(), 0);
  }
}

TEST(Contract, RequireReportsItsOwnKind) {
  try {
    LMR_REQUIRE(false);
    FAIL() << "LMR_REQUIRE(false) must throw in checked builds";
  } catch (const ContractViolation& v) {
    EXPECT_STREQ(v.kind(), "LMR_REQUIRE");
    EXPECT_STREQ(v.expression(), "false");
  }
}

TEST(Contract, UnreachableThrows) {
  EXPECT_THROW(LMR_UNREACHABLE("fell off an exhaustive switch"),
               ContractViolation);
  EXPECT_THROW(LMR_UNREACHABLE(), ContractViolation);
}

TEST(Contract, ViolationIsLogicError) {
  // The serving tier classifies std::logic_error as non-retryable; a broken
  // invariant must ride that path (quarantine, not retry).
  EXPECT_THROW(LMR_ASSERT(false, "bug, not a transient fault"),
               std::logic_error);
}

TEST(Contract, ConditionEvaluatedExactlyOnce) {
  int evals = 0;
  const auto probe = [&evals] {
    ++evals;
    return true;
  };
  LMR_ASSERT(probe());
  EXPECT_EQ(evals, 1);
}

TEST(Contract, MessageIsOptional) {
  try {
    LMR_ASSERT(false);
    FAIL() << "must throw";
  } catch (const ContractViolation& v) {
    // No message: the formatted what() still names the kind and expression.
    const std::string what = v.what();
    EXPECT_NE(what.find("LMR_ASSERT failed: false"), std::string::npos);
  }
}

}  // namespace
