#include "core/pattern.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/polyline.hpp"

namespace lmr::core {
namespace {

TEST(PatternGain, RightAngleIsTwiceHeight) {
  EXPECT_DOUBLE_EQ(pattern_gain(3.0, PatternStyle::RightAngle, 0.0), 6.0);
  EXPECT_DOUBLE_EQ(pattern_gain(0.5, PatternStyle::RightAngle, 0.7), 1.0);
}

TEST(PatternGain, MiteredLosesCornerLength) {
  const double g = pattern_gain(3.0, PatternStyle::Mitered, 0.5);
  EXPECT_LT(g, 6.0);
  EXPECT_NEAR(g, 6.0 + 4.0 * 0.5 * (std::sqrt(2.0) - 2.0), 1e-12);
}

TEST(PatternGain, MiterClippedByHeight) {
  // Height 0.6 with miter 0.5 clips the cut at h/2 = 0.3.
  const double g = pattern_gain(0.6, PatternStyle::Mitered, 0.5);
  EXPECT_NEAR(g, 1.2 + 4.0 * 0.3 * (std::sqrt(2.0) - 2.0), 1e-12);
}

TEST(HeightForGain, InvertsRightAngle) {
  EXPECT_DOUBLE_EQ(height_for_gain(6.0, PatternStyle::RightAngle, 0.0), 3.0);
}

TEST(HeightForGain, InvertsMitered) {
  for (const double h : {2.0, 3.5, 10.0}) {
    const double g = pattern_gain(h, PatternStyle::Mitered, 0.4);
    EXPECT_NEAR(height_for_gain(g, PatternStyle::Mitered, 0.4), h, 1e-9);
  }
}

TEST(RealizePatterns, EmptyChainIsStraight) {
  const auto pts = realize_patterns({}, 10.0, 1.0);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts.front(), geom::Point(0.0, 0.0));
  EXPECT_EQ(pts.back(), geom::Point(10.0, 0.0));
}

TEST(RealizePatterns, SinglePatternShape) {
  const auto pts = realize_patterns({{2, 5, 3.0, 1}}, 10.0, 1.0);
  const geom::Polyline pl{pts};
  // 0 -> 2 -> up 3 -> across 3 -> down 3 -> 10.
  EXPECT_DOUBLE_EQ(pl.length(), 10.0 + 6.0);
  ASSERT_EQ(pts.size(), 6u);
  EXPECT_EQ(pts[1], geom::Point(2.0, 0.0));
  EXPECT_EQ(pts[2], geom::Point(2.0, 3.0));
  EXPECT_EQ(pts[3], geom::Point(5.0, 3.0));
  EXPECT_EQ(pts[4], geom::Point(5.0, 0.0));
}

TEST(RealizePatterns, NegativeDirectionGoesDown) {
  const auto pts = realize_patterns({{2, 5, 3.0, -1}}, 10.0, 1.0);
  EXPECT_EQ(pts[2], geom::Point(2.0, -3.0));
}

TEST(RealizePatterns, GainAccountingMatches) {
  const std::vector<Pattern> chain{{1, 3, 2.0, 1}, {5, 7, 1.5, -1}};
  const geom::Polyline pl{realize_patterns(chain, 10.0, 1.0)};
  double expected = 10.0;
  for (const Pattern& p : chain) expected += pattern_gain(p.height, PatternStyle::RightAngle, 0);
  EXPECT_DOUBLE_EQ(pl.length(), expected);
}

TEST(RealizePatterns, ConnectedPatternsMergeFeet) {
  // Two patterns sharing foot 5 on opposite sides: the crossing leg is one
  // straight vertical run through the base.
  const auto pts = realize_patterns({{2, 5, 2.0, 1}, {5, 8, 2.0, -1}}, 10.0, 1.0);
  const geom::Polyline pl{pts};
  EXPECT_DOUBLE_EQ(pl.length(), 10.0 + 4.0 + 4.0);
  // The shared base point (5, 0) must appear exactly once.
  int count = 0;
  for (const auto& p : pts) {
    if (geom::almost_equal(p, {5.0, 0.0})) ++count;
  }
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(pl.self_intersects());
}

TEST(RealizePatterns, EndpointsAlwaysPreserved) {
  const auto pts = realize_patterns({{0, 4, 1.0, 1}, {6, 10, 2.0, -1}}, 10.0, 1.0);
  EXPECT_EQ(pts.front(), geom::Point(0.0, 0.0));
  EXPECT_EQ(pts.back(), geom::Point(10.0, 0.0));
}

}  // namespace
}  // namespace lmr::core
