#include "core/segment_dp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lmr::core {
namespace {

DpParams base_params(int n) {
  DpParams p;
  p.n = n;
  p.step = 1.0;
  p.gap_steps = 2;
  p.protect_steps = 1;
  p.min_height = 1.0;
  p.needed_gain = 1e9;
  return p;
}

HeightFn flat(double h) {
  return [h](int, int, int, double req) { return std::min(h, req); };
}

/// Check the spacing legality of a restored chain against the DP rules.
void expect_chain_legal(const std::vector<Pattern>& chain, const DpParams& p) {
  for (std::size_t k = 0; k < chain.size(); ++k) {
    const Pattern& c = chain[k];
    EXPECT_LT(c.foot_lo, c.foot_hi);
    EXPECT_GE(c.foot_lo, 0);
    EXPECT_LE(c.foot_hi, p.n - 1);
    EXPECT_GE(c.height, p.min_height - 1e-12);
    // Width >= max(gap, protect).
    EXPECT_GE(c.width_steps(), std::max(p.gap_steps, p.protect_steps));
    // Feet vs segment nodes (protect or node-connect).
    EXPECT_TRUE(c.foot_lo == 0 || c.foot_lo >= p.protect_steps);
    EXPECT_TRUE(c.foot_hi == p.n - 1 || (p.n - 1 - c.foot_hi) >= p.protect_steps);
    if (k > 0) {
      const Pattern& prev = chain[k - 1];
      const int spacing = c.foot_lo - prev.foot_hi;
      EXPECT_GE(spacing, 0);
      if (prev.dir == c.dir) {
        EXPECT_GE(spacing, p.gap_steps);
      } else {
        EXPECT_TRUE(spacing == 0 || spacing >= p.protect_steps)
            << "opposite-direction spacing " << spacing;
      }
    }
  }
}

TEST(SegmentDp, EmptySegmentNoGain) {
  const DpResult r = run_segment_dp(base_params(1), flat(5.0));
  EXPECT_DOUBLE_EQ(r.gain, 0.0);
  EXPECT_TRUE(r.patterns.empty());
}

TEST(SegmentDp, BlockedEverywhereNoGain) {
  const DpResult r = run_segment_dp(base_params(20), flat(0.0));
  EXPECT_DOUBLE_EQ(r.gain, 0.0);
}

TEST(SegmentDp, SinglePatternWhenOnlyRoomForOne) {
  // n = 5 with gap 2, protect 1: one pattern of width >= 2 fits.
  const DpResult r = run_segment_dp(base_params(5), flat(4.0));
  EXPECT_GT(r.gain, 0.0);
  expect_chain_legal(r.patterns, base_params(5));
}

TEST(SegmentDp, FillsLongSegment) {
  const DpParams p = base_params(41);
  const DpResult r = run_segment_dp(p, flat(5.0));
  EXPECT_GT(r.patterns.size(), 3u);
  expect_chain_legal(r.patterns, p);
  double total = 0.0;
  for (const Pattern& pat : r.patterns) total += 2.0 * pat.height;
  EXPECT_NEAR(total, r.gain, 1e-9);
}

TEST(SegmentDp, GainBoundedByNeed) {
  DpParams p = base_params(41);
  p.needed_gain = 7.0;
  const DpResult r = run_segment_dp(p, flat(10.0));
  // The DP caps pattern heights at the remaining requirement; small
  // overshoot from min-height quantization is allowed.
  EXPECT_LE(r.gain, 7.0 + 2.0 * p.min_height);
  EXPECT_GE(r.gain, 7.0 - 1e-9);
}

TEST(SegmentDp, RespectsProtectAtRightNode) {
  DpParams p = base_params(10);
  p.protect_steps = 3;
  const DpResult r = run_segment_dp(p, flat(4.0));
  expect_chain_legal(r.patterns, p);
}

TEST(SegmentDp, HeightVariationPrefersTallSpot) {
  // Height 1.0 everywhere except a tall window [10, 15] where 6.0 fits:
  // the best chain must exploit the window.
  DpParams p = base_params(21);
  const HeightFn h = [](int j, int i, int, double req) {
    const bool tall = j >= 10 && i <= 15;
    return std::min(req, tall ? 6.0 : 1.0);
  };
  const DpResult r = run_segment_dp(p, h);
  bool uses_window = false;
  for (const Pattern& pat : r.patterns) {
    if (pat.foot_lo >= 10 && pat.foot_hi <= 15 && pat.height > 5.0) uses_window = true;
  }
  EXPECT_TRUE(uses_window);
  expect_chain_legal(r.patterns, p);
}

TEST(SegmentDp, OppositeDirectionsUsedWhenOneSideBlocked) {
  // +1 side blocked on the left half, -1 side blocked on the right half.
  DpParams p = base_params(31);
  const HeightFn h = [](int j, int i, int dir, double req) {
    const bool left = i <= 15;
    if (left && dir > 0) return 0.0;
    if (!left && dir < 0 && j >= 15) return 0.0;
    return std::min(req, 3.0);
  };
  const DpResult r = run_segment_dp(p, h);
  bool has_up = false, has_down = false;
  for (const Pattern& pat : r.patterns) {
    (pat.dir > 0 ? has_up : has_down) = true;
  }
  EXPECT_TRUE(has_up);
  EXPECT_TRUE(has_down);
  expect_chain_legal(r.patterns, p);
}

TEST(SegmentDp, ConnectedPatternsWhenProtectTooTight) {
  // protect_steps so large that separated opposite patterns cannot fit, but
  // connected ones can (shared foot, spacing 0).
  DpParams p = base_params(13);
  p.gap_steps = 4;
  p.protect_steps = 4;
  // Only opposite-direction patterns of width 4 starting at 0/4/8 fit in 13
  // points (0..12) if connected: feet (0,4),(4,8),(8,12).
  const DpResult r = run_segment_dp(p, flat(3.0));
  expect_chain_legal(r.patterns, p);
  EXPECT_GE(r.patterns.size(), 2u);
  bool any_connected = false;
  for (std::size_t k = 1; k < r.patterns.size(); ++k) {
    if (r.patterns[k].foot_lo == r.patterns[k - 1].foot_hi) any_connected = true;
  }
  EXPECT_TRUE(any_connected);
}

TEST(SegmentDp, WidthCapHonored) {
  DpParams p = base_params(41);
  p.max_width_steps = 3;
  const DpResult r = run_segment_dp(p, flat(5.0));
  for (const Pattern& pat : r.patterns) EXPECT_LE(pat.width_steps(), 3);
}

TEST(SegmentDp, CombinesTallWindowWithConnectedFlanks) {
  // A wide tall window (gain 13) flanked by narrow up-side windows (gain 4
  // each). Greedy same-side packing reaches 12; the optimum takes the tall
  // pattern on the *opposite* side, connecting to a narrow pattern at each
  // shared foot (Fig. 3c / Fig. 5 behaviour): 4 + 13 + 4 = 21.
  DpParams p = base_params(13);
  p.gap_steps = 2;
  p.protect_steps = 2;
  const HeightFn h = [](int j, int i, int dir, double req) {
    if (j == 2 && i == 10) return std::min(req, 6.5);          // tall wide pattern
    if (i - j <= 3 && dir > 0) return std::min(req, 2.0);      // narrow fallbacks
    return 0.0;
  };
  const DpResult r = run_segment_dp(p, h);
  EXPECT_NEAR(r.gain, 21.0, 1e-9);
  ASSERT_EQ(r.patterns.size(), 3u);
  EXPECT_EQ(r.patterns[1].foot_lo, 2);
  EXPECT_EQ(r.patterns[1].foot_hi, 10);
  EXPECT_EQ(r.patterns[0].foot_hi, r.patterns[1].foot_lo);  // connected
  EXPECT_EQ(r.patterns[2].foot_lo, r.patterns[1].foot_hi);  // connected
  EXPECT_NE(r.patterns[0].dir, r.patterns[1].dir);
  expect_chain_legal(r.patterns, p);
}

TEST(SegmentDp, MiteredGainAccounting) {
  DpParams p = base_params(9);
  p.style = PatternStyle::Mitered;
  p.miter = 0.4;
  const DpResult r = run_segment_dp(p, flat(3.0));
  ASSERT_FALSE(r.patterns.empty());
  double total = 0.0;
  for (const Pattern& pat : r.patterns) {
    total += pattern_gain(pat.height, PatternStyle::Mitered, 0.4);
  }
  EXPECT_NEAR(total, r.gain, 1e-9);
}

TEST(SegmentDp, DeterministicAcrossRuns) {
  const DpParams p = base_params(31);
  const DpResult a = run_segment_dp(p, flat(4.0));
  const DpResult b = run_segment_dp(p, flat(4.0));
  ASSERT_EQ(a.patterns.size(), b.patterns.size());
  EXPECT_DOUBLE_EQ(a.gain, b.gain);
  for (std::size_t i = 0; i < a.patterns.size(); ++i) {
    EXPECT_EQ(a.patterns[i].foot_lo, b.patterns[i].foot_lo);
    EXPECT_EQ(a.patterns[i].dir, b.patterns[i].dir);
  }
}

}  // namespace
}  // namespace lmr::core
