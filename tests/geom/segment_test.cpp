#include "geom/segment.hpp"

#include <gtest/gtest.h>

namespace lmr::geom {
namespace {

TEST(Segment, LengthDirectionMidpoint) {
  const Segment s{{0, 0}, {6, 8}};
  EXPECT_DOUBLE_EQ(s.length(), 10.0);
  EXPECT_EQ(s.direction(), Vec2(6.0, 8.0));
  EXPECT_NEAR(s.unit().norm(), 1.0, kEps);
  EXPECT_EQ(s.midpoint(), Point(3.0, 4.0));
  EXPECT_EQ(s.at(0.25), Point(1.5, 2.0));
}

TEST(Segment, ReversedAndDegenerate) {
  const Segment s{{1, 2}, {3, 4}};
  EXPECT_EQ(s.reversed().a, s.b);
  EXPECT_EQ(s.reversed().b, s.a);
  EXPECT_FALSE(s.degenerate());
  EXPECT_TRUE(Segment({1, 1}, {1, 1}).degenerate());
}

TEST(Segment, ProjectParamUnclamped) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(project_param(s, {5, 3}), 0.5);
  EXPECT_DOUBLE_EQ(project_param(s, {-5, 0}), -0.5);
  EXPECT_DOUBLE_EQ(project_param(s, {15, -2}), 1.5);
}

TEST(Segment, ClosestPointClamps) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_EQ(closest_point(s, {5, 3}), Point(5.0, 0.0));
  EXPECT_EQ(closest_point(s, {-5, 3}), Point(0.0, 0.0));
  EXPECT_EQ(closest_point(s, {15, 3}), Point(10.0, 0.0));
}

TEST(Segment, ClosestPointOnSlanted) {
  const Segment s{{0, 0}, {10, 10}};
  const Point cp = closest_point(s, {10, 0});
  EXPECT_NEAR(cp.x, 5.0, kEps);
  EXPECT_NEAR(cp.y, 5.0, kEps);
}

TEST(Segment, BBox) {
  const Segment s{{3, -1}, {1, 5}};
  const Box b = s.bbox();
  EXPECT_EQ(b.lo, Point(1.0, -1.0));
  EXPECT_EQ(b.hi, Point(3.0, 5.0));
}

TEST(Box, EmptyAndExpand) {
  Box b;
  EXPECT_TRUE(b.empty());
  b.expand({1, 1});
  EXPECT_FALSE(b.empty());
  b.expand({-1, 3});
  EXPECT_EQ(b.lo, Point(-1.0, 1.0));
  EXPECT_EQ(b.hi, Point(1.0, 3.0));
  EXPECT_DOUBLE_EQ(b.area(), 4.0);
}

TEST(Box, ContainsAndIntersects) {
  const Box a{{0, 0}, {2, 2}};
  const Box b{{1, 1}, {3, 3}};
  const Box c{{5, 5}, {6, 6}};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(a.contains({1, 1}));
  EXPECT_TRUE(a.contains({2, 2}));
  EXPECT_FALSE(a.contains({2.1, 1}));
  EXPECT_TRUE(a.contains({2.05, 1}, 0.1));
}

TEST(Box, InflatedGrowsEverySide) {
  const Box a{{0, 0}, {2, 2}};
  const Box g = a.inflated(0.5);
  EXPECT_EQ(g.lo, Point(-0.5, -0.5));
  EXPECT_EQ(g.hi, Point(2.5, 2.5));
}

TEST(Box, TouchingBoxesIntersect) {
  const Box a{{0, 0}, {1, 1}};
  const Box b{{1, 0}, {2, 1}};
  EXPECT_TRUE(a.intersects(b));
}

}  // namespace
}  // namespace lmr::geom
