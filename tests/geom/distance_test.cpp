#include "geom/distance.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lmr::geom {
namespace {

TEST(Distance, PointSegment) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(dist_point_segment({5, 3}, s), 3.0);
  EXPECT_DOUBLE_EQ(dist_point_segment({-3, 4}, s), 5.0);  // to endpoint
  EXPECT_DOUBLE_EQ(dist_point_segment({5, 0}, s), 0.0);   // on segment
}

TEST(Distance, SegmentSegmentParallel) {
  EXPECT_DOUBLE_EQ(dist_segment_segment({{0, 0}, {10, 0}}, {{0, 3}, {10, 3}}), 3.0);
}

TEST(Distance, SegmentSegmentCrossingIsZero) {
  EXPECT_DOUBLE_EQ(dist_segment_segment({{0, 0}, {10, 10}}, {{0, 10}, {10, 0}}), 0.0);
}

TEST(Distance, SegmentSegmentSkew) {
  // Closest approach is endpoint-to-interior.
  const double d = dist_segment_segment({{0, 0}, {10, 0}}, {{12, 1}, {20, 1}});
  EXPECT_NEAR(d, std::hypot(2.0, 1.0), kEps);
}

TEST(Distance, SegmentPolygonOutside) {
  const Polygon r = Polygon::rect({{5, 5}, {10, 10}});
  EXPECT_DOUBLE_EQ(dist_segment_polygon({{0, 0}, {0, 10}}, r), 5.0);
}

TEST(Distance, SegmentPolygonInsideIsZero) {
  const Polygon r = Polygon::rect({{0, 0}, {10, 10}});
  EXPECT_DOUBLE_EQ(dist_segment_polygon({{2, 2}, {3, 3}}, r), 0.0);
}

TEST(Distance, SegmentPolygonCrossingIsZero) {
  const Polygon r = Polygon::rect({{4, -1}, {6, 1}});
  EXPECT_DOUBLE_EQ(dist_segment_polygon({{0, 0}, {10, 0}}, r), 0.0);
}

TEST(Distance, PolylinePolyline) {
  const Polyline a{{{0, 0}, {10, 0}}};
  const Polyline b{{{0, 2}, {5, 2}, {5, 7}}};
  EXPECT_DOUBLE_EQ(dist_polyline_polyline(a, b), 2.0);
}

TEST(Distance, PolylinePolygon) {
  const Polyline pl{{{0, 0}, {10, 0}, {10, 10}}};
  const Polygon r = Polygon::rect({{3, 4}, {6, 6}});
  EXPECT_DOUBLE_EQ(dist_polyline_polygon(pl, r), 4.0);
}

}  // namespace
}  // namespace lmr::geom
