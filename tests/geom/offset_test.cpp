#include "geom/offset.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/distance.hpp"

namespace lmr::geom {
namespace {

TEST(Offset, RectangleGrowsUniformly) {
  const Polygon r = Polygon::rect({{0, 0}, {4, 2}});
  const Polygon g = offset_convex(r, 1.0);
  const Box b = g.bbox();
  EXPECT_NEAR(b.lo.x, -1.0, kEps);
  EXPECT_NEAR(b.lo.y, -1.0, kEps);
  EXPECT_NEAR(b.hi.x, 5.0, kEps);
  EXPECT_NEAR(b.hi.y, 3.0, kEps);
  EXPECT_NEAR(g.area(), 6.0 * 4.0, 1e-9);
}

TEST(Offset, OctagonEdgesMoveByMargin) {
  const Polygon oct = Polygon::regular({0, 0}, 2.0, 8);
  const double margin = 0.7;
  const Polygon g = offset_convex(oct, margin);
  // Every original vertex must now be at least `margin` inside the offset
  // polygon boundary.
  for (const Point& p : oct.points()) {
    double d = 1e18;
    for (std::size_t i = 0; i < g.size(); ++i) {
      d = std::min(d, dist_point_segment(p, g.edge(i)));
    }
    EXPECT_NEAR(d, margin, 1e-9);
  }
}

TEST(Offset, ZeroMarginIsIdentity) {
  const Polygon r = Polygon::rect({{0, 0}, {4, 2}});
  const Polygon g = inflate_polygon(r, 0.0);
  EXPECT_EQ(g.size(), r.size());
  EXPECT_DOUBLE_EQ(g.area(), r.area());
}

TEST(Offset, InflateConvexUsesExactOffset) {
  const Polygon tri{{{0, 0}, {4, 0}, {2, 3}}};
  const Polygon g = inflate_polygon(tri, 0.5);
  EXPECT_TRUE(g.is_convex());
  EXPECT_GT(g.area(), tri.area());
  // Original polygon strictly inside.
  for (const Point& p : tri.points()) EXPECT_TRUE(g.contains(p));
}

TEST(Offset, InflateNonConvexFallsBackToBBox) {
  const Polygon concave{{{0, 0}, {4, 0}, {4, 4}, {2, 1}, {0, 4}}};
  const Polygon g = inflate_polygon(concave, 0.5);
  EXPECT_EQ(g.size(), 4u);  // bbox rectangle
  const Box b = g.bbox();
  EXPECT_NEAR(b.lo.x, -0.5, kEps);
  EXPECT_NEAR(b.hi.y, 4.5, kEps);
}

TEST(Offset, ClockwiseInputNormalized) {
  Polygon cw{{{0, 0}, {0, 2}, {2, 2}, {2, 0}}};
  const Polygon g = inflate_polygon(cw, 1.0);
  EXPECT_NEAR(g.area(), 16.0, 1e-9);
}

}  // namespace
}  // namespace lmr::geom
