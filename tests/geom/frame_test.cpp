#include "geom/frame.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace lmr::geom {
namespace {

TEST(Frame, AxisAlignedSegment) {
  const Frame f = Frame::along({{2, 3}, {7, 3}});
  EXPECT_EQ(f.to_local({2, 3}), Point(0.0, 0.0));
  EXPECT_EQ(f.to_local({7, 3}), Point(5.0, 0.0));
  EXPECT_EQ(f.to_local({2, 4}), Point(0.0, 1.0));  // left of direction = +y
}

TEST(Frame, FlippedSwapsSide) {
  const Frame f = Frame::along({{2, 3}, {7, 3}}, /*flip=*/true);
  EXPECT_EQ(f.to_local({2, 4}), Point(0.0, -1.0));
  EXPECT_EQ(f.to_local({2, 2}), Point(0.0, 1.0));
  EXPECT_TRUE(f.flipped());
  EXPECT_FALSE(Frame::along({{2, 3}, {7, 3}}).flipped());
}

TEST(Frame, DiagonalSegment) {
  const Frame f = Frame::along({{0, 0}, {3, 4}});
  const Point end = f.to_local({3, 4});
  EXPECT_NEAR(end.x, 5.0, kEps);
  EXPECT_NEAR(end.y, 0.0, kEps);
}

TEST(Frame, RoundTripRandomPoints) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> u(-100.0, 100.0);
  for (int trial = 0; trial < 50; ++trial) {
    const Segment s{{u(rng), u(rng)}, {u(rng), u(rng)}};
    if (s.degenerate(1e-3)) continue;
    for (const bool flip : {false, true}) {
      const Frame f = Frame::along(s, flip);
      const Point p{u(rng), u(rng)};
      const Point q = f.to_global(f.to_local(p));
      EXPECT_NEAR(q.x, p.x, 1e-9);
      EXPECT_NEAR(q.y, p.y, 1e-9);
    }
  }
}

TEST(Frame, PreservesDistances) {
  const Frame f = Frame::along({{1, 1}, {4, 5}});
  const Point a{10, -3}, b{-7, 8};
  EXPECT_NEAR(dist(f.to_local(a), f.to_local(b)), dist(a, b), 1e-9);
}

TEST(Frame, AnyAngleSegmentMapsOntoXAxis) {
  // 30-degree trace: the any-direction case of the paper.
  const double c = std::cos(M_PI / 6.0), s = std::sin(M_PI / 6.0);
  const Segment seg{{0, 0}, {10 * c, 10 * s}};
  const Frame f = Frame::along(seg);
  const Point mid = f.to_local(seg.midpoint());
  EXPECT_NEAR(mid.x, 5.0, 1e-9);
  EXPECT_NEAR(mid.y, 0.0, 1e-9);
}

TEST(Frame, SegmentMapping) {
  const Frame f = Frame::along({{0, 0}, {0, 10}});
  const Segment g = f.to_local(Segment{{1, 0}, {1, 10}});
  // Segment to the right of an upward base maps to y = -1 (left is +y).
  EXPECT_NEAR(g.a.y, -1.0, kEps);
  EXPECT_NEAR(g.b.y, -1.0, kEps);
  EXPECT_NEAR(g.a.x, 0.0, kEps);
  EXPECT_NEAR(g.b.x, 10.0, kEps);
}

}  // namespace
}  // namespace lmr::geom
