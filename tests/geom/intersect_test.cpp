#include "geom/intersect.hpp"

#include <gtest/gtest.h>

namespace lmr::geom {
namespace {

TEST(SegmentsIntersect, ProperCrossing) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {10, 10}}, {{0, 10}, {10, 0}}));
}

TEST(SegmentsIntersect, Disjoint) {
  EXPECT_FALSE(segments_intersect({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}));
  EXPECT_FALSE(segments_intersect({{0, 0}, {1, 1}}, {{2, 2}, {3, 3}}));
}

TEST(SegmentsIntersect, EndpointTouch) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {5, 0}}, {{5, 0}, {5, 5}}));
  EXPECT_TRUE(segments_intersect({{0, 0}, {5, 0}}, {{3, 0}, {3, 5}}));  // T-touch
}

TEST(SegmentsIntersect, CollinearOverlap) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {5, 0}}, {{3, 0}, {8, 0}}));
  EXPECT_TRUE(segments_intersect({{0, 0}, {5, 0}}, {{5, 0}, {8, 0}}));   // touch at end
  EXPECT_FALSE(segments_intersect({{0, 0}, {5, 0}}, {{6, 0}, {8, 0}}));  // gap
}

TEST(SegmentIntersection, CrossingPoint) {
  const auto p = segment_intersection({{0, 0}, {10, 10}}, {{0, 10}, {10, 0}});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 5.0, kEps);
  EXPECT_NEAR(p->y, 5.0, kEps);
}

TEST(SegmentIntersection, NoneWhenDisjoint) {
  EXPECT_FALSE(segment_intersection({{0, 0}, {1, 1}}, {{2, 0}, {3, 1}}).has_value());
}

TEST(SegmentIntersection, NoneWhenParallel) {
  EXPECT_FALSE(segment_intersection({{0, 0}, {5, 0}}, {{0, 1}, {5, 1}}).has_value());
  // Collinear overlap deliberately returns nullopt.
  EXPECT_FALSE(segment_intersection({{0, 0}, {5, 0}}, {{1, 0}, {4, 0}}).has_value());
}

TEST(SegmentIntersection, EndpointTouchReturnsPoint) {
  const auto p = segment_intersection({{0, 0}, {5, 0}}, {{5, 0}, {5, 9}});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 5.0, kEps);
  EXPECT_NEAR(p->y, 0.0, kEps);
}

TEST(SegmentPolygon, IntersectionPoints) {
  const Polygon r = Polygon::rect({{2, -1}, {4, 1}});
  const auto pts = segment_polygon_intersections({{0, 0}, {10, 0}}, r);
  ASSERT_EQ(pts.size(), 2u);
  // Crossing at x=2 and x=4 in some order.
  const double x0 = std::min(pts[0].x, pts[1].x);
  const double x1 = std::max(pts[0].x, pts[1].x);
  EXPECT_NEAR(x0, 2.0, kEps);
  EXPECT_NEAR(x1, 4.0, kEps);
}

TEST(SegmentPolygon, MissReturnsEmpty) {
  const Polygon r = Polygon::rect({{2, 2}, {4, 4}});
  EXPECT_TRUE(segment_polygon_intersections({{0, 0}, {10, 0}}, r).empty());
}

TEST(PolygonsOverlap, EdgeCrossAndContainment) {
  const Polygon a = Polygon::rect({{0, 0}, {4, 4}});
  const Polygon b = Polygon::rect({{2, 2}, {6, 6}});
  const Polygon inside = Polygon::rect({{1, 1}, {2, 2}});
  const Polygon far_away = Polygon::rect({{10, 10}, {11, 11}});
  EXPECT_TRUE(polygons_overlap(a, b));
  EXPECT_TRUE(polygons_overlap(a, inside));  // containment counts
  EXPECT_TRUE(polygons_overlap(inside, a));
  EXPECT_FALSE(polygons_overlap(a, far_away));
}

}  // namespace
}  // namespace lmr::geom
