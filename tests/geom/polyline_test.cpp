#include "geom/polyline.hpp"

#include <gtest/gtest.h>

namespace lmr::geom {
namespace {

Polyline l_shape() { return Polyline{{{0, 0}, {10, 0}, {10, 5}}}; }

TEST(Polyline, LengthOfChain) {
  EXPECT_DOUBLE_EQ(l_shape().length(), 15.0);
  EXPECT_DOUBLE_EQ(Polyline().length(), 0.0);
  const Polyline single{{{1, 1}}};
  EXPECT_DOUBLE_EQ(single.length(), 0.0);
}

TEST(Polyline, SegmentAccess) {
  const Polyline pl = l_shape();
  EXPECT_EQ(pl.segment_count(), 2u);
  EXPECT_EQ(pl.segment(0).b, Point(10.0, 0.0));
  EXPECT_EQ(pl.segment(1).a, Point(10.0, 0.0));
}

TEST(Polyline, PointAtArclength) {
  const Polyline pl = l_shape();
  EXPECT_EQ(pl.point_at_arclength(0.0), Point(0.0, 0.0));
  EXPECT_EQ(pl.point_at_arclength(5.0), Point(5.0, 0.0));
  EXPECT_EQ(pl.point_at_arclength(12.0), Point(10.0, 2.0));
  EXPECT_EQ(pl.point_at_arclength(99.0), Point(10.0, 5.0));
}

TEST(Polyline, SimplifyRemovesDuplicatesAndCollinear) {
  Polyline pl{{{0, 0}, {0, 0}, {5, 0}, {10, 0}, {10, 5}, {10, 5}}};
  pl.simplify();
  ASSERT_EQ(pl.size(), 3u);
  EXPECT_EQ(pl[0], Point(0.0, 0.0));
  EXPECT_EQ(pl[1], Point(10.0, 0.0));
  EXPECT_EQ(pl[2], Point(10.0, 5.0));
}

TEST(Polyline, SimplifyKeepsReversals) {
  // A doubling-back point is collinear but NOT passed through forward;
  // it must be kept (it is a real geometric feature).
  Polyline pl{{{0, 0}, {10, 0}, {5, 0}}};
  pl.simplify();
  EXPECT_EQ(pl.size(), 3u);
}

TEST(Polyline, SpliceReplacesRun) {
  Polyline pl{{{0, 0}, {10, 0}, {20, 0}}};
  const std::vector<Point> repl{{0, 0}, {5, 0}, {5, 3}, {10, 3}, {10, 0}};
  pl.splice(0, 1, repl);
  ASSERT_EQ(pl.size(), 6u);
  EXPECT_EQ(pl[4], Point(10.0, 0.0));
  EXPECT_EQ(pl[5], Point(20.0, 0.0));
  EXPECT_DOUBLE_EQ(pl.length(), 10.0 + 3.0 + 3.0 + 10.0);
}

TEST(Polyline, SelfIntersectionDetected) {
  Polyline cross{{{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, -5}}};
  EXPECT_TRUE(cross.self_intersects());
  EXPECT_FALSE(l_shape().self_intersects());
}

TEST(Polyline, SerpentineDoesNotSelfIntersect) {
  Polyline serp{{{0, 0}, {2, 0}, {2, 4}, {4, 4}, {4, 0}, {6, 0}, {6, 4}, {8, 4}, {8, 0}, {10, 0}}};
  EXPECT_FALSE(serp.self_intersects());
  EXPECT_DOUBLE_EQ(serp.length(), 10.0 + 4 * 4.0);
}

TEST(Polyline, ReversedPreservesLength) {
  const Polyline pl = l_shape();
  const Polyline r = pl.reversed();
  EXPECT_DOUBLE_EQ(r.length(), pl.length());
  EXPECT_EQ(r.front(), pl.back());
  EXPECT_EQ(r.back(), pl.front());
}

TEST(Polyline, BBox) {
  const Box b = l_shape().bbox();
  EXPECT_EQ(b.lo, Point(0.0, 0.0));
  EXPECT_EQ(b.hi, Point(10.0, 5.0));
}

}  // namespace
}  // namespace lmr::geom
