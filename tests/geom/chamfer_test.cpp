#include "geom/chamfer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lmr::geom {
namespace {

TEST(Chamfer, RightAngleCornerIsCut) {
  const Polyline pl{{{0, 0}, {10, 0}, {10, 10}}};
  const Polyline c = chamfer_corners(pl, 2.0);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c[1], Point(8.0, 0.0));
  EXPECT_EQ(c[2], Point(10.0, 2.0));
}

TEST(Chamfer, LengthDeltaMatchesFormula) {
  const Polyline pl{{{0, 0}, {10, 0}, {10, 10}}};
  const double cut = 2.0;
  const Polyline c = chamfer_corners(pl, cut);
  EXPECT_NEAR(c.length(), pl.length() + right_angle_chamfer_delta(cut), 1e-9);
}

TEST(Chamfer, ObtuseCornerUntouched) {
  // 135-degree corner (45-degree turn): no miter required.
  const Polyline pl{{{0, 0}, {10, 0}, {20, 5}}};
  const Polyline c = chamfer_corners(pl, 2.0);
  EXPECT_EQ(c.size(), 3u);
}

TEST(Chamfer, AcuteCornerIsCut) {
  const Polyline pl{{{0, 0}, {10, 0}, {0, 2}}};
  const Polyline c = chamfer_corners(pl, 1.0);
  EXPECT_EQ(c.size(), 4u);
}

TEST(Chamfer, CutClampedToShortArms) {
  const Polyline pl{{{0, 0}, {2, 0}, {2, 10}}};
  const Polyline c = chamfer_corners(pl, 5.0);  // arm is only 2 long
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c[1], Point(1.0, 0.0));  // clamped to half the short arm
  EXPECT_EQ(c[2], Point(2.0, 1.0));
}

TEST(Chamfer, SerpentineAllFourCornersCut) {
  const Polyline pl{{{0, 0}, {4, 0}, {4, 6}, {8, 6}, {8, 0}, {12, 0}}};
  const Polyline c = chamfer_corners(pl, 1.0);
  EXPECT_EQ(c.size(), pl.size() + 4u);
  EXPECT_NEAR(c.length(), pl.length() + 4.0 * right_angle_chamfer_delta(1.0), 1e-9);
}

TEST(Chamfer, ZeroMiterIsIdentity) {
  const Polyline pl{{{0, 0}, {10, 0}, {10, 10}}};
  EXPECT_EQ(chamfer_corners(pl, 0.0).size(), 3u);
}

TEST(Chamfer, DeltaFormulaNegative) {
  EXPECT_LT(right_angle_chamfer_delta(1.0), 0.0);
  EXPECT_NEAR(right_angle_chamfer_delta(1.0), std::sqrt(2.0) - 2.0, 1e-12);
}

}  // namespace
}  // namespace lmr::geom
