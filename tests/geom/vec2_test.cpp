#include "geom/vec2.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lmr::geom {
namespace {

TEST(Vec2, ArithmeticOperators) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4.0, 6.0));
}

TEST(Vec2, NormAndNormalize) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  const Vec2 u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, kEps);
  EXPECT_NEAR(u.x, 0.6, kEps);
  EXPECT_NEAR(u.y, 0.8, kEps);
}

TEST(Vec2, PerpIsCounterClockwise) {
  const Vec2 x{1.0, 0.0};
  EXPECT_EQ(x.perp(), Vec2(0.0, 1.0));
  // perp twice = -v
  EXPECT_EQ(x.perp().perp(), Vec2(-1.0, 0.0));
  // cross(v, v.perp()) > 0 for any nonzero v
  const Vec2 v{2.0, -3.0};
  EXPECT_GT(cross(v, v.perp()), 0.0);
}

TEST(Vec2, DotAndCross) {
  EXPECT_DOUBLE_EQ(dot({1, 2}, {3, 4}), 11.0);
  EXPECT_DOUBLE_EQ(cross({1, 0}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(cross({0, 1}, {1, 0}), -1.0);
  EXPECT_DOUBLE_EQ(cross({2, 3}, {4, 6}), 0.0);  // parallel
}

TEST(Vec2, Distances) {
  EXPECT_DOUBLE_EQ(dist({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(dist2({1, 1}, {2, 2}), 2.0);
}

TEST(Vec2, AlmostEqual) {
  EXPECT_TRUE(almost_equal(Point{1.0, 1.0}, Point{1.0 + 1e-12, 1.0 - 1e-12}));
  EXPECT_FALSE(almost_equal(Point{1.0, 1.0}, Point{1.0001, 1.0}));
  EXPECT_TRUE(almost_equal(Point{1.0, 1.0}, Point{1.01, 1.0}, 0.1));
}

TEST(Orientation, BasicTriples) {
  EXPECT_EQ(orient({0, 0}, {1, 0}, {1, 1}), Orientation::CounterClockwise);
  EXPECT_EQ(orient({0, 0}, {1, 0}, {1, -1}), Orientation::Clockwise);
  EXPECT_EQ(orient({0, 0}, {1, 0}, {2, 0}), Orientation::Collinear);
}

TEST(Orientation, NearCollinearWithinEps) {
  EXPECT_EQ(orient({0, 0}, {1, 0}, {2, 1e-12}), Orientation::Collinear);
}

}  // namespace
}  // namespace lmr::geom
