#include "geom/polygon.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lmr::geom {
namespace {

TEST(Polygon, RectFactory) {
  const Polygon r = Polygon::rect({{0, 0}, {4, 3}});
  EXPECT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_TRUE(r.is_ccw());
  EXPECT_TRUE(r.is_convex());
}

TEST(Polygon, RegularFactory) {
  const Polygon oct = Polygon::regular({0, 0}, 1.0, 8);
  EXPECT_EQ(oct.size(), 8u);
  EXPECT_TRUE(oct.is_convex());
  // Area of a regular octagon with circumradius 1: 2*sqrt(2).
  EXPECT_NEAR(oct.area(), 2.0 * std::sqrt(2.0), 1e-9);
}

TEST(Polygon, SignedAreaOrientation) {
  Polygon ccw{{{0, 0}, {2, 0}, {2, 2}, {0, 2}}};
  EXPECT_GT(ccw.signed_area(), 0.0);
  Polygon cw{{{0, 0}, {0, 2}, {2, 2}, {2, 0}}};
  EXPECT_LT(cw.signed_area(), 0.0);
  cw.make_ccw();
  EXPECT_GT(cw.signed_area(), 0.0);
}

TEST(Polygon, ContainsInteriorExteriorBoundary) {
  const Polygon r = Polygon::rect({{0, 0}, {4, 3}});
  EXPECT_TRUE(r.contains({2, 1}));
  EXPECT_FALSE(r.contains({5, 1}));
  EXPECT_FALSE(r.contains({-1, -1}));
  EXPECT_TRUE(r.contains({0, 1}));                 // boundary in
  EXPECT_FALSE(r.contains({0, 1}, false));         // boundary out
  EXPECT_TRUE(r.contains({0, 0}));                 // vertex
}

TEST(Polygon, ContainsConcave) {
  // U-shaped polygon.
  const Polygon u{{{0, 0}, {6, 0}, {6, 4}, {4, 4}, {4, 2}, {2, 2}, {2, 4}, {0, 4}}};
  EXPECT_TRUE(u.contains({1, 3}));
  EXPECT_TRUE(u.contains({5, 3}));
  EXPECT_FALSE(u.contains({3, 3}));  // inside the notch
  EXPECT_TRUE(u.contains({3, 1}));   // below the notch
}

TEST(Polygon, ContainsRayThroughVertex) {
  // Point whose +x ray passes exactly through a vertex: parity must hold.
  const Polygon tri{{{0, 0}, {4, 2}, {0, 4}}};
  EXPECT_TRUE(tri.contains({1, 2}));
  EXPECT_FALSE(tri.contains({5, 2}));
  EXPECT_FALSE(tri.contains({-1, 2}));
}

TEST(Polygon, IsConvex) {
  EXPECT_TRUE(Polygon::rect({{0, 0}, {1, 1}}).is_convex());
  const Polygon concave{{{0, 0}, {4, 0}, {4, 4}, {2, 1}, {0, 4}}};
  EXPECT_FALSE(concave.is_convex());
}

TEST(Polygon, CentroidAndTranslate) {
  const Polygon r = Polygon::rect({{0, 0}, {2, 2}});
  EXPECT_EQ(r.centroid(), Point(1.0, 1.0));
  const Polygon t = r.translated({5, -1});
  EXPECT_EQ(t.centroid(), Point(6.0, 0.0));
  EXPECT_DOUBLE_EQ(t.area(), r.area());
}

TEST(Polygon, EdgeWraps) {
  const Polygon r = Polygon::rect({{0, 0}, {1, 2}});
  const Segment last = r.edge(3);
  EXPECT_EQ(last.b, r[0]);
}

}  // namespace
}  // namespace lmr::geom
