#include "pipeline/router.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "exec/task_pool.hpp"
#include "scenario/scenario_families.hpp"
#include "workload/metrics.hpp"
#include "workload/table1_cases.hpp"

namespace lmr::pipeline {
namespace {

/// The bench configuration of Table I ("Ours"): fine grid, capped width loop.
RouterOptions table1_options() {
  RouterOptions opts;
  opts.extender.l_disc = 0.5;
  opts.extender.max_width_steps = 24;
  return opts;
}

/// Three staggered single-ended traces in private corridors, target 50.
layout::Layout small_group(drc::DesignRules& rules) {
  layout::Layout l;
  layout::MatchGroup g;
  g.name = "g0";
  g.target_length = 50.0;
  for (int i = 0; i < 3; ++i) {
    layout::Trace t;
    t.name = "t" + std::to_string(i);
    const double y = i * 10.0;
    t.path = geom::Polyline{{{0, y}, {30.0 + i * 3.0, y}}};
    const auto id = l.add_trace(t);
    layout::RoutableArea area;
    area.outline = geom::Polygon::rect({{-1, y - 4.5}, {41, y + 4.5}});
    l.set_routable_area(id, area);
    g.members.push_back({layout::MemberKind::SingleEnded, id});
  }
  l.add_group(g);
  rules = drc::DesignRules{};
  rules.gap = 1.0;
  rules.obs = 0.5;
  rules.protect = 0.5;
  return l;
}

TEST(Router, BadGroupIndexThrows) {
  layout::Layout l;
  const Router router{drc::DesignRules{}};
  EXPECT_THROW((void)router.route(l, 0), std::out_of_range);
}

TEST(Router, MissingAreaThrows) {
  layout::Layout l;
  layout::Trace t;
  t.path = geom::Polyline{{{0, 0}, {10, 0}}};
  const auto id = l.add_trace(t);
  layout::MatchGroup g;
  g.target_length = 20.0;
  g.members.push_back({layout::MemberKind::SingleEnded, id});
  l.add_group(g);
  const Router router{drc::DesignRules{}};
  EXPECT_THROW((void)router.route(l), std::invalid_argument);
}

TEST(Router, SmallGroupMatchesAndPassesDrc) {
  drc::DesignRules rules;
  layout::Layout l = small_group(rules);
  const Router router{rules};
  const RouteResult res = router.route(l);

  ASSERT_EQ(res.nets.size(), 3u);
  EXPECT_TRUE(res.matched());
  EXPECT_TRUE(res.drc_clean());
  EXPECT_TRUE(res.ok());
  EXPECT_LT(res.group.max_error_pct, 0.1);
  EXPECT_GT(res.group.initial_max_error_pct, 30.0);
  for (const NetResult& net : res.nets) {
    EXPECT_FALSE(net.member.name.empty());
    EXPECT_TRUE(net.member.reached) << net.member.name;
    EXPECT_NEAR(net.member.final_length, 50.0, 1e-4);
    EXPECT_TRUE(net.drc_clean()) << net.member.name;
    EXPECT_GT(net.member.patterns, 0);
  }
}

TEST(Router, Table1CaseEndToEnd) {
  // A full Table I dense single-ended case through the one-call facade:
  // errors collapse from the ~30 % initial band to the paper's few-percent
  // band and the oracle sweep stays clean.
  auto c = workload::table1_case(3);
  const Router router(c.rules, table1_options());
  const RouteResult res = router.route(c.layout);

  ASSERT_EQ(res.nets.size(), static_cast<std::size_t>(c.group_size));
  EXPECT_GT(res.group.initial_max_error_pct, 25.0);
  EXPECT_LT(res.group.max_error_pct, 5.0);
  EXPECT_TRUE(res.drc_clean());
  // The facade's write-back must agree with the layout's own lengths.
  const auto lengths = workload::group_member_lengths(c.layout);
  ASSERT_EQ(lengths.size(), res.nets.size());
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    EXPECT_DOUBLE_EQ(lengths[i], res.nets[i].member.final_length);
  }
}

TEST(Router, DifferentialCaseDiagnostics) {
  auto c = workload::table1_case(5);
  const Router router(c.rules, table1_options());
  const RouteResult res = router.route(c.layout);

  ASSERT_EQ(res.nets.size(), static_cast<std::size_t>(c.group_size));
  for (const NetResult& net : res.nets) {
    EXPECT_EQ(net.member.kind, layout::MemberKind::Differential);
    EXPECT_GE(net.member.final_length, net.member.initial_length);
  }
  EXPECT_LT(res.group.max_error_pct, res.group.initial_max_error_pct / 2.0);
}

TEST(Router, AidtBaselineSelection) {
  auto c = workload::table1_case(2);
  RouterOptions opts;
  opts.engine = Engine::AidtStyle;
  opts.run_drc = false;
  const Router router(c.rules, opts);
  const RouteResult res = router.route(c.layout);
  // The greedy baseline improves on the initial state but (on dense cases)
  // stays behind the DP flow's few-percent band.
  EXPECT_LT(res.group.max_error_pct, res.group.initial_max_error_pct);
  EXPECT_GT(res.group.max_error_pct, 0.0);
  EXPECT_TRUE(res.nets[0].violations.empty());  // run_drc=false: no sweep ran
}

/// route_batch must be bit-identical to route() on every trace, whatever the
/// thread count.
TEST(Router, BatchIdenticalSingleVsMultiThreaded) {
  for (const int case_id : {1, 5}) {
    auto sequential = workload::table1_case(case_id);
    auto threaded = workload::table1_case(case_id);

    RouterOptions opts = table1_options();
    opts.threads = 1;
    const RouteResult res_seq =
        Router(sequential.rules, opts).route_batch(sequential.layout);
    opts.threads = 8;
    const RouteResult res_par =
        Router(threaded.rules, opts).route_batch(threaded.layout);

    ASSERT_EQ(res_seq.nets.size(), res_par.nets.size());
    for (std::size_t i = 0; i < res_seq.nets.size(); ++i) {
      EXPECT_DOUBLE_EQ(res_seq.nets[i].member.final_length,
                       res_par.nets[i].member.final_length);
      EXPECT_EQ(res_seq.nets[i].member.patterns, res_par.nets[i].member.patterns);
      EXPECT_EQ(res_seq.nets[i].violations.size(), res_par.nets[i].violations.size());
    }
    EXPECT_DOUBLE_EQ(res_seq.group.max_error_pct, res_par.group.max_error_pct);
    // Geometry identical point for point.
    for (const auto& [id, t] : sequential.layout.traces()) {
      const auto& other = threaded.layout.trace(id).path.points();
      const auto& mine = t.path.points();
      ASSERT_EQ(mine.size(), other.size());
      for (std::size_t i = 0; i < mine.size(); ++i) {
        EXPECT_EQ(mine[i].x, other[i].x);
        EXPECT_EQ(mine[i].y, other[i].y);
      }
    }
    for (const auto& [id, p] : sequential.layout.pairs()) {
      EXPECT_EQ(p.positive.path.points().size(),
                threaded.layout.pair(id).positive.path.points().size());
      EXPECT_DOUBLE_EQ(p.positive.path.length(),
                       threaded.layout.pair(id).positive.path.length());
      EXPECT_DOUBLE_EQ(p.negative.path.length(),
                       threaded.layout.pair(id).negative.path.length());
    }
  }
}

/// Compare every trace and pair of two layouts point for point.
void expect_identical_geometry(const layout::Layout& a, const layout::Layout& b) {
  for (const auto& [id, t] : a.traces()) {
    const auto& mine = t.path.points();
    const auto& other = b.trace(id).path.points();
    ASSERT_EQ(mine.size(), other.size()) << "trace " << id;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_EQ(mine[i].x, other[i].x) << "trace " << id << " point " << i;
      EXPECT_EQ(mine[i].y, other[i].y) << "trace " << id << " point " << i;
    }
  }
  for (const auto& [id, p] : a.pairs()) {
    for (const auto sub : {&layout::DiffPair::positive, &layout::DiffPair::negative}) {
      const auto& mine = (p.*sub).path.points();
      const auto& other = (b.pair(id).*sub).path.points();
      ASSERT_EQ(mine.size(), other.size()) << "pair " << id;
      for (std::size_t i = 0; i < mine.size(); ++i) {
        EXPECT_EQ(mine[i].x, other[i].x) << "pair " << id << " point " << i;
        EXPECT_EQ(mine[i].y, other[i].y) << "pair " << id << " point " << i;
      }
    }
  }
}

/// route_all on a seeded multi-group board: bit-identical to per-group
/// route() whatever the thread count, results in group order.
TEST(Router, RouteAllDeterministicAcrossThreadCounts) {
  const auto fam = scenario::family("multi_group", true);
  const scenario::Scenario reference_sc = scenario::materialize(fam.cases.at(0));
  ASSERT_GT(reference_sc.layout.groups().size(), 1u);

  auto reference = reference_sc.layout;
  RouterOptions ref_opts = table1_options();
  const Router ref_router(reference_sc.rules, ref_opts);
  std::vector<RouteResult> ref_results;
  for (std::size_t g = 0; g < reference.groups().size(); ++g) {
    ref_results.push_back(ref_router.route(reference, g));
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    scenario::Scenario sc = scenario::materialize(fam.cases.at(0));
    RouterOptions opts = table1_options();
    opts.threads = threads;
    const Router router(sc.rules, opts);
    const std::vector<RouteResult> results = router.route_all(sc.layout);

    ASSERT_EQ(results.size(), ref_results.size()) << threads;
    for (std::size_t g = 0; g < results.size(); ++g) {
      EXPECT_EQ(results[g].group.group_name, ref_results[g].group.group_name);
      EXPECT_DOUBLE_EQ(results[g].group.max_error_pct, ref_results[g].group.max_error_pct);
      EXPECT_DOUBLE_EQ(results[g].group.avg_error_pct, ref_results[g].group.avg_error_pct);
      EXPECT_EQ(results[g].violation_count(), ref_results[g].violation_count());
      ASSERT_EQ(results[g].nets.size(), ref_results[g].nets.size());
      for (std::size_t i = 0; i < results[g].nets.size(); ++i) {
        EXPECT_DOUBLE_EQ(results[g].nets[i].member.final_length,
                         ref_results[g].nets[i].member.final_length);
        EXPECT_EQ(results[g].nets[i].member.patterns, ref_results[g].nets[i].member.patterns);
      }
    }
    expect_identical_geometry(reference, sc.layout);
  }
}

/// A target below the current trace length makes the extender throw inside
/// a member task; the pool must capture and rethrow it from route_batch,
/// leaving the layout untouched (write-back never runs).
TEST(Router, ThrowingMemberTaskPropagatesAndAbortsCleanly) {
  drc::DesignRules rules;
  layout::Layout l = small_group(rules);
  l.set_group_target(0, 5.0);  // every trace is already >= 30 long
  const layout::Layout before = l;

  RouterOptions opts;
  opts.threads = 8;
  const Router router(rules, opts);
  EXPECT_THROW((void)router.route_batch(l), std::invalid_argument);
  expect_identical_geometry(before, l);
}

/// Repeated route_batch calls on one Router reuse the same private pool:
/// results stay identical call after call and no per-call state leaks.
TEST(Router, RepeatedRouteBatchOnOneRouterIsStable) {
  const auto fam = scenario::family("multi_group", true);
  const scenario::Scenario sc = scenario::materialize(fam.cases.at(0));
  RouterOptions opts = table1_options();
  opts.threads = 4;
  const Router router(sc.rules, opts);

  double first_error = -1.0;
  for (int call = 0; call < 25; ++call) {
    layout::Layout layout = sc.layout;  // fresh board, same router+pool
    const RouteResult rr = router.route_batch(layout, 0);
    if (first_error < 0.0) first_error = rr.group.max_error_pct;
    EXPECT_DOUBLE_EQ(rr.group.max_error_pct, first_error) << "call " << call;
  }
}

/// An explicitly provided executor is honoured (the Suite wiring): one
/// pool shared by several Routers, including nested route_all fan-out.
TEST(Router, SharedExplicitPoolAcrossRouters) {
  exec::TaskPool pool(2);
  const auto fam = scenario::family("multi_group", true);
  for (int r = 0; r < 3; ++r) {
    scenario::Scenario sc = scenario::materialize(fam.cases.at(0));
    RouterOptions opts = table1_options();
    opts.threads = 3;
    opts.pool = &pool;
    const Router router(sc.rules, opts);
    EXPECT_EQ(&router.pool(), &pool);
    const std::vector<RouteResult> results = router.route_all(sc.layout);
    EXPECT_EQ(results.size(), sc.layout.groups().size());
    // The family's own gate: few-percent Max error, not exact matching
    // (residuals below the minimum pattern gain are unreachable).
    for (const RouteResult& rr : results) {
      EXPECT_LT(rr.group.max_error_pct, 5.0);
      EXPECT_LT(rr.group.max_error_pct, rr.group.initial_max_error_pct);
    }
  }
}

}  // namespace
}  // namespace lmr::pipeline
