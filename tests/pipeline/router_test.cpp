#include "pipeline/router.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "workload/metrics.hpp"
#include "workload/table1_cases.hpp"

namespace lmr::pipeline {
namespace {

/// The bench configuration of Table I ("Ours"): fine grid, capped width loop.
RouterOptions table1_options() {
  RouterOptions opts;
  opts.extender.l_disc = 0.5;
  opts.extender.max_width_steps = 24;
  return opts;
}

/// Three staggered single-ended traces in private corridors, target 50.
layout::Layout small_group(drc::DesignRules& rules) {
  layout::Layout l;
  layout::MatchGroup g;
  g.name = "g0";
  g.target_length = 50.0;
  for (int i = 0; i < 3; ++i) {
    layout::Trace t;
    t.name = "t" + std::to_string(i);
    const double y = i * 10.0;
    t.path = geom::Polyline{{{0, y}, {30.0 + i * 3.0, y}}};
    const auto id = l.add_trace(t);
    layout::RoutableArea area;
    area.outline = geom::Polygon::rect({{-1, y - 4.5}, {41, y + 4.5}});
    l.set_routable_area(id, area);
    g.members.push_back({layout::MemberKind::SingleEnded, id});
  }
  l.add_group(g);
  rules = drc::DesignRules{};
  rules.gap = 1.0;
  rules.obs = 0.5;
  rules.protect = 0.5;
  return l;
}

TEST(Router, BadGroupIndexThrows) {
  layout::Layout l;
  const Router router{drc::DesignRules{}};
  EXPECT_THROW((void)router.route(l, 0), std::out_of_range);
}

TEST(Router, MissingAreaThrows) {
  layout::Layout l;
  layout::Trace t;
  t.path = geom::Polyline{{{0, 0}, {10, 0}}};
  const auto id = l.add_trace(t);
  layout::MatchGroup g;
  g.target_length = 20.0;
  g.members.push_back({layout::MemberKind::SingleEnded, id});
  l.add_group(g);
  const Router router{drc::DesignRules{}};
  EXPECT_THROW((void)router.route(l), std::invalid_argument);
}

TEST(Router, SmallGroupMatchesAndPassesDrc) {
  drc::DesignRules rules;
  layout::Layout l = small_group(rules);
  const Router router{rules};
  const RouteResult res = router.route(l);

  ASSERT_EQ(res.nets.size(), 3u);
  EXPECT_TRUE(res.matched());
  EXPECT_TRUE(res.drc_clean());
  EXPECT_TRUE(res.ok());
  EXPECT_LT(res.group.max_error_pct, 0.1);
  EXPECT_GT(res.group.initial_max_error_pct, 30.0);
  for (const NetResult& net : res.nets) {
    EXPECT_FALSE(net.member.name.empty());
    EXPECT_TRUE(net.member.reached) << net.member.name;
    EXPECT_NEAR(net.member.final_length, 50.0, 1e-4);
    EXPECT_TRUE(net.drc_clean()) << net.member.name;
    EXPECT_GT(net.member.patterns, 0);
  }
}

TEST(Router, Table1CaseEndToEnd) {
  // A full Table I dense single-ended case through the one-call facade:
  // errors collapse from the ~30 % initial band to the paper's few-percent
  // band and the oracle sweep stays clean.
  auto c = workload::table1_case(3);
  const Router router(c.rules, table1_options());
  const RouteResult res = router.route(c.layout);

  ASSERT_EQ(res.nets.size(), static_cast<std::size_t>(c.group_size));
  EXPECT_GT(res.group.initial_max_error_pct, 25.0);
  EXPECT_LT(res.group.max_error_pct, 5.0);
  EXPECT_TRUE(res.drc_clean());
  // The facade's write-back must agree with the layout's own lengths.
  const auto lengths = workload::group_member_lengths(c.layout);
  ASSERT_EQ(lengths.size(), res.nets.size());
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    EXPECT_DOUBLE_EQ(lengths[i], res.nets[i].member.final_length);
  }
}

TEST(Router, DifferentialCaseDiagnostics) {
  auto c = workload::table1_case(5);
  const Router router(c.rules, table1_options());
  const RouteResult res = router.route(c.layout);

  ASSERT_EQ(res.nets.size(), static_cast<std::size_t>(c.group_size));
  for (const NetResult& net : res.nets) {
    EXPECT_EQ(net.member.kind, layout::MemberKind::Differential);
    EXPECT_GE(net.member.final_length, net.member.initial_length);
  }
  EXPECT_LT(res.group.max_error_pct, res.group.initial_max_error_pct / 2.0);
}

TEST(Router, AidtBaselineSelection) {
  auto c = workload::table1_case(2);
  RouterOptions opts;
  opts.engine = Engine::AidtStyle;
  opts.run_drc = false;
  const Router router(c.rules, opts);
  const RouteResult res = router.route(c.layout);
  // The greedy baseline improves on the initial state but (on dense cases)
  // stays behind the DP flow's few-percent band.
  EXPECT_LT(res.group.max_error_pct, res.group.initial_max_error_pct);
  EXPECT_GT(res.group.max_error_pct, 0.0);
  EXPECT_TRUE(res.nets[0].violations.empty());  // run_drc=false: no sweep ran
}

/// route_batch must be bit-identical to route() on every trace, whatever the
/// thread count.
TEST(Router, BatchIdenticalSingleVsMultiThreaded) {
  for (const int case_id : {1, 5}) {
    auto sequential = workload::table1_case(case_id);
    auto threaded = workload::table1_case(case_id);

    RouterOptions opts = table1_options();
    opts.threads = 1;
    const RouteResult res_seq =
        Router(sequential.rules, opts).route_batch(sequential.layout);
    opts.threads = 8;
    const RouteResult res_par =
        Router(threaded.rules, opts).route_batch(threaded.layout);

    ASSERT_EQ(res_seq.nets.size(), res_par.nets.size());
    for (std::size_t i = 0; i < res_seq.nets.size(); ++i) {
      EXPECT_DOUBLE_EQ(res_seq.nets[i].member.final_length,
                       res_par.nets[i].member.final_length);
      EXPECT_EQ(res_seq.nets[i].member.patterns, res_par.nets[i].member.patterns);
      EXPECT_EQ(res_seq.nets[i].violations.size(), res_par.nets[i].violations.size());
    }
    EXPECT_DOUBLE_EQ(res_seq.group.max_error_pct, res_par.group.max_error_pct);
    // Geometry identical point for point.
    for (const auto& [id, t] : sequential.layout.traces()) {
      const auto& other = threaded.layout.trace(id).path.points();
      const auto& mine = t.path.points();
      ASSERT_EQ(mine.size(), other.size());
      for (std::size_t i = 0; i < mine.size(); ++i) {
        EXPECT_EQ(mine[i].x, other[i].x);
        EXPECT_EQ(mine[i].y, other[i].y);
      }
    }
    for (const auto& [id, p] : sequential.layout.pairs()) {
      EXPECT_EQ(p.positive.path.points().size(),
                threaded.layout.pair(id).positive.path.points().size());
      EXPECT_DOUBLE_EQ(p.positive.path.length(),
                       threaded.layout.pair(id).positive.path.length());
      EXPECT_DOUBLE_EQ(p.negative.path.length(),
                       threaded.layout.pair(id).negative.path.length());
    }
  }
}

}  // namespace
}  // namespace lmr::pipeline
