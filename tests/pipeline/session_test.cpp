/// Session / incremental-reroute oracle tests.
///
/// The contract under test: a `pipeline::Session` driven through an edit
/// script must end bit-identical — member geometry and violation sets — to
/// generating the edited board from scratch and routing it fresh, under
/// every DRC schedule and thread count; and the reroute must actually prune
/// work (strictly fewer groups re-run than the board holds) on the
/// multi-group storms. Plus the session-level mutation invariants: stale or
/// out-of-order delta lists are rejected, edits cannot interleave with a
/// route in flight, and routing never bumps the board version.

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "layout/board_edit.hpp"
#include "pipeline/session.hpp"
#include "scenario/edit_storm.hpp"

namespace lmr::pipeline {
namespace {

/// The bench suite's router configuration (Suite::router_options_for), so
/// the oracle runs the exact flow the recorded storms were validated under.
RouterOptions storm_options(const scenario::Scenario& sc, DrcSchedule schedule,
                            std::size_t threads) {
  RouterOptions o;
  o.extender.l_disc = 0.5;
  o.extender.max_width_steps = 24;
  o.drc_schedule = schedule;
  o.threads = threads;
  if (sc.spec.extender_tolerance > 0.0) o.extender.tolerance = sc.spec.extender_tolerance;
  if (sc.pair_rule_set.size() > 1) o.pair_rule_set = sc.pair_rule_set;
  return o;
}

TEST(Session, ApplyBeforeRouteThrows) {
  scenario::EditStorm storm =
      scenario::materialize_storm(scenario::edit_storm_cases(true).at(0));
  Session session(storm.scenario.rules,
                  storm_options(storm.scenario, DrcSchedule::Overlapped, 1),
                  storm.scenario.layout);
  EXPECT_THROW((void)session.apply(storm.edits.front()), std::logic_error);
}

TEST(Session, EditStormsMatchFreshRouteUnderEverySchedule) {
  for (const scenario::EditStormCase& c : scenario::edit_storm_cases(true)) {
    scenario::EditStorm storm = scenario::materialize_storm(c);
    for (const DrcSchedule schedule :
         {DrcSchedule::Barrier, DrcSchedule::Overlapped}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        SCOPED_TRACE(c.name + (schedule == DrcSchedule::Barrier ? "/barrier" : "/overlap") +
                     "/t" + std::to_string(threads));
        const RouterOptions opts = storm_options(storm.scenario, schedule, threads);

        Session session(storm.scenario.rules, opts, storm.scenario.layout);
        session.route();
        const std::uint64_t v0 = session.version();  // route() never edits
        EXPECT_EQ(v0, storm.scenario.layout.version());

        std::size_t rerouted_total = 0;
        bool pruned = false;
        for (const layout::BoardEdit& edit : storm.edits) {
          const ApplyOutcome out = session.apply(edit);
          EXPECT_FALSE(out.deltas.empty());
          rerouted_total += out.rerouted_groups.size();
          if (out.rerouted_groups.size() < out.groups_total) pruned = true;
        }
        EXPECT_GT(session.version(), v0);

        // Fresh oracle: same pristine board, same script, routed from zero.
        scenario::Scenario fresh = scenario::materialize(c.base);
        for (const layout::BoardEdit& edit : storm.edits) {
          layout::apply_edit(fresh.layout, edit);
        }
        const Router router(fresh.rules, opts);
        const BoardRoute full = router.route_board(fresh.layout);
        std::string why;
        EXPECT_TRUE(routes_equivalent(session.layout(), session.route_state(),
                                      fresh.layout, full, &why))
            << why;

        // Multi-group storms must prove incrementality, not just equality:
        // at least one edit re-routes strictly fewer groups than exist.
        if (session.layout().groups().size() > 1) {
          EXPECT_TRUE(pruned) << "every edit re-routed all "
                              << session.layout().groups().size() << " groups";
        }
        EXPECT_GT(rerouted_total, 0u);
      }
    }
  }
}

TEST(Session, BoardClearanceMatchesAFreshSessionOnTheEditedBoard) {
  const scenario::EditStormCase c = scenario::edit_storm_cases(true).at(0);
  scenario::EditStorm storm = scenario::materialize_storm(c);
  const RouterOptions opts = storm_options(storm.scenario, DrcSchedule::Overlapped, 1);

  Session session(storm.scenario.rules, opts, storm.scenario.layout);
  session.route();
  for (const layout::BoardEdit& edit : storm.edits) (void)session.apply(edit);

  scenario::Scenario fresh = scenario::materialize(c.base);
  for (const layout::BoardEdit& edit : storm.edits) {
    layout::apply_edit(fresh.layout, edit);
  }
  Session oracle(fresh.rules, opts, fresh.layout);
  oracle.route();

  // Slot numbering is first-seen member order in both sessions (identical
  // group tables), so the incrementally maintained sweep must agree with
  // the from-scratch one entry for entry — and a second call is served from
  // the cache without changing the answer.
  const std::vector<layout::Violation> incremental = session.board_clearance();
  const std::vector<layout::Violation> scratch = oracle.board_clearance();
  ASSERT_EQ(incremental.size(), scratch.size());
  for (std::size_t i = 0; i < incremental.size(); ++i) {
    EXPECT_EQ(incremental[i].trace, scratch[i].trace);
    EXPECT_EQ(incremental[i].other_trace, scratch[i].other_trace);
    EXPECT_EQ(incremental[i].index_a, scratch[i].index_a);
    EXPECT_EQ(incremental[i].index_b, scratch[i].index_b);
    EXPECT_DOUBLE_EQ(incremental[i].measured, scratch[i].measured);
  }
  EXPECT_EQ(session.board_clearance().size(), incremental.size());
}

TEST(Reroute, RejectsStaleAndOutOfOrderDeltaLists) {
  scenario::EditStorm storm =
      scenario::materialize_storm(scenario::edit_storm_cases(true).at(0));
  const RouterOptions opts = storm_options(storm.scenario, DrcSchedule::Overlapped, 1);
  const Router router(storm.scenario.rules, opts);

  layout::Layout board = storm.scenario.layout;
  const BoardRoute prior = router.route_board(board);

  std::vector<layout::LayoutDelta> deltas;
  for (int i = 0; i < 2 && i < static_cast<int>(storm.edits.size()); ++i) {
    std::vector<layout::LayoutDelta> d = layout::apply_edit(board, storm.edits[i]);
    deltas.insert(deltas.end(), d.begin(), d.end());
  }
  ASSERT_GE(deltas.size(), 2u);

  // Truncated list: the deltas no longer connect prior.version to the
  // board's version — accepting it would silently skip edits.
  std::vector<layout::LayoutDelta> stale(deltas.begin(), deltas.end() - 1);
  EXPECT_THROW((void)router.reroute(board, prior, stale), std::invalid_argument);

  // Shuffled list: right length, wrong order.
  std::vector<layout::LayoutDelta> shuffled = deltas;
  std::swap(shuffled.front(), shuffled.back());
  EXPECT_THROW((void)router.reroute(board, prior, shuffled), std::invalid_argument);

  // The intact journal suffix goes through.
  const BoardRoute next = router.reroute(board, prior, deltas);
  EXPECT_EQ(next.version, board.version());

  // A second reroute from the *old* state is stale too.
  EXPECT_THROW((void)router.reroute(board, prior, stale), std::invalid_argument);
}

TEST(Reroute, VersionIsMonotoneAcrossRouteAndReroute) {
  scenario::EditStorm storm =
      scenario::materialize_storm(scenario::edit_storm_cases(true).at(0));
  const RouterOptions opts = storm_options(storm.scenario, DrcSchedule::Overlapped, 1);
  const Router router(storm.scenario.rules, opts);

  layout::Layout board = storm.scenario.layout;
  const std::uint64_t v0 = board.version();
  BoardRoute route = router.route_board(board);
  EXPECT_EQ(board.version(), v0);  // routing write-backs never version
  EXPECT_EQ(route.version, v0);

  std::uint64_t prev = v0;
  for (const layout::BoardEdit& edit : storm.edits) {
    (void)layout::apply_edit(board, edit);
    EXPECT_GT(board.version(), prev);
    route = router.reroute(board, route);  // journal-suffix overload
    EXPECT_EQ(route.version, board.version());
    prev = board.version();
  }
}

TEST(Session, ApplyOutcomeCorrelatesEditsWithJournalVersions) {
  // Satellite contract: the outcome alone — deltas + edit_offsets +
  // version_before/after — lets a caller attribute every journal version to
  // the edit that produced it, without re-reading deltas_since.
  scenario::EditStorm storm =
      scenario::materialize_storm(scenario::edit_storm_cases(true).at(0));
  Session session(storm.scenario.rules,
                  storm_options(storm.scenario, DrcSchedule::Overlapped, 1),
                  storm.scenario.layout);
  session.route();

  // Per-edit apply: offsets are {0, deltas.size()} and the versions bracket
  // exactly the deltas returned.
  const std::uint64_t v0 = session.version();
  const ApplyOutcome one = session.apply(storm.edits.at(0));
  ASSERT_EQ(one.edit_offsets.size(), 2u);
  EXPECT_EQ(one.edit_offsets.front(), 0u);
  EXPECT_EQ(one.edit_offsets.back(), one.deltas.size());
  EXPECT_EQ(one.version_before, v0);
  EXPECT_EQ(one.version_after, session.version());
  EXPECT_EQ(one.version_after - one.version_before, one.deltas.size());
  for (std::size_t k = 0; k < one.deltas.size(); ++k) {
    EXPECT_EQ(one.deltas[k].version, one.version_before + k + 1);
  }

  // Batch apply: one offset bracket per edit, contiguous and exhaustive.
  const std::span<const layout::BoardEdit> rest(storm.edits.data() + 1,
                                                storm.edits.size() - 1);
  const ApplyOutcome batch = session.apply(rest);
  ASSERT_EQ(batch.edit_offsets.size(), rest.size() + 1);
  EXPECT_EQ(batch.edit_offsets.front(), 0u);
  EXPECT_EQ(batch.edit_offsets.back(), batch.deltas.size());
  for (std::size_t k = 0; k + 1 < batch.edit_offsets.size(); ++k) {
    EXPECT_LE(batch.edit_offsets[k], batch.edit_offsets[k + 1]);
    // Every edit lowers to at least one delta on these storms.
    EXPECT_LT(batch.edit_offsets[k], batch.edit_offsets[k + 1]);
  }
  EXPECT_EQ(batch.version_before, one.version_after);
  EXPECT_EQ(batch.version_after, session.version());
  for (std::size_t k = 0; k < batch.deltas.size(); ++k) {
    EXPECT_EQ(batch.deltas[k].version, batch.version_before + k + 1);
  }
}

TEST(Session, ReleaseThenThawContinuesIdentically) {
  // Eviction round trip: a session dismantled to {layout, route} and
  // rebuilt from the snapshot must continue an edit script exactly like the
  // session that never released — the service's thaw-on-next-edit contract.
  const scenario::EditStormCase c = scenario::edit_storm_cases(true).at(0);
  scenario::EditStorm storm = scenario::materialize_storm(c);
  const RouterOptions opts = storm_options(storm.scenario, DrcSchedule::Overlapped, 1);
  ASSERT_GE(storm.edits.size(), 2u);

  Session witness(storm.scenario.rules, opts, storm.scenario.layout);
  witness.route();

  Session before(storm.scenario.rules, opts, storm.scenario.layout);
  before.route();
  (void)witness.apply(storm.edits.at(0));
  (void)before.apply(storm.edits.at(0));

  auto [board, route] = before.release();
  Session after(storm.scenario.rules, opts, std::move(board), std::move(route));
  for (std::size_t k = 1; k < storm.edits.size(); ++k) {
    (void)witness.apply(storm.edits.at(k));
    (void)after.apply(storm.edits.at(k));
  }
  std::string why;
  EXPECT_TRUE(routes_equivalent(after.layout(), after.route_state(),
                                witness.layout(), witness.route_state(), &why))
      << why;
  // The rebuilt clearance index answers like the uninterrupted one.
  EXPECT_EQ(after.board_clearance().size(), witness.board_clearance().size());
}

TEST(Session, ReleaseAndThawErrorPaths) {
  scenario::EditStorm storm =
      scenario::materialize_storm(scenario::edit_storm_cases(true).at(0));
  const RouterOptions opts = storm_options(storm.scenario, DrcSchedule::Overlapped, 1);

  // release() before route(): no whole-board route to snapshot.
  Session unrouted(storm.scenario.rules, opts, storm.scenario.layout);
  EXPECT_THROW((void)unrouted.release(), std::logic_error);

  Session session(storm.scenario.rules, opts, storm.scenario.layout);
  session.route();

  // release() while a route is (apparently) in flight: the freeze makes
  // try_freeze fail, so dismantling is refused.
  {
    // White-box: grab a freeze on the session's own (non-const-owned) layout
    // to simulate an in-flight route. freeze_for_routing only bumps the
    // atomic freeze counter — no journaled state is touched, so the
    // recorded-mutator discipline is preserved.
    const layout::Layout::RoutingFreeze freeze =
        // lmr-lint: allow(cast, layout-state)
        const_cast<layout::Layout&>(session.layout()).freeze_for_routing();
    EXPECT_THROW((void)session.release(), std::logic_error);
  }

  // Thaw with a mismatched snapshot version is rejected up front.
  auto [board, route] = session.release();
  layout::Layout edited = board;
  (void)layout::apply_edit(edited, storm.edits.at(0));
  EXPECT_THROW(Session(storm.scenario.rules, opts, edited, route),
               std::invalid_argument);
  Session thawed(storm.scenario.rules, opts, std::move(board), std::move(route));
  EXPECT_NO_THROW((void)thawed.apply(storm.edits.at(0)));
}

TEST(Session, BatchApplyReroutesThePrefixBeforeRethrowing) {
  // Exception safety: when edit k of a batch fails to lower, the session
  // must reroute over edits [0, k) so layout and route stay in sync — and
  // then keep working normally.
  const scenario::EditStormCase c = scenario::edit_storm_cases(true).at(0);
  scenario::EditStorm storm = scenario::materialize_storm(c);
  const RouterOptions opts = storm_options(storm.scenario, DrcSchedule::Overlapped, 1);
  Session session(storm.scenario.rules, opts, storm.scenario.layout);
  session.route();

  layout::BoardEdit bogus;
  bogus.kind = layout::BoardEditKind::SetGroupTarget;
  bogus.group = session.layout().groups().size() + 7;  // no such group
  bogus.target = 100.0;

  std::vector<layout::BoardEdit> batch = {storm.edits.at(0), bogus,
                                          storm.edits.at(1)};
  EXPECT_THROW((void)session.apply(std::span<const layout::BoardEdit>(batch)),
               std::out_of_range);

  // The good prefix landed: same end state as an oracle session that
  // applied edit 0, then the remaining script on both.
  Session oracle(storm.scenario.rules, opts, storm.scenario.layout);
  oracle.route();
  (void)oracle.apply(storm.edits.at(0));
  for (std::size_t k = 1; k < storm.edits.size(); ++k) {
    (void)session.apply(storm.edits.at(k));
    (void)oracle.apply(storm.edits.at(k));
  }
  std::string why;
  EXPECT_TRUE(routes_equivalent(session.layout(), session.route_state(),
                                oracle.layout(), oracle.route_state(), &why))
      << why;
}

TEST(Reroute, BoardEditsCannotInterleaveWithARouteInFlight) {
  // Two halves. (1) Deterministic: while any routing freeze is alive —
  // exactly the state Router::run holds for its whole body — every recorded
  // mutator throws before touching the board, so an edit stream can never
  // corrupt a route in flight. (2) Threaded: a real route_all observably
  // raises the freeze from another thread (atomic read only: attempting the
  // mutation from here would race with the route's own reads between group
  // chains) and releases it by the time it returns, after which edits work.
  scenario::Scenario sc =
      scenario::materialize(scenario::family("multi_group", false).cases.at(0));
  RouterOptions opts;
  opts.extender.l_disc = 0.5;
  opts.extender.max_width_steps = 24;
  opts.threads = 2;
  const Router router(sc.rules, opts);

  {
    const layout::Layout::RoutingFreeze freeze = sc.layout.freeze_for_routing();
    const std::uint64_t v = sc.layout.version();
    EXPECT_THROW(sc.layout.add_obstacle(
                     {geom::Polygon::rect({{1.0, 1.0}, {1.5, 1.5}}), "mid-route"}),
                 std::logic_error);
    EXPECT_EQ(sc.layout.version(), v);  // the rejected edit left no journal entry
  }

  std::atomic<bool> done{false};
  std::atomic<bool> observed_frozen{false};
  std::thread worker([&] {
    (void)router.route_all(sc.layout);
    done.store(true);
  });
  while (!done.load()) {
    if (sc.layout.frozen()) observed_frozen.store(true);
  }
  worker.join();
  EXPECT_TRUE(observed_frozen.load());
  EXPECT_FALSE(sc.layout.frozen());
  const std::size_t obstacles = sc.layout.obstacle_count();
  (void)sc.layout.add_obstacle(
      {geom::Polygon::rect({{1.0, 1.0}, {1.5, 1.5}}), "post-route"});
  EXPECT_EQ(sc.layout.obstacle_count(), obstacles + 1);
}

TEST(Session, MidBatchApplyFaultKeepsThePrefixContract) {
  // Lowering of the second edit in a batch of three dies (injected
  // session:apply fault). The prefix contract: exactly one edit lowered
  // AND committed (the session reroutes the prefix before rethrowing),
  // last_partial_outcome's offsets/version bracket match that prefix, the
  // session stays in sync, and its state equals a fresh route of the
  // one-edit board. The batch's survivors then replay to the full state.
  const scenario::EditStormCase c = scenario::edit_storm_cases(true).at(0);
  scenario::EditStorm storm = scenario::materialize_storm(c);
  ASSERT_GE(storm.edits.size(), 3u);
  RouterOptions opts = storm_options(storm.scenario, DrcSchedule::Overlapped, 1);
  opts.fault_scope = "sess";
  opts.fault_plan = std::make_shared<fault::FaultPlan>();
  opts.fault_plan->add({fault::apply_site("sess"), /*nth=*/2, /*count=*/1});

  Session session(storm.scenario.rules, opts, storm.scenario.layout);
  session.route();
  const std::uint64_t v0 = session.version();

  const std::span<const layout::BoardEdit> batch(storm.edits.data(), 3);
  EXPECT_THROW((void)session.apply(batch), fault::InjectedFault);

  const std::optional<ApplyOutcome>& part = session.last_partial_outcome();
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(part->edit_offsets.size(), 2u);  // one edit lowered
  EXPECT_EQ(part->version_before, v0);
  EXPECT_EQ(part->version_after, session.version());
  EXPECT_EQ(part->version_after - part->version_before, part->deltas.size());
  EXPECT_TRUE(session.in_sync()) << "prefix reroute must have committed";

  scenario::Scenario prefix = scenario::materialize(c.base);
  layout::apply_edit(prefix.layout, storm.edits.at(0));
  const Router router(prefix.rules,
                      storm_options(prefix, DrcSchedule::Overlapped, 1));
  const BoardRoute prefix_route = router.route_board(prefix.layout);
  std::string why;
  EXPECT_TRUE(routes_equivalent(session.layout(), session.route_state(),
                                prefix.layout, prefix_route, &why))
      << why;

  // Window spent: replaying the rest converges to the full edited board,
  // and the success clears the partial record.
  (void)session.apply(std::span<const layout::BoardEdit>(storm.edits.data() + 1, 2));
  EXPECT_FALSE(session.last_partial_outcome().has_value());
  scenario::Scenario full = scenario::materialize(c.base);
  for (std::size_t k = 0; k < 3; ++k) layout::apply_edit(full.layout, storm.edits.at(k));
  const BoardRoute full_route = router.route_board(full.layout);
  EXPECT_TRUE(routes_equivalent(session.layout(), session.route_state(),
                                full.layout, full_route, &why))
      << why;
}

TEST(Session, RerouteFaultLeavesSessionOutOfSyncAndResyncHeals) {
  // The other failure phase: the edit lowers fine but the *reroute* dies
  // (first extend site visited after the initial route). The deltas are
  // journaled, the Router's rollback restored the geometry, so the session
  // reports out-of-sync — and resync() must converge it to the fresh
  // oracle without re-lowering anything.
  const scenario::EditStormCase c = scenario::edit_storm_cases(true).at(0);
  scenario::EditStorm storm = scenario::materialize_storm(c);
  RouterOptions opts = storm_options(storm.scenario, DrcSchedule::Overlapped, 1);

  // Count the members the initial route extends: the fault window starts
  // right after them, so the reroute's first member extension dies.
  std::size_t members = 0;
  for (const layout::MatchGroup& g : storm.scenario.layout.groups()) {
    members += g.members.size();
  }
  opts.fault_scope = "sess";
  opts.fault_plan = std::make_shared<fault::FaultPlan>();
  opts.fault_plan->add({"extend:sess/*", /*nth=*/members + 1, /*count=*/1});

  Session session(storm.scenario.rules, opts, storm.scenario.layout);
  session.route();
  const std::uint64_t v0 = session.version();

  EXPECT_THROW((void)session.apply(storm.edits.at(0)), fault::InjectedFault);
  const std::optional<ApplyOutcome>& part = session.last_partial_outcome();
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(part->edit_offsets.size(), 2u);  // the edit *did* lower
  EXPECT_FALSE(session.in_sync()) << "reroute failed: route must lag the journal";
  EXPECT_GT(session.version(), v0);

  const ApplyOutcome healed = session.resync();
  EXPECT_TRUE(session.in_sync());
  EXPECT_FALSE(session.last_partial_outcome().has_value());
  EXPECT_EQ(healed.version_after, session.version());
  EXPECT_FALSE(healed.rerouted_groups.empty());

  scenario::Scenario fresh = scenario::materialize(c.base);
  layout::apply_edit(fresh.layout, storm.edits.at(0));
  const Router router(fresh.rules,
                      storm_options(fresh, DrcSchedule::Overlapped, 1));
  const BoardRoute full = router.route_board(fresh.layout);
  std::string why;
  EXPECT_TRUE(routes_equivalent(session.layout(), session.route_state(),
                                fresh.layout, full, &why))
      << why;
}

}  // namespace
}  // namespace lmr::pipeline
