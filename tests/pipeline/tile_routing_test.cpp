#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "layout/board_edit.hpp"
#include "pipeline/router.hpp"
#include "pipeline/session.hpp"
#include "scenario/scenario_families.hpp"
#include "scenario/scenario_generator.hpp"

/// Tile-sharding contract of Router::route_all / route_board / reroute:
/// splitting a board into spatial tiles is a scheduling decision only —
/// routed geometry and violation sets are bit-identical for every tile
/// count and thread count, straddling groups (reach spanning a tile
/// boundary) are detected and routed with the full-board view, and the
/// published TilePlan partitions the group set exactly.

namespace lmr::pipeline {
namespace {

/// The bench suite's router configuration (Suite::router_options_for),
/// with the tile/thread knobs under test on top.
RouterOptions tile_options(const scenario::Scenario& sc, std::size_t threads,
                           std::size_t tiles) {
  RouterOptions o;
  o.extender.l_disc = 0.5;
  o.extender.max_width_steps = 24;
  o.threads = threads;
  o.tiles = tiles;
  if (sc.spec.extender_tolerance > 0.0) o.extender.tolerance = sc.spec.extender_tolerance;
  if (sc.pair_rule_set.size() > 1) o.pair_rule_set = sc.pair_rule_set;
  return o;
}

scenario::Scenario mega_smoke() {
  return scenario::materialize(scenario::family("mega_board", true).cases.at(0));
}

/// Same box the planner assigns tiles by (router.cpp group_reach): member
/// routable-area bboxes plus current path bboxes.
geom::Box reach_of(const layout::Layout& l, const layout::MatchGroup& g) {
  geom::Box reach;
  for (const layout::GroupMember& m : g.members) {
    if (const layout::RoutableArea* area = l.routable_area(m.id)) {
      reach.expand(area->bbox());
    }
    if (m.kind == layout::MemberKind::SingleEnded) {
      reach.expand(l.trace(m.id).path.bbox());
    } else {
      reach.expand(l.pair(m.id).positive.path.bbox());
      reach.expand(l.pair(m.id).negative.path.bbox());
    }
  }
  return reach;
}

/// Tiles of `plan` the group's reach box touches.
std::size_t tiles_spanned(const Router::TilePlan& plan, const geom::Box& reach) {
  std::size_t n = 0;
  for (const Router::TilePlan::Tile& t : plan.tiles) {
    if (t.box.intersects(reach)) ++n;
  }
  return n;
}

TEST(TileRouting, PlanPartitionsEveryGroupExactlyOnce) {
  // tiles=2 on the mega smoke board (48 wide x 56 tall) splits the long y
  // axis, i.e. *between* the stacked group bands: most groups land in a
  // tile, the band cut by the boundary straddles.
  const scenario::Scenario sc = mega_smoke();
  const Router router(sc.rules, tile_options(sc, 1, 2));
  const Router::TilePlan plan = router.tile_plan(sc.layout);

  ASSERT_EQ(plan.tiles_x * plan.tiles_y, std::size_t{2});
  ASSERT_EQ(plan.tiles.size(), plan.tiles_x * plan.tiles_y);

  std::vector<std::size_t> assigned;
  bool any_tile_local = false;
  for (const Router::TilePlan::Tile& tile : plan.tiles) {
    EXPECT_TRUE(tile.coverage.contains(tile.box.lo));
    EXPECT_TRUE(tile.coverage.contains(tile.box.hi));
    if (!tile.groups.empty()) {
      any_tile_local = true;
      EXPECT_GT(tile.obstacles, 0u) << "dense board: every used tile sees obstacles";
      EXPECT_LT(tile.obstacles, sc.layout.obstacles().size())
          << "tile-local subset must actually prune";
    }
    assigned.insert(assigned.end(), tile.groups.begin(), tile.groups.end());
  }
  EXPECT_TRUE(any_tile_local) << "a band-stacked board must yield tile-local groups";
  assigned.insert(assigned.end(), plan.straddlers.begin(), plan.straddlers.end());
  std::sort(assigned.begin(), assigned.end());
  std::vector<std::size_t> want(sc.layout.groups().size());
  for (std::size_t g = 0; g < want.size(); ++g) want[g] = g;
  EXPECT_EQ(assigned, want) << "tiles + straddlers must cover each group once";
}

TEST(TileRouting, MegaBoardRouteIsIdenticalAcrossTilesAndThreads) {
  // Baseline: tiling off, serial. Every (threads, tiles) combination —
  // including auto tiling — must reproduce it bit for bit.
  scenario::Scenario base = mega_smoke();
  const Router baseline(base.rules, tile_options(base, 1, 1));
  const BoardRoute want = baseline.route_board(base.layout);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const std::size_t tiles : {std::size_t{0}, std::size_t{4}, std::size_t{9}}) {
      SCOPED_TRACE("threads " + std::to_string(threads) + " tiles " + std::to_string(tiles));
      scenario::Scenario sc = mega_smoke();
      const Router router(sc.rules, tile_options(sc, threads, tiles));
      if (tiles >= 2) {
        // The forced plans must really shard (mega smoke has 8 groups).
        const Router::TilePlan plan = router.tile_plan(sc.layout);
        EXPECT_GE(plan.tiles_x * plan.tiles_y, tiles);
      }
      const BoardRoute got = router.route_board(sc.layout);
      std::string why;
      EXPECT_TRUE(routes_equivalent(base.layout, want, sc.layout, got, &why)) << why;
    }
  }
}

TEST(TileRouting, RerouteUnderTilingMatchesFreshRoute) {
  // Edit script: retarget one group, nudge one obstacle. The tiled reroute
  // must splice to exactly the state a fresh untiled route of the edited
  // board produces — and must not re-run the whole board to get there.
  const auto edits = [](layout::Layout& l) {
    layout::BoardEdit retarget;
    retarget.kind = layout::BoardEditKind::SetGroupTarget;
    retarget.group = 0;
    retarget.target = l.groups()[0].target_length * 1.02;
    layout::apply_edit(l, retarget);

    layout::BoardEdit nudge;
    nudge.kind = layout::BoardEditKind::MoveObstacle;
    nudge.obstacle = 5;
    nudge.move = {0.6, 0.3};
    layout::apply_edit(l, nudge);
  };

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    scenario::Scenario sc = mega_smoke();
    const Router router(sc.rules, tile_options(sc, threads, 4));
    const BoardRoute prior = router.route_board(sc.layout);
    edits(sc.layout);
    const BoardRoute incremental = router.reroute(sc.layout, prior);
    EXPECT_FALSE(incremental.rerouted_groups.empty());
    EXPECT_LT(incremental.rerouted_groups.size(), sc.layout.groups().size())
        << "local edits must not dirty the whole board";

    scenario::Scenario fresh = mega_smoke();
    edits(fresh.layout);
    const Router oracle(fresh.rules, tile_options(fresh, 1, 1));
    const BoardRoute full = oracle.route_board(fresh.layout);
    std::string why;
    EXPECT_TRUE(routes_equivalent(sc.layout, incremental, fresh.layout, full, &why))
        << why;
  }
}

TEST(TileRouting, AxisAlignedGroupsStraddleATwoTileSplit) {
  // multi_group smoke: two full-width bands on a corridor much wider than
  // tall. Forcing 2 tiles splits the long (x) axis, cutting every group's
  // x-run — each group's reach touches both tiles, so the planner must
  // route everything in the cross-tile pass, identically to untiled.
  scenario::Scenario sc =
      scenario::materialize(scenario::family("multi_group", true).cases.at(0));
  const Router router(sc.rules, tile_options(sc, 1, 2));
  const Router::TilePlan plan = router.tile_plan(sc.layout);
  ASSERT_EQ(plan.tiles_x * plan.tiles_y, std::size_t{2});
  ASSERT_FALSE(plan.straddlers.empty());
  for (const std::size_t g : plan.straddlers) {
    EXPECT_EQ(tiles_spanned(plan, reach_of(sc.layout, sc.layout.groups()[g])), 2u)
        << "group " << g;
  }

  scenario::Scenario ref =
      scenario::materialize(scenario::family("multi_group", true).cases.at(0));
  const BoardRoute want = Router(ref.rules, tile_options(ref, 1, 1)).route_board(ref.layout);
  const BoardRoute got = router.route_board(sc.layout);
  std::string why;
  EXPECT_TRUE(routes_equivalent(ref.layout, want, sc.layout, got, &why)) << why;
}

TEST(TileRouting, RotatedGroupsStraddleAllFourTilesOfAQuadSplit) {
  // A 30-degree board (same trick as the large_group family): every
  // rotated band's bbox covers most of the board bbox, so under a 2x2
  // split at least one group's reach touches all four tiles. Correctness
  // must come from the cross-tile pass, not the tile assignment.
  scenario::ScenarioSpec spec;
  spec.name = "test/rotated_tiles";
  spec.groups = 3;
  spec.members_per_group = 3;
  spec.corridor_length = 60.0;
  spec.corridor_angle_deg = 30.0;
  spec.extender_tolerance = 0.05;
  spec.vias_per_band = 4;

  const scenario::ScenarioGenerator gen(spec);
  scenario::Scenario sc = gen.generate(7711);
  RouterOptions opts;
  opts.extender.l_disc = 0.5;
  opts.extender.max_width_steps = 24;
  opts.extender.tolerance = spec.extender_tolerance;
  RouterOptions tiled = opts;
  tiled.tiles = 4;

  const Router router(sc.rules, tiled);
  const Router::TilePlan plan = router.tile_plan(sc.layout);
  ASSERT_GE(plan.tiles_x, std::size_t{2});
  ASSERT_GE(plan.tiles_y, std::size_t{2});
  ASSERT_FALSE(plan.straddlers.empty());
  std::size_t max_span = 0;
  for (const std::size_t g : plan.straddlers) {
    max_span = std::max(
        max_span, tiles_spanned(plan, reach_of(sc.layout, sc.layout.groups()[g])));
  }
  EXPECT_EQ(max_span, std::size_t{4}) << "want a 4-tile straddler";

  scenario::Scenario ref = gen.generate(7711);
  RouterOptions untiled = opts;
  untiled.tiles = 1;
  const BoardRoute want = Router(ref.rules, untiled).route_board(ref.layout);
  const BoardRoute got = router.route_board(sc.layout);
  std::string why;
  EXPECT_TRUE(routes_equivalent(ref.layout, want, sc.layout, got, &why)) << why;
}

}  // namespace
}  // namespace lmr::pipeline
