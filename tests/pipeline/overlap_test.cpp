#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "pipeline/router.hpp"
#include "scenario/scenario_families.hpp"
#include "workload/table1_cases.hpp"

/// Tests of the staged extend → write-back → per-net-DRC pipeline: the
/// overlapped schedule must be observationally identical to the legacy
/// barrier schedule — same geometry, same violations in the same order —
/// on every scenario family and at every thread count, and a chain that
/// throws mid-graph must leave the layout untouched.

namespace lmr::pipeline {
namespace {

RouterOptions bench_options() {
  RouterOptions opts;
  opts.extender.l_disc = 0.5;
  opts.extender.max_width_steps = 24;
  return opts;
}

void expect_identical_violations(const std::vector<layout::Violation>& a,
                                 const std::vector<layout::Violation>& b,
                                 const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << what << " #" << i;
    EXPECT_EQ(a[i].trace, b[i].trace) << what << " #" << i;
    EXPECT_EQ(a[i].other_trace, b[i].other_trace) << what << " #" << i;
    EXPECT_EQ(a[i].index_a, b[i].index_a) << what << " #" << i;
    EXPECT_EQ(a[i].index_b, b[i].index_b) << what << " #" << i;
    EXPECT_EQ(a[i].measured, b[i].measured) << what << " #" << i;
    EXPECT_EQ(a[i].required, b[i].required) << what << " #" << i;
  }
}

void expect_identical_results(const RouteResult& a, const RouteResult& b,
                              const std::string& what) {
  ASSERT_EQ(a.nets.size(), b.nets.size()) << what;
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    EXPECT_EQ(a.nets[i].member.final_length, b.nets[i].member.final_length) << what;
    EXPECT_EQ(a.nets[i].member.patterns, b.nets[i].member.patterns) << what;
    expect_identical_violations(a.nets[i].violations, b.nets[i].violations,
                                what + "/net" + std::to_string(i));
  }
  expect_identical_violations(a.cross_violations, b.cross_violations, what + "/cross");
  EXPECT_EQ(a.group.max_error_pct, b.group.max_error_pct) << what;
  EXPECT_EQ(a.group.avg_error_pct, b.group.avg_error_pct) << what;
}

void expect_identical_geometry(const layout::Layout& a, const layout::Layout& b,
                               const std::string& what) {
  for (const auto& [id, t] : a.traces()) {
    const auto& mine = t.path.points();
    const auto& other = b.trace(id).path.points();
    ASSERT_EQ(mine.size(), other.size()) << what << " trace " << id;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_EQ(mine[i].x, other[i].x) << what << " trace " << id << " point " << i;
      EXPECT_EQ(mine[i].y, other[i].y) << what << " trace " << id << " point " << i;
    }
  }
  for (const auto& [id, p] : a.pairs()) {
    for (const auto sub : {&layout::DiffPair::positive, &layout::DiffPair::negative}) {
      const auto& mine = (p.*sub).path.points();
      const auto& other = (b.pair(id).*sub).path.points();
      ASSERT_EQ(mine.size(), other.size()) << what << " pair " << id;
      for (std::size_t i = 0; i < mine.size(); ++i) {
        EXPECT_EQ(mine[i].x, other[i].x) << what << " pair " << id << " point " << i;
        EXPECT_EQ(mine[i].y, other[i].y) << what << " pair " << id << " point " << i;
      }
    }
  }
}

/// Overlapped vs barrier on every smoke scenario family, including `table1`
/// whose dense diff cases carry real (expected) oracle violations — the
/// violation *sets and orders* must match, not just their counts.
TEST(PipelineOverlap, MatchesBarrierOnAllScenarioFamilies) {
  for (const std::string& fam_name : scenario::family_names()) {
    const scenario::Family fam = scenario::family(fam_name, /*smoke=*/true);
    for (std::size_t c = 0; c < fam.cases.size(); ++c) {
      scenario::Scenario barrier_sc = scenario::materialize(fam.cases[c]);
      RouterOptions opts = bench_options();
      if (barrier_sc.spec.extender_tolerance > 0.0) {
        opts.extender.tolerance = barrier_sc.spec.extender_tolerance;
      }
      if (barrier_sc.pair_rule_set.size() > 1) {
        opts.pair_rule_set = barrier_sc.pair_rule_set;
      }
      opts.drc_schedule = DrcSchedule::Barrier;
      opts.threads = 1;
      const std::vector<RouteResult> reference =
          Router(barrier_sc.rules, opts).route_all(barrier_sc.layout);

      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        scenario::Scenario sc = scenario::materialize(fam.cases[c]);
        RouterOptions oopts = opts;
        oopts.drc_schedule = DrcSchedule::Overlapped;
        oopts.threads = threads;
        const std::vector<RouteResult> overlapped =
            Router(sc.rules, oopts).route_all(sc.layout);

        const std::string what =
            fam_name + "/case" + std::to_string(c) + "/t" + std::to_string(threads);
        ASSERT_EQ(overlapped.size(), reference.size()) << what;
        for (std::size_t g = 0; g < overlapped.size(); ++g) {
          expect_identical_results(overlapped[g], reference[g],
                                   what + "/g" + std::to_string(g));
        }
        expect_identical_geometry(sc.layout, barrier_sc.layout, what);
      }
    }
  }
}

/// A board where exactly one member's extension throws (its initial length
/// already exceeds the group target): sibling chains have extended and
/// written back by then, so the rollback must restore *their* geometry too
/// — the layout stays untouched at every thread count and schedule.
TEST(PipelineOverlap, PartiallyFailedGroupLeavesLayoutUntouched) {
  const auto make_board = [](drc::DesignRules& rules) {
    layout::Layout l;
    layout::MatchGroup g;
    g.name = "g0";
    g.target_length = 50.0;
    for (int i = 0; i < 6; ++i) {
      layout::Trace t;
      t.name = "t" + std::to_string(i);
      const double y = i * 10.0;
      // Member 3 is born longer than the target: its extension throws while
      // the cheap members may already be through their whole chain.
      const double len = i == 3 ? 60.0 : 30.0;
      t.path = geom::Polyline{{{0, y}, {len, y}}};
      const auto id = l.add_trace(t);
      layout::RoutableArea area;
      area.outline = geom::Polygon::rect({{-1, y - 4.5}, {66, y + 4.5}});
      l.set_routable_area(id, area);
      g.members.push_back({layout::MemberKind::SingleEnded, id});
    }
    l.add_group(g);
    rules = drc::DesignRules{};
    rules.gap = 1.0;
    rules.obs = 0.5;
    rules.protect = 0.5;
    return l;
  };

  for (const DrcSchedule schedule : {DrcSchedule::Overlapped, DrcSchedule::Barrier}) {
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      drc::DesignRules rules;
      layout::Layout l = make_board(rules);
      const layout::Layout before = l;

      RouterOptions opts;
      opts.threads = threads;
      opts.drc_schedule = schedule;
      const Router router(rules, opts);
      const std::string what = std::string(schedule == DrcSchedule::Overlapped
                                               ? "overlapped"
                                               : "barrier") +
                               "/t" + std::to_string(threads);
      EXPECT_THROW((void)router.route_batch(l), std::invalid_argument) << what;
      expect_identical_geometry(before, l, what);
    }
  }
}

/// The overlapped pipeline is deterministic across thread counts on a board
/// with genuine violations: identical geometry and identical violation
/// sequences, not merely equal counts.
TEST(PipelineOverlap, DeterministicViolationsAcrossThreadCounts) {
  auto reference_case = workload::table1_case(5);  // dense diff: real violations
  RouterOptions ref_opts = bench_options();
  ref_opts.threads = 1;
  const RouteResult reference =
      Router(reference_case.rules, ref_opts).route_batch(reference_case.layout);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    auto c = workload::table1_case(5);
    RouterOptions opts = bench_options();
    opts.threads = threads;
    const RouteResult res = Router(c.rules, opts).route_batch(c.layout);
    expect_identical_results(res, reference, "t" + std::to_string(threads));
    expect_identical_geometry(reference_case.layout, c.layout,
                              "t" + std::to_string(threads));
  }
}

/// Per-stage timing split: the volatile fields partition the oracle cost and
/// stay zero when DRC is disabled.
TEST(PipelineOverlap, TimingSplitIsConsistent) {
  auto c = workload::table1_case(3);
  const Router router(c.rules, bench_options());
  const RouteResult res = router.route(c.layout);
  EXPECT_GT(res.extend_runtime_s, 0.0);
  EXPECT_GT(res.drc_overlap_runtime_s, 0.0);
  EXPECT_GE(res.drc_barrier_runtime_s, 0.0);
  EXPECT_EQ(res.drc_runtime_s, res.drc_overlap_runtime_s + res.drc_barrier_runtime_s);

  auto c2 = workload::table1_case(3);
  RouterOptions no_drc = bench_options();
  no_drc.run_drc = false;
  const RouteResult res2 = Router(c2.rules, no_drc).route(c2.layout);
  EXPECT_EQ(res2.drc_overlap_runtime_s, 0.0);
  EXPECT_EQ(res2.drc_barrier_runtime_s, 0.0);
  EXPECT_EQ(res2.drc_runtime_s, 0.0);
}

}  // namespace
}  // namespace lmr::pipeline
