/// Router-level fault injection: the strong exception guarantee under the
/// deterministic fault plane. An injected fault or expired deadline at any
/// stage — member extension, the cross-member sweep, or the extender's
/// pattern loop — must unwind through Router::run's rollback and leave the
/// layout byte-identical to its pre-route state; a retry with the fault
/// window spent must then produce exactly the route an unfaulted run does.

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/cancel.hpp"
#include "fault/fault_plan.hpp"
#include "pipeline/session.hpp"
#include "scenario/edit_storm.hpp"

namespace lmr::pipeline {
namespace {

RouterOptions storm_options(const scenario::Scenario& sc) {
  RouterOptions o;
  o.extender.l_disc = 0.5;
  o.extender.max_width_steps = 24;
  if (sc.spec.extender_tolerance > 0.0) o.extender.tolerance = sc.spec.extender_tolerance;
  if (sc.pair_rule_set.size() > 1) o.pair_rule_set = sc.pair_rule_set;
  return o;
}

/// Snapshot every member path on the board for the untouched-layout check.
std::vector<std::vector<geom::Point>> all_paths(const layout::Layout& l) {
  std::vector<std::vector<geom::Point>> paths;
  for (const auto& [id, t] : l.traces()) {
    (void)id;
    paths.push_back(t.path.points());
  }
  for (const auto& [id, p] : l.pairs()) {
    (void)id;
    paths.push_back(p.positive.path.points());
    paths.push_back(p.negative.path.points());
  }
  return paths;
}

TEST(FaultInjection, ExtendFaultRollsBackAndRetrySucceeds) {
  scenario::EditStorm storm =
      scenario::materialize_storm(scenario::edit_storm_cases(true).at(0));
  RouterOptions opts = storm_options(storm.scenario);
  opts.fault_scope = "b0";
  opts.fault_plan = std::make_shared<fault::FaultPlan>();
  // Second member of group 0 dies once: sibling chains may already have
  // written back, so this exercises the restore loop, not just the throw.
  opts.fault_plan->add({fault::extend_site("b0", 0, 1), /*nth=*/1, /*count=*/1});

  layout::Layout board = storm.scenario.layout;
  const auto before = all_paths(board);
  const Router router(storm.scenario.rules, opts);
  EXPECT_THROW((void)router.route(board, 0), fault::InjectedFault);
  EXPECT_EQ(all_paths(board), before) << "rollback left residue";

  // Window spent: the retry must equal a never-faulted route bit for bit.
  const RouteResult retried = router.route(board, 0);
  layout::Layout clean_board = storm.scenario.layout;
  const Router clean(storm.scenario.rules, storm_options(storm.scenario));
  const RouteResult reference = clean.route(clean_board, 0);
  EXPECT_EQ(all_paths(board), all_paths(clean_board));
  EXPECT_EQ(retried.violation_count(), reference.violation_count());
}

TEST(FaultInjection, BoardRouteRollsBackSiblingGroupsOnFault) {
  // Board-level strong guarantee: route_all runs groups in parallel, and
  // Router::run's rollback only covers the group that threw. Sibling
  // groups that finished before the fault propagates must ALSO be
  // restored — otherwise a retry re-extends already-extended traces and
  // diverges from a fresh route. Regression test for the route_all /
  // reroute snapshot-restore wrapper; pin threads > 1 so siblings really
  // do complete while group 0 is dying.
  scenario::EditStorm storm =
      scenario::materialize_storm(scenario::edit_storm_cases(true).at(0));
  RouterOptions opts = storm_options(storm.scenario);
  opts.threads = 4;
  opts.fault_scope = "b0";
  opts.fault_plan = std::make_shared<fault::FaultPlan>();
  opts.fault_plan->add({fault::extend_site("b0", 0, 0), /*nth=*/1, /*count=*/1});

  layout::Layout board = storm.scenario.layout;
  ASSERT_GE(board.groups().size(), 2u) << "needs sibling groups to expose the leak";
  const auto before = all_paths(board);
  const Router router(storm.scenario.rules, opts);
  EXPECT_THROW((void)router.route_board(board), fault::InjectedFault);
  EXPECT_EQ(all_paths(board), before) << "a sibling group kept its geometry";

  // Window spent: the whole-board retry must match a never-faulted board.
  const BoardRoute retried = router.route_board(board);
  layout::Layout clean_board = storm.scenario.layout;
  RouterOptions clean_opts = storm_options(storm.scenario);
  clean_opts.threads = 4;
  const Router clean(storm.scenario.rules, clean_opts);
  const BoardRoute reference = clean.route_board(clean_board);
  EXPECT_EQ(all_paths(board), all_paths(clean_board));
  std::string why;
  EXPECT_TRUE(routes_equivalent(board, retried, clean_board, reference, &why)) << why;
}

TEST(FaultInjection, SweepFaultStillRollsBackEveryWriteback) {
  // The sweep site sits after all member chains completed — every member
  // has written back by then, so rollback must restore all of them.
  scenario::EditStorm storm =
      scenario::materialize_storm(scenario::edit_storm_cases(true).at(0));
  RouterOptions opts = storm_options(storm.scenario);
  opts.fault_scope = "b0";
  opts.fault_plan = std::make_shared<fault::FaultPlan>();
  opts.fault_plan->add({fault::sweep_site("b0", 0), /*nth=*/1, /*count=*/1});

  layout::Layout board = storm.scenario.layout;
  const auto before = all_paths(board);
  const Router router(storm.scenario.rules, opts);
  EXPECT_THROW((void)router.route(board, 0), fault::InjectedFault);
  EXPECT_EQ(all_paths(board), before) << "sweep-site fault skipped the rollback";
  EXPECT_NO_THROW((void)router.route(board, 0));
}

TEST(FaultInjection, ImpossibleDeadlineTimesOutCleanly) {
  scenario::EditStorm storm =
      scenario::materialize_storm(scenario::edit_storm_cases(true).at(0));
  RouterOptions opts = storm_options(storm.scenario);
  opts.deadline_s = 1e-12;

  layout::Layout board = storm.scenario.layout;
  const auto before = all_paths(board);
  const Router router(storm.scenario.rules, opts);
  EXPECT_THROW((void)router.route(board, 0), fault::RouteTimeout);
  EXPECT_EQ(all_paths(board), before);
}

TEST(FaultInjection, GenerousDeadlineDoesNotPerturbTheRoute) {
  // The armed-token path (patched extender config, per-pop polls) must be
  // behaviour-neutral: same geometry and violations as the disarmed run.
  scenario::EditStorm storm =
      scenario::materialize_storm(scenario::edit_storm_cases(true).at(0));
  RouterOptions timed = storm_options(storm.scenario);
  timed.deadline_s = 3600.0;

  layout::Layout timed_board = storm.scenario.layout;
  layout::Layout plain_board = storm.scenario.layout;
  const Router timed_router(storm.scenario.rules, timed);
  const Router plain_router(storm.scenario.rules, storm_options(storm.scenario));
  const RouteResult a = timed_router.route(timed_board, 0);
  const RouteResult b = plain_router.route(plain_board, 0);
  EXPECT_EQ(all_paths(timed_board), all_paths(plain_board));
  EXPECT_EQ(a.violation_count(), b.violation_count());
}

TEST(FaultInjection, PreCancelledTokenAbortsBeforeAnyWork) {
  scenario::EditStorm storm =
      scenario::materialize_storm(scenario::edit_storm_cases(true).at(0));
  RouterOptions opts = storm_options(storm.scenario);
  const fault::CancelToken token = fault::CancelToken::source();
  token.cancel();
  opts.cancel = token;

  layout::Layout board = storm.scenario.layout;
  const auto before = all_paths(board);
  const Router router(storm.scenario.rules, opts);
  EXPECT_THROW((void)router.route(board, 0), fault::RouteCancelled);
  EXPECT_EQ(all_paths(board), before);
}

TEST(FaultInjection, ExtenderLoopHonoursMidRouteCancellation) {
  // Cancellation polled inside the DP loop itself: cancel after routing
  // starts is observed without finishing the board (here pre-armed, the
  // first pop throws; granularity is one pattern placement).
  scenario::EditStorm storm =
      scenario::materialize_storm(scenario::edit_storm_cases(true).at(0));
  core::ExtenderConfig cfg;
  cfg.l_disc = 0.5;
  const fault::CancelToken token = fault::CancelToken::source();
  cfg.cancel = token;
  token.cancel();

  layout::Layout board = storm.scenario.layout;
  const layout::MatchGroup& group = board.groups().at(0);
  ASSERT_FALSE(group.members.empty());
  const layout::GroupMember& member = group.members.front();
  const layout::RoutableArea* area = board.routable_area(member.id);
  ASSERT_NE(area, nullptr);
  if (member.kind != layout::MemberKind::SingleEnded) {
    GTEST_SKIP() << "first member is a pair; extender loop covered via Router";
  }
  layout::Trace trace = board.trace(member.id);
  core::TraceExtender ext(storm.scenario.rules, *area);
  EXPECT_THROW((void)ext.extend(trace, trace.length() * 2.0, cfg),
               fault::RouteCancelled);
}

}  // namespace
}  // namespace lmr::pipeline
