#include "pipeline/group_matcher.hpp"

#include <gtest/gtest.h>

#include "layout/drc_checker.hpp"
#include "workload/table1_cases.hpp"

namespace lmr::pipeline {
namespace {

TEST(GroupMatcher, BadGroupIndexThrows) {
  layout::Layout l;
  drc::DesignRules r;
  GroupMatcher gm(l, r);
  EXPECT_THROW(gm.match_group(0), std::out_of_range);
}

TEST(GroupMatcher, MissingAreaThrows) {
  layout::Layout l;
  layout::Trace t;
  t.path = geom::Polyline{{{0, 0}, {10, 0}}};
  const auto id = l.add_trace(t);
  layout::MatchGroup g;
  g.target_length = 20.0;
  g.members.push_back({layout::MemberKind::SingleEnded, id});
  l.add_group(g);
  drc::DesignRules r;
  GroupMatcher gm(l, r);
  EXPECT_THROW(gm.match_group(0), std::invalid_argument);
}

TEST(GroupMatcher, SmallSingleEndedGroup) {
  layout::Layout l;
  layout::MatchGroup g;
  g.name = "g0";
  g.target_length = 50.0;
  for (int i = 0; i < 3; ++i) {
    layout::Trace t;
    t.name = "t" + std::to_string(i);
    const double y = i * 10.0;
    t.path = geom::Polyline{{{0, y}, {30.0 + i * 3.0, y}}};
    const auto id = l.add_trace(t);
    layout::RoutableArea area;
    area.outline = geom::Polygon::rect({{-1, y - 4.5}, {41, y + 4.5}});
    l.set_routable_area(id, area);
    g.members.push_back({layout::MemberKind::SingleEnded, id});
  }
  l.add_group(g);
  drc::DesignRules r;
  r.gap = 1.0;
  r.obs = 0.5;
  r.protect = 0.5;
  GroupMatcher gm(l, r);
  const GroupReport rep = gm.match_group(0);
  ASSERT_EQ(rep.members.size(), 3u);
  EXPECT_LT(rep.max_error_pct, 0.1);
  EXPECT_GT(rep.initial_max_error_pct, 30.0);
  for (const MemberReport& m : rep.members) {
    EXPECT_TRUE(m.reached) << m.name;
    EXPECT_NEAR(m.final_length, 50.0, 1e-4);
  }
  // All traces DRC-clean afterwards.
  layout::DrcChecker checker;
  for (const auto& [id, t] : l.traces()) {
    EXPECT_TRUE(checker.check_trace(t, r).empty());
  }
}

TEST(GroupMatcher, PerMemberTargetOverride) {
  layout::Layout l;
  layout::MatchGroup g;
  g.target_length = 40.0;
  layout::Trace t;
  t.path = geom::Polyline{{{0, 0}, {30, 0}}};
  const auto id = l.add_trace(t);
  layout::RoutableArea area;
  area.outline = geom::Polygon::rect({{-1, -5}, {31, 5}});
  l.set_routable_area(id, area);
  g.members.push_back({layout::MemberKind::SingleEnded, id});
  g.member_targets = {45.0};
  l.add_group(g);
  drc::DesignRules r;
  r.gap = 1.0;
  r.protect = 0.5;
  GroupMatcher gm(l, r);
  const GroupReport rep = gm.match_group(0);
  EXPECT_NEAR(rep.members[0].final_length, 45.0, 1e-4);
}

TEST(GroupMatcher, DifferentialGroupFromTable1Case5) {
  // Slimmed variant of the Table I differential case: one pair.
  auto c = workload::table1_case(5);
  // Keep only the first member to bound test runtime.
  while (c.layout.groups()[0].members.size() > 1) {
    c.layout.remove_group_member(0, c.layout.groups()[0].members.size() - 1);
  }
  GroupMatcher gm(c.layout, c.rules);
  const GroupReport rep = gm.match_group(0);
  ASSERT_EQ(rep.members.size(), 1u);
  EXPECT_EQ(rep.members[0].kind, layout::MemberKind::Differential);
  // The restored pair must be close to target (skew + restoration noise
  // permitted) and far better than the initial error.
  EXPECT_LT(rep.max_error_pct, rep.initial_max_error_pct / 3.0);
  const auto& pair = c.layout.pairs().begin()->second;
  EXPECT_FALSE(pair.positive.path.self_intersects());
  EXPECT_FALSE(pair.negative.path.self_intersects());
}

}  // namespace
}  // namespace lmr::pipeline
