#include "exec/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/steal_deque.hpp"

namespace lmr::exec {
namespace {

TEST(ResolveThreads, ZeroMeansHardwareNeverLessThanOne) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(0), resolve_threads(0));  // stable
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(5), 5u);
}

TEST(StealDeque, OwnerIsLifoThievesAreFifo) {
  StealDeque<int> d;
  int items[4] = {0, 1, 2, 3};
  for (int& i : items) d.push(&i);
  EXPECT_EQ(d.pop(), &items[3]);    // owner takes the newest
  EXPECT_EQ(d.steal(), &items[0]);  // thief takes the oldest
  EXPECT_EQ(d.steal(), &items[1]);
  EXPECT_EQ(d.pop(), &items[2]);
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
  EXPECT_TRUE(d.empty());
}

TEST(StealDeque, GrowsPastInitialCapacity) {
  StealDeque<int> d(2);
  std::vector<int> items(1000);
  for (int& i : items) d.push(&i);
  for (std::size_t k = 0; k < items.size(); ++k) {
    EXPECT_EQ(d.pop(), &items[items.size() - 1 - k]);
  }
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(StealDeque, ConcurrentStealsLoseNothing) {
  // Owner pushes then pops half; four thieves hammer the top. Every item
  // must be taken exactly once across all takers.
  StealDeque<int> d(4);
  constexpr int kItems = 20000;
  std::vector<int> items(kItems);
  std::atomic<int> taken{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int t = 0; t < 4; ++t) {
    thieves.emplace_back([&] {
      int got = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (d.steal() != nullptr) ++got;
      }
      while (d.steal() != nullptr) ++got;
      taken.fetch_add(got);
    });
  }
  int popped = 0;
  for (int i = 0; i < kItems; ++i) {
    d.push(&items[static_cast<std::size_t>(i)]);
    if (i % 2 == 1 && d.pop() != nullptr) ++popped;
  }
  while (d.pop() != nullptr) ++popped;
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();
  EXPECT_EQ(popped + taken.load(), kItems);
}

TEST(TaskPool, RunsEverySubmittedTask) {
  TaskPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  EXPECT_EQ(pool.parallelism(), 4u);
  std::atomic<int> count{0};
  TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) {
    group.run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(TaskPool, ZeroWorkerPoolRunsInlineOnWaiter) {
  TaskPool pool(0);
  EXPECT_EQ(pool.parallelism(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on;
  TaskGroup group(pool);
  for (int i = 0; i < 5; ++i) {
    group.run([&ran_on] { ran_on.push_back(std::this_thread::get_id()); });
  }
  group.wait();
  ASSERT_EQ(ran_on.size(), 5u);
  for (const auto id : ran_on) EXPECT_EQ(id, caller);
}

TEST(TaskPool, SharedSingletonIsOneInstance) {
  TaskPool& a = TaskPool::shared();
  TaskPool& b = TaskPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.parallelism(), resolve_threads(0));
  EXPECT_FALSE(a.on_worker_thread());  // the test body is not a pool worker
}

TEST(TaskGroup, WaitRethrowsFirstExceptionAndStaysReusable) {
  TaskPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    group.run([&count, i] {
      count.fetch_add(1, std::memory_order_relaxed);
      if (i == 3) throw std::runtime_error("member task failed");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(count.load(), 8);  // drain-then-rethrow: every task still ran

  // The group is reusable and the captured error does not leak into the
  // next batch.
  group.run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_NO_THROW(group.wait());
  EXPECT_EQ(count.load(), 9);
}

TEST(ParallelForDynamic, CoversEveryIndexExactlyOnce) {
  TaskPool pool(3);
  constexpr std::size_t kN = 2048;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for_dynamic(pool, kN, 4, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForDynamic, SerialWhenCapOrPoolIsOne) {
  TaskPool pool(0);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on(16);
  parallel_for_dynamic(pool, ran_on.size(), 8,
                       [&](std::size_t i) { ran_on[i] = std::this_thread::get_id(); });
  for (const auto id : ran_on) EXPECT_EQ(id, caller);

  TaskPool wide(3);
  parallel_for_dynamic(wide, ran_on.size(), 1,
                       [&](std::size_t i) { ran_on[i] = std::this_thread::get_id(); });
  for (const auto id : ran_on) EXPECT_EQ(id, caller);
}

TEST(ParallelForDynamic, PropagatesExceptions) {
  TaskPool pool(3);
  EXPECT_THROW(parallel_for_dynamic(pool, 64, 4,
                                    [&](std::size_t i) {
                                      if (i == 37) throw std::invalid_argument("bad index");
                                    }),
               std::invalid_argument);
}

TEST(ParallelForDynamic, NestedSubmissionDoesNotDeadlock) {
  // The Suite-runs-Router shape: outer tasks fan out again on the same
  // pool and wait. With blocking waiters this deadlocks as soon as the
  // outer width reaches the worker count; helping waiters must finish it.
  TaskPool pool(2);  // deliberately narrower than the outer width
  constexpr std::size_t kOuter = 8, kInner = 16;
  std::atomic<int> total{0};
  parallel_for_dynamic(pool, kOuter, kOuter, [&](std::size_t) {
    parallel_for_dynamic(pool, kInner, 4, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), static_cast<int>(kOuter * kInner));
}

TEST(TaskPool, PersistsAcrossRepeatedFanOuts) {
  // Reuse contract: many fan-outs on one pool never run on more distinct
  // threads than workers + caller — i.e. no per-call thread spawning.
  TaskPool pool(2);
  std::mutex mu;
  std::set<std::thread::id> seen;
  for (int call = 0; call < 200; ++call) {
    parallel_for_dynamic(pool, 8, 3, [&](std::size_t) {
      const std::lock_guard<std::mutex> lock(mu);
      seen.insert(std::this_thread::get_id());
    });
  }
  EXPECT_LE(seen.size(), pool.worker_count() + 1);
}

}  // namespace
}  // namespace lmr::exec
