#include "exec/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/steal_deque.hpp"

namespace lmr::exec {
namespace {

TEST(ResolveThreads, ZeroMeansHardwareNeverLessThanOne) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(0), resolve_threads(0));  // stable
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(5), 5u);
}

TEST(StealDeque, OwnerIsLifoThievesAreFifo) {
  StealDeque<int> d;
  int items[4] = {0, 1, 2, 3};
  for (int& i : items) d.push(&i);
  EXPECT_EQ(d.pop(), &items[3]);    // owner takes the newest
  EXPECT_EQ(d.steal(), &items[0]);  // thief takes the oldest
  EXPECT_EQ(d.steal(), &items[1]);
  EXPECT_EQ(d.pop(), &items[2]);
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
  EXPECT_TRUE(d.empty());
}

TEST(StealDeque, GrowsPastInitialCapacity) {
  StealDeque<int> d(2);
  std::vector<int> items(1000);
  for (int& i : items) d.push(&i);
  for (std::size_t k = 0; k < items.size(); ++k) {
    EXPECT_EQ(d.pop(), &items[items.size() - 1 - k]);
  }
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(StealDeque, ConcurrentStealsLoseNothing) {
  // Owner pushes then pops half; four thieves hammer the top. Every item
  // must be taken exactly once across all takers.
  StealDeque<int> d(4);
  constexpr int kItems = 20000;
  std::vector<int> items(kItems);
  std::atomic<int> taken{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int t = 0; t < 4; ++t) {
    thieves.emplace_back([&] {
      int got = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (d.steal() != nullptr) ++got;
      }
      while (d.steal() != nullptr) ++got;
      taken.fetch_add(got);
    });
  }
  int popped = 0;
  for (int i = 0; i < kItems; ++i) {
    d.push(&items[static_cast<std::size_t>(i)]);
    if (i % 2 == 1 && d.pop() != nullptr) ++popped;
  }
  while (d.pop() != nullptr) ++popped;
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();
  EXPECT_EQ(popped + taken.load(), kItems);
}

TEST(TaskPool, RunsEverySubmittedTask) {
  TaskPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  EXPECT_EQ(pool.parallelism(), 4u);
  std::atomic<int> count{0};
  TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) {
    group.run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(TaskPool, ZeroWorkerPoolRunsInlineOnWaiter) {
  TaskPool pool(0);
  EXPECT_EQ(pool.parallelism(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on;
  TaskGroup group(pool);
  for (int i = 0; i < 5; ++i) {
    group.run([&ran_on] { ran_on.push_back(std::this_thread::get_id()); });
  }
  group.wait();
  ASSERT_EQ(ran_on.size(), 5u);
  for (const auto id : ran_on) EXPECT_EQ(id, caller);
}

TEST(TaskPool, SharedSingletonIsOneInstance) {
  TaskPool& a = TaskPool::shared();
  TaskPool& b = TaskPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.parallelism(), resolve_threads(0));
  EXPECT_FALSE(a.on_worker_thread());  // the test body is not a pool worker
}

TEST(TaskGroup, WaitRethrowsFirstExceptionAndStaysReusable) {
  TaskPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    group.run([&count, i] {
      count.fetch_add(1, std::memory_order_relaxed);
      if (i == 3) throw std::runtime_error("member task failed");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(count.load(), 8);  // drain-then-rethrow: every task still ran

  // The group is reusable and the captured error does not leak into the
  // next batch.
  group.run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_NO_THROW(group.wait());
  EXPECT_EQ(count.load(), 9);
}

TEST(ParallelForDynamic, CoversEveryIndexExactlyOnce) {
  TaskPool pool(3);
  constexpr std::size_t kN = 2048;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for_dynamic(pool, kN, 4, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForDynamic, SerialWhenCapOrPoolIsOne) {
  TaskPool pool(0);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on(16);
  parallel_for_dynamic(pool, ran_on.size(), 8,
                       [&](std::size_t i) { ran_on[i] = std::this_thread::get_id(); });
  for (const auto id : ran_on) EXPECT_EQ(id, caller);

  TaskPool wide(3);
  parallel_for_dynamic(wide, ran_on.size(), 1,
                       [&](std::size_t i) { ran_on[i] = std::this_thread::get_id(); });
  for (const auto id : ran_on) EXPECT_EQ(id, caller);
}

TEST(ParallelForDynamic, PropagatesExceptions) {
  TaskPool pool(3);
  EXPECT_THROW(parallel_for_dynamic(pool, 64, 4,
                                    [&](std::size_t i) {
                                      if (i == 37) throw std::invalid_argument("bad index");
                                    }),
               std::invalid_argument);
}

TEST(ParallelForDynamic, NestedSubmissionDoesNotDeadlock) {
  // The Suite-runs-Router shape: outer tasks fan out again on the same
  // pool and wait. With blocking waiters this deadlocks as soon as the
  // outer width reaches the worker count; helping waiters must finish it.
  TaskPool pool(2);  // deliberately narrower than the outer width
  constexpr std::size_t kOuter = 8, kInner = 16;
  std::atomic<int> total{0};
  parallel_for_dynamic(pool, kOuter, kOuter, [&](std::size_t) {
    parallel_for_dynamic(pool, kInner, 4, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), static_cast<int>(kOuter * kInner));
}

TEST(TaskPool, PersistsAcrossRepeatedFanOuts) {
  // Reuse contract: many fan-outs on one pool never run on more distinct
  // threads than workers + caller — i.e. no per-call thread spawning.
  TaskPool pool(2);
  std::mutex mu;
  std::set<std::thread::id> seen;
  for (int call = 0; call < 200; ++call) {
    parallel_for_dynamic(pool, 8, 3, [&](std::size_t) {
      const std::lock_guard<std::mutex> lock(mu);
      seen.insert(std::this_thread::get_id());
    });
  }
  EXPECT_LE(seen.size(), pool.worker_count() + 1);
}

TEST(TaskGroupChain, StagesRunStrictlyInOrder) {
  TaskPool pool(3);
  TaskGroup group(pool);
  std::vector<int> order;
  std::mutex mu;
  const auto stage = [&](int k) {
    return [&, k] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(k);
    };
  };
  group.run_chain({stage(0), stage(1), stage(2), stage(3)});
  group.wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TaskGroupChain, LaterStagesSeePredecessorWrites) {
  // The continuation contract the router's write-back -> DRC handoff rests
  // on: stage k+1 is submitted after stage k returned, so plain (unsynced)
  // writes are visible through the submit/execute edge.
  TaskPool pool(2);
  TaskGroup group(pool);
  for (int rep = 0; rep < 100; ++rep) {
    int value = 0;
    bool saw = false;
    group.run_chain({[&] { value = 42; }, [&] { saw = value == 42; }});
    group.wait();
    ASSERT_TRUE(saw) << "rep " << rep;
  }
}

TEST(TaskGroupChain, ThrowShortCircuitsTheTailButDrainsSiblings) {
  TaskPool pool(2);
  TaskGroup group(pool);
  std::atomic<bool> tail_ran{false};
  std::atomic<int> sibling_stages{0};
  group.run_chain({[] {}, [] { throw std::runtime_error("stage failed"); },
                   [&] { tail_ran = true; }});
  for (int c = 0; c < 8; ++c) {
    group.run_chain({[&] { ++sibling_stages; }, [&] { ++sibling_stages; }});
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_FALSE(tail_ran.load());           // the failed chain's tail never queued
  EXPECT_EQ(sibling_stages.load(), 16);    // other chains drained fully
}

TEST(TaskGroupChain, ManyChainsInterleaveWithPerChainOrder) {
  TaskPool pool(3);
  TaskGroup group(pool);
  constexpr int kChains = 32;
  constexpr int kStages = 4;
  std::atomic<int> progress[kChains];
  std::atomic<bool> in_order{true};
  for (auto& p : progress) p = 0;
  for (int c = 0; c < kChains; ++c) {
    std::vector<std::function<void()>> stages;
    for (int k = 0; k < kStages; ++k) {
      stages.push_back([&, c, k] {
        if (progress[c].exchange(k + 1) != k) in_order = false;
      });
    }
    group.run_chain(std::move(stages));
  }
  group.wait();
  EXPECT_TRUE(in_order.load());
  for (const auto& p : progress) EXPECT_EQ(p.load(), kStages);
}

TEST(TaskGroupChain, SubmittedFromWorkerTaskRunsToCompletion) {
  // A chain launched from inside a pool task (the router launches successor
  // member chains from chain tails) lands on that worker's own deque and
  // still completes before wait() returns.
  TaskPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> done{0};
  group.run([&] {
    group.run_chain({[&] { ++done; }, [&] { ++done; }});
  });
  group.wait();
  EXPECT_EQ(done.load(), 2);
}

TEST(TaskGroupChain, EmptyChainIsANoOp) {
  TaskPool pool(1);
  TaskGroup group(pool);
  group.run_chain({});
  group.wait();  // must not hang or underflow the pending count
}

}  // namespace
}  // namespace lmr::exec
