#include "baseline/fixed_track.hpp"
#include "baseline/aidt_style.hpp"

#include <gtest/gtest.h>

#include "core/trace_extender.hpp"
#include "layout/drc_checker.hpp"

namespace lmr::baseline {
namespace {

using geom::Polygon;
using geom::Polyline;

drc::DesignRules rules() {
  drc::DesignRules r;
  r.gap = 1.0;
  r.obs = 0.5;
  r.protect = 0.5;
  r.trace_width = 0.0;
  return r;
}

layout::RoutableArea corridor(double y0, double y1) {
  layout::RoutableArea a;
  a.outline = Polygon::rect({{-1, y0}, {31, y1}});
  return a;
}

layout::Trace straight() {
  layout::Trace t;
  t.id = 1;
  t.path = Polyline{{{0, 0}, {30, 0}}};
  return t;
}

void expect_clean(const layout::Trace& t, const layout::RoutableArea& area) {
  layout::DrcChecker checker;
  const auto v = checker.check_trace(t, rules());
  EXPECT_TRUE(v.empty()) << (v.empty() ? "" : v[0].note);
  std::vector<layout::Obstacle> obs;
  for (const auto& h : area.holes) obs.push_back({h, "hole"});
  EXPECT_TRUE(checker.check_obstacles(t, rules(), obs).empty());
  EXPECT_TRUE(checker.check_containment(t, area).empty());
}

TEST(FixedTrack, ReachesTargetInOpenCorridor) {
  auto area = corridor(-6, 6);
  auto t = straight();
  FixedTrackMeanderer m(rules(), area);
  const FixedTrackStats stats = m.extend(t, 50.0);
  EXPECT_TRUE(stats.reached) << t.path.length();
  EXPECT_NEAR(t.path.length(), 50.0, 1e-4);
  expect_clean(t, area);
}

TEST(FixedTrack, TargetBelowLengthThrows) {
  auto area = corridor(-6, 6);
  auto t = straight();
  FixedTrackMeanderer m(rules(), area);
  EXPECT_THROW(m.extend(t, 10.0), std::invalid_argument);
}

TEST(FixedTrack, MaximizeBoundedByCorridor) {
  auto area = corridor(-3, 3);
  auto t = straight();
  FixedTrackMeanderer m(rules(), area);
  const FixedTrackStats stats = m.maximize(t);
  EXPECT_GT(stats.final_length, stats.initial_length);
  // Height capped at 3 - half(0.5) = 2.5 per side; patterns width 1 pitch 1:
  // upper bound on gain is comfortably below the DP's reach.
  expect_clean(t, area);
}

TEST(FixedTrack, SkipsBlockedTracksInsteadOfAdapting) {
  // A via field blocks some fixed tracks; the baseline must still be clean
  // but gains less than the DP engine on the identical scene.
  auto area = corridor(-5, 5);
  for (int i = 0; i < 6; ++i) {
    area.holes.push_back(Polygon::regular({4.0 + 4.5 * i, 2.0}, 0.9, 8));
    area.holes.push_back(Polygon::regular({6.0 + 4.5 * i, -2.0}, 0.9, 8));
  }
  auto t_base = straight();
  FixedTrackMeanderer m(rules(), area);
  m.maximize(t_base);
  expect_clean(t_base, area);

  auto t_dp = straight();
  core::TraceExtender ext(rules(), area);
  ext.maximize(t_dp);

  EXPECT_GE(t_dp.path.length(), t_base.path.length() - 1e-6)
      << "DP engine must dominate the fixed-track baseline";
}

TEST(FixedTrack, NoEnclosureOfObstacles) {
  // An obstacle that the DP would wrap: the baseline must stay below it.
  auto area = corridor(-6, 6);
  area.holes.push_back(Polygon::rect({{14, 2.0}, {16, 3.0}}));
  auto t = straight();
  FixedTrackMeanderer m(rules(), area);
  m.maximize(t);
  // No trace point may sit above the obstacle bottom within its x-span
  // (wrapping would need points above y=3 between x=14 and 16... the
  // baseline cannot produce any point beyond 2.0 - effective clearance
  // in that window).
  for (const auto& p : t.path.points()) {
    if (p.x > 13.9 && p.x < 16.1) {
      EXPECT_LT(p.y, 2.01);
    }
  }
  expect_clean(t, area);
}

TEST(AidtStyle, TwoPassRefinementImproves) {
  auto area = corridor(-5, 5);
  for (int i = 0; i < 5; ++i) {
    area.holes.push_back(Polygon::regular({5.0 + 5.0 * i, 2.2}, 1.0, 8));
  }
  auto t = straight();
  AidtStyleTuner tuner(rules(), area);
  const AidtStats stats = tuner.tune(t, 55.0);
  EXPECT_GT(stats.final_length, stats.initial_length);
  EXPECT_GE(stats.passes, 1);
  expect_clean(t, area);
}

TEST(AidtStyle, OpenSpaceHitsTarget) {
  auto area = corridor(-8, 8);
  auto t = straight();
  AidtStyleTuner tuner(rules(), area);
  const AidtStats stats = tuner.tune(t, 60.0);
  EXPECT_TRUE(stats.reached) << stats.final_length;
  expect_clean(t, area);
}

}  // namespace
}  // namespace lmr::baseline
