#include "assign/assignment_lp.hpp"
#include "assign/region_assigner.hpp"

#include <gtest/gtest.h>

namespace lmr::assign {
namespace {

TEST(AssignmentLp, FeasibleSplit) {
  AssignmentInput in;
  in.capacity = {10.0, 10.0};
  in.requirement = {6.0, 6.0};
  in.neighbor = {{true, true}, {true, true}};
  const AssignmentResult r = solve_assignment(in);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.x[0][0] + r.x[1][0], 6.0 - 1e-7);
  EXPECT_GE(r.x[0][1] + r.x[1][1], 6.0 - 1e-7);
  EXPECT_LE(r.x[0][0] + r.x[0][1], 10.0 + 1e-7);
}

TEST(AssignmentLp, NeighborValidityEnforced) {
  // Trace 0 can only use region 0 (Eq. 1): requirement must fit there.
  AssignmentInput in;
  in.capacity = {5.0, 100.0};
  in.requirement = {6.0, 1.0};
  in.neighbor = {{true, true}, {false, true}};
  const AssignmentResult r = solve_assignment(in);
  EXPECT_FALSE(r.feasible);  // 6 > 5 and region 1 is not a neighbor
}

TEST(AssignmentLp, InfeasibleTotalDemand) {
  AssignmentInput in;
  in.capacity = {4.0};
  in.requirement = {3.0, 3.0};
  in.neighbor = {{true, true}};
  EXPECT_FALSE(solve_assignment(in).feasible);
}

TEST(AssignmentLp, IsolatedTraceWithZeroNeedOk) {
  AssignmentInput in;
  in.capacity = {4.0};
  in.requirement = {2.0, 0.0};
  in.neighbor = {{true, false}};
  const AssignmentResult r = solve_assignment(in);
  EXPECT_TRUE(r.feasible);
}

TEST(AssignmentLp, SizeValidation) {
  AssignmentInput in;
  in.capacity = {1.0};
  in.requirement = {1.0};
  in.neighbor = {};  // wrong row count
  EXPECT_THROW(solve_assignment(in), std::invalid_argument);
}

TEST(SpaceRequirement, ScalesWithExtraAndGap) {
  drc::DesignRules r;
  r.gap = 2.0;
  r.trace_width = 0.0;
  EXPECT_DOUBLE_EQ(space_requirement(10.0, r), 10.0);  // 10 * 2/2
  EXPECT_DOUBLE_EQ(space_requirement(0.0, r), 0.0);
  EXPECT_DOUBLE_EQ(space_requirement(-5.0, r), 0.0);
}

TEST(RegionAssigner, CorridorBundleProducesDisjointAreas) {
  // Three stacked traces with moderate requirements in an empty bundle.
  layout::Trace t0, t1, t2;
  t0.path = geom::Polyline{{{0, 2}, {40, 2}}};
  t1.path = geom::Polyline{{{0, 6}, {40, 6}}};
  t2.path = geom::Polyline{{{0, 10}, {40, 10}}};
  CorridorSpec spec;
  spec.bundle = {{0, 0}, {40, 12}};
  spec.traces = {&t0, &t1, &t2};
  spec.targets = {60.0, 60.0, 60.0};
  spec.rules.gap = 1.0;
  spec.rules.protect = 0.5;
  const CorridorAssignment a = assign_corridors(spec);
  ASSERT_TRUE(a.feasible);
  ASSERT_EQ(a.areas.size(), 3u);
  for (const auto& area : a.areas) {
    EXPECT_GE(area.outline.size(), 4u);
    EXPECT_GT(area.free_area(), 0.0);
  }
  // Each trace inside its own area; not inside the neighbours'.
  EXPECT_TRUE(a.areas[0].contains({20, 2}));
  EXPECT_TRUE(a.areas[1].contains({20, 6}));
  EXPECT_TRUE(a.areas[2].contains({20, 10}));
  EXPECT_FALSE(a.areas[0].contains({20, 10}));
  EXPECT_FALSE(a.areas[2].contains({20, 2}));
}

TEST(RegionAssigner, ObstacleSpaceCarvedOut) {
  layout::Trace t0;
  t0.path = geom::Polyline{{{0, 3}, {40, 3}}};
  CorridorSpec spec;
  spec.bundle = {{0, 0}, {40, 6}};
  spec.traces = {&t0};
  spec.targets = {50.0};
  spec.rules.gap = 1.0;
  spec.rules.protect = 0.5;
  spec.obstacles.push_back(geom::Polygon::rect({{18, 4.2}, {20, 5.2}}));
  const CorridorAssignment a = assign_corridors(spec);
  ASSERT_TRUE(a.feasible);
  ASSERT_EQ(a.areas.size(), 1u);
  // The slab decomposition carves the obstacle's inflated footprint out of
  // the assigned region: neither the obstacle nor its clearance band is
  // inside the area, while the trace's own corridor remains.
  EXPECT_FALSE(a.areas[0].contains({19.0, 4.7}));  // obstacle centroid
  EXPECT_TRUE(a.areas[0].contains({5.0, 3.0}));
  EXPECT_TRUE(a.areas[0].contains({19.0, 2.0}));   // below the obstacle band
}

TEST(RegionAssigner, InfeasibleWhenBundleTooTight) {
  layout::Trace t0;
  t0.path = geom::Polyline{{{0, 1}, {40, 1}}};
  CorridorSpec spec;
  spec.bundle = {{0, 0}, {40, 2}};  // area 80
  spec.traces = {&t0};
  spec.targets = {1000.0};  // needs ~480 of space
  spec.rules.gap = 1.0;
  spec.rules.protect = 0.5;
  const CorridorAssignment a = assign_corridors(spec);
  EXPECT_FALSE(a.feasible);
}

}  // namespace
}  // namespace lmr::assign
