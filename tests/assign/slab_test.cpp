#include "assign/slab_decomposition.hpp"

#include <gtest/gtest.h>

namespace lmr::assign {
namespace {

TEST(Slabs, EmptyObstaclesOneSlab) {
  const auto slabs = decompose_slabs({{0, 0}, {10, 5}}, {}, 0.0);
  ASSERT_EQ(slabs.size(), 1u);
  EXPECT_DOUBLE_EQ(slabs[0].free_area(), 50.0);
  ASSERT_EQ(slabs[0].free_y.size(), 1u);
}

TEST(Slabs, SingleObstacleCutsThree) {
  std::vector<geom::Polygon> obs{geom::Polygon::rect({{4, 1}, {6, 2}})};
  const auto slabs = decompose_slabs({{0, 0}, {10, 5}}, obs, 0.0);
  ASSERT_EQ(slabs.size(), 3u);
  EXPECT_DOUBLE_EQ(slabs[0].x1, 4.0);
  EXPECT_DOUBLE_EQ(slabs[1].x0, 4.0);
  EXPECT_DOUBLE_EQ(slabs[1].x1, 6.0);
  // Middle slab free area: width 2 * (5 - blocked 1) = 8.
  EXPECT_DOUBLE_EQ(slabs[1].free_area(), 8.0);
  ASSERT_EQ(slabs[1].free_y.size(), 2u);
}

TEST(Slabs, ClearanceInflatesFootprint) {
  std::vector<geom::Polygon> obs{geom::Polygon::rect({{4, 2}, {6, 3}})};
  const auto slabs = decompose_slabs({{0, 0}, {10, 5}}, obs, 0.5);
  ASSERT_EQ(slabs.size(), 3u);
  EXPECT_DOUBLE_EQ(slabs[1].x0, 3.5);
  EXPECT_DOUBLE_EQ(slabs[1].x1, 6.5);
  // Blocked y: [1.5, 3.5].
  ASSERT_EQ(slabs[1].free_y.size(), 2u);
  EXPECT_DOUBLE_EQ(slabs[1].free_y[0].hi, 1.5);
}

TEST(Slabs, FreeSpanLookup) {
  std::vector<geom::Polygon> obs{geom::Polygon::rect({{4, 1}, {6, 2}})};
  const auto slabs = decompose_slabs({{0, 0}, {10, 5}}, obs, 0.0);
  const Slab& mid = slabs[1];
  EXPECT_NE(mid.free_span_at(0.5), nullptr);
  EXPECT_NE(mid.free_span_at(3.0), nullptr);
  EXPECT_EQ(mid.free_span_at(1.5), nullptr);  // inside the obstacle
}

TEST(Slabs, OverlappingObstaclesMerge) {
  std::vector<geom::Polygon> obs{geom::Polygon::rect({{2, 1}, {5, 2}}),
                                 geom::Polygon::rect({{4, 1.5}, {8, 3}})};
  const auto slabs = decompose_slabs({{0, 0}, {10, 5}}, obs, 0.0);
  // Slab between 4 and 5 sees both obstacles; blocked [1, 3].
  for (const Slab& s : slabs) {
    if (s.x0 >= 4.0 && s.x1 <= 5.0) {
      ASSERT_EQ(s.free_y.size(), 2u);
      EXPECT_DOUBLE_EQ(s.free_y[0].hi, 1.0);
      EXPECT_DOUBLE_EQ(s.free_y[1].lo, 3.0);
    }
  }
}

TEST(Slabs, ObstacleOutsideBundleIgnored) {
  std::vector<geom::Polygon> obs{geom::Polygon::rect({{20, 1}, {22, 2}})};
  const auto slabs = decompose_slabs({{0, 0}, {10, 5}}, obs, 0.0);
  EXPECT_EQ(slabs.size(), 1u);
}

}  // namespace
}  // namespace lmr::assign
