#include "dtw/median_trace.hpp"

#include <gtest/gtest.h>

namespace lmr::dtw {
namespace {

using geom::Point;

TEST(MedianTrace, SimplePairAverages) {
  const std::vector<Point> p{{0, 0.4}, {10, 0.4}};
  const std::vector<Point> n{{0, -0.4}, {10, -0.4}};
  const std::vector<MatchPair> pairs{{0, 0, 0.8}, {1, 1, 0.8}};
  const MedianTrace mt = build_median_trace(p, n, pairs);
  ASSERT_EQ(mt.median.size(), 2u);
  EXPECT_TRUE(geom::almost_equal(mt.median[0], {0.0, 0.0}));
  EXPECT_TRUE(geom::almost_equal(mt.median[1], {10.0, 0.0}));
}

TEST(MedianTrace, ManyToOneDoesNotShiftMedian) {
  // Three P nodes clustered at a corner matched to one N node: Eq. 18 first
  // averages per side, so the median sits midway between the cluster
  // centroid and the single node — NOT dragged toward the cluster by count.
  const std::vector<Point> p{{9.9, 0.4}, {10.0, 0.44}, {10.1, 0.4}};
  const std::vector<Point> n{{10.0, -0.4}};
  const std::vector<MatchPair> pairs{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}};
  const MedianTrace mt = build_median_trace(p, n, pairs);
  ASSERT_EQ(mt.median.size(), 1u);
  EXPECT_NEAR(mt.median[0].x, 10.0, 1e-9);
  // avg P y = (0.4+0.44+0.4)/3 = 0.41333; median = (0.41333 - 0.4)/2.
  EXPECT_NEAR(mt.median[0].y, (0.41333333333333333 - 0.4) / 2.0, 1e-9);
}

TEST(MedianTrace, UnpairedNodesExcluded) {
  const std::vector<Point> p{{0, 0.4}, {5, 0.4}, {10, 0.4}};
  const std::vector<Point> n{{0, -0.4}, {5, -3.0}, {10, -0.4}};  // node 1 filtered
  const std::vector<MatchPair> pairs{{0, 0, 0.8}, {2, 2, 0.8}};  // only ends
  const MedianTrace mt = build_median_trace(p, n, pairs);
  ASSERT_EQ(mt.median.size(), 2u);
  EXPECT_TRUE(geom::almost_equal(mt.median[0], {0.0, 0.0}));
  EXPECT_TRUE(geom::almost_equal(mt.median[1], {10.0, 0.0}));
}

TEST(MedianTrace, ComponentsOrderedAlongTrace) {
  const std::vector<Point> p{{0, 0}, {5, 0}, {10, 0}, {15, 0}};
  const std::vector<Point> n{{0, 1}, {5, 1}, {10, 1}, {15, 1}};
  const std::vector<MatchPair> pairs{{0, 0, 1}, {1, 1, 1}, {2, 2, 1}, {3, 3, 1}};
  const MedianTrace mt = build_median_trace(p, n, pairs);
  ASSERT_EQ(mt.median.size(), 4u);
  for (std::size_t i = 1; i < 4; ++i) EXPECT_GT(mt.median[i].x, mt.median[i - 1].x);
}

TEST(MedianTrace, ChainedPairsMergeIntoOneComponent) {
  // P0-N0 and P1-N0 and P1-N1 chain: one component of {P0,P1,N0,N1}.
  const std::vector<Point> p{{0, 1}, {1, 1}};
  const std::vector<Point> n{{0, -1}, {1, -1}};
  const std::vector<MatchPair> pairs{{0, 0, 0}, {1, 0, 0}, {1, 1, 0}};
  const MedianTrace mt = build_median_trace(p, n, pairs);
  ASSERT_EQ(mt.components.size(), 1u);
  EXPECT_EQ(mt.components[0].p_nodes.size(), 2u);
  EXPECT_EQ(mt.components[0].n_nodes.size(), 2u);
  EXPECT_TRUE(geom::almost_equal(mt.median[0], {0.5, 0.0}));
}

TEST(MedianTrace, PairRulesAttributeComponents) {
  // Two components from two DRA rounds: the first carries the narrow rule,
  // the second the wide one; a chained component takes its widest pair rule.
  const std::vector<Point> p{{0, 0.4}, {10, 1.2}, {11, 1.2}};
  const std::vector<Point> n{{0, -0.4}, {10, -1.2}};
  const std::vector<MatchPair> pairs{{0, 0, 0.8}, {1, 1, 2.4}, {2, 1, 2.5}};
  const std::vector<double> rules{0.8, 2.4, 2.4};
  const MedianTrace mt = build_median_trace(p, n, pairs, rules);
  ASSERT_EQ(mt.components.size(), 2u);
  EXPECT_DOUBLE_EQ(mt.components[0].rule, 0.8);
  EXPECT_DOUBLE_EQ(mt.components[1].rule, 2.4);
}

TEST(MedianTrace, NoRulesLeaveComponentsUnattributed) {
  const std::vector<Point> p{{0, 0.4}, {10, 0.4}};
  const std::vector<Point> n{{0, -0.4}, {10, -0.4}};
  const std::vector<MatchPair> pairs{{0, 0, 0.8}, {1, 1, 0.8}};
  const MedianTrace mt = build_median_trace(p, n, pairs);
  for (const MedianComponent& c : mt.components) EXPECT_DOUBLE_EQ(c.rule, 0.0);
}

TEST(MedianTrace, EmptyPairsEmptyMedian) {
  const std::vector<Point> p{{0, 0}};
  const std::vector<Point> n{{0, 1}};
  const MedianTrace mt = build_median_trace(p, n, {});
  EXPECT_TRUE(mt.median.empty());
}

}  // namespace
}  // namespace lmr::dtw
