#include "dtw/msdtw.hpp"

#include <gtest/gtest.h>

#include "workload/diffpair_cases.hpp"

namespace lmr::dtw {
namespace {

using geom::Point;

TEST(Msdtw, RejectsBadRuleSets) {
  const std::vector<Point> p{{0, 0}};
  const std::vector<Point> n{{0, 1}};
  EXPECT_THROW(msdtw_match(p, n, {}), std::invalid_argument);
  const std::vector<double> descending{2.0, 1.0};
  EXPECT_THROW(msdtw_match(p, n, descending), std::invalid_argument);
}

TEST(Msdtw, CoupledPairFullyMatched) {
  const std::vector<Point> p{{0, 0.4}, {10, 0.4}, {20, 0.4}};
  const std::vector<Point> n{{0, -0.4}, {10, -0.4}, {20, -0.4}};
  const std::vector<double> rules{0.8};
  const MsdtwResult r = msdtw_match(p, n, rules);
  for (bool b : r.p_paired) EXPECT_TRUE(b);
  for (bool b : r.n_paired) EXPECT_TRUE(b);
  EXPECT_EQ(r.pairs.size(), 3u);
}

TEST(Msdtw, TinyPatternNodesFiltered) {
  // N carries a tiny pattern (nodes at depth 1.5): their matched costs
  // exceed sqrt(2)*0.8, so they must stay unpaired.
  const std::vector<Point> p{{0, 0.4}, {10, 0.4}, {20, 0.4}};
  const std::vector<Point> n{{0, -0.4}, {9.7, -0.4},  {9.7, -1.9},
                             {10.3, -1.9}, {10.3, -0.4}, {20, -0.4}};
  const std::vector<double> rules{0.8};
  const MsdtwResult r = msdtw_match(p, n, rules);
  EXPECT_FALSE(r.n_paired[2]);  // deep pattern nodes filtered
  EXPECT_FALSE(r.n_paired[3]);
  EXPECT_TRUE(r.n_paired[0]);
  EXPECT_TRUE(r.n_paired[5]);
  for (bool b : r.p_paired) EXPECT_TRUE(b);
}

TEST(Msdtw, CornerClusterMatchedWithinRule) {
  // Several short segments at a corner (Fig. 10a): all their nodes stay
  // paired because they sit within the distance rule of the partner corner.
  const std::vector<Point> p{{0, 0.4}, {9.8, 0.4}, {10.0, 0.42}, {10.2, 0.4}, {20, 0.4}};
  const std::vector<Point> n{{0, -0.4}, {10, -0.4}, {20, -0.4}};
  const std::vector<double> rules{0.8};
  const MsdtwResult r = msdtw_match(p, n, rules);
  for (bool b : r.p_paired) EXPECT_TRUE(b);
  for (bool b : r.n_paired) EXPECT_TRUE(b);
}

TEST(Msdtw, MultiScaleSplitsAcrossDras) {
  // Fig. 12 scenario: narrow section (pitch 0.8) followed by a wide section
  // (pitch 2.4). A tiny-pattern node in the narrow section must be filtered
  // even though its matching cost is below sqrt(2) * 2.4.
  const std::vector<Point> p{{0, 0.4},  {8, 0.4},  {16, 0.4},   // narrow
                             {24, 1.2}, {32, 1.2}};             // wide
  const std::vector<Point> n{{0, -0.4}, {8, -0.4}, {11, -1.6},  // tiny node
                             {16, -0.4}, {24, -1.2}, {32, -1.2}};
  // d(p@16?, n@11..): node (11,-1.6) is 2.06 from (8,-0.4)'s partner... its
  // nearest P nodes are > sqrt(2)*0.8 away but < sqrt(2)*2.4.
  const std::vector<double> rules{0.8, 2.4};
  const MsdtwResult r = msdtw_match(p, n, rules);
  EXPECT_EQ(r.rounds_run, 2);
  EXPECT_FALSE(r.n_paired[2]);  // filtered in round 1, isolated from round 2
  EXPECT_TRUE(r.n_paired[4]);   // wide-DRA nodes matched in round 2
  EXPECT_TRUE(r.n_paired[5]);
  EXPECT_TRUE(r.p_paired[3]);
  EXPECT_TRUE(r.p_paired[4]);
}

TEST(Msdtw, SingleRuleEqualsFilteredDtw) {
  const std::vector<Point> p{{0, 0.4}, {5, 0.4}, {10, 0.4}};
  const std::vector<Point> n{{0, -0.4}, {5, -0.4}, {10, -0.4}};
  const std::vector<double> rules{0.8};
  const MsdtwResult ms = msdtw_match(p, n, rules);
  const DtwResult plain = dtw_match(p, n);
  ASSERT_EQ(ms.pairs.size(), plain.pairs.size());
  for (std::size_t i = 0; i < ms.pairs.size(); ++i) {
    EXPECT_EQ(ms.pairs[i].ip, plain.pairs[i].ip);
    EXPECT_EQ(ms.pairs[i].in, plain.pairs[i].in);
  }
}

TEST(Msdtw, PairRulesAttributeAcceptingRound) {
  // The Fig. 12 scenario again: narrow-section pairs must carry the narrow
  // rule, wide-DRA pairs the wide one — the per-node DRA attribution the
  // piecewise restore consumes.
  const std::vector<Point> p{{0, 0.4},  {8, 0.4},  {16, 0.4},
                             {24, 1.2}, {32, 1.2}};
  const std::vector<Point> n{{0, -0.4}, {8, -0.4}, {11, -1.6},
                             {16, -0.4}, {24, -1.2}, {32, -1.2}};
  const std::vector<double> rules{0.8, 2.4};
  const MsdtwResult r = msdtw_match(p, n, rules);
  ASSERT_EQ(r.pair_rules.size(), r.pairs.size());
  for (std::size_t k = 0; k < r.pairs.size(); ++k) {
    const double expected = p[r.pairs[k].ip].y > 1.0 ? 2.4 : 0.8;
    EXPECT_DOUBLE_EQ(r.pair_rules[k], expected)
        << "pair " << r.pairs[k].ip << "<->" << r.pairs[k].in;
  }
}

TEST(Msdtw, PairRulesStayAlignedAfterSort) {
  const auto c = workload::decoupled_pair_case();
  const auto& pp = c.pair.positive.path.points();
  const auto& nn = c.pair.negative.path.points();
  const MsdtwResult r = msdtw_match(pp, nn, c.rule_set);
  ASSERT_EQ(r.pair_rules.size(), r.pairs.size());
  for (std::size_t k = 0; k < r.pairs.size(); ++k) {
    // Every attribution is one of the supplied rules, and a pair whose nodes
    // sit in the wide tail (y beyond the narrow band) carries the wide rule.
    EXPECT_TRUE(r.pair_rules[k] == c.rule_set[0] || r.pair_rules[k] == c.rule_set[1]);
    if (std::abs(pp[r.pairs[k].ip].y) > 1.0) {
      EXPECT_DOUBLE_EQ(r.pair_rules[k], c.rule_set[1]);
    }
  }
}

TEST(Msdtw, PairsSortedByTraceOrder) {
  const auto c = workload::decoupled_pair_case();
  const auto& pp = c.pair.positive.path.points();
  const auto& nn = c.pair.negative.path.points();
  const MsdtwResult r = msdtw_match(pp, nn, c.rule_set);
  for (std::size_t k = 1; k < r.pairs.size(); ++k) {
    EXPECT_GE(r.pairs[k].ip, r.pairs[k - 1].ip);
  }
}

TEST(Msdtw, DecoupledCaseFiltersTinyPattern) {
  const auto c = workload::decoupled_pair_case();
  const auto& pp = c.pair.positive.path.points();
  const auto& nn = c.pair.negative.path.points();
  const MsdtwResult r = msdtw_match(pp, nn, c.rule_set);
  // The two deep tiny-pattern nodes of traceN (indices 4 and 5) filtered.
  EXPECT_FALSE(r.n_paired[4]);
  EXPECT_FALSE(r.n_paired[5]);
  // The wide-DRA tail still matches.
  EXPECT_TRUE(r.n_paired[nn.size() - 1]);
  EXPECT_TRUE(r.p_paired[pp.size() - 1]);
}

}  // namespace
}  // namespace lmr::dtw
